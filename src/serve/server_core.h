// ServerCore: waved's transport-free request brain.
//
// The core owns tenants (one WaveService each), sessions (one per
// connection), admission control, and per-tenant rate limits — everything
// about serving *except* sockets. Bytes go in through Ingest() and reply
// bytes come out; serve/server_loop.h pumps a real epoll loop through it,
// while testing/server_sim.h pumps a deterministic in-memory loopback
// through the very same code under SimClock/SimExecutor. That seam is the
// whole design: the server logic that matters is exercised byte-for-byte in
// simulation.
//
// Threading: Ingest() may be called concurrently for *different* sessions
// (WaveService queries are thread-safe); a single session must be ingested
// by one thread at a time (the loop's per-connection ownership gives this
// for free). Tenant registration happens before serving starts.

#ifndef WAVEKIT_SERVE_SERVER_CORE_H_
#define WAVEKIT_SERVE_SERVER_CORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "serve/protocol.h"
#include "util/clock.h"
#include "util/result.h"
#include "util/status.h"
#include "wave/wave_service.h"

namespace wavekit {
namespace serve {

class ServerCore {
 public:
  struct Options {
    /// Requests per second each tenant may issue, enforced by a token bucket
    /// on the injected clock. 0 disables rate limiting.
    double tenant_rate_limit_rps = 0;
    /// Bucket depth: how many requests a tenant may burst above the steady
    /// rate. Defaults to one second's worth when 0.
    double tenant_rate_limit_burst = 0;

    /// Concurrent sessions admitted; OpenSession fails with
    /// kResourceExhausted beyond this. 0 = unlimited.
    size_t max_sessions = 0;

    /// Hard ceiling on SCAN replies regardless of the request's max_entries
    /// (a transport guard so one scan cannot materialize a multi-GiB reply).
    /// 0 = unlimited.
    uint32_t scan_entry_cap = 1u << 20;

    /// When true, ADVANCE requests queue through AdvanceDayAsync and reply
    /// immediately with the still-current day; STATS exposes the pending
    /// count. When false, ADVANCE applies synchronously before replying.
    bool async_advance = false;

    /// Time source for rate limiting (SimClock under the sim harness).
    /// Defaults to the wall clock. Must outlive the core.
    Clock* clock = nullptr;

    /// When set, the core registers wavekit_server_* metrics here and
    /// unregisters them in its destructor.
    obs::MetricsRegistry* metrics_registry = nullptr;
  };

  /// \brief One connection's protocol state. Created by OpenSession,
  /// destroyed by CloseSession.
  class Session {
   public:
    uint64_t id() const { return id_; }
    /// Frames served on this session (any type, including error replies).
    uint64_t requests() const { return requests_; }

   private:
    friend class ServerCore;
    explicit Session(uint64_t id) : id_(id) {}
    uint64_t id_;
    uint64_t requests_ = 0;
    FrameReader reader_;
  };

  explicit ServerCore(Options options);
  ~ServerCore();

  ServerCore(const ServerCore&) = delete;
  ServerCore& operator=(const ServerCore&) = delete;

  // --- Tenants (register all before serving) --------------------------------

  /// Registers a tenant. Fails with kAlreadyExists on id reuse.
  Status AddTenant(uint16_t tenant_id, std::unique_ptr<WaveService> service);

  /// The tenant's service, or nullptr.
  WaveService* tenant(uint16_t tenant_id) const;

  size_t tenant_count() const;

  // --- Sessions -------------------------------------------------------------

  /// Admits a new connection. Fails with kResourceExhausted at max_sessions
  /// and kFailedPrecondition while draining.
  Result<Session*> OpenSession();

  void CloseSession(Session* session);

  size_t open_sessions() const;

  // --- The request path -----------------------------------------------------

  /// Feeds connection bytes into the session's frame reader and serves every
  /// complete frame, appending reply frames to `out` in request order
  /// (pipelining: N buffered requests yield N replies in one flush).
  ///
  /// A non-OK return means the connection is beyond repair (framing
  /// violation: bad version or oversized frame); one final kErrorReply has
  /// already been appended to `out`, and the caller must flush it and close.
  /// Application-level failures (unknown tenant, malformed body, rate limit,
  /// degraded serving) are healthy protocol traffic: they produce error
  /// replies inside `out` and return OK.
  Status Ingest(Session* session, const void* data, size_t size,
                std::string* out);

  // --- Drain ----------------------------------------------------------------

  /// Enters drain: new sessions are refused; requests already buffered or
  /// still arriving on open sessions keep being answered (the loop decides
  /// when to stop reading). Queued async advances are NOT cancelled — call
  /// WaitForMaintenance to let them finish.
  void BeginDrain();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Blocks until every tenant's queued async advances finished; returns the
  /// first sticky failure, if any.
  Status WaitForMaintenance();

  // --- Introspection --------------------------------------------------------

  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  uint64_t errors_returned() const {
    return errors_returned_.load(std::memory_order_relaxed);
  }
  uint64_t rate_limited() const {
    return rate_limited_.load(std::memory_order_relaxed);
  }

 private:
  struct Tenant {
    std::unique_ptr<WaveService> service;
    // Token bucket (guarded by mutex; request-grained, never on the query
    // hot path inside WaveService).
    std::mutex mutex;
    double tokens = 0;
    uint64_t last_refill_us = 0;
  };

  /// Serves one complete frame, appending exactly one reply to `out`.
  void ServeFrame(Session* session, const Frame& frame, std::string* out);

  void ServeProbe(Tenant* tenant, const Frame& frame, std::string* out);
  void ServeScan(Tenant* tenant, const Frame& frame, std::string* out);
  void ServeAdvance(Tenant* tenant, const Frame& frame, std::string* out);
  void ServeStats(Tenant* tenant, const Frame& frame, std::string* out);
  void ServeHealth(Tenant* tenant, const Frame& frame, std::string* out);

  /// Takes one token from the tenant's bucket. False = rate-limited.
  bool AdmitRequest(Tenant* tenant);

  void AppendError(const FrameHeader& request, FrameType type, StatusCode code,
                   const std::string& detail, std::string* out);

  Options options_;
  Clock* clock_;

  mutable std::mutex tenants_mutex_;
  std::map<uint16_t, std::unique_ptr<Tenant>> tenants_;

  mutable std::mutex sessions_mutex_;
  std::map<uint64_t, std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;

  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> errors_returned_{0};
  std::atomic<uint64_t> rate_limited_{0};
};

/// Maps a wavekit Status onto the wire result prefix.
WireResult ToWireResult(const Status& status);

}  // namespace serve
}  // namespace wavekit

#endif  // WAVEKIT_SERVE_SERVER_CORE_H_
