// Space-utilization model (paper Table 8): closed-form operation and
// transition space per scheme.
//
// The closed forms below assume n divides W (clusters of equal size
// X = W/n), which is how the paper presents Table 8; the experiment driver
// measures exact space for arbitrary (W, n) from the running schemes.

#ifndef WAVEKIT_MODEL_SPACE_MODEL_H_
#define WAVEKIT_MODEL_SPACE_MODEL_H_

#include "model/params.h"
#include "update/update_technique.h"
#include "wave/scheme.h"

namespace wavekit {
namespace model {

/// \brief Table 8's four columns, in bytes.
struct SpaceEstimate {
  double avg_operation_bytes = 0;   ///< Steady-state, averaged over days.
  double max_operation_bytes = 0;   ///< Steady-state peak.
  double avg_transition_bytes = 0;  ///< Extra space while updating, average.
  double max_transition_bytes = 0;  ///< Extra space while updating, peak.

  double avg_total() const { return avg_operation_bytes + avg_transition_bytes; }
  double max_total() const { return max_operation_bytes + max_transition_bytes; }
};

/// Estimates Table 8 (extended to all three update techniques: in-place uses
/// no transition space; packed shadow replaces S' with S).
SpaceEstimate EstimateSpace(SchemeKind scheme, UpdateTechniqueKind technique,
                            const CaseParams& params, int window,
                            int num_indexes);

/// EstimateSpace with an observed compression ratio (uncompressed bytes /
/// stored bytes, >= 1 — e.g. ConstituentIndex::CodecBreakdown::ratio()) so
/// the modeled S' tracks codec-enabled deployments. Only *packed* bytes are
/// scaled: packed builds and packed-shadow flushes are the paths that emit
/// compressed extents, while incrementally grown (unpacked) constituents and
/// temporaries stay kRaw by the rewrite-on-mutation rule. Ratios < 1 are
/// clamped to 1 (a codec is only kept when it beats raw).
SpaceEstimate EstimateSpace(SchemeKind scheme, UpdateTechniqueKind technique,
                            const CaseParams& params, int window,
                            int num_indexes, double compression_ratio);

}  // namespace model
}  // namespace wavekit

#endif  // WAVEKIT_MODEL_SPACE_MODEL_H_
