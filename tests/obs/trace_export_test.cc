#include "obs/trace_export.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/trace.h"

namespace wavekit {
namespace obs {
namespace {

SpanRecord MakeSpan(uint64_t trace_id, uint64_t span_id, uint64_t parent,
                    const std::string& name, uint64_t start_us,
                    uint64_t duration_us) {
  SpanRecord span;
  span.trace_id = trace_id;
  span.span_id = span_id;
  span.parent_span_id = parent;
  span.name = name;
  span.start_us = start_us;
  span.duration_us = duration_us;
  span.seeks = 3;
  span.bytes_read = 100;
  span.bytes_written = 200;
  return span;
}

TEST(TraceExportTest, EmptyRingRendersValidSkeleton) {
  const std::string json = RenderChromeTrace(std::vector<SpanRecord>{});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos) << json;
}

TEST(TraceExportTest, SpansBecomeCompleteEvents) {
  const std::vector<SpanRecord> spans = {
      MakeSpan(1, 10, 0, "AdvanceDay", 1000, 500),
      MakeSpan(1, 11, 10, "AddToIndex", 1100, 200),
  };
  const std::string json = RenderChromeTrace(spans);
  EXPECT_NE(json.find("\"name\": \"AdvanceDay\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"AddToIndex\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\": 1000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\": 500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"seeks\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bytes_read\": 100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"parent_span_id\": 10"), std::string::npos) << json;
}

TEST(TraceExportTest, TracesMapToDistinctTracks) {
  // Two traces: spans land on different tid tracks so Perfetto renders
  // concurrent transitions side by side, and same-trace spans share one.
  const std::vector<SpanRecord> spans = {
      MakeSpan(7, 1, 0, "a", 0, 1),
      MakeSpan(7, 2, 1, "b", 0, 1),
      MakeSpan(9, 3, 0, "c", 0, 1),
  };
  const std::string json = RenderChromeTrace(spans);
  EXPECT_NE(json.find("\"tid\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tid\": 2"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"tid\": 3"), std::string::npos) << json;
}

TEST(TraceExportTest, EscapesSpanNames) {
  const std::vector<SpanRecord> spans = {
      MakeSpan(1, 1, 0, "weird \"name\"\nwith newline", 0, 1),
  };
  const std::string json = RenderChromeTrace(spans);
  EXPECT_NE(json.find("\\\"name\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos) << json;
}

TEST(TraceExportTest, TracerOverloadExportsItsRing) {
  Tracer::Options options;
  options.sample_rate = 1.0;
  Tracer tracer(options);
  {
    Span root = tracer.StartSpan("AdvanceDay");
    Span child = tracer.StartSpan("Checkpoint");
  }
  const std::string json = RenderChromeTrace(tracer);
  EXPECT_NE(json.find("\"AdvanceDay\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"Checkpoint\""), std::string::npos) << json;
}

}  // namespace
}  // namespace obs
}  // namespace wavekit
