// Attach helpers: register the stats an existing wavekit component already
// maintains as callback metrics in a MetricsRegistry.
//
// Each Attach* call adds callback counters/gauges polled at snapshot time, so
// the instrumented component pays nothing on its hot path. All helpers take
// an `owner` tag; callers must MetricsRegistry::Unregister(owner) before the
// attached component is destroyed (WaveService does this in its destructor).

#ifndef WAVEKIT_OBS_ATTACH_H_
#define WAVEKIT_OBS_ATTACH_H_

#include <string>

#include "obs/latency_device.h"
#include "obs/metrics.h"
#include "storage/metered_device.h"
#include "storage/sharded_cached_device.h"
#include "util/thread_pool.h"

namespace wavekit {
namespace obs {

/// \brief Where the bytes physically live, attached as labels so dashboards
/// can split metrics by storage backend. `backend` is the BackendRegistry
/// name ("memory", "file", "uring", "mmap"); empty means "don't label".
struct BackendIdentity {
  std::string backend;
  bool direct_io = false;
};

/// Per-phase seek/byte/op/sync counters of `device`:
///   wavekit_device_{seeks,bytes_read,bytes_written,read_ops,write_ops,
///                   sync_ops}_total
///     {device=<label>, phase=<start|transition|precompute|query|other>
///      [, backend=<name>, direct=<0|1>]}
/// The backend/direct labels appear when `identity.backend` is non-empty.
void AttachMeteredDevice(MetricsRegistry* registry, const MeteredDevice* device,
                         std::string device_label, BackendIdentity identity,
                         const void* owner = nullptr);

/// Backward-compatible overload: no backend identity labels.
void AttachMeteredDevice(MetricsRegistry* registry, const MeteredDevice* device,
                         std::string device_label,
                         const void* owner = nullptr);

/// Measured latency histograms and model-drift gauges of `device`:
///   wavekit_device_latency_us{device=<label>, op=<read|write|read_batch|
///     write_batch|sync>, phase=<...>}           (summary: quantiles+sum+count)
///   wavekit_device_observed_seconds{device=<label>, phase=<...>}
///   wavekit_device_modeled_seconds{device=<label>, phase=<...>}
///   wavekit_device_latency_drift_ratio{device=<label>, phase=<...>}
/// Modeled seconds apply `model` to `meter`'s counters for the same phase;
/// the drift ratio is observed/modeled (0 when the model predicts 0). All
/// (op, phase) histogram cells are registered; empty ones render count=0.
void AttachLatencyDevice(MetricsRegistry* registry,
                         const LatencyTrackingDevice* device,
                         const MeteredDevice* meter, CostModel model,
                         std::string device_label,
                         const void* owner = nullptr);

/// Per-shard hit/miss/eviction counters plus aggregate occupancy of `cache`:
///   wavekit_cache_{hits,misses,evictions}_total{cache=<label>, shard=<i>}
///   wavekit_cache_cached_blocks{cache=<label>}
///   wavekit_cache_hit_ratio{cache=<label>}
void AttachShardedCache(MetricsRegistry* registry,
                        const ShardedCachedDevice* cache,
                        std::string cache_label, const void* owner = nullptr);

/// Queue depth and size of `pool`:
///   wavekit_pool_queue_depth{pool=<label>}
///   wavekit_pool_in_flight{pool=<label>}
///   wavekit_pool_threads{pool=<label>}
void AttachThreadPool(MetricsRegistry* registry, const ThreadPool* pool,
                      std::string pool_label, const void* owner = nullptr);

}  // namespace obs
}  // namespace wavekit

#endif  // WAVEKIT_OBS_ATTACH_H_
