file(REMOVE_RECURSE
  "CMakeFiles/scheme_adopt_test.dir/wave/scheme_adopt_test.cc.o"
  "CMakeFiles/scheme_adopt_test.dir/wave/scheme_adopt_test.cc.o.d"
  "scheme_adopt_test"
  "scheme_adopt_test.pdb"
  "scheme_adopt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_adopt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
