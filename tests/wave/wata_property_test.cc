// Properties of the WATA family proved in Appendix B:
//   Theorem 2: WATA*'s maximum wave-index length is W + ceil((W-1)/(n-1)) - 1
//              (and that bound is tight).
//   Theorem 3: WATA* is 2-competitive on index size against the offline
//              optimum that knows all future data volumes.
// Plus the KB-WATA extension's n/(n-1)-style size bound.

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/test_env.h"
#include "util/random.h"
#include "wave/scheme_factory.h"
#include "workload/usenet_trace.h"

namespace wavekit {
namespace {

using testing::MakeBatch;

// A batch with exactly `entries` single-value records (size-controlled).
DayBatch SizedBatch(Day day, uint64_t entries) {
  DayBatch batch;
  batch.day = day;
  uint64_t rid = static_cast<uint64_t>(day) * 1000000;
  for (uint64_t i = 0; i < entries; ++i) {
    Record record;
    record.record_id = rid++;
    record.day = day;
    record.values = {"v" + std::to_string(i % 7)};
    batch.records.push_back(std::move(record));
  }
  return batch;
}

class WataPropertyTest : public testing::StoreTest {
 protected:
  void StartScheme(SchemeKind kind, int window, int num_indexes,
                   const std::vector<uint64_t>& volumes,
                   uint64_t size_bound = 0) {
    SchemeConfig config;
    config.window = window;
    config.num_indexes = num_indexes;
    config.technique = UpdateTechniqueKind::kInPlace;
    config.size_bound_entries = size_bound;
    volumes_ = volumes;
    auto made = MakeScheme(kind, Env(), config);
    ASSERT_TRUE(made.ok()) << made.status();
    scheme_ = std::move(made).ValueOrDie();
    std::vector<DayBatch> first;
    for (Day d = 1; d <= window; ++d) first.push_back(Batch(d));
    ASSERT_OK(scheme_->Start(std::move(first)));
  }

  DayBatch Batch(Day d) const {
    const size_t slot = static_cast<size_t>(d - 1);
    const uint64_t entries =
        slot < volumes_.size() ? volumes_[slot] : 3;
    return SizedBatch(d, entries);
  }

  void Advance() {
    ASSERT_OK(scheme_->Transition(Batch(scheme_->current_day() + 1)));
  }

  // The offline lower bound M: the largest total entries of any W
  // consecutive days (every algorithm must store at least that much at the
  // moment that window is current).
  static uint64_t MaxWindowEntries(const std::vector<uint64_t>& volumes,
                                   int window) {
    uint64_t best = 0;
    for (size_t start = 0; start + static_cast<size_t>(window) <= volumes.size();
         ++start) {
      uint64_t sum = 0;
      for (int k = 0; k < window; ++k) sum += volumes[start + static_cast<size_t>(k)];
      best = std::max(best, sum);
    }
    return best;
  }

  std::vector<uint64_t> volumes_;
  std::unique_ptr<Scheme> scheme_;
};

TEST_F(WataPropertyTest, Theorem2LengthBoundHoldsAndIsTight) {
  for (int window : {4, 7, 10, 13, 20}) {
    for (int n = 2; n <= std::min(window, 8); ++n) {
      SCOPED_TRACE("W=" + std::to_string(window) + " n=" + std::to_string(n));
      StartScheme(SchemeKind::kWata, window, n, {});
      const int bound =
          window + (window - 1 + (n - 1) - 1) / (n - 1) - 1;  // W + ceil(Y) - 1
      int max_length = scheme_->WaveLength();
      for (int i = 0; i < 5 * window; ++i) {
        Advance();
        max_length = std::max(max_length, scheme_->WaveLength());
        ASSERT_LE(scheme_->WaveLength(), bound)
            << "day " << scheme_->current_day();
      }
      // Tightness: the bound is actually reached during steady state.
      EXPECT_EQ(max_length, bound);
      scheme_.reset();
      day_store_.Prune(kDayPosInf);
    }
  }
}

TEST_F(WataPropertyTest, SoftWindowAlwaysCoversHardWindow) {
  StartScheme(SchemeKind::kWata, 9, 3, {});
  for (int i = 0; i < 40; ++i) {
    Advance();
    const Day d = scheme_->current_day();
    const TimeSet covered = scheme_->wave().CoveredDays();
for (Day k = d - 8; k <= d; ++k) {
      ASSERT_TRUE(covered.contains(k)) << "missing day " << k << " at " << d;
    }
  }
}

TEST_F(WataPropertyTest, Theorem3TwoCompetitiveOnRandomVolumes) {
  Rng rng(2024);
  for (int trial = 0; trial < 6; ++trial) {
    const int window = 7;
    const int n = 2 + static_cast<int>(rng.Uniform(4));
    const int days = 80;
    std::vector<uint64_t> volumes;
    for (int d = 0; d < days; ++d) volumes.push_back(1 + rng.Uniform(40));
    SCOPED_TRACE("trial " + std::to_string(trial) + " n=" + std::to_string(n));
    StartScheme(SchemeKind::kWata, window, n, volumes);
    uint64_t max_size = scheme_->wave().EntryCount();
    for (int i = 0; i < days - window; ++i) {
      Advance();
      max_size = std::max(max_size, scheme_->wave().EntryCount());
    }
    const uint64_t optimum = MaxWindowEntries(volumes, window);
    EXPECT_LE(max_size, 2 * optimum)
        << "WATA* used " << max_size << " vs offline bound " << optimum;
    scheme_.reset();
    day_store_.Prune(kDayPosInf);
  }
}

TEST_F(WataPropertyTest, Theorem3OnAdversarialSpike) {
  // One huge day inside an otherwise small stream: the residual copy of the
  // spike is the worst case for lazy deletion.
  const int window = 6;
  std::vector<uint64_t> volumes(60, 2);
  volumes[20] = 500;
  StartScheme(SchemeKind::kWata, window, 3, volumes);
  uint64_t max_size = scheme_->wave().EntryCount();
  for (int i = 0; i < 50; ++i) {
    Advance();
    max_size = std::max(max_size, scheme_->wave().EntryCount());
  }
  const uint64_t optimum = MaxWindowEntries(volumes, window);
  EXPECT_LE(max_size, 2 * optimum);
}

TEST_F(WataPropertyTest, UsenetTraceSizeRatioMatchesFigure11Shape) {
  // Figure 11: with real weekly-varying volumes the WATA* size overhead over
  // the eager optimum stays tolerable (<= 1.6x) and shrinks as n grows.
  workload::UsenetTraceConfig trace_config;
  trace_config.scale = 0.001;  // ~30..110 entries/day
  workload::UsenetVolumeTrace trace(trace_config);
  const int days = 120;
  const int window = 7;
  std::vector<uint64_t> volumes = trace.Series(days);
  double previous_ratio = 10.0;
  for (int n : {2, 4, 6}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    StartScheme(SchemeKind::kWata, window, n, volumes);
    uint64_t max_size = scheme_->wave().EntryCount();
    for (int i = 0; i < days - window; ++i) {
      Advance();
      max_size = std::max(max_size, scheme_->wave().EntryCount());
    }
    const double ratio = static_cast<double>(max_size) /
                         static_cast<double>(MaxWindowEntries(volumes, window));
    EXPECT_GE(ratio, 1.0);
    EXPECT_LE(ratio, 2.0);  // Theorem 3 always holds
    // Figure 11's "tolerable overhead" regime kicks in from n = 4 on (the
    // paper reports 1.24 there); n = 2 carries the largest residual.
    if (n >= 4) {
      EXPECT_LE(ratio, 1.6);
    }
    EXPECT_LE(ratio, previous_ratio + 0.05) << "ratio should shrink with n";
    previous_ratio = ratio;
    scheme_.reset();
    day_store_.Prune(kDayPosInf);
  }
}

TEST_F(WataPropertyTest, KnownBoundWataBeatsTheTwoCompetitiveBound) {
  Rng rng(7);
  const int window = 7;
  const int days = 90;
  std::vector<uint64_t> volumes;
  for (int d = 0; d < days; ++d) volumes.push_back(5 + rng.Uniform(30));
  const uint64_t bound = MaxWindowEntries(volumes, window);
  for (int n : {3, 5}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    StartScheme(SchemeKind::kKnownBoundWata, window, n, volumes,
                /*size_bound=*/bound);
    uint64_t max_size = scheme_->wave().EntryCount();
    for (int i = 0; i < days - window; ++i) {
      Advance();
      max_size = std::max(max_size, scheme_->wave().EntryCount());
    }
    // At most n live slices, each at most ceil(B/(n-1)) plus one day's
    // overshoot (slices close once they REACH the threshold).
    uint64_t max_day = 0;
    for (uint64_t v : volumes) max_day = std::max(max_day, v);
    const double limit = static_cast<double>(bound) * n / (n - 1) +
                         static_cast<double>(n) * (max_day + 1);
    EXPECT_LE(static_cast<double>(max_size), limit);
    scheme_.reset();
    day_store_.Prune(kDayPosInf);
  }
}

TEST_F(WataPropertyTest, KnownBoundWataRequiresBoundAndTwoIndexes) {
  SchemeConfig config;
  config.window = 7;
  config.num_indexes = 3;
  config.size_bound_entries = 0;
  EXPECT_FALSE(
      MakeScheme(SchemeKind::kKnownBoundWata, Env(), config).ok());
  config.size_bound_entries = 100;
  config.num_indexes = 1;
  EXPECT_FALSE(
      MakeScheme(SchemeKind::kKnownBoundWata, Env(), config).ok());
}

TEST_F(WataPropertyTest, WataRejectsSingleIndex) {
  SchemeConfig config;
  config.window = 7;
  config.num_indexes = 1;
  EXPECT_FALSE(MakeScheme(SchemeKind::kWata, Env(), config).ok());
  EXPECT_FALSE(MakeScheme(SchemeKind::kRata, Env(), config).ok());
}

}  // namespace
}  // namespace wavekit
