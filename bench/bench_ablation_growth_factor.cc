// Ablation: the CONTIGUOUS growth factor g [FJ92]. The paper tunes g per
// workload (2.0 for Zipfian Netnews, 1.08 for uniform TPC-D) trading space
// (S') against bucket-relocation copying. This bench sweeps g on both
// workload shapes and measures, on the real index, the space overhead and
// the add-amplification that drove those choices.

#include "bench/common.h"

#include "index/index_builder.h"
#include "storage/store.h"
#include "workload/netnews.h"
#include "workload/tpcd.h"

namespace wavekit {
namespace bench {
namespace {

struct Ablation {
  double space_overhead = 0;      // S'/S
  double write_amplification = 0; // bytes moved per new entry byte, steady add
};

template <typename Generator>
Ablation MeasureG(Generator& gen, double g, int days) {
  Store store;
  ConstituentIndex::Options options;
  options.growth.g = g;
  // Isolate g's effect: no minimum bucket size (at paper scale, buckets are
  // far larger than any initial allocation anyway).
  options.growth.initial_capacity = 1;

  // days+1 batches: the last one is the metered steady-state add, and the
  // packed reference covers the SAME content as the grown index.
  std::vector<DayBatch> batches;
  for (Day d = 1; d <= days + 1; ++d) batches.push_back(gen.GenerateDay(d));
  std::vector<const DayBatch*> ptrs;
  for (const DayBatch& b : batches) ptrs.push_back(&b);

  // Packed footprint for reference (S).
  auto packed = IndexBuilder::BuildPacked(store.device(), store.allocator(),
                                          options, ptrs, "packed");
  if (!packed.ok()) packed.status().Abort("build");
  const double s_bytes =
      static_cast<double>(packed.ValueOrDie()->allocated_bytes());

  // Incrementally grown index (S'), with the last day's add metered.
  ConstituentIndex grown(store.device(), store.allocator(), options, "grown");
  for (Day d = 1; d <= days; ++d) {
    grown.AddBatch(batches[static_cast<size_t>(d - 1)]).Abort("add");
  }
  const DayBatch& next = batches.back();
  const double new_bytes = static_cast<double>(next.EntryCount() * kEntrySize);
  store.device()->Reset();
  grown.AddBatch(next).Abort("steady add");
  Ablation out;
  out.space_overhead = static_cast<double>(grown.allocated_bytes()) / s_bytes;
  out.write_amplification =
      static_cast<double>(store.device()->total().bytes_transferred()) /
      new_bytes;
  return out;
}

int Run() {
  Banner("Ablation: CONTIGUOUS growth factor g (space vs copy work)",
         "The paper picks g=2.0 for skewed Netnews words and g=1.08 for "
         "uniform TPC-D keys: small g saves space but relocates buckets "
         "constantly; large g wastes slack but rarely copies.");

  const std::vector<double> gs = {1.08, 1.25, 1.5, 2.0, 3.0, 4.0};

  sim::TablePrinter table({"g", "netnews S'/S", "netnews write-amp",
                           "tpcd S'/S", "tpcd write-amp"});
  std::map<double, Ablation> netnews_results;
  std::map<double, Ablation> tpcd_results;
  for (double g : gs) {
    workload::NetnewsConfig netnews_config;
    netnews_config.articles_per_day = 120;
    netnews_config.words_per_article = 25;
    workload::NetnewsGenerator netnews(netnews_config);
    netnews_results[g] = MeasureG(netnews, g, 7);

    workload::TpcdConfig tpcd_config;
    tpcd_config.rows_per_day = 12000;
    tpcd_config.num_suppliers = 100;  // big buckets: rounding is negligible
    workload::TpcdGenerator tpcd(tpcd_config);
    tpcd_results[g] = MeasureG(tpcd, g, 7);

    table.AddRow({Fmt(g, 2), Fmt(netnews_results[g].space_overhead, 2),
                  Fmt(netnews_results[g].write_amplification, 1),
                  Fmt(tpcd_results[g].space_overhead, 2),
                  Fmt(tpcd_results[g].write_amplification, 1)});
  }
  table.Print(std::cout);

  ShapeChecks checks;
  checks.Check(netnews_results[1.08].space_overhead <
                   netnews_results[4.0].space_overhead,
               "space overhead grows with g");
  checks.Check(netnews_results[1.08].write_amplification >
                   netnews_results[2.0].write_amplification,
               "copy work shrinks as g grows (fewer relocations)");
  checks.Check(tpcd_results[1.08].space_overhead < 1.10,
               "g=1.08 keeps uniform-key slack tiny (paper: S'/S = 1.05)");
  checks.Check(netnews_results[2.0].space_overhead < 2.05,
               "g=2.0 bounds Zipfian slack by ~2x");
  // The paper's tradeoff: going from g=2 to g=1.08 on Netnews would save
  // space but multiply copy traffic.
  checks.Check(netnews_results[1.08].write_amplification >
                   1.7 * netnews_results[2.0].write_amplification,
               "g=1.08 on Netnews would pay ~2x the copy traffic of g=2.0 — "
               "why the paper picked 2.0 there");
  return checks.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace wavekit

int main() { return wavekit::bench::Run(); }
