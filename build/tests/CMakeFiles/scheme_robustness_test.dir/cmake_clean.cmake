file(REMOVE_RECURSE
  "CMakeFiles/scheme_robustness_test.dir/wave/scheme_robustness_test.cc.o"
  "CMakeFiles/scheme_robustness_test.dir/wave/scheme_robustness_test.cc.o.d"
  "scheme_robustness_test"
  "scheme_robustness_test.pdb"
  "scheme_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
