// Disk-full (ENOSPC) behaviour around the AdvanceDay commit point: a spent
// write budget surfaces as a descriptive Status::ResourceExhausted (never an
// abort), retry policies do not burn attempts on it, the intent journal
// stays consistent, and recovery + a freed disk resume cleanly.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "storage/fault_injecting_device.h"
#include "storage/metered_device.h"
#include "testing/test_env.h"
#include "util/fs.h"
#include "wave/day_store.h"
#include "wave/recovery.h"
#include "wave/scheme_factory.h"
#include "wave/wave_service.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;
using testing::ReferenceIndex;

constexpr int kWindow = 6;

SchemeConfig Config() {
  SchemeConfig config;
  config.window = kWindow;
  config.num_indexes = 3;
  config.technique = UpdateTechniqueKind::kSimpleShadow;
  return config;
}

TEST(DiskFullTest, ServiceAdvanceFailsCleanlyAndKeepsServing) {
  FaultInjectingDevice* faulty = nullptr;
  WaveService::Options options;
  options.scheme = SchemeKind::kWata;
  options.config = Config();
  options.device_capacity = uint64_t{1} << 26;
  options.device_interposer = [&faulty](Device* inner) {
    auto device = std::make_unique<FaultInjectingDevice>(inner);
    faulty = device.get();
    return device;
  };
  ASSERT_OK_AND_ASSIGN(auto service, WaveService::Create(std::move(options)));

  ReferenceIndex reference;
  std::vector<DayBatch> first;
  for (Day d = 1; d <= kWindow; ++d) {
    first.push_back(MakeMixedBatch(d));
    if (d >= 2) reference.Add(first.back());
  }
  ASSERT_OK(service->Start(std::move(first)));
  DayBatch day7 = MakeMixedBatch(7);
  reference.Add(day7);
  ASSERT_OK(service->AdvanceDay(std::move(day7)));

  // The disk fills. The next advance must fail with ResourceExhausted — a
  // descriptive operational error, not an abort, not a generic IOError.
  faulty->SetWriteBudget(2);
  const Status failed = service->AdvanceDay(MakeMixedBatch(8));
  ASSERT_TRUE(failed.IsResourceExhausted()) << failed;
  EXPECT_NE(failed.ToString().find("disk full"), std::string::npos) << failed;
  EXPECT_GT(faulty->stats().budget_rejected_writes, 0u);

  // Still serving the complete day-7 window (degraded, not down).
  EXPECT_EQ(service->current_day(), 7);
  EXPECT_EQ(service->Metrics().degraded_advances, 1u);
  std::vector<Entry> out;
  QueryStats stats;
  const Status query =
      service->TimedIndexProbe(DayRange::Window(7, kWindow), "alpha", &out,
                               &stats);
  ASSERT_TRUE(query.ok() || query.IsPartialResult()) << query;
  if (query.ok()) {
    ReferenceIndex::Sort(&out);
    EXPECT_EQ(out, reference.Probe("alpha", 2, 7));
  }
  faulty->ClearWriteBudget();
}

TEST(DiskFullTest, ResourceExhaustedDoesNotBurnRetryAttempts) {
  MemoryDevice memory(uint64_t{1} << 26);
  FaultInjectingDevice faulty(&memory);
  MeteredDevice metered(&faulty);
  ExtentAllocator allocator(memory.capacity());
  DayStore day_store;
  SchemeEnv env{&metered, &allocator, &day_store};
  env.retry.max_attempts = 4;
  env.retry.initial_backoff_us = 1;
  ASSERT_OK_AND_ASSIGN(auto scheme,
                       MakeScheme(SchemeKind::kWata, env, Config()));
  std::vector<DayBatch> first;
  for (Day d = 1; d <= kWindow; ++d) first.push_back(MakeMixedBatch(d));
  ASSERT_OK(scheme->Start(std::move(first)));

  faulty.SetWriteBudget(0);
  const Status failed = scheme->Transition(MakeMixedBatch(kWindow + 1));
  ASSERT_TRUE(failed.IsResourceExhausted()) << failed;
  // ENOSPC is not transient: retrying cannot free space, so the retry
  // policy must not have burned any attempt on it.
  EXPECT_EQ(scheme->fault_stats().retries, 0u);
  faulty.ClearWriteBudget();
}

TEST(DiskFullTest, DurableProtocolRollsBackAcrossDiskFullAndResumes) {
  const std::string prefix = ::testing::TempDir() + "wavekit_disk_full";
  DurableMaintenance::Paths paths{prefix + "_CHECKPOINT", prefix + "_JOURNAL"};
  std::remove(paths.checkpoint.c_str());
  std::remove(paths.journal.c_str());

  MemoryDevice memory(uint64_t{1} << 26);
  const Day full_day = kWindow + 2;
  {
    FaultInjectingDevice faulty(&memory);
    MeteredDevice metered(&faulty);
    ExtentAllocator allocator(memory.capacity());
    DayStore day_store;
    SchemeEnv env{&metered, &allocator, &day_store};
    ASSERT_OK_AND_ASSIGN(auto scheme,
                         MakeScheme(SchemeKind::kWata, env, Config()));
    DurableMaintenance maintenance(scheme.get(), paths);
    std::vector<DayBatch> first;
    for (Day d = 1; d <= kWindow; ++d) first.push_back(MakeMixedBatch(d));
    ASSERT_OK(maintenance.Start(std::move(first)));
    ASSERT_OK(maintenance.AdvanceDay(MakeMixedBatch(kWindow + 1)));

    // The disk fills partway through the transition — after the intent was
    // journaled, before the checkpoint (the commit point) could land.
    faulty.SetWriteBudget(3);
    const Status failed = maintenance.AdvanceDay(MakeMixedBatch(full_day));
    ASSERT_TRUE(failed.IsResourceExhausted()) << failed;
    // The protocol held its shape: the intent journal survives the failure,
    // so a restart knows the transition never committed.
    EXPECT_TRUE(FileExists(paths.journal));
  }

  // "Restart" after the operator freed space: recovery rolls back to the
  // last committed window and reports the interrupted day for re-running.
  MeteredDevice metered(&memory);
  ExtentAllocator allocator(memory.capacity());
  ASSERT_OK_AND_ASSIGN(
      DurableMaintenance::RecoveredState state,
      DurableMaintenance::Recover(paths, &metered, &allocator,
                                  ConstituentIndex::Options{}));
  ASSERT_TRUE(state.interrupted_day.has_value());
  EXPECT_EQ(*state.interrupted_day, full_day);
  EXPECT_EQ(state.current_day, full_day - 1);
  EXPECT_FALSE(FileExists(paths.journal));

  DayStore day_store;
  for (Day d = state.current_day - kWindow + 1; d <= state.current_day; ++d) {
    ASSERT_OK(day_store.Put(MakeMixedBatch(d)));
  }
  SchemeEnv env{&metered, &allocator, &day_store};
  ASSERT_OK_AND_ASSIGN(auto scheme,
                       MakeScheme(SchemeKind::kWata, env, Config()));
  ASSERT_OK(scheme->Adopt(std::move(state.wave), state.current_day));
  DurableMaintenance maintenance(scheme.get(), paths);
  ASSERT_OK(maintenance.AdvanceDay(MakeMixedBatch(full_day)));
  ASSERT_OK(maintenance.AdvanceDay(MakeMixedBatch(full_day + 1)));

  // The resumed window answers exactly like the oracle.
  ReferenceIndex reference;
  for (Day d = full_day + 1 - kWindow + 1; d <= full_day + 1; ++d) {
    reference.Add(MakeMixedBatch(d));
  }
  std::vector<Entry> scanned;
  ASSERT_OK(scheme->wave().TimedSegmentScan(
      DayRange::Window(full_day + 1, kWindow),
      [&](const Value&, const Entry& e) { scanned.push_back(e); }));
  ReferenceIndex::Sort(&scanned);
  EXPECT_EQ(scanned,
            reference.ScanAll(full_day + 1 - kWindow + 1, full_day + 1));

  std::remove(paths.checkpoint.c_str());
  std::remove(paths.journal.c_str());
}

}  // namespace
}  // namespace wavekit
