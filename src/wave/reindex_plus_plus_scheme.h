// REINDEX++ (paper Section 4.2, Figure 15): REINDEX+ with a ladder of
// temporary indexes T_0..T_{m-1} prepared ahead of time, so the transition
// critical path is a single AddToIndex of the new day — new data becomes
// queryable as fast as in DEL/WATA, with about the same total work as
// REINDEX+.

#ifndef WAVEKIT_WAVE_REINDEX_PLUS_PLUS_SCHEME_H_
#define WAVEKIT_WAVE_REINDEX_PLUS_PLUS_SCHEME_H_

#include "wave/scheme.h"

namespace wavekit {

/// \brief The REINDEX++ maintenance scheme. Hard windows; no deletion code;
/// the ladder stores up to m(m-1)/2 extra days (m = cluster size), traded
/// for minimal transition time.
class ReindexPlusPlusScheme : public Scheme {
 public:
  ReindexPlusPlusScheme(SchemeEnv env, SchemeConfig config)
      : Scheme(env, config) {}

  SchemeKind kind() const override { return SchemeKind::kReindexPlusPlus; }
  std::string_view name() const override { return "REINDEX++"; }
  bool hard_window() const override { return true; }

  std::vector<const ConstituentIndex*> TemporaryIndexes() const override;

 protected:
  Status DoStart() override;
  Status DoTransition(const DayBatch& new_day) override;
  Status DoAdopt() override;

 private:
  /// Figure 15's Initialize: rebuilds the ladder for the next cluster whose
  /// days (minus the first, already-expiring one) are `days`. T_0 is empty;
  /// T_i holds the i most recent days of `days`.
  Status InitializeLadder(const TimeSet& days, Phase phase);

  /// One ladder rung to be built by BuildRungsParallel.
  struct RungSpec {
    std::string name;
    TimeSet days;
    SchemeEnv::Disk disk;
  };

  /// Builds every rung of `specs` as an independent packed build on the
  /// maintenance pool (each build runs its serial inner path — nesting would
  /// make a pool worker Wait on the pool). All-or-nothing: on success the
  /// rungs are appended to temps_ in order and logged; on failure nothing is
  /// appended and every partially built rung is reclaimed. Requires
  /// env_.maintenance.enabled().
  Status BuildRungsParallel(std::vector<RungSpec> specs, Phase phase);

  /// Promotes `*temp` (after adding the new day) into slot `j`.
  Status PromoteTemp(size_t j, std::shared_ptr<ConstituentIndex> temp);

  std::vector<std::shared_ptr<ConstituentIndex>> temps_;  // T_0..T_m
  int temp_used_ = 0;
  TimeSet days_to_add_;
};

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_REINDEX_PLUS_PLUS_SCHEME_H_
