file(REMOVE_RECURSE
  "CMakeFiles/bench_multidisk_parallelism.dir/bench_multidisk_parallelism.cc.o"
  "CMakeFiles/bench_multidisk_parallelism.dir/bench_multidisk_parallelism.cc.o.d"
  "bench_multidisk_parallelism"
  "bench_multidisk_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multidisk_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
