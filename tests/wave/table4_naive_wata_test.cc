// Table 4: the paper's ALTERNATIVE (inferior) WATA variant — same lazy
// throw-away transitions, but a worse initial split: days 1..W over the
// first n-1 clusters, with I_n starting EMPTY. The paper uses it to motivate
// the index-length measure: this variant's wave-index length reaches 13 for
// (W=10, n=4) where WATA* (Table 3) peaks at 12 = W + ceil((W-1)/(n-1)) - 1,
// the optimum of Theorem 2.

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/test_env.h"
#include "wave/wata_scheme.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;

// WATA with Table 4's start split; transitions are inherited unchanged.
class NaiveWataScheme : public WataScheme {
 public:
  using WataScheme::WataScheme;

 protected:
  Status DoStart() override {
    // Days 1..W over the first n-1 clusters (ceil-first), I_n empty.
    std::vector<TimeSet> clusters =
        SplitWindow(config_.window, config_.num_indexes - 1);
    clusters.emplace_back();  // I_n starts with no days
    for (size_t j = 0; j < clusters.size(); ++j) {
      WAVEKIT_ASSIGN_OR_RETURN(
          std::shared_ptr<ConstituentIndex> index,
          BuildIndex(clusters[j], "I" + std::to_string(j + 1), Phase::kStart,
                     static_cast<int>(j)));
      slots_.push_back(std::move(index));
    }
    RegisterSlots();
    last_ = slots_.size() - 1;  // new days go to the (empty) last index
    return Status::OK();
  }
};

class Table4Test : public testing::StoreTest {
 protected:
  template <typename SchemeT>
  std::unique_ptr<SchemeT> StartScheme(int window, int n) {
    SchemeConfig config;
    config.window = window;
    config.num_indexes = n;
    config.technique = UpdateTechniqueKind::kSimpleShadow;
    auto scheme = std::make_unique<SchemeT>(Env(), config);
    std::vector<DayBatch> first;
    for (Day d = 1; d <= window; ++d) first.push_back(MakeMixedBatch(d));
    Status s = scheme->Start(std::move(first));
    EXPECT_TRUE(s.ok()) << s.ToString();
    return scheme;
  }

  std::vector<TimeSet> Clusters(const Scheme& scheme) const {
    std::vector<TimeSet> out;
    for (const auto& c : scheme.wave().constituents()) {
      out.push_back(c->time_set());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  static std::vector<TimeSet> Sorted(std::vector<TimeSet> clusters) {
    std::sort(clusters.begin(), clusters.end());
    return clusters;
  }
};

TEST_F(Table4Test, ReplicatesTable4Transitions) {
  auto scheme = StartScheme<NaiveWataScheme>(10, 4);
  // Day 10 row: {1,2,3,4}, {5,6,7}, {8,9,10}, {} (the empty I_4 is real but
  // covers no days).
  EXPECT_EQ(Clusters(*scheme),
            Sorted({{}, {1, 2, 3, 4}, {5, 6, 7}, {8, 9, 10}}));
  ASSERT_OK(scheme->Transition(MakeMixedBatch(11)));
  EXPECT_EQ(Clusters(*scheme),
            Sorted({{11}, {1, 2, 3, 4}, {5, 6, 7}, {8, 9, 10}}));
  ASSERT_OK(scheme->Transition(MakeMixedBatch(12)));
  ASSERT_OK(scheme->Transition(MakeMixedBatch(13)));
  // Day 13 row: total days indexed = 13 (the variant's peak).
  EXPECT_EQ(Clusters(*scheme),
            Sorted({{11, 12, 13}, {1, 2, 3, 4}, {5, 6, 7}, {8, 9, 10}}));
  EXPECT_EQ(scheme->WaveLength(), 13);
  // Day 14 row: I_1 <- phi.
  ASSERT_OK(scheme->Transition(MakeMixedBatch(14)));
  EXPECT_EQ(Clusters(*scheme),
            Sorted({{14}, {11, 12, 13}, {5, 6, 7}, {8, 9, 10}}));
}

TEST_F(Table4Test, NaiveSplitHasWorseLengthThanWataStar) {
  // "Since the example in Table 3 has a smaller length, it indexes fewer
  // extra days thereby providing a tighter window."
  auto naive = StartScheme<NaiveWataScheme>(10, 4);
  int naive_max = naive->WaveLength();
  for (Day d = 11; d <= 40; ++d) {
    ASSERT_OK(naive->Transition(MakeMixedBatch(d)));
    naive_max = std::max(naive_max, naive->WaveLength());
  }

  day_store_.Prune(kDayPosInf);
  auto star = StartScheme<WataScheme>(10, 4);
  int star_max = star->WaveLength();
  for (Day d = 11; d <= 40; ++d) {
    ASSERT_OK(star->Transition(MakeMixedBatch(d)));
    star_max = std::max(star_max, star->WaveLength());
  }

  EXPECT_EQ(naive_max, 13);  // Table 4's length
  EXPECT_EQ(star_max, 12);   // Table 3's length = Theorem 2's optimum
  EXPECT_LT(star_max, naive_max);
}

TEST_F(Table4Test, NaiveVariantStillMaintainsASoftWindowCorrectly) {
  auto scheme = StartScheme<NaiveWataScheme>(10, 4);
  for (Day d = 11; d <= 35; ++d) {
    ASSERT_OK(scheme->Transition(MakeMixedBatch(d)));
    const TimeSet covered = scheme->wave().CoveredDays();
    for (Day k = d - 9; k <= d; ++k) {
      ASSERT_TRUE(covered.contains(k)) << "day " << k << " missing at " << d;
    }
  }
}

}  // namespace
}  // namespace wavekit
