# Empty compiler generated dependencies file for scheme_robustness_test.
# This may be replaced when dependencies are built.
