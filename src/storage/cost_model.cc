#include "storage/cost_model.h"

#include "util/format.h"

namespace wavekit {

IoCounters& IoCounters::operator+=(const IoCounters& other) {
  seeks += other.seeks;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  read_ops += other.read_ops;
  write_ops += other.write_ops;
  sync_ops += other.sync_ops;
  return *this;
}

IoCounters operator-(const IoCounters& a, const IoCounters& b) {
  IoCounters out;
  out.seeks = a.seeks - b.seeks;
  out.bytes_read = a.bytes_read - b.bytes_read;
  out.bytes_written = a.bytes_written - b.bytes_written;
  out.read_ops = a.read_ops - b.read_ops;
  out.write_ops = a.write_ops - b.write_ops;
  out.sync_ops = a.sync_ops - b.sync_ops;
  return out;
}

std::string IoCounters::ToString() const {
  return "seeks=" + FormatCount(seeks) +
         " read=" + FormatBytes(bytes_read) +
         " written=" + FormatBytes(bytes_written) +
         " ops=" + FormatCount(read_ops + write_ops) +
         (sync_ops > 0 ? " syncs=" + FormatCount(sync_ops) : "");
}

}  // namespace wavekit
