#include "util/day.h"

#include <gtest/gtest.h>

#include "util/format.h"

namespace wavekit {
namespace {

TEST(DayRangeTest, AllContainsEverything) {
  DayRange all = DayRange::All();
  EXPECT_TRUE(all.Contains(kDayNegInf));
  EXPECT_TRUE(all.Contains(0));
  EXPECT_TRUE(all.Contains(kDayPosInf));
}

TEST(DayRangeTest, WindowBounds) {
  DayRange w = DayRange::Window(/*latest=*/10, /*w=*/7);
  EXPECT_EQ(w.lo, 4);
  EXPECT_EQ(w.hi, 10);
  EXPECT_FALSE(w.Contains(3));
  EXPECT_TRUE(w.Contains(4));
  EXPECT_TRUE(w.Contains(10));
  EXPECT_FALSE(w.Contains(11));
}

TEST(DayRangeTest, IntersectsTimeSet) {
  DayRange r{5, 8};
  EXPECT_TRUE(r.Intersects({5}));
  EXPECT_TRUE(r.Intersects({1, 8}));
  EXPECT_TRUE(r.Intersects({6, 20}));
  EXPECT_FALSE(r.Intersects({1, 4}));
  EXPECT_FALSE(r.Intersects({9, 10}));
  EXPECT_FALSE(r.Intersects({}));
}

TEST(DayRangeTest, CoversTimeSet) {
  DayRange r{5, 8};
  EXPECT_TRUE(r.Covers({5, 8}));
  EXPECT_TRUE(r.Covers({6}));
  EXPECT_FALSE(r.Covers({4, 6}));
  EXPECT_FALSE(r.Covers({6, 9}));
  EXPECT_FALSE(r.Covers({}));  // an empty set is not "covered"
}

TEST(DayRangeTest, CoversImpliesIntersects) {
  DayRange r{2, 9};
  for (Day lo = 1; lo <= 10; ++lo) {
    for (Day hi = lo; hi <= 10; ++hi) {
      TimeSet ts;
      for (Day d = lo; d <= hi; ++d) ts.insert(d);
      if (r.Covers(ts)) {
        EXPECT_TRUE(r.Intersects(ts));
      }
    }
  }
}

TEST(TimeSetTest, ToStringFormatsSorted) {
  EXPECT_EQ(TimeSetToString({}), "{}");
  EXPECT_EQ(TimeSetToString({3}), "{3}");
  EXPECT_EQ(TimeSetToString({11, 2, 5}), "{2, 5, 11}");
}

}  // namespace
}  // namespace wavekit
