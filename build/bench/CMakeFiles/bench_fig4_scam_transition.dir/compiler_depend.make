# Empty compiler generated dependencies file for bench_fig4_scam_transition.
# This may be replaced when dependencies are built.
