// Figure 9: how total daily work scales with the window size W (4 days to 6
// weeks) at fixed n = 4, SCAM parameters.

#include "bench/common.h"

namespace wavekit {
namespace bench {
namespace {

int Run() {
  Banner("Figure 9: SCAM work per day vs window size W (n=4)",
         "Reindexing-based schemes index O(W/n) days per day and do NOT "
         "scale with W; DEL, WATA and RATA index a small constant number of "
         "days and scale very well.");

  const model::CaseParams params = model::CaseParams::Scam();
  const int n = 4;
  const std::vector<int> windows = {4, 7, 14, 21, 28, 42};

  std::vector<std::string> headers = {"W"};
  for (SchemeKind kind : PaperSchemes()) headers.push_back(SchemeKindName(kind));
  sim::TablePrinter table(headers);
  table.SetTitle("Total work seconds/day (modeled, simple shadowing)");

  std::map<SchemeKind, std::map<int, double>> series;
  for (int window : windows) {
    std::vector<std::string> row = {std::to_string(window)};
    for (SchemeKind kind : PaperSchemes()) {
      series[kind][window] = TotalWorkOrDie(
          kind, UpdateTechniqueKind::kSimpleShadow, params, window, n)
                                 .total();
      row.push_back(Fmt(series[kind][window], 0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  ShapeChecks checks;
  auto growth = [&](SchemeKind kind) {
    return series[kind][42] / series[kind][4];
  };
  checks.Check(growth(SchemeKind::kReindex) > 3.0,
               "REINDEX's work grows steeply with W (O(W/n) rebuild)");
  checks.Check(growth(SchemeKind::kReindexPlus) > 2.0,
               "REINDEX+ also fails to scale with W");
  for (SchemeKind kind :
       {SchemeKind::kDel, SchemeKind::kWata, SchemeKind::kRata}) {
    checks.Check(growth(kind) < 2.0,
                 std::string(SchemeKindName(kind)) +
                     " scales well with W (constant days indexed per day)");
  }
  checks.Check(growth(SchemeKind::kReindex) > 2 * growth(SchemeKind::kWata),
               "the scaling gap is large: worth choosing WATA over REINDEX "
               "if the window may grow (paper's W=14 advice)");
  return checks.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace wavekit

int main() { return wavekit::bench::Run(); }
