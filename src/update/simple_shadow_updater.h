// SimpleShadowUpdater: Section 2.1's simple shadow updating.

#ifndef WAVEKIT_UPDATE_SIMPLE_SHADOW_UPDATER_H_
#define WAVEKIT_UPDATE_SIMPLE_SHADOW_UPDATER_H_

#include "update/update_technique.h"

namespace wavekit {

/// \brief Copies the index (the CP operation), applies the update to the
/// copy in place, then swaps the copy in. Queries proceed against the old
/// version during the update, so no concurrency control is needed; the cost
/// is the transient extra space of the shadow and an unpacked result.
class SimpleShadowUpdater : public Updater {
 public:
  UpdateTechniqueKind kind() const override {
    return UpdateTechniqueKind::kSimpleShadow;
  }
  Status Apply(std::shared_ptr<ConstituentIndex>* index,
               std::span<const DayBatch* const> adds,
               const TimeSet& deletes) override;
};

}  // namespace wavekit

#endif  // WAVEKIT_UPDATE_SIMPLE_SHADOW_UPDATER_H_
