# Empty compiler generated dependencies file for query_model_test.
# This may be replaced when dependencies are built.
