file(REMOVE_RECURSE
  "CMakeFiles/netnews_test.dir/workload/netnews_test.cc.o"
  "CMakeFiles/netnews_test.dir/workload/netnews_test.cc.o.d"
  "netnews_test"
  "netnews_test.pdb"
  "netnews_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netnews_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
