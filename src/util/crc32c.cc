// CRC-32C (Castagnoli) out-of-line engines — see crc32c.h for the dispatch
// story. The interesting piece here is the 3-way interleaved hardware loop:
// the x86 `crc32` instruction has 3-cycle latency but 1-cycle throughput, so
// a single serial chain runs at a third of peak. Splitting the buffer into
// three lanes fills the pipeline; the per-lane CRCs are recombined with a
// precomputed GF(2) "advance by N zero bytes" operator (CRC is linear over
// GF(2), so state after A||B  ==  shift_|B|(state after A) XOR crc0(B)).

#include "util/crc32c.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace wavekit {
namespace crc32c_internal {
namespace {

constexpr uint32_t kPolynomial = 0x82F63B78u;  // reflected Castagnoli

// kTables[0] is the classic byte table; kTables[k][i] advances a CRC whose
// low byte is i through k additional zero bytes — together they let
// slicing-by-8 consume a 64-bit word with eight independent lookups.
constexpr std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
    }
    tables[0][i] = crc;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      tables[k][i] = (tables[k - 1][i] >> 8) ^ tables[0][tables[k - 1][i] & 0xFFu];
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kTables = MakeTables();

uint32_t UpdateBytewise(uint32_t state, const unsigned char* bytes,
                        size_t length) {
  for (size_t i = 0; i < length; ++i) {
    state = (state >> 8) ^ kTables[0][(state ^ bytes[i]) & 0xFFu];
  }
  return state;
}

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
[[maybe_unused]] uint32_t UpdateSlicing8(uint32_t state,
                                         const unsigned char* bytes,
                                         size_t length) {
  while (length >= 8) {
    uint64_t word;
    std::memcpy(&word, bytes, 8);
    word ^= state;
    state = kTables[7][word & 0xFFu] ^ kTables[6][(word >> 8) & 0xFFu] ^
            kTables[5][(word >> 16) & 0xFFu] ^
            kTables[4][(word >> 24) & 0xFFu] ^
            kTables[3][(word >> 32) & 0xFFu] ^
            kTables[2][(word >> 40) & 0xFFu] ^
            kTables[1][(word >> 48) & 0xFFu] ^
            kTables[0][(word >> 56) & 0xFFu];
    bytes += 8;
    length -= 8;
  }
  return UpdateBytewise(state, bytes, length);
}
#else
[[maybe_unused]] uint32_t UpdateSlicing8(uint32_t state,
                                         const unsigned char* bytes,
                                         size_t length) {
  return UpdateBytewise(state, bytes, length);
}
#endif

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define WAVEKIT_CRC32C_X86 1

// ---- GF(2) machinery for the 3-way recombine ----------------------------
//
// A 32x32 bit-matrix, stored as the images of the 32 basis vectors. All of
// this runs at compile time; at runtime a recombine is eight table lookups.

using Gf2Matrix = std::array<uint32_t, 32>;

constexpr uint32_t Gf2Times(const Gf2Matrix& mat, uint32_t vec) {
  uint32_t sum = 0;
  for (int bit = 0; vec != 0; ++bit, vec >>= 1) {
    if (vec & 1u) sum ^= mat[bit];
  }
  return sum;
}

constexpr Gf2Matrix Gf2Square(const Gf2Matrix& mat) {
  Gf2Matrix squared{};
  for (int bit = 0; bit < 32; ++bit) squared[bit] = Gf2Times(mat, mat[bit]);
  return squared;
}

// The operator that advances a raw CRC state through ONE zero byte
// (equivalently: eight reflected bit-steps with zero input).
constexpr Gf2Matrix ZeroByteOperator() {
  Gf2Matrix mat{};
  for (int bit = 0; bit < 32; ++bit) {
    uint32_t v = uint32_t{1} << bit;
    for (int step = 0; step < 8; ++step) {
      v = (v >> 1) ^ ((v & 1) ? kPolynomial : 0);
    }
    mat[bit] = v;
  }
  return mat;
}

using LaneShiftTables = std::array<std::array<uint32_t, 256>, 4>;

// ZeroByteOperator() ** kLaneBytes, as 4x256 lookup tables: applying the
// matrix to a 32-bit state is one lookup per state byte, XORed together.
// `kLaneBytes` must be a power of two (the operator is built by repeated
// squaring) and a multiple of 8.
template <size_t kLaneBytes>
constexpr LaneShiftTables MakeLaneShiftTables() {
  Gf2Matrix mat = ZeroByteOperator();
  for (size_t n = 1; n < kLaneBytes; n <<= 1) mat = Gf2Square(mat);
  LaneShiftTables tables{};
  for (size_t k = 0; k < 4; ++k) {
    for (uint32_t b = 0; b < 256; ++b) {
      tables[k][b] = Gf2Times(mat, b << (8 * k));
    }
  }
  return tables;
}

// Lane sizes graduated so mid-size buffers (a few hundred bytes — dense
// postings buckets) still get three chains: a single serial chain is
// latency-bound at a third of the instruction's throughput AND stalls
// in-order retirement, which blocks the out-of-order overlap with the
// caller's surrounding work that the fused scan loop relies on.
constexpr LaneShiftTables kLaneShift1024 = MakeLaneShiftTables<1024>();
constexpr LaneShiftTables kLaneShift256 = MakeLaneShiftTables<256>();
constexpr LaneShiftTables kLaneShift64 = MakeLaneShiftTables<64>();

// state advanced through the table's lane size in zero bytes.
inline uint32_t ShiftLane(const LaneShiftTables& shift, uint32_t state) {
  return shift[0][state & 0xFFu] ^ shift[1][(state >> 8) & 0xFFu] ^
         shift[2][(state >> 16) & 0xFFu] ^ shift[3][state >> 24];
}

__attribute__((target("sse4.2"))) uint32_t UpdateHardware(
    uint32_t state, const unsigned char* bytes, size_t length) {
  uint64_t crc = state;
  // Three independent dependency chains over three adjacent lanes, then a
  // recombine: crc(L0||L1||L2) = shift(shift(c0) ^ c1) ^ c2, where c1 and
  // c2 start from a zero state. Runs the largest lane size the remaining
  // length supports, then steps down.
  auto three_way = [&](size_t lane, const LaneShiftTables& shift) {
    while (length >= 3 * lane) {
      uint64_t c0 = crc;
      uint64_t c1 = 0;
      uint64_t c2 = 0;
      const unsigned char* lane1 = bytes + lane;
      const unsigned char* lane2 = bytes + 2 * lane;
      for (size_t i = 0; i < lane; i += 8) {
        uint64_t w0, w1, w2;
        std::memcpy(&w0, bytes + i, 8);
        std::memcpy(&w1, lane1 + i, 8);
        std::memcpy(&w2, lane2 + i, 8);
        c0 = __builtin_ia32_crc32di(c0, w0);
        c1 = __builtin_ia32_crc32di(c1, w1);
        c2 = __builtin_ia32_crc32di(c2, w2);
      }
      crc = ShiftLane(shift, ShiftLane(shift, static_cast<uint32_t>(c0)) ^
                                 static_cast<uint32_t>(c1)) ^
            static_cast<uint32_t>(c2);
      bytes += 3 * lane;
      length -= 3 * lane;
    }
  };
  three_way(1024, kLaneShift1024);
  three_way(256, kLaneShift256);
  three_way(64, kLaneShift64);
  while (length >= 8) {
    uint64_t word;
    std::memcpy(&word, bytes, 8);
    crc = __builtin_ia32_crc32di(crc, word);
    bytes += 8;
    length -= 8;
  }
  auto crc32 = static_cast<uint32_t>(crc);
  while (length > 0) {
    crc32 = __builtin_ia32_crc32qi(crc32, *bytes);
    ++bytes;
    --length;
  }
  return crc32;
}
#endif  // x86-64

#if !defined(__SSE4_2__)
using UpdateFn = uint32_t (*)(uint32_t, const unsigned char*, size_t);

UpdateFn PickEngine() {
#if defined(WAVEKIT_CRC32C_X86)
  // Built without -msse4.2: the instruction needs a runtime CPU check.
  if (__builtin_cpu_supports("sse4.2")) return &UpdateHardware;
#endif
  return &UpdateSlicing8;
}
#endif  // !__SSE4_2__

}  // namespace

uint32_t UpdateOutOfLine(uint32_t state, const void* data, size_t length) {
  const auto* bytes = static_cast<const unsigned char*>(data);
#if defined(__SSE4_2__)
  // The whole build targets SSE4.2 — no dispatch needed.
  return UpdateHardware(state, bytes, length);
#else
  static const UpdateFn engine = PickEngine();
  return engine(state, bytes, length);
#endif
}

}  // namespace crc32c_internal
}  // namespace wavekit
