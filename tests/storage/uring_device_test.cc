// UringDevice specifics beyond the backend conformance suite: ring usage
// counters, graceful fallback, batches larger than the queue depth, and
// mixed sparse/written batches through the real SQE path.

#include "storage/uring_device.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "testing/test_env.h"
#include "util/random.h"

namespace wavekit {
namespace {

class UringDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "wavekit_uring_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".dat";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

std::vector<std::byte> Filled(size_t n, uint8_t seed) {
  std::vector<std::byte> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed + i * 7) & 0xFF);
  }
  return out;
}

TEST_F(UringDeviceTest, OpensWithOrWithoutKernelSupport) {
  // Open must succeed either way; using_ring() reports which path serves.
  ASSERT_OK_AND_ASSIGN(auto device, UringDevice::Open(path_, 1 << 20));
  EXPECT_EQ(device->using_ring(), UringDevice::KernelSupported());
  EXPECT_EQ(device->capacity(), uint64_t{1} << 20);
}

TEST_F(UringDeviceTest, BatchesGoThroughTheRing) {
  if (!UringDevice::KernelSupported()) {
    GTEST_SKIP() << "kernel lacks io_uring (or seccomp blocks it)";
  }
  ASSERT_OK_AND_ASSIGN(auto device, UringDevice::Open(path_, 1 << 20));
  ASSERT_TRUE(device->using_ring());
  const std::vector<Extent> extents = {{0, 512}, {8192, 512}, {4096, 256}};
  std::vector<std::byte> data = Filled(1280, 3);
  ASSERT_OK(device->WriteBatch(extents, data));
  EXPECT_EQ(device->ring_batches(), 1u);
  EXPECT_EQ(device->ring_ops(), 3u);
  std::vector<std::byte> out(1280);
  ASSERT_OK(device->ReadBatch(extents, out));
  EXPECT_EQ(out, data);
  EXPECT_EQ(device->ring_batches(), 2u);
  EXPECT_EQ(device->ring_ops(), 6u);
}

TEST_F(UringDeviceTest, ScalarOpsBypassTheRing) {
  if (!UringDevice::KernelSupported()) {
    GTEST_SKIP() << "kernel lacks io_uring (or seccomp blocks it)";
  }
  ASSERT_OK_AND_ASSIGN(auto device, UringDevice::Open(path_, 1 << 20));
  std::vector<std::byte> data = Filled(100, 9);
  ASSERT_OK(device->Write(50, data));
  std::vector<std::byte> out(100);
  ASSERT_OK(device->Read(50, out));
  EXPECT_EQ(out, data);
  EXPECT_EQ(device->ring_batches(), 0u);  // single ops use plain pread/pwrite
}

TEST_F(UringDeviceTest, BatchLargerThanQueueDepthCompletes) {
  if (!UringDevice::KernelSupported()) {
    GTEST_SKIP() << "kernel lacks io_uring (or seccomp blocks it)";
  }
  UringDevice::Options options;
  options.queue_depth = 4;  // force multiple submission waves
  ASSERT_OK_AND_ASSIGN(auto device,
                       UringDevice::Open(path_, 1 << 22, options));
  Rng rng(testing::TestSeed(3));
  std::vector<Extent> extents;
  uint64_t cursor = 0;
  for (int i = 0; i < 64; ++i) {  // 16x the ring size
    const uint64_t length = 64 + rng.Uniform(900);
    extents.push_back({cursor, length});
    cursor += length + rng.Uniform(512);
  }
  uint64_t total = 0;
  for (const Extent& e : extents) total += e.length;
  std::vector<std::byte> data = Filled(total, 17);
  ASSERT_OK(device->WriteBatch(extents, data));
  std::vector<std::byte> out(total);
  ASSERT_OK(device->ReadBatch(extents, out));
  EXPECT_EQ(out, data);
  EXPECT_GE(device->ring_ops(), 128u);
}

TEST_F(UringDeviceTest, SparseReadsZeroFillThroughTheRing) {
  if (!UringDevice::KernelSupported()) {
    GTEST_SKIP() << "kernel lacks io_uring (or seccomp blocks it)";
  }
  ASSERT_OK_AND_ASSIGN(auto device, UringDevice::Open(path_, 1 << 20));
  ASSERT_OK(device->Write(0, Filled(128, 1)));  // file ends at 128
  const std::vector<Extent> extents = {{0, 128}, {100000, 256}, {64, 512}};
  std::vector<std::byte> out(896, std::byte{0xEE});
  ASSERT_OK(device->ReadBatch(extents, out));
  // Extent 0: written bytes; extent 1: wholly past EOF -> zeros; extent 2:
  // 64 written bytes then zeros (the short-read + zero-fill path).
  const std::vector<std::byte> head = Filled(128, 1);
  EXPECT_EQ(std::memcmp(out.data(), head.data(), 128), 0);
  for (size_t i = 128; i < 384; ++i) ASSERT_EQ(out[i], std::byte{0});
  EXPECT_EQ(std::memcmp(out.data() + 384, head.data() + 64, 64), 0);
  for (size_t i = 448; i < 896; ++i) ASSERT_EQ(out[i], std::byte{0});
}

TEST_F(UringDeviceTest, OverlappingWriteBatchFallsBackToCallOrder) {
  ASSERT_OK_AND_ASSIGN(auto device, UringDevice::Open(path_, 1 << 20));
  const uint64_t before = device->ring_batches();
  const std::vector<Extent> extents = {{10, 16}, {18, 16}};
  std::vector<std::byte> data(32);
  for (size_t i = 0; i < 16; ++i) data[i] = std::byte{0xAA};
  for (size_t i = 16; i < 32; ++i) data[i] = std::byte{0xBB};
  ASSERT_OK(device->WriteBatch(extents, data));
  EXPECT_EQ(device->ring_batches(), before);  // per-extent fallback, no ring
  std::vector<std::byte> out(24);
  ASSERT_OK(device->Read(10, out));
  for (size_t i = 0; i < 8; ++i) ASSERT_EQ(out[i], std::byte{0xAA});
  for (size_t i = 8; i < 24; ++i) ASSERT_EQ(out[i], std::byte{0xBB});
}

TEST_F(UringDeviceTest, DirectAlignedBatchesUseTheRing) {
  if (!UringDevice::KernelSupported()) {
    GTEST_SKIP() << "kernel lacks io_uring (or seccomp blocks it)";
  }
  if (!FileDevice::DirectIoSupported(::testing::TempDir())) {
    GTEST_SKIP() << "O_DIRECT unsupported on " << ::testing::TempDir();
  }
  UringDevice::Options options;
  options.direct_io = true;
  ASSERT_OK_AND_ASSIGN(auto device,
                       UringDevice::Open(path_, 1 << 22, options));
  ASSERT_TRUE(device->direct_io());
  ASSERT_TRUE(device->using_ring());
  // Block-aligned batch: staged into aligned memory, submitted as SQEs.
  const std::vector<Extent> aligned = {
      {0, 4096}, {3 * 4096, 2 * 4096}, {8 * 4096, 4096}};
  std::vector<std::byte> data = Filled(4 * 4096, 21);
  ASSERT_OK(device->WriteBatch(aligned, data));
  EXPECT_EQ(device->ring_batches(), 1u);
  EXPECT_EQ(device->ring_ops(), 3u);
  std::vector<std::byte> out(4 * 4096, std::byte{0xDD});
  ASSERT_OK(device->ReadBatch(aligned, out));
  EXPECT_EQ(out, data);
  EXPECT_EQ(device->ring_batches(), 2u);
  // An unaligned extent in the batch falls back to the bounce loop and must
  // still land correctly next to the ring-written bytes.
  const std::vector<Extent> unaligned = {{100, 64}, {2 * 4096, 4096}};
  std::vector<std::byte> mixed = Filled(64 + 4096, 42);
  ASSERT_OK(device->WriteBatch(unaligned, mixed));
  EXPECT_EQ(device->ring_batches(), 2u);  // unchanged: bounce path
  std::vector<std::byte> check(64);
  ASSERT_OK(device->Read(100, check));
  EXPECT_EQ(std::memcmp(check.data(), mixed.data(), 64), 0);
  std::vector<std::byte> head(100);
  ASSERT_OK(device->Read(0, head));
  EXPECT_EQ(std::memcmp(head.data(), data.data(), 100), 0);
}

TEST_F(UringDeviceTest, SyncPersistsAcrossReopen) {
  {
    ASSERT_OK_AND_ASSIGN(auto device, UringDevice::Open(path_, 1 << 20));
    ASSERT_OK(device->WriteBatch(
        std::vector<Extent>{{0, 64}, {4096, 64}}, Filled(128, 5)));
    ASSERT_OK(device->Sync());
  }
  ASSERT_OK_AND_ASSIGN(auto reopened, UringDevice::Open(path_, 1 << 20));
  std::vector<std::byte> out(128);
  ASSERT_OK(reopened->ReadBatch(std::vector<Extent>{{0, 64}, {4096, 64}},
                                out));
  EXPECT_EQ(out, Filled(128, 5));
}

}  // namespace
}  // namespace wavekit
