// TSan-targeted concurrency tests: readers hammer MetricsRegistry snapshots
// and Tracer rings while the instrumented components run at full tilt.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "testing/test_env.h"
#include "wave/wave_service.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;

TEST(ObsConcurrencyTest, RegistryInstrumentsAndSnapshotsRace) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.AddCounter("ops_total", "Ops.");
  obs::Gauge* gauge = registry.AddGauge("depth", "Depth.");
  ConcurrentHistogram* histogram = registry.AddHistogram("lat_us", "Latency.");
  std::atomic<uint64_t> callback_source{0};
  registry.AddCounterCallback("cb_total", "Callback.", {}, [&callback_source] {
    return callback_source.load(std::memory_order_relaxed);
  });

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        counter->Increment();
        gauge->Add(1.0);
        histogram->Record(static_cast<uint64_t>(i % 1000));
        callback_source.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Snapshot readers racing registration of late metrics.
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&registry, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        const obs::RegistrySnapshot snapshot = registry.Snapshot();
        ASSERT_GE(snapshot.metrics.size(), 4u);
        (void)snapshot.RenderPrometheus();
        (void)snapshot.RenderJson();
      }
    });
  }
  int late = 0;
  registry.AddGauge("late", "Registered mid-flight.", {}, &late);
  for (std::thread& t : threads) t.join();
  stop.store(true);
  for (std::thread& t : readers) t.join();
  registry.Unregister(&late);

  const obs::RegistrySnapshot final_snapshot = registry.Snapshot();
  constexpr uint64_t kTotal = uint64_t{kWriters} * kOpsPerWriter;
  ASSERT_EQ(final_snapshot.metrics.size(), 4u);
  for (const obs::MetricSnapshot& metric : final_snapshot.metrics) {
    if (metric.name == "depth") {
      EXPECT_DOUBLE_EQ(metric.value, static_cast<double>(kTotal));
    }
    if (metric.name == "ops_total" || metric.name == "cb_total") {
      EXPECT_DOUBLE_EQ(metric.value, static_cast<double>(kTotal));
    }
    if (metric.name == "lat_us") {
      EXPECT_EQ(metric.histogram.count(), kTotal);
    }
  }
}

TEST(ObsConcurrencyTest, ServiceObservabilityUnderConcurrentAdvance) {
  obs::MetricsRegistry registry;
  WaveService::Options options;
  options.scheme = SchemeKind::kWata;
  options.config.window = 6;
  options.config.num_indexes = 3;
  options.config.technique = UpdateTechniqueKind::kSimpleShadow;
  options.cache_blocks = 64;
  options.num_query_threads = 2;
  options.metrics_registry = &registry;
  options.trace_sample_rate = 1.0;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<WaveService> service,
                       WaveService::Create(options));

  std::vector<DayBatch> first_window;
  for (Day d = 1; d <= 6; ++d) first_window.push_back(MakeMixedBatch(d, 40));
  ASSERT_OK(service->Start(std::move(first_window)));

  // 8 reader threads: probes + registry snapshots + tracer ring reads, all
  // while the writer advances the window.
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 8; ++r) {
    readers.emplace_back([&, r] {
      const Value value = r % 2 == 0 ? "alpha" : "beta";
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<Entry> out;
        Status s = service->IndexProbe(value, &out);
        ASSERT_OK(s);
        const obs::RegistrySnapshot snapshot = registry.Snapshot();
        ASSERT_GT(snapshot.metrics.size(), 0u);
        (void)snapshot.RenderPrometheus();
        (void)service->tracer()->CompletedSpans();
      }
    });
  }

  constexpr Day kLastDay = 26;
  for (Day d = 7; d <= kLastDay; ++d) {
    ASSERT_OK(service->AdvanceDay(MakeMixedBatch(d, 40)));
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  // Every transition was traced, and the trace tree is well formed: each
  // non-root span's trace leads back to an AdvanceDay root.
  EXPECT_EQ(service->tracer()->roots_sampled(), service->tracer()->roots_started());
  const std::vector<obs::SpanRecord> spans =
      service->tracer()->CompletedSpans();
  ASSERT_FALSE(spans.empty());
  uint64_t advance_roots = 0;
  for (const obs::SpanRecord& span : spans) {
    if (span.parent_span_id == 0 && span.name == "AdvanceDay") ++advance_roots;
  }
  EXPECT_EQ(advance_roots, static_cast<uint64_t>(kLastDay - 6));

  // The registry view agrees with the service's own accounting.
  const ServiceMetrics metrics = service->Metrics();
  EXPECT_EQ(metrics.days_advanced, static_cast<uint64_t>(kLastDay - 6));
  bool saw_days_advanced = false;
  bool saw_device_phase = false;
  bool saw_cache = false;
  for (const obs::MetricSnapshot& metric : registry.Snapshot().metrics) {
    if (metric.name == "wavekit_service_days_advanced_total") {
      saw_days_advanced = true;
      EXPECT_DOUBLE_EQ(metric.value,
                       static_cast<double>(metrics.days_advanced));
    }
    if (metric.name == "wavekit_device_seeks_total") saw_device_phase = true;
    if (metric.name == "wavekit_cache_hits_total") saw_cache = true;
  }
  EXPECT_TRUE(saw_days_advanced);
  EXPECT_TRUE(saw_device_phase);
  EXPECT_TRUE(saw_cache);

  // Destroying the service must unregister everything it attached.
  service.reset();
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ObsConcurrencyTest, TracerSamplingFromManyThreads) {
  obs::Tracer::Options options;
  options.sample_rate = 0.5;
  options.ring_capacity = 128;
  obs::Tracer tracer(options);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::Span span = tracer.StartSpan("op");
        if (span.active()) {
          obs::Span child = tracer.StartSpan("child");
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  constexpr uint64_t kRoots = uint64_t{kThreads} * kSpansPerThread;
  EXPECT_EQ(tracer.roots_started(), kRoots);
  EXPECT_EQ(tracer.roots_sampled(), kRoots / 2);
  EXPECT_EQ(tracer.spans_recorded(), kRoots);  // root + child per sample
  EXPECT_EQ(tracer.CompletedSpans().size(), 128u);
}

}  // namespace
}  // namespace wavekit
