// FaultInjectingDevice: a deterministic chaos decorator for Device.
//
// Wraps any Device and injects, under seeded pseudo-random control:
//   - transient read/write errors (IOError; a retry may succeed),
//   - permanent bad ranges (every access failing, like a dead sector),
//   - torn writes (a crash mid-write persists a random prefix), and
//   - crash-after-N-writes (the N-th write from arming "crashes the
//     process": the triggering write is torn, and every subsequent I/O
//     fails until ClearCrash() simulates a restart).
//
// Everything is driven by util/random.h's Rng, so a (seed, operation
// sequence) pair replays exactly — torture tests iterate seeds and get
// reproducible failures. Named crash points (util/crash_point.h) complement
// this for protocol-level crash placement.

#ifndef WAVEKIT_STORAGE_FAULT_INJECTING_DEVICE_H_
#define WAVEKIT_STORAGE_FAULT_INJECTING_DEVICE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "storage/device.h"
#include "util/random.h"

namespace wavekit {

/// \brief Device decorator injecting deterministic, seeded faults.
///
/// Thread-safe: all state is guarded by one mutex (fault injection is a test
/// harness; serialization keeps replay deterministic even under races).
class FaultInjectingDevice : public Device {
 public:
  struct Options {
    /// Seed for the fault stream (same seed + same op sequence = same
    /// faults).
    uint64_t seed = 1;
    /// Probability that any given Read fails with a transient IOError.
    double read_error_rate = 0.0;
    /// Probability that any given Write fails with a transient IOError.
    double write_error_rate = 0.0;
    /// When true, a failed or crashing write first persists a random prefix
    /// of the data (torn write), modeling a sector-granularity disk.
    bool torn_writes = true;
  };

  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t injected_read_errors = 0;
    uint64_t injected_write_errors = 0;
    uint64_t torn_writes = 0;
    uint64_t crashes = 0;
  };

  /// `inner` must outlive this device.
  FaultInjectingDevice(Device* inner, Options options);
  explicit FaultInjectingDevice(Device* inner)
      : FaultInjectingDevice(inner, {}) {}

  Status Read(uint64_t offset, std::span<std::byte> out) override;
  Status Write(uint64_t offset, std::span<const std::byte> data) override;
  // ReadBatch/WriteBatch deliberately keep Device's default per-extent loop:
  // each extent of a batch counts as one op against error rates and the
  // crash-after-N-writes countdown, so a (seed, logical op sequence) pair
  // replays identically whether the caller batched or not, and a crash fires
  // between extents with the torn prefix confined to the dying extent.
  uint64_t capacity() const override { return inner_->capacity(); }
  // Fails when crashed (a dead process cannot flush), otherwise forwards; no
  // error-rate roll so fault-seed replay is unaffected by Sync placement.
  Status Sync() override;

  /// Adjusts transient error rates on the fly (e.g. fail only during a
  /// specific transition).
  void set_read_error_rate(double rate);
  void set_write_error_rate(double rate);

  /// Marks `extent` permanently bad: every Read or Write touching it fails
  /// (non-transient — retrying never helps).
  void AddBadRange(const Extent& extent);
  void ClearBadRanges();

  /// Arms a crash on the `countdown`-th Write from now (countdown >= 1). The
  /// triggering write persists a torn prefix (if Options::torn_writes), then
  /// the device enters the crashed state: all subsequent I/O fails with an
  /// injected-crash IOError until ClearCrash().
  void ArmCrashAfterWrites(uint64_t countdown);
  void DisarmCrash();

  /// Simulates a restart: leaves whatever bytes were persisted, clears the
  /// crashed state.
  void ClearCrash();
  bool crashed() const;

  Stats stats() const;

 private:
  bool InBadRange(uint64_t offset, size_t length) const;  // mutex_ held

  Device* inner_;
  mutable std::mutex mutex_;
  Options options_;
  Rng rng_;
  std::vector<Extent> bad_ranges_;
  uint64_t crash_countdown_ = 0;  // 0 = disarmed
  bool crashed_ = false;
  Stats stats_;
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_FAULT_INJECTING_DEVICE_H_
