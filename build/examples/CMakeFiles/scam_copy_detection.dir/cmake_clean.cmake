file(REMOVE_RECURSE
  "CMakeFiles/scam_copy_detection.dir/scam_copy_detection.cc.o"
  "CMakeFiles/scam_copy_detection.dir/scam_copy_detection.cc.o.d"
  "scam_copy_detection"
  "scam_copy_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scam_copy_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
