// DiskArray: several independent metered disks, for the multi-disk
// deployments the paper's Section 8 anticipates ("if n matches the number of
// disks, indexing can be parallelized easily... building new constituent
// indices on separate disks avoids contention").

#ifndef WAVEKIT_STORAGE_DISK_ARRAY_H_
#define WAVEKIT_STORAGE_DISK_ARRAY_H_

#include <memory>
#include <vector>

#include "storage/store.h"

namespace wavekit {

/// \brief Owns `num_disks` independent Stores and provides aggregate and
/// parallel-time accounting across them.
class DiskArray {
 public:
  explicit DiskArray(int num_disks,
                     uint64_t capacity_per_disk = uint64_t{4} << 30);

  /// Opens `num_disks` stores striped over the named registered backend,
  /// one backing file per disk at "<dir>/disk-<i>.wavedev" ("memory"
  /// ignores `dir`). Each store gets the backend's effective alignment,
  /// so O_DIRECT arrays place every extent block-aligned.
  static Result<std::unique_ptr<DiskArray>> Open(int num_disks,
                                                 uint64_t capacity_per_disk,
                                                 std::string_view backend,
                                                 const std::string& dir,
                                                 bool direct_io = false);

  int size() const { return static_cast<int>(disks_.size()); }

  Store* store(int i) { return disks_[static_cast<size_t>(i)].get(); }

  MeteredDevice* device(int i) { return disks_[static_cast<size_t>(i)]->device(); }
  ExtentAllocator* allocator(int i) {
    return disks_[static_cast<size_t>(i)]->allocator();
  }

  /// All devices (for MultiPhaseScope and scheme environments).
  std::vector<MeteredDevice*> devices();

  /// Sets the phase on every disk.
  void SetPhaseAll(Phase phase);

  /// Zeroes the counters of every disk.
  void ResetAll();

  /// Sum of one phase's counters over all disks.
  IoCounters TotalCounters(Phase phase) const;

  /// Elapsed seconds of one phase if all disks operate in PARALLEL: the
  /// slowest disk's modeled time.
  double ParallelSeconds(const CostModel& cost, Phase phase) const;

  /// Elapsed seconds if the same traffic went through ONE disk serially.
  double SerialSeconds(const CostModel& cost, Phase phase) const;

  /// Total allocated bytes across disks.
  uint64_t AllocatedBytes() const;

 private:
  DiskArray() = default;  // for Open()

  std::vector<std::unique_ptr<Store>> disks_;
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_DISK_ARRAY_H_
