# Empty compiler generated dependencies file for bench_fig10_scale_factor.
# This may be replaced when dependencies are built.
