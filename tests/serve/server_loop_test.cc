// ServerLoop conformance over real sockets: client round-trips, pipelining,
// the slow-loris idle timeout, version-mismatch teardown (one error frame,
// then close), drain-while-inflight, and admission refusal at the accept
// gate. Everything binds to 127.0.0.1 on an ephemeral port.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server_core.h"
#include "serve/server_loop.h"
#include "testing/test_env.h"
#include "util/net.h"
#include "wave/wave_service.h"

namespace wavekit {
namespace serve {
namespace {

using wavekit::testing::MakeMixedBatch;

constexpr int kWindow = 3;

std::unique_ptr<WaveService> MakeService() {
  WaveService::Options options;
  options.scheme = SchemeKind::kDel;
  options.config.window = kWindow;
  options.config.num_indexes = 2;
  options.config.technique = UpdateTechniqueKind::kSimpleShadow;
  auto service = WaveService::Create(std::move(options));
  EXPECT_OK(service.status());
  std::unique_ptr<WaveService> out = std::move(service).ValueOrDie();
  std::vector<DayBatch> first;
  for (Day d = 1; d <= kWindow; ++d) first.push_back(MakeMixedBatch(d));
  EXPECT_OK(out->Start(std::move(first)));
  return out;
}

/// Core + loop on an ephemeral port, one tenant, ready for clients.
struct TestDaemon {
  explicit TestDaemon(ServerCore::Options core_options = {},
                      int idle_timeout_ms = 30'000)
      : core(std::move(core_options)),
        loop(MakeLoopOptions(idle_timeout_ms), &core) {
    EXPECT_OK(core.AddTenant(0, MakeService()));
    EXPECT_OK(loop.Start());
  }

  static ServerLoop::Options MakeLoopOptions(int idle_timeout_ms) {
    ServerLoop::Options options;
    options.port = 0;
    options.idle_timeout_ms = idle_timeout_ms;
    return options;
  }

  std::unique_ptr<Client> Connect() {
    Client::Options options;
    options.port = loop.port();
    options.recv_timeout_sec = 10;
    auto client = Client::Connect(options);
    EXPECT_OK(client.status());
    return std::move(client).ValueOrDie();
  }

  ServerCore core;
  ServerLoop loop;
};

TEST(ServerLoopTest, ClientRoundTrips) {
  TestDaemon daemon;
  auto client = daemon.Connect();
  ASSERT_NE(client, nullptr);

  auto stats = client->Stats();
  ASSERT_OK(stats.status());
  EXPECT_EQ(stats->current_day, kWindow);

  auto probe = client->Probe(DayRange::Window(kWindow, kWindow), "alpha");
  ASSERT_OK(probe.status());
  EXPECT_TRUE(probe->result.ok()) << probe->result.detail;
  EXPECT_GT(probe->entries.size(), 0u);

  auto scan = client->Scan(DayRange::All());
  ASSERT_OK(scan.status());
  EXPECT_GE(scan->entries.size(), probe->entries.size());

  auto advance = client->Advance(MakeMixedBatch(kWindow + 1));
  ASSERT_OK(advance.status());
  EXPECT_EQ(advance->current_day, kWindow + 1);

  auto health = client->Health();
  ASSERT_OK(health.status());
  EXPECT_FALSE(health->degraded);
}

TEST(ServerLoopTest, PipelinedRequestsComeBackInOrder) {
  TestDaemon daemon;
  auto client = daemon.Connect();
  ASSERT_NE(client, nullptr);
  const DayRange range = DayRange::Window(kWindow, kWindow);

  std::vector<uint32_t> sent;
  for (int i = 0; i < 32; ++i) {
    auto id = client->SendProbe(range, "alpha");
    ASSERT_OK(id.status());
    sent.push_back(*id);
  }
  for (uint32_t expected : sent) {
    auto reply = client->ReadReply();
    ASSERT_OK(reply.status());
    EXPECT_EQ(reply->header.request_id, expected);
    QueryReply decoded;
    ASSERT_OK(DecodeQueryReply(reply->payload, &decoded));
    EXPECT_TRUE(decoded.result.ok());
  }
}

TEST(ServerLoopTest, SlowLorisConnectionIsClosed) {
  TestDaemon daemon({}, /*idle_timeout_ms=*/200);
  // A client that trickles half a header and goes silent must be reaped.
  auto fd = net::ConnectTcp("127.0.0.1", daemon.loop.port());
  ASSERT_OK(fd.status());
  const char half_header[6] = {0x0c, 0x00, 0x00, 0x00, 0x01, 0x01};
  ASSERT_OK(net::SendAll(*fd, half_header, sizeof half_header));

  ASSERT_OK(net::SetRecvTimeoutSec(*fd, 5));
  char buf[64];
  auto n = net::RecvSome(*fd, buf, sizeof buf);
  // The server closes without sending anything: clean EOF, not a frame.
  ASSERT_OK(n.status());
  EXPECT_EQ(*n, 0u);
  EXPECT_GE(daemon.loop.idle_closed(), 1u);
  ::close(*fd);
}

TEST(ServerLoopTest, ActivityKeepsIdleTimeoutAtBay) {
  TestDaemon daemon({}, /*idle_timeout_ms=*/400);
  auto client = daemon.Connect();
  ASSERT_NE(client, nullptr);
  // Each request resets the clock; 6 x 150ms of activity outlives 400ms.
  for (int i = 0; i < 6; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    auto stats = client->Stats();
    ASSERT_OK(stats.status()) << "request " << i;
  }
  EXPECT_EQ(daemon.loop.idle_closed(), 0u);
}

TEST(ServerLoopTest, VersionMismatchGetsErrorFrameThenClose) {
  TestDaemon daemon;
  auto fd = net::ConnectTcp("127.0.0.1", daemon.loop.port());
  ASSERT_OK(fd.status());
  const std::string bad =
      EncodeRawFrame(9, static_cast<uint8_t>(FrameType::kStats), 3, 7, "");
  ASSERT_OK(net::SendAll(*fd, bad));

  ASSERT_OK(net::SetRecvTimeoutSec(*fd, 5));
  FrameReader reader;
  Frame frame;
  bool got_frame = false;
  bool got_eof = false;
  char buf[4096];
  while (!got_eof) {
    auto n = net::RecvSome(*fd, buf, sizeof buf);
    ASSERT_OK(n.status());
    if (*n == 0) {
      got_eof = true;
      break;
    }
    ASSERT_OK(reader.Feed(buf, *n));
    if (reader.Next(&frame)) got_frame = true;
  }
  ASSERT_TRUE(got_frame) << "no final error frame before close";
  EXPECT_TRUE(got_eof);
  EXPECT_EQ(frame.header.type, static_cast<uint8_t>(FrameType::kErrorReply));
  // The error reply is addressed with the offending frame's ids.
  EXPECT_EQ(frame.header.tenant_id, 3);
  EXPECT_EQ(frame.header.request_id, 7u);
  WireResult result;
  ASSERT_OK(DecodeResultPrefix(frame.payload, &result));
  EXPECT_EQ(result.code, StatusCode::kInvalidArgument);
  ::close(*fd);
}

TEST(ServerLoopTest, DrainAnswersInflightThenCloses) {
  TestDaemon daemon;
  auto client = daemon.Connect();
  ASSERT_NE(client, nullptr);
  const DayRange range = DayRange::Window(kWindow, kWindow);

  // Fire pipelined probes and immediately drain: every request that made it
  // into the socket must still be answered before the connection closes.
  std::vector<uint32_t> sent;
  for (int i = 0; i < 16; ++i) {
    auto id = client->SendProbe(range, "alpha");
    ASSERT_OK(id.status());
    sent.push_back(*id);
  }
  std::thread drainer([&daemon] { daemon.loop.Drain(); });

  for (uint32_t expected : sent) {
    auto reply = client->ReadReply();
    ASSERT_OK(reply.status()) << "reply " << expected << " lost in drain";
    EXPECT_EQ(reply->header.request_id, expected);
  }
  // After the last reply the server closes: the next read is a clean EOF
  // surfaced as an error by the client.
  auto eof = client->ReadReply();
  EXPECT_FALSE(eof.ok());
  drainer.join();
  EXPECT_FALSE(daemon.loop.running());
  EXPECT_EQ(daemon.core.open_sessions(), 0u);

  // New connections are refused post-drain (nothing is listening).
  auto refused = net::ConnectTcp("127.0.0.1", daemon.loop.port());
  EXPECT_FALSE(refused.ok());
}

TEST(ServerLoopTest, SessionLimitRefusesAtAccept) {
  ServerCore::Options core_options;
  core_options.max_sessions = 1;
  TestDaemon daemon(core_options);
  auto first = daemon.Connect();
  ASSERT_NE(first, nullptr);
  ASSERT_OK(first->Stats().status());  // session 1 is live

  // The second connection is accepted by the kernel, then closed by the loop
  // without a frame: the client sees EOF on its first read.
  auto fd = net::ConnectTcp("127.0.0.1", daemon.loop.port());
  ASSERT_OK(fd.status());
  ASSERT_OK(net::SetRecvTimeoutSec(*fd, 5));
  char buf[16];
  auto n = net::RecvSome(*fd, buf, sizeof buf);
  ASSERT_OK(n.status());
  EXPECT_EQ(*n, 0u);
  ::close(*fd);

  // Closing the first session frees the slot.
  first.reset();
  for (int i = 0; i < 50; ++i) {
    if (daemon.core.open_sessions() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  auto second = daemon.Connect();
  ASSERT_NE(second, nullptr);
  ASSERT_OK(second->Stats().status());
}

}  // namespace
}  // namespace serve
}  // namespace wavekit
