#include "update/in_place_updater.h"

#include "util/macros.h"

namespace wavekit {

Status InPlaceUpdater::Apply(std::shared_ptr<ConstituentIndex>* index,
                             std::span<const DayBatch* const> adds,
                             const TimeSet& deletes) {
  ConstituentIndex* idx = index->get();
  WAVEKIT_RETURN_NOT_OK(idx->DeleteDays(deletes));
  for (const DayBatch* batch : adds) {
    WAVEKIT_RETURN_NOT_OK(idx->AddBatch(*batch));
  }
  return Status::OK();
}

}  // namespace wavekit
