// Micro-benchmarks of daily transitions for every maintenance scheme
// (real wall-clock time of the library on a scaled Netnews stream).

#include <benchmark/benchmark.h>

#include "storage/store.h"
#include "wave/scheme_factory.h"
#include "workload/netnews.h"

namespace wavekit {
namespace {

void BM_Transition(benchmark::State& state) {
  const SchemeKind kind = static_cast<SchemeKind>(state.range(0));
  const auto technique = static_cast<UpdateTechniqueKind>(state.range(1));
  const int window = 7;
  const int n = 3;

  workload::NetnewsConfig netnews_config;
  netnews_config.articles_per_day = 100;
  netnews_config.words_per_article = 15;
  netnews_config.vocabulary_size = 2000;

  Store store;
  DayStore day_store;
  SchemeConfig config;
  config.window = window;
  config.num_indexes = n;
  config.technique = technique;
  auto made = MakeScheme(kind, SchemeEnv{store.device(), store.allocator(),
                                         &day_store},
                         config);
  if (!made.ok()) made.status().Abort("MakeScheme");
  std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();
  workload::NetnewsGenerator gen(netnews_config);
  std::vector<DayBatch> first;
  for (Day d = 1; d <= window; ++d) first.push_back(gen.GenerateDay(d));
  scheme->Start(std::move(first)).Abort("Start");

  uint64_t entries_per_day = 0;
  for (auto _ : state) {
    DayBatch batch = gen.GenerateDay(scheme->current_day() + 1);
    entries_per_day = batch.EntryCount();
    scheme->Transition(std::move(batch)).Abort("Transition");
  }
  state.SetItemsProcessed(static_cast<int64_t>(entries_per_day) *
                          state.iterations());
  state.SetLabel(std::string(SchemeKindName(kind)) + "/" +
                 UpdateTechniqueKindName(technique));
}

void RegisterAll() {
  for (SchemeKind kind : kAllSchemeKinds) {
    for (UpdateTechniqueKind technique :
         {UpdateTechniqueKind::kInPlace, UpdateTechniqueKind::kSimpleShadow,
          UpdateTechniqueKind::kPackedShadow}) {
      ::benchmark::RegisterBenchmark(
          (std::string("BM_Transition/") + SchemeKindName(kind) + "/" +
           UpdateTechniqueKindName(technique))
              .c_str(),
          BM_Transition)
          ->Args({static_cast<long>(kind), static_cast<long>(technique)});
    }
  }
}

}  // namespace
}  // namespace wavekit

int main(int argc, char** argv) {
  wavekit::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
