// Compressed constituents end to end: packed builds under CodecMode::kAuto
// must answer every probe/scan exactly like a raw build, keep serial/parallel
// byte-parity, fall back to kRaw on mutation (append / day delete), survive
// cloning, shrink the on-device footprint, and fail closed (DataLoss +
// quarantine) when a compressed extent rots.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "index/codec.h"
#include "index/constituent_index.h"
#include "index/index_builder.h"
#include "storage/store.h"
#include "testing/test_env.h"
#include "util/thread_pool.h"

namespace wavekit {
namespace {

using testing::MakeBatch;
using testing::MakeMixedBatch;
using testing::ReferenceIndex;

std::vector<const DayBatch*> Pointers(const std::vector<DayBatch>& batches) {
  std::vector<const DayBatch*> out;
  for (const DayBatch& batch : batches) out.push_back(&batch);
  return out;
}

std::vector<DayBatch> Workload(int days, uint64_t records_per_day = 48) {
  std::vector<DayBatch> batches;
  for (Day d = 1; d <= days; ++d) {
    batches.push_back(MakeMixedBatch(d, records_per_day));
  }
  return batches;
}

/// Scan-order (value, entry) pairs: equality asserts identical layout.
std::vector<std::pair<Value, Entry>> ScanPairs(const ConstituentIndex& index) {
  std::vector<std::pair<Value, Entry>> out;
  Status s = index.Scan([&out](const Value& value, const Entry& entry) {
    out.emplace_back(value, entry);
  });
  if (!s.ok()) s.Abort("scan");
  return out;
}

/// Bucket geometry including the codec column.
std::vector<std::tuple<Value, uint64_t, uint64_t, uint32_t, int>> BucketTable(
    const ConstituentIndex& index) {
  std::vector<std::tuple<Value, uint64_t, uint64_t, uint32_t, int>> out;
  Status s = index.ForEachBucket(
      [&out](const Value& value, const BucketInfo& info) {
        out.emplace_back(value, info.extent.offset, info.stored_length(),
                         info.count, static_cast<int>(info.codec));
      });
  if (!s.ok()) s.Abort("buckets");
  return out;
}

class CompressedIndexTest : public ::testing::Test {
 protected:
  CompressedIndexTest() : store_(uint64_t{1} << 28) {}

  ConstituentIndex::Options AutoOptions() const {
    ConstituentIndex::Options options;
    options.codec = CodecMode::kAuto;
    return options;
  }

  Result<std::unique_ptr<ConstituentIndex>> BuildAuto(
      const std::vector<DayBatch>& batches, const std::string& name = "C") {
    return IndexBuilder::BuildPacked(store_.device(), store_.allocator(),
                                     AutoOptions(), Pointers(batches), name);
  }

  Store store_;
};

TEST_F(CompressedIndexTest, PackedAutoBuildMatchesRawAnswers) {
  const std::vector<DayBatch> batches = Workload(4);
  ReferenceIndex reference;
  for (const DayBatch& batch : batches) reference.Add(batch);

  Store raw_store(uint64_t{1} << 28);
  ASSERT_OK_AND_ASSIGN(
      auto raw, IndexBuilder::BuildPacked(raw_store.device(),
                                          raw_store.allocator(), {},
                                          Pointers(batches), "raw"));
  ASSERT_OK_AND_ASSIGN(auto packed, BuildAuto(batches));

  ASSERT_OK(packed->CheckPacked());
  ASSERT_OK(packed->CheckConsistency());

  const ConstituentIndex::CodecBreakdown stats = packed->CodecStats();
  EXPECT_GT(stats.buckets[1] + stats.buckets[2], 0u)
      << "auto build compressed nothing";
  EXPECT_LT(stats.stored_bytes, stats.uncompressed_bytes);
  EXPECT_LT(packed->allocated_bytes(), raw->allocated_bytes());

  // Same answers, value by value and in a full scan.
  for (const Value& value : raw->layout_order()) {
    std::vector<Entry> raw_out, packed_out;
    ASSERT_OK(raw->Probe(value, &raw_out));
    ASSERT_OK(packed->Probe(value, &packed_out));
    ReferenceIndex::Sort(&raw_out);
    ReferenceIndex::Sort(&packed_out);
    EXPECT_EQ(raw_out, packed_out) << value;
    EXPECT_EQ(packed_out, reference.Probe(value, kDayNegInf, kDayPosInf));
  }
  std::vector<Entry> scanned;
  ASSERT_OK(packed->Scan(
      [&](const Value&, const Entry& e) { scanned.push_back(e); }));
  ReferenceIndex::Sort(&scanned);
  EXPECT_EQ(scanned, reference.ScanAll(kDayNegInf, kDayPosInf));
}

TEST_F(CompressedIndexTest, TimedProbeAndScanFilterCompressedBuckets) {
  const std::vector<DayBatch> batches = Workload(6);
  ReferenceIndex reference;
  for (const DayBatch& batch : batches) reference.Add(batch);
  ASSERT_OK_AND_ASSIGN(auto packed, BuildAuto(batches));

  const DayRange range{2, 4};
  for (const Value& value : packed->layout_order()) {
    std::vector<Entry> out;
    ASSERT_OK(packed->TimedProbe(value, range, &out));
    ReferenceIndex::Sort(&out);
    EXPECT_EQ(out, reference.Probe(value, range.lo, range.hi)) << value;
  }
  std::vector<Entry> scanned;
  ASSERT_OK(packed->TimedScan(range, [&](const Value&, const Entry& e) {
    scanned.push_back(e);
  }));
  ReferenceIndex::Sort(&scanned);
  EXPECT_EQ(scanned, reference.ScanAll(range.lo, range.hi));
}

TEST_F(CompressedIndexTest, SerialAndParallelBuildsAreByteIdentical) {
  const std::vector<DayBatch> batches = Workload(5, /*records_per_day=*/64);
  ThreadPool pool(4);
  const ParallelContext parallel{&pool, 4};
  Store parallel_store(uint64_t{1} << 28);
  ASSERT_OK_AND_ASSIGN(auto serial, BuildAuto(batches, "serial"));
  ASSERT_OK_AND_ASSIGN(
      auto concurrent,
      IndexBuilder::BuildPacked(parallel_store.device(),
                                parallel_store.allocator(), AutoOptions(),
                                Pointers(batches), "parallel", parallel));
  EXPECT_OK(concurrent->CheckPacked());
  EXPECT_OK(concurrent->CheckConsistency());
  EXPECT_EQ(serial->allocated_bytes(), concurrent->allocated_bytes());
  EXPECT_EQ(serial->layout_order(), concurrent->layout_order());
  EXPECT_EQ(BucketTable(*serial), BucketTable(*concurrent));
  EXPECT_EQ(ScanPairs(*serial), ScanPairs(*concurrent));
  const auto serial_stats = serial->CodecStats();
  const auto parallel_stats = concurrent->CodecStats();
  EXPECT_GT(serial_stats.buckets[1] + serial_stats.buckets[2], 0u);
  EXPECT_EQ(serial_stats.stored_bytes, parallel_stats.stored_bytes);
}

TEST_F(CompressedIndexTest, AppendRewritesCompressedBucketAsRaw) {
  const std::vector<DayBatch> batches = Workload(4);
  ReferenceIndex reference;
  for (const DayBatch& batch : batches) reference.Add(batch);
  ASSERT_OK_AND_ASSIGN(auto packed, BuildAuto(batches));

  // Pick a compressed bucket and append to its value.
  Value target;
  ASSERT_OK(packed->ForEachBucket(
      [&target](const Value& value, const BucketInfo& info) {
        if (target.empty() && info.codec != Codec::kRaw) target = value;
      }));
  ASSERT_FALSE(target.empty()) << "auto build compressed nothing";

  const std::vector<Entry> extra = {Entry{900001, 5, 1},
                                    Entry{900002, 5, 2}};
  ASSERT_OK(packed->AppendEntries(target, extra));
  DayBatch batch;
  batch.day = 5;
  for (const Entry& e : extra) {
    Record record;
    record.record_id = e.record_id;
    record.day = e.day;
    record.aux = {e.aux};
    record.values = {target};
    batch.records.push_back(std::move(record));
  }
  reference.Add(batch);

  // The mutated bucket is raw again; its contents are intact.
  ASSERT_OK(packed->ForEachBucket(
      [&target](const Value& value, const BucketInfo& info) {
        if (value == target) {
          EXPECT_EQ(info.codec, Codec::kRaw);
        }
      }));
  std::vector<Entry> out;
  ASSERT_OK(packed->Probe(target, &out));
  ReferenceIndex::Sort(&out);
  EXPECT_EQ(out, reference.Probe(target, kDayNegInf, kDayPosInf));
  ASSERT_OK(packed->CheckConsistency());
}

TEST_F(CompressedIndexTest, DeleteDaysOnCompressedIndexMatchesReference) {
  const std::vector<DayBatch> batches = Workload(5);
  ReferenceIndex reference;
  for (const DayBatch& batch : batches) reference.Add(batch);
  ASSERT_OK_AND_ASSIGN(auto packed, BuildAuto(batches));

  const TimeSet doomed = {1, 2};
  ASSERT_OK(packed->DeleteDays(doomed));
  ASSERT_OK(packed->CheckConsistency());

  std::vector<Entry> scanned;
  ASSERT_OK(packed->Scan(
      [&](const Value&, const Entry& e) { scanned.push_back(e); }));
  ReferenceIndex::Sort(&scanned);
  EXPECT_EQ(scanned, reference.ScanAll(3, kDayPosInf));
  // Buckets that intersected the deleted days were rewritten raw
  // (compressed extents are immutable); untouched buckets keep their codec.
  std::set<Value> touched;
  for (const DayBatch& batch : batches) {
    if (batch.day > 2) continue;
    for (const Record& record : batch.records) {
      touched.insert(record.values.begin(), record.values.end());
    }
  }
  ASSERT_OK(packed->ForEachBucket(
      [&touched](const Value& value, const BucketInfo& info) {
        if (touched.contains(value)) {
          EXPECT_EQ(info.codec, Codec::kRaw) << value;
        }
      }));
}

TEST_F(CompressedIndexTest, ClonePreservesCodecsAndAnswers) {
  const std::vector<DayBatch> batches = Workload(4);
  ASSERT_OK_AND_ASSIGN(auto packed, BuildAuto(batches));
  ASSERT_OK_AND_ASSIGN(auto clone, packed->Clone("C_cp"));
  EXPECT_OK(clone->CheckPacked());
  EXPECT_OK(clone->CheckConsistency());
  EXPECT_EQ(packed->allocated_bytes(), clone->allocated_bytes());
  EXPECT_EQ(packed->layout_order(), clone->layout_order());
  EXPECT_EQ(ScanPairs(*packed), ScanPairs(*clone));
  const auto a = packed->CodecStats();
  const auto b = clone->CodecStats();
  for (int c = 0; c < kNumCodecs; ++c) EXPECT_EQ(a.buckets[c], b.buckets[c]);
  EXPECT_EQ(a.stored_bytes, b.stored_bytes);
  EXPECT_EQ(a.uncompressed_bytes, b.uncompressed_bytes);
}

TEST_F(CompressedIndexTest, CorruptCompressedExtentFailsClosed) {
  const std::vector<DayBatch> batches = Workload(4);
  ASSERT_OK_AND_ASSIGN(auto packed, BuildAuto(batches));

  Value target;
  Extent extent;
  ASSERT_OK(packed->ForEachBucket(
      [&](const Value& value, const BucketInfo& info) {
        if (target.empty() && info.codec != Codec::kRaw) {
          target = value;
          extent = Extent{info.extent.offset, info.stored_length()};
        }
      }));
  ASSERT_FALSE(target.empty()) << "auto build compressed nothing";

  // Flip one stored byte under the directory's back.
  std::vector<std::byte> buf(extent.length);
  ASSERT_OK(store_.device()->Read(extent.offset, buf));
  buf[buf.size() / 2] ^= std::byte{0x40};
  ASSERT_OK(store_.device()->Write(extent.offset, buf));

  std::vector<Entry> out;
  const Status status = packed->Probe(target, &out);
  EXPECT_TRUE(status.IsDataLoss()) << status;
  EXPECT_TRUE(packed->corrupt());
  EXPECT_FALSE(packed->healthy());
}

TEST_F(CompressedIndexTest, DecodeHardeningCatchesRotWithoutChecksums) {
  // verify_checksums=false leaves the decoder as the only guard: a mangled
  // compressed extent must still fail with DataLoss, never crash.
  const std::vector<DayBatch> batches = Workload(4);
  ConstituentIndex::Options options = AutoOptions();
  options.verify_checksums = false;
  ASSERT_OK_AND_ASSIGN(
      auto packed, IndexBuilder::BuildPacked(store_.device(),
                                             store_.allocator(), options,
                                             Pointers(batches), "unchecked"));
  Value target;
  Extent extent;
  ASSERT_OK(packed->ForEachBucket(
      [&](const Value& value, const BucketInfo& info) {
        if (target.empty() && info.codec != Codec::kRaw) {
          target = value;
          extent = Extent{info.extent.offset, info.stored_length()};
        }
      }));
  ASSERT_FALSE(target.empty());

  // Truncation-style rot: zero the tail of the stored bytes.
  std::vector<std::byte> zeros(extent.length / 2, std::byte{0xFF});
  ASSERT_OK(store_.device()->Write(
      extent.offset + extent.length - zeros.size(), zeros));

  std::vector<Entry> out;
  const Status status = packed->Probe(target, &out);
  // The decoder may reject (DataLoss) or the mangled bytes may happen to
  // decode; either way no crash and consistency checks still run.
  if (!status.ok()) {
    EXPECT_TRUE(status.IsDataLoss()) << status;
  }
}

TEST_F(CompressedIndexTest, ForcedDeltaAndBitPackBuildsAnswerCorrectly) {
  const std::vector<DayBatch> batches = Workload(3);
  ReferenceIndex reference;
  for (const DayBatch& batch : batches) reference.Add(batch);
  for (const CodecMode mode : {CodecMode::kDelta, CodecMode::kBitPack}) {
    Store fresh(uint64_t{1} << 28);
    ConstituentIndex::Options options;
    options.codec = mode;
    ASSERT_OK_AND_ASSIGN(
        auto packed,
        IndexBuilder::BuildPacked(fresh.device(), fresh.allocator(), options,
                                  Pointers(batches), CodecModeName(mode)));
    ASSERT_OK(packed->CheckPacked());
    std::vector<Entry> scanned;
    ASSERT_OK(packed->Scan(
        [&](const Value&, const Entry& e) { scanned.push_back(e); }));
    ReferenceIndex::Sort(&scanned);
    EXPECT_EQ(scanned, reference.ScanAll(kDayNegInf, kDayPosInf))
        << CodecModeName(mode);
  }
}

}  // namespace
}  // namespace wavekit
