#include "workload/netnews.h"

#include <gtest/gtest.h>

#include <map>

namespace wavekit {
namespace workload {
namespace {

TEST(NetnewsTest, GeneratesConfiguredVolume) {
  NetnewsConfig config;
  config.articles_per_day = 100;
  NetnewsGenerator gen(config);
  DayBatch batch = gen.GenerateDay(1);
  EXPECT_EQ(batch.day, 1);
  EXPECT_EQ(batch.records.size(), 100u);
  EXPECT_GT(batch.EntryCount(), 100u * config.words_per_article / 3);
}

TEST(NetnewsTest, VolumeOverride) {
  NetnewsGenerator gen(NetnewsConfig{});
  EXPECT_EQ(gen.GenerateDay(1, 17).records.size(), 17u);
}

TEST(NetnewsTest, DeterministicPerDay) {
  NetnewsConfig config;
  config.articles_per_day = 20;
  NetnewsGenerator a(config), b(config);
  DayBatch da = a.GenerateDay(5);
  DayBatch db = b.GenerateDay(5);
  ASSERT_EQ(da.records.size(), db.records.size());
  for (size_t i = 0; i < da.records.size(); ++i) {
    EXPECT_EQ(da.records[i].values, db.records[i].values);
  }
  // Days differ from each other.
  DayBatch other = a.GenerateDay(6);
  EXPECT_NE(da.records[0].values, other.records[0].values);
}

TEST(NetnewsTest, RecordIdsAreUniqueAndIncreasing) {
  NetnewsConfig config;
  config.articles_per_day = 50;
  NetnewsGenerator gen(config);
  uint64_t last = 0;
  for (Day d = 1; d <= 3; ++d) {
    for (const Record& r : gen.GenerateDay(d).records) {
      EXPECT_GT(r.record_id, last);
      last = r.record_id;
      EXPECT_EQ(r.day, d);
    }
  }
}

TEST(NetnewsTest, WordFrequenciesAreZipfSkewed) {
  NetnewsConfig config;
  config.articles_per_day = 200;
  config.vocabulary_size = 5000;
  NetnewsGenerator gen(config);
  std::map<Value, int> counts;
  for (Day d = 1; d <= 5; ++d) {
    for (const Record& r : gen.GenerateDay(d).records) {
      for (const Value& v : r.values) ++counts[v];
    }
  }
  // The most frequent word should appear far more often than the median.
  int max_count = 0;
  long total = 0;
  for (const auto& [v, c] : counts) {
    max_count = std::max(max_count, c);
    total += c;
  }
  const double mean = static_cast<double>(total) / counts.size();
  EXPECT_GT(max_count, 10 * mean);
}

TEST(NetnewsTest, SampleWordPrefersPopularRanks) {
  NetnewsGenerator gen(NetnewsConfig{});
  Rng rng(1);
  int top = 0;
  for (int i = 0; i < 1000; ++i) {
    if (gen.SampleWord(rng) <= gen.WordForRank(9)) ++top;
  }
  // Under Zipf(theta=1) over 20k ranks, ranks 0..9 carry ~27% of the mass
  // (H(10)/H(20000)); uniform sampling would give them 0.05%.
  EXPECT_GT(top, 200);
  EXPECT_LT(top, 360);
}

TEST(NetnewsTest, WordForRankIsStable) {
  NetnewsGenerator gen(NetnewsConfig{});
  EXPECT_EQ(gen.WordForRank(0), "w00000000");
  EXPECT_EQ(gen.WordForRank(123), "w00000123");
}

}  // namespace
}  // namespace workload
}  // namespace wavekit
