#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

namespace wavekit {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter]() { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
}

TEST(ThreadPoolTest, MultipleWaitRounds) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) pool.Submit([&counter]() { ++counter; });
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, UsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  std::atomic<int> gate{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&]() {
      ++gate;
      // Hold until several tasks are in flight so distinct workers engage.
      while (gate.load() < 4) std::this_thread::yield();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.Wait();
  EXPECT_GE(seen.size(), 2u);
}

TEST(ThreadPoolTest, DestructionDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) pool.Submit([&counter]() { ++counter; });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  // Destroying the pool with tasks still queued must execute every one of
  // them, not drop them: a single slow task occupies the lone worker while
  // the rest sit in the queue at destruction time.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    pool.Submit([]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });
    for (int i = 0; i < 64; ++i) pool.Submit([&counter]() { ++counter; });
    // No Wait: the destructor is responsible for the drain.
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, ReentrantSubmitFromWorkerIsCoveredByWait) {
  // A task fans out children from inside a worker; Wait must cover the whole
  // tree, not just the directly submitted roots.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int root = 0; root < 8; ++root) {
    pool.Submit([&pool, &counter]() {
      ++counter;
      for (int child = 0; child < 4; ++child) {
        pool.Submit([&pool, &counter]() {
          ++counter;
          pool.Submit([&counter]() { ++counter; });  // grandchild
        });
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 8 * (1 + 4 + 4));
}

TEST(ThreadPoolTest, ShutdownDrainsReentrantSubmits) {
  // Tasks that submit children during the destructor's drain must have those
  // children executed too.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&pool, &counter]() {
        ++counter;
        pool.Submit([&counter]() { ++counter; });
      });
    }
  }
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPoolTest, SubmitConcurrentWithWaitIsSafe) {
  // One thread Waits in a loop while others keep submitting: no deadlock, no
  // lost task; a final Wait after the submitters join covers everything.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kPerThread = 500;
  std::vector<std::thread> submitters;
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&pool, &counter]() {
      for (int i = 0; i < kPerThread; ++i) {
        pool.Submit([&counter]() { ++counter; });
      }
    });
  }
  for (int i = 0; i < 50; ++i) pool.Wait();  // racing Waits are legal
  for (std::thread& s : submitters) s.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), 3 * kPerThread);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran]() { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace wavekit
