#include "util/histogram.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace wavekit {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v : {10u, 20u, 30u, 40u}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 100u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 40u);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
}

TEST(HistogramTest, PercentilesAreBucketUpperBounds) {
  Histogram h;
  // 90 small values (bucket [8,16)), 10 large (bucket [1024,2048)).
  for (int i = 0; i < 90; ++i) h.Record(10);
  for (int i = 0; i < 10; ++i) h.Record(1500);
  EXPECT_LE(h.Percentile(0.5), 15u);
  EXPECT_GE(h.Percentile(0.95), 1024u);
  EXPECT_LE(h.Percentile(0.95), 2047u);
  EXPECT_EQ(h.Percentile(1.0), h.Percentile(0.999));
}

TEST(HistogramTest, PercentilesClampedToObservedRange) {
  Histogram h;
  h.Record(100);
  EXPECT_EQ(h.Percentile(0.5), 100u);  // upper bound 127 clamps to max=100
  EXPECT_EQ(h.Percentile(0.0), 100u);
}

TEST(HistogramTest, ZeroAndHugeValues) {
  Histogram h;
  h.Record(0);
  h.Record(~uint64_t{0});
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), ~uint64_t{0});
  EXPECT_EQ(h.Percentile(1.0), ~uint64_t{0});
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(HistogramTest, PercentileMonotoneInQ) {
  Histogram h;
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) h.Record(1 + rng.Uniform(100000));
  uint64_t previous = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const uint64_t p = h.Percentile(q);
    EXPECT_GE(p, previous) << "q=" << q;
    previous = p;
  }
  // p50 of a uniform [1, 100k] sample lands within its bucket's factor-2
  // error of 50k.
  EXPECT_GE(h.Percentile(0.5), 32768u);
  EXPECT_LE(h.Percentile(0.5), 131072u);
}

TEST(HistogramTest, QuantileEdgeCasesOnEmpty) {
  Histogram h;
  for (double q : {0.0, 0.5, 1.0, -1.0, 2.0}) {
    EXPECT_EQ(h.Percentile(q), 0u) << "q=" << q;
  }
}

TEST(HistogramTest, QuantileEdgesAreExactObservedBounds) {
  Histogram h;
  h.Record(100);
  h.Record(9000);
  // p0 / p100 must return the exact observed min / max, not the containing
  // bucket's upper bound; out-of-range q clamps to them.
  EXPECT_EQ(h.Percentile(0.0), 100u);
  EXPECT_EQ(h.Percentile(-0.5), 100u);
  EXPECT_EQ(h.Percentile(1.0), 9000u);
  EXPECT_EQ(h.Percentile(1.5), 9000u);
}

TEST(HistogramTest, QuantileSingleBucket) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(33);  // all in bucket [32, 64)
  for (double q : {0.001, 0.25, 0.5, 0.99, 1.0}) {
    const uint64_t p = h.Percentile(q);
    EXPECT_EQ(p, 33u) << "q=" << q;  // bound 63 clamps to max=33
  }
}

TEST(HistogramTest, MergeCombinesCountsSumsAndBounds) {
  Histogram a;
  Histogram b;
  for (uint64_t v : {10u, 20u}) a.Record(v);
  for (uint64_t v : {5u, 4000u}) b.Record(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 4035u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 4000u);
  EXPECT_GE(a.Percentile(0.99), 2048u);
}

TEST(HistogramTest, MergeWithEmptyIsIdentityBothWays) {
  Histogram a;
  for (uint64_t v : {10u, 20u, 30u}) a.Record(v);
  const uint64_t p50 = a.Percentile(0.5);

  Histogram empty;
  a.Merge(empty);  // empty's ~0 min sentinel must not leak in
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 30u);
  EXPECT_EQ(a.Percentile(0.5), p50);

  Histogram target;
  target.Merge(a);
  EXPECT_EQ(target.count(), 3u);
  EXPECT_EQ(target.min(), 10u);
  EXPECT_EQ(target.max(), 30u);
  EXPECT_EQ(target.Percentile(0.5), p50);
}

TEST(HistogramTest, MergeMatchesRecordingEverythingIntoOne) {
  Rng rng(9);
  Histogram combined;
  Histogram parts[4];
  for (int i = 0; i < 4000; ++i) {
    const uint64_t v = 1 + rng.Uniform(1 << 20);
    combined.Record(v);
    parts[i % 4].Record(v);
  }
  Histogram merged;
  for (const Histogram& part : parts) merged.Merge(part);
  EXPECT_EQ(merged.count(), combined.count());
  EXPECT_EQ(merged.sum(), combined.sum());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(merged.Percentile(q), combined.Percentile(q)) << "q=" << q;
  }
}

TEST(HistogramTest, ToStringMentionsEverything) {
  Histogram h;
  h.Record(42);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
}

}  // namespace
}  // namespace wavekit
