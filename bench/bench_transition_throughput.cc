// Transition throughput: parallel maintenance pipeline vs. the serial path.
//
// The paper's Section 5 measures transition cost in I/O operations; this
// bench measures the wall-clock effect of the parallel maintenance pipeline
// on packed REINDEX transitions (each one rebuilds a cluster from scratch —
// the heaviest per-day maintenance of any hard-window scheme).
//
// The backing store models a disk's per-request overhead with a real sleep
// per write REQUEST below the meter: one Write call is one request, and a
// WriteBatch counts one request per contiguous run of extents (a batched
// command queue / scatter-gather write). The serial builder issues one Write
// per bucket; the parallel builder partitions by value range and flushes
// ~1 MiB WriteBatch calls whose extents are adjacent, so the request count
// collapses and the remaining requests overlap across maintenance threads.
// Wall-clock CPU parallelism is deliberately not required — the speedup is
// structural (fewer, batched, overlapped requests), so the result is
// meaningful even on a single-core host.
//
// Also demonstrates background maintenance: with AdvanceDayAsync the
// transition runs on a maintenance runner while query threads keep probing
// the published snapshot throughout.
//
// Emits BENCH_transition.json. `--smoke` runs a miniature configuration and
// skips the timing-based shape checks (CI smoke coverage).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "storage/device.h"
#include "wave/wave_service.h"

namespace wavekit {
namespace {

constexpr auto kWriteRequestLatency = std::chrono::microseconds(25);

struct BenchConfig {
  int window = 8;
  int num_indexes = 2;  // clusters of 4 days: a heavy rebuild per transition
  int records_per_day = 4000;
  uint64_t num_values = 512;
  int measured_days = 12;
  bool smoke = false;
};

/// Models a disk's per-request overhead: every write request parks the
/// calling thread for a fixed service time before the memory copy. Sits
/// BELOW the meter (installed via WaveService::Options::device_interposer).
/// Reads pass through untouched — this bench measures the write-heavy
/// maintenance path, and probe traffic must not be throttled by it.
class SimulatedDiskDevice : public Device {
 public:
  explicit SimulatedDiskDevice(Device* inner) : inner_(inner) {}

  Status Read(uint64_t offset, std::span<std::byte> out) override {
    return inner_->Read(offset, out);
  }

  Status Write(uint64_t offset, std::span<const std::byte> data) override {
    write_requests_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(kWriteRequestLatency);
    return inner_->Write(offset, data);
  }

  Status WriteBatch(std::span<const Extent> extents,
                    std::span<const std::byte> data) override {
    // One request per contiguous run of extents (scatter-gather write), then
    // one memory pass for the data.
    uint64_t runs = 0;
    for (size_t i = 0; i < extents.size(); ++i) {
      if (i == 0 || extents[i].offset !=
                        extents[i - 1].offset + extents[i - 1].length) {
        ++runs;
      }
    }
    write_requests_.fetch_add(runs, std::memory_order_relaxed);
    for (uint64_t r = 0; r < runs; ++r) {
      std::this_thread::sleep_for(kWriteRequestLatency);
    }
    return inner_->WriteBatch(extents, data);
  }

  uint64_t capacity() const override { return inner_->capacity(); }

  uint64_t write_requests() const {
    return write_requests_.load(std::memory_order_relaxed);
  }
  void ResetRequests() { write_requests_.store(0, std::memory_order_relaxed); }

 private:
  Device* inner_;
  std::atomic<uint64_t> write_requests_{0};
};

DayBatch MakeBatch(const BenchConfig& config, Day day) {
  DayBatch batch;
  batch.day = day;
  uint64_t rid = static_cast<uint64_t>(day) * 1000000;
  for (int i = 0; i < config.records_per_day; ++i) {
    Record record;
    record.record_id = rid++;
    record.day = day;
    record.values = {"v" + std::to_string(record.record_id % config.num_values)};
    batch.records.push_back(std::move(record));
  }
  return batch;
}

struct Cell {
  int threads = 0;
  int days = 0;
  double seconds = 0.0;
  double days_per_sec = 0.0;
  uint64_t write_requests = 0;  // during the measured transitions
};

struct Variant {
  std::unique_ptr<WaveService> service;
  SimulatedDiskDevice* sim = nullptr;
};

Variant MakeVariant(const BenchConfig& config, int maintenance_threads) {
  Variant variant;
  WaveService::Options options;
  options.scheme = SchemeKind::kReindex;
  options.config.window = config.window;
  options.config.num_indexes = config.num_indexes;
  options.config.technique = UpdateTechniqueKind::kPackedShadow;
  options.num_maintenance_threads = maintenance_threads;
  options.device_interposer = [&variant](Device* inner) {
    auto sim = std::make_unique<SimulatedDiskDevice>(inner);
    variant.sim = sim.get();
    return sim;
  };
  auto made = WaveService::Create(std::move(options));
  if (!made.ok()) made.status().Abort("Create");
  variant.service = std::move(made).ValueOrDie();

  std::vector<DayBatch> first;
  for (Day d = 1; d <= config.window; ++d) {
    first.push_back(MakeBatch(config, d));
  }
  Status started = variant.service->Start(std::move(first));
  if (!started.ok()) started.Abort("Start");
  return variant;
}

/// Times `config.measured_days` synchronous transitions.
Cell RunVariant(const BenchConfig& config, Variant& variant, int threads) {
  variant.sim->ResetRequests();
  const auto start = std::chrono::steady_clock::now();
  const Day from = variant.service->current_day();
  for (Day d = from + 1; d <= from + config.measured_days; ++d) {
    Status advanced = variant.service->AdvanceDay(MakeBatch(config, d));
    if (!advanced.ok()) advanced.Abort("AdvanceDay");
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  Cell cell;
  cell.threads = threads;
  cell.days = config.measured_days;
  cell.seconds = elapsed.count();
  cell.days_per_sec = cell.seconds > 0 ? config.measured_days / cell.seconds : 0;
  cell.write_requests = variant.sim->write_requests();
  return cell;
}

/// Probes a sample of values and returns the concatenated results, for
/// serial-vs-parallel parity checking.
std::vector<Entry> ProbeSample(const WaveService& service,
                               const BenchConfig& config) {
  std::vector<Entry> all;
  for (uint64_t v = 0; v < config.num_values; v += 7) {
    std::vector<Entry> out;
    Status probed = service.IndexProbe("v" + std::to_string(v), &out);
    if (!probed.ok()) probed.Abort("probe");
    all.insert(all.end(), out.begin(), out.end());
  }
  return all;
}

/// Advances one more day in the background while a reader probes
/// continuously; returns how many probes completed before the advance
/// finished (readers are never blocked by maintenance).
uint64_t ProbesDuringBackgroundAdvance(const BenchConfig& config,
                                       Variant& variant) {
  WaveService& service = *variant.service;
  const Day next = service.current_day() + 1;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> probes{0};
  std::thread reader([&]() {
    uint64_t v = 0;
    while (!done.load(std::memory_order_relaxed)) {
      std::vector<Entry> out;
      Status probed =
          service.IndexProbe("v" + std::to_string(v++ % config.num_values),
                             &out);
      if (!probed.ok()) probed.Abort("probe during advance");
      probes.fetch_add(1, std::memory_order_relaxed);
    }
  });
  service.AdvanceDayAsync(MakeBatch(config, next));
  Status waited = service.WaitForMaintenance();
  if (!waited.ok()) waited.Abort("WaitForMaintenance");
  done.store(true, std::memory_order_relaxed);
  reader.join();
  if (service.current_day() != next) {
    Status::Internal("async advance did not publish").Abort("AdvanceDayAsync");
  }
  return probes.load();
}

void WriteJson(const BenchConfig& config, const std::vector<Cell>& cells,
               double speedup_4v1, uint64_t probes_during_advance) {
  std::ofstream out("BENCH_transition.json");
  out << "{\n"
      << "  \"bench\": \"transition_throughput\",\n"
      << "  \"scheme\": \"REINDEX\",\n"
      << "  \"technique\": \"packed-shadow\",\n"
      << "  \"smoke\": " << (config.smoke ? "true" : "false") << ",\n"
      << "  \"window\": " << config.window << ",\n"
      << "  \"num_indexes\": " << config.num_indexes << ",\n"
      << "  \"records_per_day\": " << config.records_per_day << ",\n"
      << "  \"num_values\": " << config.num_values << ",\n"
      << "  \"measured_days\": " << config.measured_days << ",\n"
      << "  \"write_request_latency_us\": "
      << std::chrono::duration_cast<std::chrono::microseconds>(
             kWriteRequestLatency)
             .count()
      << ",\n"
      << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\"maintenance_threads\": " << c.threads
        << ", \"days\": " << c.days << ", \"seconds\": " << c.seconds
        << ", \"days_per_sec\": " << c.days_per_sec
        << ", \"write_requests\": " << c.write_requests << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"transition_speedup_4_threads_vs_serial\": " << speedup_4v1
      << ",\n"
      << "  \"probes_during_background_advance\": " << probes_during_advance
      << "\n"
      << "}\n";
}

}  // namespace
}  // namespace wavekit

int main(int argc, char** argv) {
  using namespace wavekit;
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) config.smoke = true;
  }
  if (config.smoke) {
    config.records_per_day = 400;
    config.num_values = 64;
    config.measured_days = 4;
  }

  bench::Banner(
      "Transition throughput: parallel maintenance pipeline",
      "shadow updating means queries are serviced using the old index while "
      "the new one is built — so the build itself can be parallelized and "
      "batched without any extra concurrency control");

  std::vector<Cell> cells;
  std::vector<std::vector<Entry>> parity;
  uint64_t probes_during_advance = 0;
  for (int threads : {1, 2, 4}) {
    Variant variant = MakeVariant(config, threads);
    cells.push_back(RunVariant(config, variant, threads));
    parity.push_back(ProbeSample(*variant.service, config));
    if (threads == 4) {
      probes_during_advance = ProbesDuringBackgroundAdvance(config, variant);
    }
  }

  std::printf("\n%-20s %8s %10s %14s %16s\n", "maintenance_threads", "days",
              "seconds", "days/sec", "write_requests");
  for (const Cell& c : cells) {
    std::printf("%-20d %8d %10.3f %14.1f %16llu\n", c.threads, c.days,
                c.seconds, c.days_per_sec,
                static_cast<unsigned long long>(c.write_requests));
  }

  const double speedup = cells.front().days_per_sec > 0
                             ? cells.back().days_per_sec /
                                   cells.front().days_per_sec
                             : 0.0;
  std::printf("\n4-thread transition speedup vs serial: %.2fx\n", speedup);
  std::printf("Probes served during one background AdvanceDayAsync: %llu\n",
              static_cast<unsigned long long>(probes_during_advance));

  WriteJson(config, cells, speedup, probes_during_advance);
  std::printf("Wrote BENCH_transition.json\n");

  bench::ShapeChecks checks;
  // Identical query results at every thread count: the parallel pipeline is
  // an execution strategy, not a different index.
  bool parity_ok = true;
  for (size_t i = 1; i < parity.size(); ++i) {
    if (parity[i].size() != parity[0].size()) parity_ok = false;
    for (size_t k = 0; parity_ok && k < parity[i].size(); ++k) {
      if (parity[i][k].record_id != parity[0][k].record_id ||
          parity[i][k].day != parity[0][k].day) {
        parity_ok = false;
      }
    }
  }
  checks.Check(parity_ok,
               "query results identical across maintenance thread counts");
  checks.Check(cells.back().write_requests < cells.front().write_requests,
               "batched writes issue fewer device requests than the serial "
               "per-bucket path");
  if (!config.smoke) {
    checks.Check(speedup >= 2.0,
                 "packed REINDEX transition throughput >= 2x at 4 maintenance "
                 "threads vs serial");
  }
  return checks.Finish();
}
