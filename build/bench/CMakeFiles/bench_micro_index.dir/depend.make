# Empty dependencies file for bench_micro_index.
# This may be replaced when dependencies are built.
