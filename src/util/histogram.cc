#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace wavekit {

int Histogram::BucketFor(uint64_t value) {
  if (value == 0) return 0;
  return std::min(kBuckets - 1, 64 - std::countl_zero(value) - 1);
}

void Histogram::Record(uint64_t value) {
  ++buckets_[static_cast<size_t>(BucketFor(value))];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  // Exact edges: p0 is the smallest observed value, p100 the largest —
  // bucket upper bounds would overshoot both.
  if (q <= 0.0) return min();
  if (q >= 1.0) return max_;
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_))));
  uint64_t seen = 0;
  for (int k = 0; k < kBuckets; ++k) {
    seen += buckets_[static_cast<size_t>(k)];
    if (seen >= target && buckets_[static_cast<size_t>(k)] > 0) {
      // Upper bucket bound, clamped into the observed range.
      const uint64_t upper =
          k >= 63 ? ~uint64_t{0} : (uint64_t{1} << (k + 1)) - 1;
      return std::clamp(upper, min(), max());
    }
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  for (int k = 0; k < kBuckets; ++k) {
    buckets_[static_cast<size_t>(k)] += other.buckets_[static_cast<size_t>(k)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  // other.min_ keeps its ~0 sentinel when empty, so min/max merge safely.
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = ~uint64_t{0};
  max_ = 0;
}

void ConcurrentHistogram::Record(uint64_t value) {
  buckets_[static_cast<size_t>(Histogram::BucketFor(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

Histogram ConcurrentHistogram::Snapshot() const {
  Histogram out;
  for (int k = 0; k < Histogram::kBuckets; ++k) {
    out.buckets_[static_cast<size_t>(k)] =
        buckets_[static_cast<size_t>(k)].load(std::memory_order_relaxed);
  }
  out.count_ = count_.load(std::memory_order_relaxed);
  out.sum_ = sum_.load(std::memory_order_relaxed);
  out.min_ = min_.load(std::memory_order_relaxed);
  out.max_ = max_.load(std::memory_order_relaxed);
  return out;
}

void ConcurrentHistogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::string Histogram::ToString() const {
  return "count=" + std::to_string(count_) +
         " mean=" + std::to_string(static_cast<uint64_t>(mean())) +
         " p50=" + std::to_string(Percentile(0.5)) +
         " p99=" + std::to_string(Percentile(0.99)) +
         " max=" + std::to_string(max_);
}

}  // namespace wavekit
