# Empty dependencies file for growth_policy_test.
# This may be replaced when dependencies are built.
