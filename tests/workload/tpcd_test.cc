#include "workload/tpcd.h"

#include <gtest/gtest.h>

#include <map>

namespace wavekit {
namespace workload {
namespace {

TEST(TpcdTest, GeneratesLineitemShapedRecords) {
  TpcdConfig config;
  config.rows_per_day = 300;
  config.num_suppliers = 50;
  TpcdGenerator gen(config);
  DayBatch batch = gen.GenerateDay(1);
  EXPECT_EQ(batch.records.size(), 300u);
  for (const Record& r : batch.records) {
    ASSERT_EQ(r.values.size(), 1u);  // exactly one SUPPKEY
    EXPECT_EQ(r.values[0].substr(0, 4), "supp");
    ASSERT_EQ(r.aux.size(), 1u);
    EXPECT_GE(r.aux[0], 1u);  // L_QUANTITY in 1..50
    EXPECT_LE(r.aux[0], 50u);
  }
}

TEST(TpcdTest, SuppkeysAreUniformlyDistributed) {
  TpcdConfig config;
  config.rows_per_day = 5000;
  config.num_suppliers = 10;
  TpcdGenerator gen(config);
  std::map<Value, int> counts;
  for (const Record& r : gen.GenerateDay(1).records) ++counts[r.values[0]];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [key, count] : counts) {
    EXPECT_GT(count, 350) << key;  // expected 500 each
    EXPECT_LT(count, 650) << key;
  }
}

TEST(TpcdTest, DeterministicPerDay) {
  TpcdConfig config;
  config.rows_per_day = 20;
  TpcdGenerator a(config), b(config);
  DayBatch da = a.GenerateDay(3), db = b.GenerateDay(3);
  for (size_t i = 0; i < da.records.size(); ++i) {
    EXPECT_EQ(da.records[i].values, db.records[i].values);
    EXPECT_EQ(da.records[i].aux, db.records[i].aux);
  }
}

TEST(TpcdTest, RowsOverride) {
  TpcdGenerator gen(TpcdConfig{});
  EXPECT_EQ(gen.GenerateDay(1, 7).records.size(), 7u);
}

TEST(TpcdTest, SuppkeyHelpers) {
  TpcdGenerator gen(TpcdConfig{});
  EXPECT_EQ(gen.SuppkeyFor(42), "supp000042");
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const Value v = gen.SampleSuppkey(rng);
    EXPECT_EQ(v.substr(0, 4), "supp");
  }
}

}  // namespace
}  // namespace workload
}  // namespace wavekit
