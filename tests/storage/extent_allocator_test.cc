#include "storage/extent_allocator.h"

#include <gtest/gtest.h>

#include <vector>

#include "testing/test_env.h"
#include "util/random.h"

namespace wavekit {
namespace {

TEST(ExtentAllocatorTest, AllocatesFirstFit) {
  ExtentAllocator alloc(1000);
  ASSERT_OK_AND_ASSIGN(Extent a, alloc.Allocate(100));
  EXPECT_EQ(a.offset, 0u);
  EXPECT_EQ(a.length, 100u);
  ASSERT_OK_AND_ASSIGN(Extent b, alloc.Allocate(200));
  EXPECT_EQ(b.offset, 100u);
  EXPECT_EQ(alloc.allocated_bytes(), 300u);
  EXPECT_EQ(alloc.free_bytes(), 700u);
}

TEST(ExtentAllocatorTest, ZeroLengthAllocationIsEmpty) {
  ExtentAllocator alloc(100);
  ASSERT_OK_AND_ASSIGN(Extent e, alloc.Allocate(0));
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(alloc.free_bytes(), 100u);
  EXPECT_OK(alloc.Free(e));
}

TEST(ExtentAllocatorTest, ExhaustionFails) {
  ExtentAllocator alloc(100);
  ASSERT_OK_AND_ASSIGN(Extent a, alloc.Allocate(80));
  (void)a;
  Result<Extent> r = alloc.Allocate(50);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST(ExtentAllocatorTest, FreeCoalescesWithNeighbors) {
  ExtentAllocator alloc(300);
  ASSERT_OK_AND_ASSIGN(Extent a, alloc.Allocate(100));
  ASSERT_OK_AND_ASSIGN(Extent b, alloc.Allocate(100));
  ASSERT_OK_AND_ASSIGN(Extent c, alloc.Allocate(100));
  ASSERT_OK(alloc.Free(a));
  ASSERT_OK(alloc.Free(c));
  EXPECT_EQ(alloc.fragment_count(), 2u);
  ASSERT_OK(alloc.Free(b));  // merges both neighbors
  EXPECT_EQ(alloc.fragment_count(), 1u);
  EXPECT_EQ(alloc.free_bytes(), 300u);
  ASSERT_OK(alloc.CheckConsistency());
  // The whole space is allocatable again as one extent.
  ASSERT_OK_AND_ASSIGN(Extent all, alloc.Allocate(300));
  EXPECT_EQ(all.offset, 0u);
}

TEST(ExtentAllocatorTest, FragmentationBlocksLargeAllocation) {
  ExtentAllocator alloc(300);
  ASSERT_OK_AND_ASSIGN(Extent a, alloc.Allocate(100));
  ASSERT_OK_AND_ASSIGN(Extent b, alloc.Allocate(100));
  ASSERT_OK_AND_ASSIGN(Extent c, alloc.Allocate(100));
  (void)b;
  ASSERT_OK(alloc.Free(a));
  ASSERT_OK(alloc.Free(c));
  EXPECT_EQ(alloc.free_bytes(), 200u);
  EXPECT_EQ(alloc.largest_free_extent(), 100u);
  EXPECT_FALSE(alloc.Allocate(150).ok());  // free total would fit, but split
  ASSERT_OK_AND_ASSIGN(Extent d, alloc.Allocate(100));
  EXPECT_EQ(d.offset, 0u);  // first fit
}

TEST(ExtentAllocatorTest, DoubleFreeDetected) {
  ExtentAllocator alloc(100);
  ASSERT_OK_AND_ASSIGN(Extent a, alloc.Allocate(50));
  ASSERT_OK(alloc.Free(a));
  EXPECT_TRUE(alloc.Free(a).IsInvalidArgument());
  // Overlapping partial free is also rejected.
  ASSERT_OK_AND_ASSIGN(Extent b, alloc.Allocate(50));
  (void)b;
  EXPECT_TRUE(alloc.Free(Extent{25, 50}).IsInvalidArgument());
}

TEST(ExtentAllocatorTest, FreeBeyondCapacityRejected) {
  ExtentAllocator alloc(100);
  EXPECT_TRUE(alloc.Free(Extent{90, 20}).IsInvalidArgument());
}

TEST(ExtentAllocatorTest, SubdividedFreeIsAllowed) {
  // Callers may allocate one run and free sub-ranges (the packed build
  // pattern): the allocator accepts any currently-allocated byte range.
  ExtentAllocator alloc(100);
  ASSERT_OK_AND_ASSIGN(Extent run, alloc.Allocate(90));
  ASSERT_OK(alloc.Free(Extent{run.offset, 30}));
  ASSERT_OK(alloc.Free(Extent{run.offset + 60, 30}));
  ASSERT_OK(alloc.Free(Extent{run.offset + 30, 30}));
  EXPECT_EQ(alloc.free_bytes(), 100u);
  EXPECT_EQ(alloc.fragment_count(), 1u);
  ASSERT_OK(alloc.CheckConsistency());
}

TEST(ExtentAllocatorTest, PeakTracking) {
  ExtentAllocator alloc(1000);
  ASSERT_OK_AND_ASSIGN(Extent a, alloc.Allocate(100));
  alloc.ResetPeak();
  ASSERT_OK_AND_ASSIGN(Extent b, alloc.Allocate(400));
  ASSERT_OK(alloc.Free(a));
  EXPECT_EQ(alloc.allocated_bytes(), 400u);
  EXPECT_EQ(alloc.peak_allocated_bytes(), 500u);
  alloc.ResetPeak();
  EXPECT_EQ(alloc.peak_allocated_bytes(), 400u);
  ASSERT_OK(alloc.Free(b));
}

TEST(ExtentAllocatorTest, RandomizedAllocFreeStaysConsistent) {
  ExtentAllocator alloc(1 << 20);
  Rng rng(99);
  std::vector<Extent> live;
  for (int i = 0; i < 2000; ++i) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      uint64_t size = 1 + rng.Uniform(4096);
      Result<Extent> r = alloc.Allocate(size);
      if (r.ok()) live.push_back(std::move(r).ValueOrDie());
    } else {
      size_t pick = rng.Uniform(live.size());
      ASSERT_OK(alloc.Free(live[pick]));
      live.erase(live.begin() + static_cast<long>(pick));
    }
    if (i % 100 == 0) {
      ASSERT_OK(alloc.CheckConsistency());
    }
  }
  uint64_t live_bytes = 0;
  for (const Extent& e : live) live_bytes += e.length;
  EXPECT_EQ(alloc.allocated_bytes(), live_bytes);
  for (const Extent& e : live) ASSERT_OK(alloc.Free(e));
  EXPECT_EQ(alloc.free_bytes(), uint64_t{1} << 20);
  EXPECT_EQ(alloc.fragment_count(), 1u);
  ASSERT_OK(alloc.CheckConsistency());
}

}  // namespace
}  // namespace wavekit
