# Empty compiler generated dependencies file for bench_fig5_scam_work.
# This may be replaced when dependencies are built.
