// Deterministic simulation harness (FoundationDB style): one uint64 seed
// derives an entire torture episode — virtual clock, workload, fault and
// crash schedule — and every query answer is cross-checked against a
// brute-force OracleDB. Any failure prints a one-line repro command
// (`sim_torture --seed=S --scheme=K --episode=E`) that replays the episode
// byte-for-byte on any machine, and a greedy shrinker minimizes the failing
// scenario before reporting it.
//
// An episode drives one maintenance scheme through a full life: Start over
// the first window, then N daily transitions under the intent-journal
// protocol (wave/recovery.h), with scheduled protocol crash points, device
// crash countdowns, and transient I/O error rates. Every failed day is
// followed by a simulated restart: RAM state is destroyed, the durable
// checkpoint is recovered, the recovered wave is adopted by a fresh scheme,
// and the interrupted day is re-run. After every successful day the harness
// asserts, against the oracle and the scheme's own contract:
//   - every planned TimedIndexProbe answer matches the oracle exactly,
//   - a full-window TimedSegmentScan matches the oracle exactly,
//   - QueryStats report no unhealthy or failed constituents,
//   - hard-window schemes cover exactly the last W days; soft-window (WATA
//     family) schemes cover at least the window and respect the Theorem 2
//     length bound W + ceil((W-1)/(n-1)) - 1,
//   - the constituent count stays within [1, n], and
//   - the checkpoint round-trips: serialize -> deserialize -> serialize is
//     byte-identical.

#ifndef WAVEKIT_TESTING_SIM_HARNESS_H_
#define WAVEKIT_TESTING_SIM_HARNESS_H_

#include <cstdint>
#include <string>

#include "testing/scenario.h"
#include "util/status.h"
#include "wave/scheme.h"

namespace wavekit {
namespace testing {

/// \brief Harness configuration. Everything an episode does follows from
/// `seed` and the episode number; the rest only shapes how many episodes run
/// and where scratch files live.
struct SimConfig {
  /// Base seed: episode e of seed s is the same scenario forever.
  uint64_t seed = 1;
  /// Episodes per scheme for RunMany.
  uint64_t episodes = 64;
  /// Directory for the episode's checkpoint/journal scratch files.
  std::string tmp_dir = "/tmp";
};

/// \brief Outcome of one episode (or one explicit scenario run).
struct EpisodeResult {
  SchemeKind kind = SchemeKind::kDel;
  uint64_t episode = 0;
  Scenario scenario;
  /// OK when every day and every cross-check passed.
  Status status = Status::OK();
  /// Deterministic episode trace: one line per day/restart, no wall-clock
  /// times, no filesystem paths. Two runs of the same (seed, scheme,
  /// episode) produce byte-identical traces.
  std::string trace;
  /// Simulated restarts (crash + recover cycles) the episode went through.
  int restarts = 0;
  /// Non-empty on failure: the command that replays this exact episode.
  std::string repro;
};

/// \brief Seed-reproducible whole-system simulator.
class Simulator {
 public:
  explicit Simulator(SimConfig config) : config_(std::move(config)) {}

  /// Runs episode `episode` of the configured seed for `kind`.
  EpisodeResult RunEpisode(SchemeKind kind, uint64_t episode) const;

  /// Runs an explicit (possibly shrunk) scenario. `label` tags the scratch
  /// files; it does not influence behaviour.
  EpisodeResult RunScenario(SchemeKind kind, const Scenario& scenario,
                            const std::string& label) const;

  /// Runs episodes 0..config().episodes-1 for `kind`; stops at and returns
  /// the first failure, or the last (successful) episode's result.
  EpisodeResult RunMany(SchemeKind kind) const;

  /// Runs the bit-rot variant of episode `episode`
  /// (ScenarioGenerator::GenerateBitRot): silent data-at-rest corruption
  /// after committed days, with detection (scrub or query path), quarantine,
  /// subset-correct degraded serving, and online heal all asserted against
  /// the oracle inside the episode.
  EpisodeResult RunBitRotEpisode(SchemeKind kind, uint64_t episode) const;

  /// RunMany over the bit-rot family.
  EpisodeResult RunManyBitRot(SchemeKind kind) const;

  /// Runs the codec variant of episode `episode`
  /// (ScenarioGenerator::GenerateCodec): the same days and faults with a
  /// per-episode bucket codec, so every oracle cross-check runs against
  /// compressed constituents.
  EpisodeResult RunCodecEpisode(SchemeKind kind, uint64_t episode) const;

  /// RunMany over the codec family.
  EpisodeResult RunManyCodec(SchemeKind kind) const;

  /// Bit rot layered on the codec family: corrupted compressed buckets must
  /// surface DataLoss (checksum or decode failure) and heal in-episode.
  EpisodeResult RunCodecBitRotEpisode(SchemeKind kind, uint64_t episode) const;

  /// RunMany over the codec bit-rot family.
  EpisodeResult RunManyCodecBitRot(SchemeKind kind) const;

  /// Greedily minimizes a failing scenario: truncates days, drops scheduled
  /// faults one at a time, and zeroes error rates, keeping every change that
  /// still fails, until a fixpoint (or `max_runs` re-executions).
  Scenario Shrink(SchemeKind kind, const Scenario& failing,
                  int max_runs = 200) const;

  const SimConfig& config() const { return config_; }

 private:
  SimConfig config_;
};

/// \brief The repro command line for (seed, kind, episode).
std::string ReproCommand(uint64_t seed, SchemeKind kind, uint64_t episode);

}  // namespace testing
}  // namespace wavekit

#endif  // WAVEKIT_TESTING_SIM_HARNESS_H_
