// Smoke test of the umbrella header: everything a downstream user touches
// must be reachable through #include "wavekit.h" alone.

#include "wavekit.h"

#include <gtest/gtest.h>

namespace {

TEST(PublicApiTest, EndToEndThroughUmbrellaHeader) {
  wavekit::Store store;
  wavekit::DayStore day_store;

  wavekit::SchemeConfig config;
  config.window = 4;
  config.num_indexes = 2;
  config.technique = wavekit::UpdateTechniqueKind::kSimpleShadow;
  auto scheme = wavekit::MakeScheme(
      wavekit::SchemeKind::kWata,
      wavekit::SchemeEnv{store.device(), store.allocator(), &day_store},
      config);
  ASSERT_TRUE(scheme.ok()) << scheme.status();

  std::vector<wavekit::DayBatch> first;
  for (wavekit::Day d = 1; d <= 4; ++d) {
    wavekit::DayBatch batch;
    batch.day = d;
    wavekit::Record record;
    record.record_id = static_cast<uint64_t>(d);
    record.day = d;
    record.values = {"umbrella"};
    batch.records.push_back(record);
    first.push_back(std::move(batch));
  }
  ASSERT_TRUE((*scheme)->Start(std::move(first)).ok());

  std::vector<wavekit::Entry> hits;
  ASSERT_TRUE((*scheme)->wave().IndexProbe("umbrella", &hits).ok());
  EXPECT_EQ(hits.size(), 4u);

  // Query helpers, model, advisor and workloads are all visible too.
  auto aggregate =
      wavekit::AggregateScan((*scheme)->wave(), wavekit::DayRange::All());
  ASSERT_TRUE(aggregate.ok());
  EXPECT_EQ(aggregate.ValueOrDie().count, 4u);

  const wavekit::model::CaseParams params =
      wavekit::model::CaseParams::Scam();
  EXPECT_GT(params.build_seconds, 0);

  wavekit::workload::NetnewsGenerator netnews({});
  EXPECT_FALSE(netnews.GenerateDay(1).records.empty());
}

}  // namespace
