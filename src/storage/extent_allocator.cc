#include "storage/extent_allocator.h"

#include <algorithm>

#include "util/macros.h"

namespace wavekit {

ExtentAllocator::ExtentAllocator(uint64_t capacity_bytes)
    : capacity_(capacity_bytes), free_bytes_(capacity_bytes) {
  if (capacity_ > 0) free_.emplace(0, capacity_);
}

Result<Extent> ExtentAllocator::Allocate(uint64_t length) {
  if (length == 0) return Extent{0, 0};
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second >= length) {
      Extent out{it->first, length};
      const uint64_t remaining = it->second - length;
      const uint64_t new_offset = it->first + length;
      free_.erase(it);
      if (remaining > 0) free_.emplace(new_offset, remaining);
      free_bytes_ -= length;
      peak_allocated_ = std::max(peak_allocated_, capacity_ - free_bytes_);
      return out;
    }
  }
  return Status::ResourceExhausted(
      "no contiguous free extent of " + std::to_string(length) +
      " bytes (free=" + std::to_string(free_bytes_) +
      ", largest=" + std::to_string(LargestFreeExtentLocked()) + ")");
}

Status ExtentAllocator::Reserve(const Extent& extent) {
  if (extent.length == 0) return Status::OK();
  if (extent.end() > capacity_) {
    return Status::InvalidArgument("reserved extent exceeds capacity");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // The containing free extent is the one starting at or before offset.
  auto it = free_.upper_bound(extent.offset);
  if (it == free_.begin()) {
    return Status::FailedPrecondition("range is already allocated");
  }
  --it;
  const uint64_t free_offset = it->first;
  const uint64_t free_length = it->second;
  if (free_offset + free_length < extent.end()) {
    return Status::FailedPrecondition(
        "range is not entirely free: cannot reserve [" +
        std::to_string(extent.offset) + ", " + std::to_string(extent.end()) +
        ")");
  }
  free_.erase(it);
  if (extent.offset > free_offset) {
    free_.emplace(free_offset, extent.offset - free_offset);
  }
  if (free_offset + free_length > extent.end()) {
    free_.emplace(extent.end(), free_offset + free_length - extent.end());
  }
  free_bytes_ -= extent.length;
  peak_allocated_ = std::max(peak_allocated_, capacity_ - free_bytes_);
  return Status::OK();
}

Status ExtentAllocator::Free(const Extent& extent) {
  if (extent.length == 0) return Status::OK();
  std::lock_guard<std::mutex> lock(mutex_);
  if (extent.end() > capacity_) {
    return Status::InvalidArgument("freed extent exceeds capacity");
  }
  // Find the free extent at or after the freed range, and its predecessor.
  auto next = free_.lower_bound(extent.offset);
  if (next != free_.end() && next->first < extent.end()) {
    return Status::InvalidArgument("double free: overlaps following free extent");
  }
  auto prev = next;
  if (prev != free_.begin()) {
    --prev;
    if (prev->first + prev->second > extent.offset) {
      return Status::InvalidArgument("double free: overlaps preceding free extent");
    }
  } else {
    prev = free_.end();
  }

  uint64_t merged_offset = extent.offset;
  uint64_t merged_length = extent.length;
  if (prev != free_.end() && prev->first + prev->second == extent.offset) {
    merged_offset = prev->first;
    merged_length += prev->second;
    free_.erase(prev);
  }
  if (next != free_.end() && next->first == extent.end()) {
    merged_length += next->second;
    free_.erase(next);
  }
  free_.emplace(merged_offset, merged_length);
  free_bytes_ += extent.length;
  return Status::OK();
}

uint64_t ExtentAllocator::largest_free_extent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return LargestFreeExtentLocked();
}

uint64_t ExtentAllocator::LargestFreeExtentLocked() const {
  uint64_t largest = 0;
  for (const auto& [offset, length] : free_) {
    largest = std::max(largest, length);
  }
  return largest;
}

Status ExtentAllocator::CheckConsistency() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t sum = 0;
  uint64_t prev_end = 0;
  bool first = true;
  for (const auto& [offset, length] : free_) {
    if (length == 0) return Status::Internal("zero-length free extent");
    if (offset + length > capacity_) {
      return Status::Internal("free extent exceeds capacity");
    }
    if (!first) {
      if (offset < prev_end) return Status::Internal("overlapping free extents");
      if (offset == prev_end) return Status::Internal("uncoalesced free extents");
    }
    prev_end = offset + length;
    sum += length;
    first = false;
  }
  if (sum != free_bytes_) {
    return Status::Internal("free byte count does not match free list");
  }
  return Status::OK();
}

}  // namespace wavekit
