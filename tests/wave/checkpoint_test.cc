#include "wave/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "index/index_builder.h"
#include "storage/file_device.h"
#include "testing/test_env.h"
#include "wave/scheme_factory.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;
using testing::ReferenceIndex;

class CheckpointTest : public testing::StoreTest {
 protected:
  // A wave index of two constituents (one packed, one incrementally grown).
  void BuildWave() {
    std::vector<DayBatch> batches;
    for (Day d = 1; d <= 3; ++d) {
      batches.push_back(MakeMixedBatch(d));
      reference_.Add(batches.back());
    }
    std::vector<const DayBatch*> ptrs;
    for (const DayBatch& b : batches) ptrs.push_back(&b);
    auto packed = IndexBuilder::BuildPacked(store_.device(),
                                            store_.allocator(), Options(),
                                            ptrs, "packed-part");
    ASSERT_TRUE(packed.ok()) << packed.status();
    wave_.AddIndex(std::move(packed).ValueOrDie());

    auto grown = std::make_shared<ConstituentIndex>(
        store_.device(), store_.allocator(), Options(), "grown-part");
    for (Day d = 4; d <= 6; ++d) {
      DayBatch batch = MakeMixedBatch(d);
      reference_.Add(batch);
      ASSERT_OK(grown->AddBatch(batch));
    }
    wave_.AddIndex(std::move(grown));
  }

  WaveIndex wave_;
  ReferenceIndex reference_;
};

TEST_F(CheckpointTest, SerializeIsDeterministic) {
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string a, SerializeCheckpoint(wave_));
  ASSERT_OK_AND_ASSIGN(std::string b, SerializeCheckpoint(wave_));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("wavekit-checkpoint 2"), std::string::npos);
  EXPECT_NE(a.find("packed-part"), std::string::npos);
  EXPECT_NE(a.find("\nfooter "), std::string::npos);
}

TEST_F(CheckpointTest, RoundTripPreservesEverything) {
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string contents, SerializeCheckpoint(wave_));
  // Reopen against the same device with a FRESH allocator (as a restart
  // would): every bucket extent must be re-reserved.
  ExtentAllocator fresh_allocator(store_.allocator()->capacity());
  ASSERT_OK_AND_ASSIGN(
      WaveIndex reopened,
      DeserializeCheckpoint(contents, store_.device(), &fresh_allocator,
                            Options()));
  ASSERT_EQ(reopened.num_constituents(), 2u);
  EXPECT_EQ(reopened.CoveredDays(), (TimeSet{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(reopened.EntryCount(), wave_.EntryCount());

  // Queries over the reopened index match brute force.
  std::vector<Entry> out;
  ASSERT_OK(reopened.IndexProbe("alpha", &out));
  ReferenceIndex::Sort(&out);
  EXPECT_EQ(out, reference_.Probe("alpha", kDayNegInf, kDayPosInf));
  std::vector<Entry> scanned;
  ASSERT_OK(reopened.TimedSegmentScan(
      DayRange{2, 5},
      [&](const Value&, const Entry& e) { scanned.push_back(e); }));
  ReferenceIndex::Sort(&scanned);
  EXPECT_EQ(scanned, reference_.ScanAll(2, 5));

  // Packedness survived; so did structural invariants.
  EXPECT_TRUE(reopened.constituents()[0]->packed());
  ASSERT_OK(reopened.constituents()[0]->CheckPacked());
  for (const auto& c : reopened.constituents()) {
    ASSERT_OK(c->CheckConsistency());
  }
  // The fresh allocator accounts exactly the live bytes.
  EXPECT_EQ(fresh_allocator.allocated_bytes(), wave_.AllocatedBytes());
}

TEST_F(CheckpointTest, ReopenedIndexSupportsFurtherMaintenance) {
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string contents, SerializeCheckpoint(wave_));
  ExtentAllocator fresh_allocator(store_.allocator()->capacity());
  ASSERT_OK_AND_ASSIGN(
      WaveIndex reopened,
      DeserializeCheckpoint(contents, store_.device(), &fresh_allocator,
                            Options()));
  // New allocations must not clobber reserved buckets: add a day to the
  // grown part and re-check both parts.
  auto grown = reopened.constituents()[1];
  DayBatch batch = MakeMixedBatch(7);
  reference_.Add(batch);
  ASSERT_OK(grown->AddBatch(batch));
  ASSERT_OK(grown->CheckConsistency());
  std::vector<Entry> out;
  ASSERT_OK(reopened.IndexProbe("beta", &out));
  ReferenceIndex::Sort(&out);
  EXPECT_EQ(out, reference_.Probe("beta", kDayNegInf, kDayPosInf));
}

TEST_F(CheckpointTest, FileRoundTripOnDurableDevice) {
  // Full restart simulation: build on a FileDevice, checkpoint to a second
  // file, drop every in-memory object, reopen both files, query.
  const std::string data_path = ::testing::TempDir() + "wavekit_ckpt_data";
  const std::string ckpt_path = ::testing::TempDir() + "wavekit_ckpt_meta";
  std::remove(data_path.c_str());
  std::remove(ckpt_path.c_str());
  ReferenceIndex reference;
  {
    ASSERT_OK_AND_ASSIGN(auto file, FileDevice::Open(data_path, 1 << 24));
    MeteredDevice device(file.get());
    ExtentAllocator allocator(1 << 24);
    WaveIndex wave;
    for (Day d = 1; d <= 4; ++d) {
      DayBatch batch = MakeMixedBatch(d);
      reference.Add(batch);
      auto built = IndexBuilder::BuildPacked(&device, &allocator, {}, batch,
                                             "I" + std::to_string(d));
      ASSERT_TRUE(built.ok()) << built.status();
      wave.AddIndex(std::move(built).ValueOrDie());
    }
    ASSERT_OK(WriteCheckpoint(wave, ckpt_path));
    ASSERT_OK(file->Sync());
    // Prevent the destructors from freeing the (persisted) extents being a
    // problem: allocator and indexes die here, the FILE keeps the bytes.
  }
  {
    ASSERT_OK_AND_ASSIGN(auto file, FileDevice::Open(data_path, 1 << 24));
    MeteredDevice device(file.get());
    ExtentAllocator allocator(1 << 24);
    ASSERT_OK_AND_ASSIGN(WaveIndex wave,
                         LoadCheckpoint(ckpt_path, &device, &allocator, {}));
    EXPECT_EQ(wave.num_constituents(), 4u);
    std::vector<Entry> out;
    ASSERT_OK(wave.IndexProbe("gamma", &out));
    ReferenceIndex::Sort(&out);
    EXPECT_EQ(out, reference.Probe("gamma", kDayNegInf, kDayPosInf));
  }
  std::remove(data_path.c_str());
  std::remove(ckpt_path.c_str());
}

TEST_F(CheckpointTest, CorruptCheckpointsAreRejected) {
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string contents, SerializeCheckpoint(wave_));
  ExtentAllocator fresh(store_.allocator()->capacity());
  // Bad magic.
  EXPECT_FALSE(DeserializeCheckpoint("not-a-checkpoint 1", store_.device(),
                                     &fresh, Options())
                   .ok());
  // Bad version.
  std::string bad_version = contents;
  bad_version.replace(bad_version.find(" 2\n"), 3, " 9\n");
  EXPECT_FALSE(DeserializeCheckpoint(bad_version, store_.device(), &fresh,
                                     Options())
                   .ok());
  // Truncation.
  EXPECT_FALSE(DeserializeCheckpoint(contents.substr(0, contents.size() / 2),
                                     store_.device(), &fresh, Options())
                   .ok());
  // Overlapping buckets (same checkpoint loaded twice into one allocator).
  // The first load must stay alive, or its destructor releases the
  // reservations again.
  ExtentAllocator once(store_.allocator()->capacity());
  auto first_load =
      DeserializeCheckpoint(contents, store_.device(), &once, Options());
  ASSERT_TRUE(first_load.ok()) << first_load.status();
  auto again =
      DeserializeCheckpoint(contents, store_.device(), &once, Options());
  EXPECT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsFailedPrecondition());
}

TEST_F(CheckpointTest, LoadFromMissingFileFails) {
  ExtentAllocator fresh(1024);
  EXPECT_TRUE(LoadCheckpoint("/no/such/file", store_.device(), &fresh,
                             Options())
                  .status()
                  .IsNotFound());
}

TEST_F(CheckpointTest, TruncatedFileIsRejectedWithClearError) {
  // Every proper prefix must be rejected — a crash mid-write (without the
  // atomic-rename discipline) leaves exactly this shape on disk.
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string contents, SerializeCheckpoint(wave_));
  for (size_t len : {size_t{0}, contents.size() / 4, contents.size() / 2,
                     contents.size() - 1}) {
    ExtentAllocator fresh(store_.allocator()->capacity());
    auto loaded = DeserializeCheckpoint(contents.substr(0, len),
                                        store_.device(), &fresh, Options());
    ASSERT_FALSE(loaded.ok()) << "prefix of " << len << " bytes accepted";
    EXPECT_NE(loaded.status().message().find("truncat"), std::string::npos)
        << loaded.status();
  }
}

TEST_F(CheckpointTest, EveryFlippedByteIsDetected) {
  // The CRC32 footer must catch a single flipped byte anywhere in the body,
  // and the length field must catch tampering with the footer itself.
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string contents, SerializeCheckpoint(wave_));
  // Stride through the file (checking every byte is O(n^2) work for no
  // additional coverage; CRC32 detects all single-byte errors by design).
  for (size_t i = 0; i < contents.size(); i += 7) {
    std::string corrupt = contents;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    ExtentAllocator fresh(store_.allocator()->capacity());
    EXPECT_FALSE(DeserializeCheckpoint(corrupt, store_.device(), &fresh,
                                       Options())
                     .ok())
        << "flipped byte at offset " << i << " accepted";
  }
}

TEST_F(CheckpointTest, WrongVersionReportsVersion) {
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string contents, SerializeCheckpoint(wave_));
  std::string bad_version = contents;
  bad_version.replace(bad_version.find(" 2\n"), 3, " 9\n");
  ExtentAllocator fresh(store_.allocator()->capacity());
  auto loaded =
      DeserializeCheckpoint(bad_version, store_.device(), &fresh, Options());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version 9"), std::string::npos)
      << loaded.status();
}

TEST_F(CheckpointTest, ExtentOverlappingReservedRangeIsRejected) {
  // A checkpoint referencing bytes some other component already owns must
  // not load: trusting it would let two owners scribble on each other.
  BuildWave();
  ASSERT_OK_AND_ASSIGN(std::string contents, SerializeCheckpoint(wave_));
  ExtentAllocator fresh(store_.allocator()->capacity());
  // Squat on the whole device before loading.
  ASSERT_TRUE(fresh.Reserve(Extent{0, fresh.capacity()}).ok());
  auto loaded =
      DeserializeCheckpoint(contents, store_.device(), &fresh, Options());
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsFailedPrecondition()) << loaded.status();
}

TEST_F(CheckpointTest, SchemeWaveCanBeCheckpointed) {
  // End to end with a real scheme: run WATA* for a while, checkpoint its
  // wave, reload, compare query results.
  DayStore day_store;
  SchemeConfig config;
  config.window = 6;
  config.num_indexes = 3;
  config.technique = UpdateTechniqueKind::kSimpleShadow;
  auto made = MakeScheme(SchemeKind::kWata,
                         SchemeEnv{store_.device(), store_.allocator(),
                                   &day_store},
                         config);
  ASSERT_TRUE(made.ok()) << made.status();
  std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();
  ReferenceIndex reference;
  std::vector<DayBatch> first;
  for (Day d = 1; d <= 6; ++d) first.push_back(MakeMixedBatch(d));
  ASSERT_OK(scheme->Start(std::move(first)));
  for (Day d = 7; d <= 15; ++d) {
    ASSERT_OK(scheme->Transition(MakeMixedBatch(d)));
  }
  ASSERT_OK_AND_ASSIGN(std::string contents,
                       SerializeCheckpoint(scheme->wave()));
  ExtentAllocator fresh(store_.allocator()->capacity());
  ASSERT_OK_AND_ASSIGN(
      WaveIndex reopened,
      DeserializeCheckpoint(contents, store_.device(), &fresh, Options()));
  std::vector<Entry> original, reloaded;
  ASSERT_OK(scheme->wave().IndexProbe("alpha", &original));
  ASSERT_OK(reopened.IndexProbe("alpha", &reloaded));
  ReferenceIndex::Sort(&original);
  ReferenceIndex::Sort(&reloaded);
  EXPECT_EQ(reloaded, original);
}

}  // namespace
}  // namespace wavekit
