// ShardedCachedDevice: a thread-safe, lock-striped LRU block cache.
//
// The single-threaded CachedDevice funnels every probe through one LRU; under
// parallel query fan-out (wave/wave_service.h, ParallelTimedIndexProbe) that
// would re-serialize exactly the I/O the paper says needs no concurrency
// control. Here the block space is striped over N independent shards keyed by
// block_id % N — each with its own mutex, LRU list, and stats — so concurrent
// probes of distinct hot buckets touch distinct locks and proceed in
// parallel. Zipfian workloads concentrate on few hot buckets, but hot BLOCKS
// of different buckets land in different shards, which is what matters.
//
// Like CachedDevice, place this ABOVE the MeteredDevice: hits never reach the
// wrapped device, so modeled seek/transfer costs reflect only true disk
// traffic. Writes are write-through under the shard lock, so readers of a
// cached block always see either the full old or full new bytes of a block.

#ifndef WAVEKIT_STORAGE_SHARDED_CACHED_DEVICE_H_
#define WAVEKIT_STORAGE_SHARDED_CACHED_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/cached_device.h"  // CacheStats
#include "storage/device.h"

namespace wavekit {

/// \brief Thread-safe fixed-capacity LRU block cache over a Device, striped
/// into independently locked shards.
///
/// Safe for any number of concurrent Read/ReadBatch/Write callers, provided
/// the wrapped device is (MemoryDevice, FileDevice, and MeteredDevice all
/// are). Invalidate/ResetStats may run concurrently too. Capacity is divided
/// evenly across shards, so a pathological workload hammering one shard can
/// cache at most capacity_blocks / num_shards blocks — acceptable: block ids
/// of hot buckets spread uniformly over shards by construction.
class ShardedCachedDevice : public Device {
 public:
  /// `inner` must outlive this object. `capacity_blocks` > 0; `block_size`
  /// defaults to 4 KiB; `num_shards` is clamped to >= 1 (use 1 to recover
  /// exact CachedDevice behaviour plus a lock).
  ShardedCachedDevice(Device* inner, size_t capacity_blocks,
                      uint64_t block_size = 4096, size_t num_shards = 16);

  Status Read(uint64_t offset, std::span<std::byte> out) override;
  Status Write(uint64_t offset, std::span<const std::byte> data) override;
  Status WriteBatch(std::span<const Extent> extents,
                    std::span<const std::byte> data) override;
  uint64_t capacity() const override { return inner_->capacity(); }
  // Write-through cache: the inner device holds every byte, so Sync forwards.
  Status Sync() override { return inner_->Sync(); }

  /// Verified-residency tracking (see storage/device.h): blocks enter the
  /// cache untrusted; MarkVerified records, per still-resident block that was
  /// filled BEFORE the tracking read began (block.fill_gen < fill_token),
  /// exactly the bytes the verified extents cover — a byte-granular bitmap,
  /// not a whole-block bit, because bucket extents are byte-granular and
  /// live prefixes are separated by slack, so whole-block (or single-range)
  /// trust would leave most blocks permanently untrusted. A batch reports
  /// all_trusted only when every byte it read is marked trusted. Because a
  /// call's own fills carry generations >= its token, promotion needs two
  /// verified passes: the first verifies the freshly filled bytes, the
  /// second (an all-hit pass over unchanged blocks) promotes — and any block
  /// refilled concurrently mid-pass is left untrusted.
  Status ReadBatchTracked(std::span<const Extent> extents,
                          std::span<std::byte> out, bool* all_trusted,
                          uint64_t* fill_token) override;
  void MarkVerified(std::span<const Extent> extents,
                    uint64_t fill_token) override;

  /// Aggregated counters over all shards (each shard sampled under its own
  /// lock; the sum is a consistent-enough snapshot under concurrency).
  CacheStats stats() const;

  /// Counters of one shard (for distribution diagnostics/tests).
  CacheStats shard_stats(size_t shard) const;

  void ResetStats();

  /// Total blocks currently cached across shards.
  size_t cached_blocks() const;

  /// Blocks cached in one shard.
  size_t shard_cached_blocks(size_t shard) const;

  size_t capacity_blocks() const { return capacity_blocks_; }
  uint64_t block_size() const { return block_size_; }
  size_t num_shards() const { return shards_.size(); }

  /// Drops every cached block (stats are kept).
  void Invalidate();

 private:
  struct CachedBlock {
    uint64_t block_id;
    std::vector<std::byte> bytes;
    // Verified-residency state: the fill generation (from fill_counter_)
    // stamped when the block was loaded, and one bit per block byte set
    // once checksum verification has covered that byte since the fill.
    // Lazily sized on first MarkVerified (empty = nothing trusted), so
    // blocks that never serve a checksumming reader pay nothing.
    uint64_t fill_gen = 0;
    std::vector<uint64_t> trusted;
  };
  using LruList = std::list<CachedBlock>;

  struct Shard {
    mutable std::mutex mutex;
    LruList lru;  // front = most recently used
    std::unordered_map<uint64_t, LruList::iterator> index;
    CacheStats stats;
  };

  Shard& ShardFor(uint64_t block_id) {
    return shards_[static_cast<size_t>(block_id % shards_.size())];
  }

  // Copies bytes [within, within + n) of `block_id` into `out`, loading the
  // block on miss. The copy happens under the shard lock so eviction or a
  // concurrent write-through cannot tear it. When `trusted_accum` is
  // non-null it is cleared unless every requested byte is marked trusted (a
  // miss counts as untrusted).
  Status ReadThroughBlock(uint64_t block_id, uint64_t within,
                          std::span<std::byte> out,
                          bool* trusted_accum = nullptr);

  // Patches cached blocks overlapping [offset, offset+data.size()) under
  // their shard locks after a device write, or evicts them when the write
  // failed (the device's contents are then unknown).
  void PatchCache(uint64_t offset, std::span<const std::byte> data,
                  bool written_ok);

  Device* inner_;
  size_t capacity_blocks_;
  uint64_t block_size_;
  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  // Monotone count of block fills, stamped into CachedBlock::fill_gen so
  // MarkVerified can reject blocks filled after its token was issued.
  std::atomic<uint64_t> fill_counter_{1};
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_SHARDED_CACHED_DEVICE_H_
