file(REMOVE_RECURSE
  "CMakeFiles/extent_allocator_test.dir/storage/extent_allocator_test.cc.o"
  "CMakeFiles/extent_allocator_test.dir/storage/extent_allocator_test.cc.o.d"
  "extent_allocator_test"
  "extent_allocator_test.pdb"
  "extent_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extent_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
