// Store: convenience bundle of the storage substrate — an in-memory device,
// its metering wrapper, and an extent allocator over the same address range.

#ifndef WAVEKIT_STORAGE_STORE_H_
#define WAVEKIT_STORAGE_STORE_H_

#include "storage/device.h"
#include "storage/extent_allocator.h"
#include "storage/metered_device.h"
#include "storage/synchronized_device.h"

namespace wavekit {

/// \brief One self-contained simulated disk. Examples, tests, and the
/// experiment driver all start from a Store.
///
/// The device is the synchronized (thread-safe) metered variant, so stores
/// can back concurrent serving and parallel query fan-out out of the box; an
/// uncontended mutex costs nothing measurable next to the simulated I/O.
class Store {
 public:
  explicit Store(uint64_t capacity_bytes = uint64_t{16} << 30)
      : memory_(capacity_bytes),
        metered_(&memory_),
        allocator_(capacity_bytes) {}

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  MeteredDevice* device() { return &metered_; }
  ExtentAllocator* allocator() { return &allocator_; }
  const MeteredDevice& device() const { return metered_; }
  const ExtentAllocator& allocator() const { return allocator_; }

 private:
  MemoryDevice memory_;
  SynchronizedMeteredDevice metered_;
  ExtentAllocator allocator_;
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_STORE_H_
