// Raw POSIX TCP plumbing shared by every embedded server in the tree.
//
// Extracted from obs/http_exporter.cc when waved (serve/server_loop.h)
// arrived and needed the identical listen/bind/accept dance. Beyond
// de-duplication, centralizing the socket calls fixes the robustness gaps a
// copy tends to fossilize:
//
//   - SendAll retries EINTR and continues after short writes (a signal
//     landing mid-flush used to truncate HTTP responses),
//   - listeners always set SO_REUSEADDR, so a restart can rebind a port
//     still in TIME_WAIT,
//   - RecvSome retries EINTR so a timer signal cannot masquerade as EOF.
//
// Everything returns Status/Result with the errno text baked in; no
// exceptions, no dependencies beyond <sys/socket.h>.

#ifndef WAVEKIT_UTIL_NET_H_
#define WAVEKIT_UTIL_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace wavekit {
namespace net {

/// \brief Creates a TCP listening socket bound to `bind_address:port` with
/// SO_REUSEADDR set (port 0 picks an ephemeral port; read it back with
/// LocalPort). Returns the listening fd.
Result<int> ListenTcp(const std::string& bind_address, uint16_t port,
                      int backlog = 64);

/// \brief The local port a bound socket resolved to.
Result<uint16_t> LocalPort(int fd);

/// \brief Blocking connect to `host:port` (numeric IPv4 address only — the
/// serving stack never resolves names). Returns the connected fd.
Result<int> ConnectTcp(const std::string& host, uint16_t port);

/// \brief Writes all of `data`, retrying EINTR and continuing after short
/// writes. Sends with MSG_NOSIGNAL so a dead peer yields EPIPE, not SIGPIPE.
Status SendAll(int fd, const void* data, size_t size);
inline Status SendAll(int fd, const std::string& data) {
  return SendAll(fd, data.data(), data.size());
}

/// \brief One recv, retrying EINTR. Returns the byte count; 0 means the peer
/// closed cleanly. A receive timeout (SetRecvTimeoutSec) surfaces as
/// IOError("recv timeout").
Result<size_t> RecvSome(int fd, void* buf, size_t size);

/// \brief Arms SO_RCVTIMEO so a half-open peer cannot block a read forever.
Status SetRecvTimeoutSec(int fd, int seconds);

/// \brief O_NONBLOCK for event-loop sockets.
Status SetNonBlocking(int fd);

/// \brief TCP_NODELAY — every server here writes complete responses, so
/// Nagle only adds latency.
Status SetNoDelay(int fd);

/// \brief Status::IOError with "<what>: <errno text>".
Status ErrnoStatus(const std::string& what);

}  // namespace net
}  // namespace wavekit

#endif  // WAVEKIT_UTIL_NET_H_
