#include "storage/mmap_device.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/fs.h"
#include "util/macros.h"

namespace wavekit {

Result<std::unique_ptr<MmapDevice>> MmapDevice::Open(const std::string& path,
                                                     uint64_t capacity) {
  if (capacity == 0) return Status::InvalidArgument("mmap capacity must be > 0");
  const bool existed = FileExists(path);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("open '" + path + "': " + std::strerror(errno));
  }
  if (!existed) {
    const Status synced = SyncDirectoryOf(path);
    if (!synced.ok()) {
      ::close(fd);
      return synced;
    }
  }
  // Size the file to the full capacity (sparse) so the mapping never faults
  // SIGBUS on access past EOF.
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status =
        Status::IOError("fstat '" + path + "': " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (static_cast<uint64_t>(st.st_size) < capacity &&
      ::ftruncate(fd, static_cast<off_t>(capacity)) != 0) {
    const Status status =
        Status::IOError("ftruncate '" + path + "': " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  void* map = ::mmap(nullptr, capacity, PROT_READ | PROT_WRITE, MAP_SHARED,
                     fd, 0);
  if (map == MAP_FAILED) {
    const Status status =
        Status::IOError("mmap '" + path + "': " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return std::unique_ptr<MmapDevice>(
      new MmapDevice(path, fd, static_cast<std::byte*>(map), capacity));
}

MmapDevice::MmapDevice(std::string path, int fd, std::byte* map,
                       uint64_t capacity)
    : path_(std::move(path)), fd_(fd), map_(map), capacity_(capacity) {}

MmapDevice::~MmapDevice() {
  if (map_ != nullptr) ::munmap(map_, capacity_);
  if (fd_ >= 0) ::close(fd_);
}

Status MmapDevice::CheckRange(uint64_t offset, size_t length) const {
  if (offset > capacity_ || length > capacity_ - offset) {
    return Status::OutOfRange("mmap device access [" + std::to_string(offset) +
                              ", " + std::to_string(offset + length) +
                              ") exceeds capacity " + std::to_string(capacity_));
  }
  return Status::OK();
}

Status MmapDevice::Read(uint64_t offset, std::span<std::byte> out) {
  WAVEKIT_RETURN_NOT_OK(CheckRange(offset, out.size()));
  std::memcpy(out.data(), map_ + offset, out.size());
  return Status::OK();
}

Status MmapDevice::Write(uint64_t offset, std::span<const std::byte> data) {
  WAVEKIT_RETURN_NOT_OK(CheckRange(offset, data.size()));
  std::memcpy(map_ + offset, data.data(), data.size());
  return Status::OK();
}

Status MmapDevice::ReadBatch(std::span<const Extent> extents,
                             std::span<std::byte> out) {
  uint64_t total = 0;
  for (const Extent& extent : extents) {
    WAVEKIT_RETURN_NOT_OK(
        CheckRange(extent.offset, static_cast<size_t>(extent.length)));
    total += extent.length;
  }
  if (total != out.size()) {
    return Status::InvalidArgument(
        "ReadBatch output buffer does not match the sum of extent lengths");
  }
  const long page = ::sysconf(_SC_PAGESIZE);
  const uint64_t page_size = page > 0 ? static_cast<uint64_t>(page) : 4096;
  for (const Extent& extent : extents) {
    if (extent.empty()) continue;
    const uint64_t start = extent.offset / page_size * page_size;
    const uint64_t end = extent.end();
    // Best effort: a failed madvise only loses the prefetch, never data.
    ::madvise(map_ + start, static_cast<size_t>(end - start), MADV_WILLNEED);
  }
  size_t consumed = 0;
  for (const Extent& extent : extents) {
    std::memcpy(out.data() + consumed, map_ + extent.offset,
                static_cast<size_t>(extent.length));
    consumed += static_cast<size_t>(extent.length);
  }
  return Status::OK();
}

Status MmapDevice::Sync() {
  if (::msync(map_, capacity_, MS_SYNC) != 0) {
    return Status::IOError("msync '" + path_ + "': " + std::strerror(errno));
  }
  if (::fdatasync(fd_) != 0) {
    return Status::IOError("fdatasync '" + path_ + "': " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace wavekit
