// Table 9: query performance — the time of one TimedIndexProbe and one
// TimedSegmentScan per scheme. Model (Table 9's formulas) next to the
// device simulation's measured per-query costs.

#include "bench/common.h"

#include "storage/store.h"
#include "wave/scheme_factory.h"
#include "workload/netnews.h"
#include "workload/query_workload.h"

namespace wavekit {
namespace bench {
namespace {

struct SimQueryCosts {
  double per_probe = 0;
  double per_scan = 0;
};

// Runs `kind` for 2W transitions on a scaled Netnews stream, then measures
// the cost of single probes and scans against the steady-state wave index.
SimQueryCosts MeasureSimQueries(SchemeKind kind, int window, int n) {
  Store store;
  DayStore day_store;
  SchemeEnv env{store.device(), store.allocator(), &day_store};
  SchemeConfig config;
  config.window = window;
  config.num_indexes = n;
  config.technique = UpdateTechniqueKind::kSimpleShadow;
  auto made = MakeScheme(kind, env, config);
  if (!made.ok()) made.status().Abort("MakeScheme");
  std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();

  workload::NetnewsConfig netnews_config;
  netnews_config.articles_per_day = 70;
  netnews_config.words_per_article = 20;
  workload::NetnewsGenerator netnews(netnews_config);
  std::vector<DayBatch> first;
  for (Day d = 1; d <= window; ++d) first.push_back(netnews.GenerateDay(d));
  scheme->Start(std::move(first)).Abort("Start");
  for (int i = 0; i < 2 * window; ++i) {
    scheme->Transition(netnews.GenerateDay(scheme->current_day() + 1))
        .Abort("Transition");
  }

  workload::QueryMix mix;
  mix.probes_per_day = 1;
  mix.probe_sample = 32;
  mix.scans_per_day = 1;
  mix.scan_sample = 2;
  auto costs = workload::RunDailyQueries(
      scheme->wave(), store.device(), CostModel::Paper(), mix,
      DayRange::Window(scheme->current_day(), window),
      [&netnews](Rng& rng) { return netnews.SampleWord(rng); });
  if (!costs.ok()) costs.status().Abort("RunDailyQueries");
  return SimQueryCosts{costs.ValueOrDie().seconds_per_probe,
                       costs.ValueOrDie().seconds_per_scan};
}

int Run() {
  Banner("Table 9: query performance (simple shadow updating, W=10, n=2)",
         "One probe costs Probe_idx * (seek + (W/n) * c/Trans); one scan "
         "costs Scan_idx * (seek + (W/n) * S'/Trans) — S for packed REINDEX; "
         "WATA scans also pay for residual expired days.");

  const model::CaseParams params = model::CaseParams::Scam();
  const int window = 10;
  const int n = 2;

  sim::TablePrinter table({"scheme", "model probe (n idx)",
                           "model scan (1 idx)", "sim probe (n idx)",
                           "sim scan (all idx)"});
  table.SetTitle(
      "Model at paper scale; sim at 70 articles/day (absolute values differ; "
      "the ordering is what must match)");

  struct Row {
    SchemeKind kind;
    double model_probe, model_scan;
    SimQueryCosts sim;
  };
  std::vector<Row> rows;
  for (SchemeKind kind : PaperSchemes()) {
    Row row{kind, 0, 0, {}};
    const model::QueryShape shape =
        model::ShapeOf(kind, UpdateTechniqueKind::kSimpleShadow, window, n);
    row.model_probe = model::TimedIndexProbeSeconds(params, shape, n);
    row.model_scan = model::TimedSegmentScanSeconds(params, shape, 1);
    row.sim = MeasureSimQueries(kind, window, n);
    rows.push_back(row);
    table.AddRow({std::string(SchemeKindName(kind)),
                  FormatSeconds(row.model_probe),
                  FormatSeconds(row.model_scan),
                  FormatSeconds(row.sim.per_probe),
                  FormatSeconds(row.sim.per_scan)});
  }
  table.Print(std::cout);

  ShapeChecks checks;
  auto find = [&](SchemeKind kind) -> const Row& {
    for (const Row& row : rows) {
      if (row.kind == kind) return row;
    }
    std::abort();
  };
  checks.Check(find(SchemeKind::kReindex).model_scan <
                   find(SchemeKind::kDel).model_scan,
               "model: REINDEX's packed indexes scan faster than DEL's "
               "unpacked ones");
  checks.Check(find(SchemeKind::kReindex).sim.per_scan <=
                   find(SchemeKind::kDel).sim.per_scan,
               "sim: REINDEX's packed indexes scan no slower than DEL's");
  checks.Check(find(SchemeKind::kWata).sim.per_scan >=
                   0.95 * find(SchemeKind::kRata).sim.per_scan,
               "sim: WATA scans are no faster than RATA's (residual days)");
  checks.Check(find(SchemeKind::kDel).model_probe ==
                   find(SchemeKind::kReindexPlusPlus).model_probe,
               "model: probe cost depends only on (W, n), not the "
               "hard-window scheme");
  return checks.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace wavekit

int main() { return wavekit::bench::Run(); }
