// Entry: the fixed-size posting stored in index buckets.

#ifndef WAVEKIT_INDEX_ENTRY_H_
#define WAVEKIT_INDEX_ENTRY_H_

#include <cstdint>
#include <type_traits>

#include "util/day.h"

namespace wavekit {

/// \brief One posting: a record pointer plus associated information.
///
/// Per the paper's Section 2, each bucket entry is a pointer p_i to a record
/// together with associated information a_i; for wave indexing a_i includes
/// the timestamp (day) the record was inserted, which TimedIndexProbe /
/// TimedSegmentScan filter on. `aux` carries application payload (e.g. a byte
/// offset in IR usage, or an attribute for covering-index tricks in the
/// relational usage).
struct Entry {
  uint64_t record_id = 0;
  Day day = 0;
  uint32_t aux = 0;

  bool operator==(const Entry& other) const = default;
};

static_assert(std::is_trivially_copyable_v<Entry>,
              "Entry is memcpy'd to and from the device");
static_assert(sizeof(Entry) == 16, "on-device entry layout is 16 bytes");

/// Bytes one entry occupies on the device.
inline constexpr uint64_t kEntrySize = sizeof(Entry);

}  // namespace wavekit

#endif  // WAVEKIT_INDEX_ENTRY_H_
