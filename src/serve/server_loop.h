// ServerLoop: the socket-owning half of waved.
//
// One background thread runs an epoll loop over non-blocking sockets:
// accept, read, hand bytes to ServerCore::Ingest, flush the reply bytes it
// produced. All protocol/tenant/rate-limit logic lives in the (transport-
// free, sim-tested) core; this file only moves bytes and enforces the two
// purely-transport policies a socket loop must own:
//
//   - idle timeout: a connection that sends nothing for idle_timeout_ms is
//     closed (slow-loris defense — holding a socket open costs an attacker
//     a heartbeat, not a server slot forever),
//   - graceful drain: Drain() stops accepting, lets every in-flight request
//     finish and flush, then closes. waved wires SIGTERM to it.
//
// Writes go through util/net's SendAll when the socket is writable and fall
// back to a per-connection pending buffer + EPOLLOUT when the kernel buffer
// fills, so one slow reader cannot block the loop.

#ifndef WAVEKIT_SERVE_SERVER_LOOP_H_
#define WAVEKIT_SERVE_SERVER_LOOP_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>

#include "serve/server_core.h"
#include "util/status.h"

namespace wavekit {
namespace serve {

class ServerLoop {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port; read it back with port().
    uint16_t port = 0;
    /// Connections idle (no bytes received) longer than this are closed.
    /// 0 disables the timeout.
    int idle_timeout_ms = 30'000;
  };

  /// `core` must outlive the loop.
  ServerLoop(Options options, ServerCore* core);
  ~ServerLoop();

  ServerLoop(const ServerLoop&) = delete;
  ServerLoop& operator=(const ServerLoop&) = delete;

  /// Binds, listens, and starts the loop thread.
  Status Start();

  /// Graceful drain: stop accepting, answer and flush everything already in
  /// flight, close connections, stop the thread. Blocks until done (in-flight
  /// requests are bounded by the request path, not by client behaviour).
  void Drain();

  /// Hard stop: close everything now. In-flight replies may be lost.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// Connections accepted over the loop's lifetime.
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  /// Connections closed by the idle timeout.
  uint64_t idle_closed() const {
    return idle_closed_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    int fd = -1;
    ServerCore::Session* session = nullptr;
    /// Reply bytes the kernel buffer would not take yet (EPOLLOUT pending).
    std::string pending;
    /// Loop-clock milliseconds of the last received byte.
    int64_t last_activity_ms = 0;
    /// Set when the core reported the connection unrecoverable; close as
    /// soon as the final error reply flushes.
    bool closing = false;
  };

  void Run();
  void AcceptNew();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  /// Queues `bytes` on the connection, writing as much as the socket takes.
  void QueueReply(Connection* conn, std::string bytes);
  void CloseConnection(int fd);
  void CloseIdleConnections();
  int64_t NowMs() const;
  void Shutdown(bool drain);

  Options options_;
  ServerCore* core_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: Stop()/Drain() kick the epoll_wait
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<uint16_t> port_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> idle_closed_{0};
  std::map<int, Connection> connections_;  // loop thread only
};

}  // namespace serve
}  // namespace wavekit

#endif  // WAVEKIT_SERVE_SERVER_LOOP_H_
