// libFuzzer target for the waved wire protocol (serve/protocol.h).
//
// FrameReader is the trust boundary between the network and the server: it
// sees raw socket bytes before any authentication or dispatch. The contract
// under fuzzing:
//
//   - Feed/Next on arbitrary bytes never crash, overread, or trip a
//     sanitizer, and never buffer more than header + max payload per frame
//     (a hostile length field must not drive allocation);
//   - the frame sequence is reassembly-invariant: feeding the same bytes
//     byte-by-byte yields exactly the frames one big Feed yields, with the
//     same sticky error at the same point;
//   - a popped frame re-encodes byte-identically (EncodeRawFrame is the
//     inverse of frame extraction);
//   - every body decoder (requests and replies) on a popped payload either
//     succeeds or returns InvalidArgument — never crashes, never
//     over-allocates on hostile count fields;
//   - decoded requests round-trip: encode(decode(frame)) re-decodes to the
//     same struct.
//
// Build (Clang only):  cmake -B build-fuzz -S . -DWAVEKIT_FUZZ=ON \
//                          -DCMAKE_CXX_COMPILER=clang++
//                      cmake --build build-fuzz --target fuzz_protocol
// Run:                 build-fuzz/tests/fuzz/fuzz_protocol \
//                          tests/fuzz/corpus/protocol
//
// Without Clang, the same harness builds as a standalone corpus-replay
// binary (WAVEKIT_FUZZ_STANDALONE) — a regression driver, not a fuzzer.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "util/status.h"

namespace {

using wavekit::Status;
using wavekit::StatusCode;
namespace serve = wavekit::serve;

void Trap(const char* what) {
  std::fprintf(stderr, "fuzz_protocol: %s\n", what);
  __builtin_trap();
}

/// Pops every complete frame, recording the final sticky error (if any).
std::vector<serve::Frame> DrainFrames(serve::FrameReader* reader,
                                      Status* final_error) {
  std::vector<serve::Frame> frames;
  serve::Frame frame;
  while (reader->Next(&frame)) frames.push_back(frame);
  *final_error = reader->error();
  return frames;
}

bool SameHeader(const serve::FrameHeader& a, const serve::FrameHeader& b) {
  return a.payload_len == b.payload_len && a.version == b.version &&
         a.type == b.type && a.tenant_id == b.tenant_id &&
         a.request_id == b.request_id;
}

/// Every decoder must return OK or InvalidArgument on arbitrary payloads —
/// anything else (or a crash, caught by the sanitizer) is a bug.
void CheckDecoderContract(const Status& status) {
  if (!status.ok() && status.code() != StatusCode::kInvalidArgument) {
    Trap("decoder returned neither OK nor InvalidArgument");
  }
}

void ExerciseDecoders(const serve::Frame& frame) {
  {
    serve::ProbeRequest out;
    const Status status = serve::DecodeProbeRequest(frame.payload, &out);
    CheckDecoderContract(status);
    if (status.ok()) {
      const std::string encoded = serve::EncodeProbeRequest(
          frame.header.tenant_id, frame.header.request_id, out);
      serve::ProbeRequest again;
      if (!serve::DecodeProbeRequest(
               encoded.substr(serve::kFrameHeaderBytes), &again)
               .ok() ||
          again.range.lo != out.range.lo || again.range.hi != out.range.hi ||
          again.value != out.value) {
        Trap("PROBE round-trip mismatch");
      }
    }
  }
  {
    serve::ScanRequest out;
    const Status status = serve::DecodeScanRequest(frame.payload, &out);
    CheckDecoderContract(status);
    if (status.ok()) {
      const std::string encoded = serve::EncodeScanRequest(
          frame.header.tenant_id, frame.header.request_id, out);
      serve::ScanRequest again;
      if (!serve::DecodeScanRequest(encoded.substr(serve::kFrameHeaderBytes),
                                    &again)
               .ok() ||
          again.range.lo != out.range.lo || again.range.hi != out.range.hi ||
          again.max_entries != out.max_entries) {
        Trap("SCAN round-trip mismatch");
      }
    }
  }
  {
    serve::AdvanceRequest out;
    const Status status = serve::DecodeAdvanceRequest(frame.payload, &out);
    CheckDecoderContract(status);
    if (status.ok()) {
      const std::string encoded = serve::EncodeAdvanceRequest(
          frame.header.tenant_id, frame.header.request_id, out);
      serve::AdvanceRequest again;
      if (!serve::DecodeAdvanceRequest(
               encoded.substr(serve::kFrameHeaderBytes), &again)
               .ok() ||
          again.batch.day != out.batch.day ||
          again.batch.records.size() != out.batch.records.size()) {
        Trap("ADVANCE round-trip mismatch");
      }
    }
  }
  {
    serve::QueryReply out;
    CheckDecoderContract(serve::DecodeQueryReply(frame.payload, &out));
  }
  {
    serve::AdvanceReply out;
    CheckDecoderContract(serve::DecodeAdvanceReply(frame.payload, &out));
  }
  {
    serve::StatsReply out;
    CheckDecoderContract(serve::DecodeStatsReply(frame.payload, &out));
  }
  {
    serve::HealthReply out;
    CheckDecoderContract(serve::DecodeHealthReply(frame.payload, &out));
  }
  {
    serve::WireResult out;
    CheckDecoderContract(serve::DecodeResultPrefix(frame.payload, &out));
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Cap the reader the way a unit test would: hostile length fields are
  // exercised against a small limit so the error path fires often, and the
  // reader can never buffer beyond header + limit per frame.
  constexpr uint32_t kLimit = 1u << 16;

  serve::FrameReader whole(kLimit);
  (void)whole.Feed(data, size);
  Status whole_error;
  const std::vector<serve::Frame> frames = DrainFrames(&whole, &whole_error);

  // Reassembly invariance: byte-by-byte feeding yields the same frames and
  // the same terminal error.
  serve::FrameReader dribble(kLimit);
  for (size_t i = 0; i < size; ++i) {
    if (!dribble.Feed(data + i, 1).ok()) break;
  }
  Status dribble_error;
  const std::vector<serve::Frame> again = DrainFrames(&dribble, &dribble_error);
  if (frames.size() != again.size()) Trap("reassembly changed frame count");
  if (whole_error.ok() != dribble_error.ok() ||
      (!whole_error.ok() &&
       whole_error.message() != dribble_error.message())) {
    Trap("reassembly changed the sticky error");
  }
  if (!whole_error.ok() &&
      !SameHeader(whole.error_header(), dribble.error_header())) {
    Trap("reassembly changed the error header");
  }

  for (size_t i = 0; i < frames.size(); ++i) {
    const serve::Frame& frame = frames[i];
    if (!SameHeader(frame.header, again[i].header) ||
        frame.payload != again[i].payload) {
      Trap("reassembly changed a frame");
    }
    if (frame.payload.size() != frame.header.payload_len ||
        frame.payload.size() > kLimit) {
      Trap("frame escaped the payload cap");
    }
    // EncodeRawFrame must be the exact inverse of frame extraction: feeding
    // a popped frame's re-encoding back through a reader yields the frame.
    const std::string reencoded =
        serve::EncodeRawFrame(frame.header.version, frame.header.type,
                              frame.header.tenant_id, frame.header.request_id,
                              frame.payload);
    serve::FrameReader echo(kLimit);
    serve::Frame echoed;
    if (!echo.Feed(reencoded.data(), reencoded.size()).ok() ||
        !echo.Next(&echoed) || !SameHeader(echoed.header, frame.header) ||
        echoed.payload != frame.payload) {
      Trap("re-encode did not round-trip through the reader");
    }
    ExerciseDecoders(frame);
  }
  return 0;
}

#ifdef WAVEKIT_FUZZ_STANDALONE
// Corpus replay driver for toolchains without libFuzzer.
#include <fstream>
#include <sstream>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string contents = buffer.str();
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const uint8_t*>(contents.data()), contents.size());
    std::printf("ok %s (%zu bytes)\n", argv[i], contents.size());
  }
  return 0;
}
#endif  // WAVEKIT_FUZZ_STANDALONE
