#include "model/space_model.h"

#include <gtest/gtest.h>

namespace wavekit {
namespace model {
namespace {

class SpaceModelTest : public ::testing::Test {
 protected:
  CaseParams params_ = CaseParams::Scam();  // S = 56 MB, S' = 78.4 MB
};

TEST_F(SpaceModelTest, DelTable8Row) {
  SpaceEstimate e = EstimateSpace(SchemeKind::kDel,
                                  UpdateTechniqueKind::kSimpleShadow, params_,
                                  10, 2);
  EXPECT_DOUBLE_EQ(e.avg_operation_bytes, 10 * 78.4e6);
  EXPECT_DOUBLE_EQ(e.max_operation_bytes, 10 * 78.4e6);
  EXPECT_DOUBLE_EQ(e.avg_transition_bytes, 5 * 78.4e6);
  EXPECT_DOUBLE_EQ(e.max_transition_bytes, 5 * 78.4e6);
}

TEST_F(SpaceModelTest, ReindexUsesPackedBytes) {
  SpaceEstimate e = EstimateSpace(SchemeKind::kReindex,
                                  UpdateTechniqueKind::kSimpleShadow, params_,
                                  10, 2);
  EXPECT_DOUBLE_EQ(e.avg_operation_bytes, 10 * 56e6);
  EXPECT_DOUBLE_EQ(e.max_transition_bytes, 5 * 56e6);
  // REINDEX needs the least operation space of all schemes (Figure 3).
  for (SchemeKind other :
       {SchemeKind::kDel, SchemeKind::kReindexPlus,
        SchemeKind::kReindexPlusPlus, SchemeKind::kWata, SchemeKind::kRata}) {
    SpaceEstimate o = EstimateSpace(other, UpdateTechniqueKind::kSimpleShadow,
                                    params_, 10, 2);
    EXPECT_LE(e.avg_operation_bytes, o.avg_operation_bytes)
        << SchemeKindName(other);
  }
}

TEST_F(SpaceModelTest, ReindexPlusTempCosts) {
  SpaceEstimate e = EstimateSpace(SchemeKind::kReindexPlus,
                                  UpdateTechniqueKind::kSimpleShadow, params_,
                                  10, 2);
  // Temp averages (X-1)/2 = 2 days; max X-1 = 4 days (Table 8's W + X - 1).
  EXPECT_DOUBLE_EQ(e.avg_operation_bytes, (10 + 2) * 78.4e6);
  EXPECT_DOUBLE_EQ(e.max_operation_bytes, (10 + 4) * 78.4e6);
}

TEST_F(SpaceModelTest, ReindexPlusPlusLadderDominates) {
  SpaceEstimate e = EstimateSpace(SchemeKind::kReindexPlusPlus,
                                  UpdateTechniqueKind::kSimpleShadow, params_,
                                  10, 2);
  // Max ladder: X(X-1)/2 = 10 days on top of the window.
  EXPECT_DOUBLE_EQ(e.max_operation_bytes, (10 + 10) * 78.4e6);
  // No constituent shadowing: transitions only touch temporaries (Table 8).
  EXPECT_DOUBLE_EQ(e.max_transition_bytes, 0.0);
}

TEST_F(SpaceModelTest, WataSoftWindowResidual) {
  SpaceEstimate e = EstimateSpace(SchemeKind::kWata,
                                  UpdateTechniqueKind::kSimpleShadow, params_,
                                  10, 4);
  // Y = 3: max residual Y - 1 = 2 days (Appendix B).
  EXPECT_DOUBLE_EQ(e.max_operation_bytes, 12 * 78.4e6);
}

TEST_F(SpaceModelTest, InPlaceNeedsNoTransitionSpace) {
  for (SchemeKind kind : {SchemeKind::kDel, SchemeKind::kWata}) {
    SpaceEstimate e = EstimateSpace(kind, UpdateTechniqueKind::kInPlace,
                                    params_, 10, 2);
    EXPECT_DOUBLE_EQ(e.max_transition_bytes, 0.0) << SchemeKindName(kind);
  }
  // ...except REINDEX, which always stages its rebuild.
  SpaceEstimate r = EstimateSpace(SchemeKind::kReindex,
                                  UpdateTechniqueKind::kInPlace, params_, 10,
                                  2);
  EXPECT_GT(r.max_transition_bytes, 0.0);
}

TEST_F(SpaceModelTest, PackedShadowShrinksFootprint) {
  SpaceEstimate simple = EstimateSpace(
      SchemeKind::kDel, UpdateTechniqueKind::kSimpleShadow, params_, 10, 2);
  SpaceEstimate packed = EstimateSpace(
      SchemeKind::kDel, UpdateTechniqueKind::kPackedShadow, params_, 10, 2);
  EXPECT_LT(packed.avg_operation_bytes, simple.avg_operation_bytes);
  EXPECT_LT(packed.max_transition_bytes, simple.max_transition_bytes);
}

TEST_F(SpaceModelTest, SpaceShrinksWithMoreIndexes) {
  // Figure 3: all schemes need less space as n grows.
  for (SchemeKind kind :
       {SchemeKind::kDel, SchemeKind::kReindex, SchemeKind::kReindexPlus,
        SchemeKind::kReindexPlusPlus, SchemeKind::kWata, SchemeKind::kRata}) {
    double previous = 1e18;
    for (int n = 2; n <= 7; ++n) {
      SpaceEstimate e = EstimateSpace(kind, UpdateTechniqueKind::kSimpleShadow,
                                      params_, 7, n);
      const double total = e.avg_total();
      EXPECT_LE(total, previous + 1.0) << SchemeKindName(kind) << " n=" << n;
      previous = total;
    }
  }
}

TEST_F(SpaceModelTest, CompressionRatioScalesPackedBytesOnly) {
  // REINDEX constituents are packed: a 2x observed codec ratio halves both
  // the operation window and the shadow's transition space.
  SpaceEstimate plain = EstimateSpace(SchemeKind::kReindex,
                                      UpdateTechniqueKind::kSimpleShadow,
                                      params_, 10, 2);
  SpaceEstimate packed = EstimateSpace(SchemeKind::kReindex,
                                       UpdateTechniqueKind::kSimpleShadow,
                                       params_, 10, 2, 2.0);
  EXPECT_DOUBLE_EQ(packed.avg_operation_bytes, plain.avg_operation_bytes / 2);
  EXPECT_DOUBLE_EQ(packed.max_transition_bytes,
                   plain.max_transition_bytes / 2);

  // DEL constituents grow unpacked (kRaw by rewrite-on-mutation): the codec
  // ratio must not touch them.
  SpaceEstimate del_plain = EstimateSpace(SchemeKind::kDel,
                                          UpdateTechniqueKind::kSimpleShadow,
                                          params_, 10, 2);
  SpaceEstimate del_ratio = EstimateSpace(SchemeKind::kDel,
                                          UpdateTechniqueKind::kSimpleShadow,
                                          params_, 10, 2, 2.0);
  EXPECT_DOUBLE_EQ(del_ratio.avg_operation_bytes,
                   del_plain.avg_operation_bytes);
  EXPECT_DOUBLE_EQ(del_ratio.max_transition_bytes,
                   del_plain.max_transition_bytes);
}

TEST_F(SpaceModelTest, CompressionRatioDefaultsAndClamps) {
  // The 5-arg overload is exactly ratio 1.0, and ratios below 1 clamp to 1
  // (a codec is only kept when it beats raw).
  for (SchemeKind kind : {SchemeKind::kReindex, SchemeKind::kWata}) {
    SpaceEstimate plain = EstimateSpace(kind,
                                        UpdateTechniqueKind::kPackedShadow,
                                        params_, 10, 2);
    SpaceEstimate unit = EstimateSpace(kind, UpdateTechniqueKind::kPackedShadow,
                                       params_, 10, 2, 1.0);
    SpaceEstimate clamped = EstimateSpace(kind,
                                          UpdateTechniqueKind::kPackedShadow,
                                          params_, 10, 2, 0.25);
    EXPECT_DOUBLE_EQ(plain.avg_total(), unit.avg_total());
    EXPECT_DOUBLE_EQ(plain.max_total(), clamped.max_total());
  }
}

}  // namespace
}  // namespace model
}  // namespace wavekit
