#include "index/growth_policy.h"

#include <gtest/gtest.h>

namespace wavekit {
namespace {

TEST(GrowthPolicyTest, InitialCapacityRespectsMinimumAndNeed) {
  GrowthPolicy policy;  // initial 4, g = 2
  EXPECT_EQ(policy.InitialCapacity(1), 4u);
  EXPECT_EQ(policy.InitialCapacity(4), 4u);
  EXPECT_EQ(policy.InitialCapacity(9), 9u);
}

TEST(GrowthPolicyTest, GrowsByFactor) {
  GrowthPolicy policy;
  EXPECT_EQ(policy.GrownCapacity(4, 5), 8u);
  EXPECT_EQ(policy.GrownCapacity(8, 9), 16u);
}

TEST(GrowthPolicyTest, GrowsRepeatedlyForBulkAdds) {
  GrowthPolicy policy;
  EXPECT_EQ(policy.GrownCapacity(4, 30), 32u);  // 4->8->16->32
}

TEST(GrowthPolicyTest, SmallGrowthFactor) {
  GrowthPolicy policy;
  policy.g = 1.08;  // the TPC-D choice: uniform keys need little slack
  const uint32_t grown = policy.GrownCapacity(100, 101);
  EXPECT_EQ(grown, 108u);
  // Slack stays small relative to g=2.
  EXPECT_LT(grown, policy.GrownCapacity(100, 101) + 1);
  GrowthPolicy doubling;
  EXPECT_GT(doubling.GrownCapacity(100, 101), grown);
}

TEST(GrowthPolicyTest, ShrinkOnlyPastHysteresis) {
  GrowthPolicy policy;  // g = 2 => shrink when live <= capacity / 4
  EXPECT_EQ(policy.ShrunkCapacity(64, 40), 64u);  // > 1/4: keep
  EXPECT_EQ(policy.ShrunkCapacity(64, 17), 64u);  // just above 16: keep
  EXPECT_LT(policy.ShrunkCapacity(64, 8), 64u);   // well under: shrink
}

TEST(GrowthPolicyTest, ShrinkNeverBelowLive) {
  GrowthPolicy policy;
  for (uint32_t live = 1; live <= 16; ++live) {
    EXPECT_GE(policy.ShrunkCapacity(256, live), live);
  }
}

TEST(GrowthPolicyTest, GrowShrinkDoesNotThrash) {
  GrowthPolicy policy;
  uint32_t cap = 4;
  // Add one entry past capacity, then delete it: capacity must not shrink
  // right back (hysteresis), or add/delete days would thrash buckets.
  cap = policy.GrownCapacity(cap, 5);
  EXPECT_EQ(policy.ShrunkCapacity(cap, 4), cap);
}

}  // namespace
}  // namespace wavekit
