// Small string-formatting helpers used by table printers and error messages.

#ifndef WAVEKIT_UTIL_FORMAT_H_
#define WAVEKIT_UTIL_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wavekit {

/// "1.50 KiB", "23.4 MiB", ... with two or three significant digits.
std::string FormatBytes(uint64_t bytes);

/// "1234.5 s", "12.3 ms", ... choosing a readable unit.
std::string FormatSeconds(double seconds);

/// Fixed-precision double, e.g. FormatDouble(3.14159, 2) == "3.14".
std::string FormatDouble(double value, int precision);

/// Thousands-separated integer: 1234567 -> "1,234,567".
std::string FormatCount(uint64_t value);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

}  // namespace wavekit

#endif  // WAVEKIT_UTIL_FORMAT_H_
