// SynchronizedMeteredDevice: a MeteredDevice for serving deployments where
// query threads read while the maintenance thread writes
// (wave/wave_service.h).
//
// Reads are LOCK-FREE: MeteredDevice's counters are relaxed atomics and the
// underlying MemoryDevice tolerates concurrent reads, so concurrent probes
// never contend here. Only writes take the writer-side mutex, serializing
// the (single) maintenance thread against itself across the extent-allocator
// and data write sequence. The shadow-update discipline — writers only fill
// fresh extents that no published snapshot references — is what makes the
// unlocked read/write overlap safe, exactly the paper's "no concurrency
// control is required".

#ifndef WAVEKIT_STORAGE_SYNCHRONIZED_DEVICE_H_
#define WAVEKIT_STORAGE_SYNCHRONIZED_DEVICE_H_

#include <mutex>

#include "storage/metered_device.h"

namespace wavekit {

/// \brief MeteredDevice with serialized writes and lock-free reads. Phase
/// changes (set_phase / PhaseScope) remain writer-only by convention:
/// metering attribution is advisory under concurrency, but counters and data
/// are always consistent.
class SynchronizedMeteredDevice : public MeteredDevice {
 public:
  using MeteredDevice::MeteredDevice;

  // Read and ReadBatch are inherited unlocked: thread-safe by construction.

  Status Write(uint64_t offset, std::span<const std::byte> data) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return MeteredDevice::Write(offset, data);
  }

  // One lock acquisition for the whole batch: parallel build stages pay the
  // writer mutex once per WriteBatch instead of once per bucket.
  Status WriteBatch(std::span<const Extent> extents,
                    std::span<const std::byte> data) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return MeteredDevice::WriteBatch(extents, data);
  }

  // Sync takes the writer mutex: the checkpoint path must not flush while a
  // maintenance write is mid-flight on a durable backend.
  Status Sync() override {
    std::lock_guard<std::mutex> lock(mutex_);
    return MeteredDevice::Sync();
  }

 private:
  std::mutex mutex_;
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_SYNCHRONIZED_DEVICE_H_
