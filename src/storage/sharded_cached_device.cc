#include "storage/sharded_cached_device.h"

#include <algorithm>
#include <cstring>

#include "util/macros.h"

namespace wavekit {

namespace {

/// True when every bit of [begin, end) is set. An empty bitmap (never
/// promoted) counts as all-clear. Word-masked so a whole-block check is a
/// few dozen word compares, not thousands of bit tests.
bool BitsAllSet(const std::vector<uint64_t>& bits, uint64_t begin,
                uint64_t end) {
  if (begin >= end) return true;
  if (bits.empty()) return false;
  const size_t first_word = static_cast<size_t>(begin >> 6);
  const size_t last_word = static_cast<size_t>((end - 1) >> 6);
  const uint64_t head = ~uint64_t{0} << (begin & 63);
  const uint64_t tail = ~uint64_t{0} >> (63 - ((end - 1) & 63));
  if (first_word == last_word) {
    const uint64_t mask = head & tail;
    return (bits[first_word] & mask) == mask;
  }
  if ((bits[first_word] & head) != head) return false;
  for (size_t w = first_word + 1; w < last_word; ++w) {
    if (~bits[w] != 0) return false;
  }
  return (bits[last_word] & tail) == tail;
}

/// Sets every bit of [begin, end). The bitmap must already be sized.
void SetBits(std::vector<uint64_t>& bits, uint64_t begin, uint64_t end) {
  if (begin >= end) return;
  const size_t first_word = static_cast<size_t>(begin >> 6);
  const size_t last_word = static_cast<size_t>((end - 1) >> 6);
  const uint64_t head = ~uint64_t{0} << (begin & 63);
  const uint64_t tail = ~uint64_t{0} >> (63 - ((end - 1) & 63));
  if (first_word == last_word) {
    bits[first_word] |= head & tail;
    return;
  }
  bits[first_word] |= head;
  for (size_t w = first_word + 1; w < last_word; ++w) {
    bits[w] = ~uint64_t{0};
  }
  bits[last_word] |= tail;
}

}  // namespace

ShardedCachedDevice::ShardedCachedDevice(Device* inner, size_t capacity_blocks,
                                         uint64_t block_size,
                                         size_t num_shards)
    : inner_(inner),
      capacity_blocks_(std::max<size_t>(capacity_blocks, 1)),
      block_size_(std::max<uint64_t>(block_size, 1)),
      per_shard_capacity_(std::max<size_t>(
          (capacity_blocks_ + std::max<size_t>(num_shards, 1) - 1) /
              std::max<size_t>(num_shards, 1),
          1)),
      shards_(std::max<size_t>(num_shards, 1)) {}

Status ShardedCachedDevice::ReadThroughBlock(uint64_t block_id,
                                             uint64_t within,
                                             std::span<std::byte> out,
                                             bool* trusted_accum) {
  Shard& shard = ShardFor(block_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto hit = shard.index.find(block_id);
  if (hit != shard.index.end()) {
    ++shard.stats.hits;
    if (trusted_accum != nullptr &&
        !BitsAllSet(hit->second->trusted, within, within + out.size())) {
      *trusted_accum = false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, hit->second);  // MRU
    std::memcpy(out.data(), hit->second->bytes.data() + within, out.size());
    return Status::OK();
  }
  ++shard.stats.misses;
  if (trusted_accum != nullptr) *trusted_accum = false;
  // Load from the device. The final block of the address range may be
  // partial; clamp the read and zero-fill the tail. Holding the shard lock
  // during the load serializes misses WITHIN one shard only; accesses to the
  // other shards keep going.
  CachedBlock block;
  block.block_id = block_id;
  block.bytes.assign(static_cast<size_t>(block_size_), std::byte{0});
  block.fill_gen = fill_counter_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t offset = block_id * block_size_;
  const uint64_t readable =
      std::min<uint64_t>(block_size_, inner_->capacity() - offset);
  WAVEKIT_RETURN_NOT_OK(inner_->Read(
      offset,
      std::span<std::byte>(block.bytes.data(), static_cast<size_t>(readable))));
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().block_id);
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
  shard.lru.push_front(std::move(block));
  shard.index[block_id] = shard.lru.begin();
  std::memcpy(out.data(), shard.lru.front().bytes.data() + within, out.size());
  return Status::OK();
}

Status ShardedCachedDevice::Read(uint64_t offset, std::span<std::byte> out) {
  if (offset > capacity() || out.size() > capacity() - offset) {
    return Status::OutOfRange("sharded cached device read out of range");
  }
  size_t done = 0;
  while (done < out.size()) {
    const uint64_t position = offset + done;
    const uint64_t block_id = position / block_size_;
    const uint64_t within = position % block_size_;
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(block_size_ - within, out.size() - done));
    WAVEKIT_RETURN_NOT_OK(
        ReadThroughBlock(block_id, within, out.subspan(done, chunk)));
    done += chunk;
  }
  return Status::OK();
}

Status ShardedCachedDevice::Write(uint64_t offset,
                                  std::span<const std::byte> data) {
  // Write-through, device first: if the device write fails, the cache must
  // not keep serving bytes the device never accepted (phantom data), so the
  // affected blocks are evicted instead of updated. On success any cached
  // blocks are patched under their shard locks. A single maintenance writer
  // plus the shadow-update discipline (readers never probe extents still
  // being written) keeps this race-free for readers.
  const Status written = inner_->Write(offset, data);
  PatchCache(offset, data, written.ok());
  return written;
}

void ShardedCachedDevice::PatchCache(uint64_t offset,
                                     std::span<const std::byte> data,
                                     bool written_ok) {
  size_t done = 0;
  while (done < data.size()) {
    const uint64_t position = offset + done;
    const uint64_t block_id = position / block_size_;
    const uint64_t within = position % block_size_;
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(block_size_ - within, data.size() - done));
    Shard& shard = ShardFor(block_id);
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      auto cached = shard.index.find(block_id);
      if (cached != shard.index.end()) {
        if (written_ok) {
          // Trusted ranges are kept: the patched bytes are writer-authored
          // (just accepted by the device), so the cached copy still equals
          // what a verified medium read would return.
          std::memcpy(cached->second->bytes.data() + within,
                      data.data() + done, chunk);
        } else {
          // The device's contents for this block are now unknown (possibly a
          // torn write); drop it so the next read refetches the truth.
          shard.lru.erase(cached->second);
          shard.index.erase(cached);
        }
      }
    }
    done += chunk;
  }
}

Status ShardedCachedDevice::WriteBatch(std::span<const Extent> extents,
                                       std::span<const std::byte> data) {
  // One inner batch (a single metering round / lock acquisition below), then
  // per-extent cache patching under shard locks. A failed batch may have
  // persisted any prefix, so every touched block is evicted on error.
  const Status written = inner_->WriteBatch(extents, data);
  size_t consumed = 0;
  for (const Extent& extent : extents) {
    const size_t length =
        std::min(static_cast<size_t>(extent.length), data.size() - consumed);
    PatchCache(extent.offset, data.subspan(consumed, length), written.ok());
    consumed += length;
    if (consumed >= data.size()) break;
  }
  return written;
}

Status ShardedCachedDevice::ReadBatchTracked(std::span<const Extent> extents,
                                             std::span<std::byte> out,
                                             bool* all_trusted,
                                             uint64_t* fill_token) {
  // The token is sampled BEFORE any block of this batch is (re)filled, so
  // MarkVerified can tell this call's own fills — and any concurrent
  // refill — apart from blocks that were already resident when the caller's
  // verification pass read them.
  *fill_token = fill_counter_.load(std::memory_order_relaxed);
  *all_trusted = true;
  size_t done = 0;
  for (const Extent& extent : extents) {
    if (extent.length > out.size() - done) {
      return Status::InvalidArgument(
          "ReadBatch output buffer smaller than the sum of extent lengths");
    }
    uint64_t offset = extent.offset;
    uint64_t remaining = extent.length;
    if (offset > capacity() || remaining > capacity() - offset) {
      return Status::OutOfRange("sharded cached device read out of range");
    }
    while (remaining > 0) {
      const uint64_t block_id = offset / block_size_;
      const uint64_t within = offset % block_size_;
      const size_t chunk =
          static_cast<size_t>(std::min<uint64_t>(block_size_ - within,
                                                 remaining));
      WAVEKIT_RETURN_NOT_OK(ReadThroughBlock(
          block_id, within, out.subspan(done, chunk), all_trusted));
      offset += chunk;
      remaining -= chunk;
      done += chunk;
    }
  }
  if (done != out.size()) {
    return Status::InvalidArgument(
        "ReadBatch output buffer larger than the sum of extent lengths");
  }
  return Status::OK();
}

void ShardedCachedDevice::MarkVerified(std::span<const Extent> extents,
                                       uint64_t fill_token) {
  const size_t words = static_cast<size_t>((block_size_ + 63) / 64);
  for (const Extent& extent : extents) {
    if (extent.empty()) continue;
    // Mark, in each overlapped block, exactly the bytes this extent
    // verified. A partially covered block holds neighbour bytes the caller
    // never checksummed; their bits stay clear.
    const uint64_t first_block = extent.offset / block_size_;
    const uint64_t last_block = (extent.end() - 1) / block_size_;  // inclusive
    for (uint64_t block_id = first_block; block_id <= last_block; ++block_id) {
      const uint64_t block_start = block_id * block_size_;
      const uint64_t seg_begin =
          std::max(extent.offset, block_start) - block_start;
      const uint64_t seg_end =
          std::min<uint64_t>(extent.end(), block_start + block_size_) -
          block_start;
      Shard& shard = ShardFor(block_id);
      std::lock_guard<std::mutex> lock(shard.mutex);
      auto cached = shard.index.find(block_id);
      if (cached == shard.index.end() ||
          cached->second->fill_gen >= fill_token) {
        continue;
      }
      CachedBlock& block = *cached->second;
      if (block.trusted.empty()) block.trusted.assign(words, 0);
      SetBits(block.trusted, seg_begin, seg_end);
    }
  }
}

CacheStats ShardedCachedDevice::stats() const {
  CacheStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.evictions += shard.stats.evictions;
  }
  return total;
}

CacheStats ShardedCachedDevice::shard_stats(size_t shard) const {
  const Shard& s = shards_[shard % shards_.size()];
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.stats;
}

void ShardedCachedDevice::ResetStats() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.stats = CacheStats{};
  }
}

size_t ShardedCachedDevice::cached_blocks() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

size_t ShardedCachedDevice::shard_cached_blocks(size_t shard) const {
  const Shard& s = shards_[shard % shards_.size()];
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.lru.size();
}

void ShardedCachedDevice::Invalidate() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
  }
}

}  // namespace wavekit
