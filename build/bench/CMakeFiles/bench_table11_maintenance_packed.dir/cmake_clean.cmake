file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_maintenance_packed.dir/bench_table11_maintenance_packed.cc.o"
  "CMakeFiles/bench_table11_maintenance_packed.dir/bench_table11_maintenance_packed.cc.o.d"
  "bench_table11_maintenance_packed"
  "bench_table11_maintenance_packed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_maintenance_packed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
