// WATA* (paper Section 3.3, Figure 16): "wait and throw away". Lazy
// deletion: a constituent is discarded only when every day it holds has
// expired; meanwhile new days accumulate in the most recently created
// constituent. Soft windows.
//
// Theorem 2 (Appendix B): WATA*'s wave-index length never exceeds
// W + ceil((W-1)/(n-1)) - 1, which is optimal among all WATA-family
// algorithms. Theorem 3: WATA* is 2-competitive on index size against an
// offline optimum that knows all future data sizes.

#ifndef WAVEKIT_WAVE_WATA_SCHEME_H_
#define WAVEKIT_WAVE_WATA_SCHEME_H_

#include "wave/scheme.h"

namespace wavekit {

/// \brief The WATA* maintenance scheme. Soft windows (queries may see up to
/// ceil((W-1)/(n-1)) - 1 expired days); no deletion code at all; bulk
/// expiry by dropping whole indexes. Requires n >= 2 (with one index nothing
/// would ever fully expire).
class WataScheme : public Scheme {
 public:
  WataScheme(SchemeEnv env, SchemeConfig config) : Scheme(env, config) {}

  SchemeKind kind() const override { return SchemeKind::kWata; }
  std::string_view name() const override { return "WATA*"; }
  bool hard_window() const override { return false; }

  Status ValidateConfig() const override;

  /// The slot index new days are currently appended to.
  size_t last_slot() const { return last_; }

 protected:
  Status DoStart() override;
  Status DoTransition(const DayBatch& new_day) override;
  Status DoAdopt() override;

  /// The slot new days are appended to (protected so WATA variants with
  /// different start splits — e.g. the paper's Table 4 example — can reuse
  /// the transition logic).
  size_t last_ = 0;
};

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_WATA_SCHEME_H_
