#include "workload/query_workload.h"

#include "util/macros.h"

namespace wavekit {
namespace workload {

Result<QueryCosts> RunDailyQueries(
    const WaveIndex& wave, MeteredDevice* device, const CostModel& cost,
    const QueryMix& mix, const DayRange& window,
    const std::function<Value(Rng&)>& value_sampler) {
  return RunDailyQueries(wave, std::vector<MeteredDevice*>{device}, cost, mix,
                         window, value_sampler);
}

Result<QueryCosts> RunDailyQueries(
    const WaveIndex& wave, const std::vector<MeteredDevice*>& devices,
    const CostModel& cost, const QueryMix& mix, const DayRange& window,
    const std::function<Value(Rng&)>& value_sampler) {
  QueryCosts out;
  Rng rng(mix.seed);
  MultiPhaseScope scope(devices, Phase::kQuery);
  auto query_counters = [&devices]() {
    IoCounters total;
    for (MeteredDevice* device : devices) {
      total += device->counters(Phase::kQuery);
    }
    return total;
  };

  if (mix.probes_per_day > 0 && mix.probe_sample > 0) {
    const IoCounters before = query_counters();
    std::vector<Entry> entries;
    for (int i = 0; i < mix.probe_sample; ++i) {
      entries.clear();
      WAVEKIT_RETURN_NOT_OK(
          wave.TimedIndexProbe(window, value_sampler(rng), &entries));
      out.probe_entries += entries.size();
    }
    const IoCounters spent = query_counters() - before;
    out.seconds_per_probe = cost.Seconds(spent) / mix.probe_sample;
    out.seconds += out.seconds_per_probe * mix.probes_per_day;
  }

  if (mix.scans_per_day > 0 && mix.scan_sample > 0) {
    const IoCounters before = query_counters();
    DayRange scan_range = window;
    if (!mix.scans_whole_window) scan_range.lo = scan_range.hi;
    uint64_t visited = 0;
    for (int i = 0; i < mix.scan_sample; ++i) {
      WAVEKIT_RETURN_NOT_OK(wave.TimedSegmentScan(
          scan_range, [&visited](const Value&, const Entry&) { ++visited; }));
    }
    out.scan_entries = visited;
    const IoCounters spent = query_counters() - before;
    out.seconds_per_scan = cost.Seconds(spent) / mix.scan_sample;
    out.seconds += out.seconds_per_scan * mix.scans_per_day;
  }
  return out;
}

}  // namespace workload
}  // namespace wavekit
