# Empty dependencies file for wata_property_test.
# This may be replaced when dependencies are built.
