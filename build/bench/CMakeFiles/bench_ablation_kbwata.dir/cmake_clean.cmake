file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_kbwata.dir/bench_ablation_kbwata.cc.o"
  "CMakeFiles/bench_ablation_kbwata.dir/bench_ablation_kbwata.cc.o.d"
  "bench_ablation_kbwata"
  "bench_ablation_kbwata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kbwata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
