file(REMOVE_RECURSE
  "CMakeFiles/scheme_factory_test.dir/wave/scheme_factory_test.cc.o"
  "CMakeFiles/scheme_factory_test.dir/wave/scheme_factory_test.cc.o.d"
  "scheme_factory_test"
  "scheme_factory_test.pdb"
  "scheme_factory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_factory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
