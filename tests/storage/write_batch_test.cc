// WriteBatch across the device decorator stack: correctness of the scattered
// write itself, per-extent metering with phase captured at call time,
// single-lock batches on the synchronized meter, cache patching/eviction, and
// the fault injector's deterministic per-extent op counting.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "storage/cached_device.h"
#include "storage/device.h"
#include "storage/fault_injecting_device.h"
#include "storage/file_device.h"
#include "storage/metered_device.h"
#include "storage/sharded_cached_device.h"
#include "storage/synchronized_device.h"
#include "testing/test_env.h"
#include "util/crash_point.h"

namespace wavekit {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string ReadString(Device& device, uint64_t offset, size_t length) {
  std::vector<std::byte> out(length);
  Status s = device.Read(offset, out);
  if (!s.ok()) s.Abort("read");
  return std::string(reinterpret_cast<const char*>(out.data()), length);
}

TEST(WriteBatchTest, MemoryDeviceScattersPackedData) {
  MemoryDevice device(1024);
  const std::vector<Extent> extents = {{100, 3}, {200, 4}, {50, 2}};
  ASSERT_OK(device.WriteBatch(extents, Bytes("abcdefghi")));
  EXPECT_EQ(ReadString(device, 100, 3), "abc");
  EXPECT_EQ(ReadString(device, 200, 4), "defg");
  EXPECT_EQ(ReadString(device, 50, 2), "hi");
}

TEST(WriteBatchTest, RejectsSizeMismatch) {
  MemoryDevice device(1024);
  const std::vector<Extent> extents = {{0, 4}, {8, 4}};
  EXPECT_TRUE(
      device.WriteBatch(extents, Bytes("too-short")).IsInvalidArgument());
}

TEST(WriteBatchTest, MemoryDeviceValidatesBeforeWriting) {
  // The second extent is out of range; nothing of the batch may land.
  MemoryDevice device(64);
  const std::vector<Extent> extents = {{0, 4}, {100, 4}};
  EXPECT_FALSE(device.WriteBatch(extents, Bytes("abcdefgh")).ok());
  EXPECT_EQ(ReadString(device, 0, 4), std::string(4, '\0'));
}

TEST(WriteBatchTest, EmptyBatchIsANoOp) {
  MemoryDevice device(64);
  ASSERT_OK(device.WriteBatch({}, {}));
}

class FileWriteBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "wavekit_write_batch_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".dat";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(FileWriteBatchTest, CoalescesAdjacentExtentsAndScattersTheRest) {
  ASSERT_OK_AND_ASSIGN(auto device, FileDevice::Open(path_, 1 << 16));
  // Two adjacent extents (one coalesced run) plus a disjoint one.
  const std::vector<Extent> extents = {{64, 4}, {68, 4}, {200, 3}};
  ASSERT_OK(device->WriteBatch(extents, Bytes("abcdefghijk")));
  EXPECT_EQ(ReadString(*device, 64, 8), "abcdefgh");
  EXPECT_EQ(ReadString(*device, 200, 3), "ijk");
}

TEST(WriteBatchTest, MeteredDeviceAccountsPerExtent) {
  MemoryDevice memory(1024);
  MeteredDevice device(&memory);
  device.set_phase(Phase::kTransition);
  // Three adjacent extents: one seek (to the first), then sequential.
  const std::vector<Extent> extents = {{100, 4}, {104, 4}, {108, 4}};
  ASSERT_OK(device.WriteBatch(extents, Bytes("abcdefghijkl")));
  const IoCounters io = device.counters(Phase::kTransition);
  EXPECT_EQ(io.write_ops, 3u);
  EXPECT_EQ(io.bytes_written, 12u);
  EXPECT_EQ(io.seeks, 1u);
  EXPECT_EQ(device.counters(Phase::kOther).write_ops, 0u);
}

/// Flips the meter's phase from INSIDE the inner write, modeling another
/// thread changing phase mid-batch. With per-call phase capture the whole
/// batch still lands in the phase active when the call started.
class PhaseFlippingDevice : public Device {
 public:
  explicit PhaseFlippingDevice(Device* inner) : inner_(inner) {}

  Status Read(uint64_t offset, std::span<std::byte> out) override {
    if (meter != nullptr) meter->set_phase(Phase::kOther);
    return inner_->Read(offset, out);
  }
  Status Write(uint64_t offset, std::span<const std::byte> data) override {
    if (meter != nullptr) meter->set_phase(Phase::kOther);
    return inner_->Write(offset, data);
  }
  uint64_t capacity() const override { return inner_->capacity(); }

  MeteredDevice* meter = nullptr;

 private:
  Device* inner_;
};

TEST(WriteBatchTest, BatchPhaseIsCapturedAtCallTime) {
  MemoryDevice memory(1024);
  PhaseFlippingDevice flipper(&memory);
  MeteredDevice device(&flipper);
  flipper.meter = &device;
  device.set_phase(Phase::kTransition);

  const std::vector<Extent> extents = {{0, 4}, {100, 4}};
  ASSERT_OK(device.WriteBatch(extents, Bytes("abcdefgh")));
  // The flip happened during the batch, but every extent is attributed to
  // the phase active at call time.
  EXPECT_EQ(device.counters(Phase::kTransition).write_ops, 2u);
  EXPECT_EQ(device.counters(Phase::kOther).write_ops, 0u);

  device.set_phase(Phase::kQuery);
  std::vector<std::byte> out(8);
  ASSERT_OK(device.ReadBatch(extents, out));
  EXPECT_EQ(device.counters(Phase::kQuery).read_ops, 2u);
  EXPECT_EQ(device.counters(Phase::kOther).read_ops, 0u);
}

TEST(WriteBatchTest, SynchronizedMeterIsExactUnderConcurrentBatches) {
  MemoryDevice memory(1 << 20);
  SynchronizedMeteredDevice device(&memory);
  device.set_phase(Phase::kTransition);
  constexpr int kThreads = 4;
  constexpr int kBatches = 50;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&device, t]() {
      // Disjoint 1 KiB region per thread; each batch writes two extents.
      const uint64_t base = static_cast<uint64_t>(t) * 1024;
      std::vector<std::byte> data(64, std::byte{static_cast<uint8_t>(t)});
      for (int i = 0; i < kBatches; ++i) {
        const std::vector<Extent> extents = {{base, 32}, {base + 512, 32}};
        Status s = device.WriteBatch(extents, data);
        if (!s.ok()) s.Abort("batch");
      }
    });
  }
  for (std::thread& w : writers) w.join();
  const IoCounters io = device.counters(Phase::kTransition);
  EXPECT_EQ(io.write_ops, static_cast<uint64_t>(kThreads) * kBatches * 2);
  EXPECT_EQ(io.bytes_written, static_cast<uint64_t>(kThreads) * kBatches * 64);
}

TEST(WriteBatchTest, CachedDevicePatchesCachedBlocksInPlace) {
  MemoryDevice memory(1 << 16);
  CachedDevice cache(&memory, /*capacity_blocks=*/8, /*block_size=*/64);
  ASSERT_OK(memory.Write(0, Bytes("old-data")));
  // Warm the block, then batch-write through the cache.
  EXPECT_EQ(ReadString(cache, 0, 8), "old-data");
  const std::vector<Extent> extents = {{0, 3}, {64, 3}};
  ASSERT_OK(cache.WriteBatch(extents, Bytes("newxyz")));
  cache.ResetStats();
  // The warmed block serves the new bytes from cache (a hit, not a reload).
  EXPECT_EQ(ReadString(cache, 0, 8), "new-data");
  EXPECT_EQ(cache.stats().hits, 1u);
  // And the device itself has the new bytes too.
  EXPECT_EQ(ReadString(memory, 64, 3), "xyz");
}

TEST(WriteBatchTest, CachedDeviceEvictsTouchedBlocksWhenBatchFails) {
  MemoryDevice memory(1 << 16);
  FaultInjectingDevice faulty(&memory);
  CachedDevice cache(&faulty, /*capacity_blocks=*/8, /*block_size=*/64);
  ASSERT_OK(memory.Write(0, Bytes("original")));
  EXPECT_EQ(ReadString(cache, 0, 8), "original");  // warm
  // Second extent hits a bad range: the batch fails partway; every touched
  // block must be dropped so the cache re-reads device truth.
  faulty.AddBadRange(Extent{128, 64});
  const std::vector<Extent> extents = {{0, 4}, {128, 4}};
  EXPECT_FALSE(cache.WriteBatch(extents, Bytes("abcdwxyz")).ok());
  faulty.ClearBadRanges();
  EXPECT_EQ(ReadString(cache, 0, 8), "abcdinal");  // device truth, reloaded
  EXPECT_EQ(cache.cached_blocks(), 1u);
}

TEST(WriteBatchTest, ShardedCachePatchesAndEvictsLikeTheLruCache) {
  MemoryDevice memory(1 << 16);
  FaultInjectingDevice faulty(&memory);
  ShardedCachedDevice cache(&faulty, /*capacity_blocks=*/32,
                            /*block_size=*/64, /*num_shards=*/4);
  ASSERT_OK(memory.Write(0, Bytes("original")));
  EXPECT_EQ(ReadString(cache, 0, 8), "original");  // warm
  const std::vector<Extent> first = {{0, 4}};
  ASSERT_OK(cache.WriteBatch(first, Bytes("abcd")));
  EXPECT_EQ(ReadString(cache, 0, 8), "abcdinal");

  faulty.AddBadRange(Extent{128, 64});
  const std::vector<Extent> second = {{0, 4}, {128, 4}};
  EXPECT_FALSE(cache.WriteBatch(second, Bytes("WXYZwxyz")).ok());
  faulty.ClearBadRanges();
  // The failed batch evicted the touched block; the read reloads from the
  // device, where the first extent's write DID land before the failure.
  EXPECT_EQ(ReadString(cache, 0, 8), "WXYZinal");
}

TEST(WriteBatchTest, FaultInjectorCountsEachExtentAsOneWrite) {
  // Replay determinism: a batch of N extents advances the fault stream
  // exactly like N separate writes, so seeded fault schedules are identical
  // whether the caller batched or not.
  MemoryDevice memory(1 << 12);
  FaultInjectingDevice faulty(&memory);
  const std::vector<Extent> extents = {{0, 4}, {64, 4}, {128, 4}};
  ASSERT_OK(faulty.WriteBatch(extents, Bytes("abcdefghijkl")));
  EXPECT_EQ(faulty.stats().writes, 3u);
}

TEST(WriteBatchTest, FaultInjectorCrashFiresBetweenExtents) {
  MemoryDevice memory(1 << 12);
  FaultInjectingDevice::Options options;
  options.torn_writes = false;
  FaultInjectingDevice faulty(&memory, options);
  faulty.ArmCrashAfterWrites(2);
  const std::vector<Extent> extents = {{0, 4}, {64, 4}, {128, 4}};
  const Status crashed = faulty.WriteBatch(extents, Bytes("abcdefghijkl"));
  ASSERT_FALSE(crashed.ok());
  EXPECT_TRUE(IsInjectedCrash(crashed));
  // The first extent committed before the crash; the third never started.
  EXPECT_EQ(ReadString(memory, 0, 4), "abcd");
  EXPECT_EQ(ReadString(memory, 128, 4), std::string(4, '\0'));
}

}  // namespace
}  // namespace wavekit
