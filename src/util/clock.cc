#include "util/clock.h"

#include <chrono>
#include <thread>

namespace wavekit {

RealClock* RealClock::Instance() {
  static RealClock* const clock = new RealClock;
  return clock;
}

uint64_t RealClock::NowMicros() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

void RealClock::SleepUs(uint64_t us) {
  if (us == 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace wavekit
