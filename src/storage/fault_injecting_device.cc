#include "storage/fault_injecting_device.h"

#include <string>

#include "util/crash_point.h"
#include "util/macros.h"

namespace wavekit {

FaultInjectingDevice::FaultInjectingDevice(Device* inner, Options options)
    : inner_(inner), options_(options), rng_(options.seed) {}

bool FaultInjectingDevice::InBadRange(uint64_t offset, size_t length) const {
  const uint64_t end = offset + length;
  for (const Extent& bad : bad_ranges_) {
    if (offset < bad.end() && bad.offset < end) return true;
  }
  return false;
}

Status FaultInjectingDevice::Read(uint64_t offset, std::span<std::byte> out) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.reads;
  if (crashed_) return InjectedCrash("read of crashed device");
  if (InBadRange(offset, out.size())) {
    return Status::IOError("bad device range: read at offset " +
                           std::to_string(offset));
  }
  if (options_.read_error_rate > 0 && rng_.Bernoulli(options_.read_error_rate)) {
    ++stats_.injected_read_errors;
    return Status::IOError("injected transient read error at offset " +
                           std::to_string(offset));
  }
  return inner_->Read(offset, out);
}

Status FaultInjectingDevice::Write(uint64_t offset,
                                   std::span<const std::byte> data) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.writes;
  if (crashed_) return InjectedCrash("write to crashed device");
  if (crash_countdown_ > 0 && --crash_countdown_ == 0) {
    crashed_ = true;
    ++stats_.crashes;
    if (options_.torn_writes && !data.empty()) {
      // The dying write persists a random prefix — the torn tail is what
      // recovery must tolerate.
      const size_t persisted =
          static_cast<size_t>(rng_.Uniform(data.size() + 1));
      if (persisted > 0) {
        (void)inner_->Write(offset, data.first(persisted));
      }
      if (persisted < data.size()) ++stats_.torn_writes;
    }
    return InjectedCrash("write (crash-after-writes countdown hit zero)");
  }
  if (InBadRange(offset, data.size())) {
    return Status::IOError("bad device range: write at offset " +
                           std::to_string(offset));
  }
  if (options_.write_error_rate > 0 &&
      rng_.Bernoulli(options_.write_error_rate)) {
    ++stats_.injected_write_errors;
    if (options_.torn_writes && !data.empty()) {
      const size_t persisted =
          static_cast<size_t>(rng_.Uniform(data.size() + 1));
      if (persisted > 0) {
        WAVEKIT_RETURN_NOT_OK(inner_->Write(offset, data.first(persisted)));
      }
      if (persisted < data.size()) ++stats_.torn_writes;
    }
    return Status::IOError("injected transient write error at offset " +
                           std::to_string(offset));
  }
  return inner_->Write(offset, data);
}

Status FaultInjectingDevice::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) return InjectedCrash("sync of crashed device");
  return inner_->Sync();
}

void FaultInjectingDevice::set_read_error_rate(double rate) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_.read_error_rate = rate;
}

void FaultInjectingDevice::set_write_error_rate(double rate) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_.write_error_rate = rate;
}

void FaultInjectingDevice::AddBadRange(const Extent& extent) {
  std::lock_guard<std::mutex> lock(mutex_);
  bad_ranges_.push_back(extent);
}

void FaultInjectingDevice::ClearBadRanges() {
  std::lock_guard<std::mutex> lock(mutex_);
  bad_ranges_.clear();
}

void FaultInjectingDevice::ArmCrashAfterWrites(uint64_t countdown) {
  std::lock_guard<std::mutex> lock(mutex_);
  crash_countdown_ = countdown;
}

void FaultInjectingDevice::DisarmCrash() {
  std::lock_guard<std::mutex> lock(mutex_);
  crash_countdown_ = 0;
}

void FaultInjectingDevice::ClearCrash() {
  std::lock_guard<std::mutex> lock(mutex_);
  crashed_ = false;
  crash_countdown_ = 0;
}

bool FaultInjectingDevice::crashed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_;
}

FaultInjectingDevice::Stats FaultInjectingDevice::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace wavekit
