// FaultInjectingDevice: a deterministic chaos decorator for Device.
//
// Wraps any Device and injects, under seeded pseudo-random control:
//   - transient read/write errors (IOError; a retry may succeed),
//   - permanent bad ranges (every access failing, like a dead sector),
//   - torn writes (a crash mid-write persists a random prefix),
//   - crash-after-N-writes (the N-th write from arming "crashes the
//     process": the triggering write is torn, and every subsequent I/O
//     fails until ClearCrash() simulates a restart),
//   - SILENT corruption — the dangerous class that returns OK with wrong
//     bytes: seeded bit flips on the read path (transient) or the write
//     path (persisted), lost writes (the write is acknowledged but never
//     lands, so later reads are stale), and misdirected reads (the bytes
//     come from the wrong device offset),
//   - targeted bit rot via CorruptRange() (deterministic in-place flips,
//     the sim harness's bit-rot scenarios), and
//   - a write budget modeling a full disk: once spent, every write fails
//     with ResourceExhausted, like ENOSPC from a real filesystem.
//
// Everything is driven by util/random.h's Rng, so a (seed, operation
// sequence) pair replays exactly — torture tests iterate seeds and get
// reproducible failures. Named crash points (util/crash_point.h) complement
// this for protocol-level crash placement.

#ifndef WAVEKIT_STORAGE_FAULT_INJECTING_DEVICE_H_
#define WAVEKIT_STORAGE_FAULT_INJECTING_DEVICE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "storage/device.h"
#include "util/random.h"

namespace wavekit {

/// \brief Device decorator injecting deterministic, seeded faults.
///
/// Thread-safe: all state is guarded by one mutex (fault injection is a test
/// harness; serialization keeps replay deterministic even under races).
class FaultInjectingDevice : public Device {
 public:
  struct Options {
    /// Seed for the fault stream (same seed + same op sequence = same
    /// faults).
    uint64_t seed = 1;
    /// Probability that any given Read fails with a transient IOError.
    double read_error_rate = 0.0;
    /// Probability that any given Write fails with a transient IOError.
    double write_error_rate = 0.0;
    /// When true, a failed or crashing write first persists a random prefix
    /// of the data (torn write), modeling a sector-granularity disk.
    bool torn_writes = true;
    /// Probability that a Read succeeds but one bit of the returned buffer
    /// is flipped (the device's copy stays intact — a transient flip in the
    /// transfer path; only a checksum can catch it).
    double bit_flip_read_rate = 0.0;
    /// Probability that a Write succeeds but persists with one bit flipped
    /// (silent media corruption at write time).
    double bit_flip_write_rate = 0.0;
    /// Probability that a Write is acknowledged but never persisted, so
    /// later reads of the range return stale bytes.
    double lost_write_rate = 0.0;
    /// Probability that a Read returns the right number of bytes from the
    /// WRONG (seeded-random) device offset — firmware misdirection.
    double misdirected_read_rate = 0.0;
  };

  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t injected_read_errors = 0;
    uint64_t injected_write_errors = 0;
    uint64_t torn_writes = 0;
    uint64_t crashes = 0;
    uint64_t bit_flip_reads = 0;
    uint64_t bit_flip_writes = 0;
    uint64_t lost_writes = 0;
    uint64_t misdirected_reads = 0;
    uint64_t budget_rejected_writes = 0;  ///< Writes failed for "disk full".
  };

  /// `inner` must outlive this device.
  FaultInjectingDevice(Device* inner, Options options);
  explicit FaultInjectingDevice(Device* inner)
      : FaultInjectingDevice(inner, {}) {}

  Status Read(uint64_t offset, std::span<std::byte> out) override;
  Status Write(uint64_t offset, std::span<const std::byte> data) override;
  // ReadBatch/WriteBatch deliberately keep Device's default per-extent loop:
  // each extent of a batch counts as one op against error rates and the
  // crash-after-N-writes countdown, so a (seed, logical op sequence) pair
  // replays identically whether the caller batched or not, and a crash fires
  // between extents with the torn prefix confined to the dying extent.
  uint64_t capacity() const override { return inner_->capacity(); }
  // Fails when crashed (a dead process cannot flush), otherwise forwards; no
  // error-rate roll so fault-seed replay is unaffected by Sync placement.
  Status Sync() override;

  /// Adjusts transient error rates on the fly (e.g. fail only during a
  /// specific transition).
  void set_read_error_rate(double rate);
  void set_write_error_rate(double rate);
  void set_bit_flip_read_rate(double rate);
  void set_bit_flip_write_rate(double rate);
  void set_lost_write_rate(double rate);
  void set_misdirected_read_rate(double rate);

  /// Deterministic targeted bit rot: flips `bits` distinct-ish bit positions
  /// (derived from the device seed and `salt`, not from the main fault
  /// stream — arming this never shifts other injected faults) within
  /// `extent` directly on the inner device. The next read of the range
  /// returns the corrupt bytes with OK status.
  Status CorruptRange(const Extent& extent, uint64_t salt, int bits = 1);

  /// Caps the number of further successful writes at `writes`; once spent,
  /// every write fails with ResourceExhausted("injected disk full...") and
  /// persists nothing — the ENOSPC model for disk-full tests. No RNG is
  /// consumed, so arming a budget never shifts the fault stream.
  void SetWriteBudget(uint64_t writes);
  void ClearWriteBudget();

  /// Marks `extent` permanently bad: every Read or Write touching it fails
  /// (non-transient — retrying never helps).
  void AddBadRange(const Extent& extent);
  void ClearBadRanges();

  /// Arms a crash on the `countdown`-th Write from now (countdown >= 1). The
  /// triggering write persists a torn prefix (if Options::torn_writes), then
  /// the device enters the crashed state: all subsequent I/O fails with an
  /// injected-crash IOError until ClearCrash().
  void ArmCrashAfterWrites(uint64_t countdown);
  void DisarmCrash();

  /// Simulates a restart: leaves whatever bytes were persisted, clears the
  /// crashed state.
  void ClearCrash();
  bool crashed() const;

  Stats stats() const;

 private:
  bool InBadRange(uint64_t offset, size_t length) const;  // mutex_ held

  Device* inner_;
  mutable std::mutex mutex_;
  Options options_;
  Rng rng_;
  std::vector<Extent> bad_ranges_;
  uint64_t crash_countdown_ = 0;  // 0 = disarmed
  bool crashed_ = false;
  int64_t write_budget_ = -1;  // -1 = unlimited
  Stats stats_;
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_FAULT_INJECTING_DEVICE_H_
