// Figure 4: SCAM transition time (how fast a new day becomes queryable) as
// n varies, W = 7, simple shadow updating, priced with Table 12 parameters.

#include "bench/common.h"

namespace wavekit {
namespace bench {
namespace {

int Run() {
  Banner("Figure 4: SCAM transition time vs n (W=7, simple shadowing)",
         "DEL/WATA/RATA/REINDEX++ are flat (one AddToIndex regardless of n); "
         "REINDEX starts terrible at small n (re-builds W/n days) but drops "
         "below the Add-based schemes around n >= 4; REINDEX+ is the worst.");

  const model::CaseParams params = model::CaseParams::Scam();
  const int window = 7;

  std::vector<std::string> headers = {"n"};
  for (SchemeKind kind : PaperSchemes()) headers.push_back(SchemeKindName(kind));
  sim::TablePrinter table(headers);
  table.SetTitle("Transition seconds (modeled, SCAM Table 12 parameters)");

  std::map<SchemeKind, std::map<int, double>> series;
  for (int n = 1; n <= window; ++n) {
    std::vector<std::string> row = {std::to_string(n)};
    for (SchemeKind kind : PaperSchemes()) {
      if (!SchemeValid(kind, n)) {
        row.push_back("-");
        continue;
      }
      auto cost = model::MeasureMaintenance(
          kind, UpdateTechniqueKind::kSimpleShadow, params, window, n);
      if (!cost.ok()) cost.status().Abort("MeasureMaintenance");
      series[kind][n] = cost.ValueOrDie().transition_seconds;
      row.push_back(Fmt(series[kind][n], 0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  ShapeChecks checks;
  // Flat-in-n schemes: transition varies < 15% across n.
  for (SchemeKind kind : {SchemeKind::kDel, SchemeKind::kReindexPlusPlus}) {
    double lo = 1e18, hi = 0;
    for (const auto& [n, v] : series[kind]) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    checks.Check(hi <= 1.15 * lo, std::string(SchemeKindName(kind)) +
                                      " transition time does not depend on n");
  }
  checks.Check(series[SchemeKind::kReindex][1] >
                   3 * series[SchemeKind::kDel][1],
               "REINDEX is far worse than DEL at n = 1 (rebuilds W days)");
  checks.Check(series[SchemeKind::kReindex][window] <
                   series[SchemeKind::kDel][window],
               "REINDEX beats the Add-based schemes at large n (Build < Add)");
  // Crossover location: REINDEX dips below DEL somewhere in 2..W.
  int crossover = 0;
  for (int n = 2; n <= window; ++n) {
    if (series[SchemeKind::kReindex][n] < series[SchemeKind::kDel][n]) {
      crossover = n;
      break;
    }
  }
  checks.Check(crossover >= 3 && crossover <= 5,
               "the REINDEX/DEL crossover falls near n = 4 (paper: n >= 4), "
               "observed n = " + std::to_string(crossover));
  // REINDEX+ worst where clusters are big enough for Temp to matter (at
  // large n its X/2-day tail shrinks below one Add).
  bool plus_worst = true;
  for (int n = 1; n <= 4; ++n) {
    for (SchemeKind kind : PaperSchemes()) {
      if (kind == SchemeKind::kReindexPlus || !SchemeValid(kind, n)) continue;
      plus_worst &= series[SchemeKind::kReindexPlus][n] >= series[kind][n] * 0.99;
    }
  }
  checks.Check(plus_worst,
               "REINDEX+ has the worst transition time (n <= 4: it adds "
               "~1 + X/2 days on the critical path)");
  return checks.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace wavekit

int main() { return wavekit::bench::Run(); }
