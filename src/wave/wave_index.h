// WaveIndex: a collection of constituent indexes jointly covering a window
// of days (paper Section 2), with the TimedIndexProbe / TimedSegmentScan
// access operations of Section 2.2.

#ifndef WAVEKIT_WAVE_WAVE_INDEX_H_
#define WAVEKIT_WAVE_WAVE_INDEX_H_

#include <memory>
#include <vector>

#include "index/constituent_index.h"
#include "util/thread_pool.h"

namespace wavekit {

/// \brief Per-query statistics (how much pruning the time-sets enabled, and
/// how degraded the answer is).
struct QueryStats {
  /// Constituents whose time-set intersected the query range (and were read).
  int indexes_accessed = 0;
  /// Constituents skipped because their time-set missed the range entirely.
  int indexes_skipped = 0;
  /// Constituents excluded because maintenance marked them unhealthy
  /// (degraded-mode serving; the query returned Status::PartialResult).
  int indexes_unhealthy = 0;
  /// Healthy constituents whose reads failed even through the scan fallback;
  /// their entries are missing from the answer (also PartialResult).
  int indexes_failed = 0;
  /// Probes answered via the TimedSegmentScan fallback after the directory
  /// probe hit an I/O error.
  int probe_fallbacks = 0;
  /// Entries delivered to the caller.
  uint64_t entries_returned = 0;
};

/// \brief The wave index Theta: an ordered set of constituent indexes.
///
/// Constituents are held by shared_ptr so shadow updates can swap a new
/// version in while older versions drain; maintenance schemes own the same
/// pointers in their slot arrays.
class WaveIndex {
 public:
  WaveIndex() = default;

  /// AddIndex (Section 2.2): registers `index` as a constituent.
  void AddIndex(std::shared_ptr<ConstituentIndex> index);

  /// Removes `index` from the constituent set WITHOUT reclaiming its space
  /// (used when renaming/promoting). Fails with NotFound if absent.
  Status RemoveIndex(const ConstituentIndex* index);

  /// DropIndex (Section 2.2): removes `index` and reclaims all its space.
  Status DropIndex(const ConstituentIndex* index);

  /// Atomically replaces `old_index` with `with` in the same position
  /// (shadow swap). The old version is destroyed when its last reference
  /// drops.
  Status ReplaceIndex(const ConstituentIndex* old_index,
                      std::shared_ptr<ConstituentIndex> with);

  bool Contains(const ConstituentIndex* index) const;

  const std::vector<std::shared_ptr<ConstituentIndex>>& constituents() const {
    return constituents_;
  }
  size_t num_constituents() const { return constituents_.size(); }

  // --- Access operations ----------------------------------------------------
  //
  // Degraded-mode serving contract: constituents marked unhealthy by
  // maintenance (ConstituentIndex::healthy() == false) are excluded from
  // every access operation. A healthy constituent whose directory probe
  // fails with an I/O error is retried as a value-filtered TimedSegmentScan
  // of that constituent (a sequential sweep can succeed where the
  // bucket-directed read failed); if that also fails, its entries are
  // dropped. Whenever anything was excluded or dropped, the operation
  // returns Status::PartialResult — the entries delivered are correct but
  // possibly incomplete — instead of failing. Non-I/O errors still propagate
  // as before, and a fully healthy wave behaves exactly as it always has.

  /// TimedIndexProbe(Theta, T1, T2, s): entries for `value` inserted within
  /// `range`, gathered from every constituent whose cluster intersects it.
  Status TimedIndexProbe(const DayRange& range, const Value& value,
                         std::vector<Entry>* out,
                         QueryStats* stats = nullptr) const;

  /// IndexProbe: TimedIndexProbe over (-inf, +inf).
  Status IndexProbe(const Value& value, std::vector<Entry>* out,
                    QueryStats* stats = nullptr) const;

  /// TimedSegmentScan(Theta, T1, T2): visits every entry inserted within
  /// `range`, scanning every constituent whose cluster intersects it.
  Status TimedSegmentScan(const DayRange& range, const EntryCallback& callback,
                          QueryStats* stats = nullptr) const;

  /// SegmentScan: TimedSegmentScan over (-inf, +inf).
  Status SegmentScan(const EntryCallback& callback,
                     QueryStats* stats = nullptr) const;

  /// TimedIndexProbe with the per-constituent probes fanned out over `pool`
  /// (paper: "the queries across indexes can be easily parallelized").
  /// Results are merged in constituent order, so the output matches the
  /// serial TimedIndexProbe exactly.
  ///
  /// Requires devices that tolerate concurrent reads: a
  /// SynchronizedMeteredDevice, or one device per constituent (DiskArray).
  Status ParallelTimedIndexProbe(ThreadPool* pool, const DayRange& range,
                                 const Value& value, std::vector<Entry>* out,
                                 QueryStats* stats = nullptr) const;

  /// TimedSegmentScan fanned out over `pool`; entries are delivered to
  /// `callback` grouped by constituent (in constituent order), after all
  /// scans complete. Same device requirements as ParallelTimedIndexProbe.
  Status ParallelTimedSegmentScan(ThreadPool* pool, const DayRange& range,
                                  const EntryCallback& callback,
                                  QueryStats* stats = nullptr) const;

  // --- Accounting -----------------------------------------------------------

  /// Wave-index length: total days over all constituents (Appendix B).
  int TotalDays() const;

  /// Union of all constituent time-sets.
  TimeSet CoveredDays() const;

  /// Total device bytes reserved by constituents.
  uint64_t AllocatedBytes() const;

  /// Total live entries over constituents.
  uint64_t EntryCount() const;

 private:
  std::vector<std::shared_ptr<ConstituentIndex>> constituents_;
};

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_WAVE_INDEX_H_
