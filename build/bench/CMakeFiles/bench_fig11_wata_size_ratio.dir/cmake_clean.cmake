file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_wata_size_ratio.dir/bench_fig11_wata_size_ratio.cc.o"
  "CMakeFiles/bench_fig11_wata_size_ratio.dir/bench_fig11_wata_size_ratio.cc.o.d"
  "bench_fig11_wata_size_ratio"
  "bench_fig11_wata_size_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_wata_size_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
