#include "obs/event_journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/clock.h"

namespace wavekit {
namespace obs {
namespace {

TEST(EventJournalTest, AppendAssignsSequenceAndInjectedTimestamp) {
  SimClock clock(100);
  EventJournal::Options options;
  options.clock = &clock;
  EventJournal journal(options);

  journal.Append(EventType::kServiceStart, 7, "WATA*");
  clock.Advance(50);
  journal.Append(EventType::kAdvanceStart, 8, "");

  const std::vector<Event> events = journal.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].sequence, 1u);
  EXPECT_EQ(events[0].timestamp_us, 100u);
  EXPECT_EQ(events[0].type, EventType::kServiceStart);
  EXPECT_EQ(events[0].day, 7);
  EXPECT_EQ(events[0].message, "WATA*");
  EXPECT_EQ(events[1].sequence, 2u);
  EXPECT_EQ(events[1].timestamp_us, 150u);
  EXPECT_EQ(journal.total_appended(), 2u);
}

TEST(EventJournalTest, RingEvictsOldestButKeepsTotal) {
  EventJournal::Options options;
  options.ring_capacity = 3;
  EventJournal journal(options);

  for (int i = 1; i <= 5; ++i) {
    journal.Append(EventType::kAdvanceCommit, i, "");
  }
  EXPECT_EQ(journal.total_appended(), 5u);
  const std::vector<Event> events = journal.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].day, 3);  // oldest surviving
  EXPECT_EQ(events[2].day, 5);
  EXPECT_EQ(events[0].sequence, 3u);
}

TEST(EventJournalTest, EventTypeNamesAreSnakeCase) {
  EXPECT_STREQ(EventTypeName(EventType::kAdvanceStart), "advance_start");
  EXPECT_STREQ(EventTypeName(EventType::kAdvanceCommit), "advance_commit");
  EXPECT_STREQ(EventTypeName(EventType::kAdvanceRollback), "advance_rollback");
  EXPECT_STREQ(EventTypeName(EventType::kRetry), "retry");
  EXPECT_STREQ(EventTypeName(EventType::kDegradedEnter), "degraded_enter");
  EXPECT_STREQ(EventTypeName(EventType::kDegradedExit), "degraded_exit");
  EXPECT_STREQ(EventTypeName(EventType::kRecoveryRollForward),
               "recovery_roll_forward");
  EXPECT_STREQ(EventTypeName(EventType::kRecoveryRollBack),
               "recovery_roll_back");
  EXPECT_STREQ(EventTypeName(EventType::kServiceStart), "service_start");
}

TEST(EventJournalTest, ToJsonEscapesMessageAndRendersFields) {
  Event event;
  event.sequence = 3;
  event.timestamp_us = 42;
  event.type = EventType::kRetry;
  event.day = 9;
  event.message = "disk said \"no\"\nagain";
  event.fields = {{"op", "AddToIndex"}, {"attempt", "2"}};

  const std::string json = event.ToJson();
  EXPECT_NE(json.find("\"seq\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"type\": \"retry\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"no\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos) << json;  // one line
  EXPECT_NE(json.find("\"op\": \"AddToIndex\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"attempt\": \"2\""), std::string::npos) << json;
}

TEST(EventJournalTest, JsonlSinkAppendsOneLinePerEvent) {
  const std::string path =
      ::testing::TempDir() + "/event_journal_test_sink.jsonl";
  std::remove(path.c_str());
  {
    EventJournal::Options options;
    options.jsonl_path = path;
    EventJournal journal(options);
    ASSERT_TRUE(journal.sink_ok());
    journal.Append(EventType::kAdvanceStart, 8, "");
    journal.Append(EventType::kAdvanceCommit, 8, "");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"advance_start\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"advance_commit\""), std::string::npos) << lines[1];
  std::remove(path.c_str());
}

TEST(EventJournalTest, SinkOpenFailureKeepsRingWorking) {
  EventJournal::Options options;
  options.jsonl_path = "/nonexistent-dir-for-sure/events.jsonl";
  EventJournal journal(options);
  journal.Append(EventType::kDegradedEnter, 4, "advance failed");
  EXPECT_FALSE(journal.sink_ok());
  ASSERT_EQ(journal.Events().size(), 1u);
  EXPECT_EQ(journal.Events()[0].type, EventType::kDegradedEnter);
}

TEST(EventJournalTest, RenderJsonContainsTotalAndEvents) {
  EventJournal journal(EventJournal::Options{});
  journal.Append(EventType::kServiceStart, 7, "REINDEX");
  const std::string json = journal.RenderJson();
  EXPECT_NE(json.find("\"total_appended\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"service_start\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"events\""), std::string::npos) << json;
}

}  // namespace
}  // namespace obs
}  // namespace wavekit
