// The advisor must reproduce the paper's Section 6 recommendations from the
// same inputs the paper used.

#include "wave/advisor.h"

#include <gtest/gtest.h>

#include "testing/test_env.h"

namespace wavekit {
namespace {

TEST(AdvisorTest, WseRecommendationIsDelN1Packed) {
  // Section 6: "we recommend using DEL (n = 1) with packed shadow updating
  // for a WSE. This is because for n = 1, the response time for user queries
  // is low. Also, DEL performs minimal total work."
  AdvisorConstraints constraints;
  ASSERT_OK_AND_ASSIGN(
      Recommendation best,
      AdviseWaveIndex(model::CaseParams::Wse(), 35, constraints));
  EXPECT_EQ(best.scheme, SchemeKind::kDel);
  EXPECT_EQ(best.num_indexes, 1);
  EXPECT_EQ(best.technique, UpdateTechniqueKind::kPackedShadow);
}

TEST(AdvisorTest, TpcdWithPackedShadowingPrefersDel) {
  // Section 6: "If packed shadowing can be implemented, use DEL".
  AdvisorConstraints constraints;
  ASSERT_OK_AND_ASSIGN(
      Recommendation best,
      AdviseWaveIndex(model::CaseParams::Tpcd(), 100, constraints));
  EXPECT_EQ(best.scheme, SchemeKind::kDel);
  EXPECT_EQ(best.technique, UpdateTechniqueKind::kPackedShadow);
}

TEST(AdvisorTest, TpcdWithoutPackedShadowingPrefersWataAtLargeN) {
  // Section 6: "If packed shadowing cannot be implemented (since some legacy
  // system needs to be used), implement WATA (n = 10)."
  AdvisorConstraints constraints;
  constraints.can_implement_packed_shadow = false;
  ASSERT_OK_AND_ASSIGN(
      Recommendation best,
      AdviseWaveIndex(model::CaseParams::Tpcd(), 100, constraints));
  EXPECT_EQ(best.scheme, SchemeKind::kWata);
  EXPECT_GE(best.num_indexes, 8);
  EXPECT_EQ(best.technique, UpdateTechniqueKind::kSimpleShadow);
}

TEST(AdvisorTest, TpcdHardWindowsWithoutPackedShadowingPrefersRata) {
  // Section 6: "If hard windows are required, we recommend RATA (n = 10)
  // since it performs the same work as DEL, and is not as complex ... ".
  AdvisorConstraints constraints;
  constraints.can_implement_packed_shadow = false;
  constraints.require_hard_window = true;
  constraints.can_implement_delete = false;  // the legacy-package scenario
  ASSERT_OK_AND_ASSIGN(
      Recommendation best,
      AdviseWaveIndex(model::CaseParams::Tpcd(), 100, constraints));
  EXPECT_EQ(best.scheme, SchemeKind::kRata);
  EXPECT_GE(best.num_indexes, 6);
}

TEST(AdvisorTest, ScamHardWindowSimpleShadowPrefersReindexMidN) {
  // Section 6 picks REINDEX with n = 4 for SCAM (hard weekly window; the
  // study reports simple shadowing), on work + space + response grounds.
  AdvisorConstraints constraints;
  constraints.require_hard_window = true;
  constraints.can_implement_packed_shadow = false;
  constraints.max_indexes = 7;
  constraints.space_weight = 50.0;  // Figure 3's space argument
  ASSERT_OK_AND_ASSIGN(
      Recommendation best,
      AdviseWaveIndex(model::CaseParams::Scam(), 7, constraints));
  EXPECT_EQ(best.scheme, SchemeKind::kReindex);
  EXPECT_GE(best.num_indexes, 3);
  EXPECT_LE(best.num_indexes, 5);
}

TEST(AdvisorTest, LegacyPackageWithoutDeletesNeverPicksDel) {
  AdvisorConstraints constraints;
  constraints.can_implement_delete = false;
  ASSERT_OK_AND_ASSIGN(
      auto ranked, RankWaveIndexOptions(model::CaseParams::Wse(), 35,
                                        constraints));
  ASSERT_FALSE(ranked.empty());
  for (const Recommendation& r : ranked) {
    EXPECT_NE(r.scheme, SchemeKind::kDel);
    EXPECT_EQ(r.technique, UpdateTechniqueKind::kSimpleShadow);
  }
}

TEST(AdvisorTest, HardWindowConstraintExcludesSoftSchemes) {
  AdvisorConstraints constraints;
  constraints.require_hard_window = true;
  ASSERT_OK_AND_ASSIGN(
      auto ranked, RankWaveIndexOptions(model::CaseParams::Scam(), 7,
                                        constraints));
  for (const Recommendation& r : ranked) {
    EXPECT_NE(r.scheme, SchemeKind::kWata);
    EXPECT_NE(r.scheme, SchemeKind::kKnownBoundWata);
  }
}

TEST(AdvisorTest, ProbeLatencyCapLimitsN) {
  // 100k probes/day make latency scale with n; cap it near the n=2 level.
  const model::CaseParams params = model::CaseParams::Scam();
  const model::QueryShape shape =
      model::ShapeOf(SchemeKind::kDel, UpdateTechniqueKind::kSimpleShadow, 7,
                     2);
  AdvisorConstraints constraints;
  constraints.max_probe_seconds =
      model::TimedIndexProbeSeconds(params, shape, 2) * 1.01;
  ASSERT_OK_AND_ASSIGN(auto ranked,
                       RankWaveIndexOptions(params, 7, constraints));
  ASSERT_FALSE(ranked.empty());
  for (const Recommendation& r : ranked) EXPECT_LE(r.num_indexes, 2);
}

TEST(AdvisorTest, SpaceBudgetFilters) {
  AdvisorConstraints constraints;
  constraints.max_space_bytes = 8 * 56e6;  // 8 packed SCAM days: very tight
  auto ranked =
      RankWaveIndexOptions(model::CaseParams::Scam(), 7, constraints);
  ASSERT_TRUE(ranked.ok());
  for (const Recommendation& r : ranked.ValueOrDie()) {
    EXPECT_LE(r.space.avg_total(), 8 * 56e6);
  }
}

TEST(AdvisorTest, ImpossibleConstraintsError) {
  AdvisorConstraints constraints;
  constraints.max_space_bytes = 1;  // nothing fits
  auto best = AdviseWaveIndex(model::CaseParams::Scam(), 7, constraints);
  EXPECT_FALSE(best.ok());
  EXPECT_TRUE(best.status().IsInvalidArgument());
}

TEST(AdvisorTest, RankingIsSortedAndJustified) {
  ASSERT_OK_AND_ASSIGN(
      auto ranked,
      RankWaveIndexOptions(model::CaseParams::Wse(), 35, AdvisorConstraints{}));
  ASSERT_GT(ranked.size(), 10u);
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].objective, ranked[i].objective);
  }
  for (const Recommendation& r : ranked) {
    EXPECT_FALSE(r.rationale.empty());
    EXPECT_NE(r.rationale.find(SchemeKindName(r.scheme)), std::string::npos);
  }
}

}  // namespace
}  // namespace wavekit
