#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace wavekit {
namespace obs {
namespace {

/// Quantiles every renderer reports for a histogram.
constexpr double kQuantiles[] = {0.5, 0.9, 0.99};

/// Formats a metric value: integral values render without a decimal point so
/// counters stay exact (and goldens stay stable); others get default
/// precision.
std::string FormatValue(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.2e18) {
    return std::to_string(static_cast<int64_t>(value));
  }
  std::ostringstream out;
  out << value;
  return out.str();
}

/// Escapes a Prometheus label value (backslash, quote, newline).
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Escapes a JSON string (quotes, backslashes, control characters).
std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Renders `{key="value",...}` (with an optional extra label appended), or
/// nothing when there are no labels.
std::string PrometheusLabels(const Labels& labels,
                             const std::string& extra_key = "",
                             const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + EscapeLabelValue(extra_value) + "\"";
  }
  out += "}";
  return out;
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + EscapeJson(key) + "\": \"" + EscapeJson(value) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

std::string RegistrySnapshot::RenderPrometheus() const {
  std::string out;
  std::string previous_name;
  for (const MetricSnapshot& metric : metrics) {
    if (metric.name != previous_name) {
      if (!metric.help.empty()) {
        out += "# HELP " + metric.name + " " + metric.help + "\n";
      }
      // Log-bucketed histograms expose quantiles, so they are Prometheus
      // summaries on the wire.
      out += "# TYPE " + metric.name + " " +
             (metric.type == MetricType::kHistogram
                  ? "summary"
                  : MetricTypeName(metric.type)) +
             "\n";
      previous_name = metric.name;
    }
    if (metric.type != MetricType::kHistogram) {
      out += metric.name + PrometheusLabels(metric.labels) + " " +
             FormatValue(metric.value) + "\n";
      continue;
    }
    const Histogram& h = metric.histogram;
    for (double q : kQuantiles) {
      out += metric.name +
             PrometheusLabels(metric.labels, "quantile", FormatValue(q)) +
             " " + std::to_string(h.Percentile(q)) + "\n";
    }
    out += metric.name + "_sum" + PrometheusLabels(metric.labels) + " " +
           std::to_string(h.sum()) + "\n";
    out += metric.name + "_count" + PrometheusLabels(metric.labels) + " " +
           std::to_string(h.count()) + "\n";
  }
  return out;
}

std::string RegistrySnapshot::RenderJson() const {
  std::string out = "{\n  \"metrics\": [\n";
  for (size_t i = 0; i < metrics.size(); ++i) {
    const MetricSnapshot& metric = metrics[i];
    out += "    {\"name\": \"" + EscapeJson(metric.name) + "\", \"type\": \"" +
           MetricTypeName(metric.type) + "\", \"labels\": " +
           JsonLabels(metric.labels);
    if (metric.type == MetricType::kHistogram) {
      const Histogram& h = metric.histogram;
      out += ", \"count\": " + std::to_string(h.count()) +
             ", \"sum\": " + std::to_string(h.sum()) +
             ", \"min\": " + std::to_string(h.min()) +
             ", \"max\": " + std::to_string(h.max()) +
             ", \"mean\": " + FormatValue(h.mean());
      for (double q : kQuantiles) {
        out += ", \"p" + FormatValue(q * 100) +
               "\": " + std::to_string(h.Percentile(q));
      }
    } else {
      out += ", \"value\": " + FormatValue(metric.value);
    }
    out += "}";
    if (i + 1 < metrics.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}";
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::NewEntry(std::string name,
                                                 std::string help,
                                                 MetricType type,
                                                 Labels labels,
                                                 const void* owner) {
  auto entry = std::make_unique<Entry>();
  entry->name = std::move(name);
  entry->help = std::move(help);
  entry->type = type;
  entry->labels = std::move(labels);
  entry->owner = owner;
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter* MetricsRegistry::AddCounter(std::string name, std::string help,
                                     Labels labels, const void* owner) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = NewEntry(std::move(name), std::move(help),
                          MetricType::kCounter, std::move(labels), owner);
  entry.counter = std::unique_ptr<Counter>(new Counter());
  return entry.counter.get();
}

Gauge* MetricsRegistry::AddGauge(std::string name, std::string help,
                                 Labels labels, const void* owner) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = NewEntry(std::move(name), std::move(help), MetricType::kGauge,
                          std::move(labels), owner);
  entry.gauge = std::unique_ptr<Gauge>(new Gauge());
  return entry.gauge.get();
}

ConcurrentHistogram* MetricsRegistry::AddHistogram(std::string name,
                                                   std::string help,
                                                   Labels labels,
                                                   const void* owner) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = NewEntry(std::move(name), std::move(help),
                          MetricType::kHistogram, std::move(labels), owner);
  entry.histogram = std::make_unique<ConcurrentHistogram>();
  return entry.histogram.get();
}

void MetricsRegistry::AddCounterCallback(std::string name, std::string help,
                                         Labels labels,
                                         std::function<uint64_t()> fn,
                                         const void* owner) {
  std::lock_guard<std::mutex> lock(mutex_);
  NewEntry(std::move(name), std::move(help), MetricType::kCounter,
           std::move(labels), owner)
      .counter_fn = std::move(fn);
}

void MetricsRegistry::AddGaugeCallback(std::string name, std::string help,
                                       Labels labels,
                                       std::function<double()> fn,
                                       const void* owner) {
  std::lock_guard<std::mutex> lock(mutex_);
  NewEntry(std::move(name), std::move(help), MetricType::kGauge,
           std::move(labels), owner)
      .gauge_fn = std::move(fn);
}

void MetricsRegistry::AddHistogramCallback(std::string name, std::string help,
                                           Labels labels,
                                           std::function<Histogram()> fn,
                                           const void* owner) {
  std::lock_guard<std::mutex> lock(mutex_);
  NewEntry(std::move(name), std::move(help), MetricType::kHistogram,
           std::move(labels), owner)
      .histogram_fn = std::move(fn);
}

void MetricsRegistry::Unregister(const void* owner) {
  if (owner == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [owner](const std::unique_ptr<Entry>& entry) {
                                  return entry->owner == owner;
                                }),
                 entries_.end());
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.metrics.reserve(entries_.size());
    for (const std::unique_ptr<Entry>& entry : entries_) {
      MetricSnapshot metric;
      metric.name = entry->name;
      metric.help = entry->help;
      metric.type = entry->type;
      metric.labels = entry->labels;
      if (entry->counter != nullptr) {
        metric.value = static_cast<double>(entry->counter->value());
      } else if (entry->gauge != nullptr) {
        metric.value = entry->gauge->value();
      } else if (entry->histogram != nullptr) {
        metric.histogram = entry->histogram->Snapshot();
      } else if (entry->counter_fn) {
        metric.value = static_cast<double>(entry->counter_fn());
      } else if (entry->gauge_fn) {
        metric.value = entry->gauge_fn();
      } else if (entry->histogram_fn) {
        metric.histogram = entry->histogram_fn();
      }
      out.metrics.push_back(std::move(metric));
    }
  }
  std::sort(out.metrics.begin(), out.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return out;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace obs
}  // namespace wavekit
