#include "obs/timeseries.h"

#include <chrono>

namespace wavekit {
namespace obs {
namespace {

/// JSON number rendering shared with the registry exporters: integral values
/// print exactly, others with default precision.
std::string JsonNumber(double value) {
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      value < 9.2e18 && value > -9.2e18) {
    return std::to_string(static_cast<int64_t>(value));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", value);
  return buf;
}

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Flattens one snapshot into (key, value) pairs: counters and gauges map to
/// their value, histograms to `<key>:count` and `<key>:sum` so every series
/// is a plain number and delta/rate derivation is uniform.
std::vector<std::pair<std::string, double>> FlattenSnapshot(
    const RegistrySnapshot& snapshot) {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(snapshot.metrics.size());
  for (const MetricSnapshot& metric : snapshot.metrics) {
    const std::string key = MetricKey(metric.name, metric.labels);
    if (metric.type == MetricType::kHistogram) {
      out.emplace_back(key + ":count",
                       static_cast<double>(metric.histogram.count()));
      out.emplace_back(key + ":sum",
                       static_cast<double>(metric.histogram.sum()));
    } else {
      out.emplace_back(key, metric.value);
    }
  }
  return out;
}

}  // namespace

std::string MetricKey(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name + "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + value + "\"";
  }
  out += "}";
  return out;
}

TimeSeriesCollector::TimeSeriesCollector(Options options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : RealClock::Instance()) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  ring_.reserve(options_.ring_capacity);
}

TimeSeriesCollector::~TimeSeriesCollector() { Stop(); }

void TimeSeriesCollector::AppendSample(Sample sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  last_sample_us_ = sample.timestamp_us;
  ever_sampled_ = true;
  if (ring_.size() < options_.ring_capacity) {
    ring_.push_back(std::move(sample));
    ring_next_ = ring_.size() % options_.ring_capacity;
    ring_full_ = ring_.size() == options_.ring_capacity;
  } else {
    ring_[ring_next_] = std::move(sample);
    ring_next_ = (ring_next_ + 1) % options_.ring_capacity;
    ring_full_ = true;
  }
  samples_taken_.fetch_add(1, std::memory_order_relaxed);
}

void TimeSeriesCollector::SampleNow() {
  if (options_.registry == nullptr) return;
  Sample sample;
  sample.timestamp_us = clock_->NowMicros();
  // Snapshot outside our own mutex: registry callbacks may be slow, and
  // readers of Samples() should not wait on them.
  sample.snapshot = options_.registry->Snapshot();
  AppendSample(std::move(sample));
}

bool TimeSeriesCollector::Tick() {
  if (options_.registry == nullptr) return false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (ever_sampled_) {
      const uint64_t now_us = clock_->NowMicros();
      if (now_us < last_sample_us_ + options_.interval_us) return false;
    }
  }
  SampleNow();
  return true;
}

void TimeSeriesCollector::Start() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(thread_mutex_);
    while (!stop_requested_) {
      lock.unlock();
      SampleNow();
      lock.lock();
      thread_cv_.wait_for(lock,
                          std::chrono::microseconds(options_.interval_us),
                          [this] { return stop_requested_; });
    }
  });
}

void TimeSeriesCollector::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!thread_.joinable()) return;
    stop_requested_ = true;
    thread_cv_.notify_all();
  }
  thread_.join();
  std::lock_guard<std::mutex> lock(thread_mutex_);
  thread_ = std::thread();
}

std::vector<TimeSeriesCollector::Sample> TimeSeriesCollector::Samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Sample> out;
  out.reserve(ring_.size());
  if (!ring_full_) {
    out = ring_;
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
    }
  }
  return out;
}

std::vector<TimeSeriesCollector::Point> TimeSeriesCollector::Series(
    const std::string& name, const Labels& labels) const {
  const std::vector<Sample> samples = Samples();
  std::vector<Point> out;
  bool have_previous = false;
  double previous_value = 0.0;
  uint64_t previous_us = 0;
  for (const Sample& sample : samples) {
    for (const MetricSnapshot& metric : sample.snapshot.metrics) {
      if (metric.name != name || metric.labels != labels) continue;
      Point point;
      point.timestamp_us = sample.timestamp_us;
      point.value = metric.type == MetricType::kHistogram
                        ? static_cast<double>(metric.histogram.count())
                        : metric.value;
      if (have_previous) {
        point.delta = point.value - previous_value;
        const uint64_t elapsed_us = point.timestamp_us > previous_us
                                        ? point.timestamp_us - previous_us
                                        : 0;
        point.rate_per_sec =
            elapsed_us > 0 ? point.delta * 1e6 / elapsed_us : 0.0;
      }
      previous_value = point.value;
      previous_us = point.timestamp_us;
      have_previous = true;
      out.push_back(point);
      break;
    }
  }
  return out;
}

std::string TimeSeriesCollector::RenderJson() const {
  const std::vector<Sample> samples = Samples();
  std::string out = "{\n  \"interval_us\": " +
                    std::to_string(options_.interval_us) +
                    ",\n  \"samples_taken\": " +
                    std::to_string(samples_taken()) + ",\n  \"samples\": [\n";
  for (size_t i = 0; i < samples.size(); ++i) {
    out += "    {\"t_us\": " + std::to_string(samples[i].timestamp_us) +
           ", \"metrics\": {";
    bool first = true;
    for (const auto& [key, value] : FlattenSnapshot(samples[i].snapshot)) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + EscapeJson(key) + "\": " + JsonNumber(value);
    }
    out += "}}";
    if (i + 1 < samples.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n  \"rates\": {";
  // Counter rates over the last pair of samples — the "right now" view
  // wavectl top shows.
  if (samples.size() >= 2) {
    const Sample& a = samples[samples.size() - 2];
    const Sample& b = samples.back();
    const uint64_t elapsed_us =
        b.timestamp_us > a.timestamp_us ? b.timestamp_us - a.timestamp_us : 0;
    if (elapsed_us > 0) {
      const auto old_values = FlattenSnapshot(a.snapshot);
      bool first = true;
      for (const auto& [key, value] : FlattenSnapshot(b.snapshot)) {
        for (const auto& [old_key, old_value] : old_values) {
          if (old_key != key) continue;
          if (value < old_value) break;  // gauge went down; not a counter
          if (!first) out += ", ";
          first = false;
          out += "\"" + EscapeJson(key) +
                 "\": " + JsonNumber((value - old_value) * 1e6 / elapsed_us);
          break;
        }
      }
    }
  }
  out += "}\n}";
  return out;
}

}  // namespace obs
}  // namespace wavekit
