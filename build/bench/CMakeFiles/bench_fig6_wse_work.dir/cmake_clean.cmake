file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_wse_work.dir/bench_fig6_wse_work.cc.o"
  "CMakeFiles/bench_fig6_wse_work.dir/bench_fig6_wse_work.cc.o.d"
  "bench_fig6_wse_work"
  "bench_fig6_wse_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_wse_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
