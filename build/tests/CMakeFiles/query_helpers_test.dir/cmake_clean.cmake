file(REMOVE_RECURSE
  "CMakeFiles/query_helpers_test.dir/wave/query_helpers_test.cc.o"
  "CMakeFiles/query_helpers_test.dir/wave/query_helpers_test.cc.o.d"
  "query_helpers_test"
  "query_helpers_test.pdb"
  "query_helpers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_helpers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
