// Records and day batches: the data being indexed.
//
// Following the paper's Section 2, the data consists of records; each record
// has a search field F that may hold multiple values (e.g. the words of a
// Netnews article, or the SUPPKEY of a LINEITEM row). Records arrive in
// daily batches.

#ifndef WAVEKIT_INDEX_RECORD_H_
#define WAVEKIT_INDEX_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/day.h"

namespace wavekit {

/// A search-field value (one word / key the index maps to postings).
using Value = std::string;

/// \brief One record of the evolving database.
struct Record {
  /// Stable identifier, unique across all days.
  uint64_t record_id = 0;
  /// The day this record was inserted (its timestamp in index entries).
  Day day = 0;
  /// Values of the search field F; one index entry is created per value.
  std::vector<Value> values;
  /// Optional associated information a_i per value (parallel to `values`):
  /// e.g. a byte offset in IR usage, or an attribute (line quantity) in the
  /// relational usage. When empty, the value's position is stored instead.
  std::vector<uint32_t> aux;

  /// The aux payload for the entry of values[i].
  uint32_t AuxFor(size_t i) const {
    return i < aux.size() ? aux[i] : static_cast<uint32_t>(i);
  }
};

/// \brief All records generated during one day.
struct DayBatch {
  Day day = 0;
  std::vector<Record> records;

  /// Total number of index entries this batch will produce (sum of value
  /// multiplicities over records).
  uint64_t EntryCount() const {
    uint64_t n = 0;
    for (const Record& r : records) n += r.values.size();
    return n;
  }
};

}  // namespace wavekit

#endif  // WAVEKIT_INDEX_RECORD_H_
