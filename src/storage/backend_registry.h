// BackendRegistry: named storage-backend factories with per-backend
// capability metadata — the adapter seam that lets WaveService, wavectl,
// and the bench suite run the same index on a modeled memory device, plain
// files, io_uring, or mmap without any caller knowing the concrete type.
//
// Modeled on the struct-of-pointers adapter registries of embedded KV
// stores (kvidxkit's kvidxInterface): a backend is a name, a Capabilities
// record the placement layer consults (alignment for O_DIRECT, whether
// Sync() is required for durability), and a factory from BackendConfig to a
// Device.

#ifndef WAVEKIT_STORAGE_BACKEND_REGISTRY_H_
#define WAVEKIT_STORAGE_BACKEND_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "storage/device.h"
#include "util/result.h"

namespace wavekit {

/// \brief What the placement and durability layers must know about a
/// backend before using it.
struct BackendCapabilities {
  /// ReadBatch/WriteBatch are submitted asynchronously in one syscall
  /// (io_uring) rather than looped or coalesced.
  bool supports_batch_async = false;
  /// Extent alignment the backend wants (ExtentAllocator::AllocateAligned);
  /// 1 = byte-granular, kDirectIoAlignment for O_DIRECT backends.
  uint64_t alignment = 1;
  /// Data is durable only after Device::Sync() (false for the in-memory
  /// modeled device, where durability is moot).
  bool needs_sync = false;
  /// Contents survive close + reopen of the same path.
  bool persistent = false;
};

/// \brief Everything a factory needs to open a backend.
struct BackendConfig {
  /// Backing file path. Ignored by "memory"; required by file-backed
  /// backends.
  std::string path;
  uint64_t capacity = uint64_t{1} << 30;
  /// O_DIRECT for file/uring (fails on filesystems without support).
  bool direct_io = false;
  /// io_uring submission-queue depth (bound on in-flight ops per batch).
  int queue_depth = 64;
};

/// \brief Name -> (capabilities, factory) map. The global instance has the
/// four built-ins registered: "memory", "file", "uring", "mmap". The
/// "uring" factory opens a UringDevice, which itself degrades to FileDevice
/// semantics when the kernel lacks io_uring — creation never fails for that
/// reason.
class BackendRegistry {
 public:
  using Factory =
      std::function<Result<std::unique_ptr<Device>>(const BackendConfig&)>;

  /// The process-wide registry with built-ins registered.
  static BackendRegistry& Global();

  /// Registers a backend; fails with AlreadyExists on a duplicate name.
  Status Register(std::string name, BackendCapabilities capabilities,
                  Factory factory);

  /// Opens a device through the named backend's factory. `direct_io`
  /// requests on backends whose capabilities cannot honor them (memory,
  /// mmap) fail with InvalidArgument.
  Result<std::unique_ptr<Device>> Create(std::string_view name,
                                         const BackendConfig& config) const;

  Result<BackendCapabilities> GetCapabilities(std::string_view name) const;

  /// The effective capabilities of (backend, config): direct_io raises
  /// `alignment` to kDirectIoAlignment.
  Result<BackendCapabilities> EffectiveCapabilities(
      std::string_view name, const BackendConfig& config) const;

  bool Contains(std::string_view name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    BackendCapabilities capabilities;
    Factory factory;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> backends_;
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_BACKEND_REGISTRY_H_
