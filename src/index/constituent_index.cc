#include "index/constituent_index.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "index/index_builder.h"
#include "util/crash_point.h"
#include "util/crc32c.h"
#include "util/logging.h"
#include "util/macros.h"

namespace wavekit {

ConstituentIndex::ConstituentIndex(Device* device, ExtentAllocator* allocator,
                                   Options options, std::string name)
    : device_(device),
      allocator_(allocator),
      options_(options),
      name_(std::move(name)),
      directory_(MakeDirectory(options.directory)) {}

ConstituentIndex::~ConstituentIndex() {
  Status status = Destroy();
  if (!status.ok()) {
    WAVEKIT_LOG(Error) << "destroying index " << name_ << ": "
                       << status.ToString();
  }
}

void ConstituentIndex::Quarantine() const {
  const bool was_corrupt = corrupt_.exchange(true, std::memory_order_relaxed);
  healthy_.store(false, std::memory_order_relaxed);
  if (!was_corrupt && options_.integrity != nullptr) {
    options_.integrity->quarantines.fetch_add(1, std::memory_order_relaxed);
  }
}

Status ConstituentIndex::VerifyBucketBytes(const Value& value, uint32_t crc,
                                           const std::byte* bytes,
                                           uint64_t length) const {
  if (!options_.verify_checksums) return Status::OK();
  if (options_.integrity != nullptr) {
    options_.integrity->verified_buckets.fetch_add(1,
                                                   std::memory_order_relaxed);
  }
  return CheckBucketBytes(value, crc, bytes, length);
}

Status ConstituentIndex::CheckBucketBytes(const Value& value, uint32_t crc,
                                          const std::byte* bytes,
                                          uint64_t length) const {
  if (!options_.verify_checksums) return Status::OK();
  const uint32_t actual = Crc32c(bytes, length);
  if (actual == crc) return Status::OK();
  if (options_.integrity != nullptr) {
    options_.integrity->corruptions_detected.fetch_add(
        1, std::memory_order_relaxed);
  }
  Quarantine();
  return Status::DataLoss("checksum mismatch in bucket '" + value +
                          "' of index " + name_);
}

Status ConstituentIndex::DecodeStoredBucket(const Value& value, Codec codec,
                                            const std::byte* bytes,
                                            uint64_t length, uint32_t count,
                                            Entry* out) const {
  Status status =
      DecodeBucket(codec, bytes, static_cast<size_t>(length), count, out);
  if (status.ok()) return status;
  // The checksum over the stored bytes passed (or was disabled), yet the
  // bytes do not decode: corruption the CRC could not see, or rot under a
  // verify_checksums=false configuration. Same treatment as a mismatch.
  if (options_.integrity != nullptr) {
    options_.integrity->corruptions_detected.fetch_add(
        1, std::memory_order_relaxed);
  }
  Quarantine();
  return Status::DataLoss("bucket '" + value + "' of index " + name_ +
                          " failed to decode: " + status.message());
}

Status ConstituentIndex::ReadBucketEntries(const Value& value,
                                           const BucketInfo& info,
                                           std::vector<Entry>* out) const {
  const size_t previous = out->size();
  out->resize(previous + info.count);
  if (info.count == 0) return Status::OK();

  // Compressed buckets read the stored (encoded) bytes into scratch and
  // decode at this boundary; raw buckets read entries straight into `out`.
  std::vector<std::byte> scratch;
  const Extent stored{info.extent.offset, info.stored_length()};
  std::byte* bytes;
  if (info.codec == Codec::kRaw) {
    bytes = reinterpret_cast<std::byte*>(out->data() + previous);
  } else {
    scratch.resize(static_cast<size_t>(stored.length));
    bytes = scratch.data();
  }
  const std::span<std::byte> span(bytes, static_cast<size_t>(stored.length));
  Status status;
  if (options_.verify_checksums) {
    // Verify at the trust boundary (storage/device.h ReadBatchTracked): a
    // bucket served entirely from checksum-verified resident cache bytes
    // skips re-hashing; a verified medium read promotes those bytes so the
    // next probe of the same hot bucket can skip.
    const std::span<const Extent> extents(&stored, 1);
    bool trusted = false;
    uint64_t fill_token = 0;
    status = device_->ReadBatchTracked(extents, span, &trusted, &fill_token);
    if (status.ok()) {
      if (trusted) {
        if (options_.integrity != nullptr) {
          options_.integrity->trusted_buckets.fetch_add(
              1, std::memory_order_relaxed);
        }
      } else {
        status = VerifyBucketBytes(value, info.crc, bytes, stored.length);
        if (status.ok()) device_->MarkVerified(extents, fill_token);
      }
    }
  } else {
    status = device_->Read(stored.offset, span);
  }
  if (status.ok() && info.codec != Codec::kRaw) {
    status = DecodeStoredBucket(value, info.codec, bytes, stored.length,
                                info.count, out->data() + previous);
  }
  // A failed read, checksum, or decode must not hand unverified entries to
  // the caller alongside the error.
  if (!status.ok()) out->resize(previous);
  return status;
}

Status ConstituentIndex::WriteEntriesAt(uint64_t offset,
                                        std::span<const Entry> entries) {
  if (entries.empty()) return Status::OK();
  auto* bytes = reinterpret_cast<const std::byte*>(entries.data());
  return device_->Write(
      offset, std::span<const std::byte>(bytes, entries.size() * kEntrySize));
}

Status ConstituentIndex::Probe(const Value& value,
                               std::vector<Entry>* out) const {
  return TimedProbe(value, DayRange::All(), out);
}

Status ConstituentIndex::TimedProbe(const Value& value, const DayRange& range,
                                    std::vector<Entry>* out) const {
  const BucketInfo* info = directory_->Find(value);
  if (info == nullptr) return Status::OK();
  if (range.Covers(time_set_)) {
    // All entries qualify; no per-entry timestamp check needed.
    return ReadBucketEntries(value, *info, out);
  }
  std::vector<Entry> bucket;
  WAVEKIT_RETURN_NOT_OK(ReadBucketEntries(value, *info, &bucket));
  for (const Entry& e : bucket) {
    if (range.Contains(e.day)) out->push_back(e);
  }
  return Status::OK();
}

Status ConstituentIndex::Scan(const EntryCallback& callback) const {
  return TimedScan(DayRange::All(), callback);
}

Status ConstituentIndex::TimedScan(const DayRange& range,
                                   const EntryCallback& callback) const {
  const bool covered = range.Covers(time_set_);
  // Coalesce physically adjacent live regions into runs (a packed index is
  // one run) and issue one ReadBatch per ~kScanBatchBytes of pending buckets
  // — one device round-trip (and, in a serving stack, one metering round)
  // per batch instead of per bucket.
  static constexpr uint64_t kScanBatchBytes = uint64_t{4} << 20;
  // Pending buckets in structure-of-arrays form so the fused verify+deliver
  // loop below touches a few small dense arrays, not a vector of structs.
  std::vector<Extent> extents;
  std::vector<const Value*> pending_values;
  std::vector<uint32_t> pending_lengths;  // stored bytes per bucket
  std::vector<uint32_t> pending_counts;   // live entries per bucket
  std::vector<Codec> pending_codecs;
  std::vector<uint32_t> pending_crcs;
  std::vector<std::byte> buffer;
  std::vector<Entry> scratch;  // decode target for compressed buckets
  uint64_t pending_bytes = 0;

  auto flush = [&]() -> Status {
    if (pending_values.empty()) return Status::OK();
    buffer.resize(static_cast<size_t>(pending_bytes));
    const std::span<std::byte> out(buffer.data(),
                                   static_cast<size_t>(pending_bytes));
    // Verification happens at the trust boundary — the medium. A batch
    // served wholly from cache blocks that MarkVerified promoted (every byte
    // checksum-verified since it last crossed the medium) is delivered
    // without re-verification: re-hashing DRAM-resident bytes on every scan
    // catches nothing the background scrubber (which reads the medium,
    // bypassing the cache) does not already cover, and would cost more than
    // the scan itself on dense windows.
    bool all_trusted = false;
    uint64_t fill_token = 0;
    if (options_.verify_checksums) {
      WAVEKIT_RETURN_NOT_OK(
          device_->ReadBatchTracked(extents, out, &all_trusted, &fill_token));
    } else {
      WAVEKIT_RETURN_NOT_OK(device_->ReadBatch(extents, out));
    }
    // One fused pass: check bucket k, issue bucket k+1's checksum chain,
    // THEN deliver bucket k. A bucket's entries are never delivered before
    // its own checksum passes, and the next bucket's CRC — a serial
    // dependency chain through a 3-cycle-latency instruction — retires in
    // the out-of-order shadow of the current bucket's callback work instead
    // of stalling a dedicated verification pass. (Buckets earlier in the
    // batch have already been delivered when a later one turns out corrupt —
    // the same exposure as a corrupt bucket in a later flush.) The
    // verified-buckets stat is charged once per flush, not per bucket.
    const size_t total = pending_values.size();
    const bool verify = options_.verify_checksums && !all_trusted;
    size_t bad = total;  // first corrupt bucket, or total when clean
    size_t at = 0;       // byte offset of bucket k within the buffer
    uint32_t actual = verify ? Crc32c(buffer.data(), pending_lengths[0]) : 0;
    for (size_t k = 0; k < total; ++k) {
      const uint32_t length = pending_lengths[k];
      if (verify) {
        if (actual != pending_crcs[k]) {
          bad = k;
          break;
        }
        if (k + 1 < total) {
          actual = Crc32c(buffer.data() + at + length, pending_lengths[k + 1]);
        }
      }
      const Value& value = *pending_values[k];
      const uint32_t count = pending_counts[k];
      const std::byte* stored = buffer.data() + at;
      const Entry* bucket;
      if (pending_codecs[k] == Codec::kRaw) {
        // An all-raw batch keeps every bucket at an entry-aligned offset and
        // delivers in place; a compressed predecessor can leave this one
        // unaligned, in which case it is copied out first.
        if (reinterpret_cast<uintptr_t>(stored) % alignof(Entry) == 0) {
          bucket = reinterpret_cast<const Entry*>(stored);
        } else {
          scratch.resize(count);
          std::memcpy(scratch.data(), stored, length);
          bucket = scratch.data();
        }
      } else {
        scratch.resize(count);
        WAVEKIT_RETURN_NOT_OK(DecodeStoredBucket(
            value, pending_codecs[k], stored, length, count, scratch.data()));
        bucket = scratch.data();
      }
      for (uint32_t i = 0; i < count; ++i) {
        const Entry& e = bucket[i];
        if (covered || range.Contains(e.day)) callback(value, e);
      }
      at += length;
    }
    if (options_.integrity != nullptr && options_.verify_checksums) {
      if (verify) {
        options_.integrity->verified_buckets.fetch_add(
            bad == total ? total : bad + 1, std::memory_order_relaxed);
      } else {
        options_.integrity->trusted_buckets.fetch_add(
            total, std::memory_order_relaxed);
      }
    }
    if (bad != total) {
      // Recheck the failing bucket through the usual path for the corruption
      // accounting, the quarantine, and the error message. `at` is its
      // offset: the loop broke before advancing past bucket `bad`.
      WAVEKIT_RETURN_NOT_OK(CheckBucketBytes(*pending_values[bad],
                                             pending_crcs[bad],
                                             buffer.data() + at,
                                             pending_lengths[bad]));
    }
    if (verify && bad == total) {
      // Every byte of this batch checksummed clean: mark those bytes of
      // still-resident cache blocks so the next scan over them can skip.
      device_->MarkVerified(extents, fill_token);
    }
    extents.clear();
    pending_values.clear();
    pending_lengths.clear();
    pending_counts.clear();
    pending_codecs.clear();
    pending_crcs.clear();
    pending_bytes = 0;
    return Status::OK();
  };

  for (const Value& value : layout_order_) {
    const BucketInfo* info = directory_->Find(value);
    if (info == nullptr) {
      return Status::Internal("layout order lists unknown value '" + value +
                              "' in index " + name_);
    }
    if (info->count == 0) continue;
    const Extent live{info->extent.offset, info->stored_length()};
    if (!extents.empty() && extents.back().end() == live.offset) {
      extents.back().length += live.length;  // adjacent: extend the run
    } else {
      extents.push_back(live);
    }
    pending_values.push_back(&value);
    pending_lengths.push_back(static_cast<uint32_t>(live.length));
    pending_counts.push_back(info->count);
    pending_codecs.push_back(info->codec);
    pending_crcs.push_back(info->crc);
    pending_bytes += live.length;
    if (pending_bytes >= kScanBatchBytes) WAVEKIT_RETURN_NOT_OK(flush());
  }
  return flush();
}

Status ConstituentIndex::ForEachBucket(
    const std::function<void(const Value&, const BucketInfo&)>& fn) const {
  for (const Value& value : layout_order_) {
    const BucketInfo* info = directory_->Find(value);
    if (info == nullptr) {
      return Status::Internal("layout order lists unknown value '" + value +
                              "' in index " + name_);
    }
    fn(value, *info);
  }
  return Status::OK();
}

Status ConstituentIndex::AppendEntries(const Value& value,
                                       std::span<const Entry> entries) {
  if (entries.empty()) return Status::OK();
  const auto* entry_bytes = reinterpret_cast<const std::byte*>(entries.data());
  const size_t entry_byte_count = entries.size() * kEntrySize;
  BucketInfo* info = directory_->Find(value);
  if (info == nullptr) {
    const uint32_t capacity =
        options_.growth.InitialCapacity(static_cast<uint32_t>(entries.size()));
    WAVEKIT_ASSIGN_OR_RETURN(Extent extent,
                             allocator_->Allocate(capacity * kEntrySize));
    WAVEKIT_RETURN_NOT_OK(WriteEntriesAt(extent.offset, entries));
    WAVEKIT_RETURN_NOT_OK(directory_->Insert(
        value, BucketInfo{extent, static_cast<uint32_t>(entries.size()),
                          capacity, Crc32c(entry_bytes, entry_byte_count)}));
    layout_order_.push_back(value);
    allocated_bytes_ += extent.length;
  } else if (info->count + entries.size() <= info->capacity) {
    // Room in place: append after the existing entries. The checksum extends
    // over the new suffix without rereading the prefix.
    WAVEKIT_RETURN_NOT_OK(WriteEntriesAt(
        info->extent.offset + info->count * kEntrySize, entries));
    info->count += static_cast<uint32_t>(entries.size());
    info->crc = Crc32cExtend(info->crc, entry_bytes, entry_byte_count);
  } else {
    // CONTIGUOUS overflow: relocate to a g-times-larger extent. A compressed
    // bucket (count == capacity, so never appendable in place) lands here
    // too: ReadBucketEntries decodes it and the rewrite is kRaw —
    // rewrite-on-mutation keeps simple constituents appendable.
    const uint32_t needed =
        info->count + static_cast<uint32_t>(entries.size());
    const uint32_t new_capacity =
        options_.growth.GrownCapacity(info->capacity, needed);
    std::vector<Entry> existing;
    WAVEKIT_RETURN_NOT_OK(ReadBucketEntries(value, *info, &existing));
    WAVEKIT_ASSIGN_OR_RETURN(Extent new_extent,
                             allocator_->Allocate(new_capacity * kEntrySize));
    existing.insert(existing.end(), entries.begin(), entries.end());
    WAVEKIT_RETURN_NOT_OK(WriteEntriesAt(new_extent.offset, existing));
    WAVEKIT_RETURN_NOT_OK(allocator_->Free(info->extent));
    allocated_bytes_ += new_extent.length;
    allocated_bytes_ -= info->extent.length;
    info->extent = new_extent;
    info->count = needed;
    info->capacity = new_capacity;
    info->codec = Codec::kRaw;
    info->crc = Crc32c(existing.data(), existing.size() * kEntrySize);
  }
  entry_count_ += entries.size();
  packed_ = false;
  return Status::OK();
}

Status ConstituentIndex::AddBatch(const DayBatch& batch) {
  // Group the batch per value (sorted for determinism), then append.
  std::map<Value, std::vector<Entry>> grouped;
  for (const Record& record : batch.records) {
    for (size_t i = 0; i < record.values.size(); ++i) {
      grouped[record.values[i]].push_back(
          Entry{record.record_id, batch.day, record.AuxFor(i)});
    }
  }
  for (const auto& [value, entries] : grouped) {
    WAVEKIT_RETURN_NOT_OK(AppendEntries(value, entries));
  }
  time_set_.insert(batch.day);
  return Status::OK();
}

Status ConstituentIndex::DeleteDays(const TimeSet& days) {
  if (days.empty()) return Status::OK();
  // Iterate over a copy: emptied values are removed from layout_order_.
  const std::vector<Value> values = layout_order_;
  std::vector<Entry> bucket;
  std::vector<Entry> kept;
  for (const Value& value : values) {
    BucketInfo* info = directory_->Find(value);
    if (info == nullptr) {
      return Status::Internal("layout order lists unknown value '" + value +
                              "' in index " + name_);
    }
    bucket.clear();
    WAVEKIT_RETURN_NOT_OK(ReadBucketEntries(value, *info, &bucket));
    kept.clear();
    for (const Entry& e : bucket) {
      if (!days.contains(e.day)) kept.push_back(e);
    }
    if (kept.size() == bucket.size()) continue;  // nothing expired here
    entry_count_ -= bucket.size() - kept.size();
    if (kept.empty()) {
      WAVEKIT_RETURN_NOT_OK(RemoveValue(value));
      continue;
    }
    const uint32_t live = static_cast<uint32_t>(kept.size());
    const uint32_t shrunk =
        options_.growth.ShrunkCapacity(info->capacity, live);
    if (shrunk != info->capacity || info->codec != Codec::kRaw) {
      // Worth relocating to a smaller extent (CONTIGUOUS shrink). A
      // compressed bucket always relocates: its extent is encoded bytes,
      // too small for the surviving raw entries, so rewrite-on-mutation
      // lands them in a fresh kRaw extent.
      WAVEKIT_ASSIGN_OR_RETURN(Extent new_extent,
                               allocator_->Allocate(shrunk * kEntrySize));
      WAVEKIT_RETURN_NOT_OK(WriteEntriesAt(new_extent.offset, kept));
      WAVEKIT_RETURN_NOT_OK(allocator_->Free(info->extent));
      allocated_bytes_ += new_extent.length;
      allocated_bytes_ -= info->extent.length;
      info->extent = new_extent;
      info->capacity = shrunk;
      info->codec = Codec::kRaw;
    } else {
      // Compact in place.
      WAVEKIT_RETURN_NOT_OK(WriteEntriesAt(info->extent.offset, kept));
    }
    info->count = live;
    info->crc = Crc32c(kept.data(), kept.size() * kEntrySize);
  }
  for (Day d : days) time_set_.erase(d);
  packed_ = false;
  return Status::OK();
}

Status ConstituentIndex::RemoveValue(const Value& value) {
  BucketInfo* info = directory_->Find(value);
  if (info == nullptr) {
    return Status::NotFound("no value '" + value + "' in index " + name_);
  }
  WAVEKIT_RETURN_NOT_OK(allocator_->Free(info->extent));
  allocated_bytes_ -= info->extent.length;
  WAVEKIT_RETURN_NOT_OK(directory_->Remove(value));
  layout_order_.erase(
      std::find(layout_order_.begin(), layout_order_.end(), value));
  return Status::OK();
}

Status ConstituentIndex::InstallBucket(const Value& value, const Extent& extent,
                                       uint32_t count, uint32_t capacity,
                                       uint32_t crc) {
  return InstallBucket(value, BucketInfo{extent, count, capacity, crc});
}

Status ConstituentIndex::InstallBucket(const Value& value,
                                       const BucketInfo& info) {
  if (info.count > info.capacity) {
    return Status::InvalidArgument("bucket count exceeds capacity");
  }
  if (info.codec == Codec::kRaw) {
    if (info.extent.length != info.capacity * kEntrySize) {
      return Status::InvalidArgument("bucket extent does not match capacity");
    }
  } else {
    // Compressed buckets are immutable on device: exactly filled, with an
    // extent that is exactly the encoded bytes and strictly beats raw
    // (selection keeps kRaw otherwise).
    if (info.count != info.capacity) {
      return Status::InvalidArgument(
          "compressed bucket must be exactly filled");
    }
    if (info.count == 0 || info.extent.length == 0) {
      return Status::InvalidArgument("compressed bucket must be non-empty");
    }
    if (info.extent.length >= uint64_t{info.count} * kEntrySize) {
      return Status::InvalidArgument(
          "compressed bucket is not smaller than raw");
    }
  }
  WAVEKIT_RETURN_NOT_OK(directory_->Insert(value, info));
  layout_order_.push_back(value);
  allocated_bytes_ += info.extent.length;
  entry_count_ += info.count;
  return Status::OK();
}

Result<std::unique_ptr<ConstituentIndex>> ConstituentIndex::Clone(
    std::string name, const ParallelContext& parallel) const {
  return CloneTo(device_, allocator_, std::move(name), parallel);
}

Result<std::unique_ptr<ConstituentIndex>> ConstituentIndex::CloneTo(
    Device* device, ExtentAllocator* allocator, std::string name,
    const ParallelContext& parallel) const {
  if (parallel.enabled()) {
    return CloneToParallel(device, allocator, std::move(name), parallel);
  }
  auto clone = std::make_unique<ConstituentIndex>(device, allocator, options_,
                                                  std::move(name));
  // One region for all buckets keeps the copy contiguous (and the copy I/O
  // sequential), like the paper's CP: read everything, flush elsewhere.
  WAVEKIT_ASSIGN_OR_RETURN(Extent region,
                           allocator->Allocate(allocated_bytes_));
  uint64_t cursor = region.offset;
  std::vector<std::byte> buffer;
  for (const Value& value : layout_order_) {
    const BucketInfo* info = directory_->Find(value);
    if (info == nullptr) {
      WAVEKIT_RETURN_NOT_OK(allocator->Free(region));
      return Status::Internal("layout order lists unknown value '" + value +
                              "' in index " + name_);
    }
    // Copy the full capacity (slack included), preserving S' footprint. A
    // compressed extent is exactly its stored bytes; the clone keeps the
    // codec (no decode/re-encode round trip on the copy path).
    buffer.resize(info->extent.length);
    WAVEKIT_RETURN_NOT_OK(device_->Read(info->extent.offset, buffer));
    // Verify before propagating: a clone must not launder corrupt bytes
    // into a fresh extent with a recomputed checksum.
    {
      Status verified = VerifyBucketBytes(value, info->crc, buffer.data(),
                                          info->stored_length());
      if (!verified.ok()) {
        (void)allocator->Free(region);
        return verified;
      }
    }
    WAVEKIT_RETURN_NOT_OK(device->Write(cursor, buffer));
    WAVEKIT_RETURN_NOT_OK(clone->InstallBucket(
        value, BucketInfo{Extent{cursor, info->extent.length}, info->count,
                          info->capacity, info->crc, info->codec}));
    cursor += info->extent.length;
  }
  clone->time_set_ = time_set_;
  clone->packed_ = packed_;
  return clone;
}

Result<std::unique_ptr<ConstituentIndex>> ConstituentIndex::CloneToParallel(
    Device* device, ExtentAllocator* allocator, std::string name,
    const ParallelContext& parallel) const {
  auto clone = std::make_unique<ConstituentIndex>(device, allocator, options_,
                                                  std::move(name));
  // Snapshot the bucket list and destination layout serially (the directory
  // is not thread-safe); tasks then touch only their own slice.
  struct CopyPlan {
    const Value* value;
    Extent source;
    uint64_t target_offset;  // relative to the region start
    uint64_t stored;         // checksummed bytes at the extent's start
    uint32_t count;
    uint32_t capacity;
    uint32_t crc;
    Codec codec;
  };
  std::vector<CopyPlan> plan;
  plan.reserve(layout_order_.size());
  uint64_t running = 0;
  for (const Value& value : layout_order_) {
    const BucketInfo* info = directory_->Find(value);
    if (info == nullptr) {
      return Status::Internal("layout order lists unknown value '" + value +
                              "' in index " + name_);
    }
    plan.push_back(CopyPlan{&value, info->extent, running,
                            info->stored_length(), info->count,
                            info->capacity, info->crc, info->codec});
    running += info->extent.length;
  }
  WAVEKIT_ASSIGN_OR_RETURN(Extent region,
                           allocator->Allocate(allocated_bytes_));

  const size_t parts = parallel.Partitions(plan.size());
  std::vector<Status> copy_status(std::max<size_t>(parts, 1), Status::OK());
  {
    ThreadPool::WaitGroup group(parallel.pool);
    for (size_t p = 0; p < parts; ++p) {
      group.Submit([&, p]() {
        Status status = CrashPoints::Check("clone.parallel.copy");
        if (!status.ok()) {
          copy_status[p] = std::move(status);
          return;
        }
        const size_t begin = plan.size() * p / parts;
        const size_t end = plan.size() * (p + 1) / parts;
        std::vector<Extent> sources;
        std::vector<Extent> targets;
        std::vector<const CopyPlan*> batched;
        std::vector<std::byte> buffer;
        uint64_t pending = 0;
        auto flush = [&]() -> Status {
          if (sources.empty()) return Status::OK();
          buffer.resize(static_cast<size_t>(pending));
          WAVEKIT_RETURN_NOT_OK(device_->ReadBatch(sources, buffer));
          // Verify each bucket's stored bytes in the batch before the copy
          // lands anywhere (same rule as the serial clone).
          uint64_t at = 0;
          for (const CopyPlan* bucket : batched) {
            WAVEKIT_RETURN_NOT_OK(VerifyBucketBytes(
                *bucket->value, bucket->crc,
                buffer.data() + static_cast<size_t>(at), bucket->stored));
            at += bucket->source.length;
          }
          WAVEKIT_RETURN_NOT_OK(device->WriteBatch(targets, buffer));
          sources.clear();
          targets.clear();
          batched.clear();
          pending = 0;
          return Status::OK();
        };
        for (size_t i = begin; i < end; ++i) {
          const CopyPlan& bucket = plan[i];
          sources.push_back(bucket.source);
          targets.push_back(
              Extent{region.offset + bucket.target_offset,
                     bucket.source.length});
          batched.push_back(&bucket);
          pending += bucket.source.length;
          if (pending >= IndexBuilder::kWriteChunkBytes) {
            status = flush();
            if (!status.ok()) break;
          }
        }
        if (status.ok()) status = flush();
        copy_status[p] = std::move(status);
      });
    }
    group.Wait();
  }
  for (Status& status : copy_status) {
    if (!status.ok()) {
      // Nothing was installed: the whole region goes back in one piece.
      (void)allocator->Free(region);
      return std::move(status);
    }
  }
  for (const CopyPlan& bucket : plan) {
    WAVEKIT_RETURN_NOT_OK(clone->InstallBucket(
        *bucket.value,
        BucketInfo{
            Extent{region.offset + bucket.target_offset, bucket.source.length},
            bucket.count, bucket.capacity, bucket.crc, bucket.codec}));
  }
  clone->time_set_ = time_set_;
  clone->packed_ = packed_;
  return clone;
}

Status ConstituentIndex::Destroy() {
  Status first_error;
  directory_->ForEach([&](const Value&, const BucketInfo& info) {
    Status s = allocator_->Free(info.extent);
    if (!s.ok() && first_error.ok()) first_error = s;
  });
  WAVEKIT_RETURN_NOT_OK(first_error);
  directory_ = MakeDirectory(options_.directory);
  layout_order_.clear();
  time_set_.clear();
  entry_count_ = 0;
  allocated_bytes_ = 0;
  packed_ = false;
  return Status::OK();
}

ConstituentIndex::CodecBreakdown ConstituentIndex::CodecStats() const {
  CodecBreakdown breakdown;
  directory_->ForEach([&](const Value&, const BucketInfo& info) {
    breakdown.buckets[static_cast<size_t>(info.codec)] += 1;
    breakdown.stored_bytes += info.stored_length();
    breakdown.uncompressed_bytes += uint64_t{info.count} * kEntrySize;
  });
  return breakdown;
}

Status ConstituentIndex::CheckPacked() const {
  uint64_t expected_offset = 0;
  bool first = true;
  for (const Value& value : layout_order_) {
    const BucketInfo* info = directory_->Find(value);
    if (info == nullptr) return Status::Internal("layout/directory mismatch");
    if (info->count != info->capacity) {
      return Status::Internal("bucket for '" + value +
                              "' is not exactly filled");
    }
    if (!first && info->extent.offset != expected_offset) {
      return Status::Internal("bucket for '" + value +
                              "' is not contiguous with its predecessor");
    }
    expected_offset = info->extent.end();
    first = false;
  }
  return Status::OK();
}

Status ConstituentIndex::CheckConsistency() const {
  if (layout_order_.size() != directory_->size()) {
    return Status::Internal("layout order size != directory size");
  }
  uint64_t entries = 0;
  uint64_t bytes = 0;
  for (const Value& value : layout_order_) {
    const BucketInfo* info = directory_->Find(value);
    if (info == nullptr) return Status::Internal("layout/directory mismatch");
    if (info->count > info->capacity) {
      return Status::Internal("bucket count exceeds capacity");
    }
    if (info->count == 0) {
      return Status::Internal("empty bucket retained for '" + value + "'");
    }
    if (info->codec == Codec::kRaw) {
      if (info->extent.length != info->capacity * kEntrySize) {
        return Status::Internal("extent length does not match capacity");
      }
    } else {
      if (info->count != info->capacity) {
        return Status::Internal("compressed bucket not exactly filled");
      }
      if (info->extent.length == 0 ||
          info->extent.length >= uint64_t{info->count} * kEntrySize) {
        return Status::Internal("compressed extent not smaller than raw");
      }
    }
    entries += info->count;
    bytes += info->extent.length;
  }
  if (entries != entry_count_) return Status::Internal("entry count mismatch");
  if (bytes != allocated_bytes_) {
    return Status::Internal("allocated byte accounting mismatch");
  }
  if (packed_) WAVEKIT_RETURN_NOT_OK(CheckPacked());
  return Status::OK();
}

}  // namespace wavekit
