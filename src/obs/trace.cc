#include "obs/trace.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace wavekit {
namespace obs {
namespace {

/// The innermost span the calling thread is currently inside, or nullptr.
thread_local Span* t_current_span = nullptr;

}  // namespace

Span::Span(Tracer* tracer, std::string name, Span* parent)
    : tracer_(tracer), parent_(parent) {
  record_.name = std::move(name);
  record_.span_id = tracer_->next_span_id_.fetch_add(1, std::memory_order_relaxed);
  record_.trace_id = parent != nullptr ? parent->record_.trace_id : record_.span_id;
  record_.parent_span_id = parent != nullptr ? parent->record_.span_id : 0;
  start_us_ = tracer_->options_.clock->NowMicros();
  record_.start_us =
      start_us_ >= tracer_->epoch_us_ ? start_us_ - tracer_->epoch_us_ : 0;
  if (tracer_->options_.meter != nullptr) {
    io_start_ = tracer_->options_.meter->total();
  }
  t_current_span = this;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this == &other) return *this;
  Finish();
  tracer_ = other.tracer_;
  parent_ = other.parent_;
  record_ = std::move(other.record_);
  start_us_ = other.start_us_;
  io_start_ = other.io_start_;
  // The moved-from span may be the thread-current one (return-by-value from
  // StartSpan without elision); keep the pointer alive across the move.
  if (tracer_ != nullptr && t_current_span == &other) t_current_span = this;
  other.tracer_ = nullptr;
  return *this;
}

void Span::Finish() {
  if (tracer_ == nullptr) return;
  const uint64_t now_us = tracer_->options_.clock->NowMicros();
  record_.duration_us = now_us >= start_us_ ? now_us - start_us_ : 0;
  if (tracer_->options_.meter != nullptr) {
    const IoCounters delta = tracer_->options_.meter->total() - io_start_;
    record_.seeks = delta.seeks;
    record_.bytes_read = delta.bytes_read;
    record_.bytes_written = delta.bytes_written;
  }
  if (t_current_span == this) t_current_span = parent_;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->FinishSpan(std::move(record_));
}

Tracer::Tracer(Options options) : options_(options) {
  if (options_.clock == nullptr) options_.clock = RealClock::Instance();
  epoch_us_ = options_.clock->NowMicros();
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  if (options_.sample_rate >= 1.0) {
    sample_period_ = 1;
  } else if (options_.sample_rate <= 0.0) {
    sample_period_ = 0;
  } else {
    sample_period_ = static_cast<uint64_t>(
        std::llround(1.0 / options_.sample_rate));
    if (sample_period_ == 0) sample_period_ = 1;
  }
}

bool Tracer::SampleRoot() {
  const uint64_t n = roots_started_.fetch_add(1, std::memory_order_relaxed);
  if (sample_period_ == 0) return false;
  if (n % sample_period_ != 0) return false;
  roots_sampled_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Span Tracer::StartSpan(std::string_view name) {
  Span* parent = t_current_span;
  if (parent != nullptr && parent->tracer_ == this) {
    return Span(this, std::string(name), parent);
  }
  if (!SampleRoot()) return Span();
  return Span(this, std::string(name), nullptr);
}

void Tracer::FinishSpan(SpanRecord record) {
  spans_recorded_.fetch_add(1, std::memory_order_relaxed);
  if (options_.slow_op_threshold_us > 0 &&
      record.duration_us >= options_.slow_op_threshold_us) {
    WAVEKIT_LOG(Warning) << "slow op: " << record.name << " took "
                         << record.duration_us << "us (seeks=" << record.seeks
                         << " read=" << record.bytes_read
                         << "B written=" << record.bytes_written
                         << "B trace=" << record.trace_id << ")";
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < options_.ring_capacity) {
    ring_.push_back(std::move(record));
    ring_next_ = ring_.size() % options_.ring_capacity;
    ring_full_ = ring_.size() == options_.ring_capacity;
  } else {
    ring_[ring_next_] = std::move(record);
    ring_next_ = (ring_next_ + 1) % options_.ring_capacity;
  }
}

std::vector<SpanRecord> Tracer::CompletedSpans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // Oldest first: from the write cursor when the ring has wrapped.
  const size_t start = ring_full_ ? ring_next_ : 0;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  ring_next_ = 0;
  ring_full_ = false;
}

}  // namespace obs
}  // namespace wavekit
