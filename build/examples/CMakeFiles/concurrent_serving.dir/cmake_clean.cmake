file(REMOVE_RECURSE
  "CMakeFiles/concurrent_serving.dir/concurrent_serving.cc.o"
  "CMakeFiles/concurrent_serving.dir/concurrent_serving.cc.o.d"
  "concurrent_serving"
  "concurrent_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
