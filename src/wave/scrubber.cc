#include "wave/scrubber.h"

#include <algorithm>
#include <span>
#include <utility>

#include "index/entry.h"
#include "util/crc32c.h"
#include "util/macros.h"

namespace wavekit {

namespace {

struct PendingBucket {
  Value value;
  Extent live;     // the bucket's stored bytes (BucketInfo::stored_length())
  uint32_t crc = 0;
};

// Verifies one batch of buckets: reads all live prefixes in one ReadBatch
// (falling back to per-bucket reads when the batch fails, so one dead range
// cannot mask the verdict on its neighbours), then compares checksums.
// Returns true when the constituent was quarantined (caller stops).
bool VerifyBatch(const ConstituentIndex& index,
                 const std::vector<PendingBucket>& batch,
                 const ScrubOptions& options, ScrubReport* report,
                 std::vector<std::byte>* buffer) {
  uint64_t total = 0;
  for (const PendingBucket& bucket : batch) total += bucket.live.length;
  buffer->resize(static_cast<size_t>(total));

  std::vector<Extent> extents;
  extents.reserve(batch.size());
  for (const PendingBucket& bucket : batch) extents.push_back(bucket.live);

  Device* device =
      options.device != nullptr ? options.device : index.device();
  std::vector<bool> have(batch.size(), false);
  Status read = device->ReadBatch(extents, *buffer);
  if (read.ok()) {
    have.assign(batch.size(), true);
  } else {
    // Localize: re-read bucket by bucket so a transient failure only costs
    // the buckets it actually hit.
    uint64_t offset = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      std::span<std::byte> slice(buffer->data() + offset,
                                 static_cast<size_t>(batch[i].live.length));
      offset += batch[i].live.length;
      if (device->Read(batch[i].live.offset, slice).ok()) {
        have[i] = true;
      } else {
        ++report->read_errors;
      }
    }
  }

  uint64_t offset = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const PendingBucket& bucket = batch[i];
    const std::byte* bytes = buffer->data() + offset;
    offset += bucket.live.length;
    if (!have[i]) continue;
    report->bytes_read += bucket.live.length;
    const uint32_t actual =
        Crc32c(bytes, static_cast<size_t>(bucket.live.length));
    ++report->buckets_verified;
    if (options.integrity != nullptr) {
      options.integrity->verified_buckets.fetch_add(1,
                                                    std::memory_order_relaxed);
    }
    if (actual == bucket.crc) continue;
    // Bit rot. Quarantine the whole constituent: its extents share a device
    // region and a provenance, so one bad bucket condemns the object; the
    // heal path rebuilds it wholesale from segment data.
    ++report->mismatches;
    if (options.integrity != nullptr) {
      options.integrity->corruptions_detected.fetch_add(
          1, std::memory_order_relaxed);
    }
    index.Quarantine();
    report->quarantined.push_back(index.name());
    if (options.events != nullptr) {
      options.events->Append(
          obs::EventType::kCorruptionDetected, options.day,
          "scrub: checksum mismatch in bucket '" + bucket.value +
              "' of index " + index.name(),
          {{"index", index.name()},
           {"bucket", bucket.value},
           {"expected_crc", std::to_string(bucket.crc)},
           {"actual_crc", std::to_string(actual)}});
      options.events->Append(obs::EventType::kQuarantine, options.day,
                             index.name(), {{"source", "scrub"}});
    }
    return true;
  }
  return false;
}

}  // namespace

Status ScrubConstituent(const ConstituentIndex& index,
                        const ScrubOptions& options, ScrubReport* report) {
  if (report == nullptr) {
    return Status::InvalidArgument("ScrubConstituent needs a report");
  }
  if (!index.healthy()) {
    ++report->constituents_skipped;
    return Status::OK();
  }
  // Snapshot the directory metadata first (no device I/O), then verify in
  // bounded batches.
  std::vector<PendingBucket> all;
  all.reserve(index.distinct_values());
  WAVEKIT_RETURN_NOT_OK(
      index.ForEachBucket([&](const Value& value, const BucketInfo& info) {
        if (info.count == 0) return;
        all.push_back(PendingBucket{
            value, Extent{info.extent.offset, info.stored_length()},
            info.crc});
      }));

  const uint64_t batch_limit = std::max<uint64_t>(options.io_batch_bytes, 1);
  std::vector<PendingBucket> batch;
  std::vector<std::byte> buffer;
  uint64_t batch_bytes = 0;
  bool first_batch = true;
  auto flush = [&]() -> bool {
    if (batch.empty()) return false;
    if (!first_batch && options.pause_us_per_batch > 0) {
      Clock* clock =
          options.clock != nullptr ? options.clock : RealClock::Instance();
      clock->SleepUs(options.pause_us_per_batch);
    }
    first_batch = false;
    const bool quarantined = VerifyBatch(index, batch, options, report, &buffer);
    batch.clear();
    batch_bytes = 0;
    return quarantined;
  };
  for (PendingBucket& bucket : all) {
    batch_bytes += bucket.live.length;
    batch.push_back(std::move(bucket));
    if (batch_bytes >= batch_limit) {
      if (flush()) {
        // Quarantined mid-pass: the remaining buckets are moot (the heal
        // path rebuilds the whole constituent).
        ++report->constituents_scrubbed;
        return Status::OK();
      }
    }
  }
  flush();
  ++report->constituents_scrubbed;
  return Status::OK();
}

Result<ScrubReport> ScrubWave(const WaveIndex& wave,
                              const ScrubOptions& options) {
  ScrubReport report;
  if (options.events != nullptr) {
    options.events->Append(obs::EventType::kScrubStart, options.day, "",
                           {{"constituents",
                             std::to_string(wave.num_constituents())}});
  }
  for (const auto& constituent : wave.constituents()) {
    WAVEKIT_RETURN_NOT_OK(ScrubConstituent(*constituent, options, &report));
  }
  if (options.events != nullptr) {
    options.events->Append(
        obs::EventType::kScrubComplete, options.day, "",
        {{"buckets", std::to_string(report.buckets_verified)},
         {"bytes", std::to_string(report.bytes_read)},
         {"mismatches", std::to_string(report.mismatches)},
         {"read_errors", std::to_string(report.read_errors)}});
  }
  return report;
}

}  // namespace wavekit
