file(REMOVE_RECURSE
  "libwavekit.a"
)
