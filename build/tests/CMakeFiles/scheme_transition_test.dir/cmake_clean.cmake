file(REMOVE_RECURSE
  "CMakeFiles/scheme_transition_test.dir/wave/scheme_transition_test.cc.o"
  "CMakeFiles/scheme_transition_test.dir/wave/scheme_transition_test.cc.o.d"
  "scheme_transition_test"
  "scheme_transition_test.pdb"
  "scheme_transition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_transition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
