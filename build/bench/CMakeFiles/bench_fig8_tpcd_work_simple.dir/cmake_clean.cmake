file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_tpcd_work_simple.dir/bench_fig8_tpcd_work_simple.cc.o"
  "CMakeFiles/bench_fig8_tpcd_work_simple.dir/bench_fig8_tpcd_work_simple.cc.o.d"
  "bench_fig8_tpcd_work_simple"
  "bench_fig8_tpcd_work_simple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_tpcd_work_simple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
