#include "wave/reindex_scheme.h"

#include "util/macros.h"

namespace wavekit {

Status ReindexScheme::DoStart() {
  const std::vector<TimeSet> clusters =
      SplitWindow(config_.window, config_.num_indexes);
  for (size_t j = 0; j < clusters.size(); ++j) {
    WAVEKIT_ASSIGN_OR_RETURN(
        std::shared_ptr<ConstituentIndex> index,
        BuildIndex(clusters[j], "I" + std::to_string(j + 1), Phase::kStart,
                   static_cast<int>(j)));
    slots_.push_back(std::move(index));
  }
  RegisterSlots();
  return Status::OK();
}

Status ReindexScheme::DoTransition(const DayBatch& new_day) {
  const Day expired = new_day.day - config_.window;
  WAVEKIT_ASSIGN_OR_RETURN(size_t j, FindSlotContaining(expired));
  // Days[j] <- Days[j] - {expired} + {new}; rebuild the cluster from scratch.
  obs::Span span = TraceOp("REINDEX.rebuild_cluster");
  TimeSet days = slots_[j]->time_set();
  days.erase(expired);
  days.insert(new_day.day);
  WAVEKIT_ASSIGN_OR_RETURN(
      std::shared_ptr<ConstituentIndex> rebuilt,
      BuildIndex(days, slots_[j]->name(), Phase::kTransition,
                 static_cast<int>(j)));
  WAVEKIT_RETURN_NOT_OK(ReplaceSlot(j, std::move(rebuilt)));
  return Status::OK();
}

}  // namespace wavekit
