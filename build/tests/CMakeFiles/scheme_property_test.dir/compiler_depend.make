# Empty compiler generated dependencies file for scheme_property_test.
# This may be replaced when dependencies are built.
