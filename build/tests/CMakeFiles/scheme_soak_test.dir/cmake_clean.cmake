file(REMOVE_RECURSE
  "CMakeFiles/scheme_soak_test.dir/wave/scheme_soak_test.cc.o"
  "CMakeFiles/scheme_soak_test.dir/wave/scheme_soak_test.cc.o.d"
  "scheme_soak_test"
  "scheme_soak_test.pdb"
  "scheme_soak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_soak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
