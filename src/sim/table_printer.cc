#include "sim/table_printer.h"

#include <algorithm>

namespace wavekit {
namespace sim {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += render_row(headers_);
  std::string rule = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(widths[c] + 2, '-') + "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

}  // namespace sim
}  // namespace wavekit
