file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_service.dir/bench_micro_service.cc.o"
  "CMakeFiles/bench_micro_service.dir/bench_micro_service.cc.o.d"
  "bench_micro_service"
  "bench_micro_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
