file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_index.dir/bench_micro_index.cc.o"
  "CMakeFiles/bench_micro_index.dir/bench_micro_index.cc.o.d"
  "bench_micro_index"
  "bench_micro_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
