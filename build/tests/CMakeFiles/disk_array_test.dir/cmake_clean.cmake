file(REMOVE_RECURSE
  "CMakeFiles/disk_array_test.dir/storage/disk_array_test.cc.o"
  "CMakeFiles/disk_array_test.dir/storage/disk_array_test.cc.o.d"
  "disk_array_test"
  "disk_array_test.pdb"
  "disk_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
