// Whole-system simulation torture, as a tier-1 test: seed-reproducible
// episodes per scheme, the byte-identical-trace determinism self-check, and
// the mutation acceptance test — a deliberately injected window-invariant
// bug must be caught by the oracle cross-checks within a bounded number of
// episodes for every scheme.

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "testing/sim_harness.h"
#include "testing/test_env.h"

namespace wavekit {
namespace {

using testing::EpisodeResult;
using testing::Scenario;
using testing::SimConfig;
using testing::Simulator;

/// Scopes the deliberate window-invariant bug so a failing assertion cannot
/// leak it into later tests.
struct MutationGuard {
  MutationGuard() { internal::SetWindowInvariantMutationForTesting(true); }
  ~MutationGuard() { internal::SetWindowInvariantMutationForTesting(false); }
};

SimConfig Config(uint64_t episodes) {
  SimConfig config;
  config.seed = testing::TestSeedBase();
  config.episodes = episodes;
  config.tmp_dir = ::testing::TempDir();
  return config;
}

class SimTortureTest : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(SimTortureTest, SmokeEpisodesPass) {
  const Simulator simulator(Config(8));
  const EpisodeResult result = simulator.RunMany(GetParam());
  EXPECT_TRUE(result.status.ok())
      << result.status << "\nrepro: " << result.repro << "\ntrace:\n"
      << result.trace;
}

TEST_P(SimTortureTest, SameEpisodeProducesByteIdenticalTrace) {
  // The acceptance bar for determinism: running the same (seed, scheme,
  // episode) twice — fresh devices, fresh clock, fresh fault streams —
  // yields the exact same trace bytes. Episode 1 of the default seed
  // includes fault scheduling for several schemes; any nondeterminism
  // (wall-clock leakage, unseeded randomness, map iteration order) shows up
  // here as a diff.
  const Simulator simulator(Config(1));
  for (uint64_t episode = 0; episode < 4; ++episode) {
    const EpisodeResult first = simulator.RunEpisode(GetParam(), episode);
    const EpisodeResult second = simulator.RunEpisode(GetParam(), episode);
    ASSERT_EQ(first.status.ToString(), second.status.ToString());
    EXPECT_EQ(first.trace, second.trace) << "episode " << episode;
    EXPECT_EQ(first.restarts, second.restarts);
  }
}

TEST_P(SimTortureTest, DetectsInjectedWindowInvariantBug) {
  // Flip on the deliberate bug (Scheme::Transition silently skips every
  // third day's transition) and require the harness to catch it within 64
  // episodes. This is the proof the oracle cross-checks have teeth.
  const MutationGuard guard;
  const Simulator simulator(Config(64));
  const EpisodeResult result = simulator.RunMany(GetParam());
  ASSERT_FALSE(result.status.ok())
      << "window-invariant mutation survived 64 episodes undetected";
  EXPECT_FALSE(result.repro.empty());
  EXPECT_NE(result.trace.find("FAIL"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SimTortureTest,
                         ::testing::ValuesIn(kAllSchemeKinds),
                         [](const auto& info) {
                           std::string name = SchemeKindName(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

TEST(SimShrinkTest, ShrunkScenarioStillFailsAndIsSmaller) {
  const MutationGuard guard;
  const Simulator simulator(Config(16));
  const EpisodeResult failure = simulator.RunMany(SchemeKind::kDel);
  ASSERT_FALSE(failure.status.ok());
  const Scenario minimal =
      simulator.Shrink(SchemeKind::kDel, failure.scenario, /*max_runs=*/60);
  const EpisodeResult replay =
      simulator.RunScenario(SchemeKind::kDel, minimal, "shrunk");
  EXPECT_FALSE(replay.status.ok()) << "shrunk scenario no longer fails";
  EXPECT_LE(minimal.days, failure.scenario.days);
  EXPECT_LE(minimal.faults.size(), failure.scenario.faults.size());
}

TEST(SimReproTest, ReproCommandNamesSeedSchemeEpisode) {
  EXPECT_EQ(testing::ReproCommand(9, SchemeKind::kWata, 31),
            "sim_torture --seed=9 --scheme=WATA* --episode=31");
}

}  // namespace
}  // namespace wavekit
