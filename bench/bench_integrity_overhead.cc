// Integrity overhead: per-bucket CRC-32C verification on vs. off.
//
// PR 8 checksums every bucket's live prefix and verifies it at the trust
// boundary — whenever bytes cross the medium into the cache (probe, timed
// probe, scan, coalesced ReadBatch scan). Steady-state reads served from
// verified-resident cache bytes skip re-hashing (the background scrubber
// owns rot under resident blocks, reading the medium beneath the cache), so
// the bar is that end-to-end integrity costs < 5% of single-thread probe AND
// full-window scan throughput.
//
// Rounds alternate off/on (A/B interleaving) so clock drift and cache state
// hit both variants equally. `--smoke` runs a miniature configuration and
// skips the timing-based shape check (structural checks still run).
//
// Emits BENCH_integrity.json.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "util/macros.h"
#include "util/random.h"
#include "wave/wave_service.h"
#include "workload/netnews.h"

namespace wavekit {
namespace {

struct Config {
  bool smoke = false;
  int window = 7;
  int num_indexes = 3;
  int days = 10;              // transitions past the start window
  uint64_t records = 2000;    // articles per day (dense postings lists)
  int rounds = 6;             // timed rounds per variant, interleaved
  int probes_per_round = 20000;
  int scans_per_round = 8;
};

struct Variant {
  std::string name;
  std::unique_ptr<WaveService> service;
  double probe_seconds = 0;
  double scan_seconds = 0;
  uint64_t probes = 0;
  uint64_t scans = 0;
  uint64_t entries_scanned = 0;

  double probes_per_sec() const {
    return probe_seconds > 0 ? probes / probe_seconds : 0;
  }
  double scans_per_sec() const {
    return scan_seconds > 0 ? scans / scan_seconds : 0;
  }
};

Status BuildVariant(const Config& config, bool verify, Variant* variant) {
  WaveService::Options options;
  options.scheme = SchemeKind::kWata;
  options.config.window = config.window;
  options.config.num_indexes = config.num_indexes;
  options.config.verify_checksums = verify;
  // Large enough (32 MiB) for the whole index to stay resident: the bench
  // measures the steady state, where reads are cache hits and the verifying
  // variant serves trusted bytes (medium reads were verified when the blocks
  // were filled; the scrubber owns rot under resident blocks).
  options.cache_blocks = 8192;
  WAVEKIT_ASSIGN_OR_RETURN(variant->service, WaveService::Create(options));

  workload::NetnewsConfig netnews_config;
  netnews_config.articles_per_day = config.records;
  workload::NetnewsGenerator netnews(netnews_config);
  std::vector<DayBatch> first_window;
  for (Day d = 1; d <= config.window; ++d) {
    first_window.push_back(netnews.GenerateDay(d));
  }
  WAVEKIT_RETURN_NOT_OK(variant->service->Start(std::move(first_window)));
  for (Day d = config.window + 1;
       d <= config.window + static_cast<Day>(config.days); ++d) {
    WAVEKIT_RETURN_NOT_OK(variant->service->AdvanceDay(netnews.GenerateDay(d)));
  }
  return Status::OK();
}

/// One timed round: single-thread probes, then full-window segment scans.
Status RunRound(const Config& config, Variant* variant) {
  workload::NetnewsConfig netnews_config;
  netnews_config.articles_per_day = config.records;
  workload::NetnewsGenerator netnews(netnews_config);
  Rng rng(config.probes_per_round);  // same word sequence for every round
  std::vector<Entry> out;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < config.probes_per_round; ++i) {
    WAVEKIT_RETURN_NOT_OK(
        variant->service->IndexProbe(netnews.SampleWord(rng), &out));
  }
  variant->probe_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  variant->probes += static_cast<uint64_t>(config.probes_per_round);

  const DayRange window =
      DayRange::Window(variant->service->current_day(), config.window);
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < config.scans_per_round; ++i) {
    uint64_t visited = 0;
    WAVEKIT_RETURN_NOT_OK(variant->service->TimedSegmentScan(
        window, [&visited](const Value&, const Entry&) { ++visited; }));
    variant->entries_scanned += visited;
  }
  variant->scan_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  variant->scans += static_cast<uint64_t>(config.scans_per_round);
  return Status::OK();
}

double OverheadPct(double off_rate, double on_rate) {
  return off_rate > 0 ? (off_rate - on_rate) / off_rate * 100.0 : 0.0;
}

void WriteJson(const Config& config, const Variant& off, const Variant& on,
               double probe_overhead_pct, double scan_overhead_pct,
               uint64_t verified_buckets, uint64_t trusted_buckets) {
  std::ofstream out("BENCH_integrity.json");
  out << "{\n"
      << "  \"bench\": \"integrity_overhead\",\n"
      << "  \"smoke\": " << (config.smoke ? "true" : "false") << ",\n"
      << "  \"window\": " << config.window << ",\n"
      << "  \"days\": " << config.days << ",\n"
      << "  \"records_per_day\": " << config.records << ",\n"
      << "  \"rounds\": " << config.rounds << ",\n"
      << "  \"probes_per_variant\": " << off.probes << ",\n"
      << "  \"scans_per_variant\": " << off.scans << ",\n"
      << "  \"entries_per_scan\": "
      << (on.scans ? on.entries_scanned / on.scans : 0) << ",\n"
      << "  \"verify_off_probes_per_sec\": " << off.probes_per_sec() << ",\n"
      << "  \"verify_on_probes_per_sec\": " << on.probes_per_sec() << ",\n"
      << "  \"verify_off_scans_per_sec\": " << off.scans_per_sec() << ",\n"
      << "  \"verify_on_scans_per_sec\": " << on.scans_per_sec() << ",\n"
      << "  \"probe_overhead_pct\": " << probe_overhead_pct << ",\n"
      << "  \"scan_overhead_pct\": " << scan_overhead_pct << ",\n"
      << "  \"verified_buckets\": " << verified_buckets << ",\n"
      << "  \"trusted_buckets\": " << trusted_buckets << ",\n"
      << "  \"corruptions_detected\": "
      << on.service->Metrics().corruptions_detected << "\n"
      << "}\n";
}

}  // namespace
}  // namespace wavekit

int main(int argc, char** argv) {
  using namespace wavekit;
  Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) config.smoke = true;
  }
  if (config.smoke) {
    config.days = 4;
    config.records = 100;
    config.rounds = 2;
    config.probes_per_round = 500;
    config.scans_per_round = 4;
  }

  bench::Banner(
      "Integrity overhead: per-bucket CRC-32C verification on vs. off",
      "verification is one sequential CRC pass over bytes the query already "
      "read; probes and scans must stay within 5%");

  Variant off, on;
  off.name = "verify_off";
  on.name = "verify_on";
  Status status = BuildVariant(config, /*verify=*/false, &off);
  if (status.ok()) status = BuildVariant(config, /*verify=*/true, &on);
  if (!status.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Warmup (untimed): fault the caches for both variants.
  Config warmup = config;
  warmup.probes_per_round = config.probes_per_round / 4 + 1;
  warmup.scans_per_round = 1;
  status = RunRound(warmup, &off);
  if (status.ok()) status = RunRound(warmup, &on);
  off = Variant{off.name, std::move(off.service)};
  on = Variant{on.name, std::move(on.service)};

  for (int round = 0; status.ok() && round < config.rounds; ++round) {
    status = RunRound(config, &off);
    if (status.ok()) status = RunRound(config, &on);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "bench loop failed: %s\n", status.ToString().c_str());
    return 1;
  }

  const double probe_overhead =
      OverheadPct(off.probes_per_sec(), on.probes_per_sec());
  const double scan_overhead =
      OverheadPct(off.scans_per_sec(), on.scans_per_sec());
  const uint64_t verified = on.service->Metrics().checksum_verified_buckets;
  const uint64_t trusted = on.service->Metrics().checksum_trusted_buckets;

  std::printf("\n%-12s %12s %12s %14s %12s\n", "variant", "probes",
              "probes/sec", "scans/sec", "entries/scan");
  for (const Variant* v : {&off, &on}) {
    std::printf("%-12s %12llu %12.0f %14.2f %12llu\n", v->name.c_str(),
                static_cast<unsigned long long>(v->probes),
                v->probes_per_sec(), v->scans_per_sec(),
                static_cast<unsigned long long>(
                    v->scans ? v->entries_scanned / v->scans : 0));
  }
  std::printf("\n  verified buckets   : %llu\n",
              static_cast<unsigned long long>(verified));
  std::printf("  trusted buckets    : %llu\n",
              static_cast<unsigned long long>(trusted));
  std::printf("  probe overhead     : %.2f%%\n", probe_overhead);
  std::printf("  scan overhead      : %.2f%%\n", scan_overhead);

  WriteJson(config, off, on, probe_overhead, scan_overhead, verified, trusted);
  std::printf("Wrote BENCH_integrity.json\n");

  bench::ShapeChecks checks;
  checks.Check(on.entries_scanned == off.entries_scanned,
               "both variants scanned identical entry counts");
  checks.Check(verified > 0,
               "verifying variant actually checksummed buckets on the read "
               "path");
  checks.Check(trusted > 0,
               "steady-state reads were served from verified-resident cache "
               "bytes (trust-boundary skip engaged)");
  checks.Check(off.service->Metrics().checksum_verified_buckets == 0,
               "non-verifying variant skipped checksum work entirely");
  checks.Check(on.service->Metrics().corruptions_detected == 0,
               "clean run detected no corruption (no false positives)");
  if (!config.smoke) {
    checks.Check(probe_overhead < 5.0,
                 "checksum verification costs < 5% probe throughput");
    checks.Check(scan_overhead < 5.0,
                 "checksum verification costs < 5% scan throughput");
  }
  return checks.Finish();
}
