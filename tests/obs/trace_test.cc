#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "storage/device.h"
#include "util/logging.h"

namespace wavekit {
namespace obs {
namespace {

Tracer::Options AlwaysSample() {
  Tracer::Options options;
  options.sample_rate = 1.0;
  return options;
}

TEST(TracerTest, ZeroRateSpansAreInert) {
  Tracer tracer(Tracer::Options{});  // sample_rate = 0
  for (int i = 0; i < 5; ++i) {
    Span span = tracer.StartSpan("op");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(tracer.roots_started(), 5u);
  EXPECT_EQ(tracer.roots_sampled(), 0u);
  EXPECT_TRUE(tracer.CompletedSpans().empty());
}

TEST(TracerTest, FullRateRecordsEveryRoot) {
  Tracer tracer(AlwaysSample());
  for (int i = 0; i < 3; ++i) {
    Span span = tracer.StartSpan("op" + std::to_string(i));
  }
  EXPECT_EQ(tracer.roots_sampled(), 3u);
  const std::vector<SpanRecord> spans = tracer.CompletedSpans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "op0");
  EXPECT_EQ(spans[2].name, "op2");
  for (const SpanRecord& span : spans) {
    EXPECT_EQ(span.parent_span_id, 0u);
    EXPECT_EQ(span.trace_id, span.span_id);
  }
}

TEST(TracerTest, FractionalSamplingIsDeterministic) {
  Tracer::Options options;
  options.sample_rate = 0.25;
  Tracer tracer(options);
  int active = 0;
  for (int i = 0; i < 12; ++i) {
    Span span = tracer.StartSpan("op");
    if (span.active()) ++active;
  }
  // Every 4th root, starting with the first.
  EXPECT_EQ(active, 3);
  EXPECT_EQ(tracer.roots_started(), 12u);
  EXPECT_EQ(tracer.roots_sampled(), 3u);
}

TEST(TracerTest, ChildrenNestUnderSampledRoot) {
  Tracer tracer(AlwaysSample());
  uint64_t root_id = 0;
  uint64_t mid_id = 0;
  {
    Span root = tracer.StartSpan("root");
    root_id = root.span_id();
    {
      Span mid = tracer.StartSpan("mid");
      mid_id = mid.span_id();
      Span leaf = tracer.StartSpan("leaf");
      EXPECT_TRUE(leaf.active());
      EXPECT_EQ(leaf.trace_id(), root_id);
    }
  }
  const std::vector<SpanRecord> spans = tracer.CompletedSpans();
  ASSERT_EQ(spans.size(), 3u);  // innermost finishes first
  EXPECT_EQ(spans[0].name, "leaf");
  EXPECT_EQ(spans[0].parent_span_id, mid_id);
  EXPECT_EQ(spans[1].name, "mid");
  EXPECT_EQ(spans[1].parent_span_id, root_id);
  EXPECT_EQ(spans[2].name, "root");
  EXPECT_EQ(spans[2].parent_span_id, 0u);
  for (const SpanRecord& span : spans) EXPECT_EQ(span.trace_id, root_id);
}

TEST(TracerTest, SequentialSpansOnOneThreadAreSeparateRoots) {
  Tracer tracer(AlwaysSample());
  { Span a = tracer.StartSpan("a"); }
  { Span b = tracer.StartSpan("b"); }
  const std::vector<SpanRecord> spans = tracer.CompletedSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].trace_id, spans[1].trace_id);
  EXPECT_EQ(spans[1].parent_span_id, 0u);
}

TEST(TracerTest, RingEvictsOldestFirst) {
  Tracer::Options options;
  options.sample_rate = 1.0;
  options.ring_capacity = 4;
  Tracer tracer(options);
  for (int i = 0; i < 6; ++i) {
    Span span = tracer.StartSpan("op" + std::to_string(i));
  }
  const std::vector<SpanRecord> spans = tracer.CompletedSpans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "op2");  // op0, op1 evicted
  EXPECT_EQ(spans[3].name, "op5");
  EXPECT_EQ(tracer.spans_recorded(), 6u);

  tracer.Clear();
  EXPECT_TRUE(tracer.CompletedSpans().empty());
  EXPECT_EQ(tracer.spans_recorded(), 6u);  // counters survive Clear
}

TEST(TracerTest, SlowOpThresholdEmitsWarningLogLine) {
  Tracer::Options options;
  options.sample_rate = 1.0;
  options.slow_op_threshold_us = 1;
  Tracer tracer(options);
  std::string captured;
  SetLogSink([&captured](LogLevel level, std::string_view line) {
    if (level == LogLevel::kWarning) captured.append(line);
  });
  {
    Span span = tracer.StartSpan("glacial_op");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  SetLogSink(nullptr);
  EXPECT_NE(captured.find("slow op: glacial_op"), std::string::npos)
      << captured;
}

TEST(TracerTest, SpansAttributeMeterIoDeltas) {
  MemoryDevice memory(1 << 20);
  MeteredDevice device(&memory);
  Tracer::Options options;
  options.sample_rate = 1.0;
  options.meter = &device;
  Tracer tracer(options);

  std::vector<std::byte> buf(512, std::byte{1});
  ASSERT_TRUE(device.Write(0, buf).ok());  // before the span: not attributed
  {
    Span span = tracer.StartSpan("write_phase");
    ASSERT_TRUE(device.Write(4096, buf).ok());  // jump: one seek
    std::vector<std::byte> read_buf(128);
    ASSERT_TRUE(device.Read(0, read_buf).ok());  // jump back: another seek
  }
  const std::vector<SpanRecord> spans = tracer.CompletedSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].seeks, 2u);
  EXPECT_EQ(spans[0].bytes_written, 512u);
  EXPECT_EQ(spans[0].bytes_read, 128u);
}

TEST(TracerTest, DistinctTracersDoNotNest) {
  Tracer outer(AlwaysSample());
  Tracer inner(AlwaysSample());
  {
    Span a = outer.StartSpan("outer_op");
    Span b = inner.StartSpan("inner_op");  // different tracer: its own root
    EXPECT_EQ(b.trace_id(), b.span_id());
  }
  ASSERT_EQ(inner.CompletedSpans().size(), 1u);
  EXPECT_EQ(inner.CompletedSpans()[0].parent_span_id, 0u);
  // The outer tracer's thread-current state was restored for its own span.
  ASSERT_EQ(outer.CompletedSpans().size(), 1u);
  EXPECT_EQ(outer.CompletedSpans()[0].name, "outer_op");
}

}  // namespace
}  // namespace obs
}  // namespace wavekit
