#include "index/constituent_index.h"

#include <gtest/gtest.h>

#include <memory>

#include "testing/test_env.h"

namespace wavekit {
namespace {

using testing::MakeBatch;
using testing::MakeMixedBatch;
using testing::ReferenceIndex;

class ConstituentIndexTest : public ::testing::TestWithParam<DirectoryKind> {
 protected:
  ConstituentIndexTest() : store_(uint64_t{1} << 28) {}

  std::unique_ptr<ConstituentIndex> NewIndex(const std::string& name = "I") {
    ConstituentIndex::Options options;
    options.directory = GetParam();
    return std::make_unique<ConstituentIndex>(store_.device(),
                                              store_.allocator(), options,
                                              name);
  }

  static std::vector<Entry> Sorted(std::vector<Entry> entries) {
    ReferenceIndex::Sort(&entries);
    return entries;
  }

  Store store_;
};

TEST_P(ConstituentIndexTest, EmptyIndexBasics) {
  auto index = NewIndex();
  EXPECT_EQ(index->entry_count(), 0u);
  EXPECT_EQ(index->allocated_bytes(), 0u);
  EXPECT_EQ(index->distinct_values(), 0u);
  std::vector<Entry> out;
  ASSERT_OK(index->Probe("anything", &out));
  EXPECT_TRUE(out.empty());
  ASSERT_OK(index->CheckConsistency());
}

TEST_P(ConstituentIndexTest, AppendAndProbe) {
  auto index = NewIndex();
  std::vector<Entry> entries = {Entry{1, 5, 0}, Entry{2, 5, 1}};
  ASSERT_OK(index->AppendEntries("word", entries));
  EXPECT_EQ(index->entry_count(), 2u);
  EXPECT_EQ(index->distinct_values(), 1u);
  std::vector<Entry> out;
  ASSERT_OK(index->Probe("word", &out));
  EXPECT_EQ(Sorted(out), Sorted(entries));
  ASSERT_OK(index->CheckConsistency());
}

TEST_P(ConstituentIndexTest, AppendGrowsBucketContiguously) {
  auto index = NewIndex();
  ReferenceIndex reference;
  for (Day d = 1; d <= 20; ++d) {
    DayBatch batch = MakeBatch(d, {"hot"}, /*entries_per_value=*/3);
    reference.Add(batch);
    ASSERT_OK(index->AddBatch(batch));
    ASSERT_OK(index->CheckConsistency()) << "day " << d;
  }
  EXPECT_EQ(index->entry_count(), 60u);
  std::vector<Entry> out;
  ASSERT_OK(index->Probe("hot", &out));
  EXPECT_EQ(Sorted(out), reference.Probe("hot", kDayNegInf, kDayPosInf));
  // CONTIGUOUS slack exists but is bounded by g.
  EXPECT_GE(index->allocated_bytes(), index->live_bytes());
  EXPECT_LE(index->allocated_bytes(), 2 * index->live_bytes() + 64);
}

TEST_P(ConstituentIndexTest, TimedProbeFiltersByDay) {
  auto index = NewIndex();
  for (Day d = 1; d <= 10; ++d) {
    ASSERT_OK(index->AddBatch(MakeBatch(d, {"w"}, 2)));
  }
  std::vector<Entry> out;
  ASSERT_OK(index->TimedProbe("w", DayRange{3, 5}, &out));
  EXPECT_EQ(out.size(), 6u);
  for (const Entry& e : out) {
    EXPECT_GE(e.day, 3);
    EXPECT_LE(e.day, 5);
  }
  // Covering range skips filtering but returns the same entries.
  out.clear();
  ASSERT_OK(index->TimedProbe("w", DayRange{1, 10}, &out));
  EXPECT_EQ(out.size(), 20u);
}

TEST_P(ConstituentIndexTest, ScanVisitsEverything) {
  auto index = NewIndex();
  ReferenceIndex reference;
  for (Day d = 1; d <= 5; ++d) {
    DayBatch batch = MakeMixedBatch(d);
    reference.Add(batch);
    ASSERT_OK(index->AddBatch(batch));
  }
  std::vector<Entry> scanned;
  ASSERT_OK(index->Scan(
      [&](const Value&, const Entry& e) { scanned.push_back(e); }));
  EXPECT_EQ(Sorted(scanned), reference.ScanAll(kDayNegInf, kDayPosInf));
}

TEST_P(ConstituentIndexTest, TimedScanFilters) {
  auto index = NewIndex();
  ReferenceIndex reference;
  for (Day d = 1; d <= 8; ++d) {
    DayBatch batch = MakeMixedBatch(d);
    reference.Add(batch);
    ASSERT_OK(index->AddBatch(batch));
  }
  std::vector<Entry> scanned;
  ASSERT_OK(index->TimedScan(DayRange{4, 6}, [&](const Value&, const Entry& e) {
    scanned.push_back(e);
  }));
  EXPECT_EQ(Sorted(scanned), reference.ScanAll(4, 6));
}

TEST_P(ConstituentIndexTest, DeleteDaysRemovesAndShrinks) {
  auto index = NewIndex();
  ReferenceIndex reference;
  for (Day d = 1; d <= 12; ++d) {
    ASSERT_OK(index->AddBatch(MakeBatch(d, {"w", "day-only-" + std::to_string(d)}, 2)));
  }
  const uint64_t before_bytes = index->allocated_bytes();
  TimeSet expired;
  for (Day d = 1; d <= 9; ++d) expired.insert(d);
  ASSERT_OK(index->DeleteDays(expired));
  ASSERT_OK(index->CheckConsistency());
  // Only days 10..12 remain.
  EXPECT_EQ(index->entry_count(), 3u * 2u * 2u);
  EXPECT_EQ(index->time_set(), (TimeSet{10, 11, 12}));
  std::vector<Entry> out;
  ASSERT_OK(index->Probe("w", &out));
  for (const Entry& e : out) EXPECT_GE(e.day, 10);
  // Day-unique values for deleted days are fully gone from the directory.
  out.clear();
  ASSERT_OK(index->Probe("day-only-1", &out));
  EXPECT_TRUE(out.empty());
  EXPECT_LT(index->allocated_bytes(), before_bytes);
}

TEST_P(ConstituentIndexTest, DeleteEverythingEmptiesIndex) {
  auto index = NewIndex();
  ASSERT_OK(index->AddBatch(MakeMixedBatch(1)));
  ASSERT_OK(index->AddBatch(MakeMixedBatch(2)));
  ASSERT_OK(index->DeleteDays({1, 2}));
  EXPECT_EQ(index->entry_count(), 0u);
  EXPECT_EQ(index->distinct_values(), 0u);
  EXPECT_EQ(index->allocated_bytes(), 0u);
  ASSERT_OK(index->CheckConsistency());
}

TEST_P(ConstituentIndexTest, DeleteNoMatchIsNoOp) {
  auto index = NewIndex();
  ASSERT_OK(index->AddBatch(MakeMixedBatch(5)));
  const uint64_t entries = index->entry_count();
  ASSERT_OK(index->DeleteDays({99}));
  EXPECT_EQ(index->entry_count(), entries);
  ASSERT_OK(index->CheckConsistency());
}

TEST_P(ConstituentIndexTest, CloneIsDeepAndEquivalent) {
  auto index = NewIndex("orig");
  ReferenceIndex reference;
  for (Day d = 1; d <= 6; ++d) {
    DayBatch batch = MakeMixedBatch(d);
    reference.Add(batch);
    ASSERT_OK(index->AddBatch(batch));
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ConstituentIndex> clone,
                       index->Clone("copy"));
  ASSERT_OK(clone->CheckConsistency());
  EXPECT_EQ(clone->entry_count(), index->entry_count());
  EXPECT_EQ(clone->time_set(), index->time_set());
  EXPECT_EQ(clone->allocated_bytes(), index->allocated_bytes());
  // Mutating the clone leaves the original untouched.
  ASSERT_OK(clone->DeleteDays({1, 2, 3}));
  std::vector<Entry> out;
  ASSERT_OK(index->Probe("alpha", &out));
  EXPECT_EQ(Sorted(out), reference.Probe("alpha", kDayNegInf, kDayPosInf));
}

TEST_P(ConstituentIndexTest, DestroyReclaimsAllSpace) {
  auto index = NewIndex();
  const uint64_t free_before = store_.allocator()->free_bytes();
  for (Day d = 1; d <= 5; ++d) ASSERT_OK(index->AddBatch(MakeMixedBatch(d)));
  EXPECT_LT(store_.allocator()->free_bytes(), free_before);
  ASSERT_OK(index->Destroy());
  EXPECT_EQ(store_.allocator()->free_bytes(), free_before);
  EXPECT_EQ(index->entry_count(), 0u);
  // Destroy is idempotent.
  ASSERT_OK(index->Destroy());
}

TEST_P(ConstituentIndexTest, DestructorReclaimsSpace) {
  const uint64_t free_before = store_.allocator()->free_bytes();
  {
    auto index = NewIndex();
    ASSERT_OK(index->AddBatch(MakeMixedBatch(1)));
    EXPECT_LT(store_.allocator()->free_bytes(), free_before);
  }
  EXPECT_EQ(store_.allocator()->free_bytes(), free_before);
}

TEST_P(ConstituentIndexTest, IncrementalIndexIsNotPacked) {
  auto index = NewIndex();
  ASSERT_OK(index->AddBatch(MakeMixedBatch(1)));
  EXPECT_FALSE(index->packed());
}

TEST_P(ConstituentIndexTest, AuxPayloadRoundTrips) {
  auto index = NewIndex();
  DayBatch batch;
  batch.day = 1;
  Record r;
  r.record_id = 42;
  r.day = 1;
  r.values = {"k"};
  r.aux = {777};
  batch.records.push_back(r);
  ASSERT_OK(index->AddBatch(batch));
  std::vector<Entry> out;
  ASSERT_OK(index->Probe("k", &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].aux, 777u);
}

INSTANTIATE_TEST_SUITE_P(AllDirectories, ConstituentIndexTest,
                         ::testing::Values(DirectoryKind::kHash,
                                           DirectoryKind::kBTree),
                         [](const auto& info) {
                           return DirectoryKindName(info.param);
                         });

}  // namespace
}  // namespace wavekit
