// Named crash points for crash-consistency testing.
//
// Production code threads CrashPoints::Check("some.point") calls through its
// durability-critical sequences (e.g. the intent-journal protocol of
// wave/recovery.h). In normal operation every armed-count check is a single
// relaxed atomic load and the calls cost nothing. A torture test arms one
// point, drives the system until the point fires (the Check returns an
// "injected crash" IOError, exactly once), then simulates a restart and
// verifies recovery. Because the error surfaces through the ordinary Status
// channel, the code under test takes the same unwind path a real failure
// would — without longjmp or process kills.

#ifndef WAVEKIT_UTIL_CRASH_POINT_H_
#define WAVEKIT_UTIL_CRASH_POINT_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "util/status.h"

namespace wavekit {

/// Message prefix of every injected crash Status (see IsInjectedCrash).
inline constexpr std::string_view kInjectedCrashMarker = "injected crash";

/// \brief An IOError representing a simulated crash at `where`. Retry layers
/// must NOT retry these (a crashed process does not get another attempt);
/// they are recognized via IsInjectedCrash.
Status InjectedCrash(const std::string& where);

/// \brief True for statuses produced by InjectedCrash (possibly wrapped in
/// WithContext).
bool IsInjectedCrash(const Status& status);

/// \brief Process-wide registry of named crash points (test-only state;
/// thread-safe).
class CrashPoints {
 public:
  /// Arms `name`: the next Check(name) fires once and disarms it.
  static void Arm(const std::string& name);

  /// Disarms everything (call between torture iterations).
  static void Reset();

  /// Number of currently armed points.
  static size_t armed_count();

  /// Returns InjectedCrash(name) exactly once if `name` is armed, OK
  /// otherwise. The fast path (nothing armed anywhere) is one relaxed atomic
  /// load, so production call sites are free when no test is running.
  static Status Check(std::string_view name);
};

}  // namespace wavekit

#endif  // WAVEKIT_UTIL_CRASH_POINT_H_
