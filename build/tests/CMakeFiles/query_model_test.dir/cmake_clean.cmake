file(REMOVE_RECURSE
  "CMakeFiles/query_model_test.dir/model/query_model_test.cc.o"
  "CMakeFiles/query_model_test.dir/model/query_model_test.cc.o.d"
  "query_model_test"
  "query_model_test.pdb"
  "query_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
