file(REMOVE_RECURSE
  "CMakeFiles/public_api_test.dir/public_api_test.cc.o"
  "CMakeFiles/public_api_test.dir/public_api_test.cc.o.d"
  "public_api_test"
  "public_api_test.pdb"
  "public_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/public_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
