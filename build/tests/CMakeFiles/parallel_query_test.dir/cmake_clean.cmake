file(REMOVE_RECURSE
  "CMakeFiles/parallel_query_test.dir/wave/parallel_query_test.cc.o"
  "CMakeFiles/parallel_query_test.dir/wave/parallel_query_test.cc.o.d"
  "parallel_query_test"
  "parallel_query_test.pdb"
  "parallel_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
