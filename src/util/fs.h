// Durable small-file helpers: atomic replace via temp-file + fsync + rename
// + parent-directory fsync, and the matching durable remove. Used for the
// checkpoint and intent-journal metadata files whose crash-atomicity the
// recovery protocol (wave/recovery.h) depends on.

#ifndef WAVEKIT_UTIL_FS_H_
#define WAVEKIT_UTIL_FS_H_

#include <string>
#include <string_view>

#include "util/result.h"

namespace wavekit {

/// \brief Reads the whole file at `path`. NotFound if it does not exist,
/// IOError for any other failure.
Result<std::string> ReadFileToString(const std::string& path);

/// True iff `path` exists (any file type).
bool FileExists(const std::string& path);

/// \brief fsyncs the directory containing `path`, making a previous rename
/// or unlink of `path` durable.
Status SyncDirectoryOf(const std::string& path);

/// \brief Atomically and durably replaces `path` with `contents`:
/// write "<path>.tmp" + fsync, rename over `path`, fsync the parent
/// directory. A crash leaves either the old complete file or the new
/// complete file, never a mix.
///
/// When `crash_scope` is non-null, the crash points "<scope>.before_rename"
/// and "<scope>.after_rename" (util/crash_point.h) are checked around the
/// rename so torture tests can stop the protocol at both boundaries.
Status AtomicWriteFile(const std::string& path, std::string_view contents,
                       const char* crash_scope = nullptr);

/// \brief Durably removes `path`: unlink + parent-directory fsync. OK if the
/// file does not exist.
Status RemoveFileDurable(const std::string& path);

}  // namespace wavekit

#endif  // WAVEKIT_UTIL_FS_H_
