# Empty dependencies file for bench_table10_maintenance_simple.
# This may be replaced when dependencies are built.
