// Figure 7: total daily work for TPC-D (W = 100, 10 whole-window scans per
// day) vs n under PACKED shadow updating.

#include "bench/common.h"

namespace wavekit {
namespace bench {
namespace {

int Run() {
  Banner("Figure 7: TPC-D average total work per day vs n (W=100, packed "
         "shadowing)",
         "DEL (n=1) and WATA (n=2) perform best; REINDEX performs the worst "
         "(re-builds W/n = up to 100 days of 600 MB each, every day).");

  const model::CaseParams params = model::CaseParams::Tpcd();
  const int window = 100;
  const std::vector<int> ns = {1, 2, 4, 6, 8, 10};

  std::vector<std::string> headers = {"n"};
  for (SchemeKind kind : PaperSchemes()) headers.push_back(SchemeKindName(kind));
  sim::TablePrinter table(headers);
  table.SetTitle("Total work seconds/day (modeled, packed shadow updating)");

  std::map<SchemeKind, std::map<int, double>> series;
  for (int n : ns) {
    std::vector<std::string> row = {std::to_string(n)};
    for (SchemeKind kind : PaperSchemes()) {
      if (!SchemeValid(kind, n)) {
        row.push_back("-");
        continue;
      }
      const model::TotalWork work = TotalWorkOrDie(
          kind, UpdateTechniqueKind::kPackedShadow, params, window, n);
      series[kind][n] = work.total();
      row.push_back(Fmt(series[kind][n], 0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  ShapeChecks checks;
  bool reindex_worst = true;
  for (int n : ns) {
    for (SchemeKind kind : PaperSchemes()) {
      if (kind == SchemeKind::kReindex || !SchemeValid(kind, n)) continue;
      reindex_worst &= series[SchemeKind::kReindex][n] >= series[kind][n];
    }
  }
  checks.Check(reindex_worst, "REINDEX performs the worst");
  // DEL does the least work at every n (and is the paper's recommendation at
  // n = 1, where query response time is also minimal).
  bool del_best = true;
  for (int n : ns) {
    for (SchemeKind kind : PaperSchemes()) {
      if (kind == SchemeKind::kDel || !SchemeValid(kind, n)) continue;
      del_best &= series[SchemeKind::kDel][n] <= series[kind][n] * 1.001;
    }
  }
  checks.Check(del_best, "DEL performs the best at every n");
  // The scan stream dominates, so DEL's curve is nearly flat: even n = 1 is
  // within ~20% of its best point — hence the paper's DEL (n=1) pick for
  // the best query response time at negligible extra work.
  double del_min = 1e18;
  for (int n : ns) del_min = std::min(del_min, series[SchemeKind::kDel][n]);
  checks.Check(series[SchemeKind::kDel][1] <= 1.2 * del_min,
               "DEL (n=1) is within ~20% of the flat optimum: minimal work "
               "AND best response time");
  checks.Check(series[SchemeKind::kWata][2] <
                   series[SchemeKind::kReindex][2] / 3,
               "WATA (n=2) crushes the re-indexing schemes");
  return checks.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace wavekit

int main() { return wavekit::bench::Run(); }
