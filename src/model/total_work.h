// Total-work model (paper Section 5, measure 5): transition time +
// pre-transition time + the day's query stream executed serially.

#ifndef WAVEKIT_MODEL_TOTAL_WORK_H_
#define WAVEKIT_MODEL_TOTAL_WORK_H_

#include "model/maintenance_model.h"
#include "model/query_model.h"

namespace wavekit {
namespace model {

/// \brief The components of a day's total work, in modeled seconds.
struct TotalWork {
  double transition_seconds = 0;
  double precompute_seconds = 0;
  double query_seconds = 0;

  double total() const {
    return transition_seconds + precompute_seconds + query_seconds;
  }
};

/// Measures maintenance with a count-level run of the real scheme and adds
/// the Table 9 query model for the case study's daily query volume.
Result<TotalWork> EstimateTotalWork(SchemeKind scheme,
                                    UpdateTechniqueKind technique,
                                    const CaseParams& params, int window,
                                    int num_indexes);

}  // namespace model
}  // namespace wavekit

#endif  // WAVEKIT_MODEL_TOTAL_WORK_H_
