file(REMOVE_RECURSE
  "CMakeFiles/wave_index_test.dir/wave/wave_index_test.cc.o"
  "CMakeFiles/wave_index_test.dir/wave/wave_index_test.cc.o.d"
  "wave_index_test"
  "wave_index_test.pdb"
  "wave_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
