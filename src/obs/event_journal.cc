#include "obs/event_journal.h"

#include <cstdio>

namespace wavekit {
namespace obs {
namespace {

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kAdvanceStart:
      return "advance_start";
    case EventType::kAdvanceCommit:
      return "advance_commit";
    case EventType::kAdvanceRollback:
      return "advance_rollback";
    case EventType::kRetry:
      return "retry";
    case EventType::kDegradedEnter:
      return "degraded_enter";
    case EventType::kDegradedExit:
      return "degraded_exit";
    case EventType::kRecoveryRollForward:
      return "recovery_roll_forward";
    case EventType::kRecoveryRollBack:
      return "recovery_roll_back";
    case EventType::kServiceStart:
      return "service_start";
    case EventType::kScrubStart:
      return "scrub_start";
    case EventType::kScrubComplete:
      return "scrub_complete";
    case EventType::kCorruptionDetected:
      return "corruption_detected";
    case EventType::kQuarantine:
      return "quarantine";
    case EventType::kHealStart:
      return "heal_start";
    case EventType::kHealComplete:
      return "heal_complete";
  }
  return "?";
}

std::string Event::ToJson() const {
  std::string out = "{\"seq\": " + std::to_string(sequence) +
                    ", \"t_us\": " + std::to_string(timestamp_us) +
                    ", \"type\": \"" + EventTypeName(type) + "\"";
  if (day != 0) out += ", \"day\": " + std::to_string(day);
  if (!message.empty()) {
    out += ", \"message\": \"" + EscapeJson(message) + "\"";
  }
  for (const auto& [key, value] : fields) {
    out += ", \"" + EscapeJson(key) + "\": \"" + EscapeJson(value) + "\"";
  }
  out += "}";
  return out;
}

EventJournal::EventJournal(Options options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : RealClock::Instance()) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  ring_.reserve(options_.ring_capacity);
  if (!options_.jsonl_path.empty()) {
    sink_.open(options_.jsonl_path, std::ios::app);
    sink_failed_ = !sink_.is_open();
  }
}

void EventJournal::Append(
    EventType type, Day day, std::string message,
    std::vector<std::pair<std::string, std::string>> fields) {
  Event event;
  event.timestamp_us = clock_->NowMicros();
  event.type = type;
  event.day = day;
  event.message = std::move(message);
  event.fields = std::move(fields);

  std::lock_guard<std::mutex> lock(mutex_);
  event.sequence = next_sequence_++;
  if (sink_.is_open()) {
    sink_ << event.ToJson() << "\n";
    sink_.flush();
    if (!sink_.good()) sink_failed_ = true;
  }
  if (ring_.size() < options_.ring_capacity) {
    ring_.push_back(std::move(event));
    ring_next_ = ring_.size() % options_.ring_capacity;
    ring_full_ = ring_.size() == options_.ring_capacity;
  } else {
    ring_[ring_next_] = std::move(event);
    ring_next_ = (ring_next_ + 1) % options_.ring_capacity;
    ring_full_ = true;
  }
  total_appended_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<Event> EventJournal::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (!ring_full_) {
    out = ring_;
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
    }
  }
  return out;
}

bool EventJournal::sink_ok() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !sink_failed_;
}

std::string EventJournal::RenderJson() const {
  const std::vector<Event> events = Events();
  std::string out =
      "{\n  \"total_appended\": " + std::to_string(total_appended()) +
      ",\n  \"events\": [\n";
  for (size_t i = 0; i < events.size(); ++i) {
    out += "    " + events[i].ToJson();
    if (i + 1 < events.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}";
  return out;
}

}  // namespace obs
}  // namespace wavekit
