file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_directory.dir/bench_micro_directory.cc.o"
  "CMakeFiles/bench_micro_directory.dir/bench_micro_directory.cc.o.d"
  "bench_micro_directory"
  "bench_micro_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
