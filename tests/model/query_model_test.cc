#include "model/query_model.h"

#include <gtest/gtest.h>

namespace wavekit {
namespace model {
namespace {

TEST(QueryModelTest, ShapeDaysPerIndex) {
  QueryShape shape = ShapeOf(SchemeKind::kDel,
                             UpdateTechniqueKind::kSimpleShadow, 10, 2);
  EXPECT_DOUBLE_EQ(shape.days_per_index, 5.0);
  EXPECT_FALSE(shape.packed);
}

TEST(QueryModelTest, WataShapeIncludesResidual) {
  QueryShape wata =
      ShapeOf(SchemeKind::kWata, UpdateTechniqueKind::kSimpleShadow, 10, 4);
  QueryShape del =
      ShapeOf(SchemeKind::kDel, UpdateTechniqueKind::kSimpleShadow, 10, 4);
  EXPECT_GT(wata.days_per_index, del.days_per_index);
  // Y = 3 => average residual 1 day => 11/4 days per index.
  EXPECT_DOUBLE_EQ(wata.days_per_index, 11.0 / 4.0);
}

TEST(QueryModelTest, PackedShapes) {
  EXPECT_TRUE(ShapeOf(SchemeKind::kReindex, UpdateTechniqueKind::kInPlace, 10,
                      2)
                  .packed);
  EXPECT_TRUE(ShapeOf(SchemeKind::kDel, UpdateTechniqueKind::kPackedShadow,
                      10, 2)
                  .packed);
  EXPECT_FALSE(
      ShapeOf(SchemeKind::kDel, UpdateTechniqueKind::kInPlace, 10, 2).packed);
}

TEST(QueryModelTest, ProbeFormulaMatchesTable9) {
  // Table 9: Probe_idx * (seek + (W/n) * c / Trans).
  CaseParams p = CaseParams::Scam();
  QueryShape shape{/*days_per_index=*/3.5, /*packed=*/false};
  const double expected = 2 * (0.014 + 3.5 * 100 / 10e6);
  EXPECT_NEAR(TimedIndexProbeSeconds(p, shape, 2), expected, 1e-12);
}

TEST(QueryModelTest, ScanFormulaUsesPackedOrUnpackedBytes) {
  CaseParams p = CaseParams::Scam();
  QueryShape unpacked{3.5, false};
  QueryShape packed{3.5, true};
  EXPECT_GT(TimedSegmentScanSeconds(p, unpacked, 1),
            TimedSegmentScanSeconds(p, packed, 1));
  const double expected_packed = 0.014 + 3.5 * 56e6 / 10e6;
  EXPECT_NEAR(TimedSegmentScanSeconds(p, packed, 1), expected_packed, 1e-9);
}

TEST(QueryModelTest, DailyQuerySecondsGrowsWithN) {
  // SCAM probes touch all n indexes: more indexes => more seeks per probe.
  CaseParams p = CaseParams::Scam();
  const double n1 = DailyQuerySeconds(p, SchemeKind::kDel,
                                      UpdateTechniqueKind::kSimpleShadow, 7, 1);
  const double n7 = DailyQuerySeconds(p, SchemeKind::kDel,
                                      UpdateTechniqueKind::kSimpleShadow, 7, 7);
  EXPECT_GT(n7, n1);
}

TEST(QueryModelTest, TpcdScansDominatedByBytesNotSeeks) {
  // TPC-D: 10 scans over the window; the per-day byte volume dwarfs seeks,
  // so total scan time is roughly flat in n.
  CaseParams p = CaseParams::Tpcd();
  const double n1 = DailyQuerySeconds(p, SchemeKind::kDel,
                                      UpdateTechniqueKind::kSimpleShadow,
                                      100, 1);
  const double n10 = DailyQuerySeconds(p, SchemeKind::kDel,
                                       UpdateTechniqueKind::kSimpleShadow,
                                       100, 10);
  EXPECT_NEAR(n10 / n1, 1.0, 0.01);
}

TEST(QueryModelTest, WseQueryLoadIsHuge) {
  // 340k probes/day dominate WSE total work — the reason Figure 6 punishes
  // large n so hard.
  CaseParams p = CaseParams::Wse();
  const double q = DailyQuerySeconds(p, SchemeKind::kDel,
                                     UpdateTechniqueKind::kPackedShadow, 35, 5);
  EXPECT_GT(q, 5 * 340000 * 0.014 * 0.99);
}

}  // namespace
}  // namespace model
}  // namespace wavekit
