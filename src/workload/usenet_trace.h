// UsenetVolumeTrace: synthetic daily posting volumes shaped like the paper's
// Figure 2 (Usenet postings per day, September 1997: ~30k on Sundays up to
// ~110k mid-week) for the non-uniform data-size experiments (index length
// vs. index size, Figure 11).

#ifndef WAVEKIT_WORKLOAD_USENET_TRACE_H_
#define WAVEKIT_WORKLOAD_USENET_TRACE_H_

#include <cstdint>
#include <vector>

namespace wavekit {
namespace workload {

struct UsenetTraceConfig {
  /// Day-of-week of day 1 (0 = Monday ... 6 = Sunday). The paper's September
  /// 1997 started on a Monday.
  int first_weekday = 0;
  /// Multiplicative noise amplitude (fraction of the weekday mean).
  double noise = 0.08;
  /// Scale applied to the paper-magnitude volumes (1.0 => ~30k..110k);
  /// experiments use small scales so runs stay fast, the ratios they
  /// measure being scale-invariant.
  double scale = 1.0;
  uint64_t seed = 1997;
};

/// \brief Deterministic per-day posting counts with the weekly pattern of
/// Figure 2: strong weekdays (peaking mid-week), a dip on Saturday, and a
/// deep trough on Sunday, plus mild noise and a slow monthly swell.
class UsenetVolumeTrace {
 public:
  explicit UsenetVolumeTrace(UsenetTraceConfig config = {});

  /// Postings on `day` (1-based).
  uint64_t PostingsOn(int day) const;

  /// Convenience: postings for days 1..num_days.
  std::vector<uint64_t> Series(int num_days) const;

 private:
  UsenetTraceConfig config_;
};

}  // namespace workload
}  // namespace wavekit

#endif  // WAVEKIT_WORKLOAD_USENET_TRACE_H_
