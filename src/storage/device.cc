#include "storage/device.h"

#include <algorithm>
#include <cstring>

#include "util/macros.h"

namespace wavekit {

Status Device::ReadBatch(std::span<const Extent> extents,
                         std::span<std::byte> out) {
  size_t done = 0;
  for (const Extent& extent : extents) {
    if (extent.length > out.size() - done) {
      return Status::InvalidArgument(
          "ReadBatch output buffer smaller than the sum of extent lengths");
    }
    WAVEKIT_RETURN_NOT_OK(
        Read(extent.offset,
             out.subspan(done, static_cast<size_t>(extent.length))));
    done += static_cast<size_t>(extent.length);
  }
  if (done != out.size()) {
    return Status::InvalidArgument(
        "ReadBatch output buffer larger than the sum of extent lengths");
  }
  return Status::OK();
}

Status Device::WriteBatch(std::span<const Extent> extents,
                          std::span<const std::byte> data) {
  size_t done = 0;
  for (const Extent& extent : extents) {
    if (extent.length > data.size() - done) {
      return Status::InvalidArgument(
          "WriteBatch data buffer smaller than the sum of extent lengths");
    }
    WAVEKIT_RETURN_NOT_OK(
        Write(extent.offset,
              data.subspan(done, static_cast<size_t>(extent.length))));
    done += static_cast<size_t>(extent.length);
  }
  if (done != data.size()) {
    return Status::InvalidArgument(
        "WriteBatch data buffer larger than the sum of extent lengths");
  }
  return Status::OK();
}

MemoryDevice::MemoryDevice(uint64_t capacity)
    : capacity_(capacity),
      chunks_((capacity + kChunkBytes - 1) / kChunkBytes) {}

MemoryDevice::~MemoryDevice() {
  for (std::atomic<std::byte*>& chunk : chunks_) {
    delete[] chunk.load(std::memory_order_relaxed);
  }
}

Status MemoryDevice::CheckRange(uint64_t offset, size_t length) const {
  if (offset > capacity_ || length > capacity_ - offset) {
    return Status::OutOfRange(
        "device access [" + std::to_string(offset) + ", " +
        std::to_string(offset + length) + ") exceeds capacity " +
        std::to_string(capacity_));
  }
  return Status::OK();
}

std::byte* MemoryDevice::EnsureChunk(size_t chunk_index) {
  std::atomic<std::byte*>& slot = chunks_[chunk_index];
  std::byte* chunk = slot.load(std::memory_order_acquire);
  if (chunk != nullptr) return chunk;
  auto fresh = std::make_unique<std::byte[]>(kChunkBytes);  // zeroed
  std::byte* expected = nullptr;
  if (slot.compare_exchange_strong(expected, fresh.get(),
                                   std::memory_order_acq_rel)) {
    return fresh.release();
  }
  return expected;  // another writer installed first; ours is freed
}

Status MemoryDevice::Read(uint64_t offset, std::span<std::byte> out) {
  WAVEKIT_RETURN_NOT_OK(CheckRange(offset, out.size()));
  size_t done = 0;
  while (done < out.size()) {
    const uint64_t position = offset + done;
    const size_t chunk_index = static_cast<size_t>(position / kChunkBytes);
    const uint64_t within = position % kChunkBytes;
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(kChunkBytes - within, out.size() - done));
    const std::byte* chunk =
        chunks_[chunk_index].load(std::memory_order_acquire);
    if (chunk == nullptr) {
      std::memset(out.data() + done, 0, n);  // never written: zeros
    } else {
      std::memcpy(out.data() + done, chunk + within, n);
    }
    done += n;
  }
  return Status::OK();
}

Status MemoryDevice::Write(uint64_t offset, std::span<const std::byte> data) {
  WAVEKIT_RETURN_NOT_OK(CheckRange(offset, data.size()));
  if (data.empty()) return Status::OK();
  size_t done = 0;
  while (done < data.size()) {
    const uint64_t position = offset + done;
    const size_t chunk_index = static_cast<size_t>(position / kChunkBytes);
    const uint64_t within = position % kChunkBytes;
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(kChunkBytes - within, data.size() - done));
    std::memcpy(EnsureChunk(chunk_index) + within, data.data() + done, n);
    done += n;
  }
  const uint64_t end = offset + data.size();
  uint64_t seen = high_water_.load(std::memory_order_relaxed);
  while (seen < end && !high_water_.compare_exchange_weak(
                           seen, end, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

Status MemoryDevice::WriteBatch(std::span<const Extent> extents,
                                std::span<const std::byte> data) {
  // Validate everything up front so a bad batch fails before any bytes land,
  // then copy with a single high-water update for the whole batch.
  uint64_t total = 0;
  uint64_t max_end = 0;
  for (const Extent& extent : extents) {
    WAVEKIT_RETURN_NOT_OK(
        CheckRange(extent.offset, static_cast<size_t>(extent.length)));
    total += extent.length;
    max_end = std::max(max_end, extent.end());
  }
  if (total != data.size()) {
    return Status::InvalidArgument(
        "WriteBatch data buffer does not match the sum of extent lengths");
  }
  size_t consumed = 0;
  for (const Extent& extent : extents) {
    size_t done = 0;
    while (done < extent.length) {
      const uint64_t position = extent.offset + done;
      const size_t chunk_index = static_cast<size_t>(position / kChunkBytes);
      const uint64_t within = position % kChunkBytes;
      const size_t n = static_cast<size_t>(std::min<uint64_t>(
          kChunkBytes - within, extent.length - done));
      std::memcpy(EnsureChunk(chunk_index) + within,
                  data.data() + consumed + done, n);
      done += n;
    }
    consumed += static_cast<size_t>(extent.length);
  }
  uint64_t seen = high_water_.load(std::memory_order_relaxed);
  while (seen < max_end && !high_water_.compare_exchange_weak(
                               seen, max_end, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

}  // namespace wavekit
