// Table 12: the case-study parameters — printed as adopted from the paper,
// plus a re-derivation of the implementation-dependent parameters (S'/S and
// Add/Build behaviour under CONTIGUOUS) from wavekit's own index
// implementation, the way the paper derived them from its C implementation.

#include "bench/common.h"

#include "index/index_builder.h"
#include "storage/store.h"
#include "workload/netnews.h"
#include "workload/tpcd.h"

namespace wavekit {
namespace bench {
namespace {

struct Derived {
  double s_prime_over_s = 0;  // space overhead of incremental maintenance
  // Ratio of bytes moved by an incremental Add vs a packed Build of the
  // same day. At the paper's scale (tens of MB/day) transfer time dominates
  // seeks, so the byte ratio is the faithful analogue of Add/Build.
  double add_over_build = 0;
};

// Measures S'/S and Add/Build on wavekit's index for growth factor `g`:
// builds one packed index over `days` batches vs. growing an index
// incrementally day by day (deleting the expired day, DEL-style).
template <typename Generator>
Derived Measure(Generator& gen, double g, int days) {
  Store store;
  ConstituentIndex::Options options;
  options.growth.g = g;

  // Packed build over the window -> S.
  std::vector<DayBatch> batches;
  for (Day d = 1; d <= days; ++d) batches.push_back(gen.GenerateDay(d));
  std::vector<const DayBatch*> ptrs;
  for (const DayBatch& b : batches) ptrs.push_back(&b);
  store.device()->Reset();
  auto packed = IndexBuilder::BuildPacked(store.device(), store.allocator(),
                                          options, ptrs, "packed");
  if (!packed.ok()) packed.status().Abort("build");
  const double build_bytes =
      static_cast<double>(store.device()->total().bytes_transferred()) / days;
  const uint64_t s_bytes = packed.ValueOrDie()->allocated_bytes();

  // Incremental maintenance at steady state -> S' and Add.
  auto grown = std::make_shared<ConstituentIndex>(
      store.device(), store.allocator(), options, "grown");
  for (const DayBatch& b : batches) grown->AddBatch(b).Abort("add");
  // One more DEL-style rotation, metering the add.
  DayBatch next = gen.GenerateDay(days + 1);
  grown->DeleteDays({1}).Abort("delete");
  store.device()->Reset();
  grown->AddBatch(next).Abort("add");
  const double add_bytes =
      static_cast<double>(store.device()->total().bytes_transferred());
  const uint64_t s_prime_bytes = grown->allocated_bytes();

  Derived out;
  out.s_prime_over_s =
      static_cast<double>(s_prime_bytes) / static_cast<double>(s_bytes);
  out.add_over_build = add_bytes / build_bytes;
  return out;
}

int Run() {
  Banner("Table 12: case-study parameters",
         "SCAM/WSE: g=2 for Zipfian Netnews words (S'/S = 78.4/56 = 1.4, "
         "Add/Build = 3341/1686 = 2.0). TPC-D: g=1.08 for uniform SUPPKEYs "
         "(S'/S = 627/600 = 1.05, Add/Build = 11431/8406 = 1.36).");

  sim::TablePrinter params_table(
      {"parameter", "SCAM", "WSE", "TPC-D"});
  params_table.SetTitle("Adopted Table 12 values");
  const model::CaseParams scam = model::CaseParams::Scam();
  const model::CaseParams wse = model::CaseParams::Wse();
  const model::CaseParams tpcd = model::CaseParams::Tpcd();
  auto add = [&](const std::string& name, auto get) {
    params_table.AddRow({name, get(scam), get(wse), get(tpcd)});
  };
  add("seek", [](const auto& p) { return FormatSeconds(p.hardware.seek_seconds); });
  add("Trans", [](const auto& p) {
    return FormatBytes(static_cast<uint64_t>(p.hardware.transfer_bytes_per_second)) + "/s";
  });
  add("S", [](const auto& p) { return FormatBytes(static_cast<uint64_t>(p.packed_day_bytes)); });
  add("S'", [](const auto& p) { return FormatBytes(static_cast<uint64_t>(p.unpacked_day_bytes)); });
  add("c", [](const auto& p) { return FormatBytes(static_cast<uint64_t>(p.bucket_bytes_per_day)); });
  add("Probe_num", [](const auto& p) { return FormatCount(static_cast<uint64_t>(p.probes_per_day)); });
  add("Scan_num", [](const auto& p) { return FormatCount(static_cast<uint64_t>(p.scans_per_day)); });
  add("g", [](const auto& p) { return FormatDouble(p.growth_factor, 2); });
  add("Build", [](const auto& p) { return FormatCount(static_cast<uint64_t>(p.build_seconds)) + " s"; });
  add("Add", [](const auto& p) { return FormatCount(static_cast<uint64_t>(p.add_seconds)) + " s"; });
  add("Del", [](const auto& p) { return FormatCount(static_cast<uint64_t>(p.delete_seconds)) + " s"; });
  add("W", [](const auto& p) { return std::to_string(p.window); });
  params_table.Print(std::cout);

  // Re-derive S'/S from wavekit's implementation.
  workload::NetnewsConfig netnews_config;
  netnews_config.articles_per_day = 120;
  netnews_config.words_per_article = 25;
  workload::NetnewsGenerator netnews(netnews_config);
  const Derived scam_derived = Measure(netnews, 2.0, 7);

  workload::TpcdConfig tpcd_config;
  tpcd_config.rows_per_day = 3000;
  tpcd_config.num_suppliers = 400;
  workload::TpcdGenerator tpcd_gen(tpcd_config);
  const Derived tpcd_derived = Measure(tpcd_gen, 1.08, 7);

  sim::TablePrinter derived_table(
      {"implementation parameter", "paper", "wavekit (derived)"});
  derived_table.SetTitle("\nRe-derived implementation parameters");
  derived_table.AddRow({"SCAM S'/S (g=2, Zipfian)", Fmt(78.4 / 56.0, 2),
                        Fmt(scam_derived.s_prime_over_s, 2)});
  derived_table.AddRow({"SCAM Add/Build (g=2)", Fmt(3341.0 / 1686.0, 2),
                        Fmt(scam_derived.add_over_build, 2)});
  derived_table.AddRow({"TPC-D S'/S (g=1.08, uniform)", Fmt(627.0 / 600.0, 2),
                        Fmt(tpcd_derived.s_prime_over_s, 2)});
  derived_table.AddRow({"TPC-D Add/Build (g=1.08)", Fmt(11431.0 / 8406.0, 2),
                        Fmt(tpcd_derived.add_over_build, 2)});
  derived_table.Print(std::cout);

  ShapeChecks checks;
  checks.Check(scam_derived.s_prime_over_s > 1.1 &&
                   scam_derived.s_prime_over_s < 2.0,
               "g=2 on Zipfian data wastes noticeable but bounded space "
               "(paper: S'/S = 1.4)");
  checks.Check(tpcd_derived.s_prime_over_s < scam_derived.s_prime_over_s,
               "g=1.08 on uniform keys wastes much less space than g=2 on "
               "Zipfian words (paper: 1.05 vs 1.4)");
  checks.Check(scam_derived.add_over_build > 1.0,
               "incremental Add costs more than packed Build (CONTIGUOUS "
               "bucket copying), the premise of REINDEX's advantage");
  return checks.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace wavekit

int main() { return wavekit::bench::Run(); }
