#include "obs/latency_device.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "storage/device.h"
#include "storage/metered_device.h"
#include "util/clock.h"

namespace wavekit {
namespace obs {
namespace {

class LatencyDeviceTest : public ::testing::Test {
 protected:
  LatencyDeviceTest()
      : memory_(1 << 20),
        latency_(&memory_, MakeOptions(&clock_)),
        meter_(&latency_) {
    latency_.set_phase_source(&meter_);
  }

  static LatencyTrackingDevice::Options MakeOptions(Clock* clock) {
    LatencyTrackingDevice::Options options;
    options.clock = clock;
    return options;
  }

  SimClock clock_;
  MemoryDevice memory_;
  LatencyTrackingDevice latency_;
  MeteredDevice meter_;
  std::vector<std::byte> buf_ = std::vector<std::byte>(512);
};

TEST_F(LatencyDeviceTest, OpKindNames) {
  EXPECT_STREQ(OpKindName(OpKind::kRead), "read");
  EXPECT_STREQ(OpKindName(OpKind::kWrite), "write");
  EXPECT_STREQ(OpKindName(OpKind::kReadBatch), "read_batch");
  EXPECT_STREQ(OpKindName(OpKind::kWriteBatch), "write_batch");
  EXPECT_STREQ(OpKindName(OpKind::kSync), "sync");
}

TEST_F(LatencyDeviceTest, RecordsEachOpUnderTheMeterPhase) {
  meter_.set_phase(Phase::kQuery);
  ASSERT_TRUE(meter_.Read(0, buf_).ok());
  ASSERT_TRUE(meter_.Read(4096, buf_).ok());

  meter_.set_phase(Phase::kTransition);
  ASSERT_TRUE(meter_.Write(0, buf_).ok());
  const std::vector<Extent> extents = {{0, 512}, {4096, 512}};
  std::vector<std::byte> batch(1024);
  ASSERT_TRUE(meter_.ReadBatch(extents, batch).ok());
  ASSERT_TRUE(meter_.WriteBatch(extents, batch).ok());
  ASSERT_TRUE(meter_.Sync().ok());

  EXPECT_EQ(latency_.histogram(OpKind::kRead, Phase::kQuery).count(), 2u);
  EXPECT_EQ(latency_.histogram(OpKind::kRead, Phase::kTransition).count(), 0u);
  EXPECT_EQ(latency_.histogram(OpKind::kWrite, Phase::kTransition).count(), 1u);
  EXPECT_EQ(latency_.histogram(OpKind::kReadBatch, Phase::kTransition).count(),
            1u);
  EXPECT_EQ(latency_.histogram(OpKind::kWriteBatch, Phase::kTransition).count(),
            1u);
  EXPECT_EQ(latency_.histogram(OpKind::kSync, Phase::kTransition).count(), 1u);
}

TEST_F(LatencyDeviceTest, SimClockDurationsClampToOneMicro) {
  // The SimClock does not advance during an op, so every recorded duration
  // clamps to the 1 us minimum — deterministic, never zero.
  meter_.set_phase(Phase::kQuery);
  ASSERT_TRUE(meter_.Read(0, buf_).ok());
  const Histogram h = latency_.histogram(OpKind::kRead, Phase::kQuery);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 1u);
  EXPECT_DOUBLE_EQ(latency_.observed_seconds(Phase::kQuery), 1e-6);
}

TEST_F(LatencyDeviceTest, ObservedSecondsSumsAllOpsInPhase) {
  meter_.set_phase(Phase::kPrecompute);
  ASSERT_TRUE(meter_.Read(0, buf_).ok());
  ASSERT_TRUE(meter_.Write(0, buf_).ok());
  ASSERT_TRUE(meter_.Sync().ok());
  // Three ops, 1 us each under the frozen SimClock.
  EXPECT_DOUBLE_EQ(latency_.observed_seconds(Phase::kPrecompute), 3e-6);
  EXPECT_DOUBLE_EQ(latency_.observed_seconds(Phase::kQuery), 0.0);
}

TEST_F(LatencyDeviceTest, NoPhaseSourceAttributesToOther) {
  MemoryDevice memory(1 << 16);
  LatencyTrackingDevice bare(&memory, MakeOptions(&clock_));
  std::vector<std::byte> buf(64);
  ASSERT_TRUE(bare.Read(0, buf).ok());
  EXPECT_EQ(bare.histogram(OpKind::kRead, Phase::kOther).count(), 1u);
}

TEST_F(LatencyDeviceTest, ResetZeroesEveryCell) {
  meter_.set_phase(Phase::kQuery);
  ASSERT_TRUE(meter_.Read(0, buf_).ok());
  ASSERT_TRUE(meter_.Sync().ok());
  latency_.Reset();
  EXPECT_EQ(latency_.histogram(OpKind::kRead, Phase::kQuery).count(), 0u);
  EXPECT_EQ(latency_.histogram(OpKind::kSync, Phase::kQuery).count(), 0u);
  EXPECT_DOUBLE_EQ(latency_.observed_seconds(Phase::kQuery), 0.0);
}

TEST_F(LatencyDeviceTest, ErrorsStillRecordAndPropagate) {
  // Read past capacity: the inner device fails, the latency is still
  // recorded (a slow failure is still time spent), and the status surfaces.
  meter_.set_phase(Phase::kQuery);
  const Status status = meter_.Read(memory_.capacity(), buf_);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(latency_.histogram(OpKind::kRead, Phase::kQuery).count(), 1u);
}

TEST_F(LatencyDeviceTest, CapacityForwards) {
  EXPECT_EQ(latency_.capacity(), memory_.capacity());
}

}  // namespace
}  // namespace obs
}  // namespace wavekit
