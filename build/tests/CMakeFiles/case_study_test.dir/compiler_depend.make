# Empty compiler generated dependencies file for case_study_test.
# This may be replaced when dependencies are built.
