// Experiment configuration and results for the paper-reproduction benches.

#ifndef WAVEKIT_SIM_EXPERIMENT_H_
#define WAVEKIT_SIM_EXPERIMENT_H_

#include <vector>

#include "model/params.h"
#include "util/day.h"
#include "wave/scheme.h"
#include "workload/netnews.h"
#include "workload/query_workload.h"
#include "workload/tpcd.h"

namespace wavekit {
namespace sim {

enum class WorkloadKind { kNetnews, kTpcd };

/// \brief Everything one experiment run needs.
struct ExperimentConfig {
  SchemeKind scheme = SchemeKind::kDel;
  SchemeConfig scheme_config;

  WorkloadKind workload = WorkloadKind::kNetnews;
  workload::NetnewsConfig netnews;
  workload::TpcdConfig tpcd;
  /// Optional per-day record-count overrides (1-based day -> trace[day-1]);
  /// used for non-uniform volume experiments (Figure 11).
  std::vector<uint64_t> volume_trace;

  /// Transitions executed after Start.
  int days_to_run = 30;
  /// Transitions excluded from the aggregates (cycle warm-up).
  int warmup_days = 0;

  workload::QueryMix query_mix;
  CostModel cost;
  /// Paper parameters used to price the operation log and the query model.
  model::CaseParams paper = model::CaseParams::Scam();

  uint64_t device_capacity = uint64_t{4} << 30;
  /// Disks in the array (paper Section 8). With > 1, constituents are placed
  /// slot-stable across disks and the per-day stats additionally report the
  /// PARALLEL elapsed times (slowest disk).
  int num_disks = 1;
};

/// \brief Per-day measurements: simulation (metered device) and model
/// (priced op log + Table 9) side by side.
struct DayStats {
  Day day = 0;

  double sim_transition_seconds = 0;
  double sim_precompute_seconds = 0;
  double sim_query_seconds = 0;

  /// Multi-disk parallel elapsed times (slowest disk); equal to the serial
  /// times above when num_disks == 1.
  double sim_maintenance_parallel_seconds = 0;
  double sim_query_parallel_seconds = 0;

  double model_transition_seconds = 0;
  double model_precompute_seconds = 0;
  double model_query_seconds = 0;

  uint64_t operation_bytes = 0;    ///< Constituents + temporaries, steady.
  uint64_t constituent_bytes = 0;
  uint64_t temporary_bytes = 0;
  uint64_t transition_extra_bytes = 0;  ///< Transient peak above steady.

  int wave_length_days = 0;  ///< Total days indexed (soft window residual).
  uint64_t wave_entries = 0;

  double sim_total_work() const {
    return sim_transition_seconds + sim_precompute_seconds +
           sim_query_seconds;
  }
  double model_total_work() const {
    return model_transition_seconds + model_precompute_seconds +
           model_query_seconds;
  }
};

/// \brief Averages/maxima over the measured (post-warm-up) days.
struct Aggregates {
  double avg_sim_transition_seconds = 0;
  double avg_sim_precompute_seconds = 0;
  double avg_sim_query_seconds = 0;
  double avg_sim_total_work = 0;
  double avg_sim_maintenance_parallel_seconds = 0;
  double avg_sim_query_parallel_seconds = 0;

  double avg_model_transition_seconds = 0;
  double avg_model_precompute_seconds = 0;
  double avg_model_query_seconds = 0;
  double avg_model_total_work = 0;

  double avg_operation_bytes = 0;
  uint64_t max_operation_bytes = 0;
  double avg_transition_extra_bytes = 0;
  uint64_t max_transition_extra_bytes = 0;

  double avg_wave_length_days = 0;
  int max_wave_length_days = 0;
  uint64_t max_wave_entries = 0;
};

struct ExperimentResult {
  std::vector<DayStats> days;
  Aggregates aggregates;
};

}  // namespace sim
}  // namespace wavekit

#endif  // WAVEKIT_SIM_EXPERIMENT_H_
