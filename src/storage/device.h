// Device: the byte-addressable "disk" wavekit indexes live on.
//
// The paper's evaluation charges each index operation for disk seeks and
// block transfers (seek = 14 ms, Trans = 10 MB/s in Table 12). wavekit
// reproduces that substrate with an in-memory device (MemoryDevice) wrapped
// by a MeteredDevice (see metered_device.h) that records exactly the seek and
// transfer pattern an on-disk deployment would incur. This keeps experiments
// deterministic and laptop-fast while preserving the I/O behaviour the
// paper's comparisons depend on.

#ifndef WAVEKIT_STORAGE_DEVICE_H_
#define WAVEKIT_STORAGE_DEVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/status.h"

namespace wavekit {

/// \brief A contiguous byte range on a device.
struct Extent {
  uint64_t offset = 0;
  uint64_t length = 0;

  uint64_t end() const { return offset + length; }
  bool empty() const { return length == 0; }
  bool operator==(const Extent& other) const = default;
};

/// \brief Abstract random-access byte store.
///
/// Reads and writes must lie entirely within [0, capacity()). Thread safety
/// is per-implementation: MemoryDevice supports concurrent reads and
/// concurrent writes to DISJOINT ranges; decorators document their own
/// guarantees (see synchronized_device.h and sharded_cached_device.h for the
/// serving stack).
class Device {
 public:
  virtual ~Device() = default;

  /// Reads `out.size()` bytes starting at `offset` into `out`.
  virtual Status Read(uint64_t offset, std::span<std::byte> out) = 0;

  /// Writes `data` starting at `offset`.
  virtual Status Write(uint64_t offset, std::span<const std::byte> data) = 0;

  /// Reads every extent of `extents`, packing the results back to back into
  /// `out` (whose size must equal the sum of extent lengths). The default
  /// implementation loops over Read; decorators override it to amortize
  /// per-call overhead (one lock acquisition / one metering round per batch
  /// instead of per extent). Adjacent extents should be pre-coalesced by the
  /// caller so a sequential run costs one seek.
  virtual Status ReadBatch(std::span<const Extent> extents,
                           std::span<std::byte> out);

  /// Writes every extent of `extents`, consuming `data` back to back (its
  /// size must equal the sum of extent lengths). Mirror of ReadBatch: the
  /// default implementation loops over Write; decorators override it to
  /// amortize per-call overhead (one lock acquisition / one metering round
  /// per batch). Adjacent extents should be pre-coalesced by the caller so a
  /// sequential run costs one seek. Not atomic: on failure a SUBSET of the
  /// extents may have been written (backends may reorder extents for fewer
  /// seeks; per-extent writes keep the torn-prefix model of Write).
  virtual Status WriteBatch(std::span<const Extent> extents,
                            std::span<const std::byte> data);

  /// ReadBatch with verified-residency tracking, for checksumming readers
  /// that verify bytes at the trust boundary — the backing medium — rather
  /// than on every logical read. On return `*all_trusted` is true only when
  /// EVERY byte was served from cache blocks previously promoted by
  /// MarkVerified (so each byte was checksum-verified since it last crossed
  /// the medium boundary, and the caller may skip re-verifying the batch);
  /// `*fill_token` receives an opaque token to pass back to MarkVerified.
  /// The default — correct for every device that reads the medium directly —
  /// reports nothing as trusted, so callers always verify.
  virtual Status ReadBatchTracked(std::span<const Extent> extents,
                                  std::span<std::byte> out, bool* all_trusted,
                                  uint64_t* fill_token) {
    *all_trusted = false;
    *fill_token = 0;
    return ReadBatch(extents, out);
  }

  /// Records that the caller checksum-verified every byte of `extents` as
  /// read by the ReadBatchTracked call that returned `fill_token`. Caching
  /// devices use this to mark exactly those bytes of still-resident blocks
  /// as trusted; blocks (re)filled after the token was issued are never
  /// promoted, so a concurrent refill cannot launder unverified medium bytes
  /// into the trusted set. No-op by default.
  virtual void MarkVerified(std::span<const Extent> extents,
                            uint64_t fill_token) {
    (void)extents;
    (void)fill_token;
  }

  /// Flushes all written data to stable storage. A no-op (OK) for volatile
  /// devices; durable backends (storage/file_device.h and friends) override
  /// it, and decorators forward it, so the durable-maintenance checkpoint
  /// path (wave/recovery.h) can make bucket bytes durable BEFORE the
  /// checkpoint rename commits them — and see the failure if the disk
  /// cannot.
  virtual Status Sync() { return Status::OK(); }

  /// Total addressable bytes.
  virtual uint64_t capacity() const = 0;
};

/// \brief Heap-backed Device with lazily grown storage.
///
/// Storage is materialized in fixed-size chunks on first write, so a large
/// nominal capacity costs only a (tiny) chunk table until used. Reads of
/// never-written bytes return zeros.
///
/// Thread safety: any number of concurrent Reads, concurrent with Writes to
/// byte ranges that do not overlap them (wavekit's shadow-update discipline:
/// writers fill fresh extents readers never touch). Overlapping concurrent
/// Read/Write of the same bytes is a data race, exactly as on a real disk
/// with no I/O scheduler.
class MemoryDevice : public Device {
 public:
  /// Bytes per lazily allocated chunk. Entries are 16-byte aligned, so
  /// chunk boundaries never split an entry's 8-byte words across writers.
  static constexpr uint64_t kChunkBytes = uint64_t{1} << 20;  // 1 MiB

  /// `capacity` defaults to 16 GiB — effectively unbounded for experiments
  /// while still exercising out-of-range error paths in tests.
  explicit MemoryDevice(uint64_t capacity = uint64_t{16} << 30);
  ~MemoryDevice() override;

  Status Read(uint64_t offset, std::span<std::byte> out) override;
  Status Write(uint64_t offset, std::span<const std::byte> data) override;
  Status WriteBatch(std::span<const Extent> extents,
                    std::span<const std::byte> data) override;
  uint64_t capacity() const override { return capacity_; }

  /// High-water mark of writes (one past the last byte ever written).
  uint64_t materialized_bytes() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  Status CheckRange(uint64_t offset, size_t length) const;

  // Returns the chunk backing `chunk_index`, allocating (zeroed) on first
  // write. Lock-free: losers of the install race free their copy.
  std::byte* EnsureChunk(size_t chunk_index);

  uint64_t capacity_;
  // One atomic pointer per chunk; null until first written. The table itself
  // is sized once at construction and never reallocated, so readers can
  // index it without synchronization.
  std::vector<std::atomic<std::byte*>> chunks_;
  std::atomic<uint64_t> high_water_{0};
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_DEVICE_H_
