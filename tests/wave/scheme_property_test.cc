// Property tests swept over scheme x update technique x (W, n): after every
// transition, queries must equal a brute-force reference over exactly the
// window (or the soft window for WATA), all structural invariants must hold,
// and technique-specific guarantees (packedness, REINDEX++'s one-add
// transition) must be met.

#include <gtest/gtest.h>

#include <tuple>

#include "testing/test_env.h"
#include "wave/scheme_factory.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;
using testing::ReferenceIndex;

using PropertyParam = std::tuple<SchemeKind, UpdateTechniqueKind, int, int>;

class SchemePropertyTest : public ::testing::TestWithParam<PropertyParam> {
 protected:
  SchemePropertyTest() : store_(uint64_t{1} << 28) {}

  SchemeKind scheme_kind() const { return std::get<0>(GetParam()); }
  UpdateTechniqueKind technique() const { return std::get<1>(GetParam()); }
  int window() const { return std::get<2>(GetParam()); }
  int num_indexes() const { return std::get<3>(GetParam()); }

  bool ConfigIsValid() const {
    if (num_indexes() > window()) return false;
    if ((scheme_kind() == SchemeKind::kWata ||
         scheme_kind() == SchemeKind::kRata) &&
        num_indexes() < 2) {
      return false;
    }
    return true;
  }

  void StartScheme() {
    SchemeConfig config;
    config.window = window();
    config.num_indexes = num_indexes();
    config.technique = technique();
    auto made = MakeScheme(scheme_kind(), Env(), config);
    ASSERT_TRUE(made.ok()) << made.status();
    scheme_ = std::move(made).ValueOrDie();
    std::vector<DayBatch> first;
    for (Day d = 1; d <= window(); ++d) {
      DayBatch batch = MakeMixedBatch(d);
      batches_by_day_[d] = batch;
      first.push_back(std::move(batch));
    }
    ASSERT_OK(scheme_->Start(std::move(first)));
  }

  void Advance() {
    const Day d = scheme_->current_day() + 1;
    DayBatch batch = MakeMixedBatch(d);
    batches_by_day_[d] = batch;
    ASSERT_OK(scheme_->Transition(std::move(batch)));
  }

  SchemeEnv Env() {
    return SchemeEnv{store_.device(), store_.allocator(), &day_store_};
  }

  // Brute-force reference over days [lo, hi].
  ReferenceIndex ReferenceOver(Day lo, Day hi) const {
    ReferenceIndex ref;
    for (const auto& [day, batch] : batches_by_day_) {
      if (lo <= day && day <= hi) ref.Add(batch);
    }
    return ref;
  }

  void CheckQueriesMatchReference() {
    const Day d = scheme_->current_day();
    const Day lo = d - window() + 1;
    ReferenceIndex ref = ReferenceOver(lo, d);
    const DayRange range = DayRange::Window(d, window());
    // Timed probes for shared values and one day-unique value.
    for (const Value& value :
         {Value("alpha"), Value("beta"), Value("gamma"),
          Value("day" + std::to_string(d)),
          Value("day" + std::to_string(lo)),
          Value("day" + std::to_string(lo - 1))}) {
      std::vector<Entry> got;
      ASSERT_OK(scheme_->wave().TimedIndexProbe(range, value, &got));
      ReferenceIndex::Sort(&got);
      ASSERT_EQ(got, ref.Probe(value, lo, d))
          << "value '" << value << "' at day " << d;
    }
    // Timed scan over the window.
    std::vector<Entry> scanned;
    ASSERT_OK(scheme_->wave().TimedSegmentScan(
        range, [&](const Value&, const Entry& e) { scanned.push_back(e); }));
    ReferenceIndex::Sort(&scanned);
    ASSERT_EQ(scanned, ref.ScanAll(lo, d)) << "scan at day " << d;
    // A narrower timed scan (half the window) must also filter correctly.
    const Day mid = lo + window() / 2;
    scanned.clear();
    ASSERT_OK(scheme_->wave().TimedSegmentScan(
        DayRange{mid, d},
        [&](const Value&, const Entry& e) { scanned.push_back(e); }));
    ReferenceIndex::Sort(&scanned);
    ASSERT_EQ(scanned, ref.ScanAll(mid, d));
  }

  void CheckStructuralInvariants() {
    for (const auto& c : scheme_->wave().constituents()) {
      ASSERT_OK(c->CheckConsistency()) << c->name();
    }
    for (const ConstituentIndex* t : scheme_->TemporaryIndexes()) {
      ASSERT_OK(t->CheckConsistency()) << t->name();
    }
    if (scheme_->hard_window()) {
      ASSERT_EQ(scheme_->WaveLength(), window());
    }
    // Packed guarantees: REINDEX is always packed; under packed shadow
    // updating, every constituent ends each day packed.
    if (scheme_kind() == SchemeKind::kReindex ||
        technique() == UpdateTechniqueKind::kPackedShadow) {
      for (const auto& c : scheme_->wave().constituents()) {
        ASSERT_OK(c->CheckPacked()) << c->name();
      }
    }
  }

  Store store_;
  DayStore day_store_;
  std::map<Day, DayBatch> batches_by_day_;
  std::unique_ptr<Scheme> scheme_;
};

TEST_P(SchemePropertyTest, QueriesMatchBruteForceEveryDay) {
  if (!ConfigIsValid()) GTEST_SKIP();
  StartScheme();
  CheckStructuralInvariants();
  const int days = 3 * window() + 2;
  for (int i = 0; i < days; ++i) {
    Advance();
    CheckStructuralInvariants();
    CheckQueriesMatchReference();
  }
}

TEST_P(SchemePropertyTest, SpaceIsBoundedAcrossCycles) {
  if (!ConfigIsValid()) GTEST_SKIP();
  StartScheme();
  // Steady-state allocation must not creep upward cycle over cycle (no
  // leaks): compare allocation at the same cycle phase, two cycles apart.
  const int cycle = window();
  for (int i = 0; i < cycle; ++i) Advance();
  const uint64_t after_one_cycle = store_.allocator()->allocated_bytes();
  for (int i = 0; i < 2 * cycle; ++i) Advance();
  const uint64_t after_three_cycles = store_.allocator()->allocated_bytes();
  // Identical workload per day => identical footprint (tiny wiggle room for
  // day-number-dependent value strings).
  EXPECT_LE(after_three_cycles, after_one_cycle * 11 / 10 + 4096);
}

TEST_P(SchemePropertyTest, ReindexPlusPlusTransitionIsOneAdd) {
  if (!ConfigIsValid()) GTEST_SKIP();
  if (scheme_kind() != SchemeKind::kReindexPlusPlus) GTEST_SKIP();
  if (technique() == UpdateTechniqueKind::kPackedShadow) {
    GTEST_SKIP() << "packing before promotion adds a smart copy";
  }
  StartScheme();
  for (int i = 0; i < 2 * window(); ++i) {
    Advance();
    int transition_adds = 0;
    int transition_days = 0;
    for (const OpRecord& r :
         scheme_->op_log().RecordsAtDay(scheme_->current_day())) {
      if (r.phase != Phase::kPrecompute) {
        if (r.kind == OpKind::kAddToIndex) {
          ++transition_adds;
          transition_days += r.op_days;
        }
        ASSERT_NE(r.kind, OpKind::kBuildIndex)
            << "REINDEX++ must never build on the critical path";
        ASSERT_NE(r.kind, OpKind::kCopyIndex);
      }
    }
    ASSERT_EQ(transition_adds, 1);
    ASSERT_EQ(transition_days, 1)
        << "the transition critical path is exactly one day's AddToIndex";
  }
}

std::string ParamName(
    const ::testing::TestParamInfo<PropertyParam>& info) {
  std::string name = SchemeKindName(std::get<0>(info.param));
  name += "_";
  name += UpdateTechniqueKindName(std::get<1>(info.param));
  name += "_W" + std::to_string(std::get<2>(info.param));
  name += "_n" + std::to_string(std::get<3>(info.param));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchemePropertyTest,
    ::testing::Combine(
        ::testing::Values(SchemeKind::kDel, SchemeKind::kReindex,
                          SchemeKind::kReindexPlus,
                          SchemeKind::kReindexPlusPlus, SchemeKind::kWata,
                          SchemeKind::kRata),
        ::testing::Values(UpdateTechniqueKind::kInPlace,
                          UpdateTechniqueKind::kSimpleShadow,
                          UpdateTechniqueKind::kPackedShadow),
        ::testing::Values(6, 10),   // W
        ::testing::Values(1, 2, 3, 5)),  // n
    ParamName);

// Larger windows with uneven splits (13/2, 13/5) and n == W.
INSTANTIATE_TEST_SUITE_P(
    LargerWindows, SchemePropertyTest,
    ::testing::Combine(
        ::testing::Values(SchemeKind::kDel, SchemeKind::kReindex,
                          SchemeKind::kReindexPlus,
                          SchemeKind::kReindexPlusPlus, SchemeKind::kWata,
                          SchemeKind::kRata),
        ::testing::Values(UpdateTechniqueKind::kSimpleShadow),
        ::testing::Values(13),        // W
        ::testing::Values(2, 5, 13)),  // n
    ParamName);

// Uneven cluster sizes (W not divisible by n) and the degenerate W == n.
INSTANTIATE_TEST_SUITE_P(
    EdgeShapes, SchemePropertyTest,
    ::testing::Combine(
        ::testing::Values(SchemeKind::kDel, SchemeKind::kReindex,
                          SchemeKind::kReindexPlus,
                          SchemeKind::kReindexPlusPlus, SchemeKind::kWata,
                          SchemeKind::kRata),
        ::testing::Values(UpdateTechniqueKind::kSimpleShadow),
        ::testing::Values(7),        // W
        ::testing::Values(2, 4, 7)),  // n: 7/2, 7/4 uneven; n == W
    ParamName);

}  // namespace
}  // namespace wavekit
