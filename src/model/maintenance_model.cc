#include "model/maintenance_model.h"

#include "storage/store.h"
#include "util/macros.h"
#include "wave/scheme_factory.h"

namespace wavekit {
namespace model {
namespace {

DayBatch TinyBatch(Day day) {
  DayBatch batch;
  batch.day = day;
  Record record;
  record.record_id = static_cast<uint64_t>(day);
  record.day = day;
  record.values = {"v" + std::to_string(day % 3)};
  batch.records.push_back(std::move(record));
  return batch;
}

}  // namespace

Result<MaintenanceCost> MeasureMaintenance(SchemeKind scheme_kind,
                                           UpdateTechniqueKind technique,
                                           const CaseParams& params, int window,
                                           int num_indexes, int warmup_days,
                                           int measure_days) {
  // Defaults: warm up long enough to pass every scheme's initial cycle, then
  // average over several full cycles so cycle-boundary work amortizes the
  // same way the paper's averages do.
  if (warmup_days <= 0) warmup_days = 2 * window;
  if (measure_days <= 0) measure_days = 6 * window;

  Store store;
  DayStore day_store;
  SchemeConfig config;
  config.window = window;
  config.num_indexes = num_indexes;
  config.technique = technique;
  if (scheme_kind == SchemeKind::kKnownBoundWata) {
    config.size_bound_entries = static_cast<uint64_t>(window);
  }
  SchemeEnv env{store.device(), store.allocator(), &day_store};
  WAVEKIT_ASSIGN_OR_RETURN(std::unique_ptr<Scheme> scheme,
                           MakeScheme(scheme_kind, env, config));

  std::vector<DayBatch> first;
  first.reserve(static_cast<size_t>(window));
  for (Day d = 1; d <= window; ++d) first.push_back(TinyBatch(d));
  WAVEKIT_RETURN_NOT_OK(scheme->Start(std::move(first)));

  const Day measure_from = window + warmup_days;
  const Day last_day = measure_from + measure_days;
  for (Day d = window + 1; d <= last_day; ++d) {
    WAVEKIT_RETURN_NOT_OK(scheme->Transition(TinyBatch(d)));
  }
  OpEvaluator evaluator(params);
  return evaluator.AverageOverDays(scheme->op_log(), measure_from, last_day);
}

std::optional<MaintenanceCost> ClosedFormMaintenance(
    SchemeKind scheme, UpdateTechniqueKind technique, const CaseParams& params,
    int window, int num_indexes) {
  const double x = static_cast<double>(window) / num_indexes;
  const double y = num_indexes > 1
                       ? static_cast<double>(window - 1) / (num_indexes - 1)
                       : window;
  const double build = params.build_seconds;
  const double add = params.add_seconds;
  const double del = params.delete_seconds;
  const double cp = params.CpSeconds();
  const double smcp = params.SmcpSeconds();

  MaintenanceCost cost;
  if (technique == UpdateTechniqueKind::kSimpleShadow) {
    switch (scheme) {
      case SchemeKind::kDel:
        // Table 10: pre = X*CP + Del, trans = Add.
        cost.precompute_seconds = x * cp + del;
        cost.transition_seconds = add;
        return cost;
      case SchemeKind::kReindex:
        // Table 10: pre = 0, trans = X*Build.
        cost.transition_seconds = x * build;
        return cost;
      case SchemeKind::kReindexPlus:
        // Per cycle of X days: one Build of the new cluster seed; copies of
        // Temp at sizes 1,2,..,X-1 plus the final X-1-day copy; adds of the
        // new day and the shrinking DaysToAdd tail.
        cost.transition_seconds =
            (build + cp * (x * (x - 1) / 2.0 + x - 1) +
             add * (2 * x - 2 + (x - 2) * (x - 1) / 2.0)) /
            x;
        return cost;
      case SchemeKind::kReindexPlusPlus:
        // Transition is always one Add (then a free rename). Ladder rebuild
        // plus daily rung top-ups run as pre-computation.
        cost.transition_seconds = add;
        cost.precompute_seconds =
            (build + cp * (x - 2) * (x - 1) / 2.0 +
             add * ((x - 2) + x * (x - 1) / 2.0)) /
            x;
        return cost;
      case SchemeKind::kWata:
        // Per cycle of Y days: one 1-day Build (throw-away day) and Y-1
        // shadowed adds to I_last (its size ramping 1..Y-1).
        cost.transition_seconds =
            (build + cp * y * (y - 1) / 2.0 + (y - 1) * add) / y;
        return cost;
      case SchemeKind::kRata:
        cost.transition_seconds =
            (build + cp * y * (y - 1) / 2.0 + (y - 1) * add) / y;
        cost.precompute_seconds =
            (build + cp * (y - 2) * (y - 1) / 2.0 + (y - 2) * add) / y;
        return cost;
      default:
        return std::nullopt;
    }
  }
  if (technique == UpdateTechniqueKind::kPackedShadow) {
    switch (scheme) {
      case SchemeKind::kDel:
        // Table 11: pre = 0, trans = X*SMCP + Build.
        cost.transition_seconds = x * smcp + build;
        return cost;
      case SchemeKind::kReindex:
        cost.transition_seconds = x * build;
        return cost;
      default:
        return std::nullopt;
    }
  }
  if (technique == UpdateTechniqueKind::kInPlace) {
    switch (scheme) {
      case SchemeKind::kDel:
        // Like simple shadow minus the copy.
        cost.precompute_seconds = del;
        cost.transition_seconds = add;
        return cost;
      case SchemeKind::kReindex:
        cost.transition_seconds = x * build;
        return cost;
      case SchemeKind::kWata:
        cost.transition_seconds = (build + (y - 1) * add) / y;
        return cost;
      default:
        return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace model
}  // namespace wavekit
