#include "storage/device.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "testing/test_env.h"

namespace wavekit {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string AsString(const std::vector<std::byte>& bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

TEST(MemoryDeviceTest, WriteThenRead) {
  MemoryDevice device(1024);
  auto data = Bytes("hello");
  ASSERT_OK(device.Write(100, data));
  std::vector<std::byte> out(5);
  ASSERT_OK(device.Read(100, out));
  EXPECT_EQ(AsString(out), "hello");
}

TEST(MemoryDeviceTest, UnwrittenBytesReadZero) {
  MemoryDevice device(1024);
  std::vector<std::byte> out(4, std::byte{0xFF});
  ASSERT_OK(device.Read(0, out));
  for (std::byte b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(MemoryDeviceTest, PartiallyMaterializedRead) {
  MemoryDevice device(1024);
  ASSERT_OK(device.Write(0, Bytes("abc")));
  std::vector<std::byte> out(6, std::byte{0xFF});
  ASSERT_OK(device.Read(0, out));
  EXPECT_EQ(AsString(out), std::string("abc\0\0\0", 6));
}

TEST(MemoryDeviceTest, RejectsOutOfRangeAccess) {
  MemoryDevice device(16);
  std::vector<std::byte> buf(8);
  EXPECT_TRUE(device.Write(10, buf).IsOutOfRange());
  EXPECT_TRUE(device.Read(10, buf).IsOutOfRange());
  EXPECT_TRUE(device.Read(17, std::span<std::byte>()).IsOutOfRange());
  // Exactly at the edge is fine.
  EXPECT_OK(device.Write(8, buf));
  EXPECT_OK(device.Read(8, buf));
}

TEST(MemoryDeviceTest, LazyMaterialization) {
  MemoryDevice device(uint64_t{1} << 30);
  EXPECT_EQ(device.materialized_bytes(), 0u);
  ASSERT_OK(device.Write(1000, Bytes("x")));
  EXPECT_EQ(device.materialized_bytes(), 1001u);
  EXPECT_EQ(device.capacity(), uint64_t{1} << 30);
}

TEST(MemoryDeviceTest, EmptyAccessesAreOk) {
  MemoryDevice device(16);
  EXPECT_OK(device.Write(4, std::span<const std::byte>()));
  EXPECT_OK(device.Read(4, std::span<std::byte>()));
}

TEST(MemoryDeviceTest, OverwriteReplaces) {
  MemoryDevice device(64);
  ASSERT_OK(device.Write(0, Bytes("aaaa")));
  ASSERT_OK(device.Write(1, Bytes("bb")));
  std::vector<std::byte> out(4);
  ASSERT_OK(device.Read(0, out));
  EXPECT_EQ(AsString(out), "abba");
}

}  // namespace
}  // namespace wavekit
