#include "index/hash_directory.h"

namespace wavekit {

const char* DirectoryKindName(DirectoryKind kind) {
  switch (kind) {
    case DirectoryKind::kHash:
      return "hash";
    case DirectoryKind::kBTree:
      return "btree";
  }
  return "?";
}

BucketInfo* HashDirectory::Find(const Value& value) {
  auto it = map_.find(value);
  return it == map_.end() ? nullptr : &it->second;
}

const BucketInfo* HashDirectory::Find(const Value& value) const {
  auto it = map_.find(value);
  return it == map_.end() ? nullptr : &it->second;
}

Status HashDirectory::Insert(const Value& value, const BucketInfo& info) {
  auto [it, inserted] = map_.emplace(value, info);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("directory already maps value '" + value + "'");
  }
  return Status::OK();
}

Status HashDirectory::Remove(const Value& value) {
  if (map_.erase(value) == 0) {
    return Status::NotFound("directory has no value '" + value + "'");
  }
  return Status::OK();
}

void HashDirectory::ForEach(
    const std::function<void(const Value&, const BucketInfo&)>& fn) const {
  for (const auto& [value, info] : map_) fn(value, info);
}

std::unique_ptr<Directory> HashDirectory::CloneEmpty() const {
  return std::make_unique<HashDirectory>();
}

}  // namespace wavekit
