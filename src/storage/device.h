// Device: the byte-addressable "disk" wavekit indexes live on.
//
// The paper's evaluation charges each index operation for disk seeks and
// block transfers (seek = 14 ms, Trans = 10 MB/s in Table 12). wavekit
// reproduces that substrate with an in-memory device (MemoryDevice) wrapped
// by a MeteredDevice (see metered_device.h) that records exactly the seek and
// transfer pattern an on-disk deployment would incur. This keeps experiments
// deterministic and laptop-fast while preserving the I/O behaviour the
// paper's comparisons depend on.

#ifndef WAVEKIT_STORAGE_DEVICE_H_
#define WAVEKIT_STORAGE_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace wavekit {

/// \brief A contiguous byte range on a device.
struct Extent {
  uint64_t offset = 0;
  uint64_t length = 0;

  uint64_t end() const { return offset + length; }
  bool empty() const { return length == 0; }
  bool operator==(const Extent& other) const = default;
};

/// \brief Abstract random-access byte store.
///
/// Reads and writes must lie entirely within [0, capacity()). Implementations
/// are not required to be thread-safe; wavekit serializes device access.
class Device {
 public:
  virtual ~Device() = default;

  /// Reads `out.size()` bytes starting at `offset` into `out`.
  virtual Status Read(uint64_t offset, std::span<std::byte> out) = 0;

  /// Writes `data` starting at `offset`.
  virtual Status Write(uint64_t offset, std::span<const std::byte> data) = 0;

  /// Total addressable bytes.
  virtual uint64_t capacity() const = 0;
};

/// \brief Heap-backed Device with lazily grown storage.
///
/// Storage is only materialized up to the highest byte ever written, so a
/// large nominal capacity costs nothing until used. Reads of never-written
/// bytes return zeros.
class MemoryDevice : public Device {
 public:
  /// `capacity` defaults to 16 GiB — effectively unbounded for experiments
  /// while still exercising out-of-range error paths in tests.
  explicit MemoryDevice(uint64_t capacity = uint64_t{16} << 30);

  Status Read(uint64_t offset, std::span<std::byte> out) override;
  Status Write(uint64_t offset, std::span<const std::byte> data) override;
  uint64_t capacity() const override { return capacity_; }

  /// Bytes actually materialized (high-water mark of writes).
  uint64_t materialized_bytes() const { return bytes_.size(); }

 private:
  Status CheckRange(uint64_t offset, size_t length) const;

  uint64_t capacity_;
  std::vector<std::byte> bytes_;
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_DEVICE_H_
