#include "testing/sim_executor.h"

#include <algorithm>
#include <utility>

namespace wavekit {
namespace testing {

void SimExecutor::Submit(std::function<void()> task) {
  std::lock_guard<std::mutex> lock(mutex_);
  queue_.push_back(std::move(task));
}

bool SimExecutor::RunOne() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    // The seeded pick IS the interleaving: same seed, same schedule. Only
    // the `width_` oldest tasks are candidates — a real width_-worker pool
    // cannot complete a task it has not yet picked up.
    const size_t candidates = std::min(queue_.size(), width_);
    const size_t i = static_cast<size_t>(rng_.Uniform(candidates));
    task = std::move(queue_[i]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    ++tasks_run_;
  }
  task();  // outside the lock: the task may Submit reentrantly
  return true;
}

size_t SimExecutor::RunUntilIdle() {
  size_t ran = 0;
  while (RunOne()) ++ran;
  return ran;
}

size_t SimExecutor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

int SimExecutor::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(queue_.size());
}

}  // namespace testing
}  // namespace wavekit
