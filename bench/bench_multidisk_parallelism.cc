// Section 8 extension: wave indexes over multiple disks. "If n matches the
// number of disks, indexing can be parallelized easily. Also building new
// constituent indices on separate disks avoids contention. Hence wave
// indices will have several advantages over monolithic indices when we use
// multiple disks."
//
// This bench runs REINDEX (n = 4) over a 4-disk array vs one disk and
// compares the parallel elapsed time (slowest disk) against the serial time
// (all traffic through one head) for both queries and maintenance.

#include "bench/common.h"

#include "sim/driver.h"
#include "storage/disk_array.h"
#include "wave/scheme_factory.h"
#include "workload/netnews.h"
#include "workload/query_workload.h"

namespace wavekit {
namespace bench {
namespace {

struct DiskRunResult {
  double query_parallel = 0;
  double query_serial = 0;
  double maintenance_parallel = 0;
  double maintenance_serial = 0;
  int disks_with_constituents = 0;
};

DiskRunResult RunOnDisks(int num_disks, SchemeKind kind, int window, int n) {
  DiskArray disks(num_disks, uint64_t{1} << 26);
  DayStore day_store;
  SchemeEnv env;
  env.device = disks.device(0);
  env.allocator = disks.allocator(0);
  env.day_store = &day_store;
  for (int i = 0; i < disks.size(); ++i) {
    env.disks.push_back(SchemeEnv::Disk{disks.device(i), disks.allocator(i)});
  }
  SchemeConfig config;
  config.window = window;
  config.num_indexes = n;
  config.technique = UpdateTechniqueKind::kSimpleShadow;
  auto made = MakeScheme(kind, env, config);
  if (!made.ok()) made.status().Abort("MakeScheme");
  std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();

  workload::NetnewsConfig netnews_config;
  netnews_config.articles_per_day = 120;
  netnews_config.words_per_article = 20;
  workload::NetnewsGenerator netnews(netnews_config);
  std::vector<DayBatch> first;
  for (Day d = 1; d <= window; ++d) first.push_back(netnews.GenerateDay(d));
  scheme->Start(std::move(first)).Abort("Start");
  for (int i = 0; i < window; ++i) {
    scheme->Transition(netnews.GenerateDay(scheme->current_day() + 1))
        .Abort("warmup transition");
  }

  const CostModel cost;
  DiskRunResult result;
  // One more day of maintenance, metered.
  disks.ResetAll();
  scheme->Transition(netnews.GenerateDay(scheme->current_day() + 1))
      .Abort("measured transition");
  result.maintenance_parallel =
      disks.ParallelSeconds(cost, Phase::kTransition) +
      disks.ParallelSeconds(cost, Phase::kPrecompute);
  result.maintenance_serial = disks.SerialSeconds(cost, Phase::kTransition) +
                              disks.SerialSeconds(cost, Phase::kPrecompute);

  // A batch of probes, metered.
  disks.ResetAll();
  {
    MultiPhaseScope scope(disks.devices(), Phase::kQuery);
    Rng rng(5);
    std::vector<Entry> out;
    for (int q = 0; q < 64; ++q) {
      out.clear();
      scheme->wave()
          .TimedIndexProbe(DayRange::Window(scheme->current_day(), window),
                           netnews.SampleWord(rng), &out)
          .Abort("probe");
    }
  }
  result.query_parallel = disks.ParallelSeconds(cost, Phase::kQuery);
  result.query_serial = disks.SerialSeconds(cost, Phase::kQuery);

  std::set<const Device*> devices;
  for (const auto& c : scheme->wave().constituents()) {
    devices.insert(c->device());
  }
  result.disks_with_constituents = static_cast<int>(devices.size());
  return result;
}

int Run() {
  Banner("Section 8 extension: multi-disk wave indexes (REINDEX, W=8, n=4)",
         "With n matching the number of disks, probes and index builds "
         "parallelize across disks and builds stop contending with queries; "
         "a monolithic single-disk index serializes everything.");

  const DiskRunResult one = RunOnDisks(1, SchemeKind::kReindex, 8, 4);
  const DiskRunResult four = RunOnDisks(4, SchemeKind::kReindex, 8, 4);

  sim::TablePrinter table({"configuration", "query elapsed", "query serial",
                           "maintenance elapsed", "disks holding constituents"});
  table.AddRow({"1 disk", FormatSeconds(one.query_parallel),
                FormatSeconds(one.query_serial),
                FormatSeconds(one.maintenance_parallel), "1"});
  table.AddRow({"4 disks", FormatSeconds(four.query_parallel),
                FormatSeconds(four.query_serial),
                FormatSeconds(four.maintenance_parallel),
                std::to_string(four.disks_with_constituents)});
  table.Print(std::cout);

  // Case-study scale: the WSE scenario (W = 35, n = 4) across disk counts,
  // via the experiment driver's multi-disk mode.
  sim::TablePrinter wse_table(
      {"disks", "query elapsed/day (parallel)", "query serial/day",
       "maintenance elapsed/day"});
  wse_table.SetTitle("\nWSE scenario (W=35, n=4, scaled data) vs disk count");
  std::map<int, sim::Aggregates> wse;
  for (int disks_count : {1, 2, 4}) {
    sim::ExperimentConfig config;
    config.scheme = SchemeKind::kDel;
    config.scheme_config.window = 35;
    config.scheme_config.num_indexes = 4;
    config.scheme_config.technique = UpdateTechniqueKind::kPackedShadow;
    config.netnews.articles_per_day = 60;
    config.netnews.words_per_article = 15;
    config.days_to_run = 20;
    config.warmup_days = 5;
    config.query_mix.probes_per_day = 340;  // scaled WSE probe volume
    config.query_mix.probe_sample = 16;
    config.paper = model::CaseParams::Wse();
    config.num_disks = disks_count;
    auto run = sim::ExperimentDriver::Run(config);
    if (!run.ok()) run.status().Abort("driver");
    wse[disks_count] = run.ValueOrDie().aggregates;
    wse_table.AddRow(
        {std::to_string(disks_count),
         FormatSeconds(wse[disks_count].avg_sim_query_parallel_seconds),
         FormatSeconds(wse[disks_count].avg_sim_query_seconds),
         FormatSeconds(wse[disks_count].avg_sim_maintenance_parallel_seconds)});
  }
  wse_table.Print(std::cout);

  ShapeChecks checks;
  checks.Check(four.disks_with_constituents == 4,
               "each constituent lives on its own disk (n = #disks)");
  checks.Check(four.query_parallel < 0.5 * four.query_serial,
               "probes parallelize: elapsed < half of the serialized time");
  checks.Check(four.query_parallel < 0.6 * one.query_parallel,
               "the 4-disk array answers the probe stream much faster than "
               "one disk");
  checks.Check(four.maintenance_parallel <= one.maintenance_parallel * 1.05,
               "maintenance is no slower on the array (daily build goes to "
               "one disk; queries elsewhere are unaffected)");
  checks.Check(wse[4].avg_sim_query_parallel_seconds <
                   0.5 * wse[1].avg_sim_query_parallel_seconds,
               "at WSE scale, 4 disks cut the daily query elapsed time by "
               "more than half");
  checks.Check(wse[2].avg_sim_query_parallel_seconds <
                   wse[1].avg_sim_query_parallel_seconds,
               "every added disk helps (2 disks beat 1)");
  return checks.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace wavekit

int main() { return wavekit::bench::Run(); }
