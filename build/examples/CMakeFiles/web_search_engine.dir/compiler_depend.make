# Empty compiler generated dependencies file for web_search_engine.
# This may be replaced when dependencies are built.
