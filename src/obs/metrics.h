// MetricsRegistry: one place for every operational counter, gauge, and
// latency histogram in a wavekit deployment.
//
// The paper's whole evaluation (Sections 5-7) is an accounting exercise —
// seeks and bytes per phase per scheme — but at serving time those numbers
// were scattered over MeteredDevice, ShardedCachedDevice, and WaveService.
// The registry consolidates them behind names and labels, snapshot-able
// without stopping traffic and renderable as Prometheus text or JSON.
//
// Hot-path discipline: owned Counter/Gauge/ConcurrentHistogram instruments
// update via relaxed atomics, never a registry lock. The registry mutex
// guards only registration and snapshotting. Callback metrics (the usual way
// to consolidate stats an existing component already counts, e.g. a
// MeteredDevice's phase counters) are polled at snapshot time only, so
// attaching them costs the instrumented code nothing.

#ifndef WAVEKIT_OBS_METRICS_H_
#define WAVEKIT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.h"

namespace wavekit {
namespace obs {

/// Label key/value pairs attached to one metric instance (kept in the order
/// given at registration; renderers emit them verbatim).
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType type);

/// \brief Monotonic counter. Increment is one relaxed atomic add.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

/// \brief Point-in-time value that can go up or down.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double seen = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(seen, seen + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// \brief One metric instance materialized at snapshot time.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  Labels labels;
  double value = 0.0;   ///< Counter / gauge value.
  Histogram histogram;  ///< Histogram contents (type == kHistogram only).
};

/// \brief A consistent-enough point-in-time view of every registered metric,
/// sorted by (name, labels) so renders are deterministic.
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;

  /// Prometheus text exposition format. Histograms render as summaries
  /// (quantile series plus _sum and _count).
  std::string RenderPrometheus() const;

  /// JSON object: {"metrics": [{name, type, labels, value | stats}, ...]}.
  /// One metric per line; valid JSON for machine consumption.
  std::string RenderJson() const;
};

/// \brief Named, labeled metric registry. Thread-safe: registration,
/// snapshots, and instrument updates may all race.
///
/// Instruments returned by Add* are owned by the registry and stay valid
/// until Unregister is called with their owner tag (or the registry dies).
/// Callback metrics must outlive their owner's registration: components that
/// register callbacks over their own state MUST call Unregister(owner) in
/// their destructor (see WaveService).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* AddCounter(std::string name, std::string help, Labels labels = {},
                      const void* owner = nullptr);
  Gauge* AddGauge(std::string name, std::string help, Labels labels = {},
                  const void* owner = nullptr);
  ConcurrentHistogram* AddHistogram(std::string name, std::string help,
                                    Labels labels = {},
                                    const void* owner = nullptr);

  /// Callback metrics: polled under the registry mutex at snapshot time.
  /// Callbacks must be safe to invoke from any thread (read atomics, take
  /// their own fine-grained locks) and must not re-enter the registry.
  void AddCounterCallback(std::string name, std::string help, Labels labels,
                          std::function<uint64_t()> fn,
                          const void* owner = nullptr);
  void AddGaugeCallback(std::string name, std::string help, Labels labels,
                        std::function<double()> fn,
                        const void* owner = nullptr);
  void AddHistogramCallback(std::string name, std::string help, Labels labels,
                            std::function<Histogram()> fn,
                            const void* owner = nullptr);

  /// Removes every metric registered with `owner` (instruments it holds
  /// pointers to become invalid). No-op for nullptr or unknown owners.
  void Unregister(const void* owner);

  RegistrySnapshot Snapshot() const;
  std::string RenderPrometheus() const { return Snapshot().RenderPrometheus(); }
  std::string RenderJson() const { return Snapshot().RenderJson(); }

  size_t size() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricType type;
    Labels labels;
    const void* owner = nullptr;
    // Exactly one of the following is set.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<ConcurrentHistogram> histogram;
    std::function<uint64_t()> counter_fn;
    std::function<double()> gauge_fn;
    std::function<Histogram()> histogram_fn;
  };

  Entry& NewEntry(std::string name, std::string help, MetricType type,
                  Labels labels, const void* owner);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace obs
}  // namespace wavekit

#endif  // WAVEKIT_OBS_METRICS_H_
