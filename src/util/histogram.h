// Histogram: log-bucketed latency/size histogram with percentile queries.
// Used by WaveService metrics; general-purpose otherwise.

#ifndef WAVEKIT_UTIL_HISTOGRAM_H_
#define WAVEKIT_UTIL_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace wavekit {

/// \brief Fixed-footprint histogram over positive values with
/// half-decade-ish resolution: bucket k covers [2^k, 2^(k+1)).
///
/// Records are O(1); percentiles are approximate (upper bucket bound).
/// Not thread-safe; callers synchronize (see WaveService).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  /// Approximate value at quantile q in [0, 1] (upper bound of the bucket
  /// containing the q-th sample, clamped into [min, max]). Edge cases are
  /// exact: 0 when empty, q <= 0 returns min(), q >= 1 returns max().
  uint64_t Percentile(double q) const;

  /// Adds `other`'s samples to this histogram (bucket-wise; count/sum/min/max
  /// combine exactly). Used to aggregate per-shard and per-thread histograms
  /// into registry snapshots.
  void Merge(const Histogram& other);

  void Reset();

  /// "count=... mean=... p50=... p99=... max=..."
  std::string ToString() const;

 private:
  friend class ConcurrentHistogram;

  static int BucketFor(uint64_t value);

  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~uint64_t{0};
  uint64_t max_ = 0;
};

/// \brief Lock-free Histogram twin: Record is wait-free (a handful of relaxed
/// atomic adds), so any number of query threads can record latencies without
/// sharing a mutex. Snapshot() materializes a plain Histogram for percentile
/// queries; under concurrent Records the snapshot is a consistent-enough
/// point-in-time view (each field read atomically).
class ConcurrentHistogram {
 public:
  void Record(uint64_t value);

  /// A plain Histogram copy of the current state.
  Histogram Snapshot() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Zeroes all buckets. Not linearizable against in-flight Records;
  /// quiesce first for exact accounting.
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, Histogram::kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~uint64_t{0}};
  std::atomic<uint64_t> max_{0};
};

}  // namespace wavekit

#endif  // WAVEKIT_UTIL_HISTOGRAM_H_
