// Micro-benchmarks of the two directory implementations (hash vs B+Tree).

#include <benchmark/benchmark.h>

#include <memory>

#include "index/btree_directory.h"
#include "index/hash_directory.h"
#include "util/random.h"

namespace wavekit {
namespace {

std::unique_ptr<Directory> MakeDir(int kind) {
  return MakeDirectory(kind == 0 ? DirectoryKind::kHash
                                 : DirectoryKind::kBTree);
}

std::vector<Value> Keys(size_t count) {
  std::vector<Value> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    keys.push_back("key" + std::to_string(i * 2654435761u % 1000000007u));
  }
  return keys;
}

void BM_DirectoryInsert(benchmark::State& state) {
  const std::vector<Value> keys = Keys(static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    std::unique_ptr<Directory> dir = MakeDir(static_cast<int>(state.range(0)));
    for (const Value& key : keys) {
      dir->Insert(key, BucketInfo{}).Abort("insert");
    }
    benchmark::DoNotOptimize(dir->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(keys.size()) *
                          state.iterations());
  state.SetLabel(state.range(0) == 0 ? "hash" : "btree");
}
BENCHMARK(BM_DirectoryInsert)
    ->Args({0, 1000})
    ->Args({1, 1000})
    ->Args({0, 50000})
    ->Args({1, 50000});

void BM_DirectoryFind(benchmark::State& state) {
  const std::vector<Value> keys = Keys(20000);
  std::unique_ptr<Directory> dir = MakeDir(static_cast<int>(state.range(0)));
  for (const Value& key : keys) dir->Insert(key, BucketInfo{}).Abort("insert");
  Rng rng(3);
  for (auto _ : state) {
    const Value& key = keys[rng.Uniform(keys.size())];
    benchmark::DoNotOptimize(dir->Find(key));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(0) == 0 ? "hash" : "btree");
}
BENCHMARK(BM_DirectoryFind)->Arg(0)->Arg(1);

void BM_DirectoryIterate(benchmark::State& state) {
  const std::vector<Value> keys = Keys(20000);
  std::unique_ptr<Directory> dir = MakeDir(static_cast<int>(state.range(0)));
  for (const Value& key : keys) dir->Insert(key, BucketInfo{}).Abort("insert");
  for (auto _ : state) {
    size_t visited = 0;
    dir->ForEach([&visited](const Value&, const BucketInfo&) { ++visited; });
    benchmark::DoNotOptimize(visited);
  }
  state.SetItemsProcessed(static_cast<int64_t>(keys.size()) *
                          state.iterations());
  state.SetLabel(state.range(0) == 0 ? "hash" : "btree(ordered)");
}
BENCHMARK(BM_DirectoryIterate)->Arg(0)->Arg(1);

}  // namespace
}  // namespace wavekit

BENCHMARK_MAIN();
