// Crash-atomic maintenance: the intent-journal commit protocol around
// Scheme::Transition, and the restart-time recovery that rolls an
// interrupted transition forward or back.
//
// Protocol (DurableMaintenance::AdvanceDay):
//
//   1. journal intent "transition to day D"      (atomic+durable write)
//   2. pin the pre-transition constituent set    (keeps their extents
//      reserved, so the transition cannot clobber bytes the last durable
//      checkpoint references)
//   3. run the scheme's transition primitives    (shadow updates only)
//   4. write the post-transition checkpoint      (atomic+durable replace)
//   5. remove the journal ("commit")             (durable unlink)
//   6. release the pin
//
// A crash anywhere leaves one of two durable states:
//   - journal present, checkpoint does NOT cover D  -> the transition never
//     committed; recovery serves the pre-transition checkpoint (roll back)
//     and reports D as the day to re-run.
//   - journal present, checkpoint covers D          -> the crash hit between
//     steps 4 and 5; the transition is already durable (roll forward) and
//     recovery just clears the journal.
// No journal means the last transition committed fully.
//
// Step 4 before step 5 is the commit point: the checkpoint rename is the
// single atomic instant at which the new window becomes the durable truth.

#ifndef WAVEKIT_WAVE_RECOVERY_H_
#define WAVEKIT_WAVE_RECOVERY_H_

#include <optional>
#include <string>
#include <vector>

#include "wave/checkpoint.h"
#include "wave/journal.h"
#include "wave/scheme.h"

namespace wavekit {

/// \brief Runs a scheme's Start/AdvanceDay under the intent-journal commit
/// protocol so every window transition is crash-atomic.
class DurableMaintenance {
 public:
  struct Paths {
    std::string checkpoint;
    std::string journal;

    /// The conventional layout: "<dir>/CHECKPOINT" + "<dir>/JOURNAL".
    static Paths InDir(const std::string& dir) {
      return Paths{dir + "/CHECKPOINT", dir + "/JOURNAL"};
    }
  };

  /// What Recover found on disk.
  struct RecoveredState {
    /// The wave index of the last durable checkpoint (extents re-reserved).
    WaveIndex wave;
    /// The newest day that checkpoint covers.
    Day current_day = 0;
    /// Set when a transition to this day was journaled but never committed:
    /// after adopting `wave` at `current_day`, re-run AdvanceDay for it.
    std::optional<Day> interrupted_day;
    /// Constituents whose extents failed checksum revalidation during
    /// recovery (quarantined, not fatal: the wave serves degraded and the
    /// caller heals them online — DurableMaintenance::Heal).
    std::vector<std::string> quarantined;
  };

  /// `scheme` must outlive this object. When `data_device` is non-null it is
  /// Sync()ed before every checkpoint write: the checkpoint rename is the
  /// commit point, so the bucket bytes it references must already be on
  /// stable storage (persistent backends — file/uring/mmap; pass null for
  /// the modeled MemoryDevice, whose Sync is a no-op anyway). A Sync failure
  /// aborts the protocol before the checkpoint, exactly like a failed
  /// transition: the journal survives, the pre-transition constituents stay
  /// pinned, and the on-disk state remains recoverable.
  DurableMaintenance(Scheme* scheme, Paths paths,
                     Device* data_device = nullptr)
      : scheme_(scheme),
        paths_(std::move(paths)),
        data_device_(data_device) {}

  /// Scheme::Start plus the initial durable checkpoint. Clears any stale
  /// journal from a previous incarnation first.
  Status Start(std::vector<DayBatch> first_window);

  /// One crash-atomic window transition (the protocol above). Crash points
  /// checked: "advance.after_intent", "advance.after_transition",
  /// "advance.after_checkpoint", plus the rename-boundary points of the
  /// "journal.intent", "checkpoint" and "journal.commit" scopes. On failure
  /// the journal survives and the pre-transition constituents stay pinned,
  /// so the on-disk state remains recoverable either way.
  Status AdvanceDay(DayBatch new_day);

  /// Writes a fresh durable checkpoint of the scheme's current wave (e.g.
  /// right after adopting a recovered one).
  Status Checkpoint();

  /// Crash-safe online self-healing: pins the current constituent set,
  /// rebuilds every unhealthy constituent from segment data
  /// (Scheme::HealUnhealthy), and — when anything was healed — commits the
  /// result with a fresh durable checkpoint before releasing the pin. Needs
  /// no intent journal: healing is idempotent (rebuilds land on fresh
  /// extents; the checkpoint rename is the atomic commit), so a crash at any
  /// point leaves the previous checkpoint loadable and the heal simply
  /// re-runs after recovery.
  Result<Scheme::HealReport> Heal();

  /// Restart-time recovery: loads the last durable checkpoint from `paths`,
  /// applies the roll-forward/roll-back rule to any journaled intent, and
  /// durably clears the journal. NotFound when no checkpoint exists (nothing
  /// was ever started). The caller re-Puts the window's day batches, makes a
  /// fresh scheme, and Adopts the returned wave.
  /// When `events` is non-null, the roll-forward/roll-back decision for a
  /// journaled intent is recorded there (obs::EventType::kRecoveryRollForward
  /// / kRecoveryRollBack).
  static Result<RecoveredState> Recover(const Paths& paths, Device* device,
                                        ExtentAllocator* allocator,
                                        ConstituentIndex::Options options,
                                        obs::EventJournal* events = nullptr);

  const Paths& paths() const { return paths_; }

 private:
  Scheme* scheme_;
  Paths paths_;
  Device* data_device_ = nullptr;
  // Pre-transition constituents, held across the transition so the extents
  // the last durable checkpoint references cannot be freed (and re-used)
  // before the new checkpoint commits. Kept on failure: rollback needs them.
  WaveIndex pinned_;
};

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_RECOVERY_H_
