#include "storage/backend_registry.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "storage/file_device.h"
#include "testing/test_env.h"

namespace wavekit {
namespace {

std::string TempPath(const char* tag) {
  return ::testing::TempDir() + "wavekit_registry_" + tag + "_" +
         std::to_string(::getpid()) + ".dat";
}

TEST(BackendRegistryTest, BuiltinsAreRegistered) {
  BackendRegistry& registry = BackendRegistry::Global();
  for (const char* name : {"memory", "file", "uring", "mmap"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
  const std::vector<std::string> names = registry.Names();
  EXPECT_GE(names.size(), 4u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(BackendRegistryTest, UnknownBackendIsNotFound) {
  BackendConfig config;
  auto result = BackendRegistry::Global().Create("floppy", config);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  // The error names the registered alternatives.
  EXPECT_NE(result.status().message().find("memory"), std::string::npos);
  EXPECT_FALSE(BackendRegistry::Global().Contains("floppy"));
  EXPECT_TRUE(
      BackendRegistry::Global().GetCapabilities("floppy").status().IsNotFound());
}

TEST(BackendRegistryTest, MemoryBackendNeedsNoPath) {
  BackendConfig config;
  config.capacity = 1 << 16;
  ASSERT_OK_AND_ASSIGN(auto device,
                       BackendRegistry::Global().Create("memory", config));
  EXPECT_EQ(device->capacity(), uint64_t{1} << 16);
  ASSERT_OK_AND_ASSIGN(
      const BackendCapabilities caps,
      BackendRegistry::Global().GetCapabilities("memory"));
  EXPECT_FALSE(caps.persistent);
  EXPECT_FALSE(caps.needs_sync);
  EXPECT_EQ(caps.alignment, 1u);
}

TEST(BackendRegistryTest, FileBackendsRequireAPath) {
  BackendConfig config;  // no path
  for (const char* name : {"file", "uring", "mmap"}) {
    auto result = BackendRegistry::Global().Create(name, config);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_TRUE(result.status().IsInvalidArgument()) << name;
  }
}

TEST(BackendRegistryTest, DirectIoRejectedWhereImpossible) {
  BackendConfig config;
  config.direct_io = true;
  config.path = TempPath("direct_reject");
  EXPECT_TRUE(BackendRegistry::Global()
                  .Create("memory", config)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(BackendRegistry::Global()
                  .Create("mmap", config)
                  .status()
                  .IsInvalidArgument());
  std::remove(config.path.c_str());
}

TEST(BackendRegistryTest, EffectiveCapabilitiesRaiseAlignmentForDirectIo) {
  BackendConfig config;
  config.path = TempPath("effective");
  ASSERT_OK_AND_ASSIGN(
      BackendCapabilities buffered,
      BackendRegistry::Global().EffectiveCapabilities("file", config));
  EXPECT_EQ(buffered.alignment, 1u);
  config.direct_io = true;
  ASSERT_OK_AND_ASSIGN(
      BackendCapabilities direct,
      BackendRegistry::Global().EffectiveCapabilities("file", config));
  EXPECT_EQ(direct.alignment, kDirectIoAlignment);
  EXPECT_TRUE(direct.persistent);
  EXPECT_TRUE(direct.needs_sync);
}

TEST(BackendRegistryTest, UringAdvertisesBatchAsync) {
  ASSERT_OK_AND_ASSIGN(const BackendCapabilities caps,
                       BackendRegistry::Global().GetCapabilities("uring"));
  EXPECT_TRUE(caps.supports_batch_async);
  EXPECT_TRUE(caps.persistent);
}

TEST(BackendRegistryTest, CustomRegistrationAndDuplicates) {
  BackendRegistry registry;  // fresh, no built-ins
  BackendCapabilities caps;
  ASSERT_OK(registry.Register(
      "null", caps, [](const BackendConfig& config)
                        -> Result<std::unique_ptr<Device>> {
        return std::unique_ptr<Device>(
            std::make_unique<MemoryDevice>(config.capacity));
      }));
  EXPECT_TRUE(registry.Contains("null"));
  EXPECT_TRUE(registry
                  .Register("null", caps,
                            [](const BackendConfig&)
                                -> Result<std::unique_ptr<Device>> {
                              return Status::Internal("never called");
                            })
                  .IsAlreadyExists());
  EXPECT_TRUE(registry.Register("", caps, nullptr).IsInvalidArgument());
  BackendConfig config;
  config.capacity = 4096;
  ASSERT_OK_AND_ASSIGN(auto device, registry.Create("null", config));
  EXPECT_EQ(device->capacity(), 4096u);
}

TEST(BackendRegistryTest, UringQueueDepthValidated) {
  BackendConfig config;
  config.path = TempPath("qd");
  config.queue_depth = 0;
  EXPECT_TRUE(BackendRegistry::Global()
                  .Create("uring", config)
                  .status()
                  .IsInvalidArgument());
  std::remove(config.path.c_str());
}

}  // namespace
}  // namespace wavekit
