file(REMOVE_RECURSE
  "CMakeFiles/metered_device_test.dir/storage/metered_device_test.cc.o"
  "CMakeFiles/metered_device_test.dir/storage/metered_device_test.cc.o.d"
  "metered_device_test"
  "metered_device_test.pdb"
  "metered_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metered_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
