#include "index/btree_directory.h"

#include <algorithm>
#include <cassert>

#include "index/hash_directory.h"
#include "util/macros.h"

namespace wavekit {

// A node is a leaf (values non-empty semantics) or internal (children
// non-empty). For a leaf, keys[i] maps to values[i]. For an internal node
// with k keys there are k+1 children; keys[i] is a separator: every key in
// children[i] is < keys[i], every key in children[i+1] is >= keys[i].
struct BTreeDirectory::Node {
  bool is_leaf;
  std::vector<Value> keys;
  std::vector<BucketInfo> values;                 // leaf only, parallel to keys
  std::vector<std::unique_ptr<Node>> children;    // internal only
  Node* next_leaf = nullptr;                      // leaf chain
  Node* prev_leaf = nullptr;

  explicit Node(bool leaf) : is_leaf(leaf) {}
};

struct BTreeDirectory::SplitResult {
  Value separator;
  std::unique_ptr<Node> right;
};

BTreeDirectory::BTreeDirectory(size_t max_keys)
    : max_keys_(std::max<size_t>(max_keys, 3)), min_keys_(max_keys_ / 2) {}

BTreeDirectory::~BTreeDirectory() = default;

BTreeDirectory::Node* BTreeDirectory::FindLeaf(const Value& value) const {
  Node* node = root_.get();
  if (node == nullptr) return nullptr;
  while (!node->is_leaf) {
    size_t idx = static_cast<size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), value) -
        node->keys.begin());
    node = node->children[idx].get();
  }
  return node;
}

BucketInfo* BTreeDirectory::Find(const Value& value) {
  Node* leaf = FindLeaf(value);
  if (leaf == nullptr) return nullptr;
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), value);
  if (it == leaf->keys.end() || *it != value) return nullptr;
  return &leaf->values[static_cast<size_t>(it - leaf->keys.begin())];
}

const BucketInfo* BTreeDirectory::Find(const Value& value) const {
  return const_cast<BTreeDirectory*>(this)->Find(value);
}

Status BTreeDirectory::Insert(const Value& value, const BucketInfo& info) {
  if (root_ == nullptr) {
    root_ = std::make_unique<Node>(/*leaf=*/true);
  }
  SplitResult split;
  bool did_split = false;
  WAVEKIT_RETURN_NOT_OK(
      InsertRecursive(root_.get(), value, info, &split, &did_split));
  if (did_split) {
    auto new_root = std::make_unique<Node>(/*leaf=*/false);
    new_root->keys.push_back(std::move(split.separator));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split.right));
    root_ = std::move(new_root);
  }
  ++size_;
  return Status::OK();
}

Status BTreeDirectory::InsertRecursive(Node* node, const Value& value,
                                       const BucketInfo& info,
                                       SplitResult* split, bool* did_split) {
  *did_split = false;
  if (node->is_leaf) {
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), value);
    if (it != node->keys.end() && *it == value) {
      return Status::AlreadyExists("directory already maps value '" + value +
                                   "'");
    }
    size_t pos = static_cast<size_t>(it - node->keys.begin());
    node->keys.insert(it, value);
    node->values.insert(node->values.begin() + static_cast<long>(pos), info);
  } else {
    size_t idx = static_cast<size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), value) -
        node->keys.begin());
    SplitResult child_split;
    bool child_did_split = false;
    WAVEKIT_RETURN_NOT_OK(InsertRecursive(node->children[idx].get(), value,
                                          info, &child_split,
                                          &child_did_split));
    if (child_did_split) {
      node->keys.insert(node->keys.begin() + static_cast<long>(idx),
                        std::move(child_split.separator));
      node->children.insert(node->children.begin() + static_cast<long>(idx) + 1,
                            std::move(child_split.right));
    }
  }

  if (node->keys.size() <= max_keys_) return Status::OK();

  // Split: left keeps the first half, right takes the rest.
  auto right = std::make_unique<Node>(node->is_leaf);
  const size_t mid = node->keys.size() / 2;
  if (node->is_leaf) {
    // Leaf split: separator is a copy of the first right key (it stays in the
    // leaf too — B+Tree leaves hold all mappings).
    split->separator = node->keys[mid];
    right->keys.assign(node->keys.begin() + static_cast<long>(mid),
                       node->keys.end());
    right->values.assign(node->values.begin() + static_cast<long>(mid),
                         node->values.end());
    node->keys.resize(mid);
    node->values.resize(mid);
    right->next_leaf = node->next_leaf;
    right->prev_leaf = node;
    if (node->next_leaf != nullptr) node->next_leaf->prev_leaf = right.get();
    node->next_leaf = right.get();
  } else {
    // Internal split: the middle key moves up and is NOT kept in either half.
    split->separator = std::move(node->keys[mid]);
    right->keys.assign(
        std::make_move_iterator(node->keys.begin() + static_cast<long>(mid) + 1),
        std::make_move_iterator(node->keys.end()));
    right->children.assign(
        std::make_move_iterator(node->children.begin() +
                                static_cast<long>(mid) + 1),
        std::make_move_iterator(node->children.end()));
    node->keys.resize(mid);
    node->children.resize(mid + 1);
  }
  split->right = std::move(right);
  *did_split = true;
  return Status::OK();
}

Status BTreeDirectory::Remove(const Value& value) {
  if (root_ == nullptr) {
    return Status::NotFound("directory has no value '" + value + "'");
  }
  bool underflow = false;
  WAVEKIT_RETURN_NOT_OK(RemoveRecursive(root_.get(), value, &underflow));
  --size_;
  // Shrink the root: an internal root with a single child is replaced by that
  // child; an empty leaf root becomes the empty tree.
  if (!root_->is_leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children[0]);
  } else if (root_->is_leaf && root_->keys.empty()) {
    root_.reset();
  }
  return Status::OK();
}

Status BTreeDirectory::RemoveRecursive(Node* node, const Value& value,
                                       bool* underflow) {
  *underflow = false;
  if (node->is_leaf) {
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), value);
    if (it == node->keys.end() || *it != value) {
      return Status::NotFound("directory has no value '" + value + "'");
    }
    size_t pos = static_cast<size_t>(it - node->keys.begin());
    node->keys.erase(it);
    node->values.erase(node->values.begin() + static_cast<long>(pos));
  } else {
    size_t idx = static_cast<size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), value) -
        node->keys.begin());
    bool child_underflow = false;
    WAVEKIT_RETURN_NOT_OK(
        RemoveRecursive(node->children[idx].get(), value, &child_underflow));
    if (child_underflow) RebalanceChild(node, idx);
  }
  *underflow = node->keys.size() < min_keys_;
  return Status::OK();
}

void BTreeDirectory::RebalanceChild(Node* parent, size_t child_idx) {
  Node* child = parent->children[child_idx].get();
  Node* left = child_idx > 0 ? parent->children[child_idx - 1].get() : nullptr;
  Node* right = child_idx + 1 < parent->children.size()
                    ? parent->children[child_idx + 1].get()
                    : nullptr;

  // Borrow from the left sibling if it can spare a key.
  if (left != nullptr && left->keys.size() > min_keys_) {
    if (child->is_leaf) {
      child->keys.insert(child->keys.begin(), std::move(left->keys.back()));
      child->values.insert(child->values.begin(), left->values.back());
      left->keys.pop_back();
      left->values.pop_back();
      parent->keys[child_idx - 1] = child->keys.front();
    } else {
      // Rotate through the parent separator.
      child->keys.insert(child->keys.begin(),
                         std::move(parent->keys[child_idx - 1]));
      parent->keys[child_idx - 1] = std::move(left->keys.back());
      left->keys.pop_back();
      child->children.insert(child->children.begin(),
                             std::move(left->children.back()));
      left->children.pop_back();
    }
    return;
  }

  // Borrow from the right sibling.
  if (right != nullptr && right->keys.size() > min_keys_) {
    if (child->is_leaf) {
      child->keys.push_back(std::move(right->keys.front()));
      child->values.push_back(right->values.front());
      right->keys.erase(right->keys.begin());
      right->values.erase(right->values.begin());
      parent->keys[child_idx] = right->keys.front();
    } else {
      child->keys.push_back(std::move(parent->keys[child_idx]));
      parent->keys[child_idx] = std::move(right->keys.front());
      right->keys.erase(right->keys.begin());
      child->children.push_back(std::move(right->children.front()));
      right->children.erase(right->children.begin());
    }
    return;
  }

  // Merge with a sibling. Normalize so we always merge `right_node` into
  // `left_node`, removing separator `sep_idx` from the parent.
  size_t sep_idx;
  Node* left_node;
  Node* right_node;
  size_t right_slot;
  if (left != nullptr) {
    sep_idx = child_idx - 1;
    left_node = left;
    right_node = child;
    right_slot = child_idx;
  } else {
    sep_idx = child_idx;
    left_node = child;
    right_node = right;
    right_slot = child_idx + 1;
  }

  if (left_node->is_leaf) {
    left_node->keys.insert(left_node->keys.end(),
                           std::make_move_iterator(right_node->keys.begin()),
                           std::make_move_iterator(right_node->keys.end()));
    left_node->values.insert(left_node->values.end(),
                             right_node->values.begin(),
                             right_node->values.end());
    left_node->next_leaf = right_node->next_leaf;
    if (right_node->next_leaf != nullptr) {
      right_node->next_leaf->prev_leaf = left_node;
    }
  } else {
    left_node->keys.push_back(std::move(parent->keys[sep_idx]));
    left_node->keys.insert(left_node->keys.end(),
                           std::make_move_iterator(right_node->keys.begin()),
                           std::make_move_iterator(right_node->keys.end()));
    left_node->children.insert(
        left_node->children.end(),
        std::make_move_iterator(right_node->children.begin()),
        std::make_move_iterator(right_node->children.end()));
  }
  parent->keys.erase(parent->keys.begin() + static_cast<long>(sep_idx));
  parent->children.erase(parent->children.begin() +
                         static_cast<long>(right_slot));
}

void BTreeDirectory::ForEach(
    const std::function<void(const Value&, const BucketInfo&)>& fn) const {
  // Walk to the leftmost leaf, then follow the chain.
  Node* node = root_.get();
  if (node == nullptr) return;
  while (!node->is_leaf) node = node->children.front().get();
  for (; node != nullptr; node = node->next_leaf) {
    for (size_t i = 0; i < node->keys.size(); ++i) {
      fn(node->keys[i], node->values[i]);
    }
  }
}

std::unique_ptr<Directory> BTreeDirectory::CloneEmpty() const {
  return std::make_unique<BTreeDirectory>(max_keys_);
}

size_t BTreeDirectory::height() const {
  size_t h = 0;
  for (Node* node = root_.get(); node != nullptr;
       node = node->is_leaf ? nullptr : node->children.front().get()) {
    ++h;
  }
  return h;
}

size_t BTreeDirectory::LeafDepth() const {
  size_t depth = 0;
  Node* node = root_.get();
  while (node != nullptr && !node->is_leaf) {
    node = node->children.front().get();
    ++depth;
  }
  return depth;
}

Status BTreeDirectory::CheckInvariants() const {
  if (root_ == nullptr) {
    return size_ == 0 ? Status::OK()
                      : Status::Internal("empty tree with nonzero size");
  }
  WAVEKIT_RETURN_NOT_OK(
      CheckNode(root_.get(), nullptr, nullptr, 0, LeafDepth()));
  // Leaf chain must visit exactly size_ mappings in sorted order.
  size_t visited = 0;
  const Value* prev = nullptr;
  Status chain_status = Status::OK();
  ForEach([&](const Value& v, const BucketInfo&) {
    if (prev != nullptr && !(*prev < v)) {
      chain_status = Status::Internal("leaf chain out of order");
    }
    prev = &v;
    ++visited;
  });
  WAVEKIT_RETURN_NOT_OK(chain_status);
  if (visited != size_) {
    return Status::Internal("leaf chain size mismatch: visited " +
                            std::to_string(visited) + " expected " +
                            std::to_string(size_));
  }
  return Status::OK();
}

Status BTreeDirectory::CheckNode(const Node* node, const Value* lower,
                                 const Value* upper, size_t depth,
                                 size_t leaf_depth) const {
  const bool is_root = node == root_.get();
  if (!std::is_sorted(node->keys.begin(), node->keys.end())) {
    return Status::Internal("node keys not sorted");
  }
  for (const Value& k : node->keys) {
    if (lower != nullptr && k < *lower) return Status::Internal("key below bound");
    if (upper != nullptr && !(k < *upper)) {
      return Status::Internal("key above bound");
    }
  }
  if (node->is_leaf) {
    if (depth != leaf_depth) return Status::Internal("leaves at unequal depth");
    if (node->keys.size() != node->values.size()) {
      return Status::Internal("leaf key/value count mismatch");
    }
    if (!is_root && node->keys.size() < min_keys_) {
      return Status::Internal("leaf underflow");
    }
  } else {
    if (node->children.size() != node->keys.size() + 1) {
      return Status::Internal("internal fanout mismatch");
    }
    if (!is_root && node->keys.size() < min_keys_) {
      return Status::Internal("internal underflow");
    }
    if (is_root && node->children.size() < 2) {
      return Status::Internal("internal root with < 2 children");
    }
    for (size_t i = 0; i < node->children.size(); ++i) {
      const Value* lo = i == 0 ? lower : &node->keys[i - 1];
      const Value* hi = i == node->keys.size() ? upper : &node->keys[i];
      WAVEKIT_RETURN_NOT_OK(
          CheckNode(node->children[i].get(), lo, hi, depth + 1, leaf_depth));
    }
  }
  if (node->keys.size() > max_keys_) return Status::Internal("node overflow");
  return Status::OK();
}

std::unique_ptr<Directory> MakeDirectory(DirectoryKind kind) {
  switch (kind) {
    case DirectoryKind::kHash:
      return std::make_unique<HashDirectory>();
    case DirectoryKind::kBTree:
      return std::make_unique<BTreeDirectory>();
  }
  return nullptr;
}

}  // namespace wavekit
