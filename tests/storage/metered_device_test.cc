#include "storage/metered_device.h"

#include <gtest/gtest.h>

#include <vector>

#include "testing/test_env.h"

namespace wavekit {
namespace {

class MeteredDeviceTest : public ::testing::Test {
 protected:
  MeteredDeviceTest() : inner_(4096), device_(&inner_) {}

  void Write(uint64_t offset, size_t n) {
    std::vector<std::byte> buf(n, std::byte{1});
    ASSERT_OK(device_.Write(offset, buf));
  }
  void Read(uint64_t offset, size_t n) {
    std::vector<std::byte> buf(n);
    ASSERT_OK(device_.Read(offset, buf));
  }

  MemoryDevice inner_;
  MeteredDevice device_;
};

TEST_F(MeteredDeviceTest, FirstAccessCostsOneSeek) {
  Write(0, 100);
  EXPECT_EQ(device_.total().seeks, 1u);
  EXPECT_EQ(device_.total().bytes_written, 100u);
}

TEST_F(MeteredDeviceTest, SequentialAccessesCostOneSeekTotal) {
  Write(0, 100);
  Write(100, 50);
  Read(150, 10);  // continues right after the last write
  EXPECT_EQ(device_.total().seeks, 1u);
  EXPECT_EQ(device_.total().bytes_written, 150u);
  EXPECT_EQ(device_.total().bytes_read, 10u);
}

TEST_F(MeteredDeviceTest, NonSequentialAccessCostsExtraSeek) {
  Write(0, 100);
  Write(500, 100);  // jump
  Write(600, 100);  // sequential again
  Write(0, 10);     // jump back
  EXPECT_EQ(device_.total().seeks, 3u);
}

TEST_F(MeteredDeviceTest, PhasesAccumulateSeparately) {
  device_.set_phase(Phase::kTransition);
  Write(0, 100);
  device_.set_phase(Phase::kQuery);
  Read(0, 100);
  EXPECT_EQ(device_.counters(Phase::kTransition).bytes_written, 100u);
  EXPECT_EQ(device_.counters(Phase::kTransition).bytes_read, 0u);
  EXPECT_EQ(device_.counters(Phase::kQuery).bytes_read, 100u);
  EXPECT_EQ(device_.total().bytes_transferred(), 200u);
}

TEST_F(MeteredDeviceTest, PhaseScopeRestores) {
  device_.set_phase(Phase::kOther);
  {
    PhaseScope scope(&device_, Phase::kPrecompute);
    EXPECT_EQ(device_.phase(), Phase::kPrecompute);
    Write(0, 10);
  }
  EXPECT_EQ(device_.phase(), Phase::kOther);
  EXPECT_EQ(device_.counters(Phase::kPrecompute).bytes_written, 10u);
}

TEST_F(MeteredDeviceTest, ResetClearsCountersKeepsHead) {
  Write(0, 100);
  device_.Reset();
  EXPECT_EQ(device_.total().bytes_transferred(), 0u);
  // Head position survives: continuing sequentially costs no seek.
  Write(100, 10);
  EXPECT_EQ(device_.total().seeks, 0u);
}

TEST_F(MeteredDeviceTest, ErrorsAreNotAccounted) {
  std::vector<std::byte> buf(10);
  EXPECT_TRUE(device_.Write(5000, buf).IsOutOfRange());
  EXPECT_EQ(device_.total().bytes_written, 0u);
  EXPECT_EQ(device_.total().seeks, 0u);
}

TEST_F(MeteredDeviceTest, OpCountsTracked) {
  Write(0, 10);
  Write(10, 10);
  Read(0, 5);
  EXPECT_EQ(device_.total().write_ops, 2u);
  EXPECT_EQ(device_.total().read_ops, 1u);
}

TEST_F(MeteredDeviceTest, UnattributedIoLandsInOtherPhase) {
  // A fresh device has no phase set: everything must land in kOther, the
  // catch-all the observability layer surfaces as phase="other".
  EXPECT_EQ(device_.phase(), Phase::kOther);
  Write(0, 64);
  Read(0, 32);
  const MeteredDevice::Snapshot snap = device_.snapshot();
  for (const auto& phase : snap.phases) {
    if (phase.phase == Phase::kOther) {
      EXPECT_EQ(phase.io.bytes_written, 64u);
      EXPECT_EQ(phase.io.bytes_read, 32u);
    } else {
      EXPECT_EQ(phase.io.bytes_transferred(), 0u);
    }
  }
}

TEST_F(MeteredDeviceTest, SnapshotCoversEveryPhaseWithNamesAndTotal) {
  device_.set_phase(Phase::kStart);
  Write(0, 100);
  device_.set_phase(Phase::kQuery);
  Read(0, 40);
  const MeteredDevice::Snapshot snap = device_.snapshot();
  ASSERT_EQ(snap.phases.size(), static_cast<size_t>(kNumPhases));
  for (int p = 0; p < kNumPhases; ++p) {
    const auto& phase = snap.phases[static_cast<size_t>(p)];
    EXPECT_EQ(phase.phase, static_cast<Phase>(p));
    EXPECT_STREQ(phase.name, PhaseName(static_cast<Phase>(p)));
    EXPECT_EQ(phase.io, device_.counters(static_cast<Phase>(p)));
  }
  EXPECT_EQ(snap.total, device_.total());
  EXPECT_EQ(snap.total.bytes_written, 100u);
  EXPECT_EQ(snap.total.bytes_read, 40u);
}

TEST_F(MeteredDeviceTest, SyncIsChargedToThePhaseButNotTheCostModel) {
  device_.set_phase(Phase::kTransition);
  Write(0, 100);
  ASSERT_TRUE(device_.Sync().ok());
  ASSERT_TRUE(device_.Sync().ok());
  device_.set_phase(Phase::kQuery);
  ASSERT_TRUE(device_.Sync().ok());

  EXPECT_EQ(device_.counters(Phase::kTransition).sync_ops, 2u);
  EXPECT_EQ(device_.counters(Phase::kQuery).sync_ops, 1u);
  EXPECT_EQ(device_.total().sync_ops, 3u);
  EXPECT_EQ(device_.snapshot().total.sync_ops, 3u);

  // Sync charges no seeks or bytes, and the paper's cost model (which has
  // no fsync analogue) prices it at zero seconds.
  const IoCounters query = device_.counters(Phase::kQuery);
  EXPECT_EQ(query.seeks, 0u);
  EXPECT_EQ(query.bytes_transferred(), 0u);
  EXPECT_DOUBLE_EQ(CostModel{}.Seconds(query), 0.0);

  // ToString mentions syncs only when present (zero-sync output unchanged).
  EXPECT_NE(query.ToString().find("syncs=1"), std::string::npos);
  EXPECT_EQ(IoCounters{}.ToString().find("syncs"), std::string::npos);

  device_.Reset();
  EXPECT_EQ(device_.total().sync_ops, 0u);
}

TEST(CostModelTest, SyncOpsFollowCounterArithmetic) {
  IoCounters a;
  a.sync_ops = 3;
  IoCounters b;
  b.sync_ops = 1;
  EXPECT_EQ((a + b).sync_ops, 4u);
  EXPECT_EQ((a - b).sync_ops, 2u);
}

TEST(CostModelTest, SecondsFormula) {
  CostModel cost;  // 14 ms seek, 10 MB/s
  IoCounters io;
  io.seeks = 2;
  io.bytes_read = 5'000'000;
  io.bytes_written = 5'000'000;
  EXPECT_NEAR(cost.Seconds(io), 2 * 0.014 + 1.0, 1e-9);
}

TEST(CostModelTest, CounterArithmetic) {
  IoCounters a{2, 100, 50, 3, 1};
  IoCounters b{1, 40, 20, 1, 1};
  IoCounters sum = a + b;
  EXPECT_EQ(sum.seeks, 3u);
  EXPECT_EQ(sum.bytes_read, 140u);
  IoCounters diff = sum - b;
  EXPECT_EQ(diff, a);
}

}  // namespace
}  // namespace wavekit
