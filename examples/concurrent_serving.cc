// Concurrent serving: the paper's core operational argument for shadow
// updating — "queries can be serviced using the old index, while the new
// index is being updated. Hence no concurrency control is required."
//
// A writer thread feeds one new day per tick into a WATA* wave index while
// four reader threads run keyword probes non-stop. Readers never block and
// never see a torn index: each query runs against an immutable snapshot.

#include <atomic>
#include <iostream>
#include <thread>

#include "util/format.h"
#include "wave/wave_service.h"
#include "workload/netnews.h"

using namespace wavekit;

int main() {
  WaveService::Options options;
  options.scheme = SchemeKind::kWata;
  options.config.window = 7;
  options.config.num_indexes = 3;
  options.config.technique = UpdateTechniqueKind::kSimpleShadow;
  auto created = WaveService::Create(options);
  if (!created.ok()) {
    std::cerr << created.status() << "\n";
    return 1;
  }
  std::unique_ptr<WaveService> service = std::move(created).ValueOrDie();

  workload::NetnewsConfig netnews_config;
  netnews_config.articles_per_day = 200;
  netnews_config.words_per_article = 20;
  workload::NetnewsGenerator netnews(netnews_config);

  std::vector<DayBatch> first_week;
  for (Day d = 1; d <= 7; ++d) first_week.push_back(netnews.GenerateDay(d));
  service->Start(std::move(first_week)).Abort("Start");
  std::cout << "serving a 7-day window; spawning 4 readers + 1 writer...\n";

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> results{0};

  auto reader = [&](uint64_t seed) {
    Rng rng(seed);
    std::vector<Entry> out;
    while (!stop.load()) {
      out.clear();
      Status s = service->IndexProbe(netnews.SampleWord(rng), &out);
      s.Abort("probe");
      ++queries;
      results += out.size();
    }
  };
  std::vector<std::thread> readers;
  for (uint64_t i = 0; i < 4; ++i) readers.emplace_back(reader, i + 1);

  // Writer: 21 "days", one every few milliseconds.
  for (Day d = 8; d <= 28; ++d) {
    service->AdvanceDay(netnews.GenerateDay(d)).Abort("AdvanceDay");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (d % 7 == 0) {
      std::cout << "  day " << d << ": " << FormatCount(queries.load())
                << " queries answered so far, window now ["
                << d - 6 << ", " << d << "]\n";
    }
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  const ServiceMetrics metrics = service->Metrics();
  std::cout << "\nprobe latency: p50 = "
            << metrics.probe_latency_us.Percentile(0.5) << " us, p99 = "
            << metrics.probe_latency_us.Percentile(0.99) << " us over "
            << FormatCount(metrics.probes) << " probes\n";
  std::cout << "total: " << FormatCount(queries.load())
            << " probes answered concurrently with 21 day transitions ("
            << FormatCount(results.load()) << " entries returned)\n"
            << "final footprint: "
            << FormatBytes(service->Snapshot()->AllocatedBytes())
            << " across " << service->Snapshot()->num_constituents()
            << " constituents — no locks on the query path, as the paper "
               "promised.\n";
  return 0;
}
