#include "testing/oracle.h"

#include <algorithm>
#include <tuple>

namespace wavekit {
namespace testing {

void OracleDB::AdvanceDay(const DayBatch& batch, int window) {
  for (const Record& record : batch.records) {
    for (size_t i = 0; i < record.values.size(); ++i) {
      const Entry entry{record.record_id, batch.day, record.AuxFor(i)};
      by_value_[record.values[i]].push_back(entry);
      days_[batch.day].emplace_back(record.values[i], entry);
    }
  }
  if (days_.find(batch.day) == days_.end()) {
    days_[batch.day];  // a day with no records still occupies its window slot
  }
  current_day_ = std::max(current_day_, batch.day);
  const Day oldest_live = current_day_ - static_cast<Day>(window) + 1;
  while (!days_.empty() && days_.begin()->first < oldest_live) {
    for (const auto& [value, entry] : days_.begin()->second) {
      auto it = by_value_.find(value);
      if (it == by_value_.end()) continue;
      auto& entries = it->second;
      entries.erase(std::remove_if(entries.begin(), entries.end(),
                                   [&](const Entry& e) {
                                     return e.record_id == entry.record_id &&
                                            e.day == entry.day &&
                                            e.aux == entry.aux;
                                   }),
                    entries.end());
      if (entries.empty()) by_value_.erase(it);
    }
    days_.erase(days_.begin());
  }
}

void OracleDB::Clear() {
  by_value_.clear();
  days_.clear();
  current_day_ = 0;
}

std::vector<Entry> OracleDB::Probe(const Value& value,
                                   const DayRange& range) const {
  std::vector<Entry> out;
  auto it = by_value_.find(value);
  if (it == by_value_.end()) return out;
  for (const Entry& e : it->second) {
    if (range.Contains(e.day)) out.push_back(e);
  }
  Sort(&out);
  return out;
}

std::vector<Entry> OracleDB::ScanAll(const DayRange& range) const {
  std::vector<Entry> out;
  for (const auto& [day, pairs] : days_) {
    if (!range.Contains(day)) continue;
    for (const auto& [value, entry] : pairs) out.push_back(entry);
  }
  Sort(&out);
  return out;
}

size_t OracleDB::live_entries() const {
  size_t n = 0;
  for (const auto& [day, pairs] : days_) n += pairs.size();
  return n;
}

void OracleDB::Sort(std::vector<Entry>* entries) {
  std::sort(entries->begin(), entries->end(),
            [](const Entry& a, const Entry& b) {
              return std::tie(a.record_id, a.day, a.aux) <
                     std::tie(b.record_id, b.day, b.aux);
            });
}

}  // namespace testing
}  // namespace wavekit
