// TimeSeriesCollector: periodic history of a MetricsRegistry.
//
// The registry (obs/metrics.h) is point-in-time: every snapshot shows the
// totals accumulated so far, but nothing about how they got there. The
// collector closes that gap by sampling the registry into a bounded ring of
// timestamped snapshots, from which rates ("probes per second over the last
// interval") and deltas fall out by subtraction — the inputs `wavectl top`,
// the /timeseries.json endpoint, and the adaptive planner consume.
//
// Time discipline: all timestamps come from the injected util/clock.h Clock,
// and the core sampling operations (SampleNow, Tick) never sleep or spawn
// threads — the caller decides when time has passed. The deterministic
// simulation harness drives Tick from its SimClock, so a collector-enabled
// episode is byte-identical to a rerun. Wall-clock serving (wavectl
// serve-metrics / top) opts into the background thread via Start(), which
// paces itself on real time but still stamps samples with the injected
// clock.

#ifndef WAVEKIT_OBS_TIMESERIES_H_
#define WAVEKIT_OBS_TIMESERIES_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/clock.h"

namespace wavekit {
namespace obs {

/// \brief Samples a MetricsRegistry on demand (or on a background thread)
/// into a bounded ring of timestamped snapshots. Thread-safe.
class TimeSeriesCollector {
 public:
  struct Options {
    /// The registry to sample. Must outlive the collector.
    MetricsRegistry* registry = nullptr;
    /// Minimum microseconds between Tick-driven samples.
    uint64_t interval_us = 1'000'000;
    /// Samples kept; the oldest is evicted when full.
    size_t ring_capacity = 128;
    /// Timestamp source. Defaults to the wall clock; the simulation harness
    /// injects a SimClock so every sample time is seed-derived.
    Clock* clock = nullptr;
  };

  /// \brief One timestamped registry snapshot.
  struct Sample {
    uint64_t timestamp_us = 0;  ///< Clock reading when the sample was taken.
    RegistrySnapshot snapshot;
  };

  /// \brief One metric's value at one sample, with the delta/rate derived
  /// against the previous sample (0 for the first).
  struct Point {
    uint64_t timestamp_us = 0;
    double value = 0.0;
    double delta = 0.0;         ///< value - previous value.
    double rate_per_sec = 0.0;  ///< delta / elapsed seconds.
  };

  explicit TimeSeriesCollector(Options options);
  ~TimeSeriesCollector();

  TimeSeriesCollector(const TimeSeriesCollector&) = delete;
  TimeSeriesCollector& operator=(const TimeSeriesCollector&) = delete;

  /// Takes a sample unconditionally.
  void SampleNow();

  /// Takes a sample iff at least interval_us has elapsed (on the injected
  /// clock) since the last one — or none was ever taken. Returns whether a
  /// sample was taken. This is the deterministic entry point: callers (the
  /// maintenance path, the sim harness) invoke it at their own cadence and
  /// the clock decides.
  bool Tick();

  /// Starts the background sampling thread (wall-clock paced; one sample per
  /// interval). No-op if already running. Never used under the simulation
  /// harness — determinism requires Tick.
  void Start();

  /// Stops and joins the background thread, if running.
  void Stop();

  /// The ring contents, oldest first.
  std::vector<Sample> Samples() const;

  /// Total samples ever taken (>= Samples().size(); the difference was
  /// evicted).
  uint64_t samples_taken() const {
    return samples_taken_.load(std::memory_order_relaxed);
  }

  /// The per-sample values of one metric (matched by name + exact labels),
  /// with deltas and rates derived between consecutive samples. Histogram
  /// metrics expose their cumulative count (pair with `<name>:sum` via
  /// RenderJson for averages). Empty when the metric never appeared.
  std::vector<Point> Series(const std::string& name, const Labels& labels) const;

  /// JSON document for /timeseries.json:
  ///   {"interval_us":..., "samples_taken":..., "samples":[
  ///     {"t_us":..., "metrics":{"name{a=\"b\"}":value, ...}}, ...],
  ///    "rates":{"name{...}":per_sec, ...}}
  /// Histograms flatten to `<name>:count` and `<name>:sum` entries so rate
  /// derivation works uniformly. "rates" covers counters only, derived from
  /// the last two samples.
  std::string RenderJson() const;

  const Options& options() const { return options_; }

 private:
  void AppendSample(Sample sample);

  Options options_;
  Clock* clock_;

  mutable std::mutex mutex_;
  std::vector<Sample> ring_;  ///< Circular; ring_next_ is the write slot.
  size_t ring_next_ = 0;
  bool ring_full_ = false;
  uint64_t last_sample_us_ = 0;
  bool ever_sampled_ = false;
  std::atomic<uint64_t> samples_taken_{0};

  // Background thread state (Start/Stop).
  std::mutex thread_mutex_;
  std::condition_variable thread_cv_;
  std::thread thread_;
  bool stop_requested_ = false;
};

/// The canonical flat key for one metric instance: `name` alone when there
/// are no labels, else `name{k="v",...}` in registration order. Histograms
/// are additionally flattened as `<key>:count` / `<key>:sum` by RenderJson.
std::string MetricKey(const std::string& name, const Labels& labels);

}  // namespace obs
}  // namespace wavekit

#endif  // WAVEKIT_OBS_TIMESERIES_H_
