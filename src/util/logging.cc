#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace wavekit {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_log_level.load()), level_(level) {
  if (enabled_) {
    // Keep only the basename to keep lines short.
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
}

}  // namespace internal
}  // namespace wavekit
