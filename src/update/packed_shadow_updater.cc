#include "update/packed_shadow_updater.h"

#include <unordered_map>
#include <vector>

#include "index/index_builder.h"
#include "update/in_place_updater.h"
#include "update/simple_shadow_updater.h"
#include "util/crash_point.h"
#include "util/crc32c.h"
#include "util/macros.h"

namespace wavekit {

Status PackedShadowUpdater::Apply(std::shared_ptr<ConstituentIndex>* index,
                                  std::span<const DayBatch* const> adds,
                                  const TimeSet& deletes) {
  ConstituentIndex* old_index = index->get();
  Device* device = old_index->device();
  ExtentAllocator* allocator = old_index->allocator();
  const ConstituentIndex::Options& options = old_index->options();

  // Step 1: temporary packed index of the inserted records. (The smart copy
  // below merges from it, charging its build and scan I/O, as the paper's
  // SMCP accounting does.)
  std::shared_ptr<ConstituentIndex> temp;
  if (!adds.empty()) {
    WAVEKIT_ASSIGN_OR_RETURN(
        temp, IndexBuilder::BuildPacked(device, allocator, options, adds,
                                        old_index->name() + ".ins", parallel_));
  }

  // Read the temporary index's buckets up front so the merge below can
  // interleave them with the old index's buckets in one output pass.
  std::unordered_map<Value, std::vector<Entry>> insert_entries;
  if (temp != nullptr) {
    Status scan_status = temp->Scan([&](const Value& value, const Entry& e) {
      insert_entries[value].push_back(e);
    });
    WAVEKIT_RETURN_NOT_OK(scan_status);
  }

  // Step 2a: scan the old index once, dropping expired entries, and learn
  // the exact size of every surviving bucket.
  std::vector<std::pair<Value, std::vector<Entry>>> merged;
  merged.reserve(old_index->layout_order().size() + insert_entries.size());
  uint64_t total_entries = 0;
  {
    std::unordered_map<Value, size_t> slot_of;
    Status scan_status = old_index->Scan([&](const Value& value,
                                             const Entry& e) {
      if (deletes.contains(e.day)) return;
      auto [it, inserted] = slot_of.emplace(value, merged.size());
      if (inserted) merged.emplace_back(value, std::vector<Entry>{});
      merged[it->second].second.push_back(e);
      ++total_entries;
    });
    WAVEKIT_RETURN_NOT_OK(scan_status);
    // Append the inserts for surviving values into their buckets.
    for (auto& [value, entries] : merged) {
      auto it = insert_entries.find(value);
      if (it == insert_entries.end()) continue;
      entries.insert(entries.end(), it->second.begin(), it->second.end());
      total_entries += it->second.size();
      insert_entries.erase(it);
    }
  }
  // Step 3 (new values): buckets for values absent from the old index go
  // after the last old bucket, in the temporary index's layout order.
  if (temp != nullptr) {
    for (const Value& value : temp->layout_order()) {
      auto it = insert_entries.find(value);
      if (it == insert_entries.end()) continue;  // already merged above
      total_entries += it->second.size();
      merged.emplace_back(value, std::move(it->second));
    }
  }

  // Step 2b/3b: flush the packed result to one contiguous region.
  auto packed = std::make_shared<ConstituentIndex>(device, allocator, options,
                                                   old_index->name());
  if (options.codec != CodecMode::kRaw) {
    return FlushMergedCodec(device, allocator, options, merged,
                            std::move(packed), old_index, adds, deletes, temp,
                            index);
  }
  WAVEKIT_ASSIGN_OR_RETURN(Extent region,
                           allocator->Allocate(total_entries * kEntrySize));
  if (!parallel_.enabled()) {
    // Serial flush, kept verbatim: one sequential Write per bucket is the op
    // sequence the cost model meters.
    uint64_t cursor = region.offset;
    for (const auto& [value, entries] : merged) {
      if (entries.empty()) continue;
      const uint64_t length = entries.size() * kEntrySize;
      auto* bytes = reinterpret_cast<const std::byte*>(entries.data());
      WAVEKIT_RETURN_NOT_OK(
          device->Write(cursor, std::span<const std::byte>(bytes, length)));
      WAVEKIT_RETURN_NOT_OK(packed->InstallBucket(
          value, Extent{cursor, length}, static_cast<uint32_t>(entries.size()),
          static_cast<uint32_t>(entries.size()), Crc32c(bytes, length)));
      cursor += length;
    }
  } else {
    // Parallel flush: the merged layout is already fixed, so each task
    // serializes a disjoint slice of buckets and writes it with ~1 MiB
    // WriteBatch calls. Bytes and layout match the serial flush exactly.
    std::vector<uint64_t> starts(merged.size(), 0);
    uint64_t running = 0;
    for (size_t i = 0; i < merged.size(); ++i) {
      starts[i] = running;
      running += merged[i].second.size() * kEntrySize;
    }
    const size_t parts = parallel_.Partitions(merged.size());
    std::vector<Status> flush_status(std::max<size_t>(parts, 1), Status::OK());
    {
      ThreadPool::WaitGroup group(parallel_.pool);
      for (size_t p = 0; p < parts; ++p) {
        group.Submit([&, p]() {
          Status status = CrashPoints::Check("updater.packed.parallel_flush");
          if (!status.ok()) {
            flush_status[p] = std::move(status);
            return;
          }
          const size_t begin = merged.size() * p / parts;
          const size_t end = merged.size() * (p + 1) / parts;
          std::vector<Extent> extents;
          std::vector<std::byte> buffer;
          auto flush = [&]() -> Status {
            if (extents.empty()) return Status::OK();
            Status written = device->WriteBatch(extents, buffer);
            extents.clear();
            buffer.clear();
            return written;
          };
          for (size_t i = begin; i < end; ++i) {
            const auto& entries = merged[i].second;
            if (entries.empty()) continue;
            extents.push_back(Extent{region.offset + starts[i],
                                     entries.size() * kEntrySize});
            const auto* bytes =
                reinterpret_cast<const std::byte*>(entries.data());
            buffer.insert(buffer.end(), bytes,
                          bytes + entries.size() * kEntrySize);
            if (buffer.size() >= IndexBuilder::kWriteChunkBytes) {
              status = flush();
              if (!status.ok()) break;
            }
          }
          if (status.ok()) status = flush();
          flush_status[p] = std::move(status);
        });
      }
      group.Wait();
    }
    for (Status& status : flush_status) {
      if (!status.ok()) {
        // No bucket was installed: return the whole region for a clean
        // retry.
        (void)allocator->Free(region);
        return std::move(status);
      }
    }
    for (size_t i = 0; i < merged.size(); ++i) {
      const auto& [value, entries] = merged[i];
      if (entries.empty()) continue;
      const auto* bytes = reinterpret_cast<const std::byte*>(entries.data());
      WAVEKIT_RETURN_NOT_OK(packed->InstallBucket(
          value, Extent{region.offset + starts[i], entries.size() * kEntrySize},
          static_cast<uint32_t>(entries.size()),
          static_cast<uint32_t>(entries.size()),
          Crc32c(bytes, entries.size() * kEntrySize)));
    }
  }

  // Step 4: update the time-set and swap the new version in.
  TimeSet time_set = old_index->time_set();
  for (Day d : deletes) time_set.erase(d);
  for (const DayBatch* batch : adds) time_set.insert(batch->day);
  packed->mutable_time_set() = time_set;
  packed->set_packed(true);
  if (temp != nullptr) WAVEKIT_RETURN_NOT_OK(temp->Destroy());
  *index = std::move(packed);
  return Status::OK();
}

Status PackedShadowUpdater::FlushMergedCodec(
    Device* device, ExtentAllocator* allocator,
    const ConstituentIndex::Options& options,
    const std::vector<std::pair<Value, std::vector<Entry>>>& merged,
    std::shared_ptr<ConstituentIndex> packed, ConstituentIndex* old_index,
    std::span<const DayBatch* const> adds, const TimeSet& deletes,
    const std::shared_ptr<ConstituentIndex>& temp,
    std::shared_ptr<ConstituentIndex>* index) {
  // Encode first: encoding is a pure function of the merged entries, so the
  // serial and parallel flushes emit byte-identical extents; only the I/O
  // schedule differs.
  struct Encoded {
    EncodedBucket enc;
    uint64_t stored = 0;
    uint32_t crc = 0;
  };
  std::vector<Encoded> encoded(merged.size());
  auto stored_bytes = [&](size_t i) -> const std::byte* {
    return encoded[i].enc.codec == Codec::kRaw
               ? reinterpret_cast<const std::byte*>(merged[i].second.data())
               : encoded[i].enc.bytes.data();
  };
  auto encode_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const auto& entries = merged[i].second;
      if (entries.empty()) continue;
      auto& e = encoded[i];
      e.enc = EncodeBucket(entries.data(), entries.size(), options.codec);
      e.stored = e.enc.stored_length(entries.size());
      e.crc = Crc32c(stored_bytes(i), e.stored);
    }
  };
  if (parallel_.enabled()) {
    const size_t parts = parallel_.Partitions(merged.size());
    ThreadPool::WaitGroup group(parallel_.pool);
    for (size_t p = 0; p < parts; ++p) {
      group.Submit([&, p]() {
        encode_range(merged.size() * p / parts,
                     merged.size() * (p + 1) / parts);
      });
    }
    group.Wait();
  } else {
    encode_range(0, merged.size());
  }

  std::vector<uint64_t> starts(merged.size(), 0);
  uint64_t total_bytes = 0;
  for (size_t i = 0; i < merged.size(); ++i) {
    starts[i] = total_bytes;
    total_bytes += encoded[i].stored;
  }
  WAVEKIT_ASSIGN_OR_RETURN(Extent region, allocator->Allocate(total_bytes));

  if (!parallel_.enabled()) {
    // Serial flush: one sequential Write per bucket, same op shape as the
    // raw serial flush.
    for (size_t i = 0; i < merged.size(); ++i) {
      if (merged[i].second.empty()) continue;
      WAVEKIT_RETURN_NOT_OK(device->Write(
          region.offset + starts[i],
          std::span<const std::byte>(stored_bytes(i),
                                     static_cast<size_t>(encoded[i].stored))));
    }
  } else {
    const size_t parts = parallel_.Partitions(merged.size());
    std::vector<Status> flush_status(std::max<size_t>(parts, 1), Status::OK());
    {
      ThreadPool::WaitGroup group(parallel_.pool);
      for (size_t p = 0; p < parts; ++p) {
        group.Submit([&, p]() {
          Status status = CrashPoints::Check("updater.packed.parallel_flush");
          if (!status.ok()) {
            flush_status[p] = std::move(status);
            return;
          }
          const size_t begin = merged.size() * p / parts;
          const size_t end = merged.size() * (p + 1) / parts;
          std::vector<Extent> extents;
          std::vector<std::byte> buffer;
          auto flush = [&]() -> Status {
            if (extents.empty()) return Status::OK();
            Status written = device->WriteBatch(extents, buffer);
            extents.clear();
            buffer.clear();
            return written;
          };
          for (size_t i = begin; i < end; ++i) {
            if (merged[i].second.empty()) continue;
            extents.push_back(
                Extent{region.offset + starts[i], encoded[i].stored});
            buffer.insert(buffer.end(), stored_bytes(i),
                          stored_bytes(i) + encoded[i].stored);
            if (buffer.size() >= IndexBuilder::kWriteChunkBytes) {
              status = flush();
              if (!status.ok()) break;
            }
          }
          if (status.ok()) status = flush();
          flush_status[p] = std::move(status);
        });
      }
      group.Wait();
    }
    for (Status& status : flush_status) {
      if (!status.ok()) {
        // No bucket was installed: return the whole region for a clean
        // retry.
        (void)allocator->Free(region);
        return std::move(status);
      }
    }
  }

  for (size_t i = 0; i < merged.size(); ++i) {
    const auto& [value, entries] = merged[i];
    if (entries.empty()) continue;
    const uint32_t n = static_cast<uint32_t>(entries.size());
    WAVEKIT_RETURN_NOT_OK(packed->InstallBucket(
        value, BucketInfo{Extent{region.offset + starts[i], encoded[i].stored},
                          n, n, encoded[i].crc, encoded[i].enc.codec}));
  }

  TimeSet time_set = old_index->time_set();
  for (Day d : deletes) time_set.erase(d);
  for (const DayBatch* batch : adds) time_set.insert(batch->day);
  packed->mutable_time_set() = time_set;
  packed->set_packed(true);
  if (temp != nullptr) WAVEKIT_RETURN_NOT_OK(temp->Destroy());
  *index = std::move(packed);
  return Status::OK();
}

std::unique_ptr<Updater> MakeUpdater(UpdateTechniqueKind kind) {
  switch (kind) {
    case UpdateTechniqueKind::kInPlace:
      return std::make_unique<InPlaceUpdater>();
    case UpdateTechniqueKind::kSimpleShadow:
      return std::make_unique<SimpleShadowUpdater>();
    case UpdateTechniqueKind::kPackedShadow:
      return std::make_unique<PackedShadowUpdater>();
  }
  return nullptr;
}

const char* UpdateTechniqueKindName(UpdateTechniqueKind kind) {
  switch (kind) {
    case UpdateTechniqueKind::kInPlace:
      return "in-place";
    case UpdateTechniqueKind::kSimpleShadow:
      return "simple-shadow";
    case UpdateTechniqueKind::kPackedShadow:
      return "packed-shadow";
  }
  return "?";
}

}  // namespace wavekit
