// Table 10: daily maintenance work (pre-computation + transition) under
// simple shadow updating, priced with the SCAM Table 12 parameters.
//
// The "measured" columns come from running the real schemes at count level
// and pricing their operation logs; the "closed form" columns are the
// paper's Table 10 formulas where stated.

#include "bench/common.h"

namespace wavekit {
namespace bench {
namespace {

int Run() {
  Banner("Table 10: maintenance performance, simple shadow updating "
         "(SCAM parameters, W=10, n=2)",
         "DEL: pre = X*CP + Del, trans = Add. REINDEX: trans = X*Build. "
         "REINDEX++ and RATA push work into pre-computation so the "
         "transition critical path is a single Add.");

  const model::CaseParams params = model::CaseParams::Scam();
  const int window = 10;
  const int n = 2;

  sim::TablePrinter table({"scheme", "measured pre (s)", "measured trans (s)",
                           "closed-form pre (s)", "closed-form trans (s)"});
  std::vector<std::pair<SchemeKind, model::MaintenanceCost>> measured;
  for (SchemeKind kind : PaperSchemes()) {
    auto cost = model::MeasureMaintenance(
        kind, UpdateTechniqueKind::kSimpleShadow, params, window, n);
    if (!cost.ok()) cost.status().Abort("MeasureMaintenance");
    measured.emplace_back(kind, cost.ValueOrDie());
    auto closed = model::ClosedFormMaintenance(
        kind, UpdateTechniqueKind::kSimpleShadow, params, window, n);
    table.AddRow(
        {std::string(SchemeKindName(kind)),
         Fmt(measured.back().second.precompute_seconds),
         Fmt(measured.back().second.transition_seconds),
         closed ? Fmt(closed->precompute_seconds) : std::string("-"),
         closed ? Fmt(closed->transition_seconds) : std::string("-")});
  }
  table.Print(std::cout);

  ShapeChecks checks;
  auto find = [&](SchemeKind kind) {
    for (const auto& [k, cost] : measured) {
      if (k == kind) return cost;
    }
    std::abort();
  };
  checks.Check(
      std::abs(find(SchemeKind::kDel).transition_seconds -
               params.add_seconds) < 1.0,
      "DEL's transition critical path is one Add");
  checks.Check(
      std::abs(find(SchemeKind::kReindex).transition_seconds -
               (window / n) * params.build_seconds) < 1.0,
      "REINDEX's transition is (W/n) Builds");
  checks.Check(
      std::abs(find(SchemeKind::kReindexPlusPlus).transition_seconds -
               params.add_seconds) < 1.0,
      "REINDEX++'s transition is a single Add (new data queryable fastest)");
  checks.Check(find(SchemeKind::kReindexPlus).transition_seconds >
                   find(SchemeKind::kReindex).transition_seconds,
               "REINDEX+ has the worst transition time at n=2 (Figure 4's "
               "observation: it Adds ~1 + X/2 days on the critical path)");
  checks.Check(find(SchemeKind::kRata).transition_seconds <
                   find(SchemeKind::kReindexPlus).transition_seconds,
               "RATA transitions as fast as WATA, far faster than REINDEX+");
  return checks.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace wavekit

int main() { return wavekit::bench::Run(); }
