#include "update/simple_shadow_updater.h"

#include "util/macros.h"

namespace wavekit {

Status SimpleShadowUpdater::Apply(std::shared_ptr<ConstituentIndex>* index,
                                  std::span<const DayBatch* const> adds,
                                  const TimeSet& deletes) {
  ConstituentIndex* old_index = index->get();
  // The CP clone is the bulk of the work; it parallelizes across buckets
  // when the owning scheme granted maintenance threads. The in-place
  // mutations below stay serial (they are directory work, not I/O volume).
  WAVEKIT_ASSIGN_OR_RETURN(std::shared_ptr<ConstituentIndex> shadow,
                           old_index->Clone(old_index->name(), parallel_));
  WAVEKIT_RETURN_NOT_OK(shadow->DeleteDays(deletes));
  for (const DayBatch* batch : adds) {
    WAVEKIT_RETURN_NOT_OK(shadow->AddBatch(*batch));
  }
  // Swap: the old version lives on until the last query reference drops.
  *index = std::move(shadow);
  return Status::OK();
}

}  // namespace wavekit
