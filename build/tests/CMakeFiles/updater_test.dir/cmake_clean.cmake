file(REMOVE_RECURSE
  "CMakeFiles/updater_test.dir/update/updater_test.cc.o"
  "CMakeFiles/updater_test.dir/update/updater_test.cc.o.d"
  "updater_test"
  "updater_test.pdb"
  "updater_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updater_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
