add_test([=[PublicApiTest.EndToEndThroughUmbrellaHeader]=]  /root/repo/build/tests/public_api_test [==[--gtest_filter=PublicApiTest.EndToEndThroughUmbrellaHeader]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[PublicApiTest.EndToEndThroughUmbrellaHeader]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  public_api_test_TESTS PublicApiTest.EndToEndThroughUmbrellaHeader)
