#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>

namespace wavekit {
namespace obs {
namespace {

TEST(MetricsRegistryTest, OwnedInstrumentsUpdateAndSnapshot) {
  MetricsRegistry registry;
  Counter* counter = registry.AddCounter("c_total", "A counter.");
  Gauge* gauge = registry.AddGauge("g", "A gauge.");
  ConcurrentHistogram* histogram = registry.AddHistogram("h_us", "A histogram.");
  counter->Increment();
  counter->Increment(4);
  gauge->Set(2.5);
  gauge->Add(-0.5);
  histogram->Record(100);
  histogram->Record(200);

  const RegistrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 3u);
  // Sorted by name: c_total, g, h_us.
  EXPECT_EQ(snapshot.metrics[0].name, "c_total");
  EXPECT_DOUBLE_EQ(snapshot.metrics[0].value, 5.0);
  EXPECT_EQ(snapshot.metrics[1].name, "g");
  EXPECT_DOUBLE_EQ(snapshot.metrics[1].value, 2.0);
  EXPECT_EQ(snapshot.metrics[2].name, "h_us");
  EXPECT_EQ(snapshot.metrics[2].histogram.count(), 2u);
  EXPECT_EQ(snapshot.metrics[2].histogram.sum(), 300u);
}

TEST(MetricsRegistryTest, CallbacksArePolledAtSnapshotTime) {
  MetricsRegistry registry;
  uint64_t hits = 0;
  registry.AddCounterCallback("hits_total", "Hits.", {},
                              [&hits] { return hits; });
  double depth = 0.0;
  registry.AddGaugeCallback("depth", "Depth.", {}, [&depth] { return depth; });
  registry.AddHistogramCallback("lat_us", "Latency.", {}, [] {
    Histogram h;
    h.Record(7);
    return h;
  });

  hits = 42;
  depth = 3.0;
  const RegistrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 3u);
  EXPECT_DOUBLE_EQ(snapshot.metrics[0].value, 3.0);       // depth
  EXPECT_DOUBLE_EQ(snapshot.metrics[1].value, 42.0);      // hits_total
  EXPECT_EQ(snapshot.metrics[2].histogram.count(), 1u);   // lat_us
}

TEST(MetricsRegistryTest, UnregisterRemovesOnlyThatOwner) {
  MetricsRegistry registry;
  int owner_a = 0;
  int owner_b = 0;
  registry.AddCounter("a1_total", "", {}, &owner_a);
  registry.AddCounter("a2_total", "", {}, &owner_a);
  Counter* kept = registry.AddCounter("b_total", "", {}, &owner_b);
  registry.AddCounter("unowned_total", "");
  ASSERT_EQ(registry.size(), 4u);

  registry.Unregister(&owner_a);
  EXPECT_EQ(registry.size(), 2u);
  kept->Increment();  // owner_b's instrument is still alive and usable
  const RegistrySnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.metrics[0].name, "b_total");
  EXPECT_DOUBLE_EQ(snapshot.metrics[0].value, 1.0);
  EXPECT_EQ(snapshot.metrics[1].name, "unowned_total");

  registry.Unregister(nullptr);  // no-op, never removes untagged metrics
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistryTest, SnapshotSortsByNameThenLabels) {
  MetricsRegistry registry;
  registry.AddCounter("m_total", "", {{"shard", "1"}});
  registry.AddCounter("a_total", "");
  registry.AddCounter("m_total", "", {{"shard", "0"}});
  const RegistrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 3u);
  EXPECT_EQ(snapshot.metrics[0].name, "a_total");
  EXPECT_EQ(snapshot.metrics[1].labels[0].second, "0");
  EXPECT_EQ(snapshot.metrics[2].labels[0].second, "1");
}

/// Fixed registry whose renders are compared verbatim below. Histogram
/// values 10/20/30/40: p50 hits bucket [16,32) -> 31; p90/p99 hit bucket
/// [32,64) whose bound 63 clamps to max=40.
MetricsRegistry& GoldenRegistry() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    r->AddCounter("wavekit_test_requests_total", "Requests served.",
                  {{"method", "get"}})
        ->Increment(3);
    r->AddCounter("wavekit_test_requests_total", "Requests served.",
                  {{"method", "put"}})
        ->Increment(1);
    r->AddGauge("wavekit_test_queue_depth", "Queued requests.")->Set(7);
    ConcurrentHistogram* h =
        r->AddHistogram("wavekit_test_latency_us", "Request latency.");
    for (uint64_t v : {10u, 20u, 30u, 40u}) h->Record(v);
    return r;
  }();
  return *registry;
}

TEST(MetricsRenderTest, GoldenPrometheus) {
  const std::string expected =
      "# HELP wavekit_test_latency_us Request latency.\n"
      "# TYPE wavekit_test_latency_us summary\n"
      "wavekit_test_latency_us{quantile=\"0.5\"} 31\n"
      "wavekit_test_latency_us{quantile=\"0.9\"} 40\n"
      "wavekit_test_latency_us{quantile=\"0.99\"} 40\n"
      "wavekit_test_latency_us_sum 100\n"
      "wavekit_test_latency_us_count 4\n"
      "# HELP wavekit_test_queue_depth Queued requests.\n"
      "# TYPE wavekit_test_queue_depth gauge\n"
      "wavekit_test_queue_depth 7\n"
      "# HELP wavekit_test_requests_total Requests served.\n"
      "# TYPE wavekit_test_requests_total counter\n"
      "wavekit_test_requests_total{method=\"get\"} 3\n"
      "wavekit_test_requests_total{method=\"put\"} 1\n";
  EXPECT_EQ(GoldenRegistry().RenderPrometheus(), expected);
}

TEST(MetricsRenderTest, GoldenJson) {
  const std::string expected =
      "{\n"
      "  \"metrics\": [\n"
      "    {\"name\": \"wavekit_test_latency_us\", \"type\": \"histogram\", "
      "\"labels\": {}, \"count\": 4, \"sum\": 100, \"min\": 10, \"max\": 40, "
      "\"mean\": 25, \"p50\": 31, \"p90\": 40, \"p99\": 40},\n"
      "    {\"name\": \"wavekit_test_queue_depth\", \"type\": \"gauge\", "
      "\"labels\": {}, \"value\": 7},\n"
      "    {\"name\": \"wavekit_test_requests_total\", \"type\": \"counter\", "
      "\"labels\": {\"method\": \"get\"}, \"value\": 3},\n"
      "    {\"name\": \"wavekit_test_requests_total\", \"type\": \"counter\", "
      "\"labels\": {\"method\": \"put\"}, \"value\": 1}\n"
      "  ]\n"
      "}";
  EXPECT_EQ(GoldenRegistry().RenderJson(), expected);
}

TEST(MetricsRenderTest, PrometheusEscapesLabelValues) {
  MetricsRegistry registry;
  registry.AddCounter("esc_total", "", {{"path", "a\"b\\c\nd"}});
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("esc_total{path=\"a\\\"b\\\\c\\nd\"} 0"),
            std::string::npos)
      << text;
}

TEST(MetricsRenderTest, JsonEscapesStrings) {
  MetricsRegistry registry;
  registry.AddCounter("esc_total", "", {{"path", "a\"b\\c"}});
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"path\": \"a\\\"b\\\\c\""), std::string::npos) << json;
}

}  // namespace
}  // namespace obs
}  // namespace wavekit
