file(REMOVE_RECURSE
  "CMakeFiles/day_store_test.dir/wave/day_store_test.cc.o"
  "CMakeFiles/day_store_test.dir/wave/day_store_test.cc.o.d"
  "day_store_test"
  "day_store_test.pdb"
  "day_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/day_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
