# Empty compiler generated dependencies file for concurrent_serving.
# This may be replaced when dependencies are built.
