#include "workload/tpcd.h"

#include <cstdio>

namespace wavekit {
namespace workload {

TpcdGenerator::TpcdGenerator(TpcdConfig config) : config_(config) {}

Value TpcdGenerator::SuppkeyFor(uint64_t supplier) const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "supp%06llu",
                static_cast<unsigned long long>(supplier));
  return buf;
}

Value TpcdGenerator::SampleSuppkey(Rng& rng) const {
  return SuppkeyFor(rng.Uniform(config_.num_suppliers));
}

DayBatch TpcdGenerator::GenerateDay(Day day, uint64_t rows_override) {
  Rng day_rng = Rng(config_.seed).Fork(static_cast<uint64_t>(day));
  const uint64_t rows =
      rows_override != 0 ? rows_override : config_.rows_per_day;
  DayBatch batch;
  batch.day = day;
  batch.records.reserve(rows);
  for (uint64_t r = 0; r < rows; ++r) {
    Record record;
    record.record_id = next_record_id_++;
    record.day = day;
    record.values.push_back(SuppkeyFor(day_rng.Uniform(config_.num_suppliers)));
    // aux carries L_QUANTITY (1..50 per the TPC-D spec) so Q1-style
    // aggregates can run off index entries alone.
    record.aux.push_back(static_cast<uint32_t>(day_rng.UniformRange(1, 50)));
    batch.records.push_back(std::move(record));
  }
  return batch;
}

}  // namespace workload
}  // namespace wavekit
