file(REMOVE_RECURSE
  "CMakeFiles/wavectl.dir/wavectl.cc.o"
  "CMakeFiles/wavectl.dir/wavectl.cc.o.d"
  "wavectl"
  "wavectl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavectl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
