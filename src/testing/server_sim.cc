#include "testing/server_sim.h"

#include <deque>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "serve/protocol.h"
#include "serve/server_core.h"
#include "testing/oracle.h"
#include "testing/sim_executor.h"
#include "util/clock.h"
#include "util/crc32.h"
#include "util/macros.h"
#include "util/random.h"
#include "wave/scheme.h"
#include "wave/wave_service.h"
#include "workload/netnews.h"

namespace wavekit {
namespace testing {
namespace {

// splitmix64 finalizer: decorrelates (seed, episode) pairs so neighbouring
// episodes do not share workload prefixes.
uint64_t MixSeed(uint64_t seed, uint64_t episode) {
  uint64_t z = seed + episode * 0x9E3779B97F4A7C15ull + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t RoleSeed(uint64_t base, int tenant, const std::string& role) {
  uint64_t h = base + static_cast<uint64_t>(tenant) * 7919u;
  for (char c : role) h = h * 131 + static_cast<unsigned char>(c);
  return MixSeed(h, 0);
}

/// One tenant as the simulation sees it: the server-side service (owned by
/// the core), its single-stepped advance executor, the loopback session,
/// and the client-side truth (oracle + queued-but-unpublished batches).
struct SimTenant {
  SimExecutor* advance_exec = nullptr;  // owned by the tenant's WaveService
  std::unique_ptr<workload::NetnewsGenerator> netnews;
  OracleDB oracle;
  std::deque<DayBatch> queued;  // acknowledged but not yet published
  serve::ServerCore::Session* session = nullptr;
  Day next_day = 1;
};

/// Mutable episode state threaded through every request.
struct Episode {
  const ServerSimConfig* config = nullptr;
  serve::ServerCore* core = nullptr;
  Rng rng;
  uint32_t next_request_id = 1;
  std::string trace;
  std::string transcript;  // every reply byte the core produced
  uint64_t requests = 0;

  Episode() : rng(0) {}

  void Trace(const std::string& line) {
    trace.append(line);
    trace.push_back('\n');
  }
};

/// Ingests one encoded request and returns the single decoded reply frame.
Status Roundtrip(Episode* ep, SimTenant* tenant, const std::string& request,
                 serve::Frame* reply) {
  std::string out;
  WAVEKIT_RETURN_NOT_OK(
      ep->core->Ingest(tenant->session, request.data(), request.size(), &out));
  ep->transcript.append(out);
  ++ep->requests;
  serve::FrameReader reader;
  WAVEKIT_RETURN_NOT_OK(reader.Feed(out.data(), out.size()));
  if (!reader.Next(reply)) {
    return Status::Internal("request produced no complete reply frame");
  }
  if (reader.buffered_bytes() != 0) {
    return Status::Internal("request produced trailing reply bytes");
  }
  return Status::OK();
}

std::string DescribeEntries(const std::vector<Entry>& entries) {
  std::ostringstream os;
  os << entries.size() << " entries";
  return os.str();
}

/// PROBE over the live window, cross-checked entry-for-entry.
Status CheckProbe(Episode* ep, int tenant_id, SimTenant* tenant) {
  WaveService* service = ep->core->tenant(static_cast<uint16_t>(tenant_id));
  const DayRange range =
      DayRange::Window(service->current_day(), ep->config->window);
  const Value value = tenant->netnews->SampleWord(ep->rng);
  serve::ProbeRequest request{range, value};
  serve::Frame reply;
  WAVEKIT_RETURN_NOT_OK(Roundtrip(
      ep, tenant,
      serve::EncodeProbeRequest(static_cast<uint16_t>(tenant_id),
                                ep->next_request_id++, request),
      &reply));
  if (reply.header.type != static_cast<uint8_t>(serve::FrameType::kProbeReply)) {
    return Status::Internal("probe answered with frame type " +
                            std::to_string(reply.header.type));
  }
  serve::QueryReply decoded;
  WAVEKIT_RETURN_NOT_OK(serve::DecodeQueryReply(reply.payload, &decoded));
  if (!decoded.result.has_body()) {
    return Status::Internal("probe failed on the wire: " +
                            decoded.result.detail);
  }
  std::vector<Entry> got = decoded.entries;
  OracleDB::Sort(&got);
  const std::vector<Entry> want = tenant->oracle.Probe(value, range);
  if (got != want) {
    return Status::Internal(
        "probe mismatch for '" + value + "' at day " +
        std::to_string(service->current_day()) + ": server returned " +
        DescribeEntries(got) + ", oracle has " + DescribeEntries(want));
  }
  ep->Trace("t" + std::to_string(tenant_id) + " probe '" + value + "' day " +
            std::to_string(service->current_day()) + " -> " +
            std::to_string(got.size()));
  return Status::OK();
}

/// Full-window SCAN, cross-checked against the oracle's live window.
Status CheckScan(Episode* ep, int tenant_id, SimTenant* tenant) {
  WaveService* service = ep->core->tenant(static_cast<uint16_t>(tenant_id));
  const DayRange range =
      DayRange::Window(service->current_day(), ep->config->window);
  serve::ScanRequest request;
  request.range = range;
  request.max_entries = 0;
  serve::Frame reply;
  WAVEKIT_RETURN_NOT_OK(Roundtrip(
      ep, tenant,
      serve::EncodeScanRequest(static_cast<uint16_t>(tenant_id),
                               ep->next_request_id++, request),
      &reply));
  if (reply.header.type != static_cast<uint8_t>(serve::FrameType::kScanReply)) {
    return Status::Internal("scan answered with frame type " +
                            std::to_string(reply.header.type));
  }
  serve::QueryReply decoded;
  WAVEKIT_RETURN_NOT_OK(serve::DecodeQueryReply(reply.payload, &decoded));
  if (!decoded.result.has_body()) {
    return Status::Internal("scan failed on the wire: " +
                            decoded.result.detail);
  }
  std::vector<Entry> got = decoded.entries;
  OracleDB::Sort(&got);
  const std::vector<Entry> want = tenant->oracle.ScanAll(range);
  if (got != want) {
    return Status::Internal("scan mismatch at day " +
                            std::to_string(service->current_day()) +
                            ": server returned " + DescribeEntries(got) +
                            ", oracle has " + DescribeEntries(want));
  }
  ep->Trace("t" + std::to_string(tenant_id) + " scan day " +
            std::to_string(service->current_day()) + " -> " +
            std::to_string(got.size()));
  return Status::OK();
}

/// STATS must report the published day and the queued (pending) advances.
Status CheckStats(Episode* ep, int tenant_id, SimTenant* tenant) {
  serve::Frame reply;
  WAVEKIT_RETURN_NOT_OK(
      Roundtrip(ep, tenant,
                serve::EncodeStatsRequest(static_cast<uint16_t>(tenant_id),
                                          ep->next_request_id++),
                &reply));
  serve::StatsReply decoded;
  WAVEKIT_RETURN_NOT_OK(serve::DecodeStatsReply(reply.payload, &decoded));
  if (!decoded.result.ok()) {
    return Status::Internal("stats failed: " + decoded.result.detail);
  }
  if (decoded.current_day != tenant->oracle.current_day()) {
    return Status::Internal(
        "stats day " + std::to_string(decoded.current_day) +
        " != oracle day " + std::to_string(tenant->oracle.current_day()));
  }
  if (decoded.pending_advances != tenant->queued.size()) {
    return Status::Internal(
        "stats pending " + std::to_string(decoded.pending_advances) +
        " != queued " + std::to_string(tenant->queued.size()));
  }
  return Status::OK();
}

/// ADVANCE queues asynchronously; the ack must carry the still-current day.
Status QueueAdvance(Episode* ep, int tenant_id, SimTenant* tenant) {
  WaveService* service = ep->core->tenant(static_cast<uint16_t>(tenant_id));
  const Day before = service->current_day();
  DayBatch batch = tenant->netnews->GenerateDay(tenant->next_day);
  serve::AdvanceRequest request;
  request.batch = batch;
  serve::Frame reply;
  WAVEKIT_RETURN_NOT_OK(Roundtrip(
      ep, tenant,
      serve::EncodeAdvanceRequest(static_cast<uint16_t>(tenant_id),
                                  ep->next_request_id++, request),
      &reply));
  serve::AdvanceReply decoded;
  WAVEKIT_RETURN_NOT_OK(serve::DecodeAdvanceReply(reply.payload, &decoded));
  if (!decoded.result.ok()) {
    return Status::Internal("advance refused: " + decoded.result.detail);
  }
  if (decoded.current_day != before) {
    return Status::Internal("async advance ack day " +
                            std::to_string(decoded.current_day) +
                            " != pre-advance day " + std::to_string(before));
  }
  tenant->queued.push_back(std::move(batch));
  ep->Trace("t" + std::to_string(tenant_id) + " advance day " +
            std::to_string(tenant->next_day) + " queued (current " +
            std::to_string(before) + ")");
  ++tenant->next_day;
  return Status::OK();
}

/// Runs exactly one queued transition and syncs the oracle to the publish.
Status StepAdvance(Episode* ep, int tenant_id, SimTenant* tenant) {
  if (tenant->advance_exec == nullptr || tenant->queued.empty()) {
    return Status::OK();
  }
  if (!tenant->advance_exec->RunOne()) {
    return Status::Internal("queued advance had no task to run");
  }
  WaveService* service = ep->core->tenant(static_cast<uint16_t>(tenant_id));
  tenant->oracle.AdvanceDay(tenant->queued.front(), ep->config->window);
  tenant->queued.pop_front();
  if (service->current_day() != tenant->oracle.current_day()) {
    return Status::Internal(
        "publish day " + std::to_string(service->current_day()) +
        " != oracle day " + std::to_string(tenant->oracle.current_day()));
  }
  ep->Trace("t" + std::to_string(tenant_id) + " published day " +
            std::to_string(service->current_day()));
  return Status::OK();
}

Status RunEpisodeImpl(const ServerSimConfig& config, uint64_t episode,
                      Episode* ep) {
  const uint64_t eseed = MixSeed(config.seed, episode);
  ep->config = &config;
  ep->rng = Rng(eseed);

  constexpr size_t kSchemes =
      sizeof(kAllSchemeKinds) / sizeof(kAllSchemeKinds[0]);
  const SchemeKind kind = kAllSchemeKinds[episode % kSchemes];
  ep->Trace("episode " + std::to_string(episode) + " scheme " +
            std::string(SchemeKindName(kind)) + " tenants " +
            std::to_string(config.tenants));

  SimClock clock;
  serve::ServerCore::Options core_options;
  core_options.async_advance = true;
  core_options.clock = &clock;
  serve::ServerCore core(core_options);
  ep->core = &core;

  std::vector<std::unique_ptr<SimTenant>> tenants;
  for (int t = 0; t < config.tenants; ++t) {
    auto tenant = std::make_unique<SimTenant>();
    SimTenant* raw = tenant.get();

    WaveService::Options options;
    options.scheme = kind;
    options.config.window = config.window;
    options.config.num_indexes = 2;
    options.config.technique = UpdateTechniqueKind::kSimpleShadow;
    options.clock = &clock;
    // Serial query path: the parallel fan-out joins a std::latch that only
    // real pool workers release, so a workerless SimExecutor would deadlock
    // the probe. Queries stay on the calling thread; only the maintenance
    // and advance roles run on simulated executors.
    options.num_query_threads = 1;
    options.pool_factory = [raw, eseed, t](int /*threads*/,
                                           const std::string& role) {
      // The advance runner must stay strict FIFO (width 1) — async publish
      // order is part of the service contract.
      auto exec = std::make_unique<SimExecutor>(RoleSeed(eseed, t, role),
                                                /*width=*/1);
      if (role == "advance") raw->advance_exec = exec.get();
      return exec;
    };
    WAVEKIT_ASSIGN_OR_RETURN(std::unique_ptr<WaveService> service,
                             WaveService::Create(std::move(options)));

    workload::NetnewsConfig netnews_config;
    netnews_config.articles_per_day = config.articles_per_day;
    netnews_config.seed = eseed + static_cast<uint64_t>(t) * 1000003u;
    tenant->netnews =
        std::make_unique<workload::NetnewsGenerator>(netnews_config);

    std::vector<DayBatch> first_window;
    for (Day d = 1; d <= config.window; ++d) {
      DayBatch batch = tenant->netnews->GenerateDay(d);
      tenant->oracle.AdvanceDay(batch, config.window);
      first_window.push_back(std::move(batch));
    }
    tenant->next_day = config.window + 1;
    WAVEKIT_RETURN_NOT_OK(service->Start(std::move(first_window)));
    WAVEKIT_RETURN_NOT_OK(
        core.AddTenant(static_cast<uint16_t>(t), std::move(service)));

    WAVEKIT_ASSIGN_OR_RETURN(tenant->session, core.OpenSession());
    tenants.push_back(std::move(tenant));
  }

  // The daily grind: queue advances, probe the old snapshot, publish one
  // day at a time, probe between publishes, scan + stats after each day.
  for (int day_step = 0; day_step < config.days; ++day_step) {
    for (int t = 0; t < config.tenants; ++t) {
      WAVEKIT_RETURN_NOT_OK(QueueAdvance(ep, t, tenants[t].get()));
    }
    // Probes against the acknowledged-but-unpublished snapshot.
    for (int t = 0; t < config.tenants; ++t) {
      for (int p = 0; p < config.probes_per_step; ++p) {
        WAVEKIT_RETURN_NOT_OK(CheckProbe(ep, t, tenants[t].get()));
      }
      WAVEKIT_RETURN_NOT_OK(CheckStats(ep, t, tenants[t].get()));
    }
    // Publish in a seeded tenant order, probing right after each publish —
    // tenant A's new day must never leak into tenant B's answers.
    std::vector<int> order(config.tenants);
    for (int t = 0; t < config.tenants; ++t) order[t] = t;
    for (int i = config.tenants - 1; i > 0; --i) {
      std::swap(order[i],
                order[ep->rng.Uniform(static_cast<uint64_t>(i) + 1)]);
    }
    for (int t : order) {
      WAVEKIT_RETURN_NOT_OK(StepAdvance(ep, t, tenants[t].get()));
      for (int p = 0; p < config.probes_per_step; ++p) {
        const int probe_tenant =
            static_cast<int>(ep->rng.Uniform(config.tenants));
        WAVEKIT_RETURN_NOT_OK(
            CheckProbe(ep, probe_tenant, tenants[probe_tenant].get()));
      }
    }
    for (int t = 0; t < config.tenants; ++t) {
      WAVEKIT_RETURN_NOT_OK(CheckScan(ep, t, tenants[t].get()));
      WAVEKIT_RETURN_NOT_OK(CheckStats(ep, t, tenants[t].get()));
    }
    clock.Advance(1'000'000);  // one simulated second per day
  }

  // Drain rehearsal: queue one more advance on every tenant, then BeginDrain.
  // New sessions must be refused while the open sessions keep answering and
  // the queued advances land.
  for (int t = 0; t < config.tenants; ++t) {
    WAVEKIT_RETURN_NOT_OK(QueueAdvance(ep, t, tenants[t].get()));
  }
  core.BeginDrain();
  Result<serve::ServerCore::Session*> refused = core.OpenSession();
  if (refused.ok()) {
    return Status::Internal("drain admitted a new session");
  }
  if (refused.status().code() != StatusCode::kFailedPrecondition) {
    return Status::Internal("drain refusal surfaced as " +
                            refused.status().ToString());
  }
  ep->Trace("drain: new session refused, flushing in-flight work");
  for (int t = 0; t < config.tenants; ++t) {
    SimTenant* tenant = tenants[t].get();
    // Buffered requests on open sessions are still answered mid-drain.
    WAVEKIT_RETURN_NOT_OK(CheckProbe(ep, t, tenant));
    while (!tenant->queued.empty()) {
      WAVEKIT_RETURN_NOT_OK(StepAdvance(ep, t, tenant));
    }
  }
  WAVEKIT_RETURN_NOT_OK(core.WaitForMaintenance());
  for (int t = 0; t < config.tenants; ++t) {
    WAVEKIT_RETURN_NOT_OK(CheckScan(ep, t, tenants[t].get()));
    WAVEKIT_RETURN_NOT_OK(CheckStats(ep, t, tenants[t].get()));
    core.CloseSession(tenants[t]->session);
    tenants[t]->session = nullptr;
  }
  ep->Trace("drained: " + std::to_string(core.requests_served()) +
            " requests served");
  return Status::OK();
}

}  // namespace

ServerEpisodeResult ServerSimulator::RunEpisode(uint64_t episode) const {
  ServerEpisodeResult result;
  result.episode = episode;
  Episode ep;
  result.status = RunEpisodeImpl(config_, episode, &ep);
  result.trace = std::move(ep.trace);
  result.requests = ep.requests;
  std::string fold = ep.transcript;
  fold.append(result.trace);
  result.digest = Crc32(fold);
  if (!result.status.ok()) {
    result.repro = ServerReproCommand(config_.seed, episode);
  }
  return result;
}

ServerEpisodeResult ServerSimulator::RunMany() const {
  ServerEpisodeResult last;
  for (uint64_t e = 0; e < config_.episodes; ++e) {
    ServerEpisodeResult first = RunEpisode(e);
    if (!first.status.ok()) return first;
    ServerEpisodeResult second = RunEpisode(e);
    if (!second.status.ok()) return second;
    if (first.digest != second.digest || first.trace != second.trace) {
      first.status = Status::Internal(
          "episode " + std::to_string(e) +
          " is not byte-identical across replays (digest " +
          std::to_string(first.digest) + " vs " +
          std::to_string(second.digest) + ")");
      first.repro = ServerReproCommand(config_.seed, e);
      return first;
    }
    last = std::move(first);
  }
  return last;
}

std::string ServerReproCommand(uint64_t seed, uint64_t episode) {
  return "sim_torture --serve --seed=" + std::to_string(seed) +
         " --episode=" + std::to_string(episode);
}

}  // namespace testing
}  // namespace wavekit
