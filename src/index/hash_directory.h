// HashDirectory: hash-table-backed Directory.

#ifndef WAVEKIT_INDEX_HASH_DIRECTORY_H_
#define WAVEKIT_INDEX_HASH_DIRECTORY_H_

#include <unordered_map>

#include "index/directory.h"

namespace wavekit {

/// \brief Directory backed by std::unordered_map. O(1) expected lookup;
/// unordered iteration.
class HashDirectory : public Directory {
 public:
  HashDirectory() = default;

  DirectoryKind kind() const override { return DirectoryKind::kHash; }
  BucketInfo* Find(const Value& value) override;
  const BucketInfo* Find(const Value& value) const override;
  Status Insert(const Value& value, const BucketInfo& info) override;
  Status Remove(const Value& value) override;
  size_t size() const override { return map_.size(); }
  void ForEach(const std::function<void(const Value&, const BucketInfo&)>& fn)
      const override;
  std::unique_ptr<Directory> CloneEmpty() const override;
  bool ordered() const override { return false; }

 private:
  std::unordered_map<Value, BucketInfo> map_;
};

}  // namespace wavekit

#endif  // WAVEKIT_INDEX_HASH_DIRECTORY_H_
