file(REMOVE_RECURSE
  "CMakeFiles/op_evaluator_test.dir/model/op_evaluator_test.cc.o"
  "CMakeFiles/op_evaluator_test.dir/model/op_evaluator_test.cc.o.d"
  "op_evaluator_test"
  "op_evaluator_test.pdb"
  "op_evaluator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
