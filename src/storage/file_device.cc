#include "storage/file_device.h"

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <numeric>
#include <vector>

#include "util/fs.h"
#include "util/macros.h"

namespace wavekit {

namespace {

/// RAII kDirectIoAlignment-aligned heap buffer for the O_DIRECT bounce path.
/// One per call: the read path must stay safe under concurrent readers.
class AlignedBuffer {
 public:
  explicit AlignedBuffer(size_t size) {
    const size_t rounded =
        (size + kDirectIoAlignment - 1) / kDirectIoAlignment *
        kDirectIoAlignment;
    data_ = static_cast<std::byte*>(
        std::aligned_alloc(kDirectIoAlignment, rounded));
  }
  ~AlignedBuffer() { std::free(data_); }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  std::byte* data() { return data_; }
  bool ok() const { return data_ != nullptr; }

 private:
  std::byte* data_ = nullptr;
};

uint64_t AlignDown(uint64_t v) { return v / kDirectIoAlignment * kDirectIoAlignment; }
uint64_t AlignUp(uint64_t v) {
  return (v + kDirectIoAlignment - 1) / kDirectIoAlignment * kDirectIoAlignment;
}

bool IsAligned(uint64_t offset, size_t length, const void* ptr) {
  return offset % kDirectIoAlignment == 0 &&
         length % kDirectIoAlignment == 0 &&
         reinterpret_cast<uintptr_t>(ptr) % kDirectIoAlignment == 0;
}

/// errno -> Status for the syscall paths. Disk full (ENOSPC/EDQUOT) becomes
/// ResourceExhausted — an operational condition retry policies must not
/// treat as a transient fault; everything else stays IOError.
Status PosixError(const std::string& what, const std::string& path) {
  const int err = errno;
  const std::string message =
      what + " '" + path + "': " + std::strerror(err);
  if (err == ENOSPC || err == EDQUOT) {
    return Status::ResourceExhausted(message);
  }
  return Status::IOError(message);
}

}  // namespace

Result<std::unique_ptr<FileDevice>> FileDevice::Open(const std::string& path,
                                                     uint64_t capacity,
                                                     OpenOptions options) {
  const bool existed = FileExists(path);
  int flags = O_RDWR | O_CREAT | O_CLOEXEC;
  if (options.direct_io) flags |= O_DIRECT;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open '" + path + "'" +
                           (options.direct_io ? " (O_DIRECT)" : "") + ": " +
                           std::strerror(errno));
  }
  if (!existed) {
    // Make the new directory entry durable: without the parent fsync a crash
    // could lose the file itself even after its data was fdatasync'd.
    const Status synced = SyncDirectoryOf(path);
    if (!synced.ok()) {
      ::close(fd);
      return synced;
    }
  }
  return std::unique_ptr<FileDevice>(
      new FileDevice(path, fd, capacity, options.direct_io));
}

bool FileDevice::DirectIoSupported(const std::string& dir) {
  const std::string probe =
      dir + "/.wavekit_direct_probe_" + std::to_string(::getpid());
  const int fd =
      ::open(probe.c_str(), O_RDWR | O_CREAT | O_DIRECT | O_CLOEXEC, 0644);
  const bool supported = fd >= 0;
  if (fd >= 0) ::close(fd);
  ::unlink(probe.c_str());
  return supported;
}

FileDevice::FileDevice(std::string path, int fd, uint64_t capacity,
                       bool direct)
    : path_(std::move(path)), fd_(fd), capacity_(capacity), direct_(direct) {}

FileDevice::~FileDevice() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileDevice::CheckRange(uint64_t offset, size_t length) const {
  if (offset > capacity_ || length > capacity_ - offset) {
    return Status::OutOfRange("file device access [" + std::to_string(offset) +
                              ", " + std::to_string(offset + length) +
                              ") exceeds capacity " + std::to_string(capacity_));
  }
  return Status::OK();
}

Status FileDevice::PlainRead(uint64_t offset, std::span<std::byte> out) {
  size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return PosixError("pread", path_);
    }
    if (n == 0) {
      // Past EOF of a sparse file: unwritten bytes read as zero.
      std::memset(out.data() + done, 0, out.size() - done);
      break;
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FileDevice::PlainWrite(uint64_t offset, std::span<const std::byte> data) {
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return PosixError("pwrite", path_);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FileDevice::AlignedRead(uint64_t offset, std::byte* out, size_t length) {
  size_t done = 0;
  while (done < length) {
    const ssize_t n = ::pread(fd_, out + done, length - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return PosixError("pread(direct)", path_);
    }
    if (n == 0) {
      std::memset(out + done, 0, length - done);
      break;
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FileDevice::DirectRead(uint64_t offset, std::span<std::byte> out) {
  if (out.empty()) return Status::OK();
  if (IsAligned(offset, out.size(), out.data())) {
    return AlignedRead(offset, out.data(), out.size());
  }
  const uint64_t start = AlignDown(offset);
  const uint64_t end = AlignUp(offset + out.size());
  AlignedBuffer bounce(static_cast<size_t>(end - start));
  if (!bounce.ok()) return Status::IOError("aligned_alloc failed");
  WAVEKIT_RETURN_NOT_OK(
      AlignedRead(start, bounce.data(), static_cast<size_t>(end - start)));
  std::memcpy(out.data(), bounce.data() + (offset - start), out.size());
  return Status::OK();
}

Status FileDevice::DirectWrite(uint64_t offset,
                               std::span<const std::byte> data) {
  if (data.empty()) return Status::OK();
  const uint64_t start = AlignDown(offset);
  const uint64_t end = AlignUp(offset + data.size());
  const size_t cover = static_cast<size_t>(end - start);
  AlignedBuffer bounce(cover);
  if (!bounce.ok()) return Status::IOError("aligned_alloc failed");
  const bool head_partial = start != offset;
  const bool tail_partial = end != offset + data.size();
  if (head_partial || tail_partial) {
    // Read-modify-write the covering blocks so the partial head/tail keep
    // their neighbors' bytes. Only the boundary blocks actually need the
    // read, but one covering read keeps the request count at 1-write(+1
    // read) regardless of size — and aligned callers skip this path.
    WAVEKIT_RETURN_NOT_OK(AlignedRead(start, bounce.data(), cover));
  }
  std::memcpy(bounce.data() + (offset - start), data.data(), data.size());
  size_t done = 0;
  while (done < cover) {
    const ssize_t n = ::pwrite(fd_, bounce.data() + done, cover - done,
                               static_cast<off_t>(start + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return PosixError("pwrite(direct)", path_);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FileDevice::Read(uint64_t offset, std::span<std::byte> out) {
  WAVEKIT_RETURN_NOT_OK(CheckRange(offset, out.size()));
  return direct_ ? DirectRead(offset, out) : PlainRead(offset, out);
}

Status FileDevice::Write(uint64_t offset, std::span<const std::byte> data) {
  WAVEKIT_RETURN_NOT_OK(CheckRange(offset, data.size()));
  return direct_ ? DirectWrite(offset, data) : PlainWrite(offset, data);
}

Status FileDevice::ReadBatch(std::span<const Extent> extents,
                             std::span<std::byte> out) {
  uint64_t total = 0;
  for (const Extent& extent : extents) {
    WAVEKIT_RETURN_NOT_OK(
        CheckRange(extent.offset, static_cast<size_t>(extent.length)));
    total += extent.length;
  }
  if (total != out.size()) {
    return Status::InvalidArgument(
        "ReadBatch output buffer does not match the sum of extent lengths");
  }
  if (direct_) {
    // The bounce path already owns alignment; per-extent keeps it simple.
    size_t consumed = 0;
    for (const Extent& extent : extents) {
      WAVEKIT_RETURN_NOT_OK(DirectRead(
          extent.offset,
          out.subspan(consumed, static_cast<size_t>(extent.length))));
      consumed += static_cast<size_t>(extent.length);
    }
    return Status::OK();
  }

  // Destination slice of each extent in `out` (laid out in call order).
  std::vector<size_t> out_offset(extents.size());
  size_t acc = 0;
  for (size_t i = 0; i < extents.size(); ++i) {
    out_offset[i] = acc;
    acc += static_cast<size_t>(extents[i].length);
  }
  // Sort by file offset so adjacent runs become single preadv calls
  // (overlapping reads are harmless: each destination still receives the
  // bytes of its own extent).
  std::vector<size_t> order(extents.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return extents[a].offset != extents[b].offset
               ? extents[a].offset < extents[b].offset
               : a < b;
  });

  std::vector<struct iovec> iov;
  size_t i = 0;
  while (i < order.size()) {
    while (i < order.size() && extents[order[i]].empty()) ++i;
    if (i >= order.size()) break;
    const uint64_t run_offset = extents[order[i]].offset;
    uint64_t run_end = extents[order[i]].end();
    iov.clear();
    iov.push_back({out.data() + out_offset[order[i]],
                   static_cast<size_t>(extents[order[i]].length)});
    size_t j = i + 1;
    while (j < order.size() && iov.size() < size_t{IOV_MAX} &&
           extents[order[j]].offset == run_end) {
      iov.push_back({out.data() + out_offset[order[j]],
                     static_cast<size_t>(extents[order[j]].length)});
      run_end = extents[order[j]].end();
      ++j;
    }
    uint64_t pos = run_offset;
    size_t iov_index = 0;
    size_t iov_done = 0;  // bytes consumed of iov[iov_index]
    while (iov_index < iov.size()) {
      struct iovec current = iov[iov_index];
      current.iov_base = static_cast<std::byte*>(current.iov_base) + iov_done;
      current.iov_len -= iov_done;
      std::vector<struct iovec> rest;
      rest.push_back(current);
      rest.insert(rest.end(), iov.begin() + static_cast<long>(iov_index) + 1,
                  iov.end());
      const ssize_t n = ::preadv(fd_, rest.data(),
                                 static_cast<int>(rest.size()),
                                 static_cast<off_t>(pos));
      if (n < 0) {
        if (errno == EINTR) continue;
        return PosixError("preadv", path_);
      }
      if (n == 0) {
        // Past EOF: zero-fill everything left in this run.
        for (const struct iovec& v : rest) {
          std::memset(v.iov_base, 0, v.iov_len);
        }
        break;
      }
      pos += static_cast<uint64_t>(n);
      size_t advanced = static_cast<size_t>(n);
      while (advanced > 0) {
        const size_t remaining = iov[iov_index].iov_len - iov_done;
        if (advanced >= remaining) {
          advanced -= remaining;
          ++iov_index;
          iov_done = 0;
        } else {
          iov_done += advanced;
          advanced = 0;
        }
      }
    }
    i = j;
  }
  return Status::OK();
}

Status FileDevice::WriteBatch(std::span<const Extent> extents,
                              std::span<const std::byte> data) {
  uint64_t total = 0;
  for (const Extent& extent : extents) {
    WAVEKIT_RETURN_NOT_OK(
        CheckRange(extent.offset, static_cast<size_t>(extent.length)));
    total += extent.length;
  }
  if (total != data.size()) {
    return Status::InvalidArgument(
        "WriteBatch data buffer does not match the sum of extent lengths");
  }

  // Source slice of each extent in `data` (laid out in call order).
  std::vector<size_t> src_offset(extents.size());
  size_t acc = 0;
  for (size_t i = 0; i < extents.size(); ++i) {
    src_offset[i] = acc;
    acc += static_cast<size_t>(extents[i].length);
  }

  const auto write_one = [&](size_t i) {
    return direct_
               ? DirectWrite(extents[i].offset,
                             data.subspan(src_offset[i],
                                          static_cast<size_t>(
                                              extents[i].length)))
               : PlainWrite(extents[i].offset,
                            data.subspan(src_offset[i],
                                         static_cast<size_t>(
                                             extents[i].length)));
  };

  std::vector<size_t> order(extents.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return extents[a].offset != extents[b].offset
               ? extents[a].offset < extents[b].offset
               : a < b;
  });
  // Overlapping extents must keep call order (later extents win), which
  // sorting would break — take the in-order per-extent path instead.
  bool overlapping = false;
  for (size_t k = 0; k + 1 < order.size(); ++k) {
    if (!extents[order[k]].empty() && !extents[order[k + 1]].empty() &&
        extents[order[k]].end() > extents[order[k + 1]].offset) {
      overlapping = true;
      break;
    }
  }
  if (overlapping || direct_) {
    for (size_t i = 0; i < extents.size(); ++i) {
      WAVEKIT_RETURN_NOT_OK(write_one(i));
    }
    return Status::OK();
  }

  std::vector<struct iovec> iov;
  size_t i = 0;
  while (i < order.size()) {
    while (i < order.size() && extents[order[i]].empty()) ++i;
    if (i >= order.size()) break;
    const uint64_t run_offset = extents[order[i]].offset;
    uint64_t run_end = extents[order[i]].end();
    iov.clear();
    iov.push_back({const_cast<std::byte*>(data.data()) + src_offset[order[i]],
                   static_cast<size_t>(extents[order[i]].length)});
    size_t j = i + 1;
    while (j < order.size() && iov.size() < size_t{IOV_MAX} &&
           extents[order[j]].offset == run_end) {
      iov.push_back(
          {const_cast<std::byte*>(data.data()) + src_offset[order[j]],
           static_cast<size_t>(extents[order[j]].length)});
      run_end = extents[order[j]].end();
      ++j;
    }
    uint64_t pos = run_offset;
    size_t iov_index = 0;
    size_t iov_done = 0;
    while (iov_index < iov.size()) {
      struct iovec current = iov[iov_index];
      current.iov_base = static_cast<std::byte*>(current.iov_base) + iov_done;
      current.iov_len -= iov_done;
      std::vector<struct iovec> rest;
      rest.push_back(current);
      rest.insert(rest.end(), iov.begin() + static_cast<long>(iov_index) + 1,
                  iov.end());
      const ssize_t n = ::pwritev(fd_, rest.data(),
                                  static_cast<int>(rest.size()),
                                  static_cast<off_t>(pos));
      if (n < 0) {
        if (errno == EINTR) continue;
        return PosixError("pwritev", path_);
      }
      pos += static_cast<uint64_t>(n);
      size_t advanced = static_cast<size_t>(n);
      while (advanced > 0) {
        const size_t remaining = iov[iov_index].iov_len - iov_done;
        if (advanced >= remaining) {
          advanced -= remaining;
          ++iov_index;
          iov_done = 0;
        } else {
          iov_done += advanced;
          advanced = 0;
        }
      }
    }
    i = j;
  }
  return Status::OK();
}

Status FileDevice::Sync() {
  if (::fdatasync(fd_) != 0) {
    return PosixError("fdatasync", path_);
  }
  return Status::OK();
}

}  // namespace wavekit
