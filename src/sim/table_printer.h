// TablePrinter: aligned, monospace tables for bench output.

#ifndef WAVEKIT_SIM_TABLE_PRINTER_H_
#define WAVEKIT_SIM_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace wavekit {
namespace sim {

/// \brief Collects rows of cells and renders them with aligned columns, so
/// every bench prints its paper table/figure in the same readable format.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Optional caption printed above the table.
  void SetTitle(std::string title) { title_ = std::move(title); }

  void AddRow(std::vector<std::string> cells);

  std::string ToString() const;
  void Print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sim
}  // namespace wavekit

#endif  // WAVEKIT_SIM_TABLE_PRINTER_H_
