#include "storage/cached_device.h"

#include <algorithm>
#include <cstring>

#include "util/macros.h"

namespace wavekit {

CachedDevice::CachedDevice(Device* inner, size_t capacity_blocks,
                           uint64_t block_size)
    : inner_(inner),
      capacity_blocks_(std::max<size_t>(capacity_blocks, 1)),
      block_size_(std::max<uint64_t>(block_size, 1)) {}

Result<CachedDevice::LruList::iterator> CachedDevice::GetBlock(
    uint64_t block_id) {
  auto hit = index_.find(block_id);
  if (hit != index_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, hit->second);  // move to MRU
    return lru_.begin();
  }
  ++stats_.misses;
  // Load from the device. The final block of the address range may be
  // partial; clamp the read and zero-fill the tail.
  CachedBlock block;
  block.block_id = block_id;
  block.bytes.assign(block_size_, std::byte{0});
  const uint64_t offset = block_id * block_size_;
  const uint64_t readable =
      std::min<uint64_t>(block_size_, inner_->capacity() - offset);
  WAVEKIT_RETURN_NOT_OK(inner_->Read(
      offset, std::span<std::byte>(block.bytes.data(),
                                   static_cast<size_t>(readable))));
  if (lru_.size() >= capacity_blocks_) {
    index_.erase(lru_.back().block_id);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(std::move(block));
  index_[block_id] = lru_.begin();
  return lru_.begin();
}

Status CachedDevice::Read(uint64_t offset, std::span<std::byte> out) {
  if (offset > capacity() || out.size() > capacity() - offset) {
    return Status::OutOfRange("cached device read out of range");
  }
  size_t done = 0;
  while (done < out.size()) {
    const uint64_t position = offset + done;
    const uint64_t block_id = position / block_size_;
    const uint64_t within = position % block_size_;
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(block_size_ - within, out.size() - done));
    WAVEKIT_ASSIGN_OR_RETURN(auto block, GetBlock(block_id));
    std::memcpy(out.data() + done, block->bytes.data() + within, chunk);
    done += chunk;
  }
  return Status::OK();
}

void CachedDevice::PatchCache(uint64_t offset, std::span<const std::byte> data,
                              bool written_ok) {
  size_t done = 0;
  while (done < data.size()) {
    const uint64_t position = offset + done;
    const uint64_t block_id = position / block_size_;
    const uint64_t within = position % block_size_;
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(block_size_ - within, data.size() - done));
    auto cached = index_.find(block_id);
    if (cached != index_.end()) {
      if (written_ok) {
        std::memcpy(cached->second->bytes.data() + within, data.data() + done,
                    chunk);
      } else {
        lru_.erase(cached->second);
        index_.erase(cached);
      }
    }
    done += chunk;
  }
}

Status CachedDevice::Write(uint64_t offset, std::span<const std::byte> data) {
  // Write-through, device first: on failure the affected blocks are evicted
  // rather than updated, so the cache never serves bytes the device never
  // accepted.
  const Status written = inner_->Write(offset, data);
  PatchCache(offset, data, written.ok());
  return written;
}

Status CachedDevice::WriteBatch(std::span<const Extent> extents,
                                std::span<const std::byte> data) {
  // One inner batch, then patch (or, on failure, evict) per extent. A failed
  // batch may have written a prefix of the extents, so every touched block is
  // evicted rather than guessing which bytes landed.
  const Status written = inner_->WriteBatch(extents, data);
  size_t consumed = 0;
  for (const Extent& extent : extents) {
    const size_t length =
        std::min(static_cast<size_t>(extent.length), data.size() - consumed);
    PatchCache(extent.offset, data.subspan(consumed, length), written.ok());
    consumed += length;
    if (consumed >= data.size()) break;
  }
  return written;
}

void CachedDevice::Invalidate() {
  lru_.clear();
  index_.clear();
}

}  // namespace wavekit
