// MmapDevice: a Device over one memory-mapped file, for read-mostly
// constituents. Probes and scans become page-cache memcpys with no syscall
// per access; ReadBatch additionally madvise(WILLNEED)s the touched ranges
// so the kernel readahead runs ahead of the copy loop.

#ifndef WAVEKIT_STORAGE_MMAP_DEVICE_H_
#define WAVEKIT_STORAGE_MMAP_DEVICE_H_

#include <string>

#include "storage/device.h"
#include "util/result.h"

namespace wavekit {

/// \brief Device over one mmap'd file.
///
/// The file is sized to `capacity` up front (sparse: holes read as zeros and
/// cost nothing until written) and mapped MAP_SHARED, so writes dirty page
/// cache pages that the kernel writes back; Sync() (msync MS_SYNC) makes
/// them durable.
///
/// Thread safety: same contract as MemoryDevice — any number of concurrent
/// Reads, concurrent with Writes to disjoint byte ranges.
class MmapDevice : public Device {
 public:
  /// Opens (or creates) `path`, sizes it to `capacity`, and maps it.
  static Result<std::unique_ptr<MmapDevice>> Open(const std::string& path,
                                                  uint64_t capacity);

  ~MmapDevice() override;

  MmapDevice(const MmapDevice&) = delete;
  MmapDevice& operator=(const MmapDevice&) = delete;

  Status Read(uint64_t offset, std::span<std::byte> out) override;
  Status Write(uint64_t offset, std::span<const std::byte> data) override;

  /// madvise(WILLNEED) over every extent, then the base copy loop: the
  /// kernel faults the pages in asynchronously while earlier extents are
  /// being copied (the probe/scan batching win of this backend).
  Status ReadBatch(std::span<const Extent> extents,
                   std::span<std::byte> out) override;

  uint64_t capacity() const override { return capacity_; }

  const std::string& path() const { return path_; }

  /// msync(MS_SYNC) the whole mapping + fdatasync (covers metadata).
  Status Sync() override;

 private:
  MmapDevice(std::string path, int fd, std::byte* map, uint64_t capacity);

  Status CheckRange(uint64_t offset, size_t length) const;

  std::string path_;
  int fd_;
  std::byte* map_;
  uint64_t capacity_;
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_MMAP_DEVICE_H_
