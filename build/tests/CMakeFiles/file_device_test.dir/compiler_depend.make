# Empty compiler generated dependencies file for file_device_test.
# This may be replaced when dependencies are built.
