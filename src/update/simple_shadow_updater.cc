#include "update/simple_shadow_updater.h"

#include "util/macros.h"

namespace wavekit {

Status SimpleShadowUpdater::Apply(std::shared_ptr<ConstituentIndex>* index,
                                  std::span<const DayBatch* const> adds,
                                  const TimeSet& deletes) {
  ConstituentIndex* old_index = index->get();
  WAVEKIT_ASSIGN_OR_RETURN(std::shared_ptr<ConstituentIndex> shadow,
                           old_index->Clone(old_index->name()));
  WAVEKIT_RETURN_NOT_OK(shadow->DeleteDays(deletes));
  for (const DayBatch* batch : adds) {
    WAVEKIT_RETURN_NOT_OK(shadow->AddBatch(*batch));
  }
  // Swap: the old version lives on until the last query reference drops.
  *index = std::move(shadow);
  return Status::OK();
}

}  // namespace wavekit
