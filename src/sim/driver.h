// ExperimentDriver: runs one scheme day-by-day over a generated workload on
// a metered device, collecting per-day simulation and model measurements.

#ifndef WAVEKIT_SIM_DRIVER_H_
#define WAVEKIT_SIM_DRIVER_H_

#include "sim/experiment.h"
#include "util/result.h"

namespace wavekit {
namespace sim {

/// \brief Executes an ExperimentConfig end to end.
class ExperimentDriver {
 public:
  /// Runs Start over days 1..W, then `days_to_run` transitions, measuring
  /// each day: maintenance I/O split by phase (simulation), the priced
  /// operation log (model), the sampled query stream, and space.
  static Result<ExperimentResult> Run(const ExperimentConfig& config);
};

}  // namespace sim
}  // namespace wavekit

#endif  // WAVEKIT_SIM_DRIVER_H_
