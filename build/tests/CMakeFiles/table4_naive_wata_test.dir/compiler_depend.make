# Empty compiler generated dependencies file for table4_naive_wata_test.
# This may be replaced when dependencies are built.
