// RATA* (paper Section 4.3, Figure 17): "reindex and throw away" — WATA*
// plus a precomputed ladder of temporary indexes holding the suffixes of the
// expiring cluster, so each day the expiring constituent can be replaced by
// the suffix without its oldest day. Hard windows with WATA's transition
// speed.

#ifndef WAVEKIT_WAVE_RATA_SCHEME_H_
#define WAVEKIT_WAVE_RATA_SCHEME_H_

#include "wave/scheme.h"

namespace wavekit {

/// \brief The RATA* maintenance scheme. Hard windows; no deletion code; the
/// transition critical path is one AddToIndex plus a free rename, like
/// WATA*; the ladder costs extra space (up to ceil((W-1)/(n-1)) - 1 rungs)
/// and precomputation work.
class RataScheme : public Scheme {
 public:
  RataScheme(SchemeEnv env, SchemeConfig config) : Scheme(env, config) {}

  SchemeKind kind() const override { return SchemeKind::kRata; }
  std::string_view name() const override { return "RATA*"; }
  bool hard_window() const override { return true; }

  Status ValidateConfig() const override;

  std::vector<const ConstituentIndex*> TemporaryIndexes() const override;

 protected:
  Status DoStart() override;
  Status DoTransition(const DayBatch& new_day) override;
  Status DoAdopt() override;

 private:
  /// Figure 17's Initialize: ladder T_1..T_m over `days` (the next expiring
  /// cluster minus its first day); T_i holds the i most recent days.
  Status InitializeLadder(const TimeSet& days, Phase phase);

  std::vector<std::shared_ptr<ConstituentIndex>> temps_;  // T_1..T_m
  int temp_used_ = 0;
  size_t last_ = 0;
};

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_RATA_SCHEME_H_
