#include "storage/uring_device.h"

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "util/macros.h"

namespace wavekit {

namespace {

int SysIoUringSetup(unsigned entries, struct io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int SysIoUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

bool BlockAligned(const Extent& extent) {
  return extent.offset % kDirectIoAlignment == 0 &&
         extent.length % kDirectIoAlignment == 0;
}

/// RAII kDirectIoAlignment-aligned staging area for direct-I/O SQEs: O_DIRECT
/// requires the user memory handed to the kernel to be block-aligned, which
/// callers' spans are not.
class AlignedStaging {
 public:
  explicit AlignedStaging(size_t size) {
    const size_t padded =
        (size + kDirectIoAlignment - 1) & ~(kDirectIoAlignment - 1);
    data_ = static_cast<std::byte*>(
        std::aligned_alloc(kDirectIoAlignment, std::max(padded, size_t{1})));
  }
  ~AlignedStaging() { std::free(data_); }
  AlignedStaging(const AlignedStaging&) = delete;
  AlignedStaging& operator=(const AlignedStaging&) = delete;

  bool ok() const { return data_ != nullptr; }
  std::byte* data() { return data_; }

 private:
  std::byte* data_ = nullptr;
};

}  // namespace

/// The mmap'd rings of one io_uring instance. Layout per io_uring(7): the SQ
/// ring (head/tail/mask + index array), the CQ ring (head/tail/mask + CQE
/// array), and the SQE array, each mapped from the ring fd at fixed offsets.
/// Kernels with IORING_FEAT_SINGLE_MMAP serve SQ and CQ from one mapping.
struct UringDevice::Ring {
  int fd = -1;
  unsigned entries = 0;

  void* sq_map = nullptr;
  size_t sq_map_size = 0;
  void* cq_map = nullptr;  // == sq_map under IORING_FEAT_SINGLE_MMAP
  size_t cq_map_size = 0;
  struct io_uring_sqe* sqes = nullptr;
  size_t sqe_map_size = 0;

  std::atomic<unsigned>* sq_head = nullptr;
  std::atomic<unsigned>* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;

  std::atomic<unsigned>* cq_head = nullptr;
  std::atomic<unsigned>* cq_tail = nullptr;
  unsigned cq_mask = 0;
  struct io_uring_cqe* cqes = nullptr;

  // One ring, one submitter at a time.
  std::mutex mutex;
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> ops{0};

  ~Ring() {
    if (sqes != nullptr) ::munmap(sqes, sqe_map_size);
    if (cq_map != nullptr && cq_map != sq_map) ::munmap(cq_map, cq_map_size);
    if (sq_map != nullptr) ::munmap(sq_map, sq_map_size);
    if (fd >= 0) ::close(fd);
  }

  static std::unique_ptr<Ring> Create(unsigned entries) {
    struct io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const int ring_fd = SysIoUringSetup(entries, &params);
    if (ring_fd < 0) return nullptr;

    auto ring = std::make_unique<Ring>();
    ring->fd = ring_fd;
    ring->entries = params.sq_entries;

    size_t sq_size = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    size_t cq_size =
        params.cq_off.cqes + params.cq_entries * sizeof(struct io_uring_cqe);
    const bool single_mmap =
        (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) {
      sq_size = cq_size = std::max(sq_size, cq_size);
    }
    ring->sq_map_size = sq_size;
    ring->sq_map = ::mmap(nullptr, sq_size, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, ring_fd,
                          IORING_OFF_SQ_RING);
    if (ring->sq_map == MAP_FAILED) {
      ring->sq_map = nullptr;
      return nullptr;
    }
    if (single_mmap) {
      ring->cq_map = ring->sq_map;
      ring->cq_map_size = cq_size;
    } else {
      ring->cq_map_size = cq_size;
      ring->cq_map = ::mmap(nullptr, cq_size, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, ring_fd,
                            IORING_OFF_CQ_RING);
      if (ring->cq_map == MAP_FAILED) {
        ring->cq_map = nullptr;
        return nullptr;
      }
    }
    ring->sqe_map_size = params.sq_entries * sizeof(struct io_uring_sqe);
    void* sqe_map = ::mmap(nullptr, ring->sqe_map_size,
                           PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                           ring_fd, IORING_OFF_SQES);
    if (sqe_map == MAP_FAILED) return nullptr;
    ring->sqes = static_cast<struct io_uring_sqe*>(sqe_map);

    char* sq = static_cast<char*>(ring->sq_map);
    ring->sq_head =
        reinterpret_cast<std::atomic<unsigned>*>(sq + params.sq_off.head);
    ring->sq_tail =
        reinterpret_cast<std::atomic<unsigned>*>(sq + params.sq_off.tail);
    ring->sq_mask =
        *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    ring->sq_array = reinterpret_cast<unsigned*>(sq + params.sq_off.array);

    char* cq = static_cast<char*>(ring->cq_map);
    ring->cq_head =
        reinterpret_cast<std::atomic<unsigned>*>(cq + params.cq_off.head);
    ring->cq_tail =
        reinterpret_cast<std::atomic<unsigned>*>(cq + params.cq_off.tail);
    ring->cq_mask =
        *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    ring->cqes =
        reinterpret_cast<struct io_uring_cqe*>(cq + params.cq_off.cqes);
    return ring;
  }
};

bool UringDevice::KernelSupported() {
  static const bool supported = [] {
    auto probe = Ring::Create(4);
    return probe != nullptr;
  }();
  return supported;
}

Result<std::unique_ptr<UringDevice>> UringDevice::Open(const std::string& path,
                                                       uint64_t capacity,
                                                       Options options) {
  if (options.queue_depth == 0) {
    return Status::InvalidArgument("uring queue_depth must be > 0");
  }
  FileDevice::OpenOptions file_options;
  file_options.direct_io = options.direct_io;
  WAVEKIT_ASSIGN_OR_RETURN(std::unique_ptr<FileDevice> file,
                           FileDevice::Open(path, capacity, file_options));
  // nullptr ring = graceful FileDevice fallback (old kernel / seccomp).
  std::unique_ptr<Ring> ring = Ring::Create(options.queue_depth);
  return std::unique_ptr<UringDevice>(
      new UringDevice(std::move(file), options, std::move(ring)));
}

UringDevice::UringDevice(std::unique_ptr<FileDevice> file, Options options,
                         std::unique_ptr<Ring> ring)
    : file_(std::move(file)), options_(options), ring_(std::move(ring)) {}

UringDevice::~UringDevice() = default;

uint64_t UringDevice::ring_batches() const {
  return ring_ != nullptr ? ring_->batches.load(std::memory_order_relaxed) : 0;
}

uint64_t UringDevice::ring_ops() const {
  return ring_ != nullptr ? ring_->ops.load(std::memory_order_relaxed) : 0;
}

Status UringDevice::Read(uint64_t offset, std::span<std::byte> out) {
  return file_->Read(offset, out);
}

Status UringDevice::Write(uint64_t offset, std::span<const std::byte> data) {
  return file_->Write(offset, data);
}

Status UringDevice::Sync() { return file_->Sync(); }

Status UringDevice::RunBatch(std::span<const Extent> extents,
                             std::span<std::byte* const> buffers,
                             bool is_write) {
  Ring& ring = *ring_;
  std::lock_guard<std::mutex> lock(ring.mutex);
  ring.batches.fetch_add(1, std::memory_order_relaxed);

  // Remaining work per extent: a short completion (signal, partial I/O)
  // re-queues the extent's tail instead of failing the batch.
  struct Pending {
    uint64_t offset = 0;
    std::byte* buffer = nullptr;
    uint64_t remaining = 0;
  };
  std::vector<Pending> pending(extents.size());
  std::vector<uint32_t> queue;  // extent indexes still to submit
  queue.reserve(extents.size());
  for (size_t i = 0; i < extents.size(); ++i) {
    if (extents[i].empty()) continue;
    pending[i] = {extents[i].offset, buffers[i], extents[i].length};
    queue.push_back(static_cast<uint32_t>(i));
  }

  size_t next = 0;        // next queue slot to submit
  unsigned in_flight = 0;
  Status first_error = Status::OK();

  const auto reap = [&](unsigned wait_for) -> Status {
    if (wait_for > 0) {
      int rc;
      do {
        rc = SysIoUringEnter(ring.fd, 0, wait_for, IORING_ENTER_GETEVENTS);
      } while (rc < 0 && errno == EINTR);
      if (rc < 0) {
        return Status::IOError(std::string("io_uring_enter(getevents): ") +
                               std::strerror(errno));
      }
    }
    unsigned head = ring.cq_head->load(std::memory_order_relaxed);
    const unsigned tail = ring.cq_tail->load(std::memory_order_acquire);
    while (head != tail) {
      const struct io_uring_cqe& cqe = ring.cqes[head & ring.cq_mask];
      const uint32_t index = static_cast<uint32_t>(cqe.user_data);
      Pending& p = pending[index];
      if (cqe.res < 0) {
        if (cqe.res == -EINTR || cqe.res == -EAGAIN) {
          queue.push_back(index);  // full remainder, retry
        } else if (first_error.ok()) {
          first_error = Status::IOError(
              std::string(is_write ? "io_uring write '" : "io_uring read '") +
              file_->path() + "': " + std::strerror(-cqe.res));
        }
      } else {
        uint64_t done = static_cast<uint64_t>(cqe.res);
        if (done > p.remaining) done = p.remaining;
        if (!is_write && done == 0 && p.remaining > 0) {
          // Past EOF of the sparse file: unwritten bytes read as zero.
          std::memset(p.buffer, 0, static_cast<size_t>(p.remaining));
          p.remaining = 0;
        } else {
          p.offset += done;
          p.buffer += done;
          p.remaining -= done;
          if (p.remaining > 0) queue.push_back(index);  // short I/O: tail
        }
      }
      --in_flight;
      ++head;
    }
    ring.cq_head->store(head, std::memory_order_release);
    return Status::OK();
  };

  while (next < queue.size() || in_flight > 0) {
    // Fill the SQ up to queue_depth in flight (the bounded window), then
    // hand the whole wave to the kernel in ONE enter.
    unsigned submitted = 0;
    unsigned tail = ring.sq_tail->load(std::memory_order_relaxed);
    while (next < queue.size() && in_flight + submitted < ring.entries) {
      const uint32_t index = queue[next++];
      const Pending& p = pending[index];
      struct io_uring_sqe& sqe = ring.sqes[tail & ring.sq_mask];
      std::memset(&sqe, 0, sizeof(sqe));
      sqe.opcode = is_write ? IORING_OP_WRITE : IORING_OP_READ;
      sqe.fd = file_->fd();
      sqe.addr = reinterpret_cast<uint64_t>(p.buffer);
      sqe.len = static_cast<uint32_t>(p.remaining);
      sqe.off = p.offset;
      sqe.user_data = index;
      ring.sq_array[tail & ring.sq_mask] = tail & ring.sq_mask;
      ++tail;
      ++submitted;
    }
    if (submitted > 0) {
      ring.sq_tail->store(tail, std::memory_order_release);
      ring.ops.fetch_add(submitted, std::memory_order_relaxed);
      unsigned to_submit = submitted;
      while (to_submit > 0) {
        const int rc = SysIoUringEnter(ring.fd, to_submit, 0, 0);
        if (rc < 0) {
          if (errno == EINTR || errno == EAGAIN) continue;
          return Status::IOError(std::string("io_uring_enter(submit): ") +
                                 std::strerror(errno));
        }
        to_submit -= static_cast<unsigned>(rc);
      }
      in_flight += submitted;
    }
    // Wait for at least one completion (all of them usually arrive
    // together for page-cache I/O), reap everything available.
    WAVEKIT_RETURN_NOT_OK(reap(in_flight > 0 ? 1 : 0));
  }
  return first_error;
}

Status UringDevice::ReadBatch(std::span<const Extent> extents,
                              std::span<std::byte> out) {
  uint64_t total = 0;
  for (const Extent& extent : extents) {
    if (extent.offset > capacity() ||
        extent.length > capacity() - extent.offset) {
      return Status::OutOfRange(
          "uring device read extent [" + std::to_string(extent.offset) + ", " +
          std::to_string(extent.end()) + ") exceeds capacity " +
          std::to_string(capacity()));
    }
    total += extent.length;
  }
  if (total != out.size()) {
    return Status::InvalidArgument(
        "ReadBatch output buffer does not match the sum of extent lengths");
  }
  if (ring_ == nullptr) return file_->ReadBatch(extents, out);
  if (direct_io()) {
    // O_DIRECT SQEs need block-aligned offsets, lengths, AND user memory.
    // Fully aligned batches read into an aligned staging area through the
    // ring; anything else takes the FileDevice bounce path.
    for (const Extent& extent : extents) {
      if (!extent.empty() && !BlockAligned(extent)) {
        return file_->ReadBatch(extents, out);
      }
    }
    AlignedStaging staging(out.size());
    if (!staging.ok()) return Status::IOError("aligned_alloc failed");
    std::vector<std::byte*> buffers(extents.size());
    size_t consumed = 0;
    for (size_t i = 0; i < extents.size(); ++i) {
      // Every length is a block multiple, so each slice stays aligned.
      buffers[i] = staging.data() + consumed;
      consumed += static_cast<size_t>(extents[i].length);
    }
    WAVEKIT_RETURN_NOT_OK(RunBatch(extents, buffers, /*is_write=*/false));
    std::memcpy(out.data(), staging.data(), out.size());
    return Status::OK();
  }
  std::vector<std::byte*> buffers(extents.size());
  size_t consumed = 0;
  for (size_t i = 0; i < extents.size(); ++i) {
    buffers[i] = out.data() + consumed;
    consumed += static_cast<size_t>(extents[i].length);
  }
  return RunBatch(extents, buffers, /*is_write=*/false);
}

Status UringDevice::WriteBatch(std::span<const Extent> extents,
                               std::span<const std::byte> data) {
  uint64_t total = 0;
  for (const Extent& extent : extents) {
    if (extent.offset > capacity() ||
        extent.length > capacity() - extent.offset) {
      return Status::OutOfRange(
          "uring device write extent [" + std::to_string(extent.offset) +
          ", " + std::to_string(extent.end()) + ") exceeds capacity " +
          std::to_string(capacity()));
    }
    total += extent.length;
  }
  if (total != data.size()) {
    return Status::InvalidArgument(
        "WriteBatch data buffer does not match the sum of extent lengths");
  }
  if (ring_ == nullptr) return file_->WriteBatch(extents, data);
  // Overlapping extents must apply in call order; the ring completes out of
  // order, so those (rare, test-only) batches take the serial path.
  std::vector<Extent> sorted(extents.begin(), extents.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const Extent& a, const Extent& b) { return a.offset < b.offset; });
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    if (!sorted[i].empty() && !sorted[i + 1].empty() &&
        sorted[i].end() > sorted[i + 1].offset) {
      return file_->WriteBatch(extents, data);
    }
  }
  if (direct_io()) {
    // Fully block-aligned batches go through the ring from an aligned
    // staging copy; any unaligned extent falls back to the bounce loop.
    for (const Extent& extent : extents) {
      if (!extent.empty() && !BlockAligned(extent)) {
        return file_->WriteBatch(extents, data);
      }
    }
    AlignedStaging staging(data.size());
    if (!staging.ok()) return Status::IOError("aligned_alloc failed");
    std::memcpy(staging.data(), data.data(), data.size());
    std::vector<std::byte*> buffers(extents.size());
    size_t consumed = 0;
    for (size_t i = 0; i < extents.size(); ++i) {
      buffers[i] = staging.data() + consumed;
      consumed += static_cast<size_t>(extents[i].length);
    }
    return RunBatch(extents, buffers, /*is_write=*/true);
  }
  std::vector<std::byte*> buffers(extents.size());
  size_t consumed = 0;
  for (size_t i = 0; i < extents.size(); ++i) {
    buffers[i] = const_cast<std::byte*>(data.data()) + consumed;
    consumed += static_cast<size_t>(extents[i].length);
  }
  return RunBatch(extents, buffers, /*is_write=*/true);
}

}  // namespace wavekit
