// WaveService telemetry wiring: the PR 7 observability pipeline end to end —
// latency decorator, event journal, time-series collector, degraded flag —
// all hanging off one service and one registry, including the /healthz flip
// through an embedded HttpExporter.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/event_journal.h"
#include "obs/http_exporter.h"
#include "obs/latency_device.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "storage/fault_injecting_device.h"
#include "testing/test_env.h"
#include "wave/wave_service.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;

WaveService::Options TelemetryOptions(obs::MetricsRegistry* registry) {
  WaveService::Options options;
  options.scheme = SchemeKind::kWata;
  options.config.window = 6;
  options.config.num_indexes = 3;
  options.device_capacity = uint64_t{1} << 24;
  options.metrics_registry = registry;
  options.trace_sample_rate = 1.0;
  options.track_device_latency = true;
  options.event_ring_capacity = 128;
  options.collector_interval_us = 1;  // every AdvanceDay tick samples
  options.collector_ring_capacity = 64;
  return options;
}

Result<std::unique_ptr<WaveService>> StartedService(
    WaveService::Options options) {
  WAVEKIT_ASSIGN_OR_RETURN(std::unique_ptr<WaveService> service,
                           WaveService::Create(std::move(options)));
  std::vector<DayBatch> first;
  for (Day d = 1; d <= 6; ++d) first.push_back(MakeMixedBatch(d));
  WAVEKIT_RETURN_NOT_OK(service->Start(std::move(first)));
  return service;
}

TEST(WaveServiceObsTest, TelemetryIsOffByDefault) {
  WaveService::Options options;
  options.config.window = 6;
  options.config.num_indexes = 3;
  options.device_capacity = uint64_t{1} << 24;
  auto made = StartedService(std::move(options));
  ASSERT_TRUE(made.ok()) << made.status();
  WaveService& service = *made.ValueOrDie();
  EXPECT_EQ(service.events(), nullptr);
  EXPECT_EQ(service.collector(), nullptr);
  EXPECT_EQ(service.latency_device(), nullptr);
  EXPECT_FALSE(service.degraded());
}

TEST(WaveServiceObsTest, FullPipelineWiresAndJournalsLifecycle) {
  obs::MetricsRegistry registry;
  auto made = StartedService(TelemetryOptions(&registry));
  ASSERT_TRUE(made.ok()) << made.status();
  WaveService& service = *made.ValueOrDie();

  ASSERT_NE(service.events(), nullptr);
  ASSERT_NE(service.collector(), nullptr);
  ASSERT_NE(service.latency_device(), nullptr);

  ASSERT_OK(service.AdvanceDay(MakeMixedBatch(7)));
  ASSERT_OK(service.AdvanceDay(MakeMixedBatch(8)));
  std::vector<Entry> out;
  ASSERT_OK(service.IndexProbe("alpha", &out));

  // Lifecycle events: service_start, then (advance_start, advance_commit)
  // per transition.
  const std::vector<obs::Event> events = service.events()->Events();
  ASSERT_GE(events.size(), 5u);
  EXPECT_EQ(events[0].type, obs::EventType::kServiceStart);
  EXPECT_EQ(events[1].type, obs::EventType::kAdvanceStart);
  EXPECT_EQ(events[1].day, 7);
  EXPECT_EQ(events[2].type, obs::EventType::kAdvanceCommit);
  EXPECT_EQ(events[3].type, obs::EventType::kAdvanceStart);
  EXPECT_EQ(events[3].day, 8);
  EXPECT_EQ(events[4].type, obs::EventType::kAdvanceCommit);

  // The collector ticked on the maintenance path.
  EXPECT_GE(service.collector()->samples_taken(), 2u);

  // The latency decorator saw real device traffic.
  uint64_t recorded = 0;
  for (int op = 0; op < obs::kNumOpKinds; ++op) {
    for (size_t phase = 0; phase < kNumPhases; ++phase) {
      recorded += service.latency_device()
                      ->histogram(static_cast<obs::OpKind>(op),
                                  static_cast<Phase>(phase))
                      .count();
    }
  }
  EXPECT_GT(recorded, 0u);

  // The registry exports the whole pipeline, with backend identity labels.
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("wavekit_device_latency_us"), std::string::npos);
  EXPECT_NE(text.find("wavekit_device_observed_seconds"), std::string::npos);
  EXPECT_NE(text.find("wavekit_device_latency_drift_ratio"),
            std::string::npos);
  EXPECT_NE(text.find("backend=\"memory\""), std::string::npos);
  EXPECT_NE(text.find("wavekit_service_degraded"), std::string::npos);
  EXPECT_NE(text.find("wavekit_events_appended_total"), std::string::npos);
  EXPECT_NE(text.find("wavekit_timeseries_samples_total"), std::string::npos);
}

TEST(WaveServiceObsTest, FailedAdvanceFlipsDegradedAndHealthz) {
  FaultInjectingDevice* faulty = nullptr;
  obs::MetricsRegistry registry;
  WaveService::Options options = TelemetryOptions(&registry);
  options.device_interposer = [&faulty](Device* inner) {
    auto device = std::make_unique<FaultInjectingDevice>(inner);
    faulty = device.get();
    return device;
  };
  auto made = StartedService(std::move(options));
  ASSERT_TRUE(made.ok()) << made.status();
  WaveService& service = *made.ValueOrDie();
  ASSERT_NE(faulty, nullptr);
  EXPECT_FALSE(service.degraded());

  obs::HttpExporter::Options http;
  http.registry = &registry;
  http.health = [&service](std::string* detail) {
    if (!service.degraded()) return true;
    *detail = service.degraded_detail();
    return false;
  };
  obs::HttpExporter exporter(std::move(http));
  EXPECT_EQ(exporter.Handle("GET", "/healthz").status, 200);

  faulty->set_write_error_rate(1.0);
  const Status failed = service.AdvanceDay(MakeMixedBatch(7));
  ASSERT_FALSE(failed.ok());
  faulty->set_write_error_rate(0.0);

  EXPECT_TRUE(service.degraded());
  EXPECT_NE(service.degraded_detail().find("day 7"), std::string::npos)
      << service.degraded_detail();

  const auto health = exporter.Handle("GET", "/healthz");
  EXPECT_EQ(health.status, 503);
  EXPECT_NE(health.body.find("degraded"), std::string::npos);

  // The journal recorded the rollback and the degraded transition.
  bool saw_rollback = false, saw_degraded = false;
  for (const obs::Event& event : service.events()->Events()) {
    saw_rollback |= event.type == obs::EventType::kAdvanceRollback;
    saw_degraded |= event.type == obs::EventType::kDegradedEnter;
  }
  EXPECT_TRUE(saw_rollback);
  EXPECT_TRUE(saw_degraded);

  // The degraded gauge exports as 1.
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("wavekit_service_degraded 1"), std::string::npos)
      << text.substr(0, 400);
}

}  // namespace
}  // namespace wavekit
