#include "storage/sharded_cached_device.h"

#include <algorithm>
#include <cstring>

#include "util/macros.h"

namespace wavekit {

ShardedCachedDevice::ShardedCachedDevice(Device* inner, size_t capacity_blocks,
                                         uint64_t block_size,
                                         size_t num_shards)
    : inner_(inner),
      capacity_blocks_(std::max<size_t>(capacity_blocks, 1)),
      block_size_(std::max<uint64_t>(block_size, 1)),
      per_shard_capacity_(std::max<size_t>(
          (capacity_blocks_ + std::max<size_t>(num_shards, 1) - 1) /
              std::max<size_t>(num_shards, 1),
          1)),
      shards_(std::max<size_t>(num_shards, 1)) {}

Status ShardedCachedDevice::ReadThroughBlock(uint64_t block_id,
                                             uint64_t within,
                                             std::span<std::byte> out) {
  Shard& shard = ShardFor(block_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto hit = shard.index.find(block_id);
  if (hit != shard.index.end()) {
    ++shard.stats.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, hit->second);  // MRU
    std::memcpy(out.data(), hit->second->bytes.data() + within, out.size());
    return Status::OK();
  }
  ++shard.stats.misses;
  // Load from the device. The final block of the address range may be
  // partial; clamp the read and zero-fill the tail. Holding the shard lock
  // during the load serializes misses WITHIN one shard only; accesses to the
  // other shards keep going.
  CachedBlock block;
  block.block_id = block_id;
  block.bytes.assign(static_cast<size_t>(block_size_), std::byte{0});
  const uint64_t offset = block_id * block_size_;
  const uint64_t readable =
      std::min<uint64_t>(block_size_, inner_->capacity() - offset);
  WAVEKIT_RETURN_NOT_OK(inner_->Read(
      offset,
      std::span<std::byte>(block.bytes.data(), static_cast<size_t>(readable))));
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().block_id);
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
  shard.lru.push_front(std::move(block));
  shard.index[block_id] = shard.lru.begin();
  std::memcpy(out.data(), shard.lru.front().bytes.data() + within, out.size());
  return Status::OK();
}

Status ShardedCachedDevice::Read(uint64_t offset, std::span<std::byte> out) {
  if (offset > capacity() || out.size() > capacity() - offset) {
    return Status::OutOfRange("sharded cached device read out of range");
  }
  size_t done = 0;
  while (done < out.size()) {
    const uint64_t position = offset + done;
    const uint64_t block_id = position / block_size_;
    const uint64_t within = position % block_size_;
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(block_size_ - within, out.size() - done));
    WAVEKIT_RETURN_NOT_OK(
        ReadThroughBlock(block_id, within, out.subspan(done, chunk)));
    done += chunk;
  }
  return Status::OK();
}

Status ShardedCachedDevice::Write(uint64_t offset,
                                  std::span<const std::byte> data) {
  // Write-through, device first: if the device write fails, the cache must
  // not keep serving bytes the device never accepted (phantom data), so the
  // affected blocks are evicted instead of updated. On success any cached
  // blocks are patched under their shard locks. A single maintenance writer
  // plus the shadow-update discipline (readers never probe extents still
  // being written) keeps this race-free for readers.
  const Status written = inner_->Write(offset, data);
  PatchCache(offset, data, written.ok());
  return written;
}

void ShardedCachedDevice::PatchCache(uint64_t offset,
                                     std::span<const std::byte> data,
                                     bool written_ok) {
  size_t done = 0;
  while (done < data.size()) {
    const uint64_t position = offset + done;
    const uint64_t block_id = position / block_size_;
    const uint64_t within = position % block_size_;
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(block_size_ - within, data.size() - done));
    Shard& shard = ShardFor(block_id);
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      auto cached = shard.index.find(block_id);
      if (cached != shard.index.end()) {
        if (written_ok) {
          std::memcpy(cached->second->bytes.data() + within,
                      data.data() + done, chunk);
        } else {
          // The device's contents for this block are now unknown (possibly a
          // torn write); drop it so the next read refetches the truth.
          shard.lru.erase(cached->second);
          shard.index.erase(cached);
        }
      }
    }
    done += chunk;
  }
}

Status ShardedCachedDevice::WriteBatch(std::span<const Extent> extents,
                                       std::span<const std::byte> data) {
  // One inner batch (a single metering round / lock acquisition below), then
  // per-extent cache patching under shard locks. A failed batch may have
  // persisted any prefix, so every touched block is evicted on error.
  const Status written = inner_->WriteBatch(extents, data);
  size_t consumed = 0;
  for (const Extent& extent : extents) {
    const size_t length =
        std::min(static_cast<size_t>(extent.length), data.size() - consumed);
    PatchCache(extent.offset, data.subspan(consumed, length), written.ok());
    consumed += length;
    if (consumed >= data.size()) break;
  }
  return written;
}

CacheStats ShardedCachedDevice::stats() const {
  CacheStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.evictions += shard.stats.evictions;
  }
  return total;
}

CacheStats ShardedCachedDevice::shard_stats(size_t shard) const {
  const Shard& s = shards_[shard % shards_.size()];
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.stats;
}

void ShardedCachedDevice::ResetStats() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.stats = CacheStats{};
  }
}

size_t ShardedCachedDevice::cached_blocks() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

size_t ShardedCachedDevice::shard_cached_blocks(size_t shard) const {
  const Shard& s = shards_[shard % shards_.size()];
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.lru.size();
}

void ShardedCachedDevice::Invalidate() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
  }
}

}  // namespace wavekit
