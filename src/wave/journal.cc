#include "wave/journal.h"

#include <sstream>

#include "util/crash_point.h"
#include "util/crc32.h"
#include "util/fs.h"
#include "util/macros.h"

namespace wavekit {
namespace {

// Single line: "wavekit-journal 1 intent <day> crc <crc32-of-prefix>".
std::string JournalBody(Day day) {
  return "wavekit-journal 1 intent " + std::to_string(day);
}

}  // namespace

Status MaintenanceJournal::WriteIntent(Day day) {
  const std::string body = JournalBody(day);
  const std::string contents =
      body + " crc " + std::to_string(Crc32(body)) + "\n";
  return AtomicWriteFile(path_, contents, "journal.intent");
}

Status MaintenanceJournal::Commit() {
  WAVEKIT_RETURN_NOT_OK(CrashPoints::Check("journal.commit"));
  return RemoveFileDurable(path_);
}

Result<std::optional<Day>> MaintenanceJournal::Read(const std::string& path) {
  Result<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) {
    if (contents.status().IsNotFound()) return std::optional<Day>();
    return contents.status();
  }
  std::istringstream in(contents.ValueOrDie());
  std::string magic, version, intent_tag, crc_tag;
  Day day = 0;
  uint64_t crc = 0;
  if (!(in >> magic >> version >> intent_tag >> day >> crc_tag >> crc) ||
      magic != "wavekit-journal" || version != "1" ||
      intent_tag != "intent" || crc_tag != "crc") {
    return Status::InvalidArgument("malformed maintenance journal '" + path +
                                   "'");
  }
  if (Crc32(JournalBody(day)) != crc) {
    return Status::InvalidArgument("maintenance journal CRC mismatch '" +
                                   path + "'");
  }
  return std::optional<Day>(day);
}

}  // namespace wavekit
