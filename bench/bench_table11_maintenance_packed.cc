// Table 11: daily maintenance work under PACKED shadow updating. Deletions
// fold into the smart copy and incremental inserts cost Build rather than
// Add, so maintenance is typically cheaper than with simple shadowing.

#include "bench/common.h"

namespace wavekit {
namespace bench {
namespace {

int Run() {
  Banner("Table 11: maintenance performance, packed shadow updating "
         "(SCAM parameters, W=10, n=2)",
         "DEL: trans = X*SMCP + Build (delete folded into the smart copy). "
         "Packed-shadow maintenance is typically cheaper than simple-shadow "
         "because Add (CONTIGUOUS copying) is replaced by Build.");

  const model::CaseParams params = model::CaseParams::Scam();
  const int window = 10;
  const int n = 2;

  sim::TablePrinter table({"scheme", "packed pre (s)", "packed trans (s)",
                           "simple pre (s)", "simple trans (s)",
                           "packed total", "simple total"});
  struct Row {
    SchemeKind kind;
    model::MaintenanceCost packed;
    model::MaintenanceCost simple;
  };
  std::vector<Row> rows;
  for (SchemeKind kind : PaperSchemes()) {
    auto packed = model::MeasureMaintenance(
        kind, UpdateTechniqueKind::kPackedShadow, params, window, n);
    auto simple = model::MeasureMaintenance(
        kind, UpdateTechniqueKind::kSimpleShadow, params, window, n);
    if (!packed.ok()) packed.status().Abort("packed");
    if (!simple.ok()) simple.status().Abort("simple");
    rows.push_back(Row{kind, packed.ValueOrDie(), simple.ValueOrDie()});
    const Row& row = rows.back();
    table.AddRow({std::string(SchemeKindName(kind)),
                  Fmt(row.packed.precompute_seconds),
                  Fmt(row.packed.transition_seconds),
                  Fmt(row.simple.precompute_seconds),
                  Fmt(row.simple.transition_seconds),
                  Fmt(row.packed.total()), Fmt(row.simple.total())});
  }
  table.Print(std::cout);

  ShapeChecks checks;
  auto find = [&](SchemeKind kind) -> const Row& {
    for (const Row& row : rows) {
      if (row.kind == kind) return row;
    }
    std::abort();
  };
  const Row& del = find(SchemeKind::kDel);
  const double expected_del =
      (window / n) * params.SmcpSeconds() + params.build_seconds;
  checks.Check(std::abs(del.packed.total() - expected_del) <
                   0.02 * expected_del,
               "DEL packed-shadow total = X*SMCP + Build (Table 11 row)");
  checks.Check(del.packed.precompute_seconds < 1.0,
               "DEL packed shadow has no pre-computation (the smart copy "
               "needs the new data)");
  for (SchemeKind kind :
       {SchemeKind::kDel, SchemeKind::kWata, SchemeKind::kRata}) {
    checks.Check(find(kind).packed.total() < find(kind).simple.total(),
                 std::string(SchemeKindName(kind)) +
                     ": packed shadowing maintains for less than simple "
                     "shadowing (Add replaced by Build/SMCP)");
  }
  checks.Check(find(SchemeKind::kReindexPlus).packed.total() <
                   1.05 * find(SchemeKind::kReindexPlus).simple.total(),
               "REINDEX+'s extra repack before promotion costs only a few "
               "percent (and buys packed scans)");
  checks.Check(find(SchemeKind::kReindex).packed.total() ==
                   find(SchemeKind::kReindex).simple.total(),
               "REINDEX always rebuilds packed: the technique is irrelevant");
  return checks.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace wavekit

int main() { return wavekit::bench::Run(); }
