# Empty dependencies file for bench_fig3_scam_space.
# This may be replaced when dependencies are built.
