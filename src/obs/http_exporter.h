// HttpExporter: a minimal embedded HTTP endpoint for scraping telemetry.
//
// One listening socket, one accept-loop thread, zero dependencies — raw
// POSIX sockets only, because the paper-repro container must not grow a web
// framework. The exporter serves GETs from the telemetry objects it is
// pointed at:
//
//   /metrics          Prometheus text exposition (MetricsRegistry)
//   /metrics.json     the same snapshot as JSON
//   /timeseries.json  TimeSeriesCollector ring + derived rates
//   /events.json      EventJournal ring
//   /trace.json       Chrome trace-event JSON of the Tracer ring
//   /healthz          200 "ok" or 503 "degraded: <detail>" per the health
//                     callback — the liveness/readiness hook
//
// Scraper-grade, not internet-grade: requests are handled sequentially on
// the accept thread (concurrent scrapers queue in the listen backlog), bodies
// are built in memory, and the default bind is loopback. Malformed requests
// get 400, unknown paths 404, non-GET methods 405; every response is
// Connection: close so clients never wedge the loop.

#ifndef WAVEKIT_OBS_HTTP_EXPORTER_H_
#define WAVEKIT_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/event_journal.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/status.h"

namespace wavekit {
namespace obs {

/// \brief Blocking-accept HTTP server exposing telemetry endpoints.
/// Start() spawns the accept thread; Stop() (or the destructor) joins it.
class HttpExporter {
 public:
  struct Options {
    /// TCP port; 0 picks an ephemeral port (read it back via port()).
    uint16_t port = 0;
    /// Bind address. Loopback by default; "0.0.0.0" to expose externally.
    std::string bind_address = "127.0.0.1";
    /// Data sources; any may be nullptr (its endpoints then return 404).
    MetricsRegistry* registry = nullptr;
    TimeSeriesCollector* collector = nullptr;
    EventJournal* events = nullptr;
    Tracer* tracer = nullptr;
    /// Health probe for /healthz. Fill `detail` with the reason when
    /// returning false. Unset means always healthy.
    std::function<bool(std::string* detail)> health;
  };

  explicit HttpExporter(Options options);
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds, listens, and spawns the accept thread. Returns an IOError with
  /// the errno text if the socket cannot be set up. Idempotent once running.
  Status Start();

  /// Shuts the listening socket and joins the accept thread. Safe to call
  /// when not running.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves port 0 after Start).
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Dispatches one request line to a response (status line + body), without
  /// any socket involved. The unit-testable core of the server; Serve() is
  /// this plus I/O.
  struct Response {
    int status = 200;
    std::string reason = "OK";
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  Response Handle(const std::string& method, const std::string& path) const;

 private:
  void AcceptLoop();
  void ServeClient(int client_fd);

  Options options_;
  std::atomic<bool> running_{false};
  std::atomic<uint16_t> port_{0};
  std::atomic<uint64_t> requests_served_{0};
  int listen_fd_ = -1;
  std::thread thread_;
};

}  // namespace obs
}  // namespace wavekit

#endif  // WAVEKIT_OBS_HTTP_EXPORTER_H_
