#include "storage/extent_allocator.h"

#include <algorithm>
#include <bit>

#include "util/macros.h"

namespace wavekit {

namespace {
// Power-of-two size class of a (non-zero) length: lengths in [2^c, 2^(c+1))
// map to class c.
size_t SizeClassOf(uint64_t length) {
  return static_cast<size_t>(std::bit_width(length)) - 1;
}
}  // namespace

ExtentAllocator::ExtentAllocator(uint64_t capacity_bytes)
    : capacity_(capacity_bytes), free_bytes_(capacity_bytes) {
  if (capacity_ > 0) InsertFreeLocked(0, capacity_);
}

void ExtentAllocator::InsertFreeLocked(uint64_t offset, uint64_t length) {
  free_.emplace(offset, length);
  classes_[SizeClassOf(length)].insert(offset);
}

void ExtentAllocator::EraseFreeLocked(FreeMap::iterator it) {
  classes_[SizeClassOf(it->second)].erase(it->first);
  free_.erase(it);
}

Result<Extent> ExtentAllocator::Allocate(uint64_t length) {
  if (length == 0) return Extent{0, 0};
  std::lock_guard<std::mutex> lock(mutex_);
  if (default_alignment_ > 1) {
    return AllocateAlignedLocked(length, default_alignment_);
  }
  return AllocateLocked(length);
}

Result<Extent> ExtentAllocator::AllocateAligned(uint64_t length,
                                                uint64_t alignment) {
  if (length == 0) return Extent{0, 0};
  std::lock_guard<std::mutex> lock(mutex_);
  if (alignment <= 1) return AllocateLocked(length);
  return AllocateAlignedLocked(length, alignment);
}

Result<Extent> ExtentAllocator::AllocateAlignedLocked(uint64_t length,
                                                      uint64_t alignment) {
  if ((alignment & (alignment - 1)) != 0) {
    return Status::InvalidArgument("alignment must be a power of two, got " +
                                   std::to_string(alignment));
  }
  // The size-class shortcut does not survive alignment padding ("every
  // member of a larger class fits" breaks when up to alignment-1 bytes are
  // unusable at the front), so aligned requests take the offset-ordered
  // linear scan: still first-fit, still lowest usable offset.
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    const uint64_t free_offset = it->first;
    const uint64_t free_length = it->second;
    const uint64_t aligned = (free_offset + alignment - 1) & ~(alignment - 1);
    const uint64_t pad = aligned - free_offset;
    if (pad >= free_length || free_length - pad < length) continue;
    Extent out{aligned, length};
    const uint64_t tail_offset = aligned + length;
    const uint64_t tail_length = free_offset + free_length - tail_offset;
    EraseFreeLocked(it);
    if (pad > 0) InsertFreeLocked(free_offset, pad);  // padding stays free
    if (tail_length > 0) InsertFreeLocked(tail_offset, tail_length);
    free_bytes_ -= length;
    peak_allocated_ = std::max(peak_allocated_, capacity_ - free_bytes_);
    return out;
  }
  return Status::ResourceExhausted(
      "no free extent fits " + std::to_string(length) + " bytes at " +
      std::to_string(alignment) +
      "-byte alignment (free=" + std::to_string(free_bytes_) +
      ", largest=" + std::to_string(LargestFreeExtentLocked()) + ")");
}

Result<Extent> ExtentAllocator::AllocateLocked(uint64_t length) {
  // First fit = the lowest-offset free extent with length >= `length`.
  // Candidates live either in the request's own size class (where lengths
  // may still be smaller than `length`, so that class is scanned in offset
  // order for its first fitting member) or in a larger class (where EVERY
  // member fits, so only the lowest offset matters). The winner is the
  // minimum offset over all candidates — identical to a full linear scan.
  const size_t request_class = SizeClassOf(length);
  uint64_t best_offset = ~uint64_t{0};
  bool found = false;
  for (size_t c = request_class + 1; c < classes_.size(); ++c) {
    if (classes_[c].empty()) continue;
    const uint64_t offset = *classes_[c].begin();
    if (offset < best_offset) {
      best_offset = offset;
      found = true;
    }
  }
  for (const uint64_t offset : classes_[request_class]) {
    if (offset >= best_offset) break;  // a larger-class extent wins anyway
    if (free_.find(offset)->second >= length) {
      best_offset = offset;
      found = true;
      break;  // offsets iterate in order: the first fit is the lowest
    }
  }
  if (found) {
    auto it = free_.find(best_offset);
    Extent out{it->first, length};
    const uint64_t remaining = it->second - length;
    const uint64_t new_offset = it->first + length;
    EraseFreeLocked(it);
    if (remaining > 0) InsertFreeLocked(new_offset, remaining);
    free_bytes_ -= length;
    peak_allocated_ = std::max(peak_allocated_, capacity_ - free_bytes_);
    return out;
  }
  return Status::ResourceExhausted(
      "no contiguous free extent of " + std::to_string(length) +
      " bytes (free=" + std::to_string(free_bytes_) +
      ", largest=" + std::to_string(LargestFreeExtentLocked()) + ")");
}

Status ExtentAllocator::Reserve(const Extent& extent) {
  if (extent.length == 0) return Status::OK();
  if (extent.end() > capacity_) {
    return Status::InvalidArgument("reserved extent exceeds capacity");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // The containing free extent is the one starting at or before offset.
  auto it = free_.upper_bound(extent.offset);
  if (it == free_.begin()) {
    return Status::FailedPrecondition("range is already allocated");
  }
  --it;
  const uint64_t free_offset = it->first;
  const uint64_t free_length = it->second;
  if (free_offset + free_length < extent.end()) {
    return Status::FailedPrecondition(
        "range is not entirely free: cannot reserve [" +
        std::to_string(extent.offset) + ", " + std::to_string(extent.end()) +
        ")");
  }
  EraseFreeLocked(it);
  if (extent.offset > free_offset) {
    InsertFreeLocked(free_offset, extent.offset - free_offset);
  }
  if (free_offset + free_length > extent.end()) {
    InsertFreeLocked(extent.end(), free_offset + free_length - extent.end());
  }
  free_bytes_ -= extent.length;
  peak_allocated_ = std::max(peak_allocated_, capacity_ - free_bytes_);
  return Status::OK();
}

Status ExtentAllocator::Free(const Extent& extent) {
  if (extent.length == 0) return Status::OK();
  std::lock_guard<std::mutex> lock(mutex_);
  if (extent.end() > capacity_) {
    return Status::InvalidArgument("freed extent exceeds capacity");
  }
  // Find the free extent at or after the freed range, and its predecessor.
  auto next = free_.lower_bound(extent.offset);
  if (next != free_.end() && next->first < extent.end()) {
    return Status::InvalidArgument("double free: overlaps following free extent");
  }
  auto prev = next;
  if (prev != free_.begin()) {
    --prev;
    if (prev->first + prev->second > extent.offset) {
      return Status::InvalidArgument("double free: overlaps preceding free extent");
    }
  } else {
    prev = free_.end();
  }

  uint64_t merged_offset = extent.offset;
  uint64_t merged_length = extent.length;
  if (prev != free_.end() && prev->first + prev->second == extent.offset) {
    merged_offset = prev->first;
    merged_length += prev->second;
    EraseFreeLocked(prev);
  }
  if (next != free_.end() && next->first == extent.end()) {
    merged_length += next->second;
    EraseFreeLocked(next);
  }
  InsertFreeLocked(merged_offset, merged_length);
  free_bytes_ += extent.length;
  return Status::OK();
}

uint64_t ExtentAllocator::largest_free_extent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return LargestFreeExtentLocked();
}

uint64_t ExtentAllocator::LargestFreeExtentLocked() const {
  // The global maximum lives in the highest non-empty size class.
  for (size_t c = classes_.size(); c-- > 0;) {
    if (classes_[c].empty()) continue;
    uint64_t largest = 0;
    for (const uint64_t offset : classes_[c]) {
      largest = std::max(largest, free_.find(offset)->second);
    }
    return largest;
  }
  return 0;
}

Status ExtentAllocator::CheckConsistency() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t sum = 0;
  uint64_t prev_end = 0;
  bool first = true;
  for (const auto& [offset, length] : free_) {
    if (length == 0) return Status::Internal("zero-length free extent");
    if (offset + length > capacity_) {
      return Status::Internal("free extent exceeds capacity");
    }
    if (!first) {
      if (offset < prev_end) return Status::Internal("overlapping free extents");
      if (offset == prev_end) return Status::Internal("uncoalesced free extents");
    }
    prev_end = offset + length;
    sum += length;
    first = false;
    if (classes_[SizeClassOf(length)].count(offset) == 0) {
      return Status::Internal("free extent missing from its size class");
    }
  }
  if (sum != free_bytes_) {
    return Status::Internal("free byte count does not match free list");
  }
  size_t class_members = 0;
  for (const auto& klass : classes_) class_members += klass.size();
  if (class_members != free_.size()) {
    return Status::Internal("size-class index out of sync with free list");
  }
  return Status::OK();
}

}  // namespace wavekit
