# Empty compiler generated dependencies file for bench_fig8_tpcd_work_simple.
# This may be replaced when dependencies are built.
