
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/btree_directory.cc" "src/CMakeFiles/wavekit.dir/index/btree_directory.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/index/btree_directory.cc.o.d"
  "/root/repo/src/index/constituent_index.cc" "src/CMakeFiles/wavekit.dir/index/constituent_index.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/index/constituent_index.cc.o.d"
  "/root/repo/src/index/growth_policy.cc" "src/CMakeFiles/wavekit.dir/index/growth_policy.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/index/growth_policy.cc.o.d"
  "/root/repo/src/index/hash_directory.cc" "src/CMakeFiles/wavekit.dir/index/hash_directory.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/index/hash_directory.cc.o.d"
  "/root/repo/src/index/index_builder.cc" "src/CMakeFiles/wavekit.dir/index/index_builder.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/index/index_builder.cc.o.d"
  "/root/repo/src/model/maintenance_model.cc" "src/CMakeFiles/wavekit.dir/model/maintenance_model.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/model/maintenance_model.cc.o.d"
  "/root/repo/src/model/op_evaluator.cc" "src/CMakeFiles/wavekit.dir/model/op_evaluator.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/model/op_evaluator.cc.o.d"
  "/root/repo/src/model/params.cc" "src/CMakeFiles/wavekit.dir/model/params.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/model/params.cc.o.d"
  "/root/repo/src/model/query_model.cc" "src/CMakeFiles/wavekit.dir/model/query_model.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/model/query_model.cc.o.d"
  "/root/repo/src/model/space_model.cc" "src/CMakeFiles/wavekit.dir/model/space_model.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/model/space_model.cc.o.d"
  "/root/repo/src/model/total_work.cc" "src/CMakeFiles/wavekit.dir/model/total_work.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/model/total_work.cc.o.d"
  "/root/repo/src/sim/csv.cc" "src/CMakeFiles/wavekit.dir/sim/csv.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/sim/csv.cc.o.d"
  "/root/repo/src/sim/driver.cc" "src/CMakeFiles/wavekit.dir/sim/driver.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/sim/driver.cc.o.d"
  "/root/repo/src/sim/table_printer.cc" "src/CMakeFiles/wavekit.dir/sim/table_printer.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/sim/table_printer.cc.o.d"
  "/root/repo/src/storage/cached_device.cc" "src/CMakeFiles/wavekit.dir/storage/cached_device.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/storage/cached_device.cc.o.d"
  "/root/repo/src/storage/cost_model.cc" "src/CMakeFiles/wavekit.dir/storage/cost_model.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/storage/cost_model.cc.o.d"
  "/root/repo/src/storage/device.cc" "src/CMakeFiles/wavekit.dir/storage/device.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/storage/device.cc.o.d"
  "/root/repo/src/storage/disk_array.cc" "src/CMakeFiles/wavekit.dir/storage/disk_array.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/storage/disk_array.cc.o.d"
  "/root/repo/src/storage/extent_allocator.cc" "src/CMakeFiles/wavekit.dir/storage/extent_allocator.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/storage/extent_allocator.cc.o.d"
  "/root/repo/src/storage/file_device.cc" "src/CMakeFiles/wavekit.dir/storage/file_device.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/storage/file_device.cc.o.d"
  "/root/repo/src/storage/metered_device.cc" "src/CMakeFiles/wavekit.dir/storage/metered_device.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/storage/metered_device.cc.o.d"
  "/root/repo/src/update/in_place_updater.cc" "src/CMakeFiles/wavekit.dir/update/in_place_updater.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/update/in_place_updater.cc.o.d"
  "/root/repo/src/update/packed_shadow_updater.cc" "src/CMakeFiles/wavekit.dir/update/packed_shadow_updater.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/update/packed_shadow_updater.cc.o.d"
  "/root/repo/src/update/simple_shadow_updater.cc" "src/CMakeFiles/wavekit.dir/update/simple_shadow_updater.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/update/simple_shadow_updater.cc.o.d"
  "/root/repo/src/util/format.cc" "src/CMakeFiles/wavekit.dir/util/format.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/util/format.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/wavekit.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/wavekit.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/wavekit.dir/util/random.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/wavekit.dir/util/status.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/util/status.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/wavekit.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/util/thread_pool.cc.o.d"
  "/root/repo/src/wave/advisor.cc" "src/CMakeFiles/wavekit.dir/wave/advisor.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/wave/advisor.cc.o.d"
  "/root/repo/src/wave/checkpoint.cc" "src/CMakeFiles/wavekit.dir/wave/checkpoint.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/wave/checkpoint.cc.o.d"
  "/root/repo/src/wave/day_store.cc" "src/CMakeFiles/wavekit.dir/wave/day_store.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/wave/day_store.cc.o.d"
  "/root/repo/src/wave/del_scheme.cc" "src/CMakeFiles/wavekit.dir/wave/del_scheme.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/wave/del_scheme.cc.o.d"
  "/root/repo/src/wave/known_bound_wata_scheme.cc" "src/CMakeFiles/wavekit.dir/wave/known_bound_wata_scheme.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/wave/known_bound_wata_scheme.cc.o.d"
  "/root/repo/src/wave/op_log.cc" "src/CMakeFiles/wavekit.dir/wave/op_log.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/wave/op_log.cc.o.d"
  "/root/repo/src/wave/query_helpers.cc" "src/CMakeFiles/wavekit.dir/wave/query_helpers.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/wave/query_helpers.cc.o.d"
  "/root/repo/src/wave/rata_scheme.cc" "src/CMakeFiles/wavekit.dir/wave/rata_scheme.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/wave/rata_scheme.cc.o.d"
  "/root/repo/src/wave/reindex_plus_plus_scheme.cc" "src/CMakeFiles/wavekit.dir/wave/reindex_plus_plus_scheme.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/wave/reindex_plus_plus_scheme.cc.o.d"
  "/root/repo/src/wave/reindex_plus_scheme.cc" "src/CMakeFiles/wavekit.dir/wave/reindex_plus_scheme.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/wave/reindex_plus_scheme.cc.o.d"
  "/root/repo/src/wave/reindex_scheme.cc" "src/CMakeFiles/wavekit.dir/wave/reindex_scheme.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/wave/reindex_scheme.cc.o.d"
  "/root/repo/src/wave/scheme.cc" "src/CMakeFiles/wavekit.dir/wave/scheme.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/wave/scheme.cc.o.d"
  "/root/repo/src/wave/scheme_factory.cc" "src/CMakeFiles/wavekit.dir/wave/scheme_factory.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/wave/scheme_factory.cc.o.d"
  "/root/repo/src/wave/wata_scheme.cc" "src/CMakeFiles/wavekit.dir/wave/wata_scheme.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/wave/wata_scheme.cc.o.d"
  "/root/repo/src/wave/wave_index.cc" "src/CMakeFiles/wavekit.dir/wave/wave_index.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/wave/wave_index.cc.o.d"
  "/root/repo/src/wave/wave_service.cc" "src/CMakeFiles/wavekit.dir/wave/wave_service.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/wave/wave_service.cc.o.d"
  "/root/repo/src/workload/netnews.cc" "src/CMakeFiles/wavekit.dir/workload/netnews.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/workload/netnews.cc.o.d"
  "/root/repo/src/workload/query_workload.cc" "src/CMakeFiles/wavekit.dir/workload/query_workload.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/workload/query_workload.cc.o.d"
  "/root/repo/src/workload/tpcd.cc" "src/CMakeFiles/wavekit.dir/workload/tpcd.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/workload/tpcd.cc.o.d"
  "/root/repo/src/workload/usenet_trace.cc" "src/CMakeFiles/wavekit.dir/workload/usenet_trace.cc.o" "gcc" "src/CMakeFiles/wavekit.dir/workload/usenet_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
