// CRC-32C (Castagnoli) checksums, used for data-plane integrity: every
// bucket's live entry bytes carry a CRC32C (index/directory.h BucketInfo)
// verified on the read paths and scrubbed in the background
// (wave/scrubber.h). Castagnoli rather than IEEE keeps the data-plane
// checksum domain-separated from the metadata CRC in util/crc32.h.
//
// The read path verifies every bucket it touches, so this sits on the query
// hot path; bench_integrity_overhead holds the whole verification scheme to
// < 5% of probe/scan throughput. Three engines:
//   1. x86 `crc32` instruction, compiled in when the build targets SSE4.2
//      (the top-level CMakeLists adds -msse4.2 on x86-64). Small buffers
//      (one or a few 16-byte entries — the common bucket) are checksummed
//      inline at the call site with no dispatch; large buffers go
//      out-of-line to a 3-way interleaved loop that hides the instruction's
//      3-cycle latency (~20 GB/s vs ~7 GB/s serial).
//   2. The same instruction behind a runtime CPU check, on x86-64 builds
//      without -msse4.2.
//   3. Slicing-by-8 / bytewise table lookup everywhere else.

#ifndef WAVEKIT_UTIL_CRC32C_H_
#define WAVEKIT_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace wavekit {

namespace crc32c_internal {

/// \brief Advances a raw (non-finalized) CRC-32C state over `length` bytes.
/// Out-of-line: 3-way interleaved hardware loop, runtime-dispatched
/// hardware, or slicing-by-8, per the engine list above.
uint32_t UpdateOutOfLine(uint32_t state, const void* data, size_t length);

inline uint32_t Update(uint32_t state, const void* data, size_t length) {
#if defined(__SSE4_2__)
  // The hot case: a bucket of a handful of 16-byte entries. Inlining the
  // serial instruction loop here removes the call and dispatch overhead
  // that would otherwise dominate a 32-byte checksum.
  if (length <= 64) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    uint64_t crc = state;
    while (length >= 8) {
      uint64_t word;
      std::memcpy(&word, bytes, 8);
      crc = _mm_crc32_u64(crc, word);
      bytes += 8;
      length -= 8;
    }
    auto crc32 = static_cast<uint32_t>(crc);
    while (length > 0) {
      crc32 = _mm_crc32_u8(crc32, *bytes);
      ++bytes;
      --length;
    }
    return crc32;
  }
#endif
  return UpdateOutOfLine(state, data, length);
}

}  // namespace crc32c_internal

/// \brief CRC-32C of `length` bytes at `data` (Castagnoli polynomial,
/// reflected, initial and final XOR 0xFFFFFFFF). Crc32c(nullptr, 0) == 0.
inline uint32_t Crc32c(const void* data, size_t length) {
  return crc32c_internal::Update(0xFFFFFFFFu, data, length) ^ 0xFFFFFFFFu;
}

inline uint32_t Crc32c(std::string_view data) {
  return Crc32c(data.data(), data.size());
}

/// \brief Extends a finalized CRC-32C with more bytes:
/// Crc32cExtend(Crc32c(a), b) == Crc32c(a || b). Lets an in-place bucket
/// append update the bucket checksum without rereading the existing prefix.
inline uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t length) {
  // Un-finalize the running CRC (undo the final XOR), continue, re-finalize.
  return crc32c_internal::Update(crc ^ 0xFFFFFFFFu, data, length) ^
         0xFFFFFFFFu;
}

}  // namespace wavekit

#endif  // WAVEKIT_UTIL_CRC32C_H_
