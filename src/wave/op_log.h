// OpLog: records the sequence of index operations a scheme performs.
//
// The analytic comparison of Section 5 prices each scheme by its operation
// mix (how many days are Built, Added, Deleted, Copied per transition).
// Schemes log every primitive here; model::OpEvaluator turns the log into
// modeled seconds using the paper's Table 12 parameters, independently of
// the device-level simulation.

#ifndef WAVEKIT_WAVE_OP_LOG_H_
#define WAVEKIT_WAVE_OP_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/metered_device.h"
#include "util/day.h"

namespace wavekit {

enum class OpKind : int {
  kBuildIndex,       ///< BuildIndex over a set of days.
  kAddToIndex,       ///< Incremental add of a set of days to an index.
  kDeleteFromIndex,  ///< Incremental delete of a set of days from an index.
  kCopyIndex,        ///< Whole-index copy (CP) — shadow or "I_j <- Temp".
  kSmartCopyIndex,   ///< Packed smart copy (SMCP): repack, dropping expired.
  kDropIndex,        ///< Throwing an index away (O(1) in time).
  kRename,           ///< Renaming a temporary as a constituent (free).
};

const char* OpKindName(OpKind kind);

/// \brief How an AddToIndex / DeleteFromIndex was physically applied, which
/// determines its price in the analytic model.
enum class ApplyMode : int {
  /// CONTIGUOUS incremental update: priced Add/Del per day.
  kIncremental,
  /// Applied by rebuilding packed buckets (packed shadow): the paper notes
  /// inserts then "take time Build rather than Add".
  kRebuild,
  /// Folded into a smart copy logged separately: priced zero here.
  kMerged,
};

const char* ApplyModeName(ApplyMode mode);

/// \brief One logged operation.
struct OpRecord {
  OpKind kind;
  /// Which maintenance phase the scheme attributes the op to.
  Phase phase = Phase::kOther;
  /// The transition day during which the op ran (0 during Start).
  Day at_day = 0;
  /// Days in the operand set: days built / added / deleted, or days covered
  /// by the copied/dropped index.
  int op_days = 0;
  /// Days already in the target index before the op (AddToIndex only).
  int target_days = 0;
  /// Entries in the operand set (for non-uniform day-size accounting).
  uint64_t op_entries = 0;
  /// Pricing mode for Add/Delete records.
  ApplyMode mode = ApplyMode::kIncremental;
};

/// \brief Append-only log of OpRecords with small aggregation helpers.
class OpLog {
 public:
  void Record(OpRecord record) { records_.push_back(record); }

  const std::vector<OpRecord>& records() const { return records_; }
  void Clear() { records_.clear(); }

  /// Records logged at `day`.
  std::vector<OpRecord> RecordsAtDay(Day day) const;

  /// Sum of op_days over records matching kind (and optionally phase).
  int TotalOpDays(OpKind kind) const;

  std::string ToString() const;

 private:
  std::vector<OpRecord> records_;
};

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_OP_LOG_H_
