file(REMOVE_RECURSE
  "CMakeFiles/wave_service_test.dir/wave/wave_service_test.cc.o"
  "CMakeFiles/wave_service_test.dir/wave/wave_service_test.cc.o.d"
  "wave_service_test"
  "wave_service_test.pdb"
  "wave_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
