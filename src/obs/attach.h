// Attach helpers: register the stats an existing wavekit component already
// maintains as callback metrics in a MetricsRegistry.
//
// Each Attach* call adds callback counters/gauges polled at snapshot time, so
// the instrumented component pays nothing on its hot path. All helpers take
// an `owner` tag; callers must MetricsRegistry::Unregister(owner) before the
// attached component is destroyed (WaveService does this in its destructor).

#ifndef WAVEKIT_OBS_ATTACH_H_
#define WAVEKIT_OBS_ATTACH_H_

#include <string>

#include "obs/metrics.h"
#include "storage/metered_device.h"
#include "storage/sharded_cached_device.h"
#include "util/thread_pool.h"

namespace wavekit {
namespace obs {

/// Per-phase seek/byte/op counters of `device`:
///   wavekit_device_{seeks,bytes_read,bytes_written,read_ops,write_ops}_total
///     {device=<label>, phase=<start|transition|precompute|query|other>}
void AttachMeteredDevice(MetricsRegistry* registry, const MeteredDevice* device,
                         std::string device_label,
                         const void* owner = nullptr);

/// Per-shard hit/miss/eviction counters plus aggregate occupancy of `cache`:
///   wavekit_cache_{hits,misses,evictions}_total{cache=<label>, shard=<i>}
///   wavekit_cache_cached_blocks{cache=<label>}
///   wavekit_cache_hit_ratio{cache=<label>}
void AttachShardedCache(MetricsRegistry* registry,
                        const ShardedCachedDevice* cache,
                        std::string cache_label, const void* owner = nullptr);

/// Queue depth and size of `pool`:
///   wavekit_pool_queue_depth{pool=<label>}
///   wavekit_pool_in_flight{pool=<label>}
///   wavekit_pool_threads{pool=<label>}
void AttachThreadPool(MetricsRegistry* registry, const ThreadPool* pool,
                      std::string pool_label, const void* owner = nullptr);

}  // namespace obs
}  // namespace wavekit

#endif  // WAVEKIT_OBS_ATTACH_H_
