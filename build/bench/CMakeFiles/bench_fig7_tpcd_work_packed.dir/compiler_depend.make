# Empty compiler generated dependencies file for bench_fig7_tpcd_work_packed.
# This may be replaced when dependencies are built.
