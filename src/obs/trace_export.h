// Chrome trace-event export of the Tracer span ring.
//
// Renders completed spans in the Trace Event Format ("X" complete events)
// that chrome://tracing, Perfetto (ui.perfetto.dev), and speedscope all load
// directly — drop the JSON in and every AdvanceDay appears as a root bar
// with its maintenance primitives nested underneath, seeks/bytes in the args
// popup. Served at /trace.json and written by `wavectl export-trace`.

#ifndef WAVEKIT_OBS_TRACE_EXPORT_H_
#define WAVEKIT_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "obs/trace.h"

namespace wavekit {
namespace obs {

/// Renders `spans` as a Chrome trace-event JSON document:
///   {"traceEvents":[{"name":...,"cat":"maintenance","ph":"X","ts":start_us,
///     "dur":duration_us,"pid":1,"tid":<trace_id>,
///     "args":{"span_id":...,"parent_span_id":...,"seeks":...,
///             "bytes_read":...,"bytes_written":...}}, ...],
///    "displayTimeUnit":"ms"}
/// Each trace (one AdvanceDay) maps to its own tid so traces render as
/// separate tracks instead of overlapping.
std::string RenderChromeTrace(const std::vector<SpanRecord>& spans);

/// RenderChromeTrace over `tracer`'s current completed-span ring.
std::string RenderChromeTrace(const Tracer& tracer);

}  // namespace obs
}  // namespace wavekit

#endif  // WAVEKIT_OBS_TRACE_EXPORT_H_
