// Regression tests for the socket helpers in util/net — in particular the
// two latent bugs the extraction from obs/http_exporter.cc fixed: responses
// truncated by EINTR/short writes, and EADDRINUSE when rebinding a port
// whose previous connection is still in TIME_WAIT.

#include "util/net.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <pthread.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "gtest/gtest.h"
#include "testing/test_env.h"

namespace wavekit {
namespace net {
namespace {

struct ServerClientPair {
  int listen_fd = -1;
  int server_fd = -1;  // accepted end
  int client_fd = -1;  // connected end
  uint16_t port = 0;

  ~ServerClientPair() {
    if (client_fd >= 0) ::close(client_fd);
    if (server_fd >= 0) ::close(server_fd);
    if (listen_fd >= 0) ::close(listen_fd);
  }
};

ServerClientPair Connect() {
  ServerClientPair p;
  auto listen_fd = ListenTcp("127.0.0.1", 0);
  EXPECT_OK(listen_fd.status());
  p.listen_fd = *listen_fd;
  auto port = LocalPort(p.listen_fd);
  EXPECT_OK(port.status());
  p.port = *port;
  auto client = ConnectTcp("127.0.0.1", p.port);
  EXPECT_OK(client.status());
  p.client_fd = *client;
  p.server_fd = ::accept(p.listen_fd, nullptr, nullptr);
  EXPECT_GE(p.server_fd, 0);
  return p;
}

TEST(NetTest, ListenOnEphemeralPortReportsRealPort) {
  auto fd = ListenTcp("127.0.0.1", 0);
  ASSERT_OK(fd.status());
  auto port = LocalPort(*fd);
  ASSERT_OK(port.status());
  EXPECT_GT(*port, 0);
  ::close(*fd);
}

TEST(NetTest, ListenRejectsBadAddress) {
  auto fd = ListenTcp("not-an-address", 0);
  ASSERT_FALSE(fd.ok());
  EXPECT_TRUE(fd.status().IsInvalidArgument());
}

TEST(NetTest, ConnectToClosedPortFails) {
  // Bind-then-close to find a port that is (almost certainly) not listening.
  auto fd = ListenTcp("127.0.0.1", 0);
  ASSERT_OK(fd.status());
  auto port = LocalPort(*fd);
  ASSERT_OK(port.status());
  ::close(*fd);
  auto client = ConnectTcp("127.0.0.1", *port);
  EXPECT_FALSE(client.ok());
}

TEST(NetTest, SendAllRoundTrip) {
  ServerClientPair p = Connect();
  const std::string payload = "hello over loopback";
  ASSERT_OK(SendAll(p.client_fd, payload));
  std::string got(payload.size(), '\0');
  size_t off = 0;
  while (off < got.size()) {
    auto n = RecvSome(p.server_fd, got.data() + off, got.size() - off);
    ASSERT_OK(n.status());
    ASSERT_GT(*n, 0u);
    off += *n;
  }
  EXPECT_EQ(got, payload);
}

TEST(NetTest, RecvSomeReportsCleanEof) {
  ServerClientPair p = Connect();
  ::close(p.client_fd);
  p.client_fd = -1;
  char buf[16];
  auto n = RecvSome(p.server_fd, buf, sizeof buf);
  ASSERT_OK(n.status());
  EXPECT_EQ(*n, 0u);
}

TEST(NetTest, RecvTimeoutSurfacesAsIOError) {
  ServerClientPair p = Connect();
  ASSERT_OK(SetRecvTimeoutSec(p.server_fd, 1));
  char buf[16];
  auto n = RecvSome(p.server_fd, buf, sizeof buf);
  ASSERT_FALSE(n.ok());
  EXPECT_TRUE(n.status().IsIOError());
  EXPECT_NE(n.status().message().find("timeout"), std::string::npos);
}

// The bug this guards against: the old exporter-local SendAll treated any
// send() return <= 0 as "client went away", so an EINTR (e.g. a profiling
// signal) silently truncated the response. Hammer the sending thread with
// signals while it pushes a payload much larger than the socket buffer
// through a deliberately slow reader; every byte must still arrive.
TEST(NetTest, SendAllSurvivesSignalsAndShortWrites) {
  ServerClientPair p = Connect();

  // Shrink the send buffer so SendAll must loop through many short writes.
  int small = 4096;
  ::setsockopt(p.client_fd, SOL_SOCKET, SO_SNDBUF, &small, sizeof small);

  // A no-op handler installed *without* SA_RESTART so send() returns EINTR.
  struct sigaction sa{}, old{};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  const size_t kPayload = 4u << 20;
  std::string payload(kPayload, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('a' + (i % 23));
  }

  Status send_status;
  std::atomic<bool> done{false};
  std::thread sender([&] {
    send_status = SendAll(p.client_fd, payload);
    done.store(true);
  });
  pthread_t sender_handle = sender.native_handle();

  std::thread pest([&] {
    while (!done.load()) {
      ::pthread_kill(sender_handle, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Drain slowly in small chunks so the sender keeps blocking (and keeps
  // getting interrupted) instead of finishing in one burst.
  std::string got;
  got.reserve(kPayload);
  char buf[8192];
  while (got.size() < kPayload) {
    auto n = RecvSome(p.server_fd, buf, sizeof buf);
    ASSERT_OK(n.status());
    ASSERT_GT(*n, 0u);
    got.append(buf, *n);
    if (got.size() < kPayload / 2) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  sender.join();
  done.store(true);
  pest.join();
  ::sigaction(SIGUSR1, &old, nullptr);

  ASSERT_OK(send_status);
  EXPECT_EQ(got, payload);
}

// The other extraction fix: every listener sets SO_REUSEADDR, so a restart
// can rebind its port even while the previous connection sits in TIME_WAIT.
TEST(NetTest, RebindAfterActiveConnectionClose) {
  uint16_t port = 0;
  {
    ServerClientPair p = Connect();
    port = p.port;
    // Server closes first, parking server-side state in TIME_WAIT.
    const std::string bye = "bye";
    ASSERT_OK(SendAll(p.server_fd, bye));
    ::close(p.server_fd);
    p.server_fd = -1;
  }
  auto again = ListenTcp("127.0.0.1", port);
  ASSERT_OK(again.status());
  ::close(*again);
}

TEST(NetTest, SetNonBlockingMakesRecvReturnImmediately) {
  ServerClientPair p = Connect();
  ASSERT_OK(SetNonBlocking(p.server_fd));
  char buf[16];
  auto n = RecvSome(p.server_fd, buf, sizeof buf);
  // No data pending: EAGAIN maps onto the same "recv timeout" IOError.
  ASSERT_FALSE(n.ok());
  EXPECT_TRUE(n.status().IsIOError());
}

TEST(NetTest, SetNoDelaySucceedsOnTcpSocket) {
  ServerClientPair p = Connect();
  EXPECT_OK(SetNoDelay(p.client_fd));
}

}  // namespace
}  // namespace net
}  // namespace wavekit
