#include "serve/client.h"

#include <unistd.h>
#include <utility>

#include "util/macros.h"
#include "util/net.h"

namespace wavekit {
namespace serve {

Result<std::unique_ptr<Client>> Client::Connect(Options options) {
  auto client = std::unique_ptr<Client>(new Client(std::move(options)));
  WAVEKIT_ASSIGN_OR_RETURN(
      client->fd_, net::ConnectTcp(client->options_.host, client->options_.port));
  (void)net::SetNoDelay(client->fd_);
  if (client->options_.recv_timeout_sec > 0) {
    WAVEKIT_RETURN_NOT_OK(
        net::SetRecvTimeoutSec(client->fd_, client->options_.recv_timeout_sec));
  }
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::SendFrame(const std::string& frame) {
  return net::SendAll(fd_, frame);
}

Result<Frame> Client::ReadFrameBlocking() {
  Frame frame;
  while (!reader_.Next(&frame)) {
    WAVEKIT_RETURN_NOT_OK(reader_.error());
    char buf[64 * 1024];
    WAVEKIT_ASSIGN_OR_RETURN(const size_t n,
                             net::RecvSome(fd_, buf, sizeof buf));
    if (n == 0) {
      return Status::IOError("server closed the connection");
    }
    WAVEKIT_RETURN_NOT_OK(reader_.Feed(buf, n));
  }
  return frame;
}

Result<QueryReply> Client::Probe(const DayRange& range, const Value& value) {
  ProbeRequest request{range, value};
  WAVEKIT_RETURN_NOT_OK(SendFrame(EncodeProbeRequest(
      options_.tenant_id, next_request_id_++, request)));
  WAVEKIT_ASSIGN_OR_RETURN(const Frame frame, ReadFrameBlocking());
  QueryReply reply;
  WAVEKIT_RETURN_NOT_OK(DecodeQueryReply(frame.payload, &reply));
  return reply;
}

Result<QueryReply> Client::Scan(const DayRange& range, uint32_t max_entries) {
  ScanRequest request{range, max_entries};
  WAVEKIT_RETURN_NOT_OK(SendFrame(EncodeScanRequest(
      options_.tenant_id, next_request_id_++, request)));
  WAVEKIT_ASSIGN_OR_RETURN(const Frame frame, ReadFrameBlocking());
  QueryReply reply;
  WAVEKIT_RETURN_NOT_OK(DecodeQueryReply(frame.payload, &reply));
  return reply;
}

Result<AdvanceReply> Client::Advance(DayBatch batch) {
  AdvanceRequest request;
  request.batch = std::move(batch);
  WAVEKIT_RETURN_NOT_OK(SendFrame(EncodeAdvanceRequest(
      options_.tenant_id, next_request_id_++, request)));
  WAVEKIT_ASSIGN_OR_RETURN(const Frame frame, ReadFrameBlocking());
  AdvanceReply reply;
  WAVEKIT_RETURN_NOT_OK(DecodeAdvanceReply(frame.payload, &reply));
  return reply;
}

Result<StatsReply> Client::Stats() {
  WAVEKIT_RETURN_NOT_OK(
      SendFrame(EncodeStatsRequest(options_.tenant_id, next_request_id_++)));
  WAVEKIT_ASSIGN_OR_RETURN(const Frame frame, ReadFrameBlocking());
  StatsReply reply;
  WAVEKIT_RETURN_NOT_OK(DecodeStatsReply(frame.payload, &reply));
  return reply;
}

Result<HealthReply> Client::Health() {
  WAVEKIT_RETURN_NOT_OK(
      SendFrame(EncodeHealthRequest(options_.tenant_id, next_request_id_++)));
  WAVEKIT_ASSIGN_OR_RETURN(const Frame frame, ReadFrameBlocking());
  HealthReply reply;
  WAVEKIT_RETURN_NOT_OK(DecodeHealthReply(frame.payload, &reply));
  return reply;
}

Result<uint32_t> Client::SendProbe(const DayRange& range, const Value& value) {
  const uint32_t id = next_request_id_++;
  ProbeRequest request{range, value};
  WAVEKIT_RETURN_NOT_OK(
      SendFrame(EncodeProbeRequest(options_.tenant_id, id, request)));
  return id;
}

Result<Frame> Client::ReadReply() { return ReadFrameBlocking(); }

}  // namespace serve
}  // namespace wavekit
