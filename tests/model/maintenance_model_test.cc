#include "model/maintenance_model.h"

#include <gtest/gtest.h>

#include "testing/test_env.h"

namespace wavekit {
namespace model {
namespace {

class MaintenanceModelTest : public ::testing::Test {
 protected:
  CaseParams params_ = CaseParams::Scam();
};

TEST_F(MaintenanceModelTest, MeasuredDelMatchesTable10ClosedForm) {
  // DEL with simple shadow, equal clusters: pre = X*CP + Del, trans = Add.
  ASSERT_OK_AND_ASSIGN(
      MaintenanceCost measured,
      MeasureMaintenance(SchemeKind::kDel, UpdateTechniqueKind::kSimpleShadow,
                         params_, /*W=*/10, /*n=*/2));
  auto closed = ClosedFormMaintenance(
      SchemeKind::kDel, UpdateTechniqueKind::kSimpleShadow, params_, 10, 2);
  ASSERT_TRUE(closed.has_value());
  EXPECT_NEAR(measured.transition_seconds, closed->transition_seconds,
              0.01 * closed->transition_seconds);
  EXPECT_NEAR(measured.precompute_seconds, closed->precompute_seconds,
              0.01 * closed->precompute_seconds);
}

TEST_F(MaintenanceModelTest, MeasuredReindexMatchesClosedForm) {
  ASSERT_OK_AND_ASSIGN(
      MaintenanceCost measured,
      MeasureMaintenance(SchemeKind::kReindex,
                         UpdateTechniqueKind::kSimpleShadow, params_, 10, 2));
  auto closed = ClosedFormMaintenance(
      SchemeKind::kReindex, UpdateTechniqueKind::kSimpleShadow, params_, 10,
      2);
  ASSERT_TRUE(closed.has_value());
  // trans = X * Build = 5 * 1686.
  EXPECT_NEAR(measured.transition_seconds, 5 * 1686.0, 1.0);
  EXPECT_NEAR(measured.transition_seconds, closed->transition_seconds, 1.0);
  EXPECT_NEAR(measured.precompute_seconds, 0.0, 1e-9);
}

TEST_F(MaintenanceModelTest, MeasuredDelPackedShadowMatchesTable11) {
  ASSERT_OK_AND_ASSIGN(
      MaintenanceCost measured,
      MeasureMaintenance(SchemeKind::kDel, UpdateTechniqueKind::kPackedShadow,
                         params_, 10, 2));
  // Table 11: trans = X*SMCP + Build.
  const double expected = 5 * params_.SmcpSeconds() + params_.build_seconds;
  EXPECT_NEAR(measured.transition_seconds, expected, 0.01 * expected);
  EXPECT_NEAR(measured.precompute_seconds, 0.0, 1e-9);
}

TEST_F(MaintenanceModelTest, MeasuredWataMatchesClosedForm) {
  ASSERT_OK_AND_ASSIGN(
      MaintenanceCost measured,
      MeasureMaintenance(SchemeKind::kWata, UpdateTechniqueKind::kSimpleShadow,
                         params_, /*W=*/13, /*n=*/4));
  auto closed = ClosedFormMaintenance(
      SchemeKind::kWata, UpdateTechniqueKind::kSimpleShadow, params_, 13, 4);
  ASSERT_TRUE(closed.has_value());
  EXPECT_NEAR(measured.transition_seconds, closed->transition_seconds,
              0.02 * closed->transition_seconds);
}

TEST_F(MaintenanceModelTest, MeasuredReindexPlusMatchesClosedForm) {
  ASSERT_OK_AND_ASSIGN(
      MaintenanceCost measured,
      MeasureMaintenance(SchemeKind::kReindexPlus,
                         UpdateTechniqueKind::kSimpleShadow, params_, 10, 2));
  auto closed = ClosedFormMaintenance(SchemeKind::kReindexPlus,
                                      UpdateTechniqueKind::kSimpleShadow,
                                      params_, 10, 2);
  ASSERT_TRUE(closed.has_value());
  EXPECT_NEAR(measured.total(), closed->total(), 0.02 * closed->total());
}

TEST_F(MaintenanceModelTest, ReindexPlusHalvesReindexWork) {
  // Section 4.1: "the average number of days indexed per transition by
  // REINDEX+ during index build is about half that of REINDEX".
  ASSERT_OK_AND_ASSIGN(
      MaintenanceCost reindex,
      MeasureMaintenance(SchemeKind::kReindex,
                         UpdateTechniqueKind::kSimpleShadow, params_, 20, 2));
  ASSERT_OK_AND_ASSIGN(
      MaintenanceCost plus,
      MeasureMaintenance(SchemeKind::kReindexPlus,
                         UpdateTechniqueKind::kSimpleShadow, params_, 20, 2));
  // Compare indexing work in Add/Build seconds; REINDEX uses Build,
  // REINDEX+ uses the pricier Add, so compare day counts via Build units.
  const double reindex_days = reindex.total() / params_.build_seconds;
  const double plus_days_upper =
      plus.total() / params_.add_seconds;  // ignores (cheap) copies: lower bd
  EXPECT_LT(plus_days_upper, 0.75 * reindex_days);
}

TEST_F(MaintenanceModelTest, ReindexPlusPlusTransitionIsOneAdd) {
  ASSERT_OK_AND_ASSIGN(
      MaintenanceCost cost,
      MeasureMaintenance(SchemeKind::kReindexPlusPlus,
                         UpdateTechniqueKind::kSimpleShadow, params_, 10, 2));
  EXPECT_NEAR(cost.transition_seconds, params_.add_seconds, 1e-6);
  EXPECT_GT(cost.precompute_seconds, 0.0);
  auto closed = ClosedFormMaintenance(SchemeKind::kReindexPlusPlus,
                                      UpdateTechniqueKind::kSimpleShadow,
                                      params_, 10, 2);
  ASSERT_TRUE(closed.has_value());
  EXPECT_NEAR(cost.precompute_seconds, closed->precompute_seconds,
              0.02 * closed->precompute_seconds);
}

TEST_F(MaintenanceModelTest, RataTransitionMatchesWata) {
  // RATA's critical path equals WATA's (Section 4.3): add + free rename.
  ASSERT_OK_AND_ASSIGN(
      MaintenanceCost wata,
      MeasureMaintenance(SchemeKind::kWata, UpdateTechniqueKind::kSimpleShadow,
                         params_, 13, 4));
  ASSERT_OK_AND_ASSIGN(
      MaintenanceCost rata,
      MeasureMaintenance(SchemeKind::kRata, UpdateTechniqueKind::kSimpleShadow,
                         params_, 13, 4));
  EXPECT_NEAR(rata.transition_seconds, wata.transition_seconds,
              0.05 * wata.transition_seconds);
  EXPECT_GT(rata.precompute_seconds, 0.0);  // the ladder is the extra price
}

TEST_F(MaintenanceModelTest, ReindexTransitionShrinksWithN) {
  // Figure 4's headline: REINDEX transition ~ (W/n) * Build.
  double previous = 1e18;
  for (int n : {1, 2, 4, 7}) {
    ASSERT_OK_AND_ASSIGN(
        MaintenanceCost cost,
        MeasureMaintenance(SchemeKind::kReindex,
                           UpdateTechniqueKind::kSimpleShadow, params_, 7, n));
    EXPECT_LT(cost.transition_seconds, previous);
    previous = cost.transition_seconds;
  }
}

}  // namespace
}  // namespace model
}  // namespace wavekit
