#include "model/params.h"

#include <gtest/gtest.h>

namespace wavekit {
namespace model {
namespace {

TEST(ParamsTest, ScamMatchesTable12) {
  CaseParams p = CaseParams::Scam();
  EXPECT_EQ(p.name, "SCAM");
  EXPECT_DOUBLE_EQ(p.hardware.seek_seconds, 0.014);
  EXPECT_DOUBLE_EQ(p.hardware.transfer_bytes_per_second, 10e6);
  EXPECT_DOUBLE_EQ(p.packed_day_bytes, 56e6);
  EXPECT_DOUBLE_EQ(p.unpacked_day_bytes, 78.4e6);
  EXPECT_DOUBLE_EQ(p.probes_per_day, 100000);
  EXPECT_DOUBLE_EQ(p.scans_per_day, 10);
  EXPECT_FALSE(p.scans_touch_all_indexes);
  EXPECT_DOUBLE_EQ(p.growth_factor, 2.0);
  EXPECT_DOUBLE_EQ(p.build_seconds, 1686);
  EXPECT_DOUBLE_EQ(p.add_seconds, 3341);
  EXPECT_DOUBLE_EQ(p.delete_seconds, 3341);
  EXPECT_EQ(p.window, 7);
}

TEST(ParamsTest, WseMatchesTable12) {
  CaseParams p = CaseParams::Wse();
  EXPECT_DOUBLE_EQ(p.packed_day_bytes, 75e6);
  EXPECT_DOUBLE_EQ(p.unpacked_day_bytes, 105e6);
  EXPECT_DOUBLE_EQ(p.probes_per_day, 340000);
  EXPECT_DOUBLE_EQ(p.scans_per_day, 0);
  EXPECT_DOUBLE_EQ(p.build_seconds, 2276);
  EXPECT_DOUBLE_EQ(p.add_seconds, 4678);
  EXPECT_EQ(p.window, 35);
}

TEST(ParamsTest, TpcdMatchesTable12) {
  CaseParams p = CaseParams::Tpcd();
  EXPECT_DOUBLE_EQ(p.packed_day_bytes, 600e6);
  EXPECT_DOUBLE_EQ(p.unpacked_day_bytes, 627e6);
  EXPECT_DOUBLE_EQ(p.probes_per_day, 0);
  EXPECT_DOUBLE_EQ(p.scans_per_day, 10);
  EXPECT_TRUE(p.scans_touch_all_indexes);
  EXPECT_DOUBLE_EQ(p.growth_factor, 1.08);
  EXPECT_DOUBLE_EQ(p.build_seconds, 8406);
  EXPECT_EQ(p.window, 100);
}

TEST(ParamsTest, DerivedCopyCosts) {
  CaseParams p = CaseParams::Scam();
  // CP: read + write S' at Trans = 10 MB/s.
  EXPECT_NEAR(p.CpSeconds(), 2 * 78.4e6 / 10e6, 1e-9);
  // SMCP: read S', write S.
  EXPECT_NEAR(p.SmcpSeconds(), (78.4e6 + 56e6) / 10e6, 1e-9);
  // Per the paper's Table 12 regime, copies are far cheaper than Add/Build
  // (which include CPU-heavy tokenization).
  EXPECT_LT(p.CpSeconds(), p.build_seconds);
}

TEST(ParamsTest, ScalingIsLinearWhileCacheResident) {
  // At SF = 1, SCAM's S' (78.4 MB) fits the paper's 96 MB machine: Table 12
  // values are reproduced exactly.
  CaseParams p1 = CaseParams::Scam().Scaled(1.0);
  EXPECT_DOUBLE_EQ(p1.add_seconds, 3341);
  EXPECT_DOUBLE_EQ(p1.build_seconds, 1686);

  CaseParams p3 = CaseParams::Scam().Scaled(3.0);
  EXPECT_DOUBLE_EQ(p3.packed_day_bytes, 3 * 56e6);
  // Builds (sequential two-pass) stay linear...
  EXPECT_DOUBLE_EQ(p3.build_seconds, 3 * 1686);
  // ...but incremental updates degrade once the working set outgrows RAM
  // (the memory-pressure effect behind Figure 10).
  EXPECT_GT(p3.add_seconds, 3 * 3341);
  EXPECT_DOUBLE_EQ(p3.add_seconds, p3.delete_seconds);
  // Hardware and query volumes are unchanged.
  EXPECT_DOUBLE_EQ(p3.hardware.seek_seconds, 0.014);
  EXPECT_DOUBLE_EQ(p3.probes_per_day, 100000);
}

TEST(ParamsTest, ScalingAmplificationIsMonotone) {
  double previous_ratio = 0;
  for (double sf : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    CaseParams p = CaseParams::Scam().Scaled(sf);
    const double ratio = p.add_seconds / p.build_seconds;
    EXPECT_GE(ratio, previous_ratio);
    previous_ratio = ratio;
  }
  EXPECT_GT(previous_ratio, 2.0);  // thrashing: Add/Build grows past 2.0
}

}  // namespace
}  // namespace model
}  // namespace wavekit
