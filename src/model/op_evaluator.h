// OpEvaluator: prices a scheme's operation log with the paper's per-day
// operation costs (Build, Add, Del, CP, SMCP from Table 12), producing the
// transition / pre-computation seconds of Tables 10 and 11.

#ifndef WAVEKIT_MODEL_OP_EVALUATOR_H_
#define WAVEKIT_MODEL_OP_EVALUATOR_H_

#include "model/params.h"
#include "wave/op_log.h"

namespace wavekit {
namespace model {

/// \brief Modeled maintenance seconds for one day, split the way Section 5
/// splits them.
struct MaintenanceCost {
  double transition_seconds = 0;  ///< Critical path until new data queryable.
  double precompute_seconds = 0;  ///< Temporary-index preparation.

  double total() const { return transition_seconds + precompute_seconds; }

  MaintenanceCost& operator+=(const MaintenanceCost& other) {
    transition_seconds += other.transition_seconds;
    precompute_seconds += other.precompute_seconds;
    return *this;
  }
};

/// \brief Prices OpRecords with a CaseParams.
class OpEvaluator {
 public:
  explicit OpEvaluator(CaseParams params) : params_(std::move(params)) {}

  /// Modeled seconds of a single operation.
  double PriceOp(const OpRecord& record) const;

  /// Sums the records logged at `day`, split by phase. Records attributed to
  /// Phase::kStart or Phase::kOther are folded into transition_seconds.
  MaintenanceCost PriceDay(const OpLog& log, Day day) const;

  /// Average per-day cost over days (first_day..last_day], inclusive.
  MaintenanceCost AverageOverDays(const OpLog& log, Day first_day,
                                  Day last_day) const;

  const CaseParams& params() const { return params_; }

 private:
  CaseParams params_;
};

}  // namespace model
}  // namespace wavekit

#endif  // WAVEKIT_MODEL_OP_EVALUATOR_H_
