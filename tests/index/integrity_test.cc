// Adversarial read-path integrity: flipped bucket bytes must surface as
// Status::DataLoss and quarantine the constituent on every access path
// (probe, timed probe, per-bucket scan, coalesced ReadBatch scan); disabling
// verification restores the old trusting behaviour; checksums survive
// incremental maintenance; and a wrong checksum installed with a bucket is
// caught on first read.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "index/constituent_index.h"
#include "index/entry.h"
#include "index/index_builder.h"
#include "storage/device.h"
#include "storage/extent_allocator.h"
#include "storage/sharded_cached_device.h"
#include "testing/test_env.h"
#include "util/crc32c.h"
#include "wave/wave_index.h"

namespace wavekit {
namespace {

using testing::MakeBatch;
using testing::MakeMixedBatch;

class IntegrityTest : public ::testing::Test {
 protected:
  IntegrityTest() : device_(uint64_t{1} << 24), allocator_(device_.capacity()) {}

  std::unique_ptr<ConstituentIndex> BuildIndex(bool verify = true) {
    std::vector<DayBatch> batches;
    for (Day d = 1; d <= 3; ++d) batches.push_back(MakeMixedBatch(d));
    std::vector<const DayBatch*> ptrs;
    for (const DayBatch& b : batches) ptrs.push_back(&b);
    ConstituentIndex::Options options;
    options.verify_checksums = verify;
    options.integrity = &stats_;
    auto built =
        IndexBuilder::BuildPacked(&device_, &allocator_, options, ptrs, "I0");
    EXPECT_TRUE(built.ok()) << built.status();
    return std::move(built).ValueOrDie();
  }

  // The live extent of `value`'s bucket.
  Extent LiveExtent(const ConstituentIndex& index, const Value& value) {
    Extent live{0, 0};
    EXPECT_OK(index.ForEachBucket([&](const Value& v, const BucketInfo& info) {
      if (v == value) {
        live = Extent{info.extent.offset, uint64_t{info.count} * kEntrySize};
      }
    }));
    EXPECT_GT(live.length, 0u) << "no live bucket for " << value;
    return live;
  }

  // Flips one bit of the bucket's live prefix directly on the device —
  // medium rot beneath the index's bookkeeping.
  void Rot(const Extent& live, uint64_t at = 0) {
    std::vector<std::byte> buf(static_cast<size_t>(live.length));
    ASSERT_OK(device_.Read(live.offset, buf));
    buf[static_cast<size_t>(at % live.length)] ^= std::byte{0x01};
    ASSERT_OK(device_.Write(live.offset, buf));
  }

  MemoryDevice device_;
  ExtentAllocator allocator_;
  IntegrityStats stats_;
};

TEST_F(IntegrityTest, FlippedByteFailsProbeWithDataLossAndQuarantines) {
  auto index = BuildIndex();
  Rot(LiveExtent(*index, "alpha"));

  std::vector<Entry> out;
  Status status = index->Probe("alpha", &out);
  EXPECT_TRUE(status.IsDataLoss()) << status;
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(index->corrupt());
  EXPECT_FALSE(index->healthy());
  EXPECT_EQ(stats_.corruptions_detected.load(), 1u);
  EXPECT_EQ(stats_.quarantines.load(), 1u);

  // The timed variant fails the same way.
  status = index->TimedProbe("alpha", DayRange::All(), &out);
  EXPECT_TRUE(status.IsDataLoss()) << status;
}

TEST_F(IntegrityTest, UntouchedBucketsStillVerifyAndServe) {
  auto index = BuildIndex();
  Rot(LiveExtent(*index, "alpha"));

  // A different bucket's bytes are intact; the probe itself succeeds even
  // though the constituent as a whole is suspect after the first detection.
  std::vector<Entry> out;
  EXPECT_OK(index->Probe("day2", &out));
  EXPECT_FALSE(out.empty());
  EXPECT_GE(stats_.verified_buckets.load(), 1u);
}

TEST_F(IntegrityTest, ScanPathsDetectRot) {
  auto index = BuildIndex();
  Rot(LiveExtent(*index, "beta"));

  int visited = 0;
  Status status = index->Scan([&](const Value&, const Entry&) { ++visited; });
  EXPECT_TRUE(status.IsDataLoss()) << status;
  EXPECT_TRUE(index->corrupt());

  // The wave-level coalesced scan (ReadBatch) must reach the same verdict:
  // a fresh index, rotted the same way, scanned through the wave.
  auto index2 = BuildIndex();
  Rot(LiveExtent(*index2, "beta"));
  WaveIndex wave;
  wave.AddIndex(std::move(index2));
  QueryStats stats;
  status = wave.TimedSegmentScan(
      DayRange::All(), [](const Value&, const Entry&) {}, &stats);
  // Sole constituent quarantined: degraded wave, no silent data.
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(wave.constituents()[0]->corrupt());
}

TEST_F(IntegrityTest, VerificationOffRestoresTrustingReads) {
  auto index = BuildIndex(/*verify=*/false);
  Rot(LiveExtent(*index, "alpha"));

  std::vector<Entry> out;
  EXPECT_OK(index->Probe("alpha", &out));  // served as-is, by request
  EXPECT_TRUE(index->healthy());
  EXPECT_FALSE(index->corrupt());
  EXPECT_EQ(stats_.corruptions_detected.load(), 0u);
}

TEST_F(IntegrityTest, ChecksumsMaintainedAcrossIncrementalAppend) {
  auto index = BuildIndex();
  // Append entries to an existing value (grows/relocates per CONTIGUOUS),
  // then verify reads still pass and a post-append rot is still caught.
  DayBatch extra = MakeBatch(4, {"alpha"}, 3);
  ASSERT_OK(index->AddBatch(extra));

  std::vector<Entry> out;
  ASSERT_OK(index->Probe("alpha", &out));
  const size_t live_entries = out.size();
  EXPECT_GE(live_entries, 3u);

  Rot(LiveExtent(*index, "alpha"), /*at=*/live_entries * kEntrySize - 1);
  out.clear();
  Status status = index->Probe("alpha", &out);
  EXPECT_TRUE(status.IsDataLoss()) << status;
}

TEST_F(IntegrityTest, ChecksumsMaintainedAcrossDeleteDays) {
  auto index = BuildIndex();
  TimeSet days;
  days.insert(1);
  ASSERT_OK(index->DeleteDays(days));

  // Shrunken buckets carry refreshed checksums: every surviving read passes.
  std::vector<Entry> out;
  ASSERT_OK(index->Probe("alpha", &out));
  for (const Entry& e : out) EXPECT_NE(e.day, 1);
  ASSERT_OK(index->Scan([](const Value&, const Entry&) {}));
  EXPECT_FALSE(index->corrupt());
}

TEST_F(IntegrityTest, InstallBucketWithWrongCrcIsCaughtOnFirstRead) {
  auto index = BuildIndex();
  // Write a well-formed bucket, then install it with a flipped CRC byte —
  // the checksum-map analogue of a bit flip (rot in the metadata, not the
  // data).
  std::vector<Entry> entries(4);
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i] = Entry{900 + i, /*day=*/2, static_cast<uint32_t>(i)};
  }
  const uint64_t bytes = entries.size() * kEntrySize;
  auto extent_result = allocator_.Allocate(2 * bytes);
  ASSERT_TRUE(extent_result.ok());
  const Extent extent = extent_result.ValueOrDie();
  ASSERT_OK(device_.Write(
      extent.offset,
      std::span(reinterpret_cast<const std::byte*>(entries.data()),
                static_cast<size_t>(bytes))));
  const uint32_t good = Crc32c(entries.data(), static_cast<size_t>(bytes));
  ASSERT_OK(index->InstallBucket("installed", Extent{extent.offset, 2 * bytes},
                                 entries.size(), 2 * entries.size(),
                                 good ^ 0x00000100u));

  std::vector<Entry> out;
  Status status = index->Probe("installed", &out);
  EXPECT_TRUE(status.IsDataLoss()) << status;
  EXPECT_TRUE(index->corrupt());
}

TEST_F(IntegrityTest, QuarantineIsIdempotent) {
  auto index = BuildIndex();
  index->Quarantine();
  index->Quarantine();
  EXPECT_TRUE(index->corrupt());
  EXPECT_FALSE(index->healthy());
  EXPECT_EQ(stats_.quarantines.load(), 1u);
}

// --- Trust-boundary verification through a block cache ---------------------
//
// With a ShardedCachedDevice between the index and the medium, bytes are
// verified when they cross the medium boundary; reads served wholly from
// verified-resident cache bytes skip re-hashing (storage/device.h
// ReadBatchTracked). Rot on the medium BENEATH a trusted block is the
// background scrubber's job — the cache keeps serving the clean copy.

class TrustBoundaryTest : public IntegrityTest {
 protected:
  TrustBoundaryTest() : cached_(&device_, /*capacity_blocks=*/4096) {}

  std::unique_ptr<ConstituentIndex> BuildCachedIndex() {
    std::vector<DayBatch> batches;
    for (Day d = 1; d <= 3; ++d) batches.push_back(MakeMixedBatch(d));
    std::vector<const DayBatch*> ptrs;
    for (const DayBatch& b : batches) ptrs.push_back(&b);
    ConstituentIndex::Options options;
    options.integrity = &stats_;
    auto built =
        IndexBuilder::BuildPacked(&cached_, &allocator_, options, ptrs, "I0");
    EXPECT_TRUE(built.ok()) << built.status();
    return std::move(built).ValueOrDie();
  }

  ShardedCachedDevice cached_;
};

TEST_F(TrustBoundaryTest, SteadyStateScansSkipReverification) {
  auto index = BuildCachedIndex();
  auto scan = [&] { return index->Scan([](const Value&, const Entry&) {}); };
  ASSERT_OK(scan());  // pass 1 fills the cache and verifies the medium bytes
  ASSERT_OK(scan());  // pass 2 verifies resident bytes and promotes them
  const uint64_t verified_after_two = stats_.verified_buckets.load();
  EXPECT_GT(verified_after_two, 0u);
  ASSERT_OK(scan());  // pass 3 is served wholly from trusted bytes
  EXPECT_GT(stats_.trusted_buckets.load(), 0u);
  EXPECT_EQ(stats_.verified_buckets.load(), verified_after_two)
      << "steady-state scans must not re-hash verified-resident bytes";
}

TEST_F(TrustBoundaryTest, RepeatedProbesPromoteHotBuckets) {
  auto index = BuildCachedIndex();
  std::vector<Entry> out;
  ASSERT_OK(index->Probe("alpha", &out));  // fill + verify
  ASSERT_OK(index->Probe("alpha", &out));  // verify resident + promote
  EXPECT_EQ(stats_.trusted_buckets.load(), 0u);
  const uint64_t verified_after_two = stats_.verified_buckets.load();
  ASSERT_OK(index->Probe("alpha", &out));  // trusted
  EXPECT_EQ(stats_.trusted_buckets.load(), 1u);
  EXPECT_EQ(stats_.verified_buckets.load(), verified_after_two);
}

TEST_F(TrustBoundaryTest, RotBeneathTrustedBlocksIsServedCleanUntilRefill) {
  auto index = BuildCachedIndex();
  uint64_t baseline = 0;
  auto count_scan = [&](uint64_t* visited) {
    *visited = 0;
    return index->Scan(
        [visited](const Value&, const Entry&) { ++*visited; });
  };
  for (int pass = 0; pass < 3; ++pass) ASSERT_OK(count_scan(&baseline));
  ASSERT_GT(stats_.trusted_buckets.load(), 0u);

  // Rot the medium directly, beneath the cache (Rot writes to device_, not
  // cached_). The trusted resident copy is still the authoritative clean
  // bytes: queries keep returning exactly the pre-rot results — this rot is
  // the background scrubber's to detect, since it reads beneath the cache.
  Rot(LiveExtent(*index, "beta"));
  uint64_t visited = 0;
  ASSERT_OK(count_scan(&visited));
  EXPECT_EQ(visited, baseline) << "trusted cache must serve the clean copy";
  EXPECT_FALSE(index->corrupt());

  // Once the blocks are refilled from the medium (cache restart / eviction),
  // the bytes cross the trust boundary again and the rot is caught.
  cached_.Invalidate();
  Status status = count_scan(&visited);
  EXPECT_TRUE(status.IsDataLoss()) << status;
  EXPECT_TRUE(index->corrupt());
  EXPECT_GE(stats_.corruptions_detected.load(), 1u);
}

TEST_F(IntegrityTest, CloneOfCleanIndexVerifies) {
  auto index = BuildIndex();
  ASSERT_OK_AND_ASSIGN(auto clone, index->Clone("I0-copy"));
  ASSERT_OK(clone->Scan([](const Value&, const Entry&) {}));
  EXPECT_FALSE(clone->corrupt());
  // And the clone is independently protected: rot in the copy is caught.
  Rot(LiveExtent(*clone, "alpha"));
  std::vector<Entry> out;
  EXPECT_TRUE(clone->Probe("alpha", &out).IsDataLoss());
  EXPECT_FALSE(index->corrupt()) << "original must be unaffected";
}

}  // namespace
}  // namespace wavekit
