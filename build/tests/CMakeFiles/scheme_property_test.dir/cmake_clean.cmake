file(REMOVE_RECURSE
  "CMakeFiles/scheme_property_test.dir/wave/scheme_property_test.cc.o"
  "CMakeFiles/scheme_property_test.dir/wave/scheme_property_test.cc.o.d"
  "scheme_property_test"
  "scheme_property_test.pdb"
  "scheme_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
