# Empty compiler generated dependencies file for constituent_index_test.
# This may be replaced when dependencies are built.
