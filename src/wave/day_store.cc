#include "wave/day_store.h"

namespace wavekit {

Status DayStore::Put(DayBatch batch) {
  const Day day = batch.day;
  auto [it, inserted] = days_.emplace(day, std::move(batch));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("day " + std::to_string(day) +
                                 " already stored");
  }
  return Status::OK();
}

Result<const DayBatch*> DayStore::Get(Day day) const {
  auto it = days_.find(day);
  if (it == days_.end()) {
    return Status::NotFound("no stored batch for day " + std::to_string(day));
  }
  return &it->second;
}

void DayStore::Prune(Day oldest_needed) {
  days_.erase(days_.begin(), days_.lower_bound(oldest_needed));
}

}  // namespace wavekit
