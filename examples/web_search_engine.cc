// Web search engine: a 35-day Netnews index serving keyword queries — the
// paper's WSE case study. Uses DEL with n = 1 and packed shadow updating,
// the paper's recommendation when query volume dominates.

#include <iostream>

#include "storage/store.h"
#include "util/format.h"
#include "wave/query_helpers.h"
#include "wave/scheme_factory.h"
#include "workload/netnews.h"

using namespace wavekit;

namespace {

// Conjunctive keyword search = the library's ConjunctiveProbe: articles
// containing ALL query words, newest first. Average query length in the
// paper's WSE model is two words.
std::vector<MatchResult> Search(const WaveIndex& wave,
                                const std::vector<Value>& query_words,
                                const DayRange& window) {
  auto results = ConjunctiveProbe(wave, query_words, window);
  results.status().Abort("ConjunctiveProbe");
  return std::move(results).ValueOrDie();
}

}  // namespace

int main() {
  Store store;
  DayStore day_store;

  SchemeConfig config;
  config.window = 35;      // the paper's 35-day Netnews window
  config.num_indexes = 1;  // DEL (n = 1): single index, lowest query latency
  config.technique = UpdateTechniqueKind::kPackedShadow;
  auto scheme = MakeScheme(SchemeKind::kDel,
                           SchemeEnv{store.device(), store.allocator(),
                                     &day_store},
                           config);
  if (!scheme.ok()) {
    std::cerr << scheme.status() << "\n";
    return 1;
  }

  workload::NetnewsConfig netnews_config;
  netnews_config.articles_per_day = 150;  // the paper's 100k, scaled down
  netnews_config.words_per_article = 25;
  netnews_config.vocabulary_size = 6000;
  workload::NetnewsGenerator netnews(netnews_config);

  std::cout << "Bootstrapping a 35-day article index...\n";
  std::vector<DayBatch> first;
  for (Day d = 1; d <= 35; ++d) first.push_back(netnews.GenerateDay(d));
  (*scheme)->Start(std::move(first)).Abort("Start");

  // A week of operation: each day the new batch replaces the expired one in
  // a single smart copy (delete folded in, result packed), then queries run.
  Rng rng(7);
  for (Day d = 36; d <= 42; ++d) {
    (*scheme)->Transition(netnews.GenerateDay(d)).Abort("Transition");
    const DayRange window = DayRange::Window(d, 35);

    // Two-word queries, like the paper's average.
    const std::vector<Value> query = {netnews.SampleWord(rng),
                                      netnews.SampleWord(rng)};
    store.device()->Reset();
    auto results = Search((*scheme)->wave(), query, window);
    const double seconds =
        CostModel::Paper().Seconds(store.device()->total());
    std::cout << "day " << d << ": \"" << query[0] << " " << query[1]
              << "\" -> " << results.size() << " articles (modeled "
              << FormatSeconds(seconds) << " per query)";
    if (!results.empty()) {
      std::cout << "; newest: article " << results[0].record_id
                << " from day " << results[0].newest_day;
    }
    std::cout << "\n";
  }

  const auto& index = (*scheme)->wave().constituents()[0];
  std::cout << "\nsingle constituent covers " << index->time_set().size()
            << " days, packed=" << (index->packed() ? "yes" : "no") << ", "
            << FormatCount(index->entry_count()) << " entries in "
            << FormatBytes(index->allocated_bytes())
            << " (zero slack: packed shadow updating)\n";
  return 0;
}
