// wavectl: command-line experiment runner for wavekit.
//
//   wavectl schemes
//       List the maintenance schemes and update techniques.
//
//   wavectl run [--scheme=wata] [--window=7] [--indexes=3]
//               [--technique=simple-shadow] [--workload=netnews|tpcd]
//               [--days=21] [--records=100] [--probes=1000] [--scans=5]
//               [--case=scam|wse|tpcd] [--disks=N] [--per-day] [--csv=out.csv]
//       Run a scheme day by day on a synthetic workload; print per-day and
//       aggregate measurements (metered simulation + paper-priced model).
//
//   wavectl model [--case=scam] [--scheme=reindex] [--indexes=4]
//                 [--technique=simple-shadow] [--window=<case default>]
//       Analytic evaluation only (Tables 8-11 style numbers).
//
//   wavectl advise [--case=scam] [--window=<case default>] [--hard-window]
//                  [--no-packed-shadow] [--no-delete] [--max-indexes=10]
//                  [--max-probe-ms=...] [--top=5]
//       Rank wave-index configurations for the scenario under the given
//       constraints (the paper's Section 6 selection process).
//
//   wavectl metrics [--scheme=wata] [--window=7] [--indexes=3]
//                   [--technique=simple-shadow] [--days=14] [--records=200]
//                   [--probes=200] [--scans=5] [--threads=1]
//                   [--cache-blocks=1024] [--format=prometheus|json]
//       Serve a short synthetic workload through a WaveService with every
//       observability hook registered, then dump the unified metrics
//       registry (device phase counters, cache shard stats, service latency
//       histograms) in Prometheus text or JSON.
//
//   wavectl trace [same workload flags] [--sample=1.0] [--ring=256]
//                 [--slow-us=0]
//       Same workload, but print the sampled AdvanceDay span trees: one root
//       per transition with child spans for each maintenance primitive the
//       scheme ran, annotated with the seek/byte delta each drew.
//
//   wavectl top [same workload flags]
//       Run the workload with full telemetry (latency decorator, event
//       journal, time-series collector) and print a one-shot "top"-style
//       summary: per-phase device I/O with observed-vs-modeled drift,
//       query/advance latency percentiles, and the tail of the event journal.
//
//   wavectl export-trace [same workload flags] [--sample=1.0] [--ring=1024]
//                        [--out=trace.json]
//       Export the sampled span ring as Chrome trace-event JSON (loadable in
//       chrome://tracing or Perfetto). Writes stdout unless --out is given.
//
//   wavectl events [same workload flags] [--ring=256] [--jsonl=events.jsonl]
//                  [--format=table|json]
//       Run the workload with the maintenance event journal enabled and dump
//       it: advance start/commit/rollback, retries, degraded transitions.
//
//   wavectl serve-metrics [same workload flags] [--port=9464]
//                         [--duration-s=30] [--interval-ms=1000]
//       Run the workload, then serve the live telemetry over an embedded
//       HTTP endpoint: /metrics (Prometheus), /metrics.json,
//       /timeseries.json, /events.json, /trace.json, /healthz. The
//       time-series collector keeps sampling in the background while
//       serving. --duration-s=0 serves until killed.
//
//   wavectl stats [same workload flags] [--format=table|json]
//       Run the workload, then print the per-index storage/codec breakdown:
//       buckets stored under each codec, stored vs uncompressed bytes, and
//       the compression ratio (run with --codec=auto to see savings). The
//       same totals are exported by `wavectl metrics` as the
//       wavekit_bucket_* gauges.
//
//   wavectl scrub [same workload flags] [--corrupt] [--heal=true|false]
//       Run the workload, then one operational scrub pass: verify every live
//       bucket checksum, quarantine corrupt constituents, and (default)
//       heal them online. --corrupt first flips a byte in one live bucket
//       through the raw device to demonstrate the detect->quarantine->heal
//       cycle end to end.
//
//   wavectl verify [same workload flags] [--corrupt]
//       CI-able integrity check: the same verification sweep, reported as
//       INTEGRITY OK / INTEGRITY FAILED with a non-zero exit on any
//       checksum mismatch or read error.
//
//   wavectl bench-io [--backend=file|uring|mmap] [--path=/data/probe.dat]
//                    [--direct] [--queue-depth=64] [--size-mb=64]
//                    [--block=4096] [--batch=64] [--ops=2000] [--seed=42]
//       fio-style device microbenchmark on a real storage backend:
//       sequential read/write bandwidth, random scalar latency, and random
//       batched throughput. Prints the measured seek time and transfer rate
//       in the units of the Section 5 cost model, for calibrating
//       model::CaseParams::hardware to the machine actually underneath.
//
//   The workload-driven subcommands (metrics, trace, top, export-trace,
//   events, serve-metrics, stats, scrub, verify) also accept
//   --backend/--path/--direct/--queue-depth to serve from a real device
//   instead of the modeled MemoryDevice, and --codec=raw|auto|delta|bitpack
//   to choose the bucket codec policy for every index the run builds.
//
//   Unknown subcommands or flags print usage and exit non-zero.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "index/codec.h"
#include "model/space_model.h"
#include "storage/backend_registry.h"
#include "util/random.h"
#include "model/total_work.h"
#include "obs/event_journal.h"
#include "obs/http_exporter.h"
#include "obs/latency_device.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace_export.h"
#include "util/macros.h"
#include "sim/csv.h"
#include "sim/driver.h"
#include "sim/table_printer.h"
#include "util/format.h"
#include "wave/advisor.h"
#include "serve/client.h"
#include "wave/scheme_factory.h"
#include "wave/wave_service.h"
#include "workload/netnews.h"

namespace wavekit {
namespace {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        // Commands take no positional operands; anything that is not a
        // --flag is a mistake the dispatcher should reject.
        stray_.push_back(arg);
        continue;
      }
      const size_t eq = arg.find('=');
      const std::string key =
          eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
      values_[key] = eq == std::string::npos ? "true" : arg.substr(eq + 1);
      seen_.push_back(key);
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }
  bool GetBool(const std::string& key) const {
    return Get(key, "false") == "true";
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  /// Arguments this command does not understand: every --flag whose key is
  /// absent from `allowed` (rendered back as "--key"), plus any stray
  /// positional operands, in the order given.
  std::vector<std::string> Unknown(
      const std::vector<std::string>& allowed) const {
    std::vector<std::string> unknown;
    for (const std::string& key : seen_) {
      if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
        unknown.push_back("--" + key);
      }
    }
    unknown.insert(unknown.end(), stray_.begin(), stray_.end());
    return unknown;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> seen_;   // flag keys, in command-line order
  std::vector<std::string> stray_;  // non-flag operands
};

model::CaseParams CaseByName(const std::string& name) {
  if (name == "wse") return model::CaseParams::Wse();
  if (name == "tpcd") return model::CaseParams::Tpcd();
  return model::CaseParams::Scam();
}

int Schemes() {
  sim::TablePrinter table({"scheme", "window", "daily critical path",
                           "needs delete code"});
  table.AddRow({"DEL", "hard", "one AddToIndex (after precomputed delete)",
                "yes"});
  table.AddRow({"REINDEX", "hard", "rebuild W/n days (always packed)", "no"});
  table.AddRow({"REINDEX+", "hard", "copy Temp + re-add shrinking tail", "no"});
  table.AddRow({"REINDEX++", "hard", "one AddToIndex (precomputed ladder)",
                "no"});
  table.AddRow({"WATA*", "soft", "one AddToIndex (bulk expiry by drop)",
                "no"});
  table.AddRow({"RATA*", "hard", "one AddToIndex + rename", "no"});
  table.AddRow({"KB-WATA", "soft", "one AddToIndex (size-bounded slices)",
                "no"});
  table.Print(std::cout);
  std::cout << "\nupdate techniques: in-place | simple-shadow | packed-shadow\n";
  return 0;
}

int RunExperiment(const Args& args) {
  sim::ExperimentConfig config;
  auto scheme = SchemeKindFromName(args.Get("scheme", "wata"));
  if (!scheme.ok()) {
    std::cerr << scheme.status() << "\n";
    return 2;
  }
  auto technique = UpdateTechniqueFromName(
      args.Get("technique", "simple-shadow"));
  if (!technique.ok()) {
    std::cerr << technique.status() << "\n";
    return 2;
  }
  config.scheme = scheme.ValueOrDie();
  config.scheme_config.window = args.GetInt("window", 7);
  config.scheme_config.num_indexes = args.GetInt("indexes", 3);
  config.scheme_config.technique = technique.ValueOrDie();
  config.workload = args.Get("workload", "netnews") == "tpcd"
                        ? sim::WorkloadKind::kTpcd
                        : sim::WorkloadKind::kNetnews;
  config.netnews.articles_per_day =
      static_cast<uint64_t>(args.GetInt("records", 100));
  config.tpcd.rows_per_day = static_cast<uint64_t>(args.GetInt("records", 500));
  config.days_to_run = args.GetInt("days", 3 * config.scheme_config.window);
  config.warmup_days =
      std::min(config.scheme_config.window, config.days_to_run / 2);
  config.query_mix.probes_per_day = args.GetInt("probes", 1000);
  config.query_mix.probe_sample = 8;
  config.query_mix.scans_per_day = args.GetInt("scans", 5);
  config.query_mix.scan_sample = 1;
  config.paper = CaseByName(args.Get("case", "scam"));
  config.num_disks = args.GetInt("disks", 1);
  if (config.scheme == SchemeKind::kKnownBoundWata) {
    config.scheme_config.size_bound_entries = static_cast<uint64_t>(
        args.GetInt("records", 100) * 60 * config.scheme_config.window);
  }

  auto run = sim::ExperimentDriver::Run(config);
  if (!run.ok()) {
    std::cerr << run.status() << "\n";
    return 1;
  }
  const sim::ExperimentResult result = std::move(run).ValueOrDie();

  const std::string csv_path = args.Get("csv", "");
  if (!csv_path.empty()) {
    Status s = sim::WriteCsv(result, csv_path);
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    std::cout << "per-day measurements written to " << csv_path << "\n";
  }

  if (args.GetBool("per-day")) {
    sim::TablePrinter days({"day", "sim trans", "sim pre", "sim query",
                            "model trans", "model pre", "space", "length"});
    for (const sim::DayStats& d : result.days) {
      days.AddRow({std::to_string(d.day),
                   FormatSeconds(d.sim_transition_seconds),
                   FormatSeconds(d.sim_precompute_seconds),
                   FormatSeconds(d.sim_query_seconds),
                   FormatSeconds(d.model_transition_seconds),
                   FormatSeconds(d.model_precompute_seconds),
                   FormatBytes(d.operation_bytes),
                   std::to_string(d.wave_length_days)});
    }
    days.Print(std::cout);
    std::cout << "\n";
  }

  const sim::Aggregates& agg = result.aggregates;
  sim::TablePrinter table({"measure", "simulation (scaled data)",
                           "model (paper parameters)"});
  table.SetTitle(std::string(SchemeKindName(config.scheme)) + " W=" +
                 std::to_string(config.scheme_config.window) + " n=" +
                 std::to_string(config.scheme_config.num_indexes) + " (" +
                 UpdateTechniqueKindName(config.scheme_config.technique) +
                 "), averages over the last " +
                 std::to_string(config.days_to_run - config.warmup_days) +
                 " days");
  table.AddRow({"transition/day", FormatSeconds(agg.avg_sim_transition_seconds),
                FormatSeconds(agg.avg_model_transition_seconds)});
  table.AddRow({"precompute/day", FormatSeconds(agg.avg_sim_precompute_seconds),
                FormatSeconds(agg.avg_model_precompute_seconds)});
  table.AddRow({"queries/day", FormatSeconds(agg.avg_sim_query_seconds),
                FormatSeconds(agg.avg_model_query_seconds)});
  table.AddRow({"total work/day", FormatSeconds(agg.avg_sim_total_work),
                FormatSeconds(agg.avg_model_total_work)});
  if (config.num_disks > 1) {
    table.AddRow({"queries/day (parallel, " +
                      std::to_string(config.num_disks) + " disks)",
                  FormatSeconds(agg.avg_sim_query_parallel_seconds), "-"});
  }
  table.AddRow({"steady space",
                FormatBytes(static_cast<uint64_t>(agg.avg_operation_bytes)),
                "-"});
  table.AddRow({"transition extra space",
                FormatBytes(static_cast<uint64_t>(agg.avg_transition_extra_bytes)),
                "-"});
  table.AddRow({"max wave length (days)",
                std::to_string(agg.max_wave_length_days), "-"});
  table.Print(std::cout);
  return 0;
}

int Model(const Args& args) {
  const model::CaseParams params = CaseByName(args.Get("case", "scam"));
  auto scheme = SchemeKindFromName(args.Get("scheme", "reindex"));
  auto technique = UpdateTechniqueFromName(
      args.Get("technique", "simple-shadow"));
  if (!scheme.ok() || !technique.ok()) {
    std::cerr << (scheme.ok() ? technique.status() : scheme.status()) << "\n";
    return 2;
  }
  const int window = args.GetInt("window", params.window);
  const int n = args.GetInt("indexes", 4);

  auto work = model::EstimateTotalWork(scheme.ValueOrDie(),
                                       technique.ValueOrDie(), params, window,
                                       n);
  if (!work.ok()) {
    std::cerr << work.status() << "\n";
    return 1;
  }
  const model::SpaceEstimate space = model::EstimateSpace(
      scheme.ValueOrDie(), technique.ValueOrDie(), params, window, n);

  sim::TablePrinter table({"measure", "value"});
  table.SetTitle(params.name + " / " +
                 std::string(SchemeKindName(scheme.ValueOrDie())) + " W=" +
                 std::to_string(window) + " n=" + std::to_string(n));
  table.AddRow({"transition/day",
                FormatSeconds(work.ValueOrDie().transition_seconds)});
  table.AddRow({"precompute/day",
                FormatSeconds(work.ValueOrDie().precompute_seconds)});
  table.AddRow({"queries/day", FormatSeconds(work.ValueOrDie().query_seconds)});
  table.AddRow({"total work/day", FormatSeconds(work.ValueOrDie().total())});
  table.AddRow({"avg operation space",
                FormatBytes(static_cast<uint64_t>(space.avg_operation_bytes))});
  table.AddRow({"max operation space",
                FormatBytes(static_cast<uint64_t>(space.max_operation_bytes))});
  table.AddRow({"avg transition space",
                FormatBytes(static_cast<uint64_t>(space.avg_transition_bytes))});
  table.Print(std::cout);
  return 0;
}

int Advise(const Args& args) {
  const model::CaseParams params = CaseByName(args.Get("case", "scam"));
  const int window = args.GetInt("window", params.window);
  AdvisorConstraints constraints;
  constraints.require_hard_window = args.GetBool("hard-window");
  constraints.can_implement_packed_shadow = !args.GetBool("no-packed-shadow");
  constraints.can_implement_delete = !args.GetBool("no-delete");
  constraints.max_indexes = args.GetInt("max-indexes", 10);
  const int max_probe_ms = args.GetInt("max-probe-ms", 0);
  if (max_probe_ms > 0) constraints.max_probe_seconds = max_probe_ms / 1000.0;

  auto ranked = RankWaveIndexOptions(params, window, constraints);
  if (!ranked.ok()) {
    std::cerr << ranked.status() << "\n";
    return 1;
  }
  if (ranked.ValueOrDie().empty()) {
    std::cerr << "no configuration satisfies the constraints\n";
    return 1;
  }
  const int top = args.GetInt("top", 5);
  sim::TablePrinter table({"#", "scheme", "n", "technique", "work/day",
                           "transition", "avg space", "probe"});
  table.SetTitle(params.name + " (W=" + std::to_string(window) + ")");
  int rank = 0;
  for (const Recommendation& r : ranked.ValueOrDie()) {
    if (++rank > top) break;
    table.AddRow({std::to_string(rank), std::string(SchemeKindName(r.scheme)),
                  std::to_string(r.num_indexes),
                  UpdateTechniqueKindName(r.technique),
                  FormatSeconds(r.work.total()),
                  FormatSeconds(r.work.transition_seconds),
                  FormatBytes(static_cast<uint64_t>(r.space.avg_total())),
                  FormatSeconds(r.probe_seconds)});
  }
  table.Print(std::cout);
  std::cout << "\nrecommendation: " << ranked.ValueOrDie().front().rationale
            << "\n";
  return 0;
}

/// The auto-generated backing file for a persistent --backend run without an
/// explicit --path; empty when none is needed. Callers remove it after the
/// service is gone.
std::string ScratchDevicePath(const Args& args) {
  const std::string backend = args.Get("backend", "memory");
  if (backend == "memory" || !args.Get("path", "").empty()) return "";
  return "/tmp/wavectl_" + backend + "_" + std::to_string(::getpid()) +
         ".wavedev";
}

/// Builds a WaveService wired to `registry`, serves a short synthetic
/// Netnews workload through it (start window + `--days` transitions,
/// `--probes` probes and `--scans` scans per day), and returns the service so
/// callers can inspect the registry or the tracer. `customize`, when set,
/// gets a final look at the options before the service is created (the
/// telemetry subcommands enable the latency decorator, event journal, and
/// time-series collector through it).
Result<std::unique_ptr<WaveService>> ServeSyntheticWorkload(
    const Args& args, obs::MetricsRegistry* registry, double sample_rate,
    size_t ring_capacity, uint64_t slow_op_threshold_us,
    const std::function<void(WaveService::Options*)>& customize = nullptr) {
  WaveService::Options options;
  WAVEKIT_ASSIGN_OR_RETURN(options.scheme,
                           SchemeKindFromName(args.Get("scheme", "wata")));
  WAVEKIT_ASSIGN_OR_RETURN(
      options.config.technique,
      UpdateTechniqueFromName(args.Get("technique", "simple-shadow")));
  options.config.window = args.GetInt("window", 7);
  options.config.num_indexes = args.GetInt("indexes", 3);
  const uint64_t records =
      static_cast<uint64_t>(args.GetInt("records", 200));
  if (options.scheme == SchemeKind::kKnownBoundWata) {
    options.config.size_bound_entries =
        records * 60 * static_cast<uint64_t>(options.config.window);
  }
  WAVEKIT_ASSIGN_OR_RETURN(options.config.codec,
                           CodecModeFromName(args.Get("codec", "raw")));
  options.num_query_threads = args.GetInt("threads", 1);
  options.cache_blocks = static_cast<size_t>(args.GetInt("cache-blocks", 1024));
  options.storage_backend = args.Get("backend", "memory");
  options.storage_path = args.Get("path", "");
  options.direct_io = args.GetBool("direct");
  options.io_queue_depth = args.GetInt("queue-depth", 64);
  if (options.storage_path.empty()) {
    options.storage_path = ScratchDevicePath(args);
  }
  options.metrics_registry = registry;
  options.trace_sample_rate = sample_rate;
  options.trace_ring_capacity = ring_capacity;
  options.slow_op_threshold_us = slow_op_threshold_us;
  if (customize) customize(&options);
  WAVEKIT_ASSIGN_OR_RETURN(std::unique_ptr<WaveService> service,
                           WaveService::Create(options));

  workload::NetnewsConfig netnews_config;
  netnews_config.articles_per_day = records;
  workload::NetnewsGenerator netnews(netnews_config);
  Rng rng(7);

  std::vector<DayBatch> first_window;
  for (Day d = 1; d <= options.config.window; ++d) {
    first_window.push_back(netnews.GenerateDay(d));
  }
  WAVEKIT_RETURN_NOT_OK(service->Start(std::move(first_window)));

  const int probes_per_day = args.GetInt("probes", 200);
  const int scans_per_day = args.GetInt("scans", 5);
  const Day last_day = options.config.window + args.GetInt("days", 14);
  for (Day d = options.config.window + 1; d <= last_day; ++d) {
    WAVEKIT_RETURN_NOT_OK(service->AdvanceDay(netnews.GenerateDay(d)));
    for (int i = 0; i < probes_per_day; ++i) {
      std::vector<Entry> out;
      WAVEKIT_RETURN_NOT_OK(service->IndexProbe(netnews.SampleWord(rng), &out));
    }
    for (int i = 0; i < scans_per_day; ++i) {
      uint64_t entries = 0;
      WAVEKIT_RETURN_NOT_OK(service->TimedSegmentScan(
          DayRange::Window(service->current_day(), 3),
          [&entries](const Value&, const Entry&) { ++entries; }));
    }
  }
  return service;
}

int Metrics(const Args& args) {
  obs::MetricsRegistry registry;
  auto service = ServeSyntheticWorkload(args, &registry, /*sample_rate=*/0.0,
                                        /*ring_capacity=*/256,
                                        /*slow_op_threshold_us=*/0);
  if (!service.ok()) {
    std::cerr << service.status() << "\n";
    return 1;
  }
  const std::string format = args.Get("format", "prometheus");
  int code = 0;
  if (format == "json") {
    std::cout << registry.RenderJson();
  } else if (format == "prometheus") {
    std::cout << registry.RenderPrometheus();
  } else {
    std::cerr << "unknown --format=" << format << " (prometheus|json)\n";
    code = 2;
  }
  service.ValueOrDie().reset();  // close the backing file before unlinking
  const std::string scratch = ScratchDevicePath(args);
  if (!scratch.empty()) std::remove(scratch.c_str());
  return code;
}

int Trace(const Args& args) {
  obs::MetricsRegistry registry;
  auto service = ServeSyntheticWorkload(
      args, &registry, args.GetDouble("sample", 1.0),
      static_cast<size_t>(args.GetInt("ring", 256)),
      static_cast<uint64_t>(args.GetInt("slow-us", 0)));
  if (!service.ok()) {
    std::cerr << service.status() << "\n";
    return 1;
  }
  const obs::Tracer* tracer = service.ValueOrDie()->tracer();
  const std::vector<obs::SpanRecord> spans = tracer->CompletedSpans();

  // Children finish before their parents, so group the flat ring into trees.
  std::map<uint64_t, std::vector<const obs::SpanRecord*>> children;
  std::vector<const obs::SpanRecord*> roots;
  for (const obs::SpanRecord& span : spans) {
    if (span.parent_span_id == 0) {
      roots.push_back(&span);
    } else {
      children[span.parent_span_id].push_back(&span);
    }
  }
  const std::function<void(const obs::SpanRecord&, int)> print =
      [&](const obs::SpanRecord& span, int depth) {
        std::cout << std::string(static_cast<size_t>(depth) * 2, ' ')
                  << span.name << "  " << span.duration_us << "us  seeks="
                  << span.seeks << " read=" << FormatBytes(span.bytes_read)
                  << " written=" << FormatBytes(span.bytes_written) << "\n";
        auto it = children.find(span.span_id);
        if (it == children.end()) return;
        for (const obs::SpanRecord* child : it->second) print(*child, depth + 1);
      };
  for (const obs::SpanRecord* root : roots) {
    std::cout << "trace " << root->trace_id << ":\n";
    print(*root, 1);
  }
  std::cout << "roots started=" << tracer->roots_started()
            << " sampled=" << tracer->roots_sampled()
            << " spans recorded=" << tracer->spans_recorded() << "\n";
  service.ValueOrDie().reset();
  const std::string scratch = ScratchDevicePath(args);
  if (!scratch.empty()) std::remove(scratch.c_str());
  return 0;
}

/// Workload-option hook enabling the full telemetry pipeline: latency
/// decorator under the meter, event journal, and time-series collector. The
/// 1 ms collector interval means every AdvanceDay tick takes a sample.
void EnableTelemetry(WaveService::Options* options) {
  options->track_device_latency = true;
  options->event_ring_capacity = 256;
  options->collector_interval_us = 1000;
  options->collector_ring_capacity = 256;
}

int Top(const Args& args) {
  obs::MetricsRegistry registry;
  auto service = ServeSyntheticWorkload(args, &registry, /*sample_rate=*/1.0,
                                        /*ring_capacity=*/256,
                                        /*slow_op_threshold_us=*/0,
                                        EnableTelemetry);
  if (!service.ok()) {
    std::cerr << service.status() << "\n";
    return 1;
  }
  WaveService& svc = *service.ValueOrDie();

  // Per-phase device I/O: the meter's modeled seconds next to the latency
  // decorator's measured wall-clock, and the ratio between them.
  const MeteredDevice::Snapshot io = svc.device()->snapshot();
  const CostModel model;
  const obs::LatencyTrackingDevice* latency = svc.latency_device();
  sim::TablePrinter device_table({"phase", "seeks", "read", "written", "syncs",
                                  "modeled", "observed", "drift"});
  device_table.SetTitle("device I/O by phase (backend=" +
                        svc.storage_backend() + ")");
  for (const auto& p : io.phases) {
    if (p.io.seeks == 0 && p.io.sync_ops == 0) continue;
    const double modeled = model.Seconds(p.io);
    const double observed = latency->observed_seconds(p.phase);
    device_table.AddRow(
        {p.name, std::to_string(p.io.seeks), FormatBytes(p.io.bytes_read),
         FormatBytes(p.io.bytes_written), std::to_string(p.io.sync_ops),
         FormatSeconds(modeled), FormatSeconds(observed),
         modeled > 0 ? FormatDouble(observed / modeled, 4) : "-"});
  }
  device_table.Print(std::cout);

  const ServiceMetrics metrics = svc.Metrics();
  sim::TablePrinter ops({"operation", "count", "p50", "p99", "max"});
  const auto latency_row = [&ops](const std::string& name, uint64_t count,
                                  const Histogram& h) {
    ops.AddRow({name, std::to_string(count),
                std::to_string(h.Percentile(0.5)) + " us",
                std::to_string(h.Percentile(0.99)) + " us",
                std::to_string(h.max()) + " us"});
  };
  latency_row("probe", metrics.probes, metrics.probe_latency_us);
  latency_row("scan", metrics.scans, metrics.scan_latency_us);
  latency_row("advance", metrics.days_advanced, metrics.advance_latency_us);
  std::cout << "\n";
  ops.Print(std::cout);

  std::cout << "\nday=" << svc.current_day()
            << " degraded=" << (svc.degraded() ? "yes" : "no")
            << " failed_advances=" << metrics.degraded_advances
            << " retries=" << metrics.faults.retries << " samples="
            << (svc.collector() != nullptr ? svc.collector()->samples_taken()
                                           : 0)
            << " events="
            << (svc.events() != nullptr ? svc.events()->total_appended() : 0)
            << "\n";

  if (svc.events() != nullptr) {
    sim::TablePrinter events({"seq", "day", "event", "message"});
    events.SetTitle("event journal (most recent last)");
    const std::vector<obs::Event> ring = svc.events()->Events();
    const size_t start = ring.size() > 10 ? ring.size() - 10 : 0;
    for (size_t i = start; i < ring.size(); ++i) {
      events.AddRow({std::to_string(ring[i].sequence),
                     std::to_string(ring[i].day),
                     obs::EventTypeName(ring[i].type), ring[i].message});
    }
    std::cout << "\n";
    events.Print(std::cout);
  }

  service.ValueOrDie().reset();
  const std::string scratch = ScratchDevicePath(args);
  if (!scratch.empty()) std::remove(scratch.c_str());
  return 0;
}

int ExportTrace(const Args& args) {
  obs::MetricsRegistry registry;
  auto service = ServeSyntheticWorkload(
      args, &registry, args.GetDouble("sample", 1.0),
      static_cast<size_t>(args.GetInt("ring", 1024)),
      static_cast<uint64_t>(args.GetInt("slow-us", 0)));
  if (!service.ok()) {
    std::cerr << service.status() << "\n";
    return 1;
  }
  const std::string json =
      obs::RenderChromeTrace(*service.ValueOrDie()->tracer());
  int code = 0;
  const std::string out = args.Get("out", "");
  if (out.empty()) {
    std::cout << json;
  } else {
    std::ofstream file(out, std::ios::trunc);
    file << json;
    file.close();
    if (!file) {
      std::cerr << "export-trace: cannot write " << out << "\n";
      code = 1;
    } else {
      std::cout << "trace written to " << out << " ("
                << service.ValueOrDie()->tracer()->CompletedSpans().size()
                << " spans); open in chrome://tracing or Perfetto\n";
    }
  }
  service.ValueOrDie().reset();
  const std::string scratch = ScratchDevicePath(args);
  if (!scratch.empty()) std::remove(scratch.c_str());
  return code;
}

int Events(const Args& args) {
  obs::MetricsRegistry registry;
  const size_t ring = static_cast<size_t>(args.GetInt("ring", 256));
  const std::string jsonl = args.Get("jsonl", "");
  auto service = ServeSyntheticWorkload(
      args, &registry, /*sample_rate=*/0.0, /*ring_capacity=*/256,
      /*slow_op_threshold_us=*/0, [&](WaveService::Options* options) {
        options->event_ring_capacity = ring;
        options->event_jsonl_path = jsonl;
      });
  if (!service.ok()) {
    std::cerr << service.status() << "\n";
    return 1;
  }
  const obs::EventJournal* journal = service.ValueOrDie()->events();
  const std::string format = args.Get("format", "table");
  int code = 0;
  if (format == "json") {
    std::cout << journal->RenderJson();
  } else if (format == "table") {
    sim::TablePrinter table({"seq", "t_us", "day", "event", "message"});
    table.SetTitle("maintenance events (" +
                   std::to_string(journal->total_appended()) +
                   " appended, ring holds " +
                   std::to_string(journal->Events().size()) + ")");
    for (const obs::Event& event : journal->Events()) {
      table.AddRow({std::to_string(event.sequence),
                    std::to_string(event.timestamp_us),
                    std::to_string(event.day), obs::EventTypeName(event.type),
                    event.message});
    }
    table.Print(std::cout);
    if (!jsonl.empty()) {
      std::cout << "JSONL sink: " << jsonl
                << (journal->sink_ok() ? "" : " (WRITE FAILED)") << "\n";
    }
  } else {
    std::cerr << "unknown --format=" << format << " (table|json)\n";
    code = 2;
  }
  service.ValueOrDie().reset();
  const std::string scratch = ScratchDevicePath(args);
  if (!scratch.empty()) std::remove(scratch.c_str());
  return code;
}

int ServeMetrics(const Args& args) {
  obs::MetricsRegistry registry;
  const uint64_t interval_us =
      static_cast<uint64_t>(args.GetInt("interval-ms", 1000)) * 1000;
  auto service = ServeSyntheticWorkload(
      args, &registry, /*sample_rate=*/1.0, /*ring_capacity=*/256,
      /*slow_op_threshold_us=*/0, [&](WaveService::Options* options) {
        EnableTelemetry(options);
        // Re-sample on wall-clock while the endpoint is being scraped, not
        // just on AdvanceDay ticks.
        options->collector_interval_us = interval_us > 0 ? interval_us : 1000;
        options->collector_background_thread = true;
      });
  if (!service.ok()) {
    std::cerr << service.status() << "\n";
    return 1;
  }
  WaveService* svc = service.ValueOrDie().get();

  obs::HttpExporter::Options http;
  http.port = static_cast<uint16_t>(args.GetInt("port", 9464));
  http.registry = &registry;
  http.collector = svc->collector();
  http.events = svc->events();
  http.tracer = svc->tracer();
  http.health = [svc](std::string* detail) {
    if (!svc->degraded()) return true;
    *detail = svc->degraded_detail();
    return false;
  };
  obs::HttpExporter exporter(std::move(http));
  Status started = exporter.Start();
  if (!started.ok()) {
    std::cerr << started << "\n";
    return 1;
  }
  const int duration_s = args.GetInt("duration-s", 30);
  std::cout << "serving telemetry on http://127.0.0.1:" << exporter.port()
            << " (/metrics /metrics.json /timeseries.json /events.json "
               "/trace.json /healthz)\n"
            << "port=" << exporter.port() << "\n"
            << (duration_s > 0
                    ? "for " + std::to_string(duration_s) + "s...\n"
                    : "until killed...\n")
            << std::flush;
  for (int elapsed = 0; duration_s == 0 || elapsed < duration_s; ++elapsed) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
  }
  exporter.Stop();
  std::cout << "served " << exporter.requests_served() << " requests\n";
  service.ValueOrDie().reset();
  const std::string scratch = ScratchDevicePath(args);
  if (!scratch.empty()) std::remove(scratch.c_str());
  return 0;
}

/// `wavectl stats`: the per-index storage/codec breakdown of the snapshot a
/// run ends on. This is the operational "how much am I saving" view; the
/// wavekit_bucket_* gauges export the totals row continuously.
int Stats(const Args& args) {
  obs::MetricsRegistry registry;
  auto service = ServeSyntheticWorkload(args, &registry, /*sample_rate=*/0.0,
                                        /*ring_capacity=*/256,
                                        /*slow_op_threshold_us=*/0);
  if (!service.ok()) {
    std::cerr << service.status() << "\n";
    return 1;
  }
  WaveService& svc = *service.ValueOrDie();
  // Released before the service: the constituents return their extents to
  // the service's allocator when the last reference drops.
  std::shared_ptr<const WaveIndex> snapshot = svc.Snapshot();
  int code = 0;
  const std::string format = args.Get("format", "table");
  const auto row_of = [](const std::string& name,
                         const ConstituentIndex::CodecBreakdown& b) {
    return std::vector<std::string>{
        name,
        std::to_string(b.buckets[0]),
        std::to_string(b.buckets[1]),
        std::to_string(b.buckets[2]),
        FormatBytes(b.stored_bytes),
        FormatBytes(b.uncompressed_bytes),
        FormatDouble(b.ratio(), 3)};
  };
  const ConstituentIndex::CodecBreakdown totals = svc.CodecTotals();
  if (format == "json") {
    const auto json_of = [](const ConstituentIndex::CodecBreakdown& b) {
      return std::string("{\"raw_buckets\":") + std::to_string(b.buckets[0]) +
             ",\"delta_buckets\":" + std::to_string(b.buckets[1]) +
             ",\"bitpack_buckets\":" + std::to_string(b.buckets[2]) +
             ",\"stored_bytes\":" + std::to_string(b.stored_bytes) +
             ",\"uncompressed_bytes\":" + std::to_string(b.uncompressed_bytes) +
             ",\"ratio\":" + FormatDouble(b.ratio(), 4) + "}";
    };
    std::cout << "{\"indexes\":[";
    bool first = true;
    for (const auto& constituent : snapshot->constituents()) {
      if (!first) std::cout << ",";
      first = false;
      std::cout << "{\"name\":\"" << constituent->name() << "\",\"packed\":"
                << (constituent->packed() ? "true" : "false")
                << ",\"codecs\":" << json_of(constituent->CodecStats()) << "}";
    }
    std::cout << "],\"total\":" << json_of(totals) << "}\n";
  } else if (format == "table") {
    sim::TablePrinter table({"index", "raw", "delta", "bitpack", "stored",
                             "uncompressed", "ratio"});
    table.SetTitle("per-index bucket codec breakdown (codec=" +
                   args.Get("codec", "raw") + ")");
    for (const auto& constituent : snapshot->constituents()) {
      table.AddRow(row_of(constituent->name() +
                              (constituent->packed() ? " (packed)" : ""),
                          constituent->CodecStats()));
    }
    table.AddRow(row_of("TOTAL", totals));
    table.Print(std::cout);
    std::cout << "day=" << svc.current_day() << " constituents="
              << snapshot->num_constituents() << " saved="
              << FormatBytes(totals.uncompressed_bytes - totals.stored_bytes)
              << "\n";
  } else {
    std::cerr << "unknown --format=" << format << " (table|json)\n";
    code = 2;
  }
  snapshot.reset();
  service.ValueOrDie().reset();
  const std::string scratch = ScratchDevicePath(args);
  if (!scratch.empty()) std::remove(scratch.c_str());
  return code;
}

/// Flips one byte in the first live bucket found in the service's wave, via
/// the raw device — silent media corruption underneath a live service (the
/// directory checksum keeps the pre-rot truth, so the next scrub or read
/// must detect the divergence). Returns the "index/bucket" it corrupted.
Result<std::string> CorruptOneBucket(WaveService* svc) {
  const std::shared_ptr<const WaveIndex> snapshot = svc->Snapshot();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("service not started");
  }
  // Newest constituent first: its days are still in the day store, so the
  // demo can show the full detect -> quarantine -> heal cycle (the oldest
  // soft-window constituent may span pruned days, which heal must skip).
  const auto& constituents = snapshot->constituents();
  for (auto it = constituents.rbegin(); it != constituents.rend(); ++it) {
    const auto& constituent = *it;
    Extent live{0, 0};
    Value bucket;
    WAVEKIT_RETURN_NOT_OK(constituent->ForEachBucket(
        [&](const Value& value, const BucketInfo& info) {
          if (live.length == 0 && info.count > 0) {
            live = Extent{info.extent.offset, info.stored_length()};
            bucket = value;
          }
        }));
    if (live.length == 0) continue;
    std::vector<std::byte> buf(static_cast<size_t>(live.length));
    WAVEKIT_RETURN_NOT_OK(svc->device()->Read(live.offset, buf));
    buf[0] ^= std::byte{0x40};
    WAVEKIT_RETURN_NOT_OK(svc->device()->Write(live.offset, buf));
    return constituent->name() + "/" + bucket;
  }
  return Status::NotFound("no live bucket to corrupt");
}

void PrintScrubReport(const WaveService& svc, const ScrubReport& report) {
  sim::TablePrinter table({"measure", "value"});
  table.SetTitle("scrub pass");
  table.AddRow({"constituents scrubbed",
                std::to_string(report.constituents_scrubbed)});
  table.AddRow({"constituents skipped (unhealthy)",
                std::to_string(report.constituents_skipped)});
  table.AddRow({"buckets verified", std::to_string(report.buckets_verified)});
  table.AddRow({"bytes read", FormatBytes(report.bytes_read)});
  table.AddRow({"checksum mismatches", std::to_string(report.mismatches)});
  table.AddRow({"transient read errors", std::to_string(report.read_errors)});
  std::string quarantined;
  for (const std::string& name : report.quarantined) {
    if (!quarantined.empty()) quarantined += ", ";
    quarantined += name;
  }
  table.AddRow({"quarantined", quarantined.empty() ? "-" : quarantined});
  table.Print(std::cout);
  std::cout << "degraded=" << (svc.degraded() ? "yes" : "no");
  if (svc.degraded()) std::cout << " (" << svc.degraded_detail() << ")";
  std::cout << "\n";
}

/// `wavectl scrub`: the operational pass. Runs the synthetic workload,
/// optionally rots one bucket (--corrupt), scrubs, and (--heal, default on)
/// rebuilds whatever the scrub quarantined.
int Scrub(const Args& args) {
  obs::MetricsRegistry registry;
  auto service = ServeSyntheticWorkload(args, &registry, /*sample_rate=*/0.0,
                                        /*ring_capacity=*/256,
                                        /*slow_op_threshold_us=*/0);
  if (!service.ok()) {
    std::cerr << service.status() << "\n";
    return 1;
  }
  WaveService& svc = *service.ValueOrDie();
  int code = 0;
  if (args.GetBool("corrupt")) {
    auto where = CorruptOneBucket(&svc);
    if (!where.ok()) {
      std::cerr << where.status() << "\n";
      code = 1;
    } else {
      std::cout << "corrupted one byte in " << where.ValueOrDie() << "\n";
    }
  }
  if (code == 0) {
    auto report = svc.Scrub();
    if (!report.ok()) {
      std::cerr << report.status() << "\n";
      code = 1;
    } else {
      PrintScrubReport(svc, report.ValueOrDie());
      if (args.Get("heal", "true") == "true" &&
          !report.ValueOrDie().quarantined.empty()) {
        auto healed = svc.Heal();
        if (!healed.ok()) {
          std::cerr << healed.status() << "\n";
          code = 1;
        } else {
          std::cout << "healed=" << healed.ValueOrDie().healed
                    << " skipped=" << healed.ValueOrDie().skipped
                    << " degraded=" << (svc.degraded() ? "yes" : "no") << "\n";
        }
      }
    }
  }
  service.ValueOrDie().reset();
  const std::string scratch = ScratchDevicePath(args);
  if (!scratch.empty()) std::remove(scratch.c_str());
  return code;
}

/// `wavectl verify`: the CI-able integrity check. Same verification sweep as
/// scrub (corruption still quarantines — it is real), but frames the result
/// as pass/fail and exits non-zero on any checksum mismatch.
int Verify(const Args& args) {
  obs::MetricsRegistry registry;
  auto service = ServeSyntheticWorkload(args, &registry, /*sample_rate=*/0.0,
                                        /*ring_capacity=*/256,
                                        /*slow_op_threshold_us=*/0);
  if (!service.ok()) {
    std::cerr << service.status() << "\n";
    return 1;
  }
  WaveService& svc = *service.ValueOrDie();
  int code = 0;
  if (args.GetBool("corrupt")) {
    auto where = CorruptOneBucket(&svc);
    if (where.ok()) {
      std::cout << "corrupted one byte in " << where.ValueOrDie() << "\n";
    }
  }
  auto report = svc.Scrub();
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    code = 1;
  } else {
    const ScrubReport& r = report.ValueOrDie();
    if (r.mismatches == 0 && r.read_errors == 0) {
      std::cout << "INTEGRITY OK: " << r.buckets_verified << " buckets ("
                << FormatBytes(r.bytes_read) << ") verified across "
                << r.constituents_scrubbed << " constituents\n";
    } else {
      std::cout << "INTEGRITY FAILED: " << r.mismatches
                << " checksum mismatch(es), " << r.read_errors
                << " read error(s)";
      for (const std::string& name : r.quarantined) {
        std::cout << " quarantined=" << name;
      }
      std::cout << "\n";
      code = 1;
    }
  }
  service.ValueOrDie().reset();
  const std::string scratch = ScratchDevicePath(args);
  if (!scratch.empty()) std::remove(scratch.c_str());
  return code;
}

/// One timed I/O phase of bench-io.
struct IoPhase {
  std::string name;
  uint64_t ops = 0;
  uint64_t bytes = 0;
  double seconds = 0;

  double avg_us() const { return ops > 0 ? seconds * 1e6 / ops : 0; }
  double mb_per_s() const {
    return seconds > 0 ? static_cast<double>(bytes) / 1e6 / seconds : 0;
  }
};

/// fio-style microbenchmark of one storage backend, reporting the two
/// numbers the Section 5 cost model needs: seek time (random scalar
/// latency) and transfer rate (sequential bandwidth).
int BenchIo(const Args& args) {
  const std::string backend = args.Get("backend", "file");
  std::string path = args.Get("path", "");
  const bool own_path = path.empty();
  if (own_path) {
    path = "/tmp/wavectl_bench_io_" + std::to_string(::getpid()) + ".dat";
    std::remove(path.c_str());
  }
  const uint64_t size_bytes =
      static_cast<uint64_t>(args.GetInt("size-mb", 64)) << 20;
  const uint64_t block = static_cast<uint64_t>(args.GetInt("block", 4096));
  const size_t batch = static_cast<size_t>(args.GetInt("batch", 64));
  const uint64_t ops = static_cast<uint64_t>(args.GetInt("ops", 2000));
  if (block == 0 || size_bytes < block || batch == 0 || ops == 0) {
    std::cerr << "bench-io: need size-mb*MiB >= block > 0, batch > 0, "
                 "ops > 0\n";
    return 2;
  }

  BackendConfig config;
  config.path = path;
  config.capacity = size_bytes;
  config.direct_io = args.GetBool("direct");
  config.queue_depth = args.GetInt("queue-depth", 64);
  auto opened = BackendRegistry::Global().Create(backend, config);
  if (!opened.ok()) {
    std::cerr << opened.status() << "\n";
    return 1;
  }
  std::unique_ptr<Device> device = std::move(opened).ValueOrDie();

  const auto timed = [](IoPhase* phase, const std::function<Status()>& body) {
    const auto t0 = std::chrono::steady_clock::now();
    Status status = body();
    phase->seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return status;
  };
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));
  const uint64_t blocks_in_file = size_bytes / block;
  const auto random_offset = [&] { return rng.Uniform(blocks_in_file) * block; };

  std::vector<IoPhase> phases;
  Status status = Status::OK();

  // Sequential write (covers the file, so later reads hit real bytes),
  // then sequential read: the model's transfer rate.
  const uint64_t seq_chunk = std::max<uint64_t>(block, 256 * 1024);
  std::vector<std::byte> chunk(seq_chunk);
  for (size_t i = 0; i < chunk.size(); ++i) {
    chunk[i] = static_cast<std::byte>((i * 131) & 0xFF);
  }
  {
    IoPhase phase{"seq write " + std::to_string(seq_chunk / 1024) + "K"};
    status = timed(&phase, [&] {
      for (uint64_t offset = 0; offset + seq_chunk <= size_bytes;
           offset += seq_chunk) {
        WAVEKIT_RETURN_NOT_OK(device->Write(offset, chunk));
        ++phase.ops;
        phase.bytes += seq_chunk;
      }
      return device->Sync();
    });
    phases.push_back(phase);
  }
  if (status.ok()) {
    IoPhase phase{"seq read " + std::to_string(seq_chunk / 1024) + "K"};
    status = timed(&phase, [&] {
      for (uint64_t offset = 0; offset + seq_chunk <= size_bytes;
           offset += seq_chunk) {
        WAVEKIT_RETURN_NOT_OK(device->Read(offset, chunk));
        ++phase.ops;
        phase.bytes += seq_chunk;
      }
      return Status::OK();
    });
    phases.push_back(phase);
  }

  // Random scalar ops: the model's seek time.
  std::vector<std::byte> buf(block);
  if (status.ok()) {
    IoPhase phase{"rand read " + std::to_string(block) + "B scalar"};
    status = timed(&phase, [&] {
      for (uint64_t i = 0; i < ops; ++i) {
        WAVEKIT_RETURN_NOT_OK(device->Read(random_offset(), buf));
        ++phase.ops;
        phase.bytes += block;
      }
      return Status::OK();
    });
    phases.push_back(phase);
  }
  if (status.ok()) {
    IoPhase phase{"rand write " + std::to_string(block) + "B scalar"};
    status = timed(&phase, [&] {
      for (uint64_t i = 0; i < ops; ++i) {
        WAVEKIT_RETURN_NOT_OK(device->Write(random_offset(), buf));
        ++phase.ops;
        phase.bytes += block;
      }
      return device->Sync();
    });
    phases.push_back(phase);
  }

  // Random batched ops at --batch extents per call: what the maintenance
  // write path (and a ring backend) actually sees.
  const auto random_batch = [&] {
    // Distinct blocks per batch: overlap would force call-order fallback.
    std::vector<uint64_t> picks;
    while (picks.size() < batch) {
      const uint64_t offset = random_offset();
      bool duplicate = false;
      for (uint64_t p : picks) duplicate |= (p == offset);
      if (!duplicate) picks.push_back(offset);
    }
    std::vector<Extent> extents;
    extents.reserve(batch);
    for (uint64_t p : picks) extents.push_back({p, block});
    return extents;
  };
  std::vector<std::byte> batch_buf(batch * block);
  const uint64_t batch_calls = std::max<uint64_t>(1, ops / batch);
  if (status.ok()) {
    IoPhase phase{"rand read batched x" + std::to_string(batch)};
    status = timed(&phase, [&] {
      for (uint64_t i = 0; i < batch_calls; ++i) {
        WAVEKIT_RETURN_NOT_OK(device->ReadBatch(random_batch(), batch_buf));
        phase.ops += batch;
        phase.bytes += batch * block;
      }
      return Status::OK();
    });
    phases.push_back(phase);
  }
  if (status.ok()) {
    IoPhase phase{"rand write batched x" + std::to_string(batch)};
    status = timed(&phase, [&] {
      for (uint64_t i = 0; i < batch_calls; ++i) {
        WAVEKIT_RETURN_NOT_OK(device->WriteBatch(random_batch(), batch_buf));
        phase.ops += batch;
        phase.bytes += batch * block;
      }
      return device->Sync();
    });
    phases.push_back(phase);
  }

  device.reset();
  if (own_path) std::remove(path.c_str());
  if (!status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }

  sim::TablePrinter table({"phase", "ops", "avg latency", "throughput"});
  table.SetTitle("bench-io: backend=" + backend +
                 (config.direct_io ? " (O_DIRECT)" : "") + ", " +
                 std::to_string(size_bytes >> 20) + " MiB at " + path);
  for (const IoPhase& phase : phases) {
    table.AddRow({phase.name, std::to_string(phase.ops),
                  FormatDouble(phase.avg_us(), 1) + " us",
                  FormatDouble(phase.mb_per_s(), 1) + " MB/s"});
  }
  table.Print(std::cout);

  // Map onto the Section 5 cost model (CostModel::seek_seconds,
  // CostModel::transfer_bytes_per_second; Table 12 uses 14 ms and 10 MB/s).
  const IoPhase& seq_read = phases[1];
  const IoPhase& rand_read = phases[2];
  std::cout << "\ncalibrated model parameters for this device:\n"
            << "  seek_seconds              = "
            << FormatDouble(rand_read.avg_us() / 1e6, 6) << "  ("
            << FormatDouble(rand_read.avg_us() / 1000.0, 3) << " ms vs the "
            << "paper's 14 ms)\n"
            << "  transfer_bytes_per_second = "
            << FormatDouble(seq_read.mb_per_s() * 1e6, 0) << "  ("
            << FormatDouble(seq_read.mb_per_s(), 1) << " MB/s vs the paper's "
            << "10 MB/s)\n";
  return 0;
}

// --- waved client subcommands ----------------------------------------------
//
// wavectl is also the operator CLI for a running waved (tools/waved.cc):
//   wavectl probe --port=P --value=w00000001 [--tenant=0] [--lo=..] [--hi=..]
//   wavectl scan --port=P [--tenant=0] [--lo=..] [--hi=..] [--max=20]
//   wavectl advance --port=P [--tenant=0] [--day=N] [--records=200] [--seed=..]
//   wavectl server-stats --port=P [--tenant=0]
//   wavectl server-health --port=P [--tenant=0]

Result<std::unique_ptr<serve::Client>> ConnectToServer(const Args& args) {
  serve::Client::Options options;
  options.host = args.Get("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(args.GetInt("port", 8787));
  options.tenant_id = static_cast<uint16_t>(args.GetInt("tenant", 0));
  return serve::Client::Connect(options);
}

DayRange RangeFromArgs(const Args& args) {
  DayRange range = DayRange::All();
  if (args.GetInt("lo", INT32_MIN) != INT32_MIN) {
    range.lo = args.GetInt("lo", 0);
  }
  if (args.GetInt("hi", INT32_MIN) != INT32_MIN) {
    range.hi = args.GetInt("hi", 0);
  }
  return range;
}

/// Prints a reply's result prefix; returns the exit code (0 for ok/partial).
int ReportResult(const serve::WireResult& result) {
  if (result.code == StatusCode::kOk) return 0;
  std::cerr << StatusCodeToString(result.code)
            << (result.detail.empty() ? "" : ": " + result.detail) << "\n";
  return result.code == StatusCode::kPartialResult ? 0 : 1;
}

int RemoteProbe(const Args& args) {
  const std::string value = args.Get("value", "");
  if (value.empty()) {
    std::cerr << "wavectl probe: --value is required\n";
    return 2;
  }
  auto client = ConnectToServer(args);
  if (!client.ok()) {
    std::cerr << client.status() << "\n";
    return 1;
  }
  auto reply = (*client)->Probe(RangeFromArgs(args), value);
  if (!reply.ok()) {
    std::cerr << reply.status() << "\n";
    return 1;
  }
  const int code = ReportResult(reply->result);
  std::cout << "entries=" << reply->entries.size()
            << " accessed=" << reply->stats.indexes_accessed
            << " skipped=" << reply->stats.indexes_skipped
            << " unhealthy=" << reply->stats.indexes_unhealthy << "\n";
  const int limit = args.GetInt("limit", 10);
  int shown = 0;
  for (const Entry& entry : reply->entries) {
    if (shown++ >= limit) {
      std::cout << "  ... (" << reply->entries.size() - shown + 1
                << " more)\n";
      break;
    }
    std::cout << "  record=" << entry.record_id << " day=" << entry.day
              << " aux=" << entry.aux << "\n";
  }
  return code;
}

int RemoteScan(const Args& args) {
  auto client = ConnectToServer(args);
  if (!client.ok()) {
    std::cerr << client.status() << "\n";
    return 1;
  }
  auto reply = (*client)->Scan(RangeFromArgs(args),
                               static_cast<uint32_t>(args.GetInt("max", 20)));
  if (!reply.ok()) {
    std::cerr << reply.status() << "\n";
    return 1;
  }
  const int code = ReportResult(reply->result);
  std::cout << "entries=" << reply->entries.size()
            << " accessed=" << reply->stats.indexes_accessed << "\n";
  for (const Entry& entry : reply->entries) {
    std::cout << "  record=" << entry.record_id << " day=" << entry.day
              << " aux=" << entry.aux << "\n";
  }
  return code;
}

int RemoteAdvance(const Args& args) {
  auto client = ConnectToServer(args);
  if (!client.ok()) {
    std::cerr << client.status() << "\n";
    return 1;
  }
  // Day defaults to current_day + 1 (what a scheme will accept next).
  Day day = args.GetInt("day", 0);
  if (day == 0) {
    auto stats = (*client)->Stats();
    if (!stats.ok()) {
      std::cerr << stats.status() << "\n";
      return 1;
    }
    day = stats->current_day + 1;
  }
  workload::NetnewsConfig config;
  config.articles_per_day = static_cast<uint64_t>(args.GetInt("records", 200));
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 42)) +
                static_cast<uint64_t>(args.GetInt("tenant", 0)) * 1000003u;
  workload::NetnewsGenerator netnews(config);
  auto reply = (*client)->Advance(netnews.GenerateDay(day));
  if (!reply.ok()) {
    std::cerr << reply.status() << "\n";
    return 1;
  }
  const int code = ReportResult(reply->result);
  std::cout << "advanced to day " << day << " (server current_day="
            << reply->current_day << ")\n";
  return code;
}

int RemoteStats(const Args& args) {
  auto client = ConnectToServer(args);
  if (!client.ok()) {
    std::cerr << client.status() << "\n";
    return 1;
  }
  auto reply = (*client)->Stats();
  if (!reply.ok()) {
    std::cerr << reply.status() << "\n";
    return 1;
  }
  const int code = ReportResult(reply->result);
  sim::TablePrinter table({"metric", "value"});
  table.SetTitle("tenant " + std::to_string(args.GetInt("tenant", 0)));
  table.AddRow({"current_day", std::to_string(reply->current_day)});
  table.AddRow({"degraded", reply->degraded ? "yes" : "no"});
  table.AddRow({"probes", std::to_string(reply->probes)});
  table.AddRow({"scans", std::to_string(reply->scans)});
  table.AddRow({"days_advanced", std::to_string(reply->days_advanced)});
  table.AddRow({"async_advances", std::to_string(reply->async_advances)});
  table.AddRow({"pending_advances", std::to_string(reply->pending_advances)});
  table.AddRow({"degraded_advances", std::to_string(reply->degraded_advances)});
  table.AddRow({"partial_results", std::to_string(reply->partial_results)});
  table.Print(std::cout);
  return code;
}

int RemoteHealth(const Args& args) {
  auto client = ConnectToServer(args);
  if (!client.ok()) {
    std::cerr << client.status() << "\n";
    return 1;
  }
  auto reply = (*client)->Health();
  if (!reply.ok()) {
    std::cerr << reply.status() << "\n";
    return 1;
  }
  if (reply->degraded) {
    std::cout << "DEGRADED"
              << (reply->detail.empty() ? "" : ": " + reply->detail) << "\n";
    return 1;
  }
  std::cout << "ok\n";
  return 0;
}

void PrintUsage(std::ostream& out) {
  out << "usage: wavectl <schemes|run|model|advise|metrics|trace|top|"
         "export-trace|events|serve-metrics|stats|scrub|verify|bench-io|"
         "probe|scan|advance|server-stats|server-health> "
         "[--flag=value ...]\n"
         "see the header of tools/wavectl.cc for the full flag list\n";
}

int Main(int argc, char** argv) {
  // Flags every workload-driven subcommand shares (the synthetic Netnews
  // service behind metrics/trace/top/export-trace/events/serve-metrics).
  const std::vector<std::string> workload = {
      "scheme",       "window",  "indexes", "technique",   "records",
      "probes",       "scans",   "days",    "threads",     "cache-blocks",
      "backend",      "path",    "direct",  "queue-depth", "codec"};
  const auto plus = [&workload](std::initializer_list<const char*> extra) {
    std::vector<std::string> flags = workload;
    flags.insert(flags.end(), extra.begin(), extra.end());
    return flags;
  };

  struct Command {
    std::function<int(const Args&)> handler;
    std::vector<std::string> flags;
  };
  const std::map<std::string, Command> commands = {
      {"schemes", {[](const Args&) { return Schemes(); }, {}}},
      {"run",
       {RunExperiment,
        {"scheme", "window", "indexes", "technique", "workload", "days",
         "records", "probes", "scans", "case", "disks", "per-day", "csv"}}},
      {"model",
       {Model, {"case", "scheme", "indexes", "technique", "window"}}},
      {"advise",
       {Advise,
        {"case", "window", "hard-window", "no-packed-shadow", "no-delete",
         "max-indexes", "max-probe-ms", "top"}}},
      {"metrics", {Metrics, plus({"format"})}},
      {"trace", {Trace, plus({"sample", "ring", "slow-us"})}},
      {"top", {Top, plus({})}},
      {"export-trace",
       {ExportTrace, plus({"sample", "ring", "slow-us", "out"})}},
      {"events", {Events, plus({"ring", "jsonl", "format"})}},
      {"stats", {Stats, plus({"format"})}},
      {"scrub", {Scrub, plus({"corrupt", "heal"})}},
      {"verify", {Verify, plus({"corrupt"})}},
      {"serve-metrics",
       {ServeMetrics, plus({"port", "duration-s", "interval-ms"})}},
      {"bench-io",
       {BenchIo,
        {"backend", "path", "direct", "queue-depth", "size-mb", "block",
         "batch", "ops", "seed"}}},
      {"probe",
       {RemoteProbe,
        {"host", "port", "tenant", "value", "lo", "hi", "limit"}}},
      {"scan", {RemoteScan, {"host", "port", "tenant", "lo", "hi", "max"}}},
      {"advance",
       {RemoteAdvance, {"host", "port", "tenant", "day", "records", "seed"}}},
      {"server-stats", {RemoteStats, {"host", "port", "tenant"}}},
      {"server-health", {RemoteHealth, {"host", "port", "tenant"}}},
  };

  const std::string command = argc > 1 ? argv[1] : "";
  const auto it = commands.find(command);
  if (it == commands.end()) {
    if (!command.empty()) {
      std::cerr << "wavectl: unknown subcommand '" << command << "'\n";
    }
    PrintUsage(std::cerr);
    return 2;
  }
  Args args(argc, argv);
  const std::vector<std::string> unknown = args.Unknown(it->second.flags);
  if (!unknown.empty()) {
    std::cerr << "wavectl " << command << ": unknown argument";
    for (const std::string& arg : unknown) std::cerr << " '" << arg << "'";
    std::cerr << "\n";
    PrintUsage(std::cerr);
    return 2;
  }
  return it->second.handler(args);
}

}  // namespace
}  // namespace wavekit

int main(int argc, char** argv) { return wavekit::Main(argc, argv); }
