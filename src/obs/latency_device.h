// LatencyTrackingDevice: measured (not modeled) per-op device latency.
//
// MeteredDevice charges the paper's seek/transfer cost model; this decorator
// records what the hardware actually did: a wall-clock histogram per
// (operation, phase) — read, write, batched read/write, sync — stacked
// directly under the meter so the phase attribution the meter maintains also
// labels the measured latencies. On the PR 6 real-disk backends (file,
// uring, mmap, O_DIRECT) the histograms are real device service times; the
// drift gauges exported by obs::AttachLatencyDevice compare them against the
// CostModel's predictions — the observed-vs-modeled feed the adaptive
// planner (ROADMAP item 4) fits its parameters from.
//
// Cost: two Clock reads plus one wait-free histogram record per I/O call.
// Thread-safe: histograms are ConcurrentHistogram (relaxed atomics), the
// phase is read from the meter's atomic.

#ifndef WAVEKIT_OBS_LATENCY_DEVICE_H_
#define WAVEKIT_OBS_LATENCY_DEVICE_H_

#include <array>
#include <cstdint>

#include "storage/metered_device.h"
#include "util/clock.h"
#include "util/histogram.h"

namespace wavekit {
namespace obs {

/// \brief The operations tracked, one histogram each per Phase.
enum class OpKind : int {
  kRead = 0,
  kWrite = 1,
  kReadBatch = 2,
  kWriteBatch = 3,
  kSync = 4,
};

inline constexpr int kNumOpKinds = 5;

const char* OpKindName(OpKind op);

/// \brief Device decorator recording wall-clock per-op latency histograms,
/// labeled by the Phase of an associated MeteredDevice.
class LatencyTrackingDevice : public Device {
 public:
  struct Options {
    /// Time source. Defaults to the wall clock; the simulation harness
    /// injects a SimClock (durations collapse to the clamped minimum, but
    /// stay deterministic).
    Clock* clock = nullptr;
  };

  /// Does not take ownership of `inner`, which must outlive this object.
  explicit LatencyTrackingDevice(Device* inner)
      : LatencyTrackingDevice(inner, Options()) {}
  LatencyTrackingDevice(Device* inner, Options options);

  /// The meter whose phase() labels recorded latencies. The meter normally
  /// sits ABOVE this device in the stack, so it is attached after
  /// construction. Unset (nullptr) attributes everything to Phase::kOther.
  void set_phase_source(const MeteredDevice* meter) { meter_ = meter; }

  Status Read(uint64_t offset, std::span<std::byte> out) override;
  Status Write(uint64_t offset, std::span<const std::byte> data) override;
  Status ReadBatch(std::span<const Extent> extents,
                   std::span<std::byte> out) override;
  Status WriteBatch(std::span<const Extent> extents,
                    std::span<const std::byte> data) override;
  Status Sync() override;
  uint64_t capacity() const override { return inner_->capacity(); }

  /// Snapshot of one (op, phase) histogram, in microseconds.
  Histogram histogram(OpKind op, Phase phase) const;

  /// Total observed wall-clock seconds spent in `phase`, summed over all
  /// ops. The measured counterpart of CostModel::Seconds over the meter's
  /// counters for the same phase.
  double observed_seconds(Phase phase) const;

  /// Zeroes every histogram (not linearizable against in-flight I/O).
  void Reset();

 private:
  ConcurrentHistogram& Cell(OpKind op, Phase phase) {
    return cells_[static_cast<size_t>(op) * kNumPhases +
                  static_cast<size_t>(phase)];
  }
  const ConcurrentHistogram& Cell(OpKind op, Phase phase) const {
    return cells_[static_cast<size_t>(op) * kNumPhases +
                  static_cast<size_t>(phase)];
  }

  Phase CurrentPhase() const {
    return meter_ != nullptr ? meter_->phase() : Phase::kOther;
  }

  /// Records `start_us`..now into (op, current phase); returns `status`.
  Status Finish(OpKind op, Phase phase, uint64_t start_us, Status status);

  Device* inner_;
  const MeteredDevice* meter_ = nullptr;
  Clock* clock_;
  std::array<ConcurrentHistogram, kNumOpKinds * kNumPhases> cells_;
};

}  // namespace obs
}  // namespace wavekit

#endif  // WAVEKIT_OBS_LATENCY_DEVICE_H_
