#include "util/fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/crash_point.h"
#include "util/macros.h"

namespace wavekit {
namespace {

std::string ParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status Errno(const std::string& what, const std::string& path) {
  const int err = errno;
  const std::string message =
      what + " '" + path + "': " + std::strerror(err);
  // Disk full / quota exceeded is an operational condition the caller can
  // act on (free space, stop advancing), not a generic I/O fault — surface
  // it as ResourceExhausted so retry policies don't burn attempts on it.
  if (err == ENOSPC || err == EDQUOT) {
    return Status::ResourceExhausted(message);
  }
  return Status::IOError(message);
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no file '" + path + "'");
    return Errno("open", path);
  }
  std::string contents;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Errno("read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    contents.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return contents;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status SyncDirectoryOf(const std::string& path) {
  const std::string dir = ParentDirectory(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open directory", dir);
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved_errno;
    return Errno("fsync directory", dir);
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, std::string_view contents,
                       const char* crash_scope) {
  const std::string temp_path = path + ".tmp";
  const int fd = ::open(temp_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", temp_path);
  size_t done = 0;
  while (done < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + done, contents.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Errno("write", temp_path);
      ::close(fd);
      ::unlink(temp_path.c_str());
      return status;
    }
    done += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status status = Errno("fsync", temp_path);
    ::close(fd);
    ::unlink(temp_path.c_str());
    return status;
  }
  if (::close(fd) != 0) return Errno("close", temp_path);
  if (crash_scope != nullptr) {
    WAVEKIT_RETURN_NOT_OK(
        CrashPoints::Check(std::string(crash_scope) + ".before_rename"));
  }
  if (::rename(temp_path.c_str(), path.c_str()) != 0) {
    return Errno("rename", temp_path);
  }
  if (crash_scope != nullptr) {
    WAVEKIT_RETURN_NOT_OK(
        CrashPoints::Check(std::string(crash_scope) + ".after_rename"));
  }
  return SyncDirectoryOf(path);
}

Status RemoveFileDurable(const std::string& path) {
  if (::unlink(path.c_str()) != 0) {
    if (errno == ENOENT) return Status::OK();
    return Errno("unlink", path);
  }
  return SyncDirectoryOf(path);
}

}  // namespace wavekit
