#include "storage/backend_registry.h"

#include "storage/file_device.h"
#include "storage/mmap_device.h"
#include "storage/uring_device.h"
#include "util/macros.h"

namespace wavekit {

namespace {

Status RequirePath(const BackendConfig& config, std::string_view backend) {
  if (config.path.empty()) {
    return Status::InvalidArgument("backend '" + std::string(backend) +
                                   "' requires BackendConfig::path");
  }
  return Status::OK();
}

void RegisterBuiltins(BackendRegistry* registry) {
  {
    BackendCapabilities caps;  // volatile, byte-granular, no sync needed
    registry
        ->Register("memory", caps,
                   [](const BackendConfig& config)
                       -> Result<std::unique_ptr<Device>> {
                     if (config.direct_io) {
                       return Status::InvalidArgument(
                           "backend 'memory' does not support direct_io");
                     }
                     return std::unique_ptr<Device>(
                         std::make_unique<MemoryDevice>(config.capacity));
                   })
        .Abort("register memory backend");
  }
  {
    BackendCapabilities caps;
    caps.needs_sync = true;
    caps.persistent = true;
    registry
        ->Register("file", caps,
                   [](const BackendConfig& config)
                       -> Result<std::unique_ptr<Device>> {
                     WAVEKIT_RETURN_NOT_OK(RequirePath(config, "file"));
                     FileDevice::OpenOptions options;
                     options.direct_io = config.direct_io;
                     WAVEKIT_ASSIGN_OR_RETURN(
                         std::unique_ptr<FileDevice> device,
                         FileDevice::Open(config.path, config.capacity,
                                          options));
                     return std::unique_ptr<Device>(std::move(device));
                   })
        .Abort("register file backend");
  }
  {
    BackendCapabilities caps;
    caps.supports_batch_async = true;
    caps.needs_sync = true;
    caps.persistent = true;
    registry
        ->Register("uring", caps,
                   [](const BackendConfig& config)
                       -> Result<std::unique_ptr<Device>> {
                     WAVEKIT_RETURN_NOT_OK(RequirePath(config, "uring"));
                     UringDevice::Options options;
                     options.direct_io = config.direct_io;
                     if (config.queue_depth <= 0) {
                       return Status::InvalidArgument(
                           "backend 'uring' needs queue_depth > 0");
                     }
                     options.queue_depth =
                         static_cast<unsigned>(config.queue_depth);
                     WAVEKIT_ASSIGN_OR_RETURN(
                         std::unique_ptr<UringDevice> device,
                         UringDevice::Open(config.path, config.capacity,
                                           options));
                     return std::unique_ptr<Device>(std::move(device));
                   })
        .Abort("register uring backend");
  }
  {
    BackendCapabilities caps;
    caps.needs_sync = true;
    caps.persistent = true;
    registry
        ->Register("mmap", caps,
                   [](const BackendConfig& config)
                       -> Result<std::unique_ptr<Device>> {
                     WAVEKIT_RETURN_NOT_OK(RequirePath(config, "mmap"));
                     if (config.direct_io) {
                       return Status::InvalidArgument(
                           "backend 'mmap' does not support direct_io "
                           "(the page cache IS the device)");
                     }
                     WAVEKIT_ASSIGN_OR_RETURN(
                         std::unique_ptr<MmapDevice> device,
                         MmapDevice::Open(config.path, config.capacity));
                     return std::unique_ptr<Device>(std::move(device));
                   })
        .Abort("register mmap backend");
  }
}

}  // namespace

BackendRegistry& BackendRegistry::Global() {
  static BackendRegistry* registry = [] {
    auto* r = new BackendRegistry();
    RegisterBuiltins(r);
    return r;
  }();
  return *registry;
}

Status BackendRegistry::Register(std::string name,
                                 BackendCapabilities capabilities,
                                 Factory factory) {
  if (name.empty()) {
    return Status::InvalidArgument("backend name must be non-empty");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("backend factory must be callable");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = backends_.emplace(
      std::move(name), Entry{capabilities, std::move(factory)});
  if (!inserted) {
    return Status::AlreadyExists("backend '" + it->first +
                                 "' is already registered");
  }
  return Status::OK();
}

Result<std::unique_ptr<Device>> BackendRegistry::Create(
    std::string_view name, const BackendConfig& config) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = backends_.find(name);
    if (it == backends_.end()) {
      return Status::NotFound("unknown storage backend '" + std::string(name) +
                              "' (registered: " + [this] {
                                std::string names;
                                for (const auto& [n, entry] : backends_) {
                                  if (!names.empty()) names += ", ";
                                  names += n;
                                }
                                return names;
                              }() + ")");
    }
    factory = it->second.factory;
  }
  return factory(config);
}

Result<BackendCapabilities> BackendRegistry::GetCapabilities(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = backends_.find(name);
  if (it == backends_.end()) {
    return Status::NotFound("unknown storage backend '" + std::string(name) +
                            "'");
  }
  return it->second.capabilities;
}

Result<BackendCapabilities> BackendRegistry::EffectiveCapabilities(
    std::string_view name, const BackendConfig& config) const {
  WAVEKIT_ASSIGN_OR_RETURN(BackendCapabilities caps, GetCapabilities(name));
  if (config.direct_io && caps.alignment < kDirectIoAlignment) {
    caps.alignment = kDirectIoAlignment;
  }
  return caps;
}

bool BackendRegistry::Contains(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return backends_.find(name) != backends_.end();
}

std::vector<std::string> BackendRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(backends_.size());
  for (const auto& [name, entry] : backends_) names.push_back(name);
  return names;
}

}  // namespace wavekit
