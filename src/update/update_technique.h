// Update techniques (paper Section 2.1): how a batch of adds/deletes is
// applied to a constituent index.
//
//  - In-place:       mutate the live index directly (needs concurrency
//                    control in a real deployment; result not packed).
//  - Simple shadow:  copy the index, mutate the copy in place, swap. Queries
//                    keep using the old version meanwhile; result not packed.
//  - Packed shadow:  build a temporary index of the inserts, then scan-copy
//                    the old index dropping expired entries and leaving exact
//                    room for the inserts; swap. Result is packed.

#ifndef WAVEKIT_UPDATE_UPDATE_TECHNIQUE_H_
#define WAVEKIT_UPDATE_UPDATE_TECHNIQUE_H_

#include <memory>
#include <span>

#include "index/constituent_index.h"
#include "index/record.h"
#include "util/day.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace wavekit {

enum class UpdateTechniqueKind {
  kInPlace,
  kSimpleShadow,
  kPackedShadow,
};

const char* UpdateTechniqueKindName(UpdateTechniqueKind kind);

/// \brief Strategy applying batched day adds/deletes to a constituent index.
///
/// Shadow techniques replace `*index` with a fresh index; the old one is
/// released (and its space reclaimed) when the last reference drops, which
/// lets in-flight queries finish against the old version.
class Updater {
 public:
  virtual ~Updater() = default;

  virtual UpdateTechniqueKind kind() const = 0;

  /// Applies one combined update: insert all records of `adds` and delete all
  /// entries whose day is in `deletes`. Either side may be empty.
  virtual Status Apply(std::shared_ptr<ConstituentIndex>* index,
                       std::span<const DayBatch* const> adds,
                       const TimeSet& deletes) = 0;

  /// AddToIndex (Section 2.2) via this technique.
  Status AddDays(std::shared_ptr<ConstituentIndex>* index,
                 std::span<const DayBatch* const> adds) {
    return Apply(index, adds, TimeSet{});
  }

  /// DeleteFromIndex (Section 2.2) via this technique.
  Status DeleteDays(std::shared_ptr<ConstituentIndex>* index,
                    const TimeSet& deletes) {
    return Apply(index, {}, deletes);
  }

  /// Parallelism the shadow stages (temporary build, CP clone, scan-copy
  /// flush) may use. Set by the owning Scheme from its maintenance pool; the
  /// default context keeps the exact serial code paths (cost-model runs).
  void set_parallel(const ParallelContext& parallel) { parallel_ = parallel; }
  const ParallelContext& parallel() const { return parallel_; }

 protected:
  ParallelContext parallel_;
};

/// Factory for the given technique.
std::unique_ptr<Updater> MakeUpdater(UpdateTechniqueKind kind);

}  // namespace wavekit

#endif  // WAVEKIT_UPDATE_UPDATE_TECHNIQUE_H_
