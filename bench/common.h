// Shared helpers for the paper-reproduction experiment binaries.
//
// Every bench prints (1) what the paper's table/figure reports, (2) the
// numbers this reproduction produces — from the analytic model (paper
// parameters priced over the real schemes' operation logs) and, where
// applicable, the device-level simulation — and (3) a SHAPE CHECK section
// asserting the qualitative findings the paper draws from that experiment.

#ifndef WAVEKIT_BENCH_COMMON_H_
#define WAVEKIT_BENCH_COMMON_H_

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "model/maintenance_model.h"
#include "model/params.h"
#include "model/query_model.h"
#include "model/space_model.h"
#include "model/total_work.h"
#include "obs/metrics.h"
#include "sim/driver.h"
#include "sim/table_printer.h"
#include "storage/backend_registry.h"
#include "util/format.h"
#include "wave/scheme.h"
#include "wave/wave_service.h"

namespace wavekit {
namespace bench {

inline const std::vector<SchemeKind>& PaperSchemes() {
  static const std::vector<SchemeKind> kSchemes = {
      SchemeKind::kDel,          SchemeKind::kReindex,
      SchemeKind::kReindexPlus,  SchemeKind::kReindexPlusPlus,
      SchemeKind::kWata,         SchemeKind::kRata,
  };
  return kSchemes;
}

inline bool SchemeValid(SchemeKind kind, int num_indexes) {
  if ((kind == SchemeKind::kWata || kind == SchemeKind::kRata) &&
      num_indexes < 2) {
    return false;
  }
  return true;
}

/// Prints a banner naming the experiment and the paper's claim.
inline void Banner(const std::string& title, const std::string& paper_claim) {
  std::cout << "=================================================================\n"
            << title << "\n"
            << "-----------------------------------------------------------------\n"
            << "Paper: " << paper_claim << "\n"
            << "=================================================================\n";
}

/// Tracks shape-check outcomes and prints a summary; returns an exit code.
class ShapeChecks {
 public:
  void Check(bool ok, const std::string& description) {
    results_.emplace_back(ok, description);
  }

  int Finish() const {
    int failures = 0;
    std::cout << "\nSHAPE CHECKS (paper findings reproduced?)\n";
    for (const auto& [ok, description] : results_) {
      std::cout << "  [" << (ok ? "OK" : "MISMATCH") << "] " << description
                << "\n";
      if (!ok) ++failures;
    }
    std::cout << (failures == 0 ? "All shape checks passed.\n"
                                : "Some shape checks FAILED.\n");
    return failures == 0 ? 0 : 1;
  }

 private:
  std::vector<std::pair<bool, std::string>> results_;
};

/// Storage-backend selection shared by the bench binaries: any experiment
/// accepting `--backend <name>` (plus optional `--path`, `--direct`,
/// `--queue-depth`) can run its workload on a real device instead of the
/// modeled MemoryDevice. Aborts on an unknown backend name, listing what the
/// registry actually has.
struct BackendChoice {
  std::string backend = "memory";
  std::string path;
  bool direct_io = false;
  int queue_depth = 64;
};

inline BackendChoice ParseBackendFlags(int argc, char** argv) {
  BackendChoice choice;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--backend" && i + 1 < argc) {
      choice.backend = argv[++i];
    } else if (arg == "--path" && i + 1 < argc) {
      choice.path = argv[++i];
    } else if (arg == "--direct") {
      choice.direct_io = true;
    } else if (arg == "--queue-depth" && i + 1 < argc) {
      choice.queue_depth = std::atoi(argv[++i]);
    }
  }
  if (!BackendRegistry::Global().Contains(choice.backend)) {
    std::string names;
    for (const std::string& name : BackendRegistry::Global().Names()) {
      names += (names.empty() ? "" : ", ") + name;
    }
    Status::InvalidArgument("unknown --backend '" + choice.backend +
                            "' (registered: " + names + ")")
        .Abort("ParseBackendFlags");
  }
  return choice;
}

inline void ApplyBackend(const BackendChoice& choice,
                         WaveService::Options* options) {
  options->storage_backend = choice.backend;
  options->storage_path = choice.path;
  options->direct_io = choice.direct_io;
  options->io_queue_depth = choice.queue_depth;
}

/// Total-work (model) for one configuration; aborts on config errors since
/// bench inputs are static.
inline model::TotalWork TotalWorkOrDie(SchemeKind scheme,
                                       UpdateTechniqueKind technique,
                                       const model::CaseParams& params,
                                       int window, int num_indexes) {
  auto work =
      model::EstimateTotalWork(scheme, technique, params, window, num_indexes);
  if (!work.ok()) work.status().Abort("EstimateTotalWork");
  return std::move(work).ValueOrDie();
}

inline std::string Fmt(double v, int precision = 1) {
  return FormatDouble(v, precision);
}

/// Writes `registry` as a standalone JSON file next to the bench's main
/// BENCH_*.json, so a run leaves the full metric state (device phase
/// counters, cache shard stats, ...) behind for offline analysis.
inline void WriteMetricsJson(const obs::MetricsRegistry& registry,
                             const std::string& path) {
  std::ofstream out(path);
  out << registry.RenderJson();
  std::printf("Wrote %s\n", path.c_str());
}

}  // namespace bench
}  // namespace wavekit

#endif  // WAVEKIT_BENCH_COMMON_H_
