file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_tpcd_work_packed.dir/bench_fig7_tpcd_work_packed.cc.o"
  "CMakeFiles/bench_fig7_tpcd_work_packed.dir/bench_fig7_tpcd_work_packed.cc.o.d"
  "bench_fig7_tpcd_work_packed"
  "bench_fig7_tpcd_work_packed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_tpcd_work_packed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
