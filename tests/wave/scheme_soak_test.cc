// Soak tests: long runs with randomly varying daily volumes (the extended
// paper's non-uniform data-size regime), random query spot checks against a
// brute-force reference, and the B+Tree directory under every scheme.

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/test_env.h"
#include "util/random.h"
#include "wave/scheme_factory.h"

namespace wavekit {
namespace {

using testing::ReferenceIndex;

// A batch whose size and value mix vary with the day (driven by `rng`).
DayBatch VaryingBatch(Day day, Rng& rng) {
  DayBatch batch;
  batch.day = day;
  const uint64_t records = rng.Uniform(18);  // 0..17 — includes EMPTY days
  uint64_t rid = static_cast<uint64_t>(day) * 1000000;
  for (uint64_t r = 0; r < records; ++r) {
    Record record;
    record.record_id = rid++;
    record.day = day;
    const int values = 1 + static_cast<int>(rng.Uniform(3));
    for (int v = 0; v < values; ++v) {
      record.values.push_back("k" + std::to_string(rng.Uniform(25)));
    }
    batch.records.push_back(std::move(record));
  }
  return batch;
}

using SoakParam = std::tuple<SchemeKind, UpdateTechniqueKind, DirectoryKind>;

class SchemeSoakTest : public ::testing::TestWithParam<SoakParam> {};

TEST_P(SchemeSoakTest, LongRunWithVaryingVolumes) {
  const auto [kind, technique, directory] = GetParam();
  const int window = 9;
  const int n = 3;
  Store store(uint64_t{1} << 26);
  DayStore day_store;
  SchemeConfig config;
  config.window = window;
  config.num_indexes = n;
  config.technique = technique;
  config.directory = directory;
  if (kind == SchemeKind::kKnownBoundWata) {
    config.size_bound_entries = 18 * 3 * window;  // generous true bound
  }
  auto made = MakeScheme(kind, SchemeEnv{store.device(), store.allocator(),
                                         &day_store},
                         config);
  ASSERT_TRUE(made.ok()) << made.status();
  std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();

  Rng rng(0xD00D ^ static_cast<uint64_t>(kind));
  std::map<Day, DayBatch> history;
  std::vector<DayBatch> first;
  for (Day d = 1; d <= window; ++d) {
    DayBatch batch = VaryingBatch(d, rng);
    history[d] = batch;
    first.push_back(std::move(batch));
  }
  ASSERT_OK(scheme->Start(std::move(first)));

  Rng query_rng(77);
  for (Day d = window + 1; d <= window + 120; ++d) {
    DayBatch batch = VaryingBatch(d, rng);
    history[d] = batch;
    ASSERT_OK(scheme->Transition(std::move(batch))) << "day " << d;

    if (d % 7 != 0) continue;  // spot-check weekly
    ReferenceIndex reference;
    for (const auto& [day, b] : history) {
      if (day > d - window && day <= d) reference.Add(b);
    }
    const DayRange range = DayRange::Window(d, window);
    for (int probe = 0; probe < 4; ++probe) {
      const Value value = "k" + std::to_string(query_rng.Uniform(25));
      std::vector<Entry> got;
      ASSERT_OK(scheme->wave().TimedIndexProbe(range, value, &got));
      ReferenceIndex::Sort(&got);
      ASSERT_EQ(got, reference.Probe(value, d - window + 1, d))
          << "value '" << value << "' at day " << d;
    }
    std::vector<Entry> scanned;
    ASSERT_OK(scheme->wave().TimedSegmentScan(
        range, [&](const Value&, const Entry& e) { scanned.push_back(e); }));
    ReferenceIndex::Sort(&scanned);
    ASSERT_EQ(scanned, reference.ScanAll(d - window + 1, d)) << "day " << d;
    for (const auto& c : scheme->wave().constituents()) {
      ASSERT_OK(c->CheckConsistency());
    }
    if (scheme->hard_window()) {
      ASSERT_EQ(scheme->WaveLength(), window);
    }
  }
}

TEST(FragmentationSoakTest, AllocatorFragmentationStaysBounded) {
  // 300 days of DEL with in-place updates is the worst fragmentation driver:
  // buckets grow, shrink and relocate daily in the same address space. The
  // free list must not degenerate (fragments bounded, big allocations keep
  // succeeding).
  Store store(uint64_t{1} << 26);
  DayStore day_store;
  SchemeConfig config;
  config.window = 9;
  config.num_indexes = 3;
  config.technique = UpdateTechniqueKind::kInPlace;
  auto made = MakeScheme(SchemeKind::kDel,
                         SchemeEnv{store.device(), store.allocator(),
                                   &day_store},
                         config);
  ASSERT_TRUE(made.ok()) << made.status();
  std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();
  Rng rng(0xFACE);
  std::vector<DayBatch> first;
  for (Day d = 1; d <= 9; ++d) first.push_back(VaryingBatch(d, rng));
  ASSERT_OK(scheme->Start(std::move(first)));
  size_t max_fragments = 0;
  for (Day d = 10; d <= 309; ++d) {
    ASSERT_OK(scheme->Transition(VaryingBatch(d, rng)));
    max_fragments = std::max(max_fragments,
                             store.allocator()->fragment_count());
    ASSERT_OK(store.allocator()->CheckConsistency());
  }
  // Fragments stay within a small multiple of the live bucket count, not
  // growing with the number of days processed.
  EXPECT_LT(max_fragments, 400u);
  // A large contiguous allocation still succeeds after 300 days of churn.
  auto big = store.allocator()->Allocate(uint64_t{1} << 22);
  ASSERT_TRUE(big.ok()) << big.status();
  ASSERT_OK(store.allocator()->Free(big.ValueOrDie()));
}

std::string SoakName(const ::testing::TestParamInfo<SoakParam>& info) {
  std::string name = SchemeKindName(std::get<0>(info.param));
  name += "_";
  name += UpdateTechniqueKindName(std::get<1>(info.param));
  name += "_";
  name += DirectoryKindName(std::get<2>(info.param));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

// Hash directory: every scheme under both shadow techniques.
INSTANTIATE_TEST_SUITE_P(
    HashDirectory, SchemeSoakTest,
    ::testing::Combine(
        ::testing::Values(SchemeKind::kDel, SchemeKind::kReindex,
                          SchemeKind::kReindexPlus,
                          SchemeKind::kReindexPlusPlus, SchemeKind::kWata,
                          SchemeKind::kRata, SchemeKind::kKnownBoundWata),
        ::testing::Values(UpdateTechniqueKind::kSimpleShadow,
                          UpdateTechniqueKind::kPackedShadow),
        ::testing::Values(DirectoryKind::kHash)),
    SoakName);

// B+Tree directory: every scheme (the ordered directory must be a drop-in).
INSTANTIATE_TEST_SUITE_P(
    BTreeDirectory, SchemeSoakTest,
    ::testing::Combine(
        ::testing::Values(SchemeKind::kDel, SchemeKind::kReindex,
                          SchemeKind::kReindexPlus,
                          SchemeKind::kReindexPlusPlus, SchemeKind::kWata,
                          SchemeKind::kRata, SchemeKind::kKnownBoundWata),
        ::testing::Values(UpdateTechniqueKind::kSimpleShadow),
        ::testing::Values(DirectoryKind::kBTree)),
    SoakName);

}  // namespace
}  // namespace wavekit
