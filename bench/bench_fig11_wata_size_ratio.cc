// Figure 11: WATA*'s index-size ratio — the maximum storage the lazy WATA*
// scheme ever needs divided by the maximum an eager (REINDEX-style) scheme
// needs — over 200 days of Usenet-shaped volumes, W = 7, as n varies.
//
// This runs the REAL WATA* scheme over real (scaled) indexes built from the
// volume trace; the ratio is scale-invariant.

#include "bench/common.h"

#include "storage/store.h"
#include "wave/scheme_factory.h"
#include "workload/usenet_trace.h"

namespace wavekit {
namespace bench {
namespace {

DayBatch SizedBatch(Day day, uint64_t entries) {
  DayBatch batch;
  batch.day = day;
  uint64_t rid = static_cast<uint64_t>(day) * 1000000;
  for (uint64_t i = 0; i < entries; ++i) {
    Record record;
    record.record_id = rid++;
    record.day = day;
    record.values = {"v" + std::to_string(i % 13)};
    batch.records.push_back(std::move(record));
  }
  return batch;
}

// Max entries of any W consecutive days: what an eager scheme must hold.
uint64_t EagerMax(const std::vector<uint64_t>& volumes, int window) {
  uint64_t best = 0;
  for (size_t s = 0; s + static_cast<size_t>(window) <= volumes.size(); ++s) {
    uint64_t sum = 0;
    for (int k = 0; k < window; ++k) sum += volumes[s + static_cast<size_t>(k)];
    best = std::max(best, sum);
  }
  return best;
}

double WataSizeRatio(const std::vector<uint64_t>& volumes, int window, int n) {
  Store store;
  DayStore day_store;
  SchemeEnv env{store.device(), store.allocator(), &day_store};
  SchemeConfig config;
  config.window = window;
  config.num_indexes = n;
  config.technique = UpdateTechniqueKind::kInPlace;
  auto made = MakeScheme(SchemeKind::kWata, env, config);
  if (!made.ok()) made.status().Abort("MakeScheme");
  std::unique_ptr<Scheme> scheme = std::move(made).ValueOrDie();

  std::vector<DayBatch> first;
  for (Day d = 1; d <= window; ++d) {
    first.push_back(SizedBatch(d, volumes[static_cast<size_t>(d - 1)]));
  }
  scheme->Start(std::move(first)).Abort("Start");
  uint64_t max_entries = scheme->wave().EntryCount();
  for (size_t i = static_cast<size_t>(window); i < volumes.size(); ++i) {
    scheme->Transition(SizedBatch(static_cast<Day>(i + 1), volumes[i]))
        .Abort("Transition");
    max_entries = std::max(max_entries, scheme->wave().EntryCount());
  }
  return static_cast<double>(max_entries) /
         static_cast<double>(EagerMax(volumes, window));
}

int Run() {
  Banner("Figure 11: WATA* index-size ratio over 200 days of Usenet volumes "
         "(W=7)",
         "The lazy-deletion space overhead is tolerable (<= 1.6) and "
         "decreases as n increases; the paper reports 1.24 at n = 4.");

  workload::UsenetTraceConfig trace_config;
  trace_config.scale = 0.002;  // ~60..220 entries/day; ratios are invariant
  workload::UsenetVolumeTrace trace(trace_config);
  const int days = 200;
  const int window = 7;
  const std::vector<uint64_t> volumes = trace.Series(days);

  sim::TablePrinter table({"n", "index size ratio", "profile"});
  std::map<int, double> ratios;
  for (int n = 2; n <= window; ++n) {
    ratios[n] = WataSizeRatio(volumes, window, n);
    const int bar = static_cast<int>((ratios[n] - 1.0) * 100);
    table.AddRow({std::to_string(n), Fmt(ratios[n], 3),
                  std::string(static_cast<size_t>(std::max(bar, 0)), '#')});
  }
  table.Print(std::cout);

  ShapeChecks checks;
  bool all_bounded = true;
  for (const auto& [n, ratio] : ratios) all_bounded &= ratio <= 2.0;
  checks.Check(all_bounded, "Theorem 3's 2-competitive bound holds at every n");
  checks.Check(ratios[4] >= 1.05 && ratios[4] <= 1.45,
               "ratio at n = 4 near the paper's 1.24 (observed " +
                   Fmt(ratios[4], 2) + ")");
  bool tolerable_from_4 = true;
  for (int n = 4; n <= window; ++n) tolerable_from_4 &= ratios[n] <= 1.6;
  checks.Check(tolerable_from_4,
               "overhead tolerable (<= 1.6) once n >= 4");
  bool decreasing = true;
  for (int n = 3; n <= window; ++n) {
    decreasing &= ratios[n] <= ratios[n - 1] + 0.05;
  }
  checks.Check(decreasing, "overhead decreases as n increases — the paper's "
                           "case for WATA*-based indexing");
  return checks.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace wavekit

int main() { return wavekit::bench::Run(); }
