# Empty dependencies file for bench_table9_query.
# This may be replaced when dependencies are built.
