// Background scrubber: proactive checksum verification of live extents.
//
// The read path only verifies buckets that queries actually touch; cold data
// can rot silently for the whole window. ScrubWave walks every live bucket
// of every healthy constituent in layout order, re-reads the live prefix in
// bounded batches, and compares CRC-32C against the directory's sidecar
// checksum — the same verification the read path performs, but exhaustive
// and paced. A mismatch quarantines the constituent (queries keep answering
// from the healthy remainder, reporting a partial result) and journals
// corruption_detected / quarantine events; the serving layer then heals it
// online (Scheme::HealUnhealthy).
//
// Pacing: at most `io_batch_bytes` are read per device batch, with an
// optional injected-clock sleep between batches, so a scrub pass bounds its
// interference with foreground traffic. Under the simulation harness the
// clock is virtual and the pass is a deterministic function of the wave's
// contents.

#ifndef WAVEKIT_WAVE_SCRUBBER_H_
#define WAVEKIT_WAVE_SCRUBBER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/constituent_index.h"
#include "obs/event_journal.h"
#include "util/clock.h"
#include "util/day.h"
#include "util/result.h"
#include "wave/wave_index.h"

namespace wavekit {

/// \brief Knobs for one scrub pass.
struct ScrubOptions {
  /// Max bytes read from the device per batch (one ReadBatch call). The
  /// scrubber never holds more than this in memory.
  uint64_t io_batch_bytes = uint64_t{1} << 20;  // 1 MiB
  /// Sleep between batches (I/O rate bound: io_batch_bytes per pause).
  /// 0 = no pacing.
  uint64_t pause_us_per_batch = 0;
  /// Time source for pacing; wall clock when null.
  Clock* clock = nullptr;
  /// Read through this device instead of the constituent's own. Set it to a
  /// layer BENEATH any block cache: a scrub that reads cached copies
  /// verifies the cache, not the medium, and rot under a warm cache stays
  /// invisible until eviction. Null = the constituent's device.
  Device* device = nullptr;
  /// Optional: scrub_start/scrub_complete and corruption events land here.
  obs::EventJournal* events = nullptr;
  /// Optional: verified/corruption counters (typically the same instance the
  /// constituents themselves are wired to).
  IntegrityStats* integrity = nullptr;
  /// Day label for journal events (the serving layer passes its current day).
  Day day = 0;
};

/// \brief What one scrub pass found.
struct ScrubReport {
  uint64_t constituents_scrubbed = 0;
  /// Constituents skipped because they were already unhealthy (a quarantined
  /// constituent is awaiting heal; re-reading it proves nothing new).
  uint64_t constituents_skipped = 0;
  uint64_t buckets_verified = 0;
  uint64_t bytes_read = 0;
  /// Buckets whose live prefix failed checksum verification.
  uint64_t mismatches = 0;
  /// Transient read failures (IOError, not corruption): those buckets were
  /// not verified this pass; the next pass retries them.
  uint64_t read_errors = 0;
  /// Names of constituents quarantined by this pass.
  std::vector<std::string> quarantined;
};

/// Scrubs one constituent: verifies every live bucket's checksum in bounded
/// batches. On the first mismatch the constituent is quarantined and the
/// rest of its buckets are skipped (it is already condemned; the heal path
/// rebuilds all of it). Accumulates into `*report`.
Status ScrubConstituent(const ConstituentIndex& index,
                        const ScrubOptions& options, ScrubReport* report);

/// Scrubs every healthy constituent of `wave`. Journals scrub_start /
/// scrub_complete around the pass. Corruption is reported via the report
/// (and events), not as an error status; only infrastructure failures (e.g.
/// a null-wave misuse) fail the call.
Result<ScrubReport> ScrubWave(const WaveIndex& wave,
                              const ScrubOptions& options);

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_SCRUBBER_H_
