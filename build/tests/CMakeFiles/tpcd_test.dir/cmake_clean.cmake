file(REMOVE_RECURSE
  "CMakeFiles/tpcd_test.dir/workload/tpcd_test.cc.o"
  "CMakeFiles/tpcd_test.dir/workload/tpcd_test.cc.o.d"
  "tpcd_test"
  "tpcd_test.pdb"
  "tpcd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
