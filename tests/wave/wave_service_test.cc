// WaveService: snapshot semantics and real concurrency — readers hammer the
// service while the writer advances days; every answer must come from a
// consistent snapshot.

#include "wave/wave_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <tuple>

#include "testing/test_env.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;

WaveService::Options ServiceOptions(SchemeKind kind, int window, int n) {
  WaveService::Options options;
  options.scheme = kind;
  options.config.window = window;
  options.config.num_indexes = n;
  options.config.technique = UpdateTechniqueKind::kSimpleShadow;
  options.device_capacity = uint64_t{1} << 26;
  return options;
}

TEST(WaveServiceTest, RejectsInPlaceUpdating) {
  WaveService::Options options = ServiceOptions(SchemeKind::kDel, 4, 2);
  options.config.technique = UpdateTechniqueKind::kInPlace;
  auto service = WaveService::Create(options);
  EXPECT_FALSE(service.ok());
  EXPECT_TRUE(service.status().IsInvalidArgument());
}

TEST(WaveServiceTest, QueriesBeforeStartFail) {
  ASSERT_OK_AND_ASSIGN(auto service,
                       WaveService::Create(ServiceOptions(SchemeKind::kWata,
                                                          5, 2)));
  std::vector<Entry> out;
  EXPECT_TRUE(service->IndexProbe("x", &out).IsFailedPrecondition());
}

TEST(WaveServiceTest, BasicServeAndAdvance) {
  ASSERT_OK_AND_ASSIGN(auto service,
                       WaveService::Create(ServiceOptions(SchemeKind::kDel,
                                                          5, 2)));
  std::vector<DayBatch> first;
  for (Day d = 1; d <= 5; ++d) first.push_back(MakeMixedBatch(d));
  ASSERT_OK(service->Start(std::move(first)));
  EXPECT_EQ(service->current_day(), 5);

  std::vector<Entry> out;
  ASSERT_OK(service->IndexProbe("alpha", &out));
  EXPECT_FALSE(out.empty());

  ASSERT_OK(service->AdvanceDay(MakeMixedBatch(6)));
  EXPECT_EQ(service->current_day(), 6);
  out.clear();
  ASSERT_OK(service->TimedIndexProbe(DayRange{6, 6},
                                     "day6", &out));
  EXPECT_FALSE(out.empty());

  uint64_t visited = 0;
  ASSERT_OK(service->TimedSegmentScan(
      DayRange::All(), [&visited](const Value&, const Entry&) { ++visited; }));
  EXPECT_GT(visited, 0u);

  // Operational metrics tracked the traffic.
  const ServiceMetrics metrics = service->Metrics();
  EXPECT_EQ(metrics.probes, 2u);
  EXPECT_EQ(metrics.scans, 1u);
  EXPECT_EQ(metrics.days_advanced, 1u);
  EXPECT_EQ(metrics.probe_latency_us.count(), 2u);
  EXPECT_GE(metrics.probe_latency_us.Percentile(0.5), 1u);
  service->ResetMetrics();
  EXPECT_EQ(service->Metrics().probes, 0u);
}

TEST(WaveServiceTest, OldSnapshotRemainsServableAfterAdvance) {
  ASSERT_OK_AND_ASSIGN(auto service,
                       WaveService::Create(ServiceOptions(SchemeKind::kReindex,
                                                          4, 2)));
  std::vector<DayBatch> first;
  for (Day d = 1; d <= 4; ++d) first.push_back(MakeMixedBatch(d));
  ASSERT_OK(service->Start(std::move(first)));

  std::shared_ptr<const WaveIndex> old_snapshot = service->Snapshot();
  for (Day d = 5; d <= 12; ++d) {
    ASSERT_OK(service->AdvanceDay(MakeMixedBatch(d)));
  }
  // The old snapshot still answers with the OLD window even though all its
  // constituents have since been retired and replaced.
  std::vector<Entry> out;
  ASSERT_OK(old_snapshot->TimedIndexProbe(DayRange{1, 1}, "day1", &out));
  EXPECT_FALSE(out.empty());
  // The fresh snapshot no longer has day 1.
  out.clear();
  ASSERT_OK(service->TimedIndexProbe(DayRange{1, 1}, "day1", &out));
  EXPECT_TRUE(out.empty());
}

TEST(WaveServiceTest, SpaceIsReclaimedOnceSnapshotsRelease) {
  ASSERT_OK_AND_ASSIGN(auto service,
                       WaveService::Create(ServiceOptions(SchemeKind::kWata,
                                                          6, 3)));
  std::vector<DayBatch> first;
  for (Day d = 1; d <= 6; ++d) first.push_back(MakeMixedBatch(d));
  ASSERT_OK(service->Start(std::move(first)));
  auto held = service->Snapshot();
  for (Day d = 7; d <= 20; ++d) ASSERT_OK(service->AdvanceDay(MakeMixedBatch(d)));
  const uint64_t with_held = held->AllocatedBytes();
  EXPECT_GT(with_held, 0u);
  held.reset();  // last reference to the retired constituents
  // The service's live footprint is bounded: retired constituents are gone.
  ASSERT_OK(service->AdvanceDay(MakeMixedBatch(21)));
  EXPECT_LT(service->Snapshot()->AllocatedBytes(), 3 * with_held);
}

TEST(WaveServiceTest, ParallelProbeWithCacheMatchesSerial) {
  // Same traffic through a plain serial service and one with the query pool
  // and sharded block cache enabled: answers must be identical, and the cache
  // must actually absorb repeat reads.
  WaveService::Options serial = ServiceOptions(SchemeKind::kWata, 6, 3);
  WaveService::Options parallel = serial;
  parallel.num_query_threads = 4;
  parallel.cache_blocks = 256;
  parallel.cache_block_size = 4096;
  parallel.cache_shards = 8;
  ASSERT_OK_AND_ASSIGN(auto a, WaveService::Create(serial));
  ASSERT_OK_AND_ASSIGN(auto b, WaveService::Create(parallel));
  ASSERT_NE(b->cache(), nullptr);
  ASSERT_NE(b->query_pool(), nullptr);

  std::vector<DayBatch> first_a, first_b;
  for (Day d = 1; d <= 6; ++d) {
    first_a.push_back(MakeMixedBatch(d, /*num_records=*/20));
    first_b.push_back(MakeMixedBatch(d, /*num_records=*/20));
  }
  ASSERT_OK(a->Start(std::move(first_a)));
  ASSERT_OK(b->Start(std::move(first_b)));
  for (Day d = 7; d <= 18; ++d) {
    ASSERT_OK(a->AdvanceDay(MakeMixedBatch(d, 20)));
    ASSERT_OK(b->AdvanceDay(MakeMixedBatch(d, 20)));
  }

  auto sorted = [](std::vector<Entry> entries) {
    std::sort(entries.begin(), entries.end(),
              [](const Entry& x, const Entry& y) {
                return std::tie(x.day, x.record_id, x.aux) <
                       std::tie(y.day, y.record_id, y.aux);
              });
    return entries;
  };
  const std::vector<Value> values = {"alpha", "beta", "day7", "day15", "zzz"};
  for (int round = 0; round < 3; ++round) {
    for (const Value& value : values) {
      std::vector<Entry> got_a, got_b;
      ASSERT_OK(a->IndexProbe(value, &got_a));
      ASSERT_OK(b->IndexProbe(value, &got_b));
      EXPECT_EQ(sorted(got_a), sorted(got_b)) << "value=" << value;
    }
  }
  uint64_t visited_a = 0, visited_b = 0;
  ASSERT_OK(a->TimedSegmentScan(
      DayRange::All(), [&visited_a](const Value&, const Entry&) { ++visited_a; }));
  ASSERT_OK(b->TimedSegmentScan(
      DayRange::All(), [&visited_b](const Value&, const Entry&) { ++visited_b; }));
  EXPECT_EQ(visited_a, visited_b);

  const CacheStats stats = b->cache()->stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_GT(stats.hits, 0u);  // repeated rounds re-read the same blocks
}

class WaveServiceConcurrencyTest : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(WaveServiceConcurrencyTest, ReadersRaceWriterSafely) {
  const int window = 6;
  ASSERT_OK_AND_ASSIGN(auto service,
                       WaveService::Create(ServiceOptions(GetParam(), window,
                                                          3)));
  std::vector<DayBatch> first;
  for (Day d = 1; d <= window; ++d) {
    first.push_back(MakeMixedBatch(d, /*num_records=*/12));
  }
  ASSERT_OK(service->Start(std::move(first)));

  std::atomic<bool> stop{false};
  std::atomic<int> probes_done{0};
  std::atomic<int> failures{0};

  auto reader = [&]() {
    std::vector<Entry> out;
    while (!stop.load()) {
      const Day before = service->current_day();
      out.clear();
      Status s = service->IndexProbe("alpha", &out);
      if (!s.ok()) {
        ++failures;
        continue;
      }
      const Day after = service->current_day();
      // Consistency: every entry's day is within the window of SOME snapshot
      // the reader could have observed (soft-window slack for WATA).
      const Day oldest_valid = before - window + 1 - window;  // generous
      for (const Entry& e : out) {
        if (e.day < oldest_valid || e.day > after) {
          ++failures;
          break;
        }
      }
      ++probes_done;
    }
  };

  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) readers.emplace_back(reader);

  Status writer_status;
  for (Day d = window + 1; d <= window + 40; ++d) {
    writer_status = service->AdvanceDay(MakeMixedBatch(d, 12));
    if (!writer_status.ok()) break;
    // Give readers a slice so transitions genuinely interleave with probes.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  // Don't stop before the readers have actually raced some queries.
  for (int spin = 0; spin < 10000 && probes_done.load() < 50; ++spin) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  ASSERT_TRUE(writer_status.ok()) << writer_status.ToString();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(probes_done.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Schemes, WaveServiceConcurrencyTest,
                         ::testing::Values(SchemeKind::kDel,
                                           SchemeKind::kReindex,
                                           SchemeKind::kReindexPlusPlus,
                                           SchemeKind::kWata,
                                           SchemeKind::kRata),
                         [](const auto& info) {
                           std::string name = SchemeKindName(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace wavekit
