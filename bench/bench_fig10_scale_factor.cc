// Figure 10: how total daily work scales when the daily data volume grows by
// a scale factor SF in [0.5, 5] (W = 14, n = 4, SCAM).

#include "bench/common.h"

namespace wavekit {
namespace bench {
namespace {

int Run() {
  Banner("Figure 10: SCAM work per day vs data scale factor SF (W=14, n=4)",
         "REINDEX scales best with data volume (no CONTIGUOUS Add); WATA* "
         "still wins while SF <= ~3; past that REINDEX becomes the better "
         "choice — the paper's 'consider future data growth' lesson.");

  const int window = 14;
  const int n = 4;
  const std::vector<double> factors = {0.5, 1, 2, 3, 4, 5};

  std::vector<std::string> headers = {"SF"};
  for (SchemeKind kind : PaperSchemes()) headers.push_back(SchemeKindName(kind));
  sim::TablePrinter table(headers);
  table.SetTitle("Total work seconds/day (modeled, simple shadowing)");

  std::map<SchemeKind, std::map<double, double>> series;
  for (double sf : factors) {
    const model::CaseParams params = model::CaseParams::Scam().Scaled(sf);
    std::vector<std::string> row = {Fmt(sf, 1)};
    for (SchemeKind kind : PaperSchemes()) {
      series[kind][sf] = TotalWorkOrDie(
          kind, UpdateTechniqueKind::kSimpleShadow, params, window, n)
                             .total();
      row.push_back(Fmt(series[kind][sf], 0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  ShapeChecks checks;
  checks.Check(series[SchemeKind::kWata][1.0] <
                   series[SchemeKind::kReindex][1.0],
               "WATA* beats REINDEX at SF = 1");
  checks.Check(series[SchemeKind::kWata][5.0] >
                   series[SchemeKind::kReindex][5.0],
               "REINDEX beats WATA* at SF = 5 (it avoids the expensive "
               "CONTIGUOUS Adds that scale with volume)");
  // Crossover near SF ~ 3.
  double crossover = 0;
  for (double sf : factors) {
    if (series[SchemeKind::kReindex][sf] < series[SchemeKind::kWata][sf]) {
      crossover = sf;
      break;
    }
  }
  checks.Check(crossover >= 2.0 && crossover <= 4.0,
               "the WATA*/REINDEX crossover falls near SF = 3 (paper: WATA* "
               "best while SF <= 3); observed SF = " + Fmt(crossover, 1));
  const double reindex_growth =
      series[SchemeKind::kReindex][5.0] / series[SchemeKind::kReindex][0.5];
  const double wata_growth =
      series[SchemeKind::kWata][5.0] / series[SchemeKind::kWata][0.5];
  checks.Check(reindex_growth < wata_growth,
               "REINDEX scales best as data volume grows");
  return checks.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace wavekit

int main() { return wavekit::bench::Run(); }
