# Empty compiler generated dependencies file for bench_micro_directory.
# This may be replaced when dependencies are built.
