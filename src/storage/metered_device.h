// MeteredDevice: wraps a Device and records the seek/transfer pattern,
// attributed to workload phases.
//
// A "seek" is charged whenever an access does not continue sequentially from
// the end of the previous access — the same head-movement model the paper's
// analysis uses (e.g., an IndexProbe is "one seek followed by a transfer of
// the corresponding bucket", a SegmentScan over a packed index is one seek
// plus a sequential sweep).

#ifndef WAVEKIT_STORAGE_METERED_DEVICE_H_
#define WAVEKIT_STORAGE_METERED_DEVICE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "storage/cost_model.h"
#include "storage/device.h"

namespace wavekit {

/// \brief What a piece of I/O was done for. Maintenance work is split the way
/// the paper's Section 5 splits it: transition (critical path until the new
/// day is queryable) vs. pre-computation (temporary-index preparation).
enum class Phase : int {
  kStart = 0,       ///< Initial build of the first W days.
  kTransition = 1,  ///< Daily work before new data is queryable.
  kPrecompute = 2,  ///< Daily work preparing temporary indexes.
  kQuery = 3,       ///< TimedIndexProbe / TimedSegmentScan traffic.
  kOther = 4,       ///< Anything not explicitly attributed.
};

inline constexpr int kNumPhases = 5;

const char* PhaseName(Phase phase);

/// \brief Device decorator that counts seeks and transferred bytes per Phase.
class MeteredDevice : public Device {
 public:
  /// Does not take ownership of `inner`, which must outlive this object.
  explicit MeteredDevice(Device* inner);

  Status Read(uint64_t offset, std::span<std::byte> out) override;
  Status Write(uint64_t offset, std::span<const std::byte> data) override;
  uint64_t capacity() const override { return inner_->capacity(); }

  /// Sets the phase subsequent I/O is attributed to.
  void set_phase(Phase phase) { phase_ = phase; }
  Phase phase() const { return phase_; }

  /// Counters for one phase since the last Reset.
  const IoCounters& counters(Phase phase) const {
    return counters_[static_cast<int>(phase)];
  }

  /// Sum over all phases.
  IoCounters total() const;

  /// Zeroes all counters (head position is kept).
  void Reset();

 private:
  void Account(uint64_t offset, uint64_t length, bool is_write);

  Device* inner_;
  Phase phase_ = Phase::kOther;
  std::array<IoCounters, kNumPhases> counters_;
  // One past the last byte touched; next access starting here is sequential.
  uint64_t head_position_ = 0;
  bool head_valid_ = false;
};

/// \brief RAII phase setter over several devices at once (multi-disk
/// deployments): switches every device's phase and restores them all.
class MultiPhaseScope {
 public:
  MultiPhaseScope(const std::vector<MeteredDevice*>& devices, Phase phase)
      : devices_(devices) {
    previous_.reserve(devices_.size());
    for (MeteredDevice* device : devices_) {
      previous_.push_back(device->phase());
      device->set_phase(phase);
    }
  }
  ~MultiPhaseScope() {
    for (size_t i = 0; i < devices_.size(); ++i) {
      devices_[i]->set_phase(previous_[i]);
    }
  }

  MultiPhaseScope(const MultiPhaseScope&) = delete;
  MultiPhaseScope& operator=(const MultiPhaseScope&) = delete;

 private:
  std::vector<MeteredDevice*> devices_;
  std::vector<Phase> previous_;
};

/// \brief RAII phase setter: switches a MeteredDevice's phase and restores the
/// previous one on destruction.
class PhaseScope {
 public:
  PhaseScope(MeteredDevice* device, Phase phase)
      : device_(device), previous_(device->phase()) {
    device_->set_phase(phase);
  }
  ~PhaseScope() { device_->set_phase(previous_); }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  MeteredDevice* device_;
  Phase previous_;
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_METERED_DEVICE_H_
