#include "storage/fault_injecting_device.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/crash_point.h"
#include "util/macros.h"

namespace wavekit {

FaultInjectingDevice::FaultInjectingDevice(Device* inner, Options options)
    : inner_(inner), options_(options), rng_(options.seed) {}

bool FaultInjectingDevice::InBadRange(uint64_t offset, size_t length) const {
  const uint64_t end = offset + length;
  for (const Extent& bad : bad_ranges_) {
    if (offset < bad.end() && bad.offset < end) return true;
  }
  return false;
}

Status FaultInjectingDevice::Read(uint64_t offset, std::span<std::byte> out) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.reads;
  if (crashed_) return InjectedCrash("read of crashed device");
  if (InBadRange(offset, out.size())) {
    return Status::IOError("bad device range: read at offset " +
                           std::to_string(offset));
  }
  if (options_.read_error_rate > 0 && rng_.Bernoulli(options_.read_error_rate)) {
    ++stats_.injected_read_errors;
    return Status::IOError("injected transient read error at offset " +
                           std::to_string(offset));
  }
  // Silent-corruption modes: each rolls the RNG only when enabled, so
  // arming one never shifts the replay stream of a scenario that predates
  // it. Misdirection replaces the source offset; a bit flip corrupts the
  // returned buffer after a correct transfer.
  if (options_.misdirected_read_rate > 0 && !out.empty() &&
      out.size() <= inner_->capacity() &&
      rng_.Bernoulli(options_.misdirected_read_rate)) {
    ++stats_.misdirected_reads;
    const uint64_t wrong =
        rng_.Uniform(inner_->capacity() - out.size() + 1);
    return inner_->Read(wrong, out);
  }
  WAVEKIT_RETURN_NOT_OK(inner_->Read(offset, out));
  if (options_.bit_flip_read_rate > 0 && !out.empty() &&
      rng_.Bernoulli(options_.bit_flip_read_rate)) {
    ++stats_.bit_flip_reads;
    const uint64_t bit = rng_.Uniform(out.size() * 8);
    out[static_cast<size_t>(bit / 8)] ^= std::byte{1} << (bit % 8);
  }
  return Status::OK();
}

Status FaultInjectingDevice::Write(uint64_t offset,
                                   std::span<const std::byte> data) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.writes;
  if (crashed_) return InjectedCrash("write to crashed device");
  if (crash_countdown_ > 0 && --crash_countdown_ == 0) {
    crashed_ = true;
    ++stats_.crashes;
    if (options_.torn_writes && !data.empty()) {
      // The dying write persists a random prefix — the torn tail is what
      // recovery must tolerate.
      const size_t persisted =
          static_cast<size_t>(rng_.Uniform(data.size() + 1));
      if (persisted > 0) {
        (void)inner_->Write(offset, data.first(persisted));
      }
      if (persisted < data.size()) ++stats_.torn_writes;
    }
    return InjectedCrash("write (crash-after-writes countdown hit zero)");
  }
  if (InBadRange(offset, data.size())) {
    return Status::IOError("bad device range: write at offset " +
                           std::to_string(offset));
  }
  if (write_budget_ == 0) {
    ++stats_.budget_rejected_writes;
    return Status::ResourceExhausted(
        "injected disk full: no space left on device (write at offset " +
        std::to_string(offset) + ")");
  }
  if (options_.write_error_rate > 0 &&
      rng_.Bernoulli(options_.write_error_rate)) {
    ++stats_.injected_write_errors;
    if (options_.torn_writes && !data.empty()) {
      const size_t persisted =
          static_cast<size_t>(rng_.Uniform(data.size() + 1));
      if (persisted > 0) {
        WAVEKIT_RETURN_NOT_OK(inner_->Write(offset, data.first(persisted)));
      }
      if (persisted < data.size()) ++stats_.torn_writes;
    }
    return Status::IOError("injected transient write error at offset " +
                           std::to_string(offset));
  }
  // Silent write corruption: a lost write acknowledges without persisting;
  // a bit-flip write persists a copy with one bit wrong. Each rolls the RNG
  // only when enabled (replay-stream stability).
  if (options_.lost_write_rate > 0 &&
      rng_.Bernoulli(options_.lost_write_rate)) {
    ++stats_.lost_writes;
    if (write_budget_ > 0) --write_budget_;
    return Status::OK();
  }
  if (options_.bit_flip_write_rate > 0 && !data.empty() &&
      rng_.Bernoulli(options_.bit_flip_write_rate)) {
    ++stats_.bit_flip_writes;
    std::vector<std::byte> corrupt(data.begin(), data.end());
    const uint64_t bit = rng_.Uniform(corrupt.size() * 8);
    corrupt[static_cast<size_t>(bit / 8)] ^= std::byte{1} << (bit % 8);
    if (write_budget_ > 0) --write_budget_;
    return inner_->Write(offset, corrupt);
  }
  if (write_budget_ > 0) --write_budget_;
  return inner_->Write(offset, data);
}

Status FaultInjectingDevice::CorruptRange(const Extent& extent, uint64_t salt,
                                          int bits) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (extent.length == 0 || bits <= 0) {
    return Status::InvalidArgument("CorruptRange needs a non-empty extent");
  }
  // A private stream derived from (device seed, salt): deterministic for
  // the episode, independent of the main fault stream.
  Rng local = Rng(options_.seed).Fork(salt);
  std::vector<std::byte> bytes(static_cast<size_t>(extent.length));
  WAVEKIT_RETURN_NOT_OK(inner_->Read(extent.offset, bytes));
  // Distinct positions, so an even flip count can never cancel out and
  // leave the range unchanged (the scenarios assert corruption happened).
  std::vector<uint64_t> flipped;
  for (int i = 0; i < bits; ++i) {
    uint64_t bit = local.Uniform(extent.length * 8);
    while (std::find(flipped.begin(), flipped.end(), bit) != flipped.end()) {
      bit = (bit + 1) % (extent.length * 8);
    }
    flipped.push_back(bit);
    bytes[static_cast<size_t>(bit / 8)] ^= std::byte{1} << (bit % 8);
  }
  return inner_->Write(extent.offset, bytes);
}

Status FaultInjectingDevice::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) return InjectedCrash("sync of crashed device");
  return inner_->Sync();
}

void FaultInjectingDevice::set_read_error_rate(double rate) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_.read_error_rate = rate;
}

void FaultInjectingDevice::set_write_error_rate(double rate) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_.write_error_rate = rate;
}

void FaultInjectingDevice::set_bit_flip_read_rate(double rate) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_.bit_flip_read_rate = rate;
}

void FaultInjectingDevice::set_bit_flip_write_rate(double rate) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_.bit_flip_write_rate = rate;
}

void FaultInjectingDevice::set_lost_write_rate(double rate) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_.lost_write_rate = rate;
}

void FaultInjectingDevice::set_misdirected_read_rate(double rate) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_.misdirected_read_rate = rate;
}

void FaultInjectingDevice::SetWriteBudget(uint64_t writes) {
  std::lock_guard<std::mutex> lock(mutex_);
  write_budget_ = static_cast<int64_t>(writes);
}

void FaultInjectingDevice::ClearWriteBudget() {
  std::lock_guard<std::mutex> lock(mutex_);
  write_budget_ = -1;
}

void FaultInjectingDevice::AddBadRange(const Extent& extent) {
  std::lock_guard<std::mutex> lock(mutex_);
  bad_ranges_.push_back(extent);
}

void FaultInjectingDevice::ClearBadRanges() {
  std::lock_guard<std::mutex> lock(mutex_);
  bad_ranges_.clear();
}

void FaultInjectingDevice::ArmCrashAfterWrites(uint64_t countdown) {
  std::lock_guard<std::mutex> lock(mutex_);
  crash_countdown_ = countdown;
}

void FaultInjectingDevice::DisarmCrash() {
  std::lock_guard<std::mutex> lock(mutex_);
  crash_countdown_ = 0;
}

void FaultInjectingDevice::ClearCrash() {
  std::lock_guard<std::mutex> lock(mutex_);
  crashed_ = false;
  crash_countdown_ = 0;
}

bool FaultInjectingDevice::crashed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_;
}

FaultInjectingDevice::Stats FaultInjectingDevice::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace wavekit
