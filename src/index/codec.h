// Per-bucket codecs: compressed on-device bucket layouts.
//
// Probe and scan cost is dominated by bucket transfer (the Trans * S' term
// of the paper's cost model), so shrinking on-device bucket bytes is a
// direct speedup on both the modeled disk and the real backends. A bucket
// holds `count` 16-byte entries; a codec re-encodes that entry sequence as a
// smaller byte string. Three codecs exist:
//
//   kRaw     — the identity layout: count * kEntrySize bytes, appendable in
//              place. The only codec simple (mutable) constituents use.
//   kDelta   — columnar delta coding: zigzag deltas of record_id and day as
//              LEB128 varints, aux as plain varints. Wins on packed buckets
//              whose record ids arrive roughly sorted (the common case: day
//              clusters assign ids in insertion order).
//   kBitPack — columnar fixed-width bit packing: per column a base (min)
//              and a bit width, then count fields of (value - base). Wins
//              when values sit in a narrow range but are not sorted.
//
// Encoding is a pure function of the entry sequence — two builds of the same
// bucket (serial or parallel) produce byte-identical extents, which the
// deterministic sim harness and the serial-parity tests rely on. Selection
// (`EncodeBucket` with CodecMode::kAuto) runs a cheap O(n) size probe per
// candidate and encodes only the winner; a codec is chosen only when its
// output is strictly smaller than raw, so kRaw remains the canonical form
// for incompressible buckets.
//
// Decoding (`DecodeBucket`) is the trust boundary's companion: it must never
// crash or overread on arbitrary bytes (fuzz_codec enforces this) and
// returns Status::DataLoss on any malformed input. Per-bucket CRC-32C is
// computed over the *stored* (compressed) bytes, so corruption is caught by
// the existing checksum machinery before decode even runs; decode hardening
// is defense in depth for verify_checksums=false configurations.

#ifndef WAVEKIT_INDEX_CODEC_H_
#define WAVEKIT_INDEX_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "index/entry.h"
#include "util/result.h"
#include "util/status.h"

namespace wavekit {

/// \brief On-device bucket layout identifier. Stable: persisted in
/// checkpoint v4 bucket lines as a small integer.
enum class Codec : uint8_t {
  kRaw = 0,
  kDelta = 1,
  kBitPack = 2,
};

/// Number of codec ids (for per-codec stats arrays).
inline constexpr int kNumCodecs = 3;

/// \brief Build-time codec policy for an index. kRaw disables compression
/// entirely (every path byte-identical to pre-codec builds). kAuto probes
/// kDelta and kBitPack per bucket and keeps the smaller iff it beats raw.
/// The forced modes consider only that codec (still falling back to kRaw
/// when it does not beat raw) — useful for benchmarks and the sim harness.
enum class CodecMode : uint8_t {
  kRaw = 0,
  kAuto = 1,
  kDelta = 2,
  kBitPack = 3,
};

const char* CodecName(Codec codec);
const char* CodecModeName(CodecMode mode);

/// Parses "raw" / "auto" / "delta" / "bitpack"; InvalidArgument otherwise.
Result<CodecMode> CodecModeFromName(const std::string& name);

/// Validates a persisted codec id; InvalidArgument if out of range.
Result<Codec> CodecFromId(uint64_t id);

/// \brief Result of encoding one bucket. For kRaw, `bytes` stays empty and
/// callers use the raw entry bytes directly (no copy on the common path).
struct EncodedBucket {
  Codec codec = Codec::kRaw;
  std::vector<std::byte> bytes;

  /// Bytes this bucket occupies on the device.
  uint64_t stored_length(size_t count) const {
    return codec == Codec::kRaw ? count * kEntrySize : bytes.size();
  }
};

/// \brief Encodes `entries[0..count)` under `mode`. Deterministic; returns
/// kRaw (empty bytes) whenever no candidate beats the raw size strictly.
EncodedBucket EncodeBucket(const Entry* entries, size_t count, CodecMode mode);

/// \brief Decodes `size` stored bytes into exactly `count` entries at `out`
/// (caller-sized). Never crashes or overreads on arbitrary input; returns
/// Status::DataLoss on malformed/truncated/trailing bytes. For kRaw, `size`
/// must equal count * kEntrySize.
Status DecodeBucket(Codec codec, const std::byte* data, size_t size,
                    size_t count, Entry* out);

}  // namespace wavekit

#endif  // WAVEKIT_INDEX_CODEC_H_
