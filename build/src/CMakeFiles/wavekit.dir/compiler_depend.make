# Empty compiler generated dependencies file for wavekit.
# This may be replaced when dependencies are built.
