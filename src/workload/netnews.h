// NetnewsGenerator: synthetic Netnews article stream for the SCAM and WSE
// case studies.
//
// Substitution note (see DESIGN.md): the paper indexes real Netnews feeds
// (~70k articles/day for SCAM, ~100k/day for a WSE). We generate articles
// whose word-frequency distribution is Zipfian, matching the paper's own
// observation that "words in SCAM's Netnews articles exhibit skewed Zipfian
// behavior" — the property that determines bucket-size distribution, and
// hence probe and growth behaviour.

#ifndef WAVEKIT_WORKLOAD_NETNEWS_H_
#define WAVEKIT_WORKLOAD_NETNEWS_H_

#include "index/record.h"
#include "util/random.h"

namespace wavekit {
namespace workload {

struct NetnewsConfig {
  /// Articles generated per day (the paper's 70,000 scaled to sim size).
  uint64_t articles_per_day = 500;
  /// Distinct words in the universe.
  uint64_t vocabulary_size = 20000;
  /// Zipf exponent of word frequencies.
  double zipf_theta = 1.0;
  /// Mean words per article (geometric-ish spread around it).
  uint32_t words_per_article = 40;
  uint64_t seed = 42;
};

/// \brief Deterministic generator of daily Netnews batches.
class NetnewsGenerator {
 public:
  explicit NetnewsGenerator(NetnewsConfig config);

  /// Generates day `day`'s batch. `articles_override` (when nonzero)
  /// replaces articles_per_day, e.g. to follow a UsenetVolumeTrace.
  DayBatch GenerateDay(Day day, uint64_t articles_override = 0);

  /// The word with popularity rank `rank` (0 = most frequent).
  Value WordForRank(uint64_t rank) const;

  /// Samples a word by popularity (for generating realistic probe values).
  Value SampleWord(Rng& rng) const;

  const NetnewsConfig& config() const { return config_; }

 private:
  NetnewsConfig config_;
  Rng rng_;
  ZipfDistribution zipf_;
  uint64_t next_record_id_ = 1;
};

}  // namespace workload
}  // namespace wavekit

#endif  // WAVEKIT_WORKLOAD_NETNEWS_H_
