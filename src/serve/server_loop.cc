#include "serve/server_loop.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

#include "util/macros.h"
#include "util/net.h"

namespace wavekit {
namespace serve {
namespace {

// epoll_wait granularity: also the idle-timeout sweep cadence, so timeouts
// fire within ~this of their deadline even on a silent server.
constexpr int kTickMs = 100;

constexpr uint32_t kReadEvents = EPOLLIN | EPOLLRDHUP;

}  // namespace

ServerLoop::ServerLoop(Options options, ServerCore* core)
    : options_(std::move(options)), core_(core) {}

ServerLoop::~ServerLoop() { Stop(); }

Status ServerLoop::Start() {
  if (running()) return Status::OK();

  WAVEKIT_ASSIGN_OR_RETURN(
      listen_fd_, net::ListenTcp(options_.bind_address, options_.port));
  auto cleanup_listen = [this] {
    ::close(listen_fd_);
    listen_fd_ = -1;
  };
  auto port = net::LocalPort(listen_fd_);
  if (!port.ok()) {
    cleanup_listen();
    return port.status();
  }
  Status nonblock = net::SetNonBlocking(listen_fd_);
  if (!nonblock.ok()) {
    cleanup_listen();
    return nonblock;
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    Status s = net::ErrnoStatus("epoll_create1");
    cleanup_listen();
    return s;
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    Status s = net::ErrnoStatus("eventfd");
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    cleanup_listen();
    return s;
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  port_.store(*port, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void ServerLoop::Drain() { Shutdown(/*drain=*/true); }

void ServerLoop::Stop() { Shutdown(/*drain=*/false); }

void ServerLoop::Shutdown(bool drain) {
  if (!running_.load(std::memory_order_acquire)) return;
  if (drain) {
    core_->BeginDrain();
    draining_.store(true, std::memory_order_release);
  } else {
    running_.store(false, std::memory_order_release);
  }
  const uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof one);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  epoll_fd_ = wake_fd_ = listen_fd_ = -1;
}

int64_t ServerLoop::NowMs() const {
  // Transport timeouts are wall-clock by design: the deterministic sim
  // drives ServerCore directly and never goes through this loop.
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ServerLoop::Run() {
  bool accepting = true;
  std::vector<epoll_event> events(64);
  while (true) {
    const bool draining = draining_.load(std::memory_order_acquire);
    if (!running_.load(std::memory_order_acquire)) break;
    if (draining) {
      if (accepting) {
        // Stop admitting: the listener leaves the interest set, so pending
        // SYNs get RST when the fd closes and new clients fail fast.
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        accepting = false;
      }
      // Drain completes when every reply has been flushed. Requests already
      // sitting in a connection's socket buffer are in flight — give each
      // quiet connection one final read so they are answered, then close it
      // once nothing is left to flush; the rest close as their pending
      // buffers empty in HandleWritable.
      std::vector<int> candidates;
      candidates.reserve(connections_.size());
      for (const auto& [fd, conn] : connections_) candidates.push_back(fd);
      for (const int fd : candidates) {
        auto it = connections_.find(fd);
        if (it == connections_.end() || !it->second.pending.empty()) continue;
        HandleReadable(&it->second);  // may close (EOF) or queue replies
        it = connections_.find(fd);
        if (it != connections_.end() && it->second.pending.empty()) {
          CloseConnection(fd);
        }
      }
      if (connections_.empty()) break;
    }

    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), kTickMs);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t mask = events[i].events;
      if (fd == wake_fd_) {
        uint64_t drainv;
        (void)!::read(wake_fd_, &drainv, sizeof drainv);
        continue;
      }
      if (fd == listen_fd_) {
        if (accepting) AcceptNew();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      Connection* conn = &it->second;
      if (mask & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(fd);
        continue;
      }
      if (mask & EPOLLOUT) {
        HandleWritable(conn);
        if (connections_.find(fd) == connections_.end()) continue;
      }
      if (mask & (EPOLLIN | EPOLLRDHUP)) {
        HandleReadable(conn);
      }
    }
    if (!draining_.load(std::memory_order_acquire)) CloseIdleConnections();
  }

  for (auto it = connections_.begin(); it != connections_.end();) {
    const int fd = it->first;
    ++it;
    CloseConnection(fd);
  }
}

void ServerLoop::AcceptNew() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // EAGAIN: drained the backlog. Anything else: spurious wakeup or a
      // connection that died in the backlog; either way, try again later.
      return;
    }
    auto session = core_->OpenSession();
    if (!session.ok()) {
      // Admission refused (session limit / draining). A frame-less close is
      // the contract: the client sees EOF before sending anything.
      ::close(fd);
      continue;
    }
    (void)net::SetNonBlocking(fd);
    (void)net::SetNoDelay(fd);
    Connection conn;
    conn.fd = fd;
    conn.session = *session;
    conn.last_activity_ms = NowMs();
    connections_.emplace(fd, std::move(conn));
    epoll_event ev{};
    ev.events = kReadEvents;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServerLoop::HandleReadable(Connection* conn) {
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn->last_activity_ms = NowMs();
      std::string replies;
      const Status status = core_->Ingest(conn->session, buf,
                                          static_cast<size_t>(n), &replies);
      if (!replies.empty()) QueueReply(conn, std::move(replies));
      if (!status.ok()) {
        // Unrecoverable stream (bad version / oversized frame): the final
        // error reply is queued; close once it flushes.
        conn->closing = true;
        if (conn->pending.empty()) {
          CloseConnection(conn->fd);
          return;
        }
        // Stop reading a stream we can no longer parse.
        epoll_event ev{};
        ev.events = EPOLLOUT;
        ev.data.fd = conn->fd;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
        return;
      }
      continue;
    }
    if (n == 0) {  // clean EOF
      CloseConnection(conn->fd);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConnection(conn->fd);
    return;
  }
}

void ServerLoop::QueueReply(Connection* conn, std::string bytes) {
  if (conn->pending.empty()) {
    // Fast path: push as much as the kernel takes right now.
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(conn->fd, bytes.data() + off,
                               bytes.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;  // EAGAIN (buffer full) or a real error found by the next event
    }
    if (off == bytes.size()) return;
    conn->pending.assign(bytes, off, bytes.size() - off);
  } else {
    conn->pending += bytes;
  }
  epoll_event ev{};
  ev.events = (conn->closing ? 0u : kReadEvents) | EPOLLOUT;
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void ServerLoop::HandleWritable(Connection* conn) {
  size_t off = 0;
  while (off < conn->pending.size()) {
    const ssize_t n = ::send(conn->fd, conn->pending.data() + off,
                             conn->pending.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConnection(conn->fd);
    return;
  }
  conn->pending.erase(0, off);
  if (conn->pending.empty()) {
    if (conn->closing || draining_.load(std::memory_order_acquire)) {
      CloseConnection(conn->fd);
      return;
    }
    epoll_event ev{};
    ev.events = kReadEvents;
    ev.data.fd = conn->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  }
}

void ServerLoop::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  core_->CloseSession(it->second.session);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
}

void ServerLoop::CloseIdleConnections() {
  if (options_.idle_timeout_ms <= 0) return;
  const int64_t now = NowMs();
  std::vector<int> idle;
  for (const auto& [fd, conn] : connections_) {
    // A connection waiting for *us* to flush is not loafing; only silence on
    // the read side counts (this is precisely the slow-loris signature).
    if (conn.pending.empty() &&
        now - conn.last_activity_ms > options_.idle_timeout_ms) {
      idle.push_back(fd);
    }
  }
  for (int fd : idle) {
    idle_closed_.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(fd);
  }
}

}  // namespace serve
}  // namespace wavekit
