// KB-WATA: a WATA-family scheme in the spirit of Kleinberg et al. [KMRV97],
// who improved WATA*'s index-size competitive ratio from 2.0 to n/(n-1) by
// assuming the maximum window size B is known in advance.
//
// This is wavekit's implementation of the paper's related-work extension
// (Section 3.3 discussion): instead of rotating constituents by day counts,
// KB-WATA closes the filling constituent once it reaches B/(n-1) entries, so
// no constituent — and hence no residual expired data — can ever exceed
// that slice of the bound.

#ifndef WAVEKIT_WAVE_KNOWN_BOUND_WATA_SCHEME_H_
#define WAVEKIT_WAVE_KNOWN_BOUND_WATA_SCHEME_H_

#include "wave/scheme.h"

namespace wavekit {

/// \brief Size-bounded WATA. Soft windows; requires
/// SchemeConfig::size_bound_entries > 0 (the promised bound B on the entries
/// of any W consecutive days) and n >= 2.
///
/// Maintenance per day: (1) drop every constituent whose days have all
/// expired; (2) append the new day to the filling constituent, unless that
/// would push it past ceil(B/(n-1)) entries and a constituent slot is free,
/// in which case a fresh constituent is started. If the promised bound is
/// violated by the data, the scheme keeps working but its size guarantee
/// degrades gracefully (it appends past the slice rather than failing).
class KnownBoundWataScheme : public Scheme {
 public:
  KnownBoundWataScheme(SchemeEnv env, SchemeConfig config)
      : Scheme(env, config) {}

  SchemeKind kind() const override { return SchemeKind::kKnownBoundWata; }
  std::string_view name() const override { return "KB-WATA"; }
  bool hard_window() const override { return false; }

  Status ValidateConfig() const override;

 protected:
  Status DoStart() override;
  Status DoTransition(const DayBatch& new_day) override;
  Status DoAdopt() override;

 private:
  uint64_t SliceBound() const;
  /// Drops every constituent whose newest day is older than the window.
  Status DropFullyExpired();

  int next_name_ = 0;
};

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_KNOWN_BOUND_WATA_SCHEME_H_
