// Factory for wave-index maintenance schemes.

#ifndef WAVEKIT_WAVE_SCHEME_FACTORY_H_
#define WAVEKIT_WAVE_SCHEME_FACTORY_H_

#include <memory>
#include <string>

#include "util/result.h"
#include "wave/scheme.h"

namespace wavekit {

/// \brief Creates (and config-validates) a scheme of the given kind.
Result<std::unique_ptr<Scheme>> MakeScheme(SchemeKind kind, SchemeEnv env,
                                           SchemeConfig config);

/// Parses a scheme name ("DEL", "reindex++", "wata*", "kb-wata", ...);
/// case-insensitive, '*' optional.
Result<SchemeKind> SchemeKindFromName(const std::string& name);

/// Parses an update-technique name ("in-place", "simple-shadow",
/// "packed-shadow"); case-insensitive.
Result<UpdateTechniqueKind> UpdateTechniqueFromName(const std::string& name);

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_SCHEME_FACTORY_H_
