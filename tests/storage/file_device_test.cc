#include "storage/file_device.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "index/index_builder.h"
#include "storage/metered_device.h"
#include "testing/test_env.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;

class FileDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process AND per fixture: ctest runs tests in parallel
    // processes whose heap layout can coincide, so `this` alone collides.
    path_ = ::testing::TempDir() + "wavekit_file_device_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".dat";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST_F(FileDeviceTest, WriteReadRoundTrip) {
  ASSERT_OK_AND_ASSIGN(auto device, FileDevice::Open(path_, 1 << 20));
  ASSERT_OK(device->Write(100, Bytes("persisted")));
  std::vector<std::byte> out(9);
  ASSERT_OK(device->Read(100, out));
  EXPECT_EQ(std::memcmp(out.data(), "persisted", 9), 0);
  ASSERT_OK(device->Sync());
}

TEST_F(FileDeviceTest, DataSurvivesReopen) {
  {
    ASSERT_OK_AND_ASSIGN(auto device, FileDevice::Open(path_, 1 << 20));
    ASSERT_OK(device->Write(0, Bytes("durable")));
    ASSERT_OK(device->Sync());
  }
  ASSERT_OK_AND_ASSIGN(auto reopened, FileDevice::Open(path_, 1 << 20));
  std::vector<std::byte> out(7);
  ASSERT_OK(reopened->Read(0, out));
  EXPECT_EQ(std::memcmp(out.data(), "durable", 7), 0);
}

TEST_F(FileDeviceTest, UnwrittenBytesReadZero) {
  ASSERT_OK_AND_ASSIGN(auto device, FileDevice::Open(path_, 1 << 20));
  ASSERT_OK(device->Write(0, Bytes("x")));
  std::vector<std::byte> out(16, std::byte{0xFF});
  ASSERT_OK(device->Read(1000, out));  // past EOF of the sparse file
  for (std::byte b : out) EXPECT_EQ(b, std::byte{0});
}

TEST_F(FileDeviceTest, RejectsOutOfRange) {
  ASSERT_OK_AND_ASSIGN(auto device, FileDevice::Open(path_, 64));
  std::vector<std::byte> buf(32);
  EXPECT_TRUE(device->Write(40, buf).IsOutOfRange());
  EXPECT_TRUE(device->Read(40, buf).IsOutOfRange());
  EXPECT_OK(device->Write(32, buf));
}

TEST_F(FileDeviceTest, OpenFailsOnBadPath) {
  auto result = FileDevice::Open("/no/such/directory/x.dat", 64);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST_F(FileDeviceTest, WorksUnderTheFullIndexStack) {
  // A packed index built on a real file, queried back correctly.
  ASSERT_OK_AND_ASSIGN(auto file, FileDevice::Open(path_, 1 << 22));
  MeteredDevice metered(file.get());
  ExtentAllocator allocator(1 << 22);
  DayBatch batch = MakeMixedBatch(1, 20);
  ASSERT_OK_AND_ASSIGN(
      auto index, IndexBuilder::BuildPacked(&metered, &allocator, {}, batch,
                                            "on-disk"));
  std::vector<Entry> out;
  ASSERT_OK(index->Probe("alpha", &out));
  EXPECT_FALSE(out.empty());
  ASSERT_OK(index->CheckPacked());
  EXPECT_GT(metered.total().bytes_written, 0u);
}

}  // namespace
}  // namespace wavekit
