file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_maintenance_simple.dir/bench_table10_maintenance_simple.cc.o"
  "CMakeFiles/bench_table10_maintenance_simple.dir/bench_table10_maintenance_simple.cc.o.d"
  "bench_table10_maintenance_simple"
  "bench_table10_maintenance_simple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_maintenance_simple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
