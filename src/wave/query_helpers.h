// Higher-level query helpers over a WaveIndex: conjunctive multi-value
// probes (search-engine style), aggregates (warehouse style), and match
// counting (copy-detection style). These capture the access patterns of the
// paper's three case studies as reusable library calls.

#ifndef WAVEKIT_WAVE_QUERY_HELPERS_H_
#define WAVEKIT_WAVE_QUERY_HELPERS_H_

#include <cstdint>
#include <vector>

#include "util/result.h"
#include "wave/wave_index.h"

namespace wavekit {

/// \brief One record matched by a multi-value query.
struct MatchResult {
  uint64_t record_id = 0;
  /// How many DISTINCT query values this record matched.
  uint32_t matched_values = 0;
  /// The newest day any of its matches was inserted.
  Day newest_day = 0;

  bool operator==(const MatchResult& other) const = default;
};

/// \brief Records within `range` containing EVERY value of `values`
/// (conjunctive keyword search), newest first. The WSE case study's query.
Result<std::vector<MatchResult>> ConjunctiveProbe(
    const WaveIndex& wave, const std::vector<Value>& values,
    const DayRange& range);

/// \brief Records within `range` ranked by how many distinct `values` they
/// contain (best-overlap first), truncated to `top_k`. The SCAM case study's
/// copy-detection query: `values` is a document fingerprint.
Result<std::vector<MatchResult>> OverlapProbe(const WaveIndex& wave,
                                              const std::vector<Value>& values,
                                              const DayRange& range,
                                              size_t top_k);

/// \brief Aggregate of one TimedSegmentScan: count and sum of the entries'
/// aux payloads. The TPC-D case study's Q1-style scan.
struct ScanAggregate {
  uint64_t count = 0;
  uint64_t aux_sum = 0;

  double aux_mean() const {
    return count == 0 ? 0.0 : static_cast<double>(aux_sum) / count;
  }
};

/// Aggregates every entry in `range` across the wave index.
Result<ScanAggregate> AggregateScan(const WaveIndex& wave,
                                    const DayRange& range);

/// Aggregates the entries of a single value in `range` (a grouped drill-down
/// without scanning: one probe per constituent).
Result<ScanAggregate> AggregateProbe(const WaveIndex& wave, const Value& value,
                                     const DayRange& range);

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_QUERY_HELPERS_H_
