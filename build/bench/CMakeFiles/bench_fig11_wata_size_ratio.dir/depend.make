# Empty dependencies file for bench_fig11_wata_size_ratio.
# This may be replaced when dependencies are built.
