// WaveService: a thread-safe serving wrapper around a wave index.
//
// This operationalizes the paper's shadow-updating story: "queries can be
// serviced using the old index, while the new index is being updated. Hence
// no concurrency control is required." A single maintenance thread calls
// AdvanceDay; any number of query threads probe and scan concurrently. Each
// query runs against an immutable snapshot of the constituent set — shadow
// updates only ever create new ConstituentIndex objects and retire old ones,
// so a snapshot stays valid (and internally consistent) for as long as a
// query holds it.

#ifndef WAVEKIT_WAVE_WAVE_SERVICE_H_
#define WAVEKIT_WAVE_WAVE_SERVICE_H_

#include <atomic>
#include <memory>
#include <mutex>

#include "util/histogram.h"

#include "storage/device.h"
#include "storage/extent_allocator.h"
#include "storage/synchronized_device.h"
#include "util/result.h"
#include "wave/day_store.h"
#include "wave/scheme.h"
#include "wave/wave_index.h"

namespace wavekit {

/// \brief Operational metrics of a WaveService.
struct ServiceMetrics {
  uint64_t probes = 0;
  uint64_t scans = 0;
  uint64_t days_advanced = 0;
  /// Wall-clock probe latency in microseconds (log-bucketed percentiles).
  Histogram probe_latency_us;
  /// Wall-clock scan latency in microseconds.
  Histogram scan_latency_us;
};

/// \brief Concurrent wave-index server: one writer, many readers.
class WaveService {
 public:
  struct Options {
    SchemeKind scheme = SchemeKind::kWata;
    SchemeConfig config;
    uint64_t device_capacity = uint64_t{1} << 30;
  };

  /// Creates the service. Rejects in-place updating: readers would observe
  /// buckets mutating underneath them (this is exactly the concurrency
  /// control the paper's shadow techniques exist to avoid).
  static Result<std::unique_ptr<WaveService>> Create(Options options);

  // --- Maintenance (single writer thread) ----------------------------------

  /// Builds the initial wave index from days 1..W.
  Status Start(std::vector<DayBatch> first_window);

  /// Incorporates the next day. Readers keep getting answers throughout —
  /// from the pre-transition snapshot until the new one is published.
  Status AdvanceDay(DayBatch new_day);

  // --- Queries (any thread, any time after Start) ---------------------------

  Status TimedIndexProbe(const DayRange& range, const Value& value,
                         std::vector<Entry>* out,
                         QueryStats* stats = nullptr) const;
  Status IndexProbe(const Value& value, std::vector<Entry>* out,
                    QueryStats* stats = nullptr) const;
  Status TimedSegmentScan(const DayRange& range, const EntryCallback& callback,
                          QueryStats* stats = nullptr) const;

  /// The newest day readers may see (monotonic; readers racing with
  /// AdvanceDay may still see the previous snapshot).
  Day current_day() const { return published_day_.load(); }

  int window() const { return options_.config.window; }

  /// The snapshot queries would use right now (for inspection/tests).
  std::shared_ptr<const WaveIndex> Snapshot() const;

  /// A copy of the current operational metrics (thread-safe).
  ServiceMetrics Metrics() const;

  /// Zeroes the metrics (thread-safe).
  void ResetMetrics();

  /// Writer-side accessors (not thread-safe against AdvanceDay).
  const Scheme& scheme() const { return *scheme_; }
  MeteredDevice* device() { return &device_; }

 private:
  explicit WaveService(Options options);

  void Publish();

  Options options_;
  MemoryDevice memory_;
  SynchronizedMeteredDevice device_;
  ExtentAllocator allocator_;
  DayStore day_store_;
  std::unique_ptr<Scheme> scheme_;

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const WaveIndex> snapshot_;
  std::atomic<Day> published_day_{0};

  mutable std::mutex metrics_mutex_;
  mutable ServiceMetrics metrics_;  // updated by const query paths
};

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_WAVE_SERVICE_H_
