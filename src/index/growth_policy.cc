#include "index/growth_policy.h"

#include <algorithm>
#include <cmath>

namespace wavekit {

uint32_t GrowthPolicy::InitialCapacity(uint32_t needed) const {
  return std::max(initial_capacity, needed);
}

uint32_t GrowthPolicy::GrownCapacity(uint32_t current, uint32_t needed) const {
  double capacity = std::max<double>(current, 1.0);
  const double factor = std::max(g, 1.0 + 1e-9);
  while (capacity < static_cast<double>(needed)) {
    capacity = std::ceil(capacity * factor);
  }
  return static_cast<uint32_t>(capacity);
}

uint32_t GrowthPolicy::ShrunkCapacity(uint32_t current, uint32_t live) const {
  const double factor = std::max(g, 1.0 + 1e-9);
  if (static_cast<double>(live) > current / (factor * factor)) return current;
  double capacity = current;
  while (capacity / factor >= std::max<double>(live, initial_capacity) &&
         capacity / factor >= 1.0) {
    capacity = std::floor(capacity / factor);
  }
  return static_cast<uint32_t>(
      std::max<double>(capacity, std::max<uint32_t>(live, 1)));
}

}  // namespace wavekit
