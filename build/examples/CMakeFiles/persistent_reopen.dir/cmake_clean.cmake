file(REMOVE_RECURSE
  "CMakeFiles/persistent_reopen.dir/persistent_reopen.cc.o"
  "CMakeFiles/persistent_reopen.dir/persistent_reopen.cc.o.d"
  "persistent_reopen"
  "persistent_reopen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_reopen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
