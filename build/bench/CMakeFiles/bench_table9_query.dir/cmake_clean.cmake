file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_query.dir/bench_table9_query.cc.o"
  "CMakeFiles/bench_table9_query.dir/bench_table9_query.cc.o.d"
  "bench_table9_query"
  "bench_table9_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
