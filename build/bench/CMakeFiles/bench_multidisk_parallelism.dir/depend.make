# Empty dependencies file for bench_multidisk_parallelism.
# This may be replaced when dependencies are built.
