#include "storage/metered_device.h"

#include "util/macros.h"

namespace wavekit {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kStart:
      return "start";
    case Phase::kTransition:
      return "transition";
    case Phase::kPrecompute:
      return "precompute";
    case Phase::kQuery:
      return "query";
    case Phase::kOther:
      return "other";
  }
  return "?";
}

MeteredDevice::MeteredDevice(Device* inner) : inner_(inner) {}

IoCounters MeteredDevice::AtomicIoCounters::Load() const {
  IoCounters out;
  out.seeks = seeks.load(std::memory_order_relaxed);
  out.bytes_read = bytes_read.load(std::memory_order_relaxed);
  out.bytes_written = bytes_written.load(std::memory_order_relaxed);
  out.read_ops = read_ops.load(std::memory_order_relaxed);
  out.write_ops = write_ops.load(std::memory_order_relaxed);
  out.sync_ops = sync_ops.load(std::memory_order_relaxed);
  return out;
}

void MeteredDevice::AtomicIoCounters::ResetAll() {
  seeks.store(0, std::memory_order_relaxed);
  bytes_read.store(0, std::memory_order_relaxed);
  bytes_written.store(0, std::memory_order_relaxed);
  read_ops.store(0, std::memory_order_relaxed);
  write_ops.store(0, std::memory_order_relaxed);
  sync_ops.store(0, std::memory_order_relaxed);
}

void MeteredDevice::Account(Phase phase, uint64_t offset, uint64_t length,
                            bool is_write) {
  AtomicIoCounters& io = counters_[static_cast<size_t>(phase)];
  // The shared head models one disk arm: whichever access lands next moves
  // it. exchange() keeps the model race-free; interleaved readers simply see
  // the seek pattern a real arm serving them in that order would produce.
  const uint64_t previous =
      head_position_.exchange(offset + length, std::memory_order_relaxed);
  if (previous != offset) {
    io.seeks.fetch_add(1, std::memory_order_relaxed);
  }
  if (is_write) {
    io.bytes_written.fetch_add(length, std::memory_order_relaxed);
    io.write_ops.fetch_add(1, std::memory_order_relaxed);
  } else {
    io.bytes_read.fetch_add(length, std::memory_order_relaxed);
    io.read_ops.fetch_add(1, std::memory_order_relaxed);
  }
}

Status MeteredDevice::Read(uint64_t offset, std::span<std::byte> out) {
  const Phase phase = this->phase();
  WAVEKIT_RETURN_NOT_OK(inner_->Read(offset, out));
  Account(phase, offset, out.size(), /*is_write=*/false);
  return Status::OK();
}

Status MeteredDevice::ReadBatch(std::span<const Extent> extents,
                                std::span<std::byte> out) {
  // Capture the phase once so a batch spanning a phase flip is attributed
  // entirely to the phase active at call time.
  const Phase phase = this->phase();
  WAVEKIT_RETURN_NOT_OK(inner_->ReadBatch(extents, out));
  for (const Extent& extent : extents) {
    Account(phase, extent.offset, extent.length, /*is_write=*/false);
  }
  return Status::OK();
}

Status MeteredDevice::Write(uint64_t offset, std::span<const std::byte> data) {
  const Phase phase = this->phase();
  WAVEKIT_RETURN_NOT_OK(inner_->Write(offset, data));
  Account(phase, offset, data.size(), /*is_write=*/true);
  return Status::OK();
}

Status MeteredDevice::WriteBatch(std::span<const Extent> extents,
                                 std::span<const std::byte> data) {
  const Phase phase = this->phase();
  WAVEKIT_RETURN_NOT_OK(inner_->WriteBatch(extents, data));
  for (const Extent& extent : extents) {
    Account(phase, extent.offset, extent.length, /*is_write=*/true);
  }
  return Status::OK();
}

Status MeteredDevice::Sync() {
  const Phase phase = this->phase();
  WAVEKIT_RETURN_NOT_OK(inner_->Sync());
  counters_[static_cast<size_t>(phase)].sync_ops.fetch_add(
      1, std::memory_order_relaxed);
  return Status::OK();
}

IoCounters MeteredDevice::total() const {
  IoCounters out;
  for (const AtomicIoCounters& c : counters_) out += c.Load();
  return out;
}

MeteredDevice::Snapshot MeteredDevice::snapshot() const {
  Snapshot out;
  for (int p = 0; p < kNumPhases; ++p) {
    const Phase phase = static_cast<Phase>(p);
    Snapshot::PhaseIo& slot = out.phases[static_cast<size_t>(p)];
    slot.phase = phase;
    slot.name = PhaseName(phase);
    slot.io = counters_[static_cast<size_t>(p)].Load();
    out.total += slot.io;
  }
  return out;
}

void MeteredDevice::Reset() {
  for (AtomicIoCounters& c : counters_) c.ResetAll();
}

}  // namespace wavekit
