#include "wave/op_log.h"

#include <gtest/gtest.h>

namespace wavekit {
namespace {

TEST(OpLogTest, RecordAndFilter) {
  OpLog log;
  log.Record(OpRecord{OpKind::kBuildIndex, Phase::kStart, 0, 5, 0, 50,
                      ApplyMode::kIncremental});
  log.Record(OpRecord{OpKind::kAddToIndex, Phase::kTransition, 11, 1, 4, 10,
                      ApplyMode::kIncremental});
  log.Record(OpRecord{OpKind::kAddToIndex, Phase::kPrecompute, 11, 2, 1, 20,
                      ApplyMode::kIncremental});
  log.Record(OpRecord{OpKind::kDropIndex, Phase::kTransition, 12, 3, 0, 30,
                      ApplyMode::kIncremental});

  EXPECT_EQ(log.records().size(), 4u);
  EXPECT_EQ(log.RecordsAtDay(11).size(), 2u);
  EXPECT_EQ(log.RecordsAtDay(99).size(), 0u);
  EXPECT_EQ(log.TotalOpDays(OpKind::kAddToIndex), 3);
  EXPECT_EQ(log.TotalOpDays(OpKind::kBuildIndex), 5);
  EXPECT_EQ(log.TotalOpDays(OpKind::kCopyIndex), 0);
}

TEST(OpLogTest, ClearEmpties) {
  OpLog log;
  log.Record(OpRecord{OpKind::kRename, Phase::kTransition, 1, 1, 0, 0,
                      ApplyMode::kIncremental});
  log.Clear();
  EXPECT_TRUE(log.records().empty());
}

TEST(OpLogTest, NamesAreStable) {
  EXPECT_STREQ(OpKindName(OpKind::kBuildIndex), "BuildIndex");
  EXPECT_STREQ(OpKindName(OpKind::kSmartCopyIndex), "SmartCopyIndex");
  EXPECT_STREQ(ApplyModeName(ApplyMode::kRebuild), "rebuild");
}

TEST(OpLogTest, ToStringContainsAllRecords) {
  OpLog log;
  log.Record(OpRecord{OpKind::kBuildIndex, Phase::kTransition, 11, 5, 0, 0,
                      ApplyMode::kIncremental});
  log.Record(OpRecord{OpKind::kCopyIndex, Phase::kPrecompute, 12, 2, 0, 0,
                      ApplyMode::kIncremental});
  const std::string text = log.ToString();
  EXPECT_NE(text.find("BuildIndex"), std::string::npos);
  EXPECT_NE(text.find("CopyIndex"), std::string::npos);
  EXPECT_NE(text.find("day 11"), std::string::npos);
  EXPECT_NE(text.find("precompute"), std::string::npos);
}

}  // namespace
}  // namespace wavekit
