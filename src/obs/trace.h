// Tracer/Span: lightweight maintenance-phase tracing for wave operations.
//
// Every AdvanceDay becomes a root span whose children are the Section 2.2
// primitives the scheme actually ran (BuildIndex, AddToIndex, DropIndex,
// CopyIndex, ...), each annotated with the seek/byte delta it drew from the
// MeteredDevice — so a single trace shows where the paper's transition cost
// physically went. Probes and scans can be sampled the same way.
//
// Design points:
//  - Unsampled spans are inert: StartSpan costs one relaxed atomic add and
//    returns a span that does nothing on Finish.
//  - Parent/child linkage is a thread-local "current span" pointer; child
//    spans of a sampled ancestor are always recorded (head-based sampling).
//  - Completed spans land in a bounded in-memory ring (oldest evicted) and,
//    above an optional latency threshold, in a WARNING slow-op log line.
//  - I/O attribution is best-effort under concurrency: the span reads the
//    meter's totals at start and finish, so traffic from concurrent threads
//    within that window is attributed to the span too (same caveat as the
//    metered head position; see DESIGN.md).

#ifndef WAVEKIT_OBS_TRACE_H_
#define WAVEKIT_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "storage/cost_model.h"
#include "storage/metered_device.h"
#include "util/clock.h"

namespace wavekit {
namespace obs {

class Tracer;

/// \brief One finished span as stored in the tracer's ring.
struct SpanRecord {
  uint64_t trace_id = 0;        ///< Root span id shared by the whole trace.
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  ///< 0 for root spans.
  std::string name;
  uint64_t start_us = 0;        ///< Microseconds since the tracer was created.
  uint64_t duration_us = 0;
  // Seek/byte delta of the attributed meter over the span's lifetime.
  uint64_t seeks = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

/// \brief RAII span handle. Default-constructed (or unsampled) spans are
/// inert. Finish() is idempotent and runs on destruction. Movable so
/// Tracer::StartSpan can return by value; not copyable.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { Finish(); }

  /// True when this span is sampled and will be recorded on Finish.
  bool active() const { return tracer_ != nullptr; }

  uint64_t span_id() const { return record_.span_id; }
  uint64_t trace_id() const { return record_.trace_id; }

  void Finish();

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::string name, Span* parent);

  Tracer* tracer_ = nullptr;  ///< nullptr = inert.
  Span* parent_ = nullptr;    ///< Restored as thread-current on Finish.
  SpanRecord record_;
  uint64_t start_us_ = 0;     ///< Clock reading at span start.
  IoCounters io_start_;
};

/// \brief Span factory + bounded ring of completed spans. Thread-safe: any
/// thread may start spans and read CompletedSpans concurrently.
class Tracer {
 public:
  struct Options {
    /// Fraction of ROOT spans recorded, in [0, 1]. Sampling is deterministic
    /// (every round(1/rate)-th root), so tests and steady loads see an exact
    /// fraction. Children of a sampled root are always recorded.
    double sample_rate = 0.0;
    /// Completed spans kept; the oldest is evicted when full.
    size_t ring_capacity = 256;
    /// When > 0, a finished span at least this slow emits one WARNING log
    /// line (visible at the default log level, capturable via SetLogSink).
    uint64_t slow_op_threshold_us = 0;
    /// When set, spans record the seek/byte delta of this meter over their
    /// lifetime (best-effort under concurrency).
    MeteredDevice* meter = nullptr;
    /// Time source for span timestamps and durations. Defaults to the wall
    /// clock; the simulation harness injects a SimClock so every recorded
    /// timestamp is a deterministic function of the episode seed.
    Clock* clock = nullptr;
  };

  explicit Tracer(Options options);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Starts a span. If the calling thread is inside a span of this tracer,
  /// the new span is its (always-recorded) child; otherwise it is a root
  /// subject to the sampling decision.
  Span StartSpan(std::string_view name);

  /// The completed-span ring, oldest first.
  std::vector<SpanRecord> CompletedSpans() const;

  /// Drops all completed spans (counters are kept).
  void Clear();

  uint64_t roots_started() const {
    return roots_started_.load(std::memory_order_relaxed);
  }
  uint64_t roots_sampled() const {
    return roots_sampled_.load(std::memory_order_relaxed);
  }
  uint64_t spans_recorded() const {
    return spans_recorded_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

 private:
  friend class Span;

  /// Whether the next root span is sampled (deterministic counter-based).
  bool SampleRoot();
  void FinishSpan(SpanRecord record);

  Options options_;
  uint64_t sample_period_;  ///< 0 = never, 1 = always, k = every k-th root.
  uint64_t epoch_us_;       ///< Clock reading when the tracer was created.
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<uint64_t> roots_started_{0};
  std::atomic<uint64_t> roots_sampled_{0};
  std::atomic<uint64_t> spans_recorded_{0};

  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;  ///< Circular; `ring_next_` is the write slot.
  size_t ring_next_ = 0;
  bool ring_full_ = false;
};

}  // namespace obs
}  // namespace wavekit

#endif  // WAVEKIT_OBS_TRACE_H_
