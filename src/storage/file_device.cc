#include "storage/file_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/fs.h"
#include "util/macros.h"

namespace wavekit {

Result<std::unique_ptr<FileDevice>> FileDevice::Open(const std::string& path,
                                                     uint64_t capacity) {
  const bool existed = FileExists(path);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("open '" + path + "': " + std::strerror(errno));
  }
  if (!existed) {
    // Make the new directory entry durable: without the parent fsync a crash
    // could lose the file itself even after its data was fdatasync'd.
    const Status synced = SyncDirectoryOf(path);
    if (!synced.ok()) {
      ::close(fd);
      return synced;
    }
  }
  return std::unique_ptr<FileDevice>(new FileDevice(path, fd, capacity));
}

FileDevice::FileDevice(std::string path, int fd, uint64_t capacity)
    : path_(std::move(path)), fd_(fd), capacity_(capacity) {}

FileDevice::~FileDevice() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileDevice::CheckRange(uint64_t offset, size_t length) const {
  if (offset > capacity_ || length > capacity_ - offset) {
    return Status::OutOfRange("file device access [" + std::to_string(offset) +
                              ", " + std::to_string(offset + length) +
                              ") exceeds capacity " + std::to_string(capacity_));
  }
  return Status::OK();
}

Status FileDevice::Read(uint64_t offset, std::span<std::byte> out) {
  WAVEKIT_RETURN_NOT_OK(CheckRange(offset, out.size()));
  size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread '" + path_ + "': " + std::strerror(errno));
    }
    if (n == 0) {
      // Past EOF of a sparse file: unwritten bytes read as zero.
      std::memset(out.data() + done, 0, out.size() - done);
      break;
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FileDevice::Write(uint64_t offset, std::span<const std::byte> data) {
  WAVEKIT_RETURN_NOT_OK(CheckRange(offset, data.size()));
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite '" + path_ + "': " + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FileDevice::WriteBatch(std::span<const Extent> extents,
                              std::span<const std::byte> data) {
  // Coalesce adjacent extents: a run of extents where each starts at the end
  // of the previous one is backed by contiguous bytes in `data`, so the whole
  // run goes down as one pwrite sequence.
  uint64_t total = 0;
  for (const Extent& extent : extents) {
    WAVEKIT_RETURN_NOT_OK(
        CheckRange(extent.offset, static_cast<size_t>(extent.length)));
    total += extent.length;
  }
  if (total != data.size()) {
    return Status::InvalidArgument(
        "WriteBatch data buffer does not match the sum of extent lengths");
  }
  size_t consumed = 0;
  size_t i = 0;
  while (i < extents.size()) {
    const uint64_t run_offset = extents[i].offset;
    uint64_t run_length = extents[i].length;
    size_t j = i + 1;
    while (j < extents.size() &&
           extents[j].offset == run_offset + run_length) {
      run_length += extents[j].length;
      ++j;
    }
    WAVEKIT_RETURN_NOT_OK(Write(
        run_offset, data.subspan(consumed, static_cast<size_t>(run_length))));
    consumed += static_cast<size_t>(run_length);
    i = j;
  }
  return Status::OK();
}

Status FileDevice::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IOError("fdatasync '" + path_ + "': " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace wavekit
