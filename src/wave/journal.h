// MaintenanceJournal: the tiny intent journal of the crash-atomic AdvanceDay
// protocol (wave/recovery.h).
//
// The journal holds at most one record: "a transition to day D is in
// flight". It is written durably before the transition's primitives run and
// removed durably after the post-transition checkpoint is on disk. On
// restart its presence tells recovery whether to roll an interrupted
// transition forward (checkpoint already covers D) or back (it does not).

#ifndef WAVEKIT_WAVE_JOURNAL_H_
#define WAVEKIT_WAVE_JOURNAL_H_

#include <optional>
#include <string>

#include "util/day.h"
#include "util/result.h"

namespace wavekit {

/// \brief One-record durable intent journal.
class MaintenanceJournal {
 public:
  explicit MaintenanceJournal(std::string path) : path_(std::move(path)) {}

  /// Durably records the intent to transition to `day` (atomic replace; the
  /// crash scope "journal.intent" is checked around the rename).
  Status WriteIntent(Day day);

  /// Durably removes the journal (the transition committed). Checks the
  /// crash point "journal.commit" first. OK if the journal is absent.
  Status Commit();

  /// Reads the intent at `path`: the in-flight day, std::nullopt when no
  /// journal exists, InvalidArgument when the file fails its CRC (e.g. a
  /// torn write of a non-atomic filesystem) — callers treat that like no
  /// intent, since a journal that never became durable cannot have been
  /// followed by any transition work.
  static Result<std::optional<Day>> Read(const std::string& path);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace wavekit

#endif  // WAVEKIT_WAVE_JOURNAL_H_
