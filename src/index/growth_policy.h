// GrowthPolicy: the CONTIGUOUS incremental-indexing scheme of Faloutsos &
// Jagadish [FJ92], as adopted by the paper for AddToIndex/DeleteFromIndex.
//
// Each value's bucket occupies contiguous space. When an insert overflows the
// bucket, a new extent `g` times larger is allocated, entries are copied
// over, and the old extent is released. Deletion shrinks symmetrically when
// occupancy drops far enough that a `g`-times-smaller extent suffices with
// hysteresis, so add/delete sequences do not thrash.
//
// `g` trades space (S') for copy work: the paper's case studies pick g = 2.0
// for the Zipfian Netnews workloads and g = 1.08 for the uniform TPC-D keys.

#ifndef WAVEKIT_INDEX_GROWTH_POLICY_H_
#define WAVEKIT_INDEX_GROWTH_POLICY_H_

#include <cstdint>

namespace wavekit {

/// \brief Bucket sizing rules for incremental updates (CONTIGUOUS [FJ92]).
struct GrowthPolicy {
  /// Growth factor: a full bucket is relocated to ceil(capacity * g) slots.
  double g = 2.0;
  /// Entry slots allocated for a brand-new bucket.
  uint32_t initial_capacity = 4;

  /// Capacity for a new bucket that must hold `needed` entries now.
  uint32_t InitialCapacity(uint32_t needed) const;

  /// Capacity after growing a bucket of `current` slots so it can hold
  /// `needed` entries ( > current ). Applies `g` repeatedly if one growth
  /// step is not enough (bulk adds).
  uint32_t GrownCapacity(uint32_t current, uint32_t needed) const;

  /// Capacity after shrinking a bucket of `current` slots holding `live`
  /// entries; returns `current` unchanged when shrinking is not worthwhile
  /// (hysteresis: only shrink when live <= current / g^2).
  uint32_t ShrunkCapacity(uint32_t current, uint32_t live) const;
};

}  // namespace wavekit

#endif  // WAVEKIT_INDEX_GROWTH_POLICY_H_
