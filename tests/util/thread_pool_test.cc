#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

namespace wavekit {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter]() { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
}

TEST(ThreadPoolTest, MultipleWaitRounds) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) pool.Submit([&counter]() { ++counter; });
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, UsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  std::atomic<int> gate{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&]() {
      ++gate;
      // Hold until several tasks are in flight so distinct workers engage.
      while (gate.load() < 4) std::this_thread::yield();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.Wait();
  EXPECT_GE(seen.size(), 2u);
}

TEST(ThreadPoolTest, DestructionDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) pool.Submit([&counter]() { ++counter; });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  // Destroying the pool with tasks still queued must execute every one of
  // them, not drop them: a single slow task occupies the lone worker while
  // the rest sit in the queue at destruction time.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    pool.Submit([]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });
    for (int i = 0; i < 64; ++i) pool.Submit([&counter]() { ++counter; });
    // No Wait: the destructor is responsible for the drain.
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, ReentrantSubmitFromWorkerIsCoveredByWait) {
  // A task fans out children from inside a worker; Wait must cover the whole
  // tree, not just the directly submitted roots.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int root = 0; root < 8; ++root) {
    pool.Submit([&pool, &counter]() {
      ++counter;
      for (int child = 0; child < 4; ++child) {
        pool.Submit([&pool, &counter]() {
          ++counter;
          pool.Submit([&counter]() { ++counter; });  // grandchild
        });
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 8 * (1 + 4 + 4));
}

TEST(ThreadPoolTest, ShutdownDrainsReentrantSubmits) {
  // Tasks that submit children during the destructor's drain must have those
  // children executed too.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&pool, &counter]() {
        ++counter;
        pool.Submit([&counter]() { ++counter; });
      });
    }
  }
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPoolTest, SubmitConcurrentWithWaitIsSafe) {
  // One thread Waits in a loop while others keep submitting: no deadlock, no
  // lost task; a final Wait after the submitters join covers everything.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kPerThread = 500;
  std::vector<std::thread> submitters;
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&pool, &counter]() {
      for (int i = 0; i < kPerThread; ++i) {
        pool.Submit([&counter]() { ++counter; });
      }
    });
  }
  for (int i = 0; i < 50; ++i) pool.Wait();  // racing Waits are legal
  for (std::thread& s : submitters) s.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), 3 * kPerThread);
}

TEST(WaitGroupTest, JoinsOnlyItsOwnTasks) {
  // A WaitGroup's Wait must return once ITS tasks are done, even while an
  // unrelated task (e.g. query fan-out sharing the pool) is still running.
  ThreadPool pool(4);
  std::atomic<bool> release{false};
  std::atomic<int> unrelated{0};
  pool.Submit([&]() {
    while (!release.load()) std::this_thread::yield();
    ++unrelated;
  });
  std::atomic<int> group_count{0};
  {
    ThreadPool::WaitGroup group(&pool);
    for (int i = 0; i < 8; ++i) group.Submit([&group_count]() { ++group_count; });
    group.Wait();
    EXPECT_EQ(group_count.load(), 8);
    // The unrelated task is still parked: the group did not drain the pool.
    EXPECT_EQ(unrelated.load(), 0);
  }
  release.store(true);
  pool.Wait();
  EXPECT_EQ(unrelated.load(), 1);
}

TEST(WaitGroupTest, ReentrantSubmitDuringWaitIsCovered) {
  // Tasks submitted through the group from inside its own running tasks
  // (while the coordinator is already blocked in Wait) must be covered by
  // that same Wait — the pending count is raised before the parent finishes.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  ThreadPool::WaitGroup group(&pool);
  for (int root = 0; root < 8; ++root) {
    group.Submit([&group, &counter]() {
      ++counter;
      group.Submit([&group, &counter]() {
        ++counter;
        group.Submit([&counter]() { ++counter; });  // grandchild
      });
    });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 8 * 3);
  EXPECT_EQ(group.pending(), 0);
}

TEST(WaitGroupTest, DestructorIsABackstopWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  {
    ThreadPool::WaitGroup group(&pool);
    for (int i = 0; i < 32; ++i) group.Submit([&counter]() { ++counter; });
    // No explicit Wait: the destructor joins.
  }
  EXPECT_EQ(counter.load(), 32);
}

TEST(WaitGroupTest, GroupsOnOnePoolAreIndependent) {
  // Two concurrent stages on one pool: each group's Wait covers exactly its
  // own submissions, in any interleaving.
  ThreadPool pool(4);
  std::atomic<int> a_count{0}, b_count{0};
  ThreadPool::WaitGroup a(&pool), b(&pool);
  for (int i = 0; i < 16; ++i) {
    a.Submit([&a_count]() { ++a_count; });
    b.Submit([&b_count]() { ++b_count; });
  }
  a.Wait();
  EXPECT_EQ(a_count.load(), 16);
  b.Wait();
  EXPECT_EQ(b_count.load(), 16);
}

TEST(WaitGroupTest, ReusableAfterWait) {
  // A group can run several rounds: Wait resets nothing, the count just
  // returns to zero and new submissions raise it again.
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  ThreadPool::WaitGroup group(&pool);
  for (int round = 1; round <= 4; ++round) {
    for (int i = 0; i < 10; ++i) group.Submit([&counter]() { ++counter; });
    group.Wait();
    EXPECT_EQ(counter.load(), round * 10);
  }
}

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran]() { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace wavekit
