# Empty dependencies file for multi_disk_scheme_test.
# This may be replaced when dependencies are built.
