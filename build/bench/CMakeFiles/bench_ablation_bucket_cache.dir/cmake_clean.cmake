file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bucket_cache.dir/bench_ablation_bucket_cache.cc.o"
  "CMakeFiles/bench_ablation_bucket_cache.dir/bench_ablation_bucket_cache.cc.o.d"
  "bench_ablation_bucket_cache"
  "bench_ablation_bucket_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bucket_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
