// FileDevice: a Device backed by a real file, for deployments that want the
// wave index persisted rather than simulated. Wrap it in a MeteredDevice
// exactly like a MemoryDevice; all higher layers are device-agnostic.

#ifndef WAVEKIT_STORAGE_FILE_DEVICE_H_
#define WAVEKIT_STORAGE_FILE_DEVICE_H_

#include <string>

#include "storage/device.h"
#include "util/result.h"

namespace wavekit {

/// Offset/length granularity O_DIRECT I/O must honor. 4 KiB covers every
/// current logical block size (512/4096); ExtentAllocator::AllocateAligned
/// places extents on this boundary for direct-mode backends.
inline constexpr uint64_t kDirectIoAlignment = 4096;

/// \brief Device over one file, accessed with positional reads/writes.
///
/// The file is created (sparse) if absent and sized lazily up to `capacity`.
/// Reads of never-written ranges return zeros, matching MemoryDevice
/// semantics.
///
/// Thread safety: buffered mode supports concurrent Reads, concurrent with
/// Writes to disjoint ranges (pread/pwrite are atomic syscalls; wavekit's
/// shadow-update discipline keeps live ranges disjoint). Direct mode
/// additionally requires concurrent writers to stay in DISTINCT 4 KiB
/// blocks: unaligned direct writes read-modify-write the boundary blocks.
class FileDevice : public Device {
 public:
  struct OpenOptions {
    /// Opens with O_DIRECT: I/O bypasses the page cache. Unaligned accesses
    /// are transparently handled through an internal aligned bounce buffer
    /// (reads over-read the covering blocks; writes read-modify-write them),
    /// so correctness never depends on alignment — only speed does. Fails
    /// with IOError on filesystems without O_DIRECT support (e.g. tmpfs);
    /// callers probe with DirectIoSupported().
    bool direct_io = false;
  };

  /// Opens (or creates) `path` with the given logical capacity.
  static Result<std::unique_ptr<FileDevice>> Open(const std::string& path,
                                                  uint64_t capacity,
                                                  OpenOptions options);
  static Result<std::unique_ptr<FileDevice>> Open(const std::string& path,
                                                  uint64_t capacity) {
    return Open(path, capacity, OpenOptions{});
  }

  /// True when `dir` (or the filesystem a probe file in it lands on)
  /// accepts O_DIRECT opens. tmpfs does not; most disk filesystems do.
  static bool DirectIoSupported(const std::string& dir);

  ~FileDevice() override;

  FileDevice(const FileDevice&) = delete;
  FileDevice& operator=(const FileDevice&) = delete;

  Status Read(uint64_t offset, std::span<std::byte> out) override;
  Status Write(uint64_t offset, std::span<const std::byte> data) override;

  /// Sorts the extents by offset and coalesces adjacent runs into preadv
  /// calls: one syscall reads a contiguous file run into the (possibly
  /// scattered) destination slices of `out`. Byte-identical results to the
  /// base per-extent loop. Direct mode falls back to the per-extent loop
  /// (the bounce path owns alignment there).
  Status ReadBatch(std::span<const Extent> extents,
                   std::span<std::byte> out) override;

  /// Mirror of ReadBatch: sorted, file-adjacent runs go down as single
  /// pwritev calls gathering from the per-extent slices of `data`. Batches
  /// with overlapping extents fall back to the in-order per-extent loop so
  /// later extents still win; direct mode also falls back per-extent.
  Status WriteBatch(std::span<const Extent> extents,
                    std::span<const std::byte> data) override;

  uint64_t capacity() const override { return capacity_; }

  const std::string& path() const { return path_; }
  bool direct_io() const { return direct_; }
  int fd() const { return fd_; }

  /// Flushes written data to stable storage (fdatasync).
  Status Sync() override;

 private:
  FileDevice(std::string path, int fd, uint64_t capacity, bool direct);

  Status CheckRange(uint64_t offset, size_t length) const;

  /// pread/pwrite at `offset` with retry-on-EINTR and zero-fill past EOF
  /// (reads). The direct variants stage through a freshly allocated aligned
  /// bounce buffer so offset, length and memory address all meet
  /// kDirectIoAlignment (per-call buffers keep concurrent reads race-free).
  Status PlainRead(uint64_t offset, std::span<std::byte> out);
  Status PlainWrite(uint64_t offset, std::span<const std::byte> data);
  Status DirectRead(uint64_t offset, std::span<std::byte> out);
  Status DirectWrite(uint64_t offset, std::span<const std::byte> data);

  /// Reads the aligned range [offset, offset+length) (both multiples of
  /// kDirectIoAlignment) into `out` via raw pread, zero-filling past EOF.
  Status AlignedRead(uint64_t offset, std::byte* out, size_t length);

  std::string path_;
  int fd_;
  uint64_t capacity_;
  bool direct_ = false;
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_FILE_DEVICE_H_
