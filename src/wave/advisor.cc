#include "wave/advisor.h"

#include <algorithm>

#include "model/query_model.h"
#include "util/format.h"
#include "util/macros.h"

namespace wavekit {
namespace {

bool SchemeAdmissible(SchemeKind scheme, int n,
                      const AdvisorConstraints& constraints) {
  const bool soft =
      scheme == SchemeKind::kWata || scheme == SchemeKind::kKnownBoundWata;
  if (constraints.require_hard_window && soft) return false;
  if (!constraints.can_implement_delete && scheme == SchemeKind::kDel) {
    return false;
  }
  if ((scheme == SchemeKind::kWata || scheme == SchemeKind::kRata) && n < 2) {
    return false;
  }
  // KB-WATA needs the future size bound — not something the advisor can
  // assume; it stays an opt-in extension.
  if (scheme == SchemeKind::kKnownBoundWata) return false;
  return true;
}

std::string BuildRationale(const Recommendation& r,
                           const model::CaseParams& params) {
  std::string out = std::string(SchemeKindName(r.scheme)) + " with n=" +
                    std::to_string(r.num_indexes) + " and " +
                    UpdateTechniqueKindName(r.technique) + " updating: " +
                    FormatSeconds(r.work.total()) + " of work/day (" +
                    FormatSeconds(r.work.transition_seconds) +
                    " until new data is queryable), " +
                    FormatBytes(static_cast<uint64_t>(r.space.avg_total())) +
                    " average space, " + FormatSeconds(r.probe_seconds) +
                    " per whole-window probe";
  (void)params;
  switch (r.scheme) {
    case SchemeKind::kReindex:
      out += "; daily rebuilds keep every index packed and need no deletion "
             "code";
      break;
    case SchemeKind::kDel:
      out += "; requires incremental deletion support";
      break;
    case SchemeKind::kWata:
      out += "; note the SOFT window (up to ceil((W-1)/(n-1))-1 residual "
             "days)";
      break;
    case SchemeKind::kRata:
      out += "; hard windows at WATA-like transition latency, paid for with "
             "the precomputed ladder";
      break;
    default:
      break;
  }
  return out;
}

}  // namespace

Result<std::vector<Recommendation>> RankWaveIndexOptions(
    const model::CaseParams& params, int window,
    const AdvisorConstraints& constraints) {
  if (window < 1) return Status::InvalidArgument("window must be >= 1");
  if (constraints.max_indexes < 1) {
    return Status::InvalidArgument("max_indexes must be >= 1");
  }

  std::vector<UpdateTechniqueKind> techniques = {
      UpdateTechniqueKind::kSimpleShadow};
  if (constraints.can_implement_packed_shadow &&
      constraints.can_implement_delete) {
    // The packed smart copy rewrites buckets and merges deletions: it needs
    // both layout control and delete semantics.
    techniques.push_back(UpdateTechniqueKind::kPackedShadow);
  }

  std::vector<Recommendation> candidates;
  for (SchemeKind scheme : kAllSchemeKinds) {
    for (int n = 1; n <= std::min(constraints.max_indexes, window); ++n) {
      if (!SchemeAdmissible(scheme, n, constraints)) continue;
      for (UpdateTechniqueKind technique : techniques) {
        Recommendation candidate;
        candidate.scheme = scheme;
        candidate.num_indexes = n;
        candidate.technique = technique;
        WAVEKIT_ASSIGN_OR_RETURN(
            candidate.work,
            model::EstimateTotalWork(scheme, technique, params, window, n));
        candidate.space =
            model::EstimateSpace(scheme, technique, params, window, n);
        const model::QueryShape shape =
            model::ShapeOf(scheme, technique, window, n);
        candidate.probe_seconds =
            model::TimedIndexProbeSeconds(params, shape, n);
        if (candidate.probe_seconds > constraints.max_probe_seconds) continue;
        if (candidate.space.avg_total() > constraints.max_space_bytes) {
          continue;
        }
        candidate.objective =
            candidate.work.total() +
            constraints.space_weight * candidate.space.avg_total() /
                params.packed_day_bytes;
        candidate.rationale = BuildRationale(candidate, params);
        candidates.push_back(std::move(candidate));
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Recommendation& a, const Recommendation& b) {
              if (a.objective != b.objective) return a.objective < b.objective;
              // Tiebreakers: less space, then fewer indexes (lower latency).
              if (a.space.avg_total() != b.space.avg_total()) {
                return a.space.avg_total() < b.space.avg_total();
              }
              return a.num_indexes < b.num_indexes;
            });
  return candidates;
}

Result<Recommendation> AdviseWaveIndex(const model::CaseParams& params,
                                       int window,
                                       const AdvisorConstraints& constraints) {
  WAVEKIT_ASSIGN_OR_RETURN(std::vector<Recommendation> ranked,
                           RankWaveIndexOptions(params, window, constraints));
  if (ranked.empty()) {
    return Status::InvalidArgument(
        "no wave-index configuration satisfies the given constraints");
  }
  return ranked.front();
}

}  // namespace wavekit
