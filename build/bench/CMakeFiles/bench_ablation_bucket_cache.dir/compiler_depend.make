# Empty compiler generated dependencies file for bench_ablation_bucket_cache.
# This may be replaced when dependencies are built.
