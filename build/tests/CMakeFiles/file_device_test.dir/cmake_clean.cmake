file(REMOVE_RECURSE
  "CMakeFiles/file_device_test.dir/storage/file_device_test.cc.o"
  "CMakeFiles/file_device_test.dir/storage/file_device_test.cc.o.d"
  "file_device_test"
  "file_device_test.pdb"
  "file_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
