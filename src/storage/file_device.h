// FileDevice: a Device backed by a real file, for deployments that want the
// wave index persisted rather than simulated. Wrap it in a MeteredDevice
// exactly like a MemoryDevice; all higher layers are device-agnostic.

#ifndef WAVEKIT_STORAGE_FILE_DEVICE_H_
#define WAVEKIT_STORAGE_FILE_DEVICE_H_

#include <string>

#include "storage/device.h"
#include "util/result.h"

namespace wavekit {

/// \brief Device over one file, accessed with positional reads/writes.
///
/// The file is created (sparse) if absent and sized lazily up to `capacity`.
/// Reads of never-written ranges return zeros, matching MemoryDevice
/// semantics. Not thread-safe (like every wavekit Device).
class FileDevice : public Device {
 public:
  /// Opens (or creates) `path` with the given logical capacity.
  static Result<std::unique_ptr<FileDevice>> Open(const std::string& path,
                                                  uint64_t capacity);

  ~FileDevice() override;

  FileDevice(const FileDevice&) = delete;
  FileDevice& operator=(const FileDevice&) = delete;

  Status Read(uint64_t offset, std::span<std::byte> out) override;
  Status Write(uint64_t offset, std::span<const std::byte> data) override;
  Status WriteBatch(std::span<const Extent> extents,
                    std::span<const std::byte> data) override;
  uint64_t capacity() const override { return capacity_; }

  const std::string& path() const { return path_; }

  /// Flushes written data to stable storage (fdatasync).
  Status Sync();

 private:
  FileDevice(std::string path, int fd, uint64_t capacity);

  Status CheckRange(uint64_t offset, size_t length) const;

  std::string path_;
  int fd_;
  uint64_t capacity_;
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_FILE_DEVICE_H_
