# Empty compiler generated dependencies file for bench_table12_params.
# This may be replaced when dependencies are built.
