#include "util/crash_point.h"

#include <atomic>
#include <mutex>
#include <set>

namespace wavekit {
namespace {

struct Registry {
  std::mutex mutex;
  std::set<std::string, std::less<>> armed;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all threads
  return *registry;
}

std::atomic<size_t>& ArmedCount() {
  static std::atomic<size_t> count{0};
  return count;
}

}  // namespace

Status InjectedCrash(const std::string& where) {
  return Status::IOError(std::string(kInjectedCrashMarker) + " at " + where);
}

bool IsInjectedCrash(const Status& status) {
  return status.IsIOError() &&
         status.message().find(kInjectedCrashMarker) != std::string::npos;
}

void CrashPoints::Arm(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  if (registry.armed.insert(name).second) {
    ArmedCount().fetch_add(1, std::memory_order_relaxed);
  }
}

void CrashPoints::Reset() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.armed.clear();
  ArmedCount().store(0, std::memory_order_relaxed);
}

size_t CrashPoints::armed_count() {
  return ArmedCount().load(std::memory_order_relaxed);
}

Status CrashPoints::Check(std::string_view name) {
  if (ArmedCount().load(std::memory_order_relaxed) == 0) return Status::OK();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.armed.find(name);
  if (it == registry.armed.end()) return Status::OK();
  registry.armed.erase(it);  // fire once
  ArmedCount().fetch_sub(1, std::memory_order_relaxed);
  return InjectedCrash(std::string(name));
}

}  // namespace wavekit
