# Empty compiler generated dependencies file for wave_index_test.
# This may be replaced when dependencies are built.
