file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_usenet_volume.dir/bench_fig2_usenet_volume.cc.o"
  "CMakeFiles/bench_fig2_usenet_volume.dir/bench_fig2_usenet_volume.cc.o.d"
  "bench_fig2_usenet_volume"
  "bench_fig2_usenet_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_usenet_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
