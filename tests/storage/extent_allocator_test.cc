#include "storage/extent_allocator.h"

#include <gtest/gtest.h>

#include <vector>

#include "testing/test_env.h"
#include "util/random.h"

namespace wavekit {
namespace {

TEST(ExtentAllocatorTest, AllocatesFirstFit) {
  ExtentAllocator alloc(1000);
  ASSERT_OK_AND_ASSIGN(Extent a, alloc.Allocate(100));
  EXPECT_EQ(a.offset, 0u);
  EXPECT_EQ(a.length, 100u);
  ASSERT_OK_AND_ASSIGN(Extent b, alloc.Allocate(200));
  EXPECT_EQ(b.offset, 100u);
  EXPECT_EQ(alloc.allocated_bytes(), 300u);
  EXPECT_EQ(alloc.free_bytes(), 700u);
}

TEST(ExtentAllocatorTest, ZeroLengthAllocationIsEmpty) {
  ExtentAllocator alloc(100);
  ASSERT_OK_AND_ASSIGN(Extent e, alloc.Allocate(0));
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(alloc.free_bytes(), 100u);
  EXPECT_OK(alloc.Free(e));
}

TEST(ExtentAllocatorTest, ExhaustionFails) {
  ExtentAllocator alloc(100);
  ASSERT_OK_AND_ASSIGN(Extent a, alloc.Allocate(80));
  (void)a;
  Result<Extent> r = alloc.Allocate(50);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST(ExtentAllocatorTest, FreeCoalescesWithNeighbors) {
  ExtentAllocator alloc(300);
  ASSERT_OK_AND_ASSIGN(Extent a, alloc.Allocate(100));
  ASSERT_OK_AND_ASSIGN(Extent b, alloc.Allocate(100));
  ASSERT_OK_AND_ASSIGN(Extent c, alloc.Allocate(100));
  ASSERT_OK(alloc.Free(a));
  ASSERT_OK(alloc.Free(c));
  EXPECT_EQ(alloc.fragment_count(), 2u);
  ASSERT_OK(alloc.Free(b));  // merges both neighbors
  EXPECT_EQ(alloc.fragment_count(), 1u);
  EXPECT_EQ(alloc.free_bytes(), 300u);
  ASSERT_OK(alloc.CheckConsistency());
  // The whole space is allocatable again as one extent.
  ASSERT_OK_AND_ASSIGN(Extent all, alloc.Allocate(300));
  EXPECT_EQ(all.offset, 0u);
}

TEST(ExtentAllocatorTest, FragmentationBlocksLargeAllocation) {
  ExtentAllocator alloc(300);
  ASSERT_OK_AND_ASSIGN(Extent a, alloc.Allocate(100));
  ASSERT_OK_AND_ASSIGN(Extent b, alloc.Allocate(100));
  ASSERT_OK_AND_ASSIGN(Extent c, alloc.Allocate(100));
  (void)b;
  ASSERT_OK(alloc.Free(a));
  ASSERT_OK(alloc.Free(c));
  EXPECT_EQ(alloc.free_bytes(), 200u);
  EXPECT_EQ(alloc.largest_free_extent(), 100u);
  EXPECT_FALSE(alloc.Allocate(150).ok());  // free total would fit, but split
  ASSERT_OK_AND_ASSIGN(Extent d, alloc.Allocate(100));
  EXPECT_EQ(d.offset, 0u);  // first fit
}

TEST(ExtentAllocatorTest, DoubleFreeDetected) {
  ExtentAllocator alloc(100);
  ASSERT_OK_AND_ASSIGN(Extent a, alloc.Allocate(50));
  ASSERT_OK(alloc.Free(a));
  EXPECT_TRUE(alloc.Free(a).IsInvalidArgument());
  // Overlapping partial free is also rejected.
  ASSERT_OK_AND_ASSIGN(Extent b, alloc.Allocate(50));
  (void)b;
  EXPECT_TRUE(alloc.Free(Extent{25, 50}).IsInvalidArgument());
}

TEST(ExtentAllocatorTest, FreeBeyondCapacityRejected) {
  ExtentAllocator alloc(100);
  EXPECT_TRUE(alloc.Free(Extent{90, 20}).IsInvalidArgument());
}

TEST(ExtentAllocatorTest, SubdividedFreeIsAllowed) {
  // Callers may allocate one run and free sub-ranges (the packed build
  // pattern): the allocator accepts any currently-allocated byte range.
  ExtentAllocator alloc(100);
  ASSERT_OK_AND_ASSIGN(Extent run, alloc.Allocate(90));
  ASSERT_OK(alloc.Free(Extent{run.offset, 30}));
  ASSERT_OK(alloc.Free(Extent{run.offset + 60, 30}));
  ASSERT_OK(alloc.Free(Extent{run.offset + 30, 30}));
  EXPECT_EQ(alloc.free_bytes(), 100u);
  EXPECT_EQ(alloc.fragment_count(), 1u);
  ASSERT_OK(alloc.CheckConsistency());
}

TEST(ExtentAllocatorTest, PeakTracking) {
  ExtentAllocator alloc(1000);
  ASSERT_OK_AND_ASSIGN(Extent a, alloc.Allocate(100));
  alloc.ResetPeak();
  ASSERT_OK_AND_ASSIGN(Extent b, alloc.Allocate(400));
  ASSERT_OK(alloc.Free(a));
  EXPECT_EQ(alloc.allocated_bytes(), 400u);
  EXPECT_EQ(alloc.peak_allocated_bytes(), 500u);
  alloc.ResetPeak();
  EXPECT_EQ(alloc.peak_allocated_bytes(), 400u);
  ASSERT_OK(alloc.Free(b));
}

TEST(ExtentAllocatorTest, RandomizedAllocFreeStaysConsistent) {
  ExtentAllocator alloc(1 << 20);
  Rng rng(99);
  std::vector<Extent> live;
  for (int i = 0; i < 2000; ++i) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      uint64_t size = 1 + rng.Uniform(4096);
      Result<Extent> r = alloc.Allocate(size);
      if (r.ok()) live.push_back(std::move(r).ValueOrDie());
    } else {
      size_t pick = rng.Uniform(live.size());
      ASSERT_OK(alloc.Free(live[pick]));
      live.erase(live.begin() + static_cast<long>(pick));
    }
    if (i % 100 == 0) {
      ASSERT_OK(alloc.CheckConsistency());
    }
  }
  uint64_t live_bytes = 0;
  for (const Extent& e : live) live_bytes += e.length;
  EXPECT_EQ(alloc.allocated_bytes(), live_bytes);
  for (const Extent& e : live) ASSERT_OK(alloc.Free(e));
  EXPECT_EQ(alloc.free_bytes(), uint64_t{1} << 20);
  EXPECT_EQ(alloc.fragment_count(), 1u);
  ASSERT_OK(alloc.CheckConsistency());
}

TEST(ExtentAllocatorAlignedTest, AlignedOffsetsAndNoSpaceLeak) {
  ExtentAllocator alloc(1 << 20);
  // Misalign the free list: a 100-byte allocation leaves the next free
  // offset at 100.
  ASSERT_OK_AND_ASSIGN(Extent head, alloc.Allocate(100));
  ASSERT_OK_AND_ASSIGN(Extent aligned, alloc.AllocateAligned(8192, 4096));
  EXPECT_EQ(aligned.offset % 4096, 0u);
  EXPECT_EQ(aligned.offset, 4096u);
  EXPECT_EQ(aligned.length, 8192u);
  // The padding [100, 4096) stayed free: a small unaligned request reuses it.
  ASSERT_OK_AND_ASSIGN(Extent pad, alloc.AllocateAligned(500, 1));
  EXPECT_EQ(pad.offset, 100u);
  ASSERT_OK(alloc.CheckConsistency());
  ASSERT_OK(alloc.Free(head));
  ASSERT_OK(alloc.Free(aligned));
  ASSERT_OK(alloc.Free(pad));
  EXPECT_EQ(alloc.free_bytes(), uint64_t{1} << 20);
  EXPECT_EQ(alloc.fragment_count(), 1u);
}

TEST(ExtentAllocatorAlignedTest, DefaultAlignmentAppliesToPlainAllocate) {
  ExtentAllocator alloc(1 << 20);
  alloc.set_default_alignment(4096);
  EXPECT_EQ(alloc.default_alignment(), 4096u);
  ASSERT_OK_AND_ASSIGN(Extent a, alloc.Allocate(100));
  ASSERT_OK_AND_ASSIGN(Extent b, alloc.Allocate(100));
  EXPECT_EQ(a.offset % 4096, 0u);
  EXPECT_EQ(b.offset % 4096, 0u);
  EXPECT_NE(a.offset, b.offset);
  ASSERT_OK(alloc.CheckConsistency());
}

TEST(ExtentAllocatorAlignedTest, RejectsNonPowerOfTwoAlignment) {
  ExtentAllocator alloc(1 << 20);
  EXPECT_TRUE(alloc.AllocateAligned(100, 3000).status().IsInvalidArgument());
}

TEST(ExtentAllocatorAlignedTest, ExhaustionAccountsForPadding) {
  ExtentAllocator alloc(10000);
  ASSERT_OK_AND_ASSIGN(Extent head, alloc.Allocate(1));  // free list at 1
  // 9999 bytes remain but only 10000-4096 are usable at 4096 alignment.
  EXPECT_TRUE(
      alloc.AllocateAligned(8000, 4096).status().IsResourceExhausted());
  ASSERT_OK_AND_ASSIGN(Extent fit, alloc.AllocateAligned(5000, 4096));
  EXPECT_EQ(fit.offset, 4096u);
  ASSERT_OK(alloc.Free(head));
  ASSERT_OK(alloc.Free(fit));
  EXPECT_EQ(alloc.free_bytes(), 10000u);
}

TEST(ExtentAllocatorAlignedTest, RandomizedAlignedMixStaysConsistent) {
  ExtentAllocator alloc(1 << 20);
  Rng rng(1234);
  std::vector<Extent> live;
  for (int i = 0; i < 1500; ++i) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      const uint64_t size = 1 + rng.Uniform(4096);
      const uint64_t alignment = uint64_t{1} << rng.Uniform(13);
      Result<Extent> r = alloc.AllocateAligned(size, alignment);
      if (r.ok()) {
        EXPECT_EQ(r.ValueOrDie().offset % alignment, 0u);
        live.push_back(std::move(r).ValueOrDie());
      }
    } else {
      const size_t pick = rng.Uniform(live.size());
      ASSERT_OK(alloc.Free(live[pick]));
      live.erase(live.begin() + static_cast<long>(pick));
    }
    if (i % 100 == 0) ASSERT_OK(alloc.CheckConsistency());
  }
  for (const Extent& e : live) ASSERT_OK(alloc.Free(e));
  EXPECT_EQ(alloc.free_bytes(), uint64_t{1} << 20);
  ASSERT_OK(alloc.CheckConsistency());
}

}  // namespace
}  // namespace wavekit
