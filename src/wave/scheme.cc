#include "wave/scheme.h"

#include <algorithm>
#include <atomic>

#include "index/index_builder.h"
#include "update/in_place_updater.h"
#include "update/packed_shadow_updater.h"
#include "util/crash_point.h"
#include "util/histogram.h"
#include "util/macros.h"

namespace wavekit {

namespace internal {
namespace {
std::atomic<bool> g_window_invariant_mutation{false};
}  // namespace

void SetWindowInvariantMutationForTesting(bool enabled) {
  g_window_invariant_mutation.store(enabled, std::memory_order_relaxed);
}

bool WindowInvariantMutationForTesting() {
  return g_window_invariant_mutation.load(std::memory_order_relaxed);
}

}  // namespace internal

const char* SchemeKindName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kDel:
      return "DEL";
    case SchemeKind::kReindex:
      return "REINDEX";
    case SchemeKind::kReindexPlus:
      return "REINDEX+";
    case SchemeKind::kReindexPlusPlus:
      return "REINDEX++";
    case SchemeKind::kWata:
      return "WATA*";
    case SchemeKind::kRata:
      return "RATA*";
    case SchemeKind::kKnownBoundWata:
      return "KB-WATA";
  }
  return "?";
}

Scheme::Scheme(SchemeEnv env, SchemeConfig config)
    : env_(env),
      config_(config),
      updater_(MakeUpdater(config.technique)),
      jitter_rng_(env.retry.jitter_seed) {
  if (updater_ != nullptr) updater_->set_parallel(env_.maintenance);
}

Status Scheme::ValidateConfig() const {
  if (config_.window < 1) {
    return Status::InvalidArgument("window must be >= 1");
  }
  if (config_.num_indexes < 1 || config_.num_indexes > config_.window) {
    return Status::InvalidArgument(
        "number of indexes must satisfy 1 <= n <= W (n=" +
        std::to_string(config_.num_indexes) +
        ", W=" + std::to_string(config_.window) + ")");
  }
  if (env_.device == nullptr || env_.allocator == nullptr ||
      env_.day_store == nullptr) {
    return Status::InvalidArgument("scheme environment is incomplete");
  }
  return Status::OK();
}

Status Scheme::Start(std::vector<DayBatch> first_window) {
  if (started_) {
    return Status::FailedPrecondition("scheme already started");
  }
  WAVEKIT_RETURN_NOT_OK(ValidateConfig());
  if (static_cast<int>(first_window.size()) != config_.window) {
    return Status::InvalidArgument(
        "Start expects exactly W=" + std::to_string(config_.window) +
        " batches, got " + std::to_string(first_window.size()));
  }
  for (int i = 0; i < config_.window; ++i) {
    if (first_window[static_cast<size_t>(i)].day != i + 1) {
      return Status::InvalidArgument("Start batches must cover days 1..W in order");
    }
  }
  for (DayBatch& batch : first_window) {
    WAVEKIT_RETURN_NOT_OK(env_.day_store->Put(std::move(batch)));
  }
  current_day_ = config_.window;
  {
    MultiPhaseScope scope(AllDevices(), Phase::kStart);
    WAVEKIT_RETURN_NOT_OK(DoStart());
  }
  started_ = true;
  env_.day_store->Prune(OldestDayNeeded());
  return Status::OK();
}

Status Scheme::Transition(DayBatch new_day) {
  if (!started_) {
    return Status::FailedPrecondition("scheme not started");
  }
  if (needs_recovery_) {
    return Status::FailedPrecondition(
        "a previous transition failed partway; reload the wave index from "
        "its last checkpoint and Adopt a fresh scheme (wave/recovery.h)");
  }
  if (new_day.day != current_day_ + 1) {
    return Status::InvalidArgument(
        "Transition expects day " + std::to_string(current_day_ + 1) +
        ", got " + std::to_string(new_day.day));
  }
  const Day day = new_day.day;
  WAVEKIT_RETURN_NOT_OK(env_.day_store->Put(std::move(new_day)));
  current_day_ = day;
  if (internal::WindowInvariantMutationForTesting() && day % 3 == 0) {
    // Deliberate bug (mutation testing only): claim the transition happened
    // without running it — the window neither gains the new day nor sheds
    // the expired one. The simulation harness must catch this.
    return Status::OK();
  }
  WAVEKIT_ASSIGN_OR_RETURN(const DayBatch* batch, env_.day_store->Get(day));
  const Status status = DoTransition(*batch);
  if (!status.ok()) {
    // The transition may have completed some primitives: slot state is
    // suspect until recovery, and current_day_ reverts to the last day that
    // was fully incorporated. The wave keeps serving (shadow updates never
    // mutated registered constituents), but the slot that was due to shed
    // the expired day now serves a stale cluster — mark it so queries
    // surface the degradation as a partial result.
    needs_recovery_ = true;
    current_day_ = day - 1;
    if (status.IsIOError()) {
      const Result<size_t> stale = FindSlotContaining(day - config_.window);
      if (stale.ok() && wave_.Contains(slots_[stale.ValueOrDie()].get())) {
        MarkUnhealthy(slots_[stale.ValueOrDie()].get());
      }
    }
    return status;
  }
  env_.day_store->Prune(OldestDayNeeded());
  return Status::OK();
}

FaultStats Scheme::fault_stats() const {
  FaultStats out;
  out.transient_io_errors =
      transient_io_errors_.load(std::memory_order_relaxed);
  out.retries = retries_.load(std::memory_order_relaxed);
  out.retries_exhausted = retries_exhausted_.load(std::memory_order_relaxed);
  out.constituents_marked_unhealthy =
      marked_unhealthy_.load(std::memory_order_relaxed);
  return out;
}

Status Scheme::RetryTransient(std::string_view op,
                              const std::function<Status()>& body) {
  const int max_attempts = std::max(env_.retry.max_attempts, 1);
  uint64_t backoff_us = env_.retry.initial_backoff_us;
  Status status;
  for (int attempt = 1;; ++attempt) {
    status = body();
    // Only transient I/O errors are worth another attempt. Injected crashes
    // model the process dying — recovery, not retry, handles those.
    if (status.ok() || !status.IsIOError() || IsInjectedCrash(status)) {
      return status;
    }
    transient_io_errors_.fetch_add(1, std::memory_order_relaxed);
    if (attempt >= max_attempts) break;
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (env_.events != nullptr) {
      env_.events->Append(obs::EventType::kRetry, current_day_ + 1,
                          status.message(),
                          {{"op", std::string(op)},
                           {"attempt", std::to_string(attempt)}});
    }
    if (backoff_us > 0) {
      uint64_t sleep_us = backoff_us;
      if (env_.retry.decorrelated_jitter) {
        // Decorrelated jitter [Brooker, "Exponential Backoff and Jitter"]:
        // draw from [initial, 3 * previous sleep], capped. Desynchronizes
        // concurrent retry streams; the seeded stream keeps runs replayable.
        const uint64_t lo = std::max<uint64_t>(env_.retry.initial_backoff_us, 1);
        const uint64_t hi = std::max(lo, std::min(env_.retry.max_backoff_us,
                                                  backoff_us * 3));
        sleep_us = static_cast<uint64_t>(jitter_rng_.UniformRange(
            static_cast<int64_t>(lo), static_cast<int64_t>(hi)));
        backoff_us = sleep_us;
      } else {
        backoff_us = std::min(env_.retry.max_backoff_us, backoff_us * 2);
      }
      if (env_.retry_backoff_us != nullptr) {
        env_.retry_backoff_us->Record(sleep_us);
      }
      // Injected clock: real time in production, virtual (free) time under
      // the deterministic simulation harness.
      Clock* clock =
          env_.clock != nullptr ? env_.clock : RealClock::Instance();
      clock->SleepUs(sleep_us);
    }
  }
  retries_exhausted_.fetch_add(1, std::memory_order_relaxed);
  return status.WithContext(std::string(op) + " failed after " +
                            std::to_string(max_attempts) + " attempt(s)");
}

Result<Scheme::HealReport> Scheme::HealUnhealthy() {
  if (!started_) {
    return Status::FailedPrecondition("scheme not started");
  }
  if (needs_recovery_) {
    return Status::FailedPrecondition(
        "a previous transition failed partway; run checkpoint recovery "
        "(wave/recovery.h) before healing");
  }
  HealReport report;
  for (size_t j = 0; j < slots_.size(); ++j) {
    ConstituentIndex* const sick = slots_[j].get();
    if (sick == nullptr || sick->healthy()) continue;
    if (!wave_.Contains(sick)) continue;
    // The rebuild sources the slot's cluster from the day store. If any day
    // was already pruned (or never re-fed after the corruption), there is
    // nothing to rebuild from — leave the slot quarantined and report it.
    bool have_all_days = true;
    for (Day day : sick->time_set()) {
      if (!env_.day_store->Has(day)) {
        have_all_days = false;
        break;
      }
    }
    if (!have_all_days) {
      ++report.skipped;
      continue;
    }
    if (env_.events != nullptr) {
      env_.events->Append(obs::EventType::kHealStart, current_day_,
                          std::string(sick->name()),
                          {{"slot", std::to_string(j)},
                           {"days", std::to_string(sick->time_set().size())}});
    }
    // BuildIndex is the paper's primitive: a fresh packed index over the
    // cluster's segment data, placed slot-stably (constituent j stays on
    // disk j). The corrupt object keeps serving the healthy remainder of
    // the wave until the swap; it is destroyed when the last query snapshot
    // releases it.
    WAVEKIT_ASSIGN_OR_RETURN(
        std::shared_ptr<ConstituentIndex> rebuilt,
        BuildIndex(sick->time_set(), std::string(sick->name()), Phase::kOther,
                   static_cast<int>(j)));
    WAVEKIT_RETURN_NOT_OK(ReplaceSlot(j, rebuilt));
    ++report.healed;
    report.healed_names.push_back(std::string(rebuilt->name()));
    if (env_.events != nullptr) {
      env_.events->Append(obs::EventType::kHealComplete, current_day_,
                          std::string(rebuilt->name()),
                          {{"slot", std::to_string(j)},
                           {"entries", std::to_string(rebuilt->entry_count())}});
    }
  }
  return report;
}

void Scheme::MarkUnhealthy(ConstituentIndex* index) {
  if (index == nullptr || !index->healthy()) return;
  index->set_healthy(false);
  marked_unhealthy_.fetch_add(1, std::memory_order_relaxed);
}

Status Scheme::Adopt(WaveIndex wave, Day current_day) {
  if (started_) {
    return Status::FailedPrecondition("scheme already started");
  }
  WAVEKIT_RETURN_NOT_OK(ValidateConfig());
  if (wave.num_constituents() == 0) {
    return Status::InvalidArgument("cannot adopt an empty wave index");
  }
  const TimeSet covered = wave.CoveredDays();
  const Day oldest_window_day = current_day - config_.window + 1;
  for (Day d = oldest_window_day; d <= current_day; ++d) {
    if (!covered.contains(d)) {
      return Status::InvalidArgument(
          "adopted wave index does not cover day " + std::to_string(d) +
          " of the window ending at " + std::to_string(current_day));
    }
  }
  if (*covered.rbegin() > current_day) {
    return Status::InvalidArgument("adopted wave index contains future days");
  }
  if (hard_window() && *covered.begin() < oldest_window_day) {
    return Status::InvalidArgument(
        "hard-window scheme cannot adopt an index holding expired days");
  }
  for (const auto& constituent : wave.constituents()) {
    if (constituent->time_set().empty()) {
      return Status::InvalidArgument("adopted constituent covers no days");
    }
  }

  wave_ = std::move(wave);
  slots_ = wave_.constituents();
  // Slot order: oldest cluster first (the order Start would have produced,
  // and the order the WATA family's rotation logic expects).
  std::sort(slots_.begin(), slots_.end(),
            [](const std::shared_ptr<ConstituentIndex>& a,
               const std::shared_ptr<ConstituentIndex>& b) {
              return *a->time_set().begin() < *b->time_set().begin();
            });
  current_day_ = current_day;
  WAVEKIT_RETURN_NOT_OK(DoAdopt());
  started_ = true;
  env_.day_store->Prune(OldestDayNeeded());
  return Status::OK();
}

Status Scheme::DoAdopt() {
  if (static_cast<int>(slots_.size()) != config_.num_indexes) {
    return Status::InvalidArgument(
        "adopted wave index has " + std::to_string(slots_.size()) +
        " constituents; this scheme is configured for n=" +
        std::to_string(config_.num_indexes));
  }
  return Status::OK();
}

Day Scheme::OldestDayNeeded() const {
  // The hard window covers every re-index the scheme family may run
  // (REINDEX family, RATA; WATA needs only the incoming day, but keeping
  // the window is harmless). Self-healing adds a second consumer: a
  // quarantined constituent is rebuilt from the batches of EVERY day it
  // covers (HealUnhealthy), and soft-window constituents legitimately cover
  // expired days, so retention extends to the wave's oldest covered day.
  Day oldest = current_day_ - config_.window + 1;
  const TimeSet covered = wave_.CoveredDays();
  if (!covered.empty() && *covered.begin() < oldest) {
    oldest = *covered.begin();
  }
  return oldest;
}

uint64_t Scheme::TemporaryBytes() const {
  uint64_t bytes = 0;
  for (const ConstituentIndex* temp : TemporaryIndexes()) {
    bytes += temp->allocated_bytes();
  }
  return bytes;
}

obs::Span Scheme::TraceOp(std::string_view name) const {
  return env_.tracer != nullptr ? env_.tracer->StartSpan(name) : obs::Span();
}

Result<std::vector<const DayBatch*>> Scheme::GetBatches(
    const TimeSet& days) const {
  std::vector<const DayBatch*> batches;
  batches.reserve(days.size());
  for (Day day : days) {
    WAVEKIT_ASSIGN_OR_RETURN(const DayBatch* batch, env_.day_store->Get(day));
    batches.push_back(batch);
  }
  return batches;
}

Result<std::shared_ptr<ConstituentIndex>> Scheme::BuildIndex(
    const TimeSet& days, std::string name, Phase phase, int placement_hint) {
  obs::Span span = TraceOp("BuildIndex");
  WAVEKIT_ASSIGN_OR_RETURN(std::vector<const DayBatch*> batches,
                           GetBatches(days));
  uint64_t entries = 0;
  for (const DayBatch* batch : batches) entries += batch->EntryCount();
  const SchemeEnv::Disk disk = NextDisk(placement_hint);
  MultiPhaseScope scope(AllDevices(), phase);
  // A failed packed build frees everything it allocated, so the attempt is
  // all-or-nothing and safe to retry on transient I/O errors.
  std::shared_ptr<ConstituentIndex> index;
  WAVEKIT_RETURN_NOT_OK(RetryTransient("BuildIndex", [&] {
    Result<std::unique_ptr<ConstituentIndex>> built =
        IndexBuilder::BuildPacked(IoDeviceFor(disk), disk.allocator,
                                  IndexOptions(), batches, name,
                                  env_.maintenance);
    if (!built.ok()) return built.status();
    index = std::move(built).ValueOrDie();
    return Status::OK();
  }));
  op_log_.Record(OpRecord{OpKind::kBuildIndex, phase, current_day_,
                          static_cast<int>(days.size()), 0, entries});
  return index;
}

Status Scheme::AddToIndex(const TimeSet& days,
                          std::shared_ptr<ConstituentIndex>* index,
                          Phase phase) {
  return UpdateIndex(days, TimeSet{}, index, phase);
}

Status Scheme::DeleteFromIndex(const TimeSet& days,
                               std::shared_ptr<ConstituentIndex>* index,
                               Phase phase) {
  return UpdateIndex(TimeSet{}, days, index, phase);
}

Status Scheme::UpdateIndex(const TimeSet& add_days, const TimeSet& delete_days,
                           std::shared_ptr<ConstituentIndex>* index,
                           Phase phase) {
  if (add_days.empty() && delete_days.empty()) return Status::OK();
  obs::Span span = TraceOp(delete_days.empty()   ? "AddToIndex"
                           : add_days.empty()    ? "DeleteFromIndex"
                                                 : "UpdateIndex");
  WAVEKIT_ASSIGN_OR_RETURN(std::vector<const DayBatch*> batches,
                           GetBatches(add_days));
  uint64_t add_entries = 0;
  for (const DayBatch* batch : batches) add_entries += batch->EntryCount();
  uint64_t delete_entries = 0;
  for (Day day : delete_days) {
    // Expired batches may already be pruned from the store; count what we can.
    if (env_.day_store->Has(day)) {
      delete_entries +=
          std::move(env_.day_store->Get(day)).ValueOrDie()->EntryCount();
    }
  }
  const int target_days = static_cast<int>((*index)->time_set().size());
  const uint64_t target_entries = (*index)->entry_count();
  ConstituentIndex* const before = index->get();
  // Registered constituents are updated with the configured technique (they
  // must stay queryable through the update); temporary indexes are never
  // queried, so they are always updated in place.
  const bool is_constituent = wave_.Contains(before);
  InPlaceUpdater in_place;
  Updater* updater = is_constituent ? updater_.get() : &in_place;
  // Shadow updates build a replacement and swap only on success, so they are
  // safe to retry; an in-place update mutates the target, so retrying could
  // double-apply entries.
  const bool retryable =
      updater->kind() != UpdateTechniqueKind::kInPlace;
  Status applied;
  {
    MultiPhaseScope scope(AllDevices(), phase);
    applied = retryable
                  ? RetryTransient("UpdateIndex",
                                   [&] {
                                     return updater->Apply(index, batches,
                                                           delete_days);
                                   })
                  : updater->Apply(index, batches, delete_days);
  }
  if (!applied.ok()) {
    // The constituent's bytes are intact (the shadow died before the swap),
    // but it now cannot follow the window — flag it for degraded serving.
    if (applied.IsIOError() && is_constituent) MarkUnhealthy(before);
    return applied;
  }
  // Shadow techniques replaced the object: keep the wave index in sync.
  if (index->get() != before && is_constituent) {
    WAVEKIT_RETURN_NOT_OK(wave_.ReplaceIndex(before, *index));
  }
  // Log what physically happened, decomposed so the analytic evaluator can
  // price each piece: shadow techniques first pay a (smart) copy of the
  // target, then the adds/deletes are priced per their apply mode.
  ApplyMode add_mode = ApplyMode::kIncremental;
  ApplyMode delete_mode = ApplyMode::kIncremental;
  switch (updater->kind()) {
    case UpdateTechniqueKind::kInPlace:
      break;
    case UpdateTechniqueKind::kSimpleShadow:
      op_log_.Record(OpRecord{OpKind::kCopyIndex, phase, current_day_,
                              target_days, 0, target_entries});
      break;
    case UpdateTechniqueKind::kPackedShadow:
      op_log_.Record(OpRecord{OpKind::kSmartCopyIndex, phase, current_day_,
                              target_days, 0, target_entries});
      add_mode = ApplyMode::kRebuild;   // inserts cost Build, not Add
      delete_mode = ApplyMode::kMerged;  // deletes folded into the smart copy
      break;
  }
  if (!add_days.empty()) {
    op_log_.Record(OpRecord{OpKind::kAddToIndex, phase, current_day_,
                            static_cast<int>(add_days.size()), target_days,
                            add_entries, add_mode});
  }
  if (!delete_days.empty()) {
    op_log_.Record(OpRecord{OpKind::kDeleteFromIndex, phase, current_day_,
                            static_cast<int>(delete_days.size()), target_days,
                            delete_entries, delete_mode});
  }
  return Status::OK();
}

Status Scheme::PackIndex(std::shared_ptr<ConstituentIndex>* index,
                         Phase phase) {
  obs::Span span = TraceOp("PackIndex");
  const int op_days = static_cast<int>((*index)->time_set().size());
  const uint64_t entries = (*index)->entry_count();
  ConstituentIndex* const before = index->get();
  PackedShadowUpdater packer;
  packer.set_parallel(env_.maintenance);
  Status packed;
  {
    MultiPhaseScope scope(AllDevices(), phase);
    packed = RetryTransient(
        "PackIndex", [&] { return packer.Apply(index, {}, TimeSet{}); });
  }
  if (!packed.ok()) {
    if (packed.IsIOError() && wave_.Contains(before)) MarkUnhealthy(before);
    return packed;
  }
  if (index->get() != before && wave_.Contains(before)) {
    WAVEKIT_RETURN_NOT_OK(wave_.ReplaceIndex(before, *index));
  }
  op_log_.Record(OpRecord{OpKind::kSmartCopyIndex, phase, current_day_,
                          op_days, 0, entries});
  return Status::OK();
}

Result<std::shared_ptr<ConstituentIndex>> Scheme::CopyIndex(
    const ConstituentIndex& source, std::string name, Phase phase) {
  obs::Span span = TraceOp("CopyIndex");
  MultiPhaseScope scope(AllDevices(), phase);
  // Clone frees its partial copy on failure: all-or-nothing, retryable.
  std::shared_ptr<ConstituentIndex> copy;
  WAVEKIT_RETURN_NOT_OK(RetryTransient("CopyIndex", [&] {
    Result<std::unique_ptr<ConstituentIndex>> cloned =
        source.Clone(name, env_.maintenance);
    if (!cloned.ok()) return cloned.status();
    copy = std::move(cloned).ValueOrDie();
    return Status::OK();
  }));
  op_log_.Record(OpRecord{OpKind::kCopyIndex, phase, current_day_,
                          static_cast<int>(source.time_set().size()), 0,
                          source.entry_count()});
  return copy;
}

Status Scheme::DropIndex(const std::shared_ptr<ConstituentIndex>& index) {
  obs::Span span = TraceOp("DropIndex");
  op_log_.Record(OpRecord{OpKind::kDropIndex, Phase::kTransition, current_day_,
                          static_cast<int>(index->time_set().size()), 0,
                          index->entry_count()});
  if (wave_.Contains(index.get())) {
    WAVEKIT_RETURN_NOT_OK(wave_.RemoveIndex(index.get()));
  }
  // Space is reclaimed by ~ConstituentIndex when the last reference drops:
  // immediately, in the usual single-threaded case, once the caller releases
  // its pointer; later, if a query snapshot (WaveService) still holds the
  // index. Destroying eagerly here would yank buckets out from under such
  // readers.
  return Status::OK();
}

void Scheme::LogRename(const ConstituentIndex& index) {
  op_log_.Record(OpRecord{OpKind::kRename, Phase::kTransition, current_day_,
                          static_cast<int>(index.time_set().size()), 0,
                          index.entry_count()});
}

Result<size_t> Scheme::FindSlotContaining(Day day) const {
  for (size_t j = 0; j < slots_.size(); ++j) {
    if (slots_[j]->time_set().contains(day)) return j;
  }
  return Status::NotFound("no constituent index covers day " +
                          std::to_string(day));
}

Status Scheme::ReplaceSlot(size_t j, std::shared_ptr<ConstituentIndex> with) {
  if (j >= slots_.size()) {
    return Status::InvalidArgument("slot out of range");
  }
  WAVEKIT_RETURN_NOT_OK(wave_.ReplaceIndex(slots_[j].get(), with));
  slots_[j] = std::move(with);
  return Status::OK();
}

void Scheme::RegisterSlots() {
  for (const auto& slot : slots_) wave_.AddIndex(slot);
}

std::vector<TimeSet> Scheme::SplitWindow(int window, int num_indexes) {
  std::vector<TimeSet> clusters(static_cast<size_t>(num_indexes));
  const int base = window / num_indexes;
  const int extra = window % num_indexes;  // first `extra` clusters get +1
  Day next = 1;
  for (int i = 0; i < num_indexes; ++i) {
    const int size = base + (i < extra ? 1 : 0);
    for (int k = 0; k < size; ++k) clusters[static_cast<size_t>(i)].insert(next++);
  }
  return clusters;
}

std::vector<TimeSet> Scheme::SplitWataWindow(int window, int num_indexes) {
  // Days 1..W-1 over clusters 1..n-1; day W alone in cluster n.
  std::vector<TimeSet> clusters = SplitWindow(window - 1, num_indexes - 1);
  clusters.emplace_back(TimeSet{static_cast<Day>(window)});
  return clusters;
}

ConstituentIndex::Options Scheme::IndexOptions() const {
  return ConstituentIndex::Options{config_.directory, config_.growth,
                                   config_.verify_checksums, env_.integrity,
                                   config_.codec};
}

SchemeEnv::Disk Scheme::NextDisk(int placement_hint) {
  if (env_.disks.empty()) {
    return SchemeEnv::Disk{env_.device, env_.allocator};
  }
  if (placement_hint >= 0) {
    return env_.disks[static_cast<size_t>(placement_hint) %
                      env_.disks.size()];
  }
  const SchemeEnv::Disk disk = env_.disks[next_disk_ % env_.disks.size()];
  ++next_disk_;
  return disk;
}

Device* Scheme::IoDeviceFor(const SchemeEnv::Disk& disk) const {
  if (env_.io_device != nullptr && disk.device == env_.device) {
    return env_.io_device;
  }
  return disk.device;
}

std::shared_ptr<ConstituentIndex> Scheme::NewEmptyIndex(std::string name) {
  const SchemeEnv::Disk disk = NextDisk();
  return std::make_shared<ConstituentIndex>(IoDeviceFor(disk), disk.allocator,
                                            IndexOptions(), std::move(name));
}

std::vector<MeteredDevice*> Scheme::AllDevices() const {
  std::vector<MeteredDevice*> devices = {env_.device};
  for (const SchemeEnv::Disk& disk : env_.disks) {
    if (std::find(devices.begin(), devices.end(), disk.device) ==
        devices.end()) {
      devices.push_back(disk.device);
    }
  }
  return devices;
}

}  // namespace wavekit
