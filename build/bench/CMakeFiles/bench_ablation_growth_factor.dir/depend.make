# Empty dependencies file for bench_ablation_growth_factor.
# This may be replaced when dependencies are built.
