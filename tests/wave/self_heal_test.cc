// Online self-healing of corrupt constituents, end to end: scrub detection
// quarantines and degrades, queries keep answering (partial results, never
// corrupt data), Heal rebuilds the constituent from surviving segment data
// and republishes, DurableMaintenance::Heal commits the repair with a
// durable checkpoint, and restart-time recovery revalidates checksums and
// quarantines what fails.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "obs/event_journal.h"
#include "storage/fault_injecting_device.h"
#include "testing/test_env.h"
#include "util/clock.h"
#include "wave/recovery.h"
#include "wave/scheme_factory.h"
#include "wave/wave_service.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;
using testing::ReferenceIndex;

constexpr int kWindow = 6;
constexpr int kNumIndexes = 3;

// The expected window contents at `day`.
ReferenceIndex Reference(Day day) {
  ReferenceIndex reference;
  for (Day d = day - kWindow + 1; d <= day; ++d) {
    reference.Add(MakeMixedBatch(d));
  }
  return reference;
}

void ExpectExactAnswers(const WaveService& service) {
  const Day day = service.current_day();
  const ReferenceIndex reference = Reference(day);
  const DayRange range = DayRange::Window(day, kWindow);
  std::vector<Entry> out;
  QueryStats stats;
  ASSERT_OK(service.TimedIndexProbe(range, "alpha", &out, &stats));
  EXPECT_EQ(stats.indexes_unhealthy, 0);
  ReferenceIndex::Sort(&out);
  EXPECT_EQ(out, reference.Probe("alpha", day - kWindow + 1, day));

  std::vector<Entry> scanned;
  ASSERT_OK(service.TimedSegmentScan(
      range, [&](const Value&, const Entry& e) { scanned.push_back(e); }));
  ReferenceIndex::Sort(&scanned);
  EXPECT_EQ(scanned, reference.ScanAll(day - kWindow + 1, day));
}

class SelfHealServiceTest : public ::testing::Test {
 protected:
  WaveService::Options ServiceOptions() {
    WaveService::Options options;
    options.scheme = SchemeKind::kWata;
    options.config.window = kWindow;
    options.config.num_indexes = kNumIndexes;
    options.config.technique = UpdateTechniqueKind::kSimpleShadow;
    options.device_capacity = uint64_t{1} << 26;
    options.event_ring_capacity = 128;
    options.device_interposer = [this](Device* inner) {
      auto faulty = std::make_unique<FaultInjectingDevice>(inner);
      faulty_ = faulty.get();
      return faulty;
    };
    return options;
  }

  void StartService(WaveService::Options options) {
    ASSERT_OK_AND_ASSIGN(service_, WaveService::Create(std::move(options)));
    std::vector<DayBatch> first;
    for (Day d = 1; d <= kWindow; ++d) first.push_back(MakeMixedBatch(d));
    ASSERT_OK(service_->Start(std::move(first)));
    ASSERT_OK(service_->AdvanceDay(MakeMixedBatch(kWindow + 1)));
  }

  // Targeted rot in the newest constituent's first live bucket (the newest
  // cluster's days are always still in the day store, so it is healable).
  void CorruptOneBucket() {
    auto snapshot = service_->Snapshot();
    const auto& constituents = snapshot->constituents();
    for (auto it = constituents.rbegin(); it != constituents.rend(); ++it) {
      Extent live{0, 0};
      ASSERT_OK((*it)->ForEachBucket(
          [&](const Value&, const BucketInfo& info) {
            if (live.length == 0 && info.count > 0) {
              live = Extent{info.extent.offset,
                            uint64_t{info.count} * kEntrySize};
            }
          }));
      if (live.length == 0) continue;
      victim_ = (*it).get();
      ASSERT_OK(faulty_->CorruptRange(live, /*salt=*/7, /*bits=*/1));
      return;
    }
    FAIL() << "no live bucket to corrupt";
  }

  std::unique_ptr<WaveService> service_;
  FaultInjectingDevice* faulty_ = nullptr;
  const ConstituentIndex* victim_ = nullptr;
};

TEST_F(SelfHealServiceTest, ScrubDetectsQuarantinesThenHealRestores) {
  StartService(ServiceOptions());
  CorruptOneBucket();

  ASSERT_OK_AND_ASSIGN(ScrubReport report, service_->Scrub());
  EXPECT_EQ(report.mismatches, 1u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_TRUE(victim_->corrupt());
  EXPECT_TRUE(service_->degraded());
  EXPECT_NE(service_->degraded_detail().find("quarantined"),
            std::string::npos);

  // Degraded serving: queries answer from the healthy remainder and say so.
  std::vector<Entry> scanned;
  QueryStats stats;
  Status status = service_->TimedSegmentScan(
      DayRange::Window(service_->current_day(), kWindow),
      [&](const Value&, const Entry& e) { scanned.push_back(e); }, &stats);
  EXPECT_TRUE(status.IsPartialResult()) << status;
  EXPECT_GE(stats.indexes_unhealthy, 1);

  ServiceMetrics metrics = service_->Metrics();
  EXPECT_EQ(metrics.corruptions_detected, 1u);
  EXPECT_EQ(metrics.quarantines, 1u);
  EXPECT_EQ(metrics.scrub_passes, 1u);
  EXPECT_GT(metrics.scrub_extents, 0u);

  // Heal: rebuilt from segment data, republished, degraded flag cleared.
  ASSERT_OK_AND_ASSIGN(Scheme::HealReport healed, service_->Heal());
  EXPECT_EQ(healed.healed, 1);
  EXPECT_EQ(healed.skipped, 0);
  EXPECT_FALSE(service_->degraded());
  EXPECT_TRUE(service_->degraded_detail().empty());
  EXPECT_EQ(service_->Metrics().constituents_healed, 1u);
  ExpectExactAnswers(*service_);

  // The maintenance lifecycle was journaled.
  bool saw_detect = false, saw_quarantine = false, saw_heal = false;
  for (const obs::Event& e : service_->events()->Events()) {
    saw_detect |= e.type == obs::EventType::kCorruptionDetected;
    saw_quarantine |= e.type == obs::EventType::kQuarantine;
    saw_heal |= e.type == obs::EventType::kHealComplete;
  }
  EXPECT_TRUE(saw_detect);
  EXPECT_TRUE(saw_quarantine);
  EXPECT_TRUE(saw_heal);
}

TEST_F(SelfHealServiceTest, AutoHealRepairsInsideTheScrub) {
  WaveService::Options options = ServiceOptions();
  options.auto_heal = true;
  StartService(std::move(options));
  CorruptOneBucket();

  ASSERT_OK_AND_ASSIGN(ScrubReport report, service_->Scrub());
  EXPECT_EQ(report.mismatches, 1u);
  // The scrub itself healed and republished before returning.
  EXPECT_FALSE(service_->degraded());
  EXPECT_EQ(service_->Metrics().constituents_healed, 1u);
  ExpectExactAnswers(*service_);
}

TEST_F(SelfHealServiceTest, PeriodicScrubRunsOnTheMaintenancePath) {
  SimClock clock;
  WaveService::Options options = ServiceOptions();
  options.clock = &clock;
  options.scrub_interval_us = 1000;
  options.auto_heal = true;
  StartService(std::move(options));
  EXPECT_EQ(service_->Metrics().scrub_passes, 0u);

  // Within the interval: the advance does not scrub.
  ASSERT_OK(service_->AdvanceDay(MakeMixedBatch(kWindow + 2)));
  EXPECT_EQ(service_->Metrics().scrub_passes, 0u);

  // Past the interval: the next advance scrubs — and heals what it finds.
  CorruptOneBucket();
  clock.Advance(1500);
  ASSERT_OK(service_->AdvanceDay(MakeMixedBatch(kWindow + 3)));
  ServiceMetrics metrics = service_->Metrics();
  EXPECT_EQ(metrics.scrub_passes, 1u);
  EXPECT_EQ(metrics.corruptions_detected, 1u);
  EXPECT_EQ(metrics.constituents_healed, 1u);
  EXPECT_FALSE(service_->degraded());
  ExpectExactAnswers(*service_);
}

TEST_F(SelfHealServiceTest, ReadPathDetectionQuarantinesAndHealRestores) {
  StartService(ServiceOptions());
  CorruptOneBucket();

  // No scrub: the first query that touches the rotted bucket trips the
  // checksum. The answer is degraded (partial), NEVER silently wrong.
  QueryStats stats;
  Status status = service_->TimedSegmentScan(
      DayRange::Window(service_->current_day(), kWindow),
      [](const Value&, const Entry&) {}, &stats);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsPartialResult() || status.IsDataLoss()) << status;
  EXPECT_TRUE(victim_->corrupt());

  ASSERT_OK_AND_ASSIGN(Scheme::HealReport healed, service_->Heal());
  EXPECT_EQ(healed.healed, 1);
  ExpectExactAnswers(*service_);
}

// --- Scheme / durable-protocol level ---------------------------------------

SchemeConfig SchemeTestConfig() {
  SchemeConfig config;
  config.window = kWindow;
  config.num_indexes = kNumIndexes;
  config.technique = UpdateTechniqueKind::kSimpleShadow;
  return config;
}

TEST(SelfHealSchemeTest, HealSkipsWhenSourceDaysWerePruned) {
  MemoryDevice memory(uint64_t{1} << 26);
  MeteredDevice metered(&memory);
  ExtentAllocator allocator(memory.capacity());
  DayStore day_store;
  SchemeEnv env{&metered, &allocator, &day_store};
  ASSERT_OK_AND_ASSIGN(auto scheme,
                       MakeScheme(SchemeKind::kWata, env, SchemeTestConfig()));
  std::vector<DayBatch> first;
  for (Day d = 1; d <= kWindow; ++d) first.push_back(MakeMixedBatch(d));
  ASSERT_OK(scheme->Start(std::move(first)));

  scheme->wave().constituents()[0]->Quarantine();
  day_store.Prune(/*oldest_needed=*/1000);  // production pruned aggressively

  ASSERT_OK_AND_ASSIGN(Scheme::HealReport report, scheme->HealUnhealthy());
  EXPECT_EQ(report.healed, 0);
  EXPECT_EQ(report.skipped, 1);
  // Still quarantined: the operator must restore from a replica or accept
  // degraded serving.
  EXPECT_FALSE(scheme->wave().constituents()[0]->healthy());
}

TEST(SelfHealDurableTest, HealCommitsADurableCheckpointAndRecoveryIsClean) {
  const std::string prefix = ::testing::TempDir() + "wavekit_self_heal";
  DurableMaintenance::Paths paths{prefix + "_CHECKPOINT", prefix + "_JOURNAL"};
  std::remove(paths.checkpoint.c_str());
  std::remove(paths.journal.c_str());

  MemoryDevice memory(uint64_t{1} << 26);
  MeteredDevice metered(&memory);
  ExtentAllocator allocator(memory.capacity());
  DayStore day_store;
  SchemeEnv env{&metered, &allocator, &day_store};
  ASSERT_OK_AND_ASSIGN(auto scheme,
                       MakeScheme(SchemeKind::kWata, env, SchemeTestConfig()));
  DurableMaintenance maintenance(scheme.get(), paths);
  std::vector<DayBatch> first;
  for (Day d = 1; d <= kWindow; ++d) first.push_back(MakeMixedBatch(d));
  ASSERT_OK(maintenance.Start(std::move(first)));

  // Rot, detect via a scan, heal through the durable protocol.
  const auto& victim = scheme->wave().constituents().back();
  Extent live{0, 0};
  ASSERT_OK(victim->ForEachBucket([&](const Value&, const BucketInfo& info) {
    if (live.length == 0 && info.count > 0) {
      live = Extent{info.extent.offset, uint64_t{info.count} * kEntrySize};
    }
  }));
  ASSERT_GT(live.length, 0u);
  std::vector<std::byte> buf(static_cast<size_t>(live.length));
  ASSERT_OK(memory.Read(live.offset, buf));
  buf[1] ^= std::byte{0x04};
  ASSERT_OK(memory.Write(live.offset, buf));
  Status scan = scheme->wave().TimedSegmentScan(
      DayRange::All(), [](const Value&, const Entry&) {});
  EXPECT_FALSE(scan.ok());
  ASSERT_TRUE(victim->corrupt());

  ASSERT_OK_AND_ASSIGN(Scheme::HealReport report, maintenance.Heal());
  EXPECT_EQ(report.healed, 1);
  EXPECT_EQ(report.skipped, 0);

  // The repair is durable: a fresh recovery revalidates every checksum and
  // finds nothing to quarantine.
  MeteredDevice remetered(&memory);
  ExtentAllocator reallocator(memory.capacity());
  ASSERT_OK_AND_ASSIGN(
      DurableMaintenance::RecoveredState state,
      DurableMaintenance::Recover(paths, &remetered, &reallocator,
                                  ConstituentIndex::Options{}));
  EXPECT_TRUE(state.quarantined.empty());
  for (const auto& constituent : state.wave.constituents()) {
    EXPECT_TRUE(constituent->healthy()) << constituent->name();
  }
  std::remove(paths.checkpoint.c_str());
  std::remove(paths.journal.c_str());
}

TEST(SelfHealDurableTest, RecoveryRevalidationQuarantinesRotThenHeals) {
  const std::string prefix = ::testing::TempDir() + "wavekit_recovery_rot";
  DurableMaintenance::Paths paths{prefix + "_CHECKPOINT", prefix + "_JOURNAL"};
  std::remove(paths.checkpoint.c_str());
  std::remove(paths.journal.c_str());

  MemoryDevice memory(uint64_t{1} << 26);
  Extent live{0, 0};
  {
    MeteredDevice metered(&memory);
    ExtentAllocator allocator(memory.capacity());
    DayStore day_store;
    SchemeEnv env{&metered, &allocator, &day_store};
    ASSERT_OK_AND_ASSIGN(
        auto scheme, MakeScheme(SchemeKind::kWata, env, SchemeTestConfig()));
    DurableMaintenance maintenance(scheme.get(), paths);
    std::vector<DayBatch> first;
    for (Day d = 1; d <= kWindow; ++d) first.push_back(MakeMixedBatch(d));
    ASSERT_OK(maintenance.Start(std::move(first)));
    ASSERT_OK(scheme->wave().constituents().back()->ForEachBucket(
        [&](const Value&, const BucketInfo& info) {
          if (live.length == 0 && info.count > 0) {
            live = Extent{info.extent.offset,
                          uint64_t{info.count} * kEntrySize};
          }
        }));
    ASSERT_GT(live.length, 0u);
    // "Process" dies here; the device and checkpoint survive.
  }

  // Rot at rest, then restart.
  std::vector<std::byte> buf(static_cast<size_t>(live.length));
  ASSERT_OK(memory.Read(live.offset, buf));
  buf[0] ^= std::byte{0x80};
  ASSERT_OK(memory.Write(live.offset, buf));

  MeteredDevice metered(&memory);
  ExtentAllocator allocator(memory.capacity());
  ASSERT_OK_AND_ASSIGN(
      DurableMaintenance::RecoveredState state,
      DurableMaintenance::Recover(paths, &metered, &allocator,
                                  ConstituentIndex::Options{}));
  ASSERT_EQ(state.quarantined.size(), 1u);

  // Adopt, re-Put the window, heal online, verify exact answers.
  DayStore day_store;
  for (Day d = 1; d <= kWindow; ++d) {
    ASSERT_OK(day_store.Put(MakeMixedBatch(d)));
  }
  SchemeEnv env{&metered, &allocator, &day_store};
  ASSERT_OK_AND_ASSIGN(auto scheme,
                       MakeScheme(SchemeKind::kWata, env, SchemeTestConfig()));
  ASSERT_OK(scheme->Adopt(std::move(state.wave), state.current_day));
  ASSERT_OK_AND_ASSIGN(Scheme::HealReport report, scheme->HealUnhealthy());
  EXPECT_EQ(report.healed, 1);
  EXPECT_EQ(report.skipped, 0);

  const ReferenceIndex reference = Reference(kWindow);
  std::vector<Entry> scanned;
  ASSERT_OK(scheme->wave().TimedSegmentScan(
      DayRange::Window(kWindow, kWindow),
      [&](const Value&, const Entry& e) { scanned.push_back(e); }));
  ReferenceIndex::Sort(&scanned);
  EXPECT_EQ(scanned, reference.ScanAll(1, kWindow));

  std::remove(paths.checkpoint.c_str());
  std::remove(paths.journal.c_str());
}

}  // namespace
}  // namespace wavekit
