# Empty compiler generated dependencies file for extent_allocator_test.
# This may be replaced when dependencies are built.
