// CachedDevice: an LRU block cache in front of a Device.
//
// The paper leans on memory caching twice: batch updates "lead to better
// performance, mainly due to memory caching" (Section 2.1), and its Zipfian
// query workloads concentrate probes on few hot buckets. CachedDevice makes
// that explicit: reads served from cache never reach the wrapped (metered)
// device, so modeled seek/transfer costs reflect only true disk traffic.
// Writes are write-through: the wrapped device always holds current bytes.

#ifndef WAVEKIT_STORAGE_CACHED_DEVICE_H_
#define WAVEKIT_STORAGE_CACHED_DEVICE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "storage/device.h"
#include "util/result.h"

namespace wavekit {

/// \brief Cache effectiveness counters.
struct CacheStats {
  uint64_t hits = 0;      ///< Block reads served from cache.
  uint64_t misses = 0;    ///< Block reads that went to the device.
  uint64_t evictions = 0; ///< Blocks evicted to make room.

  double HitRatio() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// \brief Fixed-capacity LRU block cache over a Device.
///
/// Reads fill the cache block by block; writes update cached blocks and pass
/// through. Not thread-safe (wrap the whole stack in a
/// SynchronizedMeteredDevice *outside* the cache if needed — but note that
/// caching above the meter is the point: place this ABOVE the MeteredDevice
/// so cached hits are not charged).
class CachedDevice : public Device {
 public:
  /// `inner` must outlive this object. `capacity_blocks` > 0; `block_size`
  /// defaults to 4 KiB.
  CachedDevice(Device* inner, size_t capacity_blocks,
               uint64_t block_size = 4096);

  Status Read(uint64_t offset, std::span<std::byte> out) override;
  Status Write(uint64_t offset, std::span<const std::byte> data) override;
  Status WriteBatch(std::span<const Extent> extents,
                    std::span<const std::byte> data) override;
  uint64_t capacity() const override { return inner_->capacity(); }
  // Write-through means the inner device already holds every byte; Sync just
  // forwards so durability reaches the backing store.
  Status Sync() override { return inner_->Sync(); }

  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

  size_t cached_blocks() const { return lru_.size(); }
  size_t capacity_blocks() const { return capacity_blocks_; }
  uint64_t block_size() const { return block_size_; }

  /// Drops every cached block (stats are kept).
  void Invalidate();

 private:
  struct CachedBlock {
    uint64_t block_id;
    std::vector<std::byte> bytes;
  };
  using LruList = std::list<CachedBlock>;

  // Returns the cached block for `block_id`, loading (and possibly evicting)
  // on miss; the block is moved to the MRU position.
  Result<LruList::iterator> GetBlock(uint64_t block_id);

  // Patches cached blocks overlapping [offset, offset+data.size()) after a
  // device write, or evicts them when the write failed.
  void PatchCache(uint64_t offset, std::span<const std::byte> data,
                  bool written_ok);

  Device* inner_;
  size_t capacity_blocks_;
  uint64_t block_size_;
  LruList lru_;  // front = most recently used
  std::unordered_map<uint64_t, LruList::iterator> index_;
  CacheStats stats_;
};

}  // namespace wavekit

#endif  // WAVEKIT_STORAGE_CACHED_DEVICE_H_
