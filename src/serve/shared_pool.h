// SharedPool: lets many tenants' WaveServices fan queries out on ONE pool.
//
// WaveService::Options::pool_factory hands back a unique_ptr per role, and
// each service destroys what it got — so tenants cannot literally share a
// ThreadPool*. SharedPool is the adapter: a workerless forwarding shell
// whose Submit/Wait delegate to a pool owned by the daemon. Destroying a
// shell leaves the shared pool (and other tenants) untouched.
//
// Only the "query" role should be shared. Advance transitions rely on their
// runner being a dedicated single worker for strict submission-order
// application; waved gives every tenant its own.

#ifndef WAVEKIT_SERVE_SHARED_POOL_H_
#define WAVEKIT_SERVE_SHARED_POOL_H_

#include <functional>

#include "util/thread_pool.h"

namespace wavekit {
namespace serve {

class SharedPool : public ThreadPool {
 public:
  /// `inner` must outlive this shell (the daemon owns it).
  explicit SharedPool(ThreadPool* inner) : inner_(inner) {}

  void Submit(std::function<void()> task) override {
    inner_->Submit(std::move(task));
  }
  // Waits for the WHOLE shared pool, other tenants' work included — safe
  // (the contract only promises "at least my tasks"), just coarse. The query
  // path joins per-probe WaitGroups, not pool-wide Waits, so this only runs
  // at service destruction.
  void Wait() override { inner_->Wait(); }
  size_t queue_depth() const override { return inner_->queue_depth(); }
  int in_flight() const override { return inner_->in_flight(); }

 private:
  ThreadPool* inner_;
};

}  // namespace serve
}  // namespace wavekit

#endif  // WAVEKIT_SERVE_SHARED_POOL_H_
