// TpcdGenerator: TPC-D-shaped LINEITEM stream for the warehousing case
// study.
//
// Substitution note (see DESIGN.md): the paper builds a wave index on
// LINEITEM.SUPPKEY for the last 100 days and runs query Q1 (Pricing Summary
// Report) as TimedSegmentScans. We generate LINEITEM-shaped rows with
// uniformly distributed SUPPKEY — the distribution the TPC-D spec
// prescribes, and the reason the paper picks g = 1.08 there: uniform keys
// mean uniformly growing buckets, so little slack is needed.

#ifndef WAVEKIT_WORKLOAD_TPCD_H_
#define WAVEKIT_WORKLOAD_TPCD_H_

#include "index/record.h"
#include "util/random.h"

namespace wavekit {
namespace workload {

struct TpcdConfig {
  /// LINEITEM rows arriving per day.
  uint64_t rows_per_day = 2000;
  /// Number of distinct suppliers (SUPPKEY universe).
  uint64_t num_suppliers = 500;
  uint64_t seed = 7;
};

/// \brief Deterministic generator of daily LINEITEM batches. Each record has
/// exactly one search value (its SUPPKEY); `aux` carries the line quantity
/// so Q1-style aggregates can be computed from index entries alone.
class TpcdGenerator {
 public:
  explicit TpcdGenerator(TpcdConfig config);

  DayBatch GenerateDay(Day day, uint64_t rows_override = 0);

  /// SUPPKEY value for supplier number `supplier` (0-based).
  Value SuppkeyFor(uint64_t supplier) const;

  /// Samples a SUPPKEY uniformly (probe value generation).
  Value SampleSuppkey(Rng& rng) const;

  const TpcdConfig& config() const { return config_; }

 private:
  TpcdConfig config_;
  uint64_t next_record_id_ = 1;
};

}  // namespace workload
}  // namespace wavekit

#endif  // WAVEKIT_WORKLOAD_TPCD_H_
