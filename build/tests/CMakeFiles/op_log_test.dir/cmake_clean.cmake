file(REMOVE_RECURSE
  "CMakeFiles/op_log_test.dir/wave/op_log_test.cc.o"
  "CMakeFiles/op_log_test.dir/wave/op_log_test.cc.o.d"
  "op_log_test"
  "op_log_test.pdb"
  "op_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
