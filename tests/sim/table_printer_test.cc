#include "sim/table_printer.h"

#include <gtest/gtest.h>

namespace wavekit {
namespace sim {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"scheme", "n", "work"});
  table.AddRow({"DEL", "1", "12.5"});
  table.AddRow({"REINDEX++", "10", "3.25"});
  const std::string out = table.ToString();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("| scheme    |"), std::string::npos);
  EXPECT_NE(out.find("| REINDEX++ |"), std::string::npos);
  EXPECT_NE(out.find("| DEL       |"), std::string::npos);
}

TEST(TablePrinterTest, TitleOnTop) {
  TablePrinter table({"a"});
  table.SetTitle("Figure 5: total work");
  table.AddRow({"x"});
  EXPECT_EQ(table.ToString().rfind("Figure 5: total work\n", 0), 0u);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter table({"a", "b"});
  table.AddRow({"only"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| only |"), std::string::npos);
}

}  // namespace
}  // namespace sim
}  // namespace wavekit
