// Background scrubber: exhaustive checksum verification of live extents,
// quarantine-on-mismatch, skip-the-condemned, bounded-I/O pacing on the
// injected clock, transient-read-error accounting, and the cache-bypass
// principle — a scrub that reads through a warm block cache verifies the
// cache, not the medium.

#include "wave/scrubber.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "index/index_builder.h"
#include "obs/event_journal.h"
#include "storage/fault_injecting_device.h"
#include "storage/sharded_cached_device.h"
#include "testing/test_env.h"
#include "util/clock.h"

namespace wavekit {
namespace {

using testing::MakeMixedBatch;

class ScrubberTest : public ::testing::Test {
 protected:
  ScrubberTest() : device_(uint64_t{1} << 24), allocator_(device_.capacity()) {}

  // Two constituents over days 1-3 and 4-6, built on `device` (defaults to
  // the raw memory device).
  void BuildWave(Device* device = nullptr, ExtentAllocator* allocator = nullptr) {
    if (device == nullptr) device = &device_;
    if (allocator == nullptr) allocator = &allocator_;
    for (int part = 0; part < 2; ++part) {
      std::vector<DayBatch> batches;
      for (Day d = 1 + 3 * part; d <= 3 + 3 * part; ++d) {
        batches.push_back(MakeMixedBatch(d));
      }
      std::vector<const DayBatch*> ptrs;
      for (const DayBatch& b : batches) ptrs.push_back(&b);
      ConstituentIndex::Options options;
      options.integrity = &stats_;
      auto built = IndexBuilder::BuildPacked(device, allocator, options,
                                             ptrs, "I" + std::to_string(part));
      ASSERT_TRUE(built.ok()) << built.status();
      wave_.AddIndex(std::move(built).ValueOrDie());
    }
  }

  // Totals over the wave, for report cross-checks.
  uint64_t TotalLiveBuckets() const {
    uint64_t buckets = 0;
    for (const auto& c : wave_.constituents()) {
      EXPECT_OK(c->ForEachBucket([&](const Value&, const BucketInfo& info) {
        if (info.count > 0) ++buckets;
      }));
    }
    return buckets;
  }
  uint64_t TotalLiveBytes() const {
    uint64_t bytes = 0;
    for (const auto& c : wave_.constituents()) bytes += c->live_bytes();
    return bytes;
  }

  // Flips one bit in the first live bucket of constituent `which`, directly
  // on `medium` (the layer rot actually lives on).
  void RotFirstBucket(int which, Device* medium = nullptr) {
    if (medium == nullptr) medium = &device_;
    Extent live{0, 0};
    ASSERT_OK(wave_.constituents()[which]->ForEachBucket(
        [&](const Value&, const BucketInfo& info) {
          if (live.length == 0 && info.count > 0) {
            live = Extent{info.extent.offset,
                          uint64_t{info.count} * kEntrySize};
          }
        }));
    ASSERT_GT(live.length, 0u);
    std::vector<std::byte> buf(static_cast<size_t>(live.length));
    ASSERT_OK(medium->Read(live.offset, buf));
    buf[0] ^= std::byte{0x10};
    ASSERT_OK(medium->Write(live.offset, buf));
  }

  MemoryDevice device_;
  ExtentAllocator allocator_;
  IntegrityStats stats_;
  WaveIndex wave_;
};

TEST_F(ScrubberTest, CleanWaveVerifiesEverythingAndFindsNothing) {
  BuildWave();
  ScrubOptions options;
  options.integrity = &stats_;
  ASSERT_OK_AND_ASSIGN(ScrubReport report, ScrubWave(wave_, options));
  EXPECT_EQ(report.constituents_scrubbed, 2u);
  EXPECT_EQ(report.constituents_skipped, 0u);
  EXPECT_EQ(report.buckets_verified, TotalLiveBuckets());
  EXPECT_EQ(report.bytes_read, TotalLiveBytes());
  EXPECT_EQ(report.mismatches, 0u);
  EXPECT_EQ(report.read_errors, 0u);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_EQ(stats_.verified_buckets.load(), report.buckets_verified);
}

TEST_F(ScrubberTest, MismatchQuarantinesAndJournalsAndStopsTheConstituent) {
  BuildWave();
  RotFirstBucket(0);
  obs::EventJournal::Options journal_options;
  journal_options.ring_capacity = 64;
  obs::EventJournal events(journal_options);
  ScrubOptions options;
  options.integrity = &stats_;
  options.events = &events;
  options.day = 6;
  ASSERT_OK_AND_ASSIGN(ScrubReport report, ScrubWave(wave_, options));
  EXPECT_EQ(report.mismatches, 1u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0], "I0");
  EXPECT_TRUE(wave_.constituents()[0]->corrupt());
  EXPECT_FALSE(wave_.constituents()[0]->healthy());
  EXPECT_TRUE(wave_.constituents()[1]->healthy());
  // I0 stops at the first condemned bucket; I1 is fully verified.
  EXPECT_LT(report.buckets_verified, TotalLiveBuckets());
  EXPECT_EQ(stats_.corruptions_detected.load(), 1u);
  EXPECT_EQ(stats_.quarantines.load(), 1u);

  // scrub_start, corruption_detected (with crc detail), quarantine,
  // scrub_complete — in order.
  std::vector<obs::EventType> types;
  for (const obs::Event& e : events.Events()) types.push_back(e.type);
  ASSERT_EQ(types.size(), 4u);
  EXPECT_EQ(types[0], obs::EventType::kScrubStart);
  EXPECT_EQ(types[1], obs::EventType::kCorruptionDetected);
  EXPECT_EQ(types[2], obs::EventType::kQuarantine);
  EXPECT_EQ(types[3], obs::EventType::kScrubComplete);
  EXPECT_EQ(events.Events()[1].day, 6);
}

TEST_F(ScrubberTest, SecondPassSkipsTheQuarantined) {
  BuildWave();
  RotFirstBucket(0);
  ScrubOptions options;
  ASSERT_OK_AND_ASSIGN(ScrubReport first, ScrubWave(wave_, options));
  ASSERT_EQ(first.quarantined.size(), 1u);

  ASSERT_OK_AND_ASSIGN(ScrubReport second, ScrubWave(wave_, options));
  EXPECT_EQ(second.constituents_skipped, 1u);
  EXPECT_EQ(second.constituents_scrubbed, 1u);
  EXPECT_EQ(second.mismatches, 0u);  // re-reading the condemned proves nothing
}

TEST_F(ScrubberTest, PacingSleepsBetweenBatchesOnTheInjectedClock) {
  BuildWave();
  SimClock clock;
  ScrubOptions options;
  options.clock = &clock;
  options.pause_us_per_batch = 250;
  options.io_batch_bytes = kEntrySize;  // every bucket is its own batch
  ASSERT_OK_AND_ASSIGN(ScrubReport report, ScrubWave(wave_, options));
  EXPECT_EQ(report.mismatches, 0u);
  // One pause between each pair of consecutive batches, per constituent
  // (the first batch of each constituent never sleeps).
  const uint64_t batches = report.buckets_verified;
  ASSERT_GT(batches, 2u);
  EXPECT_EQ(clock.NowMicros(), (batches - 2) * 250);

  // No pacing configured: virtual time must not move at all.
  SimClock still;
  ScrubOptions unpaced;
  unpaced.clock = &still;
  ASSERT_OK(ScrubWave(wave_, unpaced).status());
  EXPECT_EQ(still.NowMicros(), 0u);
}

TEST_F(ScrubberTest, TransientReadErrorsAreCountedNotFatal) {
  MemoryDevice memory(uint64_t{1} << 24);
  FaultInjectingDevice faulty(&memory);
  ExtentAllocator allocator(memory.capacity());
  BuildWave(&faulty, &allocator);

  // Mark the first live bucket of I0 permanently unreadable.
  Extent bad{0, 0};
  ASSERT_OK(wave_.constituents()[0]->ForEachBucket(
      [&](const Value&, const BucketInfo& info) {
        if (bad.length == 0 && info.count > 0) {
          bad = Extent{info.extent.offset, uint64_t{info.count} * kEntrySize};
        }
      }));
  faulty.AddBadRange(bad);

  ScrubOptions options;
  ASSERT_OK_AND_ASSIGN(ScrubReport report, ScrubWave(wave_, options));
  EXPECT_GE(report.read_errors, 1u);
  EXPECT_EQ(report.mismatches, 0u);
  // An unreadable bucket is NOT corruption: nothing is quarantined, the next
  // pass retries it.
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_TRUE(wave_.constituents()[0]->healthy());
  // The other buckets were still verified (per-bucket fallback localized the
  // failure).
  EXPECT_EQ(report.buckets_verified, TotalLiveBuckets() - 1);

  // The constituents reference this test's local device and allocator;
  // release them before the locals go out of scope.
  wave_ = WaveIndex();
}

TEST_F(ScrubberTest, WarmCacheMasksRotUnlessScrubReadsTheMedium) {
  // Build through a block cache, warm it with a full scan, then rot the
  // MEDIUM beneath the cache. A scrub through the constituent's own device
  // (the cache) sees only clean cached copies; a scrub pointed at the layer
  // beneath (ScrubOptions::device) finds the rot. This is the reason
  // WaveService scrubs through the meter, not the cache.
  MemoryDevice memory(uint64_t{1} << 24);
  ShardedCachedDevice cache(&memory, /*capacity_blocks=*/4096,
                            /*block_size=*/64);
  ExtentAllocator allocator(memory.capacity());
  BuildWave(&cache, &allocator);
  for (const auto& c : wave_.constituents()) {
    ASSERT_OK(c->Scan([](const Value&, const Entry&) {}));  // warm the cache
  }
  RotFirstBucket(0, &memory);

  ScrubOptions through_cache;
  ASSERT_OK_AND_ASSIGN(ScrubReport masked, ScrubWave(wave_, through_cache));
  EXPECT_EQ(masked.mismatches, 0u) << "cache hid the rot, as expected";
  EXPECT_TRUE(wave_.constituents()[0]->healthy());

  ScrubOptions through_medium;
  through_medium.device = &memory;
  ASSERT_OK_AND_ASSIGN(ScrubReport found, ScrubWave(wave_, through_medium));
  EXPECT_EQ(found.mismatches, 1u);
  ASSERT_EQ(found.quarantined.size(), 1u);
  EXPECT_EQ(found.quarantined[0], "I0");

  // The constituents reference this test's local device and allocator;
  // release them before the locals go out of scope.
  wave_ = WaveIndex();
}

TEST_F(ScrubberTest, ScrubConstituentRequiresReport) {
  BuildWave();
  EXPECT_FALSE(
      ScrubConstituent(*wave_.constituents()[0], {}, nullptr).ok());
}

}  // namespace
}  // namespace wavekit
