file(REMOVE_RECURSE
  "CMakeFiles/tpcd_warehouse.dir/tpcd_warehouse.cc.o"
  "CMakeFiles/tpcd_warehouse.dir/tpcd_warehouse.cc.o.d"
  "tpcd_warehouse"
  "tpcd_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcd_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
