#include "storage/sharded_cached_device.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "storage/fault_injecting_device.h"
#include "storage/metered_device.h"
#include "testing/test_env.h"
#include "util/random.h"

namespace wavekit {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string AsString(const std::vector<std::byte>& bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

class ShardedCachedDeviceTest : public ::testing::Test {
 protected:
  ShardedCachedDeviceTest()
      : memory_(1 << 20),
        metered_(&memory_),
        // Cache ABOVE the meter: hits are not charged as device traffic.
        cached_(&metered_, /*capacity_blocks=*/32, /*block_size=*/64,
                /*num_shards=*/4) {}

  MemoryDevice memory_;
  MeteredDevice metered_;
  ShardedCachedDevice cached_;
};

TEST_F(ShardedCachedDeviceTest, ReadThroughAndHit) {
  ASSERT_OK(cached_.Write(10, Bytes("hello")));
  std::vector<std::byte> out(5);
  ASSERT_OK(cached_.Read(10, out));
  EXPECT_EQ(AsString(out), "hello");
  EXPECT_EQ(cached_.stats().misses, 1u);  // block 0 loaded once
  ASSERT_OK(cached_.Read(10, out));
  ASSERT_OK(cached_.Read(12, std::span<std::byte>(out.data(), 3)));
  EXPECT_EQ(cached_.stats().hits, 2u);
  EXPECT_EQ(cached_.stats().misses, 1u);
}

TEST_F(ShardedCachedDeviceTest, HitsDoNotTouchTheMeteredDevice) {
  ASSERT_OK(cached_.Write(0, Bytes("abcdef")));
  std::vector<std::byte> out(6);
  ASSERT_OK(cached_.Read(0, out));
  const uint64_t bytes_after_first = metered_.total().bytes_read;
  for (int i = 0; i < 10; ++i) ASSERT_OK(cached_.Read(0, out));
  EXPECT_EQ(metered_.total().bytes_read, bytes_after_first)
      << "cached reads must not be charged as disk traffic";
}

TEST_F(ShardedCachedDeviceTest, BlocksDistributeAcrossShards) {
  std::vector<std::byte> buf(1);
  // Touch 16 consecutive blocks: block_id % 4 striping puts exactly 4 in
  // each of the 4 shards.
  for (uint64_t b = 0; b < 16; ++b) {
    ASSERT_OK(cached_.Read(b * 64, buf));
  }
  for (size_t shard = 0; shard < cached_.num_shards(); ++shard) {
    EXPECT_EQ(cached_.shard_cached_blocks(shard), 4u) << "shard " << shard;
    EXPECT_EQ(cached_.shard_stats(shard).misses, 4u) << "shard " << shard;
  }
  EXPECT_EQ(cached_.cached_blocks(), 16u);
}

TEST_F(ShardedCachedDeviceTest, EvictionIsPerShardLru) {
  std::vector<std::byte> buf(1);
  // Shard 0 holds blocks {0, 4, 8, ...}; per-shard capacity is 32/4 = 8.
  // Touch 9 shard-0 blocks: exactly one eviction, of the shard-0 LRU
  // (block 0), while the other shards stay empty and unaffected.
  for (uint64_t b = 0; b < 9; ++b) {
    ASSERT_OK(cached_.Read(b * 4 * 64, buf));
  }
  EXPECT_EQ(cached_.shard_stats(0).evictions, 1u);
  EXPECT_EQ(cached_.shard_cached_blocks(0), 8u);
  for (size_t shard = 1; shard < cached_.num_shards(); ++shard) {
    EXPECT_EQ(cached_.shard_cached_blocks(shard), 0u);
  }
  const uint64_t misses_before = cached_.stats().misses;
  ASSERT_OK(cached_.Read(8 * 4 * 64, buf));  // newest: still cached
  EXPECT_EQ(cached_.stats().misses, misses_before);
  ASSERT_OK(cached_.Read(0, buf));  // evicted LRU: misses again
  EXPECT_EQ(cached_.stats().misses, misses_before + 1);
}

TEST_F(ShardedCachedDeviceTest, WriteThroughUpdatesCachedBlocks) {
  ASSERT_OK(cached_.Write(0, Bytes("aaaa")));
  std::vector<std::byte> out(4);
  ASSERT_OK(cached_.Read(0, out));  // block cached
  ASSERT_OK(cached_.Write(1, Bytes("bb")));
  ASSERT_OK(cached_.Read(0, out));  // served from cache
  EXPECT_EQ(AsString(out), "abba");
  std::vector<std::byte> direct(4);
  ASSERT_OK(memory_.Read(0, direct));
  EXPECT_EQ(AsString(direct), "abba");
}

TEST_F(ShardedCachedDeviceTest, InvalidateDropsBlocksKeepsStats) {
  std::vector<std::byte> buf(1);
  ASSERT_OK(cached_.Read(0, buf));
  const CacheStats before = cached_.stats();
  cached_.Invalidate();
  EXPECT_EQ(cached_.cached_blocks(), 0u);
  EXPECT_EQ(cached_.stats().misses, before.misses);
  ASSERT_OK(cached_.Read(0, buf));
  EXPECT_EQ(cached_.stats().misses, before.misses + 1);
}

TEST_F(ShardedCachedDeviceTest, OutOfRangeRejected) {
  std::vector<std::byte> buf(16);
  EXPECT_TRUE(cached_.Read((1 << 20) - 8, buf).IsOutOfRange());
}

TEST_F(ShardedCachedDeviceTest, ReadBatchMatchesIndividualReads) {
  Rng rng(7);
  std::vector<std::byte> data(4096);
  for (std::byte& b : data) b = static_cast<std::byte>(rng.Uniform(256));
  ASSERT_OK(cached_.Write(0, data));
  const std::vector<Extent> extents = {
      {0, 100}, {100, 28}, {500, 64}, {4000, 96}};
  std::vector<std::byte> batched(100 + 28 + 64 + 96);
  ASSERT_OK(cached_.ReadBatch(extents, batched));
  size_t at = 0;
  for (const Extent& e : extents) {
    std::vector<std::byte> single(static_cast<size_t>(e.length));
    ASSERT_OK(cached_.Read(e.offset, single));
    EXPECT_EQ(0, std::memcmp(single.data(), batched.data() + at,
                             single.size()));
    at += static_cast<size_t>(e.length);
  }
}

TEST_F(ShardedCachedDeviceTest, ConcurrentReadersMatchPlainDevice) {
  // Hammer the same device through the cache from 8 threads and verify every
  // byte against an identical plain MemoryDevice. Reads hit a small Zipfian
  // hot set so hits, misses, and evictions all occur concurrently
  // (capacity 32 blocks, working set 256 blocks of 64 bytes).
  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 4000;
  constexpr uint64_t kBlocks = 256;
  MemoryDevice plain(1 << 20);
  Rng seed_rng(42);
  std::vector<std::byte> data(kBlocks * 64);
  for (std::byte& b : data) {
    b = static_cast<std::byte>(seed_rng.Uniform(256));
  }
  ASSERT_OK(cached_.Write(0, data));
  ASSERT_OK(plain.Write(0, data));

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t]() {
      Rng rng(1000 + static_cast<uint64_t>(t));
      ZipfDistribution zipf(kBlocks, 1.1);
      std::vector<std::byte> from_cache(64), from_plain(64);
      for (int i = 0; i < kReadsPerThread; ++i) {
        const uint64_t block = zipf.Sample(rng);
        const uint64_t within = rng.Uniform(32);
        const size_t length = 1 + static_cast<size_t>(rng.Uniform(32));
        const uint64_t offset = block * 64 + within;
        if (!cached_.Read(offset,
                          std::span<std::byte>(from_cache.data(), length))
                 .ok() ||
            !plain.Read(offset,
                        std::span<std::byte>(from_plain.data(), length))
                 .ok()) {
          ++failures;
          continue;
        }
        if (std::memcmp(from_cache.data(), from_plain.data(), length) != 0) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  const CacheStats stats = cached_.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kReadsPerThread)
      << "every read is exactly one block access at <=32 bytes per read";
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u) << "working set exceeds cache capacity";
}

TEST_F(ShardedCachedDeviceTest, WriteThroughVisibleToConcurrentReaders) {
  // A single writer fills one 64-byte block per slot and publishes its
  // progress — the shadow-update discipline WaveService relies on: readers
  // only touch slots already published (so their byte ranges never overlap
  // the write in flight), and every published slot must read back as exactly
  // the written fill, whether served from the cache or (after an eviction)
  // re-loaded from the inner device.
  constexpr uint64_t kSlot = 64;    // = block size: slots never share blocks
  constexpr uint64_t kSlots = 512;  // 16x the 32-block cache capacity
  std::atomic<uint64_t> published{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t]() {
      Rng rng(77 + static_cast<uint64_t>(t));
      std::vector<std::byte> out(kSlot);
      while (true) {
        const uint64_t limit = published.load(std::memory_order_acquire);
        if (limit == 0) continue;
        if (limit > kSlots) break;
        const uint64_t slot = rng.Uniform(limit);
        if (!cached_.Read(slot * kSlot, out).ok()) {
          ++wrong;
          break;
        }
        const std::string expected(kSlot, static_cast<char>('A' + slot % 26));
        if (AsString(out) != expected) {
          ++wrong;
        }
      }
    });
  }
  for (uint64_t s = 0; s < kSlots; ++s) {
    const std::string fill(kSlot, static_cast<char>('A' + s % 26));
    ASSERT_OK(cached_.Write(s * kSlot, Bytes(fill)));
    published.store(s + 1, std::memory_order_release);
  }
  published.store(kSlots + 1, std::memory_order_release);  // stop signal
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(wrong.load(), 0)
      << "published writes must be visible through the cache";
  for (uint64_t s = 0; s < kSlots; ++s) {
    std::vector<std::byte> out(kSlot);
    ASSERT_OK(memory_.Read(s * kSlot, out));  // write-through hit the device
    EXPECT_EQ(AsString(out),
              std::string(kSlot, static_cast<char>('A' + s % 26)));
  }
}

// --- Verified-residency tracking (ReadBatchTracked / MarkVerified) ---------

// One block-aligned extent over blocks 0..3. Reads return true data
// throughout; only the trust reporting changes across passes.
TEST_F(ShardedCachedDeviceTest, VerifiedResidencyPromotesOnSecondPass) {
  std::vector<std::byte> data(256);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i);
  }
  ASSERT_OK(cached_.Write(0, data));
  cached_.Invalidate();  // the write-through patch must not count as a fill
  const std::vector<Extent> extents = {{0, 256}};
  std::vector<std::byte> out(256);
  bool trusted = true;
  uint64_t token = 0;

  // Pass 1: all misses. The batch is untrusted, and MarkVerified with its
  // token promotes nothing — this call's own fills carry generations >= the
  // token, so freshly loaded medium bytes cannot self-certify.
  ASSERT_OK(cached_.ReadBatchTracked(extents, out, &trusted, &token));
  EXPECT_FALSE(trusted);
  EXPECT_EQ(out, data);
  cached_.MarkVerified(extents, token);
  trusted = true;
  ASSERT_OK(cached_.ReadBatchTracked(extents, out, &trusted, &token));
  EXPECT_FALSE(trusted) << "own fills must not be promoted by pass 1";

  // Pass 2 hit every block while it was already resident, so ITS MarkVerified
  // promotes; pass 3 is served wholly from trusted bytes.
  cached_.MarkVerified(extents, token);
  trusted = false;
  ASSERT_OK(cached_.ReadBatchTracked(extents, out, &trusted, &token));
  EXPECT_TRUE(trusted);
  EXPECT_EQ(out, data);
}

TEST_F(ShardedCachedDeviceTest, VerifiedResidencyTrustsOnlyVerifiedBytes) {
  std::vector<std::byte> data(128);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(255 - i);
  }
  ASSERT_OK(cached_.Write(0, data));
  cached_.Invalidate();
  // Verify (twice, to promote) only bytes [10, 30) of block 0.
  const std::vector<Extent> verified = {{10, 20}};
  std::vector<std::byte> out(20);
  bool trusted = false;
  uint64_t token = 0;
  for (int pass = 0; pass < 2; ++pass) {
    ASSERT_OK(cached_.ReadBatchTracked(verified, out, &trusted, &token));
    cached_.MarkVerified(verified, token);
  }
  ASSERT_OK(cached_.ReadBatchTracked(verified, out, &trusted, &token));
  EXPECT_TRUE(trusted);

  // Any read reaching outside [10, 30) is untrusted: those neighbour bytes
  // were resident but never checksummed.
  const std::vector<Extent> wider = {{5, 20}};
  trusted = true;
  ASSERT_OK(cached_.ReadBatchTracked(
      wider, std::span<std::byte>(out.data(), 20), &trusted, &token));
  EXPECT_FALSE(trusted);

  // An adjacent verified run merges: after [30, 64) is promoted too, the
  // whole of [10, 64) is trusted — the edge-block case of two coalesced
  // bucket runs meeting inside one cache block.
  const std::vector<Extent> adjacent = {{30, 34}};
  std::vector<std::byte> out2(34);
  for (int pass = 0; pass < 2; ++pass) {
    ASSERT_OK(cached_.ReadBatchTracked(adjacent, out2, &trusted, &token));
    cached_.MarkVerified(adjacent, token);
  }
  const std::vector<Extent> merged = {{10, 54}};
  std::vector<std::byte> out3(54);
  trusted = false;
  ASSERT_OK(cached_.ReadBatchTracked(merged, out3, &trusted, &token));
  EXPECT_TRUE(trusted);
  for (size_t i = 0; i < out3.size(); ++i) {
    EXPECT_EQ(out3[i], data[10 + i]);
  }
}

TEST_F(ShardedCachedDeviceTest, VerifiedResidencyStaleTokenNeverPromotes) {
  std::vector<std::byte> data(64, std::byte{7});
  ASSERT_OK(cached_.Write(0, data));
  cached_.Invalidate();
  const std::vector<Extent> extents = {{0, 64}};
  std::vector<std::byte> out(64);
  bool trusted = false;
  uint64_t stale_token = 0;
  ASSERT_OK(cached_.ReadBatchTracked(extents, out, &trusted, &stale_token));
  ASSERT_OK(cached_.ReadBatchTracked(extents, out, &trusted, &stale_token));
  // The block is dropped and refilled AFTER the stale token was issued (a
  // concurrent eviction + refill): the old verification no longer describes
  // the resident bytes, so the stale promotion must be refused.
  cached_.Invalidate();
  uint64_t token = 0;
  ASSERT_OK(cached_.ReadBatchTracked(extents, out, &trusted, &token));
  cached_.MarkVerified(extents, stale_token);
  trusted = true;
  ASSERT_OK(cached_.ReadBatchTracked(extents, out, &trusted, &token));
  EXPECT_FALSE(trusted);
}

TEST_F(ShardedCachedDeviceTest, VerifiedResidencyEvictionDropsTrust) {
  std::vector<std::byte> data(64, std::byte{3});
  ASSERT_OK(cached_.Write(0, data));
  cached_.Invalidate();
  const std::vector<Extent> extents = {{0, 64}};
  std::vector<std::byte> out(64);
  bool trusted = false;
  uint64_t token = 0;
  for (int pass = 0; pass < 2; ++pass) {
    ASSERT_OK(cached_.ReadBatchTracked(extents, out, &trusted, &token));
    cached_.MarkVerified(extents, token);
  }
  ASSERT_OK(cached_.ReadBatchTracked(extents, out, &trusted, &token));
  ASSERT_TRUE(trusted);
  // Push block 0 out of its shard (shard 0 holds blocks {0, 4, 8, ...},
  // per-shard capacity 32/4 = 8): the refilled block starts untrusted.
  std::vector<std::byte> buf(1);
  for (uint64_t b = 1; b <= 8; ++b) {
    ASSERT_OK(cached_.Read(b * 4 * 64, buf));
  }
  trusted = true;
  ASSERT_OK(cached_.ReadBatchTracked(extents, out, &trusted, &token));
  EXPECT_FALSE(trusted) << "trust must not survive eviction + refill";
}

TEST_F(ShardedCachedDeviceTest, VerifiedResidencySurvivesWriteThrough) {
  std::vector<std::byte> data(64, std::byte{9});
  ASSERT_OK(cached_.Write(0, data));
  cached_.Invalidate();
  const std::vector<Extent> extents = {{0, 64}};
  std::vector<std::byte> out(64);
  bool trusted = false;
  uint64_t token = 0;
  for (int pass = 0; pass < 2; ++pass) {
    ASSERT_OK(cached_.ReadBatchTracked(extents, out, &trusted, &token));
    cached_.MarkVerified(extents, token);
  }
  // A successful write-through patches the cached block with the writer's
  // own (authoritative) bytes; the block stays trusted and serves them.
  ASSERT_OK(cached_.Write(8, Bytes("fresh")));
  trusted = false;
  ASSERT_OK(cached_.ReadBatchTracked(extents, out, &trusted, &token));
  EXPECT_TRUE(trusted);
  EXPECT_EQ(AsString(std::vector<std::byte>(out.begin() + 8,
                                            out.begin() + 13)),
            "fresh");
}

TEST_F(ShardedCachedDeviceTest, VerifiedResidencyFailedWriteDropsBlock) {
  FaultInjectingDevice::Options fault_options;
  MemoryDevice memory(1 << 20);
  FaultInjectingDevice faulty(&memory, fault_options);
  ShardedCachedDevice cached(&faulty, /*capacity_blocks=*/32,
                             /*block_size=*/64, /*num_shards=*/4);
  std::vector<std::byte> data(64, std::byte{5});
  ASSERT_OK(cached.Write(0, data));
  cached.Invalidate();
  const std::vector<Extent> extents = {{0, 64}};
  std::vector<std::byte> out(64);
  bool trusted = false;
  uint64_t token = 0;
  for (int pass = 0; pass < 2; ++pass) {
    ASSERT_OK(cached.ReadBatchTracked(extents, out, &trusted, &token));
    cached.MarkVerified(extents, token);
  }
  ASSERT_OK(cached.ReadBatchTracked(extents, out, &trusted, &token));
  ASSERT_TRUE(trusted);
  // A failed write leaves the device bytes unknown (possibly torn): the
  // block is evicted, and the refilled copy must re-earn trust.
  faulty.set_write_error_rate(1.0);
  EXPECT_FALSE(cached.Write(0, data).ok());
  faulty.set_write_error_rate(0.0);
  trusted = true;
  ASSERT_OK(cached.ReadBatchTracked(extents, out, &trusted, &token));
  EXPECT_FALSE(trusted);
}

TEST_F(ShardedCachedDeviceTest, RandomizedEquivalenceWithUncachedDevice) {
  MemoryDevice plain(1 << 16);
  Rng rng(12345);
  for (int step = 0; step < 3000; ++step) {
    const uint64_t offset = rng.Uniform((1 << 16) - 128);
    const size_t length = 1 + rng.Uniform(127);
    if (rng.Bernoulli(0.4)) {
      std::vector<std::byte> data(length);
      for (std::byte& b : data) b = static_cast<std::byte>(rng.Uniform(256));
      ASSERT_OK(cached_.Write(offset, data));
      ASSERT_OK(plain.Write(offset, data));
    } else {
      std::vector<std::byte> from_cache(length), from_plain(length);
      ASSERT_OK(cached_.Read(offset, from_cache));
      ASSERT_OK(plain.Read(offset, from_plain));
      ASSERT_EQ(from_cache, from_plain) << "step " << step;
    }
  }
  EXPECT_GT(cached_.stats().HitRatio(), 0.0);
}

}  // namespace
}  // namespace wavekit
