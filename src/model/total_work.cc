#include "model/total_work.h"

#include "util/macros.h"

namespace wavekit {
namespace model {

Result<TotalWork> EstimateTotalWork(SchemeKind scheme,
                                    UpdateTechniqueKind technique,
                                    const CaseParams& params, int window,
                                    int num_indexes) {
  WAVEKIT_ASSIGN_OR_RETURN(
      MaintenanceCost maintenance,
      MeasureMaintenance(scheme, technique, params, window, num_indexes));
  TotalWork work;
  work.transition_seconds = maintenance.transition_seconds;
  work.precompute_seconds = maintenance.precompute_seconds;
  work.query_seconds =
      DailyQuerySeconds(params, scheme, technique, window, num_indexes);
  return work;
}

}  // namespace model
}  // namespace wavekit
