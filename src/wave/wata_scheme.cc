#include "wave/wata_scheme.h"

#include "util/macros.h"

namespace wavekit {

Status WataScheme::ValidateConfig() const {
  WAVEKIT_RETURN_NOT_OK(Scheme::ValidateConfig());
  if (config_.num_indexes < 2) {
    return Status::InvalidArgument(
        "WATA requires at least two constituent indexes (a single index "
        "would never fully expire and grow forever)");
  }
  return Status::OK();
}

Status WataScheme::DoStart() {
  const std::vector<TimeSet> clusters =
      SplitWataWindow(config_.window, config_.num_indexes);
  for (size_t j = 0; j < clusters.size(); ++j) {
    WAVEKIT_ASSIGN_OR_RETURN(
        std::shared_ptr<ConstituentIndex> index,
        BuildIndex(clusters[j], "I" + std::to_string(j + 1), Phase::kStart,
                   static_cast<int>(j)));
    slots_.push_back(std::move(index));
  }
  RegisterSlots();
  last_ = slots_.size() - 1;  // I_n holds day W and receives new days
  return Status::OK();
}

Status WataScheme::DoAdopt() {
  WAVEKIT_RETURN_NOT_OK(Scheme::DoAdopt());
  // New days go to the constituent holding the newest day.
  last_ = 0;
  for (size_t i = 1; i < slots_.size(); ++i) {
    if (*slots_[i]->time_set().rbegin() >
        *slots_[last_]->time_set().rbegin()) {
      last_ = i;
    }
  }
  return Status::OK();
}

Status WataScheme::DoTransition(const DayBatch& new_day) {
  const Day expired = new_day.day - config_.window;
  WAVEKIT_ASSIGN_OR_RETURN(size_t j, FindSlotContaining(expired));
  // If the other indexes together cover W-1 (all live) days, every day in
  // I_j has expired: throw it away. Otherwise wait.
  int days_in_others = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (i != j) days_in_others += static_cast<int>(slots_[i]->time_set().size());
  }
  if (days_in_others == config_.window - 1) {
    // ThrowAway: DropIndex(I_j); I_j <- BuildIndex({new}).
    obs::Span span = TraceOp("WATA.throw_away");
    WAVEKIT_RETURN_NOT_OK(DropIndex(slots_[j]));
    WAVEKIT_ASSIGN_OR_RETURN(
        std::shared_ptr<ConstituentIndex> fresh,
        BuildIndex({new_day.day}, "I" + std::to_string(j + 1),
                   Phase::kTransition, static_cast<int>(j)));
    slots_[j] = fresh;
    wave_.AddIndex(std::move(fresh));
    last_ = j;
  } else {
    // Wait: append the new day to the last-modified index.
    obs::Span span = TraceOp("WATA.wait");
    WAVEKIT_RETURN_NOT_OK(
        AddToIndex({new_day.day}, &slots_[last_], Phase::kTransition));
  }
  return Status::OK();
}

}  // namespace wavekit
