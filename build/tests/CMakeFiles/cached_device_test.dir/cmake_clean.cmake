file(REMOVE_RECURSE
  "CMakeFiles/cached_device_test.dir/storage/cached_device_test.cc.o"
  "CMakeFiles/cached_device_test.dir/storage/cached_device_test.cc.o.d"
  "cached_device_test"
  "cached_device_test.pdb"
  "cached_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cached_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
